package rocket_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rocket"
	"rocket/internal/apps/forensics"
	"rocket/internal/apps/microscopy"
	"rocket/internal/experiments"
	"rocket/internal/sim"
)

func TestHomogeneousPlatform(t *testing.T) {
	cl, err := rocket.Homogeneous(4, rocket.DAS5Node(rocket.TitanXMaxwell))
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Nodes) != 4 || cl.TotalGPUs() != 4 {
		t.Fatalf("nodes=%d gpus=%d", len(cl.Nodes), cl.TotalGPUs())
	}
}

func TestPaperHeterogeneous(t *testing.T) {
	cl, err := rocket.PaperHeterogeneous()
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Nodes) != 4 || cl.TotalGPUs() != 7 {
		t.Fatalf("want 4 nodes / 7 GPUs, got %d / %d", len(cl.Nodes), cl.TotalGPUs())
	}
}

func TestCartesiusPlatform(t *testing.T) {
	cl, err := rocket.Cartesius(48)
	if err != nil {
		t.Fatal(err)
	}
	if cl.TotalGPUs() != 96 {
		t.Fatalf("gpus = %d, want 96", cl.TotalGPUs())
	}
	if cl.Nodes[0].Spec.HostCacheBytes != 80*rocket.GiB {
		t.Fatal("Cartesius host cache should be 80 GiB")
	}
}

func TestEndToEndThroughPublicAPI(t *testing.T) {
	app := microscopy.New(microscopy.Params{N: 24, Seed: 1})
	cl, err := rocket.Homogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rocket.New(
		rocket.WithCluster(cl),
		rocket.WithDistCache(true),
		rocket.WithSeed(1),
	).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != 24*23/2 {
		t.Fatalf("pairs = %d", m.Pairs)
	}
}

func TestRealKernelsThroughPublicAPI(t *testing.T) {
	app, err := forensics.NewReal(forensics.RealParams{N: 8, Cameras: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := rocket.Homogeneous(1, rocket.DAS5Node(rocket.TitanXMaxwell))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rocket.New(
		rocket.WithCluster(cl),
		rocket.WithCollectResults(true),
		rocket.WithSeed(1),
	).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Results) != 28 {
		t.Fatalf("results = %d, want 28", len(m.Results))
	}
	for _, r := range m.Results {
		score := r.Value.(float64)
		if score < -1.01 || score > 1.01 {
			t.Fatalf("NCC score %v out of range", score)
		}
	}
}

// TestRunQueueMixedPolicies drives the rocketd scheduler through the
// public API: 16 mixed-app jobs (microscopy, forensics, bioinformatics)
// scheduled concurrently over one shared cluster under all three
// policies, with seeded, repeatable results. On the skewed two-tenant
// mix, fair-share must beat FIFO on mean wait: narrow interactive jobs
// stop queueing behind wide batch jobs.
func TestRunQueueMixedPolicies(t *testing.T) {
	const queueTestNodes = 8
	opts := experiments.Options{Scale: 25, Seed: 1}
	waits := make(map[rocket.QueuePolicy]sim.Time)
	for _, p := range []rocket.QueuePolicy{rocket.PolicyFIFO, rocket.PolicySJF, rocket.PolicyFairShare} {
		run := func() *rocket.QueueMetrics {
			m, err := rocket.New(rocket.WithQueueConfig(rocket.QueueConfig{
				Jobs:   experiments.QueueMix(16, queueTestNodes, opts),
				Nodes:  queueTestNodes,
				Policy: p,
				Seed:   1,
			})).RunQueue()
			if err != nil {
				t.Fatalf("policy %v: %v", p, err)
			}
			return m
		}
		m := run()
		if m.Completed != 16 || m.Rejected != 0 {
			t.Fatalf("policy %v: completed %d rejected %d, want 16/0", p, m.Completed, m.Rejected)
		}
		apps := make(map[string]bool)
		for _, j := range m.Jobs {
			apps[j.App] = true
		}
		if len(apps) < 3 {
			t.Fatalf("policy %v: want >= 3 distinct apps in the mix, got %v", p, apps)
		}
		again := run()
		if m.Makespan != again.Makespan || m.MeanWait != again.MeanWait || m.Pairs != again.Pairs {
			t.Fatalf("policy %v: results not deterministic: %v/%v vs %v/%v",
				p, m.Makespan, m.MeanWait, again.Makespan, again.MeanWait)
		}
		waits[p] = m.MeanWait
	}
	if waits[rocket.PolicyFairShare] >= waits[rocket.PolicyFIFO] {
		t.Fatalf("fair-share mean wait %v should beat FIFO %v on the skewed mix",
			waits[rocket.PolicyFairShare], waits[rocket.PolicyFIFO])
	}
}

// The online public API: StartQueue accepts submissions while the fleet
// runs, drains on Shutdown, and its arrival log replays through RunQueue
// with identical fleet metrics.
func TestStartQueueOnlineThroughPublicAPI(t *testing.T) {
	q, err := rocket.StartQueue(rocket.QueueConfig{Nodes: 2, Policy: rocket.PolicySJF, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		app := forensics.New(forensics.Params{N: 8, Seed: uint64(i + 1)})
		if _, err := q.Submit(rocket.QueueJob{App: app}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := q.Shutdown(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 4 {
		t.Fatalf("completed %d/4", m.Completed)
	}
	if _, err := q.Submit(rocket.QueueJob{App: forensics.New(forensics.Params{N: 8, Seed: 9})}); !errors.Is(err, rocket.ErrShuttingDown) {
		t.Fatalf("submit after shutdown: %v, want ErrShuttingDown", err)
	}
	replay, err := rocket.New(rocket.WithQueueConfig(q.ReplayConfig())).RunQueue()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m.JSON()
	b, _ := replay.JSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("replay differs:\n%s\nvs\n%s", a, b)
	}
}

// rocket.Serve exposes the HTTP service layer end to end.
func TestServeThroughPublicAPI(t *testing.T) {
	srv, err := rocket.Serve(rocket.ServeConfig{Nodes: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"app":"forensics","items":8}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if _, err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	var info rocket.QueueJobInfo
	ok := false
	if info, ok = srv.Queue().Job("job0"); !ok || info.Status.String() != "done" {
		t.Fatalf("job0: %+v (ok=%v), want done", info, ok)
	}
}
