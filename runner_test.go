package rocket_test

import (
	"reflect"
	"testing"

	"rocket"
	"rocket/internal/apps/forensics"
	"rocket/internal/apps/microscopy"
)

// TestRunnerClusterMatchesTopology is the platform-equivalence gate: an
// explicitly built cluster and a topology-derived one must produce
// bit-identical Metrics for the same settings.
func TestRunnerClusterMatchesTopology(t *testing.T) {
	app := microscopy.New(microscopy.Params{N: 24, Seed: 1})

	cl, err := rocket.Homogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell))
	if err != nil {
		t.Fatal(err)
	}
	old, err := rocket.New(
		rocket.WithCluster(cl),
		rocket.WithDistCache(true),
		rocket.WithSeed(1),
	).Run(app)
	if err != nil {
		t.Fatal(err)
	}

	r := rocket.New(
		rocket.WithHomogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell)),
		rocket.WithDistCache(true),
		rocket.WithSeed(1),
	)
	neu, err := r.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, neu) {
		t.Fatalf("explicit cluster diverged from topology build:\nold: %+v\nnew: %+v", old, neu)
	}
}

// TestRunnerIsReusable: a topology-built Runner rebuilds the cluster per
// run, so repeated runs are bit-identical rather than contaminated by
// accumulated accounting.
func TestRunnerIsReusable(t *testing.T) {
	app := forensics.New(forensics.Params{N: 16, Seed: 3})
	r := rocket.New(
		rocket.WithHomogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell)),
		rocket.WithSeed(7),
	)
	m1, err := r.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("two runs of the same Runner diverged")
	}
}

func TestRunnerExplicitClusterConsumedOnce(t *testing.T) {
	app := forensics.New(forensics.Params{N: 16, Seed: 3})
	cl, err := rocket.Homogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell))
	if err != nil {
		t.Fatal(err)
	}
	r := rocket.New(rocket.WithCluster(cl), rocket.WithSeed(7))
	if _, err := r.Run(app); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(app); err == nil {
		t.Fatal("second Run on a consumed explicit cluster should fail")
	}
}

func TestRunnerOptionErrorsSurfaceAtRun(t *testing.T) {
	app := forensics.New(forensics.Params{N: 16, Seed: 3})
	for name, r := range map[string]*rocket.Runner{
		"no platform":  rocket.New(),
		"bad topology": rocket.New(rocket.WithTopology()),
		"bad n":        rocket.New(rocket.WithHomogeneous(0, rocket.DAS5Node(rocket.TitanXMaxwell))),
		"bad shards":   rocket.New(rocket.WithShards(0), rocket.WithHomogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell))),
		"nil cluster":  rocket.New(rocket.WithCluster(nil)),
	} {
		if _, err := r.Run(app); err == nil {
			t.Errorf("%s: Run should fail", name)
		}
	}
	if _, err := rocket.New().Run(nil); err == nil {
		t.Error("Run(nil app) should fail")
	}
}

func TestRunnerTopologyAccessor(t *testing.T) {
	r := rocket.New(rocket.WithTopology(rocket.PaperTopology()...))
	topo := r.Topology()
	if len(topo) != 4 {
		t.Fatalf("len(Topology()) = %d, want 4", len(topo))
	}
	// Mutating the returned slice must not affect the Runner.
	topo[0] = rocket.NodeSpec{}
	if r.Topology()[0].Cores == 0 {
		t.Fatal("Topology() returned a live reference, want a copy")
	}

	cl, err := rocket.PaperHeterogeneous()
	if err != nil {
		t.Fatal(err)
	}
	fromCluster := rocket.New(rocket.WithCluster(cl)).Topology()
	if !reflect.DeepEqual(fromCluster, rocket.PaperTopology()) {
		t.Fatal("Topology() from an explicit cluster should recover the node specs")
	}

	if got := rocket.New(rocket.WithShards(4)).Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	if got := rocket.New(rocket.WithSeed(42)).Seed(); got != 42 {
		t.Fatalf("Seed() = %d, want 42", got)
	}
}

// TestRunnerQueueEquivalentForms: the three ways of feeding the queue —
// pre-loaded cfg.Jobs, argument append, and a topology-derived fleet —
// must produce bit-identical reports.
func TestRunnerQueueEquivalentForms(t *testing.T) {
	jobs := []rocket.QueueJob{
		{App: forensics.New(forensics.Params{N: 16, Seed: 2}), Nodes: 2},
		{App: microscopy.New(microscopy.Params{N: 12, Seed: 3}), Nodes: 1},
		{App: forensics.New(forensics.Params{N: 12, Seed: 4}), Nodes: 1},
	}
	cfg := rocket.QueueConfig{Jobs: jobs, Nodes: 3, Seed: 11, Policy: rocket.PolicySJF}

	ref, err := rocket.New(rocket.WithQueueConfig(cfg)).RunQueue()
	if err != nil {
		t.Fatal(err)
	}

	// Jobs passed as arguments append to the configured queue.
	base := rocket.QueueConfig{Nodes: 3, Seed: 11, Policy: rocket.PolicySJF}
	argd, err := rocket.New(rocket.WithQueueConfig(base)).RunQueue(jobs...)
	if err != nil {
		t.Fatal(err)
	}
	if argd.Report() != ref.Report() {
		t.Fatal("RunQueue(jobs...) diverged from pre-loaded cfg.Jobs")
	}

	// With no explicit queue size, the topology supplies the fleet.
	topo, err := rocket.New(
		rocket.WithHomogeneous(3, rocket.DAS5Node(rocket.TitanXMaxwell)),
		rocket.WithSeed(11),
		rocket.WithQueuePolicy(rocket.PolicySJF),
	).RunQueue(jobs...)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Report() != ref.Report() {
		t.Fatal("topology-derived RunQueue diverged")
	}
}

// TestRunnerElasticOptions drives both elastic surfaces through the
// public API: WithElasticity churns a fleet run, and WithAutoscaler puts
// queue runs on a pay-per-use bill.
func TestRunnerElasticOptions(t *testing.T) {
	r := rocket.New(
		rocket.WithHomogeneous(16, rocket.DAS5Node(rocket.TitanXMaxwell)),
		rocket.WithSeed(3),
		rocket.WithShards(2),
		rocket.WithElasticity(&rocket.Elasticity{
			InitialNodes:    4,
			Arrival:         "wave",
			Waves:           2,
			PreemptFraction: 0.25,
		}),
	)
	res, err := r.RunFleet(func(c *rocket.FleetConfig) { c.Duration = 4e6 }) // 4ms
	if err != nil {
		t.Fatal(err)
	}
	if res.Joins == 0 || res.Preempts == 0 {
		t.Fatalf("elastic fleet saw no churn: %+v", res)
	}

	jobs := []rocket.QueueJob{
		{App: forensics.New(forensics.Params{N: 12, Seed: 2})},
		{App: forensics.New(forensics.Params{N: 12, Seed: 3})},
	}
	m, err := rocket.New(
		rocket.WithSeed(5),
		rocket.WithQueueConfig(rocket.QueueConfig{Nodes: 4, Seed: 5}),
		rocket.WithAutoscaler(&rocket.Autoscale{MinNodes: 1, IdleTimeout: 1e9}),
	).RunQueue(jobs...)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Elastic || m.Completed != 2 {
		t.Fatalf("autoscaled queue: elastic=%v completed=%d", m.Elastic, m.Completed)
	}
	if m.NodeSeconds >= float64(m.TotalNodes)*m.Makespan.Seconds() {
		t.Fatalf("autoscaler bill %.3f not below fixed fleet", m.NodeSeconds)
	}
}
