package rocket_test

import (
	"reflect"
	"testing"

	"rocket"
	"rocket/internal/apps/forensics"
	"rocket/internal/apps/microscopy"
)

// TestRunnerMatchesDeprecatedRun is the API-migration equivalence gate:
// the options builder must produce bit-identical Metrics to the
// deprecated positional rocket.Run(Config) path for the same settings.
func TestRunnerMatchesDeprecatedRun(t *testing.T) {
	app := microscopy.New(microscopy.Params{N: 24, Seed: 1})

	cl, err := rocket.Homogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell))
	if err != nil {
		t.Fatal(err)
	}
	old, err := rocket.Run(rocket.Config{App: app, Cluster: cl, DistCache: true, Seed: 1}) //nolint:staticcheck // equivalence test of the deprecated path
	if err != nil {
		t.Fatal(err)
	}

	r := rocket.New(
		rocket.WithHomogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell)),
		rocket.WithDistCache(true),
		rocket.WithSeed(1),
	)
	neu, err := r.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, neu) {
		t.Fatalf("Runner.Run diverged from deprecated rocket.Run:\nold: %+v\nnew: %+v", old, neu)
	}
}

// TestRunnerIsReusable: a topology-built Runner rebuilds the cluster per
// run, so repeated runs are bit-identical rather than contaminated by
// accumulated accounting.
func TestRunnerIsReusable(t *testing.T) {
	app := forensics.New(forensics.Params{N: 16, Seed: 3})
	r := rocket.New(
		rocket.WithHomogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell)),
		rocket.WithSeed(7),
	)
	m1, err := r.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("two runs of the same Runner diverged")
	}
}

func TestRunnerExplicitClusterConsumedOnce(t *testing.T) {
	app := forensics.New(forensics.Params{N: 16, Seed: 3})
	cl, err := rocket.Homogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell))
	if err != nil {
		t.Fatal(err)
	}
	r := rocket.New(rocket.WithCluster(cl), rocket.WithSeed(7))
	if _, err := r.Run(app); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(app); err == nil {
		t.Fatal("second Run on a consumed explicit cluster should fail")
	}
}

func TestRunnerOptionErrorsSurfaceAtRun(t *testing.T) {
	app := forensics.New(forensics.Params{N: 16, Seed: 3})
	for name, r := range map[string]*rocket.Runner{
		"no platform":  rocket.New(),
		"bad topology": rocket.New(rocket.WithTopology()),
		"bad n":        rocket.New(rocket.WithHomogeneous(0, rocket.DAS5Node(rocket.TitanXMaxwell))),
		"bad shards":   rocket.New(rocket.WithShards(0), rocket.WithHomogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell))),
		"nil cluster":  rocket.New(rocket.WithCluster(nil)),
	} {
		if _, err := r.Run(app); err == nil {
			t.Errorf("%s: Run should fail", name)
		}
	}
	if _, err := rocket.New().Run(nil); err == nil {
		t.Error("Run(nil app) should fail")
	}
}

func TestRunnerTopologyAccessor(t *testing.T) {
	r := rocket.New(rocket.WithTopology(rocket.PaperTopology()...))
	topo := r.Topology()
	if len(topo) != 4 {
		t.Fatalf("len(Topology()) = %d, want 4", len(topo))
	}
	// Mutating the returned slice must not affect the Runner.
	topo[0] = rocket.NodeSpec{}
	if r.Topology()[0].Cores == 0 {
		t.Fatal("Topology() returned a live reference, want a copy")
	}

	cl, err := rocket.PaperHeterogeneous()
	if err != nil {
		t.Fatal(err)
	}
	fromCluster := rocket.New(rocket.WithCluster(cl)).Topology()
	if !reflect.DeepEqual(fromCluster, rocket.PaperTopology()) {
		t.Fatal("Topology() from an explicit cluster should recover the node specs")
	}

	if got := rocket.New(rocket.WithShards(4)).Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	if got := rocket.New(rocket.WithSeed(42)).Seed(); got != 42 {
		t.Fatalf("Seed() = %d, want 42", got)
	}
}

// TestRunnerQueueMatchesDeprecatedRunQueue: queue scheduling through the
// builder must match the deprecated rocket.RunQueue shim bit for bit.
func TestRunnerQueueMatchesDeprecatedRunQueue(t *testing.T) {
	jobs := []rocket.QueueJob{
		{App: forensics.New(forensics.Params{N: 16, Seed: 2}), Nodes: 2},
		{App: microscopy.New(microscopy.Params{N: 12, Seed: 3}), Nodes: 1},
		{App: forensics.New(forensics.Params{N: 12, Seed: 4}), Nodes: 1},
	}
	cfg := rocket.QueueConfig{Jobs: jobs, Nodes: 3, Seed: 11, Policy: rocket.PolicySJF}

	old, err := rocket.RunQueue(cfg) //nolint:staticcheck // equivalence test of the deprecated path
	if err != nil {
		t.Fatal(err)
	}
	neu, err := rocket.New(rocket.WithQueueConfig(cfg)).RunQueue()
	if err != nil {
		t.Fatal(err)
	}
	if old.Report() != neu.Report() {
		t.Fatalf("Runner.RunQueue diverged from deprecated rocket.RunQueue:\nold:\n%s\nnew:\n%s", old.Report(), neu.Report())
	}

	// Jobs passed as arguments append to the configured queue.
	base := rocket.QueueConfig{Nodes: 3, Seed: 11, Policy: rocket.PolicySJF}
	argd, err := rocket.New(rocket.WithQueueConfig(base)).RunQueue(jobs...)
	if err != nil {
		t.Fatal(err)
	}
	if argd.Report() != old.Report() {
		t.Fatal("RunQueue(jobs...) diverged from pre-loaded cfg.Jobs")
	}

	// With no explicit queue size, the topology supplies the fleet.
	topo, err := rocket.New(
		rocket.WithHomogeneous(3, rocket.DAS5Node(rocket.TitanXMaxwell)),
		rocket.WithSeed(11),
		rocket.WithQueuePolicy(rocket.PolicySJF),
	).RunQueue(jobs...)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Report() != old.Report() {
		t.Fatal("topology-derived RunQueue diverged")
	}
}
