# Local entry points mirroring .github/workflows/ci.yml, so local and CI
# runs cannot drift: `make ci` executes exactly the workflow's steps.

GO ?= go
ROCKET_SCALE ?= 50

.PHONY: build test bench lint ci fmt

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Full evaluation at reporting scale (minutes). CI runs the smoke variant.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

fmt:
	gofmt -w .

ci: lint build test
	ROCKET_SCALE=$(ROCKET_SCALE) $(GO) test -bench=. -benchtime=1x -run='^$$' .
