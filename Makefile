# Local entry points mirroring .github/workflows/ci.yml, so local and CI
# runs cannot drift: `make ci` executes exactly the workflow's steps.
# (The only tolerated difference: staticcheck/govulncheck are installed
# on CI runners; locally they run when present on PATH and are skipped
# with a notice otherwise, since offline sandboxes cannot `go install`.)

GO ?= go
ROCKET_SCALE ?= 50
BENCH_RUN ?= local
BENCH_BASELINE ?= BENCH_pr9.json
COVERAGE_FLOOR ?= 75.0

.PHONY: build test race-stress bench bench-sim bench-shards bench-json bench-gate coverage smoke smoke-scenarios smoke-elastic smoke-incremental smoke-pairstore smoke-trace fuzz-smoke lint ci fmt

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Mirrors the workflow's race-stress step: exercise the sharded engine's
# OS threads, the parallel sweep workers, the online submission paths,
# and fault recovery repeatedly under -race at two GOMAXPROCS widths.
race-stress:
	GOMAXPROCS=2 $(GO) test -race -count=2 ./internal/sim/ ./internal/fleet/ ./internal/sched/ ./internal/core/ ./internal/serve/
	GOMAXPROCS=8 $(GO) test -race -count=2 ./internal/sim/ ./internal/fleet/ ./internal/sched/ ./internal/core/ ./internal/serve/

# Full evaluation at reporting scale (minutes). CI runs the smoke variant.
# Output is benchstat-friendly: run twice (before/after a change) with
# `make bench | tee old.txt` / `... new.txt`, then `benchstat old.txt new.txt`.
bench: bench-sim
	$(GO) test -bench=. -benchmem -count=1 -run='^$$' .

# Engine microbenchmarks: event dispatch, Wait ping-pong, resource
# contention (callback vs process), mailbox throughput.
bench-sim:
	$(GO) test -bench=. -benchmem -count=1 -run='^$$' ./internal/sim/

# Shard-scaling benchmark: the fixed 1024-node fleet at engine widths
# 1, 2, 4, 8, hash-checked for shard invariance. Wall-clock speedup
# depends on GOMAXPROCS; the state hashes never do.
bench-shards:
	$(GO) test -bench=BenchmarkShardScaling -benchtime=3x -count=1 -run='^$$' ./internal/fleet/

# Machine-readable perf trajectory: per-experiment ns/op, allocs/op, and
# events/sec written to BENCH_$(BENCH_RUN).json.
bench-json:
	$(GO) run ./cmd/rocketbench -exp all -scale $(ROCKET_SCALE) -json $(BENCH_RUN) -q

# Mirrors the workflow's bench-gate job: regenerate BENCH_ci.json and gate
# it against the committed baseline — fail on output_sha256 drift, warn on
# >25% ns_per_op regressions.
bench-gate:
	$(GO) run ./cmd/rocketbench -exp all -scale $(ROCKET_SCALE) -json ci -q
	$(GO) run ./cmd/benchgate -baseline $(BENCH_BASELINE) -candidate BENCH_ci.json -max-regress 0.25

# Mirrors the workflow's coverage job: total statement coverage across all
# packages must not drop below the seed-measured floor.
coverage:
	$(GO) test -count=1 -coverprofile=cover.out -coverpkg=./... ./...
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{gsub("%","",$$NF); print $$NF}'); \
	echo "total coverage: $$total% (floor $(COVERAGE_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVERAGE_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }'

# Mirrors the workflow's smoke job: every example and CLI runs end to end
# at tiny scale, including a rocketd serve -> drain -> offline-replay
# round trip.
smoke:
	for d in examples/*/; do echo "== go run ./$$d"; $(GO) run "./$$d" > /dev/null || exit 1; done
	$(GO) run ./cmd/rocketbench -exp fig6 -scale 200 -seed 1 -json smoke -q
	$(GO) run ./cmd/benchgate -baseline BENCH_smoke.json -candidate BENCH_smoke.json
	$(GO) run ./cmd/rocketgen -app forensics -n 4 -out /tmp/rocket-smoke-gen
	$(GO) run ./cmd/rockettrace -app forensics -n 8 -limit 20 > /dev/null
	$(GO) run ./cmd/rocketqueue -example > /tmp/rocket-smoke-jobs.json
	$(GO) run ./cmd/rocketqueue -manifest /tmp/rocket-smoke-jobs.json -policy fifo > /dev/null
	$(GO) run ./cmd/rocketqueue -replay /tmp/rocket-smoke-jobs.json -json > /dev/null
	$(GO) build -o /tmp/rocket-smoke-rocketd ./cmd/rocketd
	/tmp/rocket-smoke-rocketd -addr 127.0.0.1:18080 -nodes 4 -time-scale 0 -log /tmp/rocket-smoke-served.json > /tmp/rocket-smoke-report.txt & \
	pid=$$!; \
	sleep 1; \
	curl -sf 127.0.0.1:18080/healthz > /dev/null && \
	curl -sf 127.0.0.1:18080/v1/jobs -d '{"app":"forensics","items":8}' > /dev/null && \
	curl -sf 127.0.0.1:18080/v1/jobs -d '{"app":"microscopy","items":8,"tenant":"lab"}' > /dev/null && \
	sleep 2 && \
	curl -sf 127.0.0.1:18080/metrics | grep -q 'rocketd_jobs' && \
	kill -TERM $$pid && wait $$pid || { kill $$pid 2>/dev/null; exit 1; }
	$(GO) run ./cmd/rocketqueue -replay /tmp/rocket-smoke-served.json > /tmp/rocket-smoke-replay.txt
	tail -2 /tmp/rocket-smoke-report.txt > /tmp/rocket-smoke-report-tail.txt
	tail -2 /tmp/rocket-smoke-replay.txt > /tmp/rocket-smoke-replay-tail.txt
	diff /tmp/rocket-smoke-report-tail.txt /tmp/rocket-smoke-replay-tail.txt
	$(GO) run ./cmd/rocketload -local -jobs 16 -clients 8 -items 8
	$(GO) run ./cmd/rocketload -local -jobs 8 -mode open -rate 100 -items 8 -fault-rate 0.25
	$(GO) run ./cmd/rocketload -local -jobs 8 -items 8 -max-nodes 4 -scenario scenarios/crash-recovery.yaml

# Mirrors the workflow's smoke-scenarios job: every committed scenario
# runs twice with the same seed; the run fails on any assertion failure
# (exit 1) and the two JSON reports of each scenario must be
# byte-identical — a replayability gate over the whole corpus. Reports
# land in /tmp/rocket-scenario-reports (uploaded as a CI artifact).
smoke-scenarios:
	$(GO) build -o /tmp/rocket-smoke-rocketsim ./cmd/rocketsim
	/tmp/rocket-smoke-rocketsim validate scenarios/*.yaml
	rm -rf /tmp/rocket-scenario-reports /tmp/rocket-scenario-reports-rerun
	mkdir -p /tmp/rocket-scenario-reports /tmp/rocket-scenario-reports-rerun
	/tmp/rocket-smoke-rocketsim run -report /tmp/rocket-scenario-reports scenarios/*.yaml
	/tmp/rocket-smoke-rocketsim run -q -report /tmp/rocket-scenario-reports-rerun scenarios/*.yaml
	diff -r /tmp/rocket-scenario-reports /tmp/rocket-scenario-reports-rerun

# Mirrors the workflow's smoke-elastic step: the elastic-membership
# scenario (wave joins + spot preemptions) runs at engine widths 1, 2, 4
# and 8, and the four JSON reports must be byte-identical — churn must
# not open a seam between shards. Reports land in
# /tmp/rocket-elastic-reports-w<width>.
smoke-elastic:
	$(GO) build -o /tmp/rocket-smoke-rocketsim ./cmd/rocketsim
	rm -rf /tmp/rocket-elastic-reports-w1 /tmp/rocket-elastic-reports-w2 /tmp/rocket-elastic-reports-w4 /tmp/rocket-elastic-reports-w8
	for w in 1 2 4 8; do \
		/tmp/rocket-smoke-rocketsim run -q -shards $$w -report /tmp/rocket-elastic-reports-w$$w scenarios/elastic-burst.yaml || exit 1; \
	done
	diff -r /tmp/rocket-elastic-reports-w1 /tmp/rocket-elastic-reports-w2
	diff -r /tmp/rocket-elastic-reports-w1 /tmp/rocket-elastic-reports-w4
	diff -r /tmp/rocket-elastic-reports-w1 /tmp/rocket-elastic-reports-w8

# Mirrors the workflow's smoke-incremental step: the pair-store
# warm-start flow end to end — create a dataset, run it, append, run the
# delta, assert the base pairs were served from the store (66 = C(12,2)
# hits on the delta job), then replay the served log offline and require
# byte-identical fleet summaries. Store segment stats land in
# /tmp/rocket-incr-store-stats.json (uploaded as a CI artifact).
smoke-incremental:
	$(GO) build -o /tmp/rocket-incr-rocketd ./cmd/rocketd
	rm -f /tmp/rocket-incr-store.json /tmp/rocket-incr-store.json.datasets
	rm -rf /tmp/rocket-incr-store.json.segments
	/tmp/rocket-incr-rocketd -addr 127.0.0.1:18081 -nodes 4 -time-scale 0 \
		-log /tmp/rocket-incr-served.json -store /tmp/rocket-incr-store.json \
		-store-stats /tmp/rocket-incr-store-stats.json > /tmp/rocket-incr-report.txt & \
	pid=$$!; \
	sleep 1; \
	curl -sf 127.0.0.1:18081/v1/datasets -d '{"id":"corpus","app":"forensics","items":12,"seed":7}' > /dev/null && \
	curl -sf -X POST 127.0.0.1:18081/v1/datasets/corpus/jobs -d '{}' > /dev/null && \
	sleep 2 && \
	curl -sf -X POST 127.0.0.1:18081/v1/datasets/corpus/append -d '{"items":4}' > /dev/null && \
	curl -sf -X POST 127.0.0.1:18081/v1/datasets/corpus/jobs -d '{}' > /dev/null && \
	sleep 2 && \
	curl -sf 127.0.0.1:18081/v1/jobs/job1/result | grep -q '"store_hits": 66' && \
	curl -sf 127.0.0.1:18081/metrics | grep -q 'rocketd_store_served_pairs_total 66' && \
	curl -sf 127.0.0.1:18081/v1/store > /dev/null && \
	kill -TERM $$pid && wait $$pid || { kill $$pid 2>/dev/null; exit 1; }
	$(GO) run ./cmd/rocketqueue -replay /tmp/rocket-incr-served.json > /tmp/rocket-incr-replay.txt
	tail -3 /tmp/rocket-incr-report.txt > /tmp/rocket-incr-report-tail.txt
	tail -3 /tmp/rocket-incr-replay.txt > /tmp/rocket-incr-replay-tail.txt
	diff /tmp/rocket-incr-report-tail.txt /tmp/rocket-incr-replay-tail.txt
	test -s /tmp/rocket-incr-store.json
	test -s /tmp/rocket-incr-store-stats.json

# Mirrors the workflow's smoke-pairstore step: the columnar store's full
# lifecycle at a million pairs — auto-sealed ingestion, Seal, Compact,
# Save, Load, then a 10% delta plan — run twice; the two plans must be
# byte-identical and the store must hold ≤8 bytes/pair on disk. Per-run
# figures land in /tmp/rocket-store-stats.json (uploaded as a CI
# artifact).
smoke-pairstore:
	$(GO) run ./cmd/rocketstore -pairs 1000000 -seed 1 -runs 2 -stats /tmp/rocket-store-stats.json
	test -s /tmp/rocket-store-stats.json

# Mirrors the workflow's smoke-trace step: the observability layer's
# determinism and overhead gate. The quickstart and stress-1k scenarios
# export Perfetto JSON twice each (stress-1k additionally at engine
# width 4) and every pair must be byte-identical — the flight recorder's
# canonical span ordering makes trace output a pure function of the
# workload, independent of reruns and shard widths. Then fig6 runs with
# and without the recorder attached and benchgate holds the line:
# output_sha256 drift is fatal (recording must not change any reported
# number) and >5% ns/op overhead warns. Exports land in
# /tmp/rocket-trace-exports (uploaded as a CI artifact).
smoke-trace:
	$(GO) build -o /tmp/rocket-smoke-rockettrace ./cmd/rockettrace
	rm -rf /tmp/rocket-trace-exports
	mkdir -p /tmp/rocket-trace-exports
	for sc in quickstart stress-1k; do \
		/tmp/rocket-smoke-rockettrace export -scenario scenarios/$$sc.yaml -o /tmp/rocket-trace-exports/$$sc.json && \
		/tmp/rocket-smoke-rockettrace export -scenario scenarios/$$sc.yaml -o /tmp/rocket-trace-exports/$$sc.rerun.json && \
		cmp /tmp/rocket-trace-exports/$$sc.json /tmp/rocket-trace-exports/$$sc.rerun.json || exit 1; \
	done
	/tmp/rocket-smoke-rockettrace export -scenario scenarios/stress-1k.yaml -shards 4 -o /tmp/rocket-trace-exports/stress-1k.w4.json
	cmp /tmp/rocket-trace-exports/stress-1k.json /tmp/rocket-trace-exports/stress-1k.w4.json
	/tmp/rocket-smoke-rockettrace top -scenario scenarios/stress-1k.yaml > /dev/null
	$(GO) run ./cmd/rocketbench -exp fig6 -scale 200 -seed 1 -json traceoff -q
	$(GO) run ./cmd/rocketbench -exp fig6 -scale 200 -seed 1 -json traceon -trace -q
	$(GO) run ./cmd/benchgate -baseline BENCH_traceoff.json -candidate BENCH_traceon.json -max-regress 0.05
	rm -f BENCH_traceoff.json BENCH_traceon.json

# Mirrors the workflow's fuzz step: short go-native fuzz runs over the
# manifest codec (seed corpus under internal/jobspec/testdata) and the
# columnar segment codec (seed corpus under internal/pairstore/testdata)
# — truncated or bit-flipped segment files must fail with a structured
# *CorruptError, never a panic.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzManifestRoundTrip -fuzztime=10s ./internal/jobspec/
	$(GO) test -run='^$$' -fuzz=FuzzSegmentRoundTrip -fuzztime=10s ./internal/pairstore/

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not on PATH, skipped (CI installs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "lint: govulncheck not on PATH, skipped (CI installs it)"; fi

fmt:
	gofmt -w .

ci: lint build test race-stress
	ROCKET_SCALE=$(ROCKET_SCALE) $(GO) test -bench=. -benchtime=1x -run='^$$' .
	ROCKET_SCALE=$(ROCKET_SCALE) $(MAKE) bench-gate
	$(MAKE) coverage
	$(MAKE) fuzz-smoke
	$(MAKE) smoke
	$(MAKE) smoke-scenarios
	$(MAKE) smoke-elastic
	$(MAKE) smoke-incremental
	$(MAKE) smoke-pairstore
	$(MAKE) smoke-trace
