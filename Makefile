# Local entry points mirroring .github/workflows/ci.yml, so local and CI
# runs cannot drift: `make ci` executes exactly the workflow's steps.

GO ?= go
ROCKET_SCALE ?= 50
BENCH_RUN ?= local

.PHONY: build test race-stress bench bench-sim bench-json lint ci fmt

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Mirrors the workflow's race-stress step: exercise the parallel
# inner-sim workers and fault-recovery paths repeatedly under -race with
# different worker-pool widths.
race-stress:
	GOMAXPROCS=2 $(GO) test -race -count=2 ./internal/sched/ ./internal/core/
	GOMAXPROCS=8 $(GO) test -race -count=2 ./internal/sched/ ./internal/core/

# Full evaluation at reporting scale (minutes). CI runs the smoke variant.
# Output is benchstat-friendly: run twice (before/after a change) with
# `make bench | tee old.txt` / `... new.txt`, then `benchstat old.txt new.txt`.
bench: bench-sim
	$(GO) test -bench=. -benchmem -count=1 -run='^$$' .

# Engine microbenchmarks: event dispatch, Wait ping-pong, resource
# contention (callback vs process), mailbox throughput.
bench-sim:
	$(GO) test -bench=. -benchmem -count=1 -run='^$$' ./internal/sim/

# Machine-readable perf trajectory: per-experiment ns/op, allocs/op, and
# events/sec written to BENCH_$(BENCH_RUN).json.
bench-json:
	$(GO) run ./cmd/rocketbench -exp all -scale $(ROCKET_SCALE) -json $(BENCH_RUN) -q

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

fmt:
	gofmt -w .

ci: lint build test race-stress
	ROCKET_SCALE=$(ROCKET_SCALE) $(GO) test -bench=. -benchtime=1x -run='^$$' .
	ROCKET_SCALE=$(ROCKET_SCALE) $(MAKE) bench-json BENCH_RUN=ci
