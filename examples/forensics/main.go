// Forensics example: common-source camera identification with real PRNU
// kernels (§5.1) on a synthetic image collection.
//
// The example generates images from a handful of simulated cameras (each
// with its own sensor-noise fingerprint), runs the full Rocket pipeline —
// decode, noise extraction, all-pairs Normalized Cross Correlation — on a
// simulated GPU cluster, and then clusters the images by camera using the
// correlation scores.
//
//	go run ./examples/forensics
package main

import (
	"fmt"
	"log"

	"rocket"
	"rocket/internal/apps/forensics"
)

func main() {
	const (
		images  = 18
		cameras = 3
	)
	app, err := forensics.NewReal(forensics.RealParams{
		N:       images,
		Cameras: cameras,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	r := rocket.New(
		rocket.WithHomogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell)),
		rocket.WithDistCache(true),
		rocket.WithCollectResults(true),
		rocket.WithSeed(1),
	)
	m, err := r.Run(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compared %d image pairs in %v simulated time (R = %.2f)\n\n",
		m.Pairs, m.Runtime, m.R)

	// Decision threshold between same-camera and different-camera scores.
	const threshold = 0.05
	scores := map[[2]int]float64{}
	for _, r := range m.Results {
		scores[[2]int{r.I, r.J}] = r.Value.(float64)
	}

	// Union-find clustering over above-threshold pairs.
	parent := make([]int, images)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for pair, s := range scores {
		if s >= threshold {
			parent[find(pair[0])] = find(pair[1])
		}
	}

	groups := map[int][]int{}
	for i := 0; i < images; i++ {
		root := find(i)
		groups[root] = append(groups[root], i)
	}
	fmt.Printf("recovered %d source groups (true cameras: %d):\n", len(groups), cameras)
	correct := true
	for root, members := range groups {
		fmt.Printf("  group %2d:", root)
		for _, img := range members {
			fmt.Printf(" img%02d(cam%d)", img, app.Camera(img))
			if app.Camera(img) != app.Camera(members[0]) {
				correct = false
			}
		}
		fmt.Println()
	}
	if correct && len(groups) == cameras {
		fmt.Println("\nall images correctly attributed to their source cameras")
	} else {
		fmt.Println("\nwarning: attribution imperfect (tune threshold or image size)")
	}
}
