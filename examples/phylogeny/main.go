// Phylogeny example: alignment-free tree reconstruction with real
// composition-vector kernels (§5.2) on synthetic proteomes.
//
// The example evolves species from three ancestral clades, computes the
// all-pairs composition-vector distance matrix with Rocket on a simulated
// cluster, reconstructs the phylogeny with UPGMA, and prints the tree in
// Newick format.
//
//	go run ./examples/phylogeny
package main

import (
	"fmt"
	"log"

	"rocket"
	"rocket/internal/apps/phylo"
)

func main() {
	const (
		species = 12
		clades  = 3
	)
	app, err := phylo.NewReal(phylo.RealParams{
		N:      species,
		Groups: clades,
		Seed:   11,
	})
	if err != nil {
		log.Fatal(err)
	}

	r := rocket.New(
		rocket.WithHomogeneous(3, rocket.DAS5Node(rocket.TitanXMaxwell)),
		rocket.WithDistCache(true),
		rocket.WithCollectResults(true),
		rocket.WithSeed(1),
	)
	m, err := r.Run(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computed %d pairwise distances (k=%d strings) in %v simulated time\n\n",
		m.Pairs, app.K(), m.Runtime)

	// Assemble the full distance matrix.
	dist := make([][]float64, species)
	for i := range dist {
		dist[i] = make([]float64, species)
	}
	for _, r := range m.Results {
		d := r.Value.(float64)
		dist[r.I][r.J] = d
		dist[r.J][r.I] = d
	}

	names := make([]string, species)
	for i := range names {
		names[i] = fmt.Sprintf("sp%02d_clade%d", i, app.Clade(i))
	}
	root, err := phylo.UPGMA(dist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reconstructed phylogeny, UPGMA (Newick):")
	fmt.Println(" ", root.Newick(names))

	nj, err := phylo.NeighborJoining(dist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reconstructed phylogeny, neighbor joining (Newick):")
	fmt.Println(" ", nj.Newick(names))

	// Verify the deepest split separates whole clades.
	pure := func(leaves []int) bool {
		for _, l := range leaves {
			if app.Clade(l) != app.Clade(leaves[0]) {
				return false
			}
		}
		return true
	}
	left, right := root.Left.Leaves(), root.Right.Leaves()
	fmt.Printf("\nroot split: %d vs %d species\n", len(left), len(right))
	if pure(left) || pure(right) {
		fmt.Println("the deepest split isolates a complete clade — reconstruction consistent with ground truth")
	} else {
		fmt.Println("warning: root split mixes clades")
	}
}
