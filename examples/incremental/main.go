// Incremental: the pair store's warm-start flow against the public
// rocket API. A forensics corpus is computed once into a persistent
// pair store; the corpus then grows append-only (new images arrive),
// and the second run serves every already-computed pair from the store,
// computing only the new-vs-all delta — the k·n + k(k-1)/2 pairs that
// touch new items.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rocket"
	"rocket/internal/apps/forensics"
)

const (
	baseItems  = 24 // the corpus as first ingested
	growth     = 4  // images appended later
	seed       = 7  // the dataset's content identity; fixed across runs
	storeRef   = "corpus"
	totalItems = baseItems + growth
)

// corpus builds the dataset at a given size. Same seed, more items:
// item i is identical in every version, which is what lets the store's
// content-addressed keys hit after the corpus grows.
func corpus(n int) rocket.Application {
	return forensics.New(forensics.Params{N: n, Seed: seed})
}

func run(app rocket.Application, opts ...rocket.Option) *rocket.Metrics {
	base := []rocket.Option{
		rocket.WithHomogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell)),
		rocket.WithSeed(1),
	}
	m, err := rocket.New(append(base, opts...)...).Run(app)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	digest := rocket.PairDigestFunc(storeRef, "forensics", seed)

	// Day 1: ingest the corpus cold, emitting every result into a fresh
	// store, then persist it.
	store := rocket.NewPairStore()
	batch := rocket.NewPairBatch()
	cold := run(corpus(baseItems),
		rocket.WithStoreBatch(batch),
		rocket.WithItemDigest(digest),
	)
	store.Merge(batch)
	path := filepath.Join(os.TempDir(), "rocket-incremental-store.json")
	if err := store.Save(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 1: computed %d pairs over %d items in %v; %d results persisted to %s\n",
		cold.Pairs, baseItems, cold.Runtime, store.Len(), path)

	// Day 2: the corpus has grown. Reload the store and run the delta:
	// the base region is served from the store, only new-vs-all pairs
	// are computed.
	reloaded, err := rocket.LoadPairStore(path)
	if err != nil {
		log.Fatal(err)
	}
	batch = rocket.NewPairBatch()
	warm := run(corpus(totalItems),
		rocket.WithBaseItems(baseItems),
		rocket.WithStoreSnapshot(reloaded.Snapshot()),
		rocket.WithStoreBatch(batch),
		rocket.WithItemDigest(digest),
	)
	reloaded.Merge(batch)

	fmt.Printf("day 2: +%d items -> computed %d new pairs (%d served from the store) in %v\n",
		growth, warm.Pairs, warm.StoreHits, warm.Runtime)
	if want := rocket.DeltaPairs(totalItems, baseItems); int64(warm.Pairs) != want {
		log.Fatalf("computed %d pairs, want the minimal delta %d", warm.Pairs, want)
	}

	// What a store-less deployment would have paid: the full recompute.
	full := run(corpus(totalItems))
	fmt.Printf("full recompute of %d items: %d pairs in %v -> warm start is %.1fx faster\n",
		totalItems, full.Pairs, full.Runtime, float64(full.Runtime)/float64(warm.Runtime))
	fmt.Printf("store now holds %d results (%d new appended)\n", reloaded.Len(), warm.StorePuts)
	os.Remove(path)
}
