// Quickstart: define a minimal all-pairs application against the public
// rocket API and run it on a simulated two-node GPU cluster.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rocket"
	"rocket/internal/sim"
)

// wordApp compares every pair of words by a (simulated) GPU kernel and
// computes their shared-letter count on the CPU side as the real result.
// It implements rocket.Application (the cost model: sizes and stage
// durations) and rocket.Computer (the real kernels).
type wordApp struct {
	words []string
}

func (a *wordApp) Name() string                      { return "quickstart" }
func (a *wordApp) NumItems() int                     { return len(a.words) }
func (a *wordApp) FileSize(item int) int64           { return int64(len(a.words[item])) }
func (a *wordApp) ItemSize() int64                   { return 1 << 20 }
func (a *wordApp) ResultSize() int64                 { return 8 }
func (a *wordApp) ParseTime(int) sim.Time            { return sim.Millis(10) }
func (a *wordApp) PreprocessTime(int) sim.Time       { return sim.Millis(2) }
func (a *wordApp) CompareTime(int, int) sim.Time     { return sim.Millis(1) }
func (a *wordApp) PostprocessTime(int, int) sim.Time { return 0 }

// LoadItem is the real load pipeline: here it just produces the letter
// set of the word.
func (a *wordApp) LoadItem(item int) (interface{}, error) {
	set := map[rune]bool{}
	for _, r := range a.words[item] {
		set[r] = true
	}
	return set, nil
}

// ComparePair counts shared letters.
func (a *wordApp) ComparePair(i, j int, x, y interface{}) (interface{}, error) {
	xs, ys := x.(map[rune]bool), y.(map[rune]bool)
	shared := 0
	for r := range xs {
		if ys[r] {
			shared++
		}
	}
	return shared, nil
}

func main() {
	app := &wordApp{words: []string{
		"rocket", "cache", "steal", "pairs", "gpu", "cluster", "async", "reuse",
	}}

	r := rocket.New(
		rocket.WithHomogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell)),
		rocket.WithDistCache(true),
		rocket.WithCollectResults(true),
		rocket.WithSeed(1),
	)
	m, err := r.Run(app)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("compared %d pairs in %v of simulated time (R = %.2f, %d loads)\n\n",
		m.Pairs, m.Runtime, m.R, m.Loads)
	for _, r := range m.Results {
		fmt.Printf("  %-8s ~ %-8s share %d letters\n", app.words[r.I], app.words[r.J], r.Value)
	}
}
