// Heterogeneous example: run the microscopy workload on the paper's
// four-node mixed-GPU platform (§6.5: K20m, GTX980 + TitanX Pascal, two
// RTX2080Ti, GTX Titan + TitanX Pascal) and show how hierarchical
// work-stealing balances irregular work across seven GPUs from four
// hardware generations — the faster the GPU, the more pairs it ends up
// processing, with all nodes finishing together.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"sort"

	"rocket"
	"rocket/internal/apps/microscopy"
	"rocket/internal/sim"
)

func main() {
	app := microscopy.New(microscopy.Params{N: 96, Seed: 3})

	r := rocket.New(
		rocket.WithTopology(rocket.PaperTopology()...),
		rocket.WithDistCache(true),
		rocket.WithSeed(1),
		rocket.WithThroughputWindow(sim.Minute),
	)
	m, err := r.Run(app)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d pairs over 7 GPUs (4 generations) in %v simulated time\n", m.Pairs, m.Runtime)
	fmt.Printf("remote steals: %d, local steals: %d\n\n", m.RemoteSteals, m.LocalSteals)

	ids := append([]string(nil), m.DeviceIDs...)
	sort.Strings(ids)
	fmt.Println("pairs processed per device (work-stealing balances by capability):")
	total := 0.0
	for _, id := range ids {
		ts := m.DeviceThroughput[id]
		var pairs float64
		if ts != nil {
			for _, v := range ts.Buckets {
				pairs += v
			}
		}
		total += pairs
		bar := ""
		for i := 0; i < int(pairs/40); i++ {
			bar += "#"
		}
		fmt.Printf("  %-12s %5.0f pairs  %s\n", id, pairs, bar)
	}
	fmt.Printf("  %-12s %5.0f pairs\n", "total", total)
}
