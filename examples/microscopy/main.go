// Microscopy example: all-to-all particle registration with real GMM
// kernels (§5.3) on synthetic localization data.
//
// The example images one underlying structure several times (random
// orientation, localization noise, under-labeling), registers every pair
// of particles with Rocket, and checks the recovered relative rotations
// against the ground truth — the consistency check that makes
// template-free particle fusion robust.
//
//	go run ./examples/microscopy
package main

import (
	"fmt"
	"log"
	"math"

	"rocket"
	"rocket/internal/apps/microscopy"
)

func main() {
	const particles = 8
	app, err := microscopy.NewReal(microscopy.RealParams{
		N:           particles,
		Noise:       1.5,
		LabelEff:    0.9,
		CoarseSteps: 36,
		Seed:        5,
	})
	if err != nil {
		log.Fatal(err)
	}

	r := rocket.New(
		rocket.WithHomogeneous(2, rocket.DAS5Node(rocket.TitanXMaxwell)),
		rocket.WithDistCache(true),
		rocket.WithCollectResults(true),
		rocket.WithSeed(1),
	)
	m, err := r.Run(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d particle pairs in %v simulated time\n\n", m.Pairs, m.Runtime)
	fmt.Println("pair      recovered   true      error     score    evals")

	var worst float64
	for _, r := range m.Results {
		reg := r.Value.(microscopy.Registration)
		want := wrap(app.Theta(r.I) - app.Theta(r.J))
		errAngle := math.Abs(wrap(reg.Theta - want))
		if errAngle > worst {
			worst = errAngle
		}
		fmt.Printf("(%d, %d)   %+8.3f   %+8.3f  %8.4f  %7.4f  %5d\n",
			r.I, r.J, reg.Theta, want, errAngle, reg.Score, reg.Evals)
	}
	fmt.Printf("\nworst angular error: %.4f rad", worst)
	if worst < 0.25 {
		fmt.Println(" — all pairwise registrations recover the true relative orientation")
	} else {
		fmt.Println(" — registration degraded (increase localizations or lower noise)")
	}
}

func wrap(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a < -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
