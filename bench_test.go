package rocket_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// executes the corresponding experiment end to end on the simulated
// platform and prints the regenerated rows once, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Workload scale is controlled with the
// ROCKET_SCALE environment variable (default 10; 1 = paper scale, slow).

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"rocket/internal/experiments"
)

var benchPrinted sync.Map

func benchOptions() experiments.Options {
	scale := 10
	if v := os.Getenv("ROCKET_SCALE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			scale = n
		}
	}
	return experiments.Options{Scale: scale, Seed: 1}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		out, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := benchPrinted.LoadOrStore(id, true); !done {
			fmt.Printf("\n=== %s (%s): %s ===\n%s\n", e.ID, e.Paper, e.Description, out)
		}
	}
}

// Paper artefacts.

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }

// Ablations of the design choices called out in DESIGN.md §5.

func BenchmarkAblationLeafSize(b *testing.B)    { benchExperiment(b, "ablation-leaf") }
func BenchmarkAblationJobLimit(b *testing.B)    { benchExperiment(b, "ablation-joblimit") }
func BenchmarkAblationStealPolicy(b *testing.B) { benchExperiment(b, "ablation-steal") }
func BenchmarkAblationHops(b *testing.B)        { benchExperiment(b, "ablation-hops") }
func BenchmarkAblationEviction(b *testing.B)    { benchExperiment(b, "ablation-eviction") }
func BenchmarkAblationPrewarm(b *testing.B)     { benchExperiment(b, "ablation-prewarm") }
func BenchmarkAblationBackoff(b *testing.B)     { benchExperiment(b, "ablation-backoff") }

// Scheduler subsystem (rocketd): job count x policy sweep over a skewed
// two-tenant mix, reporting makespan, mean wait, and utilization.

func BenchmarkQueueScaling(b *testing.B) { benchExperiment(b, "queue-scaling") }

// Fault-injection subsystem: crash/straggler/partition sweep with
// steal-based recovery, reporting completion-time inflation against the
// failure-free baseline.

func BenchmarkResilience(b *testing.B) { benchExperiment(b, "resilience") }

// Pair-store subsystem: append-ratio sweep measuring the warm-start
// payoff of serving resident pairs from the persistent result store
// (expected: ≥5x over full recompute at 10% growth).

func BenchmarkIncremental(b *testing.B) { benchExperiment(b, "incremental") }

// Elastic-membership subsystem: churn invariance across engine widths
// plus the autoscaler's node-seconds vs p99-wait trade against a fixed
// max-size fleet (asserted inside the experiment: identical p99 at a
// strictly lower bill for the warm pool).

func BenchmarkElasticity(b *testing.B) { benchExperiment(b, "elasticity") }
