package rocket_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// executes the corresponding experiment end to end on the simulated
// platform and prints the regenerated rows once, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Workload scale is controlled with the
// ROCKET_SCALE environment variable (default 10; 1 = paper scale, slow).

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"rocket/internal/experiments"
)

var benchPrinted sync.Map

func benchOptions() experiments.Options {
	scale := 10
	if v := os.Getenv("ROCKET_SCALE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			scale = n
		}
	}
	return experiments.Options{Scale: scale, Seed: 1}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		out, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := benchPrinted.LoadOrStore(id, true); !done {
			fmt.Printf("\n=== %s (%s): %s ===\n%s\n", e.ID, e.Paper, e.Description, out)
		}
	}
}

// Paper artefacts.

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }

// Ablations of the design choices called out in DESIGN.md §5.

func BenchmarkAblationLeafSize(b *testing.B)    { benchExperiment(b, "ablation-leaf") }
func BenchmarkAblationJobLimit(b *testing.B)    { benchExperiment(b, "ablation-joblimit") }
func BenchmarkAblationStealPolicy(b *testing.B) { benchExperiment(b, "ablation-steal") }
func BenchmarkAblationHops(b *testing.B)        { benchExperiment(b, "ablation-hops") }
func BenchmarkAblationEviction(b *testing.B)    { benchExperiment(b, "ablation-eviction") }
func BenchmarkAblationPrewarm(b *testing.B)     { benchExperiment(b, "ablation-prewarm") }
func BenchmarkAblationBackoff(b *testing.B)     { benchExperiment(b, "ablation-backoff") }

// Scheduler subsystem (rocketd): job count x policy sweep over a skewed
// two-tenant mix, reporting makespan, mean wait, and utilization.

func BenchmarkQueueScaling(b *testing.B) { benchExperiment(b, "queue-scaling") }

// Fault-injection subsystem: crash/straggler/partition sweep with
// steal-based recovery, reporting completion-time inflation against the
// failure-free baseline.

func BenchmarkResilience(b *testing.B) { benchExperiment(b, "resilience") }

// Pair-store subsystem: append-ratio sweep measuring the warm-start
// payoff of serving resident pairs from the persistent result store
// (expected: ≥5x over full recompute at 10% growth).

func BenchmarkIncremental(b *testing.B) { benchExperiment(b, "incremental") }

// Elastic-membership subsystem: churn invariance across engine widths
// plus the autoscaler's node-seconds vs p99-wait trade against a fixed
// max-size fleet (asserted inside the experiment: identical p99 at a
// strictly lower bill for the warm pool).

func BenchmarkElasticity(b *testing.B) { benchExperiment(b, "elasticity") }

// Columnar pairstore subsystem: the storage-scaling sweep. Each point
// builds an all-pairs store of the given size through the full
// lifecycle (auto-sealed ingestion, compaction, persistence, reload)
// and plans a 10% delta against the reloaded snapshot, reporting
// on-disk bytes/pair, the resident probe-index footprint, and the plan
// latency. The 10^6-pair point is the gated capability (≤8 bytes/pair,
// plan without a resident per-pair index — see BENCH_pr9.json and
// cmd/benchgate); 10^7 is the local headroom check.
//
//	go test -bench BenchmarkPairstoreScale -benchtime 1x .
func BenchmarkPairstoreScale(b *testing.B) {
	for _, pairs := range []int64{100_000, 1_000_000, 10_000_000} {
		b.Run(fmt.Sprintf("pairs=%d", pairs), func(b *testing.B) {
			// The 10^7 headroom point takes tens of seconds per iteration;
			// smoke runs (ROCKET_SCALE > 10, as CI sets) stop at the gated
			// 10^6 capability and leave 10^7 to full-scale local runs.
			if pairs > 1_000_000 && benchOptions().Scale > 10 {
				b.Skipf("skipping %d-pair headroom point at smoke scale", pairs)
			}
			for i := 0; i < b.N; i++ {
				sr, err := experiments.MeasureStorageTemp(pairs, 1)
				if err != nil {
					b.Fatal(err)
				}
				if sr.Served != sr.Pairs {
					b.Fatalf("plan served %d of %d resident pairs", sr.Served, sr.Pairs)
				}
				if sr.Pairs >= 1_000_000 && sr.BytesPerPair > 8 {
					b.Fatalf("%.2f bytes/pair at %d pairs exceeds the 8 bytes/pair floor",
						sr.BytesPerPair, sr.Pairs)
				}
				// The plan must run off the bounded probe index, not a
				// resident per-pair structure: fences + dictionary + bloom
				// land around 1.3 bytes/pair; 4 is generous headroom.
				if sr.IndexResidentBytes > 4*sr.Pairs {
					b.Fatalf("resident index %d bytes for %d pairs — planning is not index-bounded",
						sr.IndexResidentBytes, sr.Pairs)
				}
				b.ReportMetric(sr.BytesPerPair, "bytes/pair")
				b.ReportMetric(float64(sr.IndexResidentBytes), "index-bytes")
				b.ReportMetric(float64(sr.PlanNs), "plan-ns")
			}
		})
	}
}
