// Command rocketbench regenerates the paper's tables and figures from the
// command line.
//
// Usage:
//
//	rocketbench -list
//	rocketbench -exp fig12 [-scale 10] [-seed 1]
//	rocketbench -exp all -scale 5
//
// Scale 1 reproduces paper-scale data sets (slow: hours of CPU time);
// the default 10 preserves all capacity and cost ratios (see
// internal/experiments) and finishes in minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rocket/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run, or \"all\"")
		scale = flag.Int("scale", 10, "workload scale divisor (1 = paper scale)")
		seed  = flag.Uint64("seed", 1, "random seed")
		list  = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-18s %-8s %s\n", e.ID, e.Paper, e.Description)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed}
	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	for _, e := range toRun {
		start := time.Now()
		out, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%s): %s ===\n%s(completed in %v wall time)\n\n",
			e.ID, e.Paper, e.Description, out, time.Since(start).Round(time.Millisecond))
	}
}
