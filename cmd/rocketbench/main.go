// Command rocketbench regenerates the paper's tables and figures from the
// command line, and doubles as the tracked performance harness: it can
// profile itself and emit a machine-readable BENCH_<run>.json capturing
// ns/op, allocs/op, and simulation events/sec per experiment.
//
// Usage:
//
//	rocketbench -list
//	rocketbench -exp fig12 [-scale 10] [-seed 1]
//	rocketbench -exp all -scale 5
//	rocketbench -exp all -scale 50 -json ci        # writes BENCH_ci.json
//	rocketbench -exp fig8 -cpuprofile fig8.prof
//
// Scale 1 reproduces paper-scale data sets (slow: hours of CPU time);
// the default 10 preserves all capacity and cost ratios (see
// internal/experiments) and finishes in minutes.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"rocket/internal/benchfmt"
	"rocket/internal/experiments"
	"rocket/internal/fleet"
	"rocket/internal/sim"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id to run, or \"all\"")
		scale      = flag.Int("scale", 10, "workload scale divisor (1 = paper scale)")
		seed       = flag.Uint64("seed", 1, "random seed")
		shards     = flag.Int("shards", 1, "concurrency width: sweep experiments run independent points on this many workers (outputs are width-invariant)")
		list       = flag.Bool("list", false, "list available experiments")
		jsonRun    = flag.String("json", "", "run name: write per-experiment metrics to BENCH_<name>.json")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		quiet      = flag.Bool("q", false, "suppress experiment output (timings only)")
		traceOn    = flag.Bool("trace", false, "attach the flight recorder to every run (outputs must not change; benchgate watches the overhead)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-18s %-8s %s\n", e.ID, e.Paper, e.Description)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed, Shards: *shards, Trace: *traceOn}
	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	report := benchfmt.Report{
		Run:       *jsonRun,
		Scale:     opts.Scale,
		Seed:      opts.Seed,
		GoVersion: runtime.Version(),
		UnixTime:  time.Now().Unix(),
	}
	var mem runtime.MemStats
	for _, e := range toRun {
		runtime.ReadMemStats(&mem)
		allocs0 := mem.Mallocs
		events0 := sim.GlobalEvents()
		start := time.Now()
		out, err := e.Run(opts)
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		runtime.ReadMemStats(&mem)
		events := sim.GlobalEvents() - events0
		r := benchfmt.ExpResult{
			ID:           e.ID,
			Paper:        e.Paper,
			NsPerOp:      wall.Nanoseconds(),
			AllocsPerOp:  mem.Mallocs - allocs0,
			Events:       events,
			EventsPerSec: float64(events) / wall.Seconds(),
			OutputSHA256: fmt.Sprintf("%x", sha256.Sum256([]byte(out))),
		}
		report.Experiments = append(report.Experiments, r)
		if *quiet {
			fmt.Printf("%-18s %12v  %12d allocs  %10d events  %14.0f events/sec\n",
				e.ID, wall.Round(time.Millisecond), r.AllocsPerOp, r.Events, r.EventsPerSec)
			continue
		}
		fmt.Printf("=== %s (%s): %s ===\n%s(completed in %v wall time, %d events, %.0f events/sec)\n\n",
			e.ID, e.Paper, e.Description, out, wall.Round(time.Millisecond), r.Events, r.EventsPerSec)
	}

	if *jsonRun != "" {
		// A JSON run also records the shard-scaling trajectory: the fixed
		// 1024-node fleet benchmark at engine widths 1, 2, 4, 8, with
		// events/sec measured and the deterministic state hash captured so
		// benchgate can enforce shard invariance and track the speedup.
		report.GoMaxProcs = runtime.GOMAXPROCS(0)
		for _, k := range []int{1, 2, 4, 8} {
			start := time.Now()
			fr, err := fleet.Run(fleet.ScalingConfig(k))
			wall := time.Since(start)
			if err != nil {
				fmt.Fprintf(os.Stderr, "shard trajectory shards=%d: %v\n", k, err)
				os.Exit(1)
			}
			report.ShardTrajectory = append(report.ShardTrajectory, benchfmt.ShardPoint{
				Shards:       k,
				NsPerOp:      wall.Nanoseconds(),
				Events:       fr.Events,
				EventsPerSec: float64(fr.Events) / wall.Seconds(),
				StateHash:    fmt.Sprintf("%016x", fr.StateHash),
			})
			fmt.Fprintf(os.Stderr, "shard trajectory: shards=%d %12v %10d events %14.0f events/sec hash=%016x\n",
				k, wall.Round(time.Millisecond), fr.Events, float64(fr.Events)/wall.Seconds(), fr.StateHash)
		}
		// And the storage trajectory: the columnar pairstore built to
		// 10^5 and 10^6 pairs, persisted and reloaded, then planning a
		// 10% delta — bytes/pair and the plan hash gate hard (both are
		// deterministic), plan latency is tracked. The 10^7 point lives
		// in BenchmarkPairstoreScale for local runs; it is too slow for
		// every CI bench run.
		for _, pairs := range []int64{100_000, 1_000_000} {
			sr, err := experiments.MeasureStorageTemp(pairs, opts.Seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "storage trajectory pairs=%d: %v\n", pairs, err)
				os.Exit(1)
			}
			report.StorageTrajectory = append(report.StorageTrajectory, benchfmt.StoragePoint{
				Items:              sr.Items,
				Pairs:              sr.Pairs,
				BytesPerPair:       sr.BytesPerPair,
				DiskBytes:          sr.DiskBytes,
				IndexResidentBytes: sr.IndexResidentBytes,
				PlanNsPerOp:        sr.PlanNs,
				PlanHash:           sr.PlanHash,
				BloomHitRate:       sr.BloomHitRate,
			})
			fmt.Fprintf(os.Stderr, "storage trajectory: pairs=%-9d %6.2f bytes/pair  plan %8v  index %8d B  hash=%.16s\n",
				sr.Pairs, sr.BytesPerPair, time.Duration(sr.PlanNs).Round(time.Millisecond),
				sr.IndexResidentBytes, sr.PlanHash)
		}
		path := "BENCH_" + *jsonRun + ".json"
		if err := report.Write(path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiments)\n", path, len(report.Experiments))
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
