// Command benchgate is the CI benchmark regression gate: it compares a
// candidate BENCH_<run>.json (freshly produced by rocketbench) against
// the committed baseline and fails the build when determinism or
// performance regressed.
//
// Usage:
//
//	benchgate -baseline BENCH_pr2.json -candidate BENCH_ci.json
//	benchgate ... -max-regress 0.25 -strict-perf -summary "$GITHUB_STEP_SUMMARY"
//
// Gates:
//
//   - determinism (always fatal): every experiment present in the baseline
//     must exist in the candidate with a bit-identical output_sha256;
//   - performance (warning by default, fatal with -strict-perf): each
//     experiment's ns_per_op may grow at most -max-regress (default 25%).
//     Wall time on shared CI runners is noisy, which is why timing alone
//     does not fail the build unless asked to;
//   - storage (always fatal where deterministic): the pairstore scaling
//     trajectory's bytes/pair must stay under the 8 bytes/pair capability
//     floor at 10^6+ pairs and within 10% of the baseline at matched
//     sizes, and the delta-plan hash must match the baseline exactly.
//     Plan latency is wall-clock and therefore tracked like performance:
//     a drift beyond -max-regress warns (fails under -strict-perf).
//
// -summary appends a markdown table to the given file (pass
// $GITHUB_STEP_SUMMARY in CI to surface the diff on the job page).
package main

import (
	"flag"
	"fmt"
	"os"

	"rocket/internal/benchfmt"
)

func run() error {
	var (
		baseline   = flag.String("baseline", "BENCH_pr2.json", "committed baseline BENCH json")
		candidate  = flag.String("candidate", "BENCH_ci.json", "freshly produced BENCH json")
		maxRegress = flag.Float64("max-regress", 0.25, "tolerated fractional ns_per_op growth per experiment")
		strictPerf = flag.Bool("strict-perf", false, "fail (not warn) on perf regressions")
		summary    = flag.String("summary", "", "append a markdown summary to this file")
	)
	flag.Parse()

	base, err := benchfmt.Read(*baseline)
	if err != nil {
		return err
	}
	cand, err := benchfmt.Read(*candidate)
	if err != nil {
		return err
	}
	g := benchfmt.Gate(base, cand, benchfmt.GateOptions{
		MaxRegress:  *maxRegress,
		PerfIsFatal: *strictPerf,
	})
	fmt.Print(g.Text())
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.WriteString(g.Markdown()); err != nil {
			return err
		}
	}
	if g.Failed() {
		return fmt.Errorf("gate failed (%d failures)", len(g.Failures))
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
