// Command rocketqueue drives rocketd's batch mode: it reads a job
// manifest, schedules every job over one shared simulated cluster under
// the chosen policy, and prints a throughput/latency report.
//
// Usage:
//
//	rocketqueue -manifest jobs.json [-policy fair] [-seed 1] [-json]
//	rocketqueue -replay served.json
//	rocketqueue -example > jobs.json
//
// The manifest is JSON (package rocket/internal/jobspec):
//
//	{
//	  "nodes": 8,
//	  "policy": "fair",
//	  "max_queued": 0,
//	  "max_running": 0,
//	  "seed": 1,
//	  "jobs": [
//	    {"id": "big0", "tenant": "batch", "app": "microscopy",
//	     "items": 24, "nodes": 4, "arrival_ms": 0},
//	    {"id": "small1", "tenant": "interactive", "app": "forensics",
//	     "items": 16, "nodes": 1, "arrival_ms": 5}
//	  ]
//	}
//
// Apps are "forensics", "microscopy", or "bioinformatics"; items is the
// data-set size n. The -policy flag overrides the manifest's policy, so
// one manifest can be compared across fifo, sjf, and fair.
//
// -replay runs an arrival log recorded by a rocketd server (GET /v1/log,
// or the file the daemon writes on shutdown). The log is an ordinary
// manifest whose arrivals are exact nanoseconds, so the batch run takes
// the same admission and placement decisions the server took; with
// -json, the output is byte-comparable against the server's final
// metrics document. A log whose entries are out of arrival order (a
// served log never is; hand-merged ones can be) is validated and
// stably re-sorted with a warning, because submission indices drive
// derived IDs and seeds and an unsorted replay would silently diverge.
//
// -store attaches a persistent pair store: it is loaded when the file
// exists (warm start — jobs with store refs skip resident pairs) and
// saved back after the run, so repeated batch runs over growing
// datasets become incremental.
package main

import (
	"flag"
	"fmt"
	"os"

	"rocket"
	"rocket/internal/jobspec"
)

// The example's batch jobs are 6 nodes wide on an 8-node cluster: they
// serialize, and under FIFO the queued second batch job blocks the narrow
// interactive jobs even while 2 nodes idle — so comparing -policy fifo
// against sjf/fair on this manifest shows the scheduler's effect.
const exampleManifest = `{
  "nodes": 8,
  "policy": "fair",
  "seed": 1,
  "jobs": [
    {"id": "big0", "tenant": "batch", "app": "microscopy", "items": 24, "nodes": 6, "arrival_ms": 0},
    {"id": "big1", "tenant": "batch", "app": "microscopy", "items": 24, "nodes": 6, "arrival_ms": 0},
    {"id": "small0", "tenant": "interactive", "app": "forensics", "items": 16, "nodes": 1, "arrival_ms": 1},
    {"id": "small1", "tenant": "interactive", "app": "bioinformatics", "items": 16, "nodes": 1, "arrival_ms": 2},
    {"id": "small2", "tenant": "interactive", "app": "forensics", "items": 16, "nodes": 1, "arrival_ms": 3},
    {"id": "small3", "tenant": "interactive", "app": "bioinformatics", "items": 16, "nodes": 1, "arrival_ms": 4}
  ]
}
`

func run() error {
	var (
		path      = flag.String("manifest", "", "path to the job manifest (JSON)")
		replay    = flag.String("replay", "", "path to a rocketd arrival log to replay (same schema)")
		policy    = flag.String("policy", "", "override the manifest's policy: fifo, sjf, or fair")
		seed      = flag.Uint64("seed", 0, "override the manifest's seed")
		asJSON    = flag.Bool("json", false, "print fleet metrics as JSON instead of tables")
		example   = flag.Bool("example", false, "print an example manifest and exit")
		storePath = flag.String("store", "", "persistent pair store: loaded when present, saved back after the run")
	)
	flag.Parse()

	if *example {
		fmt.Print(exampleManifest)
		return nil
	}
	if *replay != "" {
		if *path != "" {
			return fmt.Errorf("-manifest and -replay are mutually exclusive")
		}
		*path = *replay
	}
	if *path == "" {
		flag.Usage()
		return fmt.Errorf("a -manifest or -replay file is required (try -example)")
	}
	raw, err := os.ReadFile(*path)
	if err != nil {
		return err
	}
	man, err := jobspec.Parse(raw)
	if err != nil {
		return fmt.Errorf("%s: %w", *path, err)
	}
	if *replay != "" {
		// An arrival log must be in arrival order: submission indices
		// drive derived IDs and seeds, so replaying an out-of-order log
		// as-is would silently derive different jobs than the server
		// ran. Normalize (stable sort) and say so instead.
		if man.Normalize() {
			fmt.Fprintf(os.Stderr,
				"rocketqueue: %s: out-of-order arrival_ns entries; re-sorted into arrival order before replay\n", *path)
		}
	}
	if *seed != 0 {
		man.Seed = *seed
	}
	if *policy != "" {
		man.Policy = *policy
	}

	cfg, err := man.Config()
	if err != nil {
		return err
	}
	var store *rocket.PairStore
	if *storePath != "" {
		store, _, err = rocket.LoadOrNewPairStore(*storePath)
		if err != nil {
			return err
		}
		cfg.Store = store
	}
	m, err := rocket.New(rocket.WithQueueConfig(cfg)).RunQueue()
	if err != nil {
		return err
	}
	if store != nil {
		if err := store.SealAndSave(*storePath); err != nil {
			return fmt.Errorf("save store: %w", err)
		}
	}
	if *asJSON {
		buf, err := m.JSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(buf)
		return nil
	}
	fmt.Print(m.Report())
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rocketqueue:", err)
		os.Exit(1)
	}
}
