// Command rocketqueue drives rocketd, the multi-job scheduler: it reads a
// job manifest, schedules every job over one shared simulated cluster
// under the chosen policy, and prints a throughput/latency report.
//
// Usage:
//
//	rocketqueue -manifest jobs.json [-policy fair] [-seed 1]
//	rocketqueue -example > jobs.json
//
// The manifest is JSON:
//
//	{
//	  "nodes": 8,
//	  "policy": "fair",
//	  "max_queued": 0,
//	  "max_running": 0,
//	  "seed": 1,
//	  "jobs": [
//	    {"id": "big0", "tenant": "batch", "app": "microscopy",
//	     "items": 24, "nodes": 4, "arrival_ms": 0},
//	    {"id": "small1", "tenant": "interactive", "app": "forensics",
//	     "items": 16, "nodes": 1, "arrival_ms": 5}
//	  ]
//	}
//
// Apps are "forensics", "microscopy", or "bioinformatics"; items is the
// data-set size n. The -policy flag overrides the manifest's policy, so
// one manifest can be compared across fifo, sjf, and fair.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rocket"
	"rocket/internal/apps/forensics"
	"rocket/internal/apps/microscopy"
	"rocket/internal/apps/phylo"
	"rocket/internal/sim"
)

type manifest struct {
	Nodes      int           `json:"nodes"`
	Policy     string        `json:"policy"`
	MaxQueued  int           `json:"max_queued"`
	MaxRunning int           `json:"max_running"`
	Seed       uint64        `json:"seed"`
	Jobs       []manifestJob `json:"jobs"`
}

type manifestJob struct {
	ID        string  `json:"id"`
	Tenant    string  `json:"tenant"`
	App       string  `json:"app"`
	Items     int     `json:"items"`
	Nodes     int     `json:"nodes"`
	ArrivalMS float64 `json:"arrival_ms"`
	Seed      uint64  `json:"seed"`
}

func buildApp(mj manifestJob, seed uint64) (rocket.Application, error) {
	if mj.Items < 2 {
		return nil, fmt.Errorf("job %q: items must be >= 2, got %d", mj.ID, mj.Items)
	}
	switch mj.App {
	case "forensics":
		return forensics.New(forensics.Params{N: mj.Items, Seed: seed}), nil
	case "microscopy":
		return microscopy.New(microscopy.Params{N: mj.Items, Seed: seed}), nil
	case "bioinformatics", "phylo":
		return phylo.New(phylo.Params{N: mj.Items, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("job %q: unknown app %q (known: forensics, microscopy, bioinformatics)", mj.ID, mj.App)
	}
}

// The example's batch jobs are 6 nodes wide on an 8-node cluster: they
// serialize, and under FIFO the queued second batch job blocks the narrow
// interactive jobs even while 2 nodes idle — so comparing -policy fifo
// against sjf/fair on this manifest shows the scheduler's effect.
const exampleManifest = `{
  "nodes": 8,
  "policy": "fair",
  "seed": 1,
  "jobs": [
    {"id": "big0", "tenant": "batch", "app": "microscopy", "items": 24, "nodes": 6, "arrival_ms": 0},
    {"id": "big1", "tenant": "batch", "app": "microscopy", "items": 24, "nodes": 6, "arrival_ms": 0},
    {"id": "small0", "tenant": "interactive", "app": "forensics", "items": 16, "nodes": 1, "arrival_ms": 1},
    {"id": "small1", "tenant": "interactive", "app": "bioinformatics", "items": 16, "nodes": 1, "arrival_ms": 2},
    {"id": "small2", "tenant": "interactive", "app": "forensics", "items": 16, "nodes": 1, "arrival_ms": 3},
    {"id": "small3", "tenant": "interactive", "app": "bioinformatics", "items": 16, "nodes": 1, "arrival_ms": 4}
  ]
}
`

func run() error {
	var (
		path    = flag.String("manifest", "", "path to the job manifest (JSON)")
		policy  = flag.String("policy", "", "override the manifest's policy: fifo, sjf, or fair")
		seed    = flag.Uint64("seed", 0, "override the manifest's seed")
		example = flag.Bool("example", false, "print an example manifest and exit")
	)
	flag.Parse()

	if *example {
		fmt.Print(exampleManifest)
		return nil
	}
	if *path == "" {
		flag.Usage()
		return fmt.Errorf("a -manifest file is required (try -example)")
	}
	raw, err := os.ReadFile(*path)
	if err != nil {
		return err
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return fmt.Errorf("%s: %w", *path, err)
	}
	if *seed != 0 {
		man.Seed = *seed
	}
	if *policy != "" {
		man.Policy = *policy
	}
	if man.Policy == "" {
		man.Policy = "fifo"
	}
	pol, err := rocket.ParseQueuePolicy(man.Policy)
	if err != nil {
		return err
	}

	jobs := make([]rocket.QueueJob, len(man.Jobs))
	for i, mj := range man.Jobs {
		appSeed := mj.Seed
		if appSeed == 0 {
			appSeed = man.Seed + uint64(i)
		}
		app, err := buildApp(mj, appSeed)
		if err != nil {
			return err
		}
		jobs[i] = rocket.QueueJob{
			ID:      mj.ID,
			Tenant:  mj.Tenant,
			App:     app,
			Nodes:   mj.Nodes,
			Arrival: sim.Millis(mj.ArrivalMS),
			Seed:    mj.Seed,
		}
	}

	m, err := rocket.RunQueue(rocket.QueueConfig{
		Jobs:       jobs,
		Nodes:      man.Nodes,
		Policy:     pol,
		MaxQueued:  man.MaxQueued,
		MaxRunning: man.MaxRunning,
		Seed:       man.Seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(m.Report())
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rocketqueue:", err)
		os.Exit(1)
	}
}
