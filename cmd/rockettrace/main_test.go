package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runCmd runs the CLI entry point and returns stdout; stderr must stay
// empty (a drop warning in the golden path would mean the fixture
// scenario outgrew the ring).
func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	var out, errw bytes.Buffer
	if code := run(args, &out, &errw); code != 0 {
		t.Fatalf("rockettrace %v: exit %d, stderr: %s", args, code, errw.String())
	}
	if errw.Len() != 0 {
		t.Fatalf("rockettrace %v: unexpected stderr: %s", args, errw.String())
	}
	return out.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden; run with -update if intended.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestGoldenSpansAndExport pins the exact bytes of the spans table and
// the Perfetto export over the committed tiny scenario.
func TestGoldenSpansAndExport(t *testing.T) {
	checkGolden(t, "tiny.spans.golden",
		runCmd(t, "spans", "-scenario", "testdata/tiny.yaml", "-limit", "0"))
	checkGolden(t, "tiny.trace.golden",
		runCmd(t, "export", "-scenario", "testdata/tiny.yaml"))
}

// TestExportRerunIdentical: two recordings of the same scenario export
// byte-identically (the CLI face of the determinism property).
func TestExportRerunIdentical(t *testing.T) {
	a := runCmd(t, "export", "-scenario", "testdata/tiny.yaml")
	b := runCmd(t, "export", "-scenario", "testdata/tiny.yaml")
	if a != b {
		t.Fatal("two exports of the same scenario differ")
	}
	if !strings.Contains(a, `"traceEvents":[`) || !strings.Contains(a, `"cat":"kernel"`) {
		t.Fatalf("export does not look like a span trace:\n%.400s", a)
	}
}

// TestTopAggregates: top renders a busy-time table over the recording.
func TestTopAggregates(t *testing.T) {
	out := runCmd(t, "top", "-scenario", "testdata/tiny.yaml", "-by", "kind")
	if !strings.Contains(out, "BUSY") || !strings.Contains(out, "kernel") {
		t.Fatalf("top output:\n%s", out)
	}
}

// TestLegacyModeStillWorks: the original flag-style invocation (used by
// `make smoke`) is untouched by the subcommand dispatch.
func TestLegacyModeStillWorks(t *testing.T) {
	out := runCmd(t, "-app", "forensics", "-n", "8", "-limit", "5")
	if !strings.Contains(out, "task timeline (Fig. 6 view):") {
		t.Fatalf("legacy output:\n%s", out)
	}
}
