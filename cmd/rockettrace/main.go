// Command rockettrace inspects Rocket's virtual-time instrumentation.
//
// Legacy mode (no subcommand) runs a small all-pairs workload with
// detailed profiling enabled and dumps the per-resource task timeline —
// the Fig. 6 view of Rocket's asynchronous processing:
//
//	rockettrace -app forensics -nodes 2 -n 24 -limit 120
//
// The subcommands run a declarative scenario with the flight recorder
// attached and render the recorded spans. Because the recorded timeline
// is deterministic, exporting the same scenario twice (at any engine
// width) yields byte-identical output — CI diffs two exports to prove
// it.
//
//	rockettrace spans  [-scenario file] [-shards N] [-seed N] [-limit N] [-engine]
//	rockettrace export [-scenario file] [-shards N] [-seed N] [-o out.json] [-engine]
//	rockettrace top    [-scenario file] [-shards N] [-seed N] [-by kind|track] [-limit N]
//
// export writes Chrome trace-event JSON; load it at ui.perfetto.dev or
// chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rocket"
	"rocket/internal/core"
	"rocket/internal/experiments"
	"rocket/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches subcommands; anything else (including flags) is the
// legacy Fig. 6 timeline mode, kept verbatim so existing invocations and
// the Makefile smoke target are untouched.
func run(args []string, out, errw io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "spans":
			return cmdSpans(args[1:], out, errw)
		case "export":
			return cmdExport(args[1:], out, errw)
		case "top":
			return cmdTop(args[1:], out, errw)
		case "help", "-h", "-help", "--help":
			usage(errw)
			return 0
		}
	}
	return legacy(args, out, errw)
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  rockettrace [-app NAME] [-nodes N] [-n N] [-limit N] [-seed N]   (Fig. 6 timeline)
  rockettrace spans  [-scenario file] [-shards N] [-seed N] [-limit N] [-engine]
  rockettrace export [-scenario file] [-shards N] [-seed N] [-o out.json] [-engine]
  rockettrace top    [-scenario file] [-shards N] [-seed N] [-by kind|track] [-limit N]`)
}

// spanFlags are the recording knobs shared by the span subcommands.
type spanFlags struct {
	scenario string
	shards   int
	seed     uint64
	capacity int
}

func (f *spanFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&f.scenario, "scenario", "scenarios/quickstart.yaml", "scenario file to run under the flight recorder")
	fs.IntVar(&f.shards, "shards", 0, "engine width for fleet scenarios (the exported timeline is identical at every width)")
	fs.Uint64Var(&f.seed, "seed", 0, "override the scenario seed (0 keeps the file's)")
	fs.IntVar(&f.capacity, "cap", 0, "per-lane span capacity (0 = 64Ki); oldest spans are overwritten")
}

// record runs the scenario with a flight recorder attached and returns
// the canonical snapshot. A non-empty drop count is warned about: an
// overflowing ring still exports, but the width-invariance guarantee is
// off for that recording.
func (f *spanFlags) record(errw io.Writer) (rocket.SpanSnapshot, error) {
	data, err := os.ReadFile(f.scenario)
	if err != nil {
		return rocket.SpanSnapshot{}, err
	}
	sc, err := scenario.Parse(data)
	if err != nil {
		return rocket.SpanSnapshot{}, fmt.Errorf("%s: %w", f.scenario, err)
	}
	lanes := f.shards
	if lanes < 1 {
		lanes = 1
	}
	rec := rocket.NewSpanRecorder(lanes, f.capacity)
	if _, err := scenario.Run(sc, scenario.RunOptions{Seed: f.seed, Shards: f.shards, Spans: rec}); err != nil {
		return rocket.SpanSnapshot{}, err
	}
	snap := rec.Snapshot()
	if snap.Dropped > 0 {
		fmt.Fprintf(errw, "rockettrace: ring overflow: %d spans dropped (raise -cap for a lossless, width-invariant export)\n",
			snap.Dropped)
	}
	return snap, nil
}

func cmdSpans(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("spans", flag.ContinueOnError)
	fs.SetOutput(errw)
	var f spanFlags
	f.register(fs)
	limit := fs.Int("limit", 200, "maximum span rows to print (0 = all)")
	engine := fs.Bool("engine", false, "include engine-internal (width-dependent) spans")
	if fs.Parse(args) != nil {
		return 2
	}
	snap, err := f.record(errw)
	if err != nil {
		fmt.Fprintln(errw, "rockettrace:", err)
		return 1
	}
	snap.WriteTable(out, *limit, rocket.TraceExportOptions{IncludeEngine: *engine})
	return 0
}

func cmdExport(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	fs.SetOutput(errw)
	var f spanFlags
	f.register(fs)
	outPath := fs.String("o", "-", "output file (- = stdout)")
	engine := fs.Bool("engine", false, "include engine-internal (width-dependent) spans")
	if fs.Parse(args) != nil {
		return 2
	}
	snap, err := f.record(errw)
	if err != nil {
		fmt.Fprintln(errw, "rockettrace:", err)
		return 1
	}
	w := out
	if *outPath != "-" {
		file, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(errw, "rockettrace:", err)
			return 1
		}
		defer file.Close()
		w = file
	}
	if err := rocket.ExportTrace(w, snap, rocket.TraceExportOptions{IncludeEngine: *engine}); err != nil {
		fmt.Fprintln(errw, "rockettrace:", err)
		return 1
	}
	return 0
}

func cmdTop(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	fs.SetOutput(errw)
	var f spanFlags
	f.register(fs)
	by := fs.String("by", "kind", "aggregation key: kind or track")
	limit := fs.Int("limit", 20, "maximum rows to print (0 = all)")
	if fs.Parse(args) != nil {
		return 2
	}
	if *by != "kind" && *by != "track" {
		fmt.Fprintf(errw, "rockettrace: -by %q (want kind or track)\n", *by)
		return 2
	}
	snap, err := f.record(errw)
	if err != nil {
		fmt.Fprintln(errw, "rockettrace:", err)
		return 1
	}
	snap.WriteTop(out, *by, *limit)
	return 0
}

// legacy is the original rockettrace: the per-resource task timeline of
// one profiled run.
func legacy(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("rockettrace", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		app   = fs.String("app", "forensics", "application: forensics, bioinformatics, or microscopy")
		nodes = fs.Int("nodes", 1, "number of simulated nodes")
		n     = fs.Int("n", 24, "approximate number of items (microscopy always runs its full 256)")
		limit = fs.Int("limit", 200, "maximum timeline rows to print (0 = all)")
		seed  = fs.Uint64("seed", 1, "random seed")
	)
	if fs.Parse(args) != nil {
		return 2
	}

	// Build the smallest scaled setup, then shrink the data set to n.
	setup, err := experiments.SetupByName(*app, experiments.Options{Scale: experimentsScaleFor(*n, *app), Seed: *seed})
	if err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	cl, err := rocket.Homogeneous(*nodes, rocket.DAS5Node(rocket.TitanXMaxwell))
	if err != nil {
		fmt.Fprintln(errw, err)
		return 1
	}
	m, err := core.Run(core.Config{
		App:           setup.App,
		Cluster:       cl,
		DeviceSlots:   setup.DevSlots,
		HostSlots:     setup.HostSlots,
		DistCache:     *nodes > 1,
		Seed:          *seed,
		DetailedTrace: true,
	})
	if err != nil {
		fmt.Fprintln(errw, err)
		return 1
	}
	fmt.Fprintf(out, "app=%s nodes=%d items=%d pairs=%d runtime=%v R=%.2f\n\n",
		*app, *nodes, setup.App.NumItems(), m.Pairs, m.Runtime, m.R)
	fmt.Fprintln(out, "busy time per thread class:")
	fmt.Fprint(out, m.Tracer.Summary())
	fmt.Fprintln(out, "\ntask timeline (Fig. 6 view):")
	if err := m.Tracer.WriteTimeline(out, *limit); err != nil {
		fmt.Fprintln(errw, err)
		return 1
	}
	return 0
}

// experimentsScaleFor picks a scale that brings the app's default data set
// down to roughly n items.
func experimentsScaleFor(n int, app string) int {
	defaults := map[string]int{
		"forensics":                4980,
		"bioinformatics":           2500,
		"microscopy":               256,
		"bioinformatics-cartesius": 6818,
	}
	total, ok := defaults[app]
	if !ok || n <= 0 || n >= total {
		return 1
	}
	return total / n
}
