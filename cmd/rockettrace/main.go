// Command rockettrace runs a small all-pairs workload with detailed
// profiling enabled and dumps the per-resource task timeline — the Fig. 6
// view of Rocket's asynchronous processing.
//
// Usage:
//
//	rockettrace -app forensics -nodes 2 -n 24 -limit 120
package main

import (
	"flag"
	"fmt"
	"os"

	"rocket/internal/core"
	"rocket/internal/experiments"

	"rocket"
)

func main() {
	var (
		app   = flag.String("app", "forensics", "application: forensics, bioinformatics, or microscopy")
		nodes = flag.Int("nodes", 1, "number of simulated nodes")
		n     = flag.Int("n", 24, "approximate number of items (microscopy always runs its full 256)")
		limit = flag.Int("limit", 200, "maximum timeline rows to print (0 = all)")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	// Build the smallest scaled setup, then shrink the data set to n.
	setup, err := experiments.SetupByName(*app, experiments.Options{Scale: experimentsScaleFor(*n, *app), Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cl, err := rocket.Homogeneous(*nodes, rocket.DAS5Node(rocket.TitanXMaxwell))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, err := core.Run(core.Config{
		App:           setup.App,
		Cluster:       cl,
		DeviceSlots:   setup.DevSlots,
		HostSlots:     setup.HostSlots,
		DistCache:     *nodes > 1,
		Seed:          *seed,
		DetailedTrace: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("app=%s nodes=%d items=%d pairs=%d runtime=%v R=%.2f\n\n",
		*app, *nodes, setup.App.NumItems(), m.Pairs, m.Runtime, m.R)
	fmt.Println("busy time per thread class:")
	fmt.Print(m.Tracer.Summary())
	fmt.Println("\ntask timeline (Fig. 6 view):")
	if err := m.Tracer.WriteTimeline(os.Stdout, *limit); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// experimentsScaleFor picks a scale that brings the app's default data set
// down to roughly n items.
func experimentsScaleFor(n int, app string) int {
	defaults := map[string]int{
		"forensics":                4980,
		"bioinformatics":           2500,
		"microscopy":               256,
		"bioinformatics-cartesius": 6818,
	}
	total, ok := defaults[app]
	if !ok || n <= 0 || n >= total {
		return 1
	}
	return total / n
}
