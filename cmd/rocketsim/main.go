// Command rocketsim runs declarative robustness scenarios: YAML files
// describing a platform, a fault script or a seeded chaos storm, and a
// set of assertions, executed over the deterministic simulation.
//
// Usage:
//
//	rocketsim run [-seed N] [-shards N] [-report out.json] [-csv] [-q] file...
//	rocketsim validate file...
//	rocketsim list [dir]
//
// run executes each scenario and prints its report; with -report the
// canonical JSON document is written (one file per scenario when more
// than one is given, using the scenario name). The exit status is 1 if
// any assertion failed. The same scenario with the same seed always
// produces the byte-identical JSON report — at every -shards width —
// which is what makes a committed scenario a regression test: CI runs
// each one twice and diffs.
//
// validate parses and checks scenarios (schema, node ranges, fault
// ordering, chaos shape) without running them.
//
// list shows every scenario under a directory (default scenarios/).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rocket/internal/report"
	"rocket/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		os.Exit(cmdRun(os.Args[2:]))
	case "validate":
		os.Exit(cmdValidate(os.Args[2:]))
	case "list":
		os.Exit(cmdList(os.Args[2:]))
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rocketsim: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rocketsim run [-seed N] [-shards N] [-report out.json] [-csv] [-q] file...
  rocketsim validate file...
  rocketsim list [dir]`)
}

func load(path string) (*scenario.Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := scenario.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed := fs.Uint64("seed", 0, "override the scenario seed (0 keeps the file's)")
	shards := fs.Int("shards", 0, "engine width for fleet scenarios (0 keeps the default; the report is identical at every width)")
	reportPath := fs.String("report", "", "write the canonical JSON report here (a directory or name template when running several scenarios)")
	csv := fs.Bool("csv", false, "print metrics as CSV instead of the text report")
	quiet := fs.Bool("q", false, "print only failures and the final verdict")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "rocketsim run: no scenario files given")
		return 2
	}
	allPass := true
	for _, path := range fs.Args() {
		sc, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rocketsim: %v\n", err)
			return 2
		}
		rep, err := scenario.Run(sc, scenario.RunOptions{Seed: *seed, Shards: *shards})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rocketsim: %v\n", err)
			return 2
		}
		if !rep.Pass {
			allPass = false
		}
		switch {
		case *csv:
			fmt.Print(rep.CSV())
		case *quiet:
			verdict := "PASS"
			if !rep.Pass {
				verdict = "FAIL"
			}
			fmt.Printf("%s: %s (%s)\n", verdict, rep.Scenario, rep.OutputSHA256[:12])
			if !rep.Pass {
				for _, a := range rep.Assertions {
					if !a.Pass {
						fmt.Printf("  FAIL %s: %s\n", a.Desc, a.Detail)
					}
				}
			}
		default:
			fmt.Print(rep.Text())
		}
		if *reportPath != "" {
			out, err := reportFile(*reportPath, rep.Scenario, fs.NArg() > 1)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rocketsim: %v\n", err)
				return 2
			}
			doc, err := rep.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "rocketsim: %v\n", err)
				return 2
			}
			if err := os.WriteFile(out, doc, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "rocketsim: %v\n", err)
				return 2
			}
			if !*quiet {
				fmt.Printf("report: %s\n", out)
			}
		}
	}
	if !allPass {
		return 1
	}
	return 0
}

// reportFile resolves where one scenario's JSON report goes: the path
// itself for a single scenario, or <dir-or-stem>/<name>.json when several
// scenarios share one -report destination.
func reportFile(dest, name string, multi bool) (string, error) {
	if st, err := os.Stat(dest); err == nil && st.IsDir() {
		return filepath.Join(dest, name+".json"), nil
	}
	if !multi {
		if dir := filepath.Dir(dest); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return "", err
			}
		}
		return dest, nil
	}
	stem := strings.TrimSuffix(dest, ".json")
	if err := os.MkdirAll(stem, 0o755); err != nil {
		return "", err
	}
	return filepath.Join(stem, name+".json"), nil
}

func cmdValidate(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "rocketsim validate: no scenario files given")
		return 2
	}
	status := 0
	for _, path := range args {
		sc, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "INVALID %s: %v\n", path, err)
			status = 1
			continue
		}
		faults, _ := sc.CompileFaults()
		n := 0
		if faults != nil {
			n = len(faults.Events)
		}
		fmt.Printf("ok %s: %s (%s, seed %d, %d fault events, %d assertions)\n",
			path, sc.Name, sc.Mode, sc.Seed, n, len(sc.Asserts))
	}
	return status
}

func cmdList(args []string) int {
	dir := "scenarios"
	if len(args) > 0 {
		dir = args[0]
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.yaml"))
	if err != nil || len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "rocketsim: no scenarios under %s\n", dir)
		return 2
	}
	sort.Strings(paths)
	t := report.NewTable("Scenarios in "+dir, "file", "name", "mode", "seed", "description")
	status := 0
	for _, path := range paths {
		sc, err := load(path)
		if err != nil {
			t.AddRow(filepath.Base(path), "INVALID", "", "", err.Error())
			status = 1
			continue
		}
		t.AddRow(filepath.Base(path), sc.Name, sc.Mode, sc.Seed, sc.Description)
	}
	fmt.Print(t.String())
	return status
}
