package main

import (
	"fmt"
	"io"
	"net/http"
	"testing"
)

// TestPprofListenerServesProfile: the -pprof listener answers a real
// CPU-profile request (the smoke test the flag exists for) and stays
// entirely off the public API mux.
func TestPprofListenerServesProfile(t *testing.T) {
	ln, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	url := fmt.Sprintf("http://%s/debug/pprof/profile?seconds=1", ln.Addr())
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("profile: status %d: %s", resp.StatusCode, body)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Fatal("profile: empty body")
	}
	// pprof profiles are gzip-compressed protobufs; check the magic.
	if body[0] != 0x1f || body[1] != 0x8b {
		t.Fatalf("profile: not gzip (first bytes % x)", body[:2])
	}
}
