// Command rocketd is the Rocket service daemon: a long-running HTTP
// server that admits all-pairs job submissions online and schedules them
// over one shared simulated cluster (see rocket/internal/serve for the
// API).
//
// Usage:
//
//	rocketd -addr :8080 -nodes 8 -policy fair -seed 1
//
// Submit and watch jobs with curl:
//
//	curl -s localhost:8080/v1/jobs -d '{"app":"forensics","items":16,"nodes":2}'
//	curl -s localhost:8080/v1/jobs/job0
//	curl -s localhost:8080/v1/jobs/job0/result
//	curl -N  localhost:8080/v1/jobs/job0/events
//	curl -s  localhost:8080/v1/log > served.json
//
// On SIGINT/SIGTERM the daemon stops admission (healthz turns 503, new
// submissions are refused), drains in-flight jobs within -drain-timeout,
// writes the replayable arrival log to -log, and prints the fleet report.
// Replaying the log offline reproduces the served trace exactly:
//
//	rocketqueue -replay served.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rocket"
)

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		nodes      = flag.Int("nodes", 8, "size of the shared simulated cluster")
		policy     = flag.String("policy", "fair", "placement policy: fifo, sjf, or fair")
		seed       = flag.Uint64("seed", 1, "fleet seed (drives per-job seed derivation)")
		maxQueued  = flag.Int("max-queued", 0, "admission limit: reject when this many jobs wait (0 = unlimited)")
		maxRunning = flag.Int("max-running", 0, "cap on concurrently executing jobs (0 = node-bound)")
		maxRetries = flag.Int("max-retries", 1, "requeues after partition loss before a job fails")
		workers    = flag.Int("workers", 0, "OS threads for inner simulations (0 = GOMAXPROCS)")
		shards     = flag.Int("shards", 1, "event-engine width advertised via /v1/capabilities (results are width-invariant)")
		timeScale  = flag.Float64("time-scale", 1, "virtual seconds per wall second for arrival mapping (0 = latch onto the virtual clock)")
		drainTO    = flag.Duration("drain-timeout", 60*time.Second, "graceful-drain deadline on SIGTERM")
		logPath    = flag.String("log", "", "write the replayable arrival log here on shutdown")
		storePath  = flag.String("store", "", "persistent pair store: loaded at start when present, saved on shutdown")
		statsPath  = flag.String("store-stats", "", "write pair-store stats JSON here on shutdown")
		trace      = flag.Bool("trace", false, "record scheduler spans and serve them as Perfetto JSON on /v1/trace")
		traceCap   = flag.Int("trace-cap", 0, "flight-recorder span capacity (0 = 64Ki); oldest spans are overwritten")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (kept off the public API listener)")
	)
	flag.Parse()

	pol, err := rocket.ParseQueuePolicy(*policy)
	if err != nil {
		return err
	}
	var store *rocket.PairStore
	var datasets []rocket.ServeDataset
	if *storePath != "" {
		var loaded bool
		store, loaded, err = rocket.LoadOrNewPairStore(*storePath)
		if err != nil {
			return err
		}
		if loaded {
			fmt.Fprintf(os.Stderr, "rocketd: warm pair store: %d resident results\n", store.Len())
		} else {
			fmt.Fprintf(os.Stderr, "rocketd: starting a fresh pair store at %s\n", *storePath)
		}
		// The dataset registry rides in a sidecar: a warm store is only
		// reachable through the datasets API when the registry that
		// produced it (IDs, seeds, computed versions) comes back too.
		raw, err := os.ReadFile(datasetsPath(*storePath))
		switch {
		case err == nil:
			if err := json.Unmarshal(raw, &datasets); err != nil {
				return fmt.Errorf("restore datasets: %w", err)
			}
			fmt.Fprintf(os.Stderr, "rocketd: restored %d datasets\n", len(datasets))
		case !os.IsNotExist(err):
			return err
		}
	}
	srv, err := rocket.Serve(rocket.ServeConfig{
		Nodes:         *nodes,
		Policy:        pol,
		MaxQueued:     *maxQueued,
		MaxRunning:    *maxRunning,
		MaxRetries:    *maxRetries,
		Workers:       *workers,
		Seed:          *seed,
		TimeScale:     *timeScale,
		Store:         store,
		Datasets:      datasets,
		Shards:        *shards,
		Trace:         *trace,
		TraceCapacity: *traceCap,
	})
	if err != nil {
		return err
	}

	if *pprofAddr != "" {
		pln, err := startPprof(*pprofAddr)
		if err != nil {
			return err
		}
		defer pln.Close()
		fmt.Fprintf(os.Stderr, "rocketd: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "rocketd: serving %d nodes (policy %s, seed %d) on http://%s\n",
		*nodes, pol, *seed, ln.Addr())

	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "rocketd: %v: draining (deadline %v)\n", sig, *drainTO)
	case err := <-httpErr:
		return err
	}

	// Stop admission first so in-flight HTTP submissions settle, then
	// drain the fleet within the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	m, err := srv.Shutdown(ctx)
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if *logPath != "" {
		buf, err := srv.Log().JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*logPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rocketd: wrote arrival log to %s (replay with: rocketqueue -replay %s)\n",
			*logPath, *logPath)
	}
	if *storePath != "" {
		if err := srv.Store().SealAndSave(*storePath); err != nil {
			return fmt.Errorf("save store: %w", err)
		}
		buf, err := json.MarshalIndent(srv.Datasets(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(datasetsPath(*storePath), append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("save datasets: %w", err)
		}
		st := srv.Store().Stats()
		fmt.Fprintf(os.Stderr, "rocketd: saved pair store to %s (%d entries, %d segments, %d bytes)\n",
			*storePath, st.Entries, st.Segments, st.Bytes)
	}
	if *statsPath != "" {
		buf, err := json.MarshalIndent(srv.Store().Stats(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*statsPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	hs.Shutdown(context.Background())
	fmt.Print(m.Report())
	return nil
}

// datasetsPath is the dataset-registry sidecar next to the store file.
func datasetsPath(storePath string) string { return storePath + ".datasets" }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rocketd:", err)
		os.Exit(1)
	}
}
