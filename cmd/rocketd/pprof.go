package main

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// startPprof serves the net/http/pprof handlers on their own listener
// and mux. The profiler is deliberately never mounted on the public API
// mux: profiling endpoints can stall a handler goroutine for seconds
// (profile?seconds=N) and expose process internals, so they bind to a
// separate, typically loopback-only, address.
func startPprof(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go http.Serve(ln, mux)
	return ln, nil
}
