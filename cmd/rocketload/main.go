// Command rocketload drives a rocketd server with synthetic traffic: an
// open-loop Poisson arrival process or closed-loop burst clients, over a
// mixed application workload, optionally spiced with fault injection. It
// reports submission/completion counts and wall-clock latency statistics.
//
// Usage:
//
//	rocketload -addr localhost:8080 -mode open -rate 50 -jobs 100
//	rocketload -addr localhost:8080 -mode closed -clients 8 -jobs 64
//	rocketload -local -jobs 32          # self-contained smoke: in-process rocketd
//
// Open-loop mode submits jobs at exponential inter-arrival times
// regardless of completions (rate in jobs per wall second), which probes
// admission backpressure; closed-loop mode runs -clients submitters that
// each wait for their job to finish before sending the next, which probes
// service latency. -fault-rate injects a node crash into that fraction of
// jobs (their first attempt), exercising requeue-under-retry on a live
// service. -scenario loads a scenario file (see scenarios/) and injects
// its compiled chaos/fault schedule instead of the synthetic crash, so
// HTTP load tests and the rocketsim harness share one fault vocabulary.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"rocket"
	"rocket/internal/jobspec"
	"rocket/internal/scenario"
	"rocket/internal/stats"
)

type options struct {
	base      string
	mode      string
	rate      float64
	jobs      int
	clients   int
	items     int
	maxNodes  int
	apps      []string
	tenants   int
	faultRate float64
	seed      uint64
	timeout   time.Duration
	// faults, when non-nil, is the scenario-compiled fault schedule in
	// wire form; -fault-rate gates which jobs carry it (clipped to each
	// job's partition width).
	faults []jobspec.Fault
}

// result is one job's client-side outcome. status is the job's terminal
// server-side status ("done", "failed", "rejected"), or "refused" when
// the server turned the submission away (backpressure/draining), "error"
// when the server was unreachable, "lost" on poll timeout.
type result struct {
	id     string
	status string
	wall   time.Duration // submit -> terminal status, as the client saw it
}

func buildSpec(rng *stats.RNG, opts options, k int) jobspec.Spec {
	spec := jobspec.Spec{
		Tenant: fmt.Sprintf("tenant%d", k%opts.tenants),
		App:    opts.apps[rng.Intn(len(opts.apps))],
		Items:  opts.items/2 + rng.Intn(opts.items/2+1) + 2,
		Nodes:  1 + rng.Intn(opts.maxNodes),
	}
	if opts.faultRate > 0 && rng.Float64() < opts.faultRate {
		if len(opts.faults) > 0 {
			spec.Faults = clipFaults(opts.faults, spec.Nodes)
		} else {
			spec.Faults = []jobspec.Fault{{
				Kind: "crash",
				Node: 0,
				AtMS: 1 + 9*rng.Float64(),
			}}
		}
	}
	return spec
}

// clipFaults keeps the scenario faults that fit a job's partition width:
// node events targeting node < nodes, link events with both endpoints
// inside. Paired events (crash+restart, cut+heal) always target the same
// nodes, so clipping never splits a pair.
func clipFaults(faults []jobspec.Fault, nodes int) []jobspec.Fault {
	var out []jobspec.Fault
	for _, f := range faults {
		switch f.Kind {
		case "crash", "restart", "gpu-slow":
			if f.Node >= nodes {
				continue
			}
		default:
			if f.A >= nodes || f.B >= nodes {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// errRefused marks a submission the server answered but turned away
// (validation, backpressure, draining) — distinct from the server being
// unreachable, which must fail the whole run.
var errRefused = fmt.Errorf("submission refused")

func submit(base string, spec jobspec.Spec) (string, error) {
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var reply struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("%w: %s (%d)", errRefused, reply.Error, resp.StatusCode)
	}
	return reply.ID, nil
}

// await polls until the job's status is terminal.
func await(base, id string, deadline time.Time) (string, error) {
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return "", err
		}
		var info struct {
			Status string `json:"status"`
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch info.Status {
		case "done", "failed", "rejected":
			return info.Status, nil
		}
		time.Sleep(time.Millisecond)
	}
	return "", fmt.Errorf("job %s: timed out", id)
}

// fire submits one job and tracks it to completion.
func fire(opts options, spec jobspec.Spec, out chan<- result) {
	start := time.Now()
	id, err := submit(opts.base, spec)
	if err != nil {
		status := "error"
		if errors.Is(err, errRefused) {
			status = "refused"
		}
		out <- result{status: status}
		return
	}
	status, err := await(opts.base, id, start.Add(opts.timeout))
	if err != nil {
		out <- result{id: id, status: "lost"}
		return
	}
	out <- result{id: id, status: status, wall: time.Since(start)}
}

// openLoop fires jobs at Poisson arrivals independent of completions.
func openLoop(opts options, out chan<- result) {
	rng := stats.NewRNG(opts.seed)
	inter := stats.Exponential{MeanV: 1 / opts.rate}
	var wg sync.WaitGroup
	for k := 0; k < opts.jobs; k++ {
		spec := buildSpec(rng, opts, k)
		wg.Add(1)
		go func() {
			defer wg.Done()
			fire(opts, spec, out)
		}()
		time.Sleep(time.Duration(inter.Sample(rng) * float64(time.Second)))
	}
	wg.Wait()
}

// closedLoop runs opts.clients submitters, each waiting for its job
// before sending the next; the job total is split across clients with
// the remainder spread over the first ones, so exactly opts.jobs run.
func closedLoop(opts options, out chan<- result) {
	var wg sync.WaitGroup
	per, extra := opts.jobs/opts.clients, opts.jobs%opts.clients
	next := 0
	for c := 0; c < opts.clients; c++ {
		n := per
		if c < extra {
			n++
		}
		first := next
		next += n
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(c, first, n int) {
			defer wg.Done()
			rng := stats.NewRNG(opts.seed + uint64(c)*0x9e37)
			for k := 0; k < n; k++ {
				fire(opts, buildSpec(rng, opts, first+k), out)
			}
		}(c, first, n)
	}
	wg.Wait()
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func run() error {
	var (
		addr      = flag.String("addr", "localhost:8080", "rocketd address (host:port)")
		local     = flag.Bool("local", false, "spin an in-process rocketd instead of dialing -addr")
		localN    = flag.Int("local-nodes", 4, "cluster size of the in-process rocketd (-local)")
		mode      = flag.String("mode", "closed", "load shape: open (Poisson) or closed (burst clients)")
		rate      = flag.Float64("rate", 20, "open-loop arrival rate, jobs per wall second")
		jobs      = flag.Int("jobs", 32, "total jobs to submit")
		clients   = flag.Int("clients", 8, "closed-loop client count")
		items     = flag.Int("items", 12, "mean data-set size per job")
		maxNodes  = flag.Int("max-nodes", 2, "widest partition a job may request")
		appsFlag  = flag.String("apps", "forensics,microscopy", "comma-separated app mix")
		tenants   = flag.Int("tenants", 3, "number of tenants to spread jobs over")
		faultRate = flag.Float64("fault-rate", 0, "fraction of jobs submitted with a crash fault (with -scenario: with its schedule)")
		scenPath  = flag.String("scenario", "", "scenario file whose compiled chaos/fault schedule replaces the synthetic crash")
		seed      = flag.Uint64("seed", 1, "workload-generator seed")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-job completion timeout")
	)
	flag.Parse()

	opts := options{
		base:      "http://" + *addr,
		mode:      *mode,
		rate:      *rate,
		jobs:      *jobs,
		clients:   *clients,
		items:     *items,
		maxNodes:  *maxNodes,
		apps:      strings.Split(*appsFlag, ","),
		tenants:   *tenants,
		faultRate: *faultRate,
		seed:      *seed,
		timeout:   *timeout,
	}
	if opts.rate <= 0 || opts.jobs <= 0 || opts.clients <= 0 || opts.tenants <= 0 {
		return fmt.Errorf("rate, jobs, clients, and tenants must be positive")
	}
	if *scenPath != "" {
		data, err := os.ReadFile(*scenPath)
		if err != nil {
			return err
		}
		sc, err := scenario.Parse(data)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", *scenPath, err)
		}
		sch, err := sc.CompileFaults()
		if err != nil {
			return fmt.Errorf("scenario %s: %w", *scenPath, err)
		}
		opts.faults = jobspec.FaultsFromSchedule(sch)
		if len(opts.faults) == 0 {
			return fmt.Errorf("scenario %s compiles to a fault-free schedule", *scenPath)
		}
		if opts.faultRate == 0 {
			opts.faultRate = 1 // loading a scenario means its faults apply
		}
		fmt.Fprintf(os.Stderr, "rocketload: %d faults from scenario %q at rate %.2f\n",
			len(opts.faults), sc.Name, opts.faultRate)
	}

	if *local {
		srv, err := rocket.Serve(rocket.ServeConfig{
			Nodes:      *localN,
			Policy:     rocket.PolicyFairShare,
			MaxRetries: 1,
			Seed:       *seed,
			TimeScale:  1,
		})
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Shutdown(context.Background())
		opts.base = ts.URL
		fmt.Fprintf(os.Stderr, "rocketload: in-process rocketd with %d nodes at %s\n", *localN, ts.URL)
	}

	out := make(chan result, opts.jobs)
	start := time.Now()
	switch opts.mode {
	case "open":
		openLoop(opts, out)
	case "closed":
		closedLoop(opts, out)
	default:
		return fmt.Errorf("unknown -mode %q (open or closed)", opts.mode)
	}
	wall := time.Since(start)
	close(out)

	counts := map[string]int{}
	var lat stats.Summary
	var sorted []float64
	for r := range out {
		counts[r.status]++
		if r.status == "done" {
			lat.Add(r.wall.Seconds())
			sorted = append(sorted, r.wall.Seconds())
		}
	}
	sort.Float64s(sorted)
	fmt.Printf("rocketload: %s mode, %d jobs in %.2fs wall (%.1f jobs/s)\n",
		opts.mode, opts.jobs, wall.Seconds(), float64(opts.jobs)/wall.Seconds())
	for _, st := range []string{"done", "failed", "rejected", "refused", "error", "lost"} {
		if counts[st] > 0 {
			fmt.Printf("  %-9s %d\n", st, counts[st])
		}
	}
	if lat.N() > 0 {
		fmt.Printf("  latency   mean %.1fms  p50 %.1fms  p95 %.1fms  max %.1fms\n",
			1e3*lat.Mean(), 1e3*percentile(sorted, 0.50),
			1e3*percentile(sorted, 0.95), 1e3*lat.Max())
	}
	if counts["lost"] > 0 {
		return fmt.Errorf("%d jobs lost (timeout)", counts["lost"])
	}
	if counts["error"] > 0 {
		return fmt.Errorf("%d submissions never reached the server", counts["error"])
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rocketload:", err)
		os.Exit(1)
	}
}
