// Command rocketstore is the pairstore lifecycle smoke check: it
// builds an all-pairs store of the requested size through the full
// columnar pipeline (auto-sealed ingestion → Seal → Compact → Save →
// Load), plans a 10% delta against the reloaded snapshot, and repeats
// the whole lifecycle to assert the plan is byte-identical across
// runs — the determinism the scheduler's replay guarantee leans on.
//
// Usage:
//
//	rocketstore -pairs 1000000 -seed 1 -runs 2 -stats store-stats.json
//
// Exit status is non-zero when any run violates the storage
// capabilities (plan hash drift between runs, a base pair not served,
// bytes/pair above the gate floor at 10^6+ pairs). -stats writes the
// per-run figures as JSON (CI uploads it as the smoke artifact).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rocket/internal/experiments"
)

// maxBytesPerPair mirrors the benchgate capability floor (see
// internal/benchfmt.gateStorage): at a million pairs and beyond the
// columnar store must keep a pair under 8 on-disk bytes.
const (
	maxBytesPerPair = 8.0
	scaleFloor      = 1_000_000
)

// runDoc is one lifecycle run's record in the -stats artifact.
type runDoc struct {
	Run                int     `json:"run"`
	Items              int     `json:"items"`
	Pairs              int64   `json:"pairs"`
	DiskBytes          int64   `json:"disk_bytes"`
	BytesPerPair       float64 `json:"bytes_per_pair"`
	IndexResidentBytes int64   `json:"index_resident_bytes"`
	PlanNs             int64   `json:"plan_ns"`
	PlanHash           string  `json:"plan_hash"`
	Served             int64   `json:"served"`
	BloomHitRate       float64 `json:"bloom_hit_rate"`
	Seals              uint64  `json:"seals"`
	Levels             int     `json:"levels"`
	Segments           int     `json:"segments"`
}

func run() error {
	var (
		pairs = flag.Int64("pairs", 1_000_000, "target all-pairs store size")
		seed  = flag.Uint64("seed", 1, "dataset lineage seed")
		runs  = flag.Int("runs", 2, "full lifecycle repetitions (plans must be byte-identical)")
		stats = flag.String("stats", "", "write per-run stats JSON to this file")
	)
	flag.Parse()

	var docs []runDoc
	var firstHash string
	for i := 0; i < *runs; i++ {
		sr, err := experiments.MeasureStorageTemp(*pairs, *seed)
		if err != nil {
			return err
		}
		docs = append(docs, runDoc{
			Run: i + 1, Items: sr.Items, Pairs: sr.Pairs,
			DiskBytes: sr.DiskBytes, BytesPerPair: sr.BytesPerPair,
			IndexResidentBytes: sr.IndexResidentBytes,
			PlanNs:             sr.PlanNs, PlanHash: sr.PlanHash, Served: sr.Served,
			BloomHitRate: sr.BloomHitRate, Seals: sr.Seals, Levels: sr.Levels,
			Segments: sr.Segments,
		})
		fmt.Printf("run %d: %d pairs over %d items  %.2f bytes/pair  %d seals -> %d segments in %d levels\n",
			i+1, sr.Pairs, sr.Items, sr.BytesPerPair, sr.Seals, sr.Segments, sr.Levels)
		fmt.Printf("run %d: plan %.0fms over %d resident index bytes, served %d/%d, bloom hit rate %.0f%%, hash %.16s\n",
			i+1, float64(sr.PlanNs)/1e6, sr.IndexResidentBytes, sr.Served, sr.Pairs,
			100*sr.BloomHitRate, sr.PlanHash)

		if sr.Served != sr.Pairs {
			return fmt.Errorf("run %d: plan served %d of %d resident pairs", i+1, sr.Served, sr.Pairs)
		}
		if sr.Pairs >= scaleFloor && sr.BytesPerPair > maxBytesPerPair {
			return fmt.Errorf("run %d: %.2f bytes/pair exceeds the %.0f bytes/pair floor",
				i+1, sr.BytesPerPair, maxBytesPerPair)
		}
		if i == 0 {
			firstHash = sr.PlanHash
		} else if sr.PlanHash != firstHash {
			return fmt.Errorf("run %d: plan hash %.16s differs from run 1 (%.16s): lifecycle is not deterministic",
				i+1, sr.PlanHash, firstHash)
		}
	}
	fmt.Printf("%d runs, plans byte-identical\n", *runs)

	if *stats != "" {
		buf, err := json.MarshalIndent(docs, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*stats, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rocketstore:", err)
		os.Exit(1)
	}
}
