// Command rocketgen generates synthetic data sets for the three
// applications and writes them to disk, so the examples and the
// real-kernel pipeline can run against actual files.
//
// Usage:
//
//	rocketgen -app forensics  -n 40 -out ./data/images
//	rocketgen -app phylogeny  -n 24 -out ./data/proteomes
//	rocketgen -app microscopy -n 16 -out ./data/particles
package main

import (
	"flag"
	"fmt"
	"os"

	"rocket/internal/apps/forensics"
	"rocket/internal/apps/microscopy"
	"rocket/internal/apps/phylo"
)

func main() {
	var (
		app  = flag.String("app", "", "application: forensics, phylogeny, or microscopy")
		n    = flag.Int("n", 16, "number of items to generate")
		out  = flag.String("out", "", "output directory")
		seed = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *out == "" || *app == "" {
		flag.Usage()
		os.Exit(2)
	}

	var err error
	switch *app {
	case "forensics":
		err = forensics.WriteDataset(forensics.RealParams{N: *n, Seed: *seed}, *out)
	case "phylogeny", "phylo", "bioinformatics":
		err = phylo.WriteDataset(phylo.RealParams{N: *n, Seed: *seed}, *out)
	case "microscopy":
		err = microscopy.WriteDataset(microscopy.RealParams{N: *n, Seed: *seed}, *out)
	default:
		err = fmt.Errorf("unknown application %q", *app)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d %s files to %s\n", *n, *app, *out)
}
