module rocket

go 1.22
