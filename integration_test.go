package rocket_test

// Integration tests: end-to-end runs through the public API asserting the
// paper's qualitative results (the shapes EXPERIMENTS.md reports) and the
// cross-module accounting identities that tie the cache hierarchy, the
// distributed cache, and the load pipeline together.

import (
	"strings"
	"testing"

	"rocket"
	"rocket/internal/apps/forensics"
	"rocket/internal/apps/phylo"
	"rocket/internal/core"
	"rocket/internal/experiments"
	"rocket/internal/trace"
)

// tinyOptions keeps integration runs fast.
var tinyOptions = experiments.Options{Scale: 25, Seed: 1}

func runForensics(t *testing.T, nodes int, mutate func(*core.Config)) *rocket.Metrics {
	t.Helper()
	app := forensics.New(forensics.Params{N: 200, Seed: 1})
	opts := []rocket.Option{
		rocket.WithHomogeneous(nodes, rocket.DAS5Node(rocket.TitanXMaxwell)),
		rocket.WithSeed(1),
		rocket.WithDeviceSlots(12),
		rocket.WithHostSlots(42),
	}
	if mutate != nil {
		opts = append(opts, rocket.WithConfig(mutate))
	}
	m, err := rocket.New(opts...).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIntegrationSuperLinearSpeedupWithDistCache(t *testing.T) {
	one := runForensics(t, 1, nil)
	eight := runForensics(t, 8, func(c *core.Config) { c.DistCache = true })
	speedup := float64(one.Runtime) / float64(eight.Runtime)
	if speedup <= 8 {
		t.Errorf("speedup with distributed cache = %.2fx on 8 nodes, expected super-linear (> 8x)", speedup)
	}
	eightOff := runForensics(t, 8, nil)
	speedupOff := float64(one.Runtime) / float64(eightOff.Runtime)
	if speedupOff >= speedup {
		t.Errorf("speedup without distributed cache (%.2fx) not below with (%.2fx)", speedupOff, speedup)
	}
}

func TestIntegrationDistCacheLowersRAndIO(t *testing.T) {
	on := runForensics(t, 8, func(c *core.Config) { c.DistCache = true })
	off := runForensics(t, 8, nil)
	if on.R >= off.R {
		t.Errorf("R with cache %.2f >= without %.2f", on.R, off.R)
	}
	if on.IOBytes >= off.IOBytes {
		t.Errorf("IO bytes with cache %d >= without %d", on.IOBytes, off.IOBytes)
	}
}

func TestIntegrationRMonotonicInCacheSize(t *testing.T) {
	var prev float64
	for i, host := range []int{10, 20, 42, 84} {
		host := host
		m := runForensics(t, 1, func(c *core.Config) { c.HostSlots = host })
		if i > 0 && m.R > prev+0.01 {
			t.Errorf("R grew with larger cache: %.2f (host=%d) after %.2f", m.R, host, prev)
		}
		prev = m.R
	}
}

// The accounting identities that tie the levels together: every load is a
// device miss that also missed the host; with the distributed cache on,
// every host miss issues exactly one DHT request, and every DHT miss
// becomes a load.
func TestIntegrationAccountingIdentities(t *testing.T) {
	m := runForensics(t, 4, func(c *core.Config) { c.DistCache = true })
	if m.DHT.Requests != m.HostCache.Misses {
		t.Errorf("DHT requests %d != host misses %d", m.DHT.Requests, m.HostCache.Misses)
	}
	if m.Loads != m.DHT.Misses {
		t.Errorf("loads %d != DHT misses %d", m.Loads, m.DHT.Misses)
	}
	var dhtHits uint64
	for _, h := range m.DHT.HitAtHop {
		dhtHits += h
	}
	if dhtHits+m.DHT.Misses != m.DHT.Requests {
		t.Errorf("DHT outcomes %d+%d != requests %d", dhtHits, m.DHT.Misses, m.DHT.Requests)
	}
	if m.HostCache.Misses > m.DevCache.Misses {
		t.Errorf("host misses %d > device misses %d (host is only consulted on device miss)",
			m.HostCache.Misses, m.DevCache.Misses)
	}
	if m.Tracer.Count(trace.ClassGPU, trace.KindCompare) != m.Pairs {
		t.Errorf("compare kernels %d != pairs %d",
			m.Tracer.Count(trace.ClassGPU, trace.KindCompare), m.Pairs)
	}
	if m.Tracer.Count(trace.ClassIO, trace.KindIO) != m.Loads {
		t.Errorf("IO tasks %d != loads %d", m.Tracer.Count(trace.ClassIO, trace.KindIO), m.Loads)
	}
}

func TestIntegrationNoDistCacheNoDHTTraffic(t *testing.T) {
	m := runForensics(t, 4, nil)
	if m.DHT.Requests != 0 {
		t.Errorf("DHT requests %d with distributed cache disabled", m.DHT.Requests)
	}
	// Loads equal host misses exactly: every host miss goes straight to
	// the load pipeline.
	if m.Loads != m.HostCache.Misses {
		t.Errorf("loads %d != host misses %d", m.Loads, m.HostCache.Misses)
	}
}

func TestIntegrationRuntimeNeverBeatsModelBound(t *testing.T) {
	for _, s := range experiments.AllSetups(tinyOptions) {
		s := s
		m, err := rocket.New(
			rocket.WithHomogeneous(1, rocket.DAS5Node(rocket.TitanXMaxwell)),
			rocket.WithSeed(1),
			rocket.WithDeviceSlots(s.DevSlots),
			rocket.WithHostSlots(s.HostSlots),
		).Run(s.App)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		// Allow ~3% sampling slack: Tmin uses distribution means.
		if eff := experimentEfficiency(s, m); eff > 1.03 {
			t.Errorf("%s: efficiency %.3f beats the model lower bound", s.Name, eff)
		}
	}
}

func experimentEfficiency(s experiments.Setup, m *rocket.Metrics) float64 {
	return s.Efficiency(m, 1)
}

func TestIntegrationHeterogeneousBalance(t *testing.T) {
	app := phylo.New(phylo.Params{N: 120, Seed: 2})
	m, err := rocket.New(
		rocket.WithTopology(rocket.PaperTopology()...),
		rocket.WithSeed(1),
		rocket.WithDistCache(true),
		rocket.WithDeviceSlots(20),
		rocket.WithHostSlots(60),
		rocket.WithThroughputWindow(1e9), // 1s buckets
	).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	pairsOf := func(id string) float64 {
		ts := m.DeviceThroughput[id]
		if ts == nil {
			return 0
		}
		var total float64
		for _, v := range ts.Buckets {
			total += v
		}
		return total
	}
	k20m := pairsOf("node0/gpu0") // speed 0.45
	rtx := pairsOf("node2/gpu0")  // speed 2.05
	if rtx <= k20m {
		t.Errorf("RTX2080Ti (%v pairs) should out-process K20m (%v pairs)", rtx, k20m)
	}
}

func TestIntegrationExperimentOutputsDeterministic(t *testing.T) {
	for _, id := range []string{"fig8", "fig11"} {
		e, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		a, err := e.Run(tinyOptions)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run(tinyOptions)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s output differs across identical runs", id)
		}
	}
}

func TestIntegrationRockettraceStyleRun(t *testing.T) {
	// Mirror what cmd/rockettrace does and check timeline rendering.
	s := experiments.ForensicsSetup(experiments.Options{Scale: 100, Seed: 1})
	m, err := rocket.New(
		rocket.WithHomogeneous(1, rocket.DAS5Node(rocket.TitanXMaxwell)),
		rocket.WithSeed(1),
		rocket.WithDeviceSlots(s.DevSlots),
		rocket.WithHostSlots(s.HostSlots),
		rocket.WithConfig(func(c *rocket.Config) { c.DetailedTrace = true }),
	).Run(s.App)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := m.Tracer.WriteTimeline(&b, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"parse", "compare", "io"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q tasks:\n%s", want, out[:min(len(out), 500)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
