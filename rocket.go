// Package rocket is the public API of the Rocket reproduction: a framework
// for efficient and scalable all-pairs computations on (simulated)
// heterogeneous GPU platforms, after Heldens et al., SC 2020.
//
// An all-pairs application evaluates a user-defined comparison for every
// pair of items in a data set. Rocket maximizes data reuse with a
// three-level software cache (GPU device memory, host memory, and a
// cluster-wide distributed cache), balances irregular work over
// heterogeneous GPUs with divide-and-conquer hierarchical work-stealing,
// and overlaps I/O, CPU work, PCIe transfers, and GPU kernels through
// fully asynchronous processing.
//
// Quick start:
//
//	app := forensics.New(forensics.Params{N: 996})
//	r := rocket.New(
//		rocket.WithHomogeneous(16, rocket.DAS5Node(rocket.TitanXMaxwell)),
//		rocket.WithDistCache(true),
//	)
//	metrics, err := r.Run(app)
//
// Runners are reusable: each Run simulates a fresh cluster, so the same
// Runner yields bit-identical Metrics for the same application and seed.
//
// Because Go has no mature CUDA bindings, the hardware substrate (GPUs,
// network, storage) is a deterministic discrete-event simulation; the
// runtime system itself — caches, scheduling, the distributed-cache
// protocol, asynchronous pipelines — is real, fully exercised code. See
// DESIGN.md for the substitution argument and EXPERIMENTS.md for the
// reproduced results.
package rocket

import (
	"io"

	"rocket/internal/cluster"
	"rocket/internal/core"
	"rocket/internal/gpu"
	"rocket/internal/obs"
	"rocket/internal/pairstore"
	"rocket/internal/sched"
	"rocket/internal/serve"
)

// Re-exported core types: see package rocket/internal/core for full
// documentation.
type (
	// Config configures one run; App and Cluster are required.
	Config = core.Config
	// Metrics is the outcome of a run.
	Metrics = core.Metrics
	// Application is the cost-model interface every application
	// implements (paper Fig. 3).
	Application = core.Application
	// Computer is the optional real-kernel extension.
	Computer = core.Computer
	// Result is one collected comparison output.
	Result = core.Result
	// NodeSpec describes one node's hardware.
	NodeSpec = cluster.NodeSpec
	// Cluster is a simulated platform.
	Cluster = cluster.Cluster
	// GPUModel identifies a GPU product.
	GPUModel = gpu.Model
)

// Steal policies (see core.StealPolicy).
const (
	StealHierarchical = core.StealHierarchical
	StealFlat         = core.StealFlat
	StealCacheAware   = core.StealCacheAware
)

// GPU models of the evaluation platforms.
var (
	TitanXMaxwell = gpu.TitanXMaxwell
	TitanXPascal  = gpu.TitanXPascal
	GTX980        = gpu.GTX980
	GTXTitan      = gpu.GTXTitan
	K20m          = gpu.K20m
	K40m          = gpu.K40m
	RTX2080Ti     = gpu.RTX2080Ti
)

// GiB is 2^30 bytes, for sizing host caches.
const GiB = gpu.GiB

// Scheduler types: see package rocket/internal/sched (rocketd) for full
// documentation.
type (
	// QueueConfig configures one multi-job scheduler run.
	QueueConfig = sched.Config
	// QueueJob is one all-pairs workload submitted to the scheduler.
	QueueJob = sched.Job
	// QueueMetrics is the fleet-wide outcome of a scheduler run.
	QueueMetrics = sched.Metrics
	// JobMetrics is one job's outcome within QueueMetrics.
	JobMetrics = sched.JobMetrics
	// QueuePolicy selects the placement order of queued jobs.
	QueuePolicy = sched.Policy
)

// Queue policies (see sched.Policy).
const (
	PolicyFIFO      = sched.PolicyFIFO
	PolicySJF       = sched.PolicySJF
	PolicyFairShare = sched.PolicyFairShare
)

// ParseQueuePolicy maps a manifest name ("fifo", "sjf", "fair") to a
// policy.
func ParseQueuePolicy(name string) (QueuePolicy, error) { return sched.ParsePolicy(name) }

// Online-scheduling types: see package rocket/internal/sched (Online) and
// rocket/internal/serve.
type (
	// QueueSubmitter is the online scheduler: jobs are submitted while
	// the fleet runs, and every served trace is replayable offline.
	QueueSubmitter = sched.Online
	// QueueJobInfo is a point-in-time snapshot of one online submission.
	QueueJobInfo = sched.JobInfo
	// QueueJobStatus is an online submission's lifecycle position.
	QueueJobStatus = sched.JobStatus
	// QueueEvent is one entry of the online scheduler's event stream.
	QueueEvent = sched.Event
	// ServeConfig configures the rocketd HTTP service layer.
	ServeConfig = serve.Config
	// ServeDataset is one registered append-only dataset (the unit of
	// incremental serving); persisted across daemon restarts alongside
	// the pair store.
	ServeDataset = serve.Dataset
	// Server is the rocketd HTTP service: an online scheduler behind a
	// REST + SSE API with a replayable arrival log.
	Server = serve.Server
)

// ErrShuttingDown is returned by QueueSubmitter.Submit once Shutdown has
// begun.
var ErrShuttingDown = sched.ErrShuttingDown

// StartQueue starts the scheduler in online mode: cfg.Jobs must be empty,
// and jobs enter through Submit while the fleet runs. Wall-clock arrival
// order is bridged onto the deterministic virtual-time axis; the recorded
// arrival log (QueueSubmitter.Log) replays through RunQueue with
// identical results.
func StartQueue(cfg QueueConfig) (*QueueSubmitter, error) { return sched.StartOnline(cfg) }

// Serve starts rocketd's HTTP service layer over an online scheduler.
// The returned server exposes its http.Handler; pair it with an
// http.Server and call Shutdown to drain.
func Serve(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// Pair-store types: see package rocket/internal/pairstore for full
// documentation. The store is what makes repeated all-pairs workloads
// incremental: results are keyed by content (item digests), runs skip
// pairs that are already resident, and a dataset that grows from n to
// n+k items costs only the k·n + k(k-1)/2 new pairs.
type (
	// PairStore is the persistent all-pairs result store: an append-only
	// segment log with an in-memory content-addressed index.
	PairStore = pairstore.Store
	// PairStoreSnapshot is an immutable view a run consults (Config.Store).
	PairStoreSnapshot = pairstore.Snapshot
	// PairBatch collects one run's emitted results (Config.StoreBatch)
	// for a post-run merge.
	PairBatch = pairstore.Batch
	// PairDigest identifies one item's content within a dataset lineage.
	PairDigest = pairstore.Digest
)

// Observability types: see package rocket/internal/obs for full
// documentation. The flight recorder collects virtual-time spans whose
// exported timelines are byte-identical across engine widths and reruns
// — instrumentation under the same determinism contract as the results.
type (
	// SpanRecorder is the flight recorder: per-lane fixed-size rings of
	// virtual-time spans, nil-safe (a nil recorder is the off state).
	SpanRecorder = obs.Recorder
	// Span is one recorded interval of virtual time on a track.
	Span = obs.Span
	// SpanSnapshot is a canonical-order copy of a recorder's contents.
	SpanSnapshot = obs.Snapshot
	// TraceExportOptions controls ExportTrace (engine-span inclusion).
	TraceExportOptions = obs.ExportOptions
)

// NewSpanRecorder returns a flight recorder with the given number of
// lanes (one per engine shard; minimum 1) and per-lane span capacity
// (0 = the 64Ki default). Pass it to New via WithSpans.
func NewSpanRecorder(lanes, capacity int) *SpanRecorder { return obs.New(lanes, capacity) }

// ExportTrace writes a span snapshot as Chrome trace-event JSON,
// loadable by Perfetto (ui.perfetto.dev) and chrome://tracing. The byte
// stream is a pure function of the snapshot, so exports diff cleanly.
func ExportTrace(w io.Writer, snap SpanSnapshot, opts TraceExportOptions) error {
	return obs.WriteTrace(w, snap, opts)
}

// NewPairStore returns an empty pair store.
func NewPairStore() *PairStore { return pairstore.New() }

// NewPairBatch returns an empty emission batch.
func NewPairBatch() *PairBatch { return pairstore.NewBatch() }

// LoadPairStore reloads a store saved with PairStore.Save.
func LoadPairStore(path string) (*PairStore, error) { return pairstore.Load(path) }

// LoadOrNewPairStore reloads the store at path, or returns a fresh one
// (loaded = false) when no file exists there yet. Pair it with
// PairStore.SealAndSave for the CLI persistence lifecycle.
func LoadOrNewPairStore(path string) (s *PairStore, loaded bool, err error) {
	return pairstore.LoadOrNew(path)
}

// PairDigestFunc returns the per-item digest function of a dataset
// lineage (store namespace, application name, dataset seed); wire it to
// Config.ItemDigest.
func PairDigestFunc(ref, app string, seed uint64) func(item int) PairDigest {
	return pairstore.DigestFunc(ref, app, seed)
}

// DeltaPairs returns the size of the minimal new-vs-all pair set when a
// dataset grows from base to n items.
func DeltaPairs(n, base int) int64 { return pairstore.DeltaPairs(n, base) }

// DAS5Node returns the paper's DAS-5 node type: 16 cores and a 40 GiB host
// cache, with the given GPUs installed.
func DAS5Node(gpus ...GPUModel) NodeSpec {
	return NodeSpec{Cores: 16, HostCacheBytes: 40 * GiB, GPUs: gpus}
}

// CartesiusNode returns the paper's Cartesius node type: 16 cores, an
// 80 GiB host cache, and two Tesla K40m GPUs (§6.2).
func CartesiusNode() NodeSpec {
	return NodeSpec{Cores: 16, HostCacheBytes: 80 * GiB, GPUs: []GPUModel{K40m, K40m}}
}

// Homogeneous builds a platform of n identical nodes.
func Homogeneous(n int, spec NodeSpec) (*Cluster, error) {
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = spec
	}
	return cluster.New(specs, cluster.DefaultConfig())
}

// Heterogeneous builds a platform from explicit per-node specs.
func Heterogeneous(specs []NodeSpec) (*Cluster, error) {
	return cluster.New(specs, cluster.DefaultConfig())
}

// PaperTopology returns the four mixed-generation node specs of §6.5:
// node I (K20m), node II (GTX980 + TitanX Pascal), node III (2x
// RTX2080Ti), and node IV (GTX Titan + TitanX Pascal). Pass it to
// WithTopology.
func PaperTopology() []NodeSpec {
	return []NodeSpec{
		DAS5Node(K20m),
		DAS5Node(GTX980, TitanXPascal),
		DAS5Node(RTX2080Ti, RTX2080Ti),
		DAS5Node(GTXTitan, TitanXPascal),
	}
}

// PaperHeterogeneous builds the §6.5 platform from PaperTopology.
func PaperHeterogeneous() (*Cluster, error) {
	return Heterogeneous(PaperTopology())
}

// Cartesius builds the §6.6 supercomputer platform with n nodes (2 GPUs
// per node, up to 48 nodes = 96 GPUs in the paper).
func Cartesius(n int) (*Cluster, error) {
	return Homogeneous(n, CartesiusNode())
}
