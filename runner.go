package rocket

import (
	"fmt"

	"rocket/internal/cluster"
	"rocket/internal/core"
	"rocket/internal/fault"
	"rocket/internal/fleet"
	"rocket/internal/sched"
	"rocket/internal/sim"
)

// Time is the simulation clock (nanoseconds of virtual time); see
// rocket/internal/sim for constructors (sim.Micros, sim.Millis, ...).
type Time = sim.Time

// FaultSchedule is a deterministic fault-injection schedule; see
// rocket/internal/fault.
type FaultSchedule = fault.Schedule

// FaultProbe is one timed health observation armed inside virtual time;
// see rocket/internal/fault.
type FaultProbe = fault.Probe

// ChaosConfig parameterizes a seeded fault storm whose Generate method
// samples a replayable FaultSchedule; see rocket/internal/fault.
type ChaosConfig = fault.ChaosConfig

// FleetConfig configures a fleet-protocol run over the sharded event
// engine; see rocket/internal/fleet.
type FleetConfig = fleet.Config

// FleetResult is a fleet run's deterministic summary.
type FleetResult = fleet.Result

// Elasticity parameterizes seeded membership churn for fleet runs: a
// join wave (instant/linear/exponential/wave arrivals with cold-start
// jitter) plus spot-style preemptions, all a pure function of the seed;
// see rocket/internal/fault.
type Elasticity = fault.Elasticity

// Autoscale is the elastic-capacity policy of queue runs: a slot pool
// that grows against queue depth and deadline pressure and shrinks on
// idle timeout; see rocket/internal/sched.
type Autoscale = sched.Autoscale

// Preemption is one scheduled spot reclaim of an autoscaled slot.
type Preemption = sched.Preemption

// An Option configures a Runner; pass options to New.
type Option func(*Runner)

// Runner is the configured entry point of the redesigned API: a platform
// description plus run settings, built once with New and reused across
// runs. Unlike a *Cluster (which accumulates accounting and must not be
// reused), a Runner built from a topology constructs a fresh cluster for
// every Run, so the same Runner always produces the same Metrics for the
// same application and seed.
//
//	r := rocket.New(
//		rocket.WithHomogeneous(16, rocket.DAS5Node(rocket.TitanXMaxwell)),
//		rocket.WithDistCache(true),
//		rocket.WithSeed(1),
//	)
//	metrics, err := r.Run(app)
type Runner struct {
	cfg    Config // template; App and Cluster are filled per run
	topo   []NodeSpec
	fabric cluster.Config

	// explicit cluster (WithCluster): consumed by the first Run, because
	// clusters accumulate I/O and network accounting across runs.
	cluster     *Cluster
	clusterUsed bool

	queue   QueueConfig
	elastic *Elasticity
	shards  int
	err     error
}

// New builds a Runner from functional options. Option errors (an invalid
// topology, say) are deferred: they surface from the first Run or
// RunQueue call, so New itself never fails and chains cleanly.
func New(opts ...Option) *Runner {
	r := &Runner{fabric: cluster.DefaultConfig(), shards: 1}
	for _, o := range opts {
		o(r)
	}
	return r
}

// WithTopology describes the platform as explicit per-node hardware
// specs; a fresh cluster is built from them for every Run.
func WithTopology(specs ...NodeSpec) Option {
	return func(r *Runner) {
		if len(specs) == 0 {
			r.fail(fmt.Errorf("rocket: WithTopology needs at least one node"))
			return
		}
		r.topo = append([]NodeSpec(nil), specs...)
	}
}

// WithHomogeneous describes a platform of n identical nodes.
func WithHomogeneous(n int, spec NodeSpec) Option {
	return func(r *Runner) {
		if n < 1 {
			r.fail(fmt.Errorf("rocket: WithHomogeneous needs n >= 1, got %d", n))
			return
		}
		specs := make([]NodeSpec, n)
		for i := range specs {
			specs[i] = spec
		}
		r.topo = specs
	}
}

// WithFabric overrides the network/storage fabric used when building
// clusters from a topology; the default is cluster.DefaultConfig().
func WithFabric(cfg cluster.Config) Option {
	return func(r *Runner) { r.fabric = cfg }
}

// WithCluster attaches an explicitly built platform. Because clusters
// accumulate I/O and network accounting, the attached cluster is consumed
// by the first Run; a second Run on the same Runner returns an error.
// Prefer WithTopology/WithHomogeneous, which rebuild per run.
func WithCluster(c *Cluster) Option {
	return func(r *Runner) {
		if c == nil {
			r.fail(fmt.Errorf("rocket: WithCluster(nil)"))
			return
		}
		r.cluster = c
	}
}

// WithSeed sets the seed driving all randomized behavior.
func WithSeed(seed uint64) Option {
	return func(r *Runner) {
		r.cfg.Seed = seed
		r.queue.Seed = seed
	}
}

// WithShards sets the event-engine width reported by Shards() and used
// by fleet-scale simulations (sim.WithShards). All-pairs results are
// width-invariant by construction, so this never changes Metrics.
func WithShards(n int) Option {
	return func(r *Runner) {
		if n < 1 {
			r.fail(fmt.Errorf("rocket: WithShards needs n >= 1, got %d", n))
			return
		}
		r.shards = n
	}
}

// WithDistCache enables (or disables) the third-level distributed cache.
func WithDistCache(enabled bool) Option {
	return func(r *Runner) { r.cfg.DistCache = enabled }
}

// WithHops sets the distributed cache's h parameter (max candidates per
// lookup); the default 1 is the paper's evaluation setting.
func WithHops(h int) Option {
	return func(r *Runner) { r.cfg.Hops = h }
}

// WithDeviceSlots overrides the per-device cache capacity (0 derives it
// from device memory).
func WithDeviceSlots(n int) Option {
	return func(r *Runner) { r.cfg.DeviceSlots = n }
}

// WithHostSlots overrides the per-node host cache capacity (0 derives it
// from NodeSpec.HostCacheBytes; -1 disables the host cache).
func WithHostSlots(n int) Option {
	return func(r *Runner) { r.cfg.HostSlots = n }
}

// WithStealPolicy selects the work-stealing victim policy.
func WithStealPolicy(p core.StealPolicy) Option {
	return func(r *Runner) { r.cfg.StealPolicy = p }
}

// WithCollectResults stores comparison outputs in Metrics.Results
// (real-kernel runs).
func WithCollectResults(enabled bool) Option {
	return func(r *Runner) { r.cfg.CollectResults = enabled }
}

// WithThroughputWindow records per-device completed-pair counts bucketed
// by w (Fig. 14); zero disables.
func WithThroughputWindow(w Time) Option {
	return func(r *Runner) { r.cfg.ThroughputWindow = w }
}

// WithFaults injects a deterministic fault schedule into every run.
func WithFaults(s *FaultSchedule) Option {
	return func(r *Runner) { r.cfg.Faults = s }
}

// WithFaultProbes arms timed health observations inside virtual time:
// each probe reads its node's liveness at the given instant, after any
// fault events sharing the timestamp (scenario assertions are built on
// these). Probes apply to Run and RunFleet alike.
func WithFaultProbes(probes ...FaultProbe) Option {
	return func(r *Runner) {
		r.cfg.FaultProbes = append(r.cfg.FaultProbes, probes...)
	}
}

// WithStoreSnapshot attaches an immutable pair-store snapshot consulted
// by the incremental (delta) prefilter; pair with WithBaseItems and
// WithItemDigest.
func WithStoreSnapshot(s *PairStoreSnapshot) Option {
	return func(r *Runner) { r.cfg.Store = s }
}

// WithStoreBatch collects every computed pair result into b for a
// post-run merge into a pair store; requires WithItemDigest.
func WithStoreBatch(b *PairBatch) Option {
	return func(r *Runner) { r.cfg.StoreBatch = b }
}

// WithItemDigest wires the per-item content digest used for store keys;
// see PairDigestFunc.
func WithItemDigest(fn func(item int) PairDigest) Option {
	return func(r *Runner) { r.cfg.ItemDigest = fn }
}

// WithBaseItems declares the store-resident prefix of the data set: the
// run computes only the new-vs-all delta (see Config.BaseItems).
func WithBaseItems(n int) Option {
	return func(r *Runner) { r.cfg.BaseItems = n }
}

// WithPairStore attaches a shared pair store to queue runs (RunQueue);
// single runs consult snapshots instead (WithStoreSnapshot).
func WithPairStore(s *PairStore) Option {
	return func(r *Runner) { r.queue.Store = s }
}

// WithSpans attaches a flight recorder: Run, RunFleet, and RunQueue
// record virtual-time spans (GPU kernel/copy phases, job wait/run
// intervals, steal round trips, pairstore maintenance) into it, to be
// snapshotted and exported after the run (see NewSpanRecorder,
// ExportTrace). Nil — the default — keeps the observability layer
// entirely off. Spans are stamped in virtual time and exported in a
// canonical order, so recorded timelines are byte-identical across
// engine widths and reruns.
func WithSpans(rec *SpanRecorder) Option {
	return func(r *Runner) {
		r.cfg.Spans = rec
		r.queue.Spans = rec
	}
}

// WithElasticity drives fleet runs (RunFleet) with seeded membership
// churn: nodes join along the configured arrival pattern and spot
// preemptions drain victims mid-run. Zero-valued Seed, Nodes, and
// Duration fields are filled from the Runner's seed, topology size, and
// fleet duration. Churn-free runs are unaffected.
func WithElasticity(e *Elasticity) Option {
	return func(r *Runner) { r.elastic = e }
}

// WithAutoscaler attaches an elastic-capacity policy to queue runs
// (RunQueue): the fleet starts at BootNodes, grows against queue depth
// and deadline pressure, shrinks after IdleTimeout, and loses slots to
// scheduled Preemptions. Nil restores the fixed max-size fleet.
func WithAutoscaler(a *Autoscale) Option {
	return func(r *Runner) { r.queue.Elastic = a }
}

// WithQueuePolicy selects the placement order of queued jobs.
func WithQueuePolicy(p QueuePolicy) Option {
	return func(r *Runner) { r.queue.Policy = p }
}

// WithQueueConfig seeds the full queue configuration — policy, limits,
// retries, node specs, pre-loaded jobs — typically parsed from a
// manifest. Later options (WithSeed, WithQueuePolicy, WithPairStore)
// override the corresponding fields; RunQueue appends its arguments to
// cfg.Jobs.
func WithQueueConfig(cfg QueueConfig) Option {
	return func(r *Runner) { r.queue = cfg }
}

// WithConfig is the escape hatch for the long tail of run settings
// (EvictRandom, PairFilter, PrewarmHost, LeafPairs, ...): fn edits the
// underlying Config template directly. App and Cluster set here are
// ignored — Run fills them.
func WithConfig(fn func(*Config)) Option {
	return func(r *Runner) { fn(&r.cfg) }
}

func (r *Runner) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Topology returns the platform description: the per-node hardware
// specs a Run will execute on (derived from the attached cluster when
// one was passed explicitly). The slice is a copy.
func (r *Runner) Topology() []NodeSpec {
	if r.topo != nil {
		return append([]NodeSpec(nil), r.topo...)
	}
	if r.cluster != nil {
		specs := make([]NodeSpec, len(r.cluster.Nodes))
		for i, n := range r.cluster.Nodes {
			specs[i] = n.Spec
		}
		return specs
	}
	return nil
}

// Shards returns the configured event-engine width (default 1).
func (r *Runner) Shards() int { return r.shards }

// Seed returns the configured seed.
func (r *Runner) Seed() uint64 { return r.cfg.Seed }

// platform yields the cluster for one run: a fresh build from the
// topology, or the explicitly attached cluster exactly once.
func (r *Runner) platform() (*Cluster, error) {
	if r.topo != nil {
		return cluster.New(r.topo, r.fabric)
	}
	if r.cluster != nil {
		if r.clusterUsed {
			return nil, fmt.Errorf("rocket: the cluster attached with WithCluster was already consumed by a previous Run; describe the platform with WithTopology or WithHomogeneous to rerun")
		}
		r.clusterUsed = true
		return r.cluster, nil
	}
	return nil, fmt.Errorf("rocket: no platform configured; pass WithTopology, WithHomogeneous, or WithCluster to New")
}

// Run executes one all-pairs application on the configured platform.
// Runners built from a topology are reusable: each call simulates a
// fresh cluster and is bit-identical for the same app and seed.
func (r *Runner) Run(app Application) (*Metrics, error) {
	if r.err != nil {
		return nil, r.err
	}
	if app == nil {
		return nil, fmt.Errorf("rocket: Run(nil application)")
	}
	c, err := r.platform()
	if err != nil {
		return nil, err
	}
	cfg := r.cfg
	cfg.App = app
	cfg.Cluster = c
	return core.Run(cfg)
}

// RunFleet executes the message-driven fleet workload (heartbeats,
// gossip, work-stealing) over the sharded event engine, sized by the
// Runner's platform: one fleet node per topology spec, the configured
// shard width (WithShards), seed, fault schedule, and probes. fn, when
// non-nil, edits the derived fleet configuration before the run —
// duration, staggered startup, extra probes, chaos-generated schedules.
// Results are bit-identical at every shard width for the same
// configuration and seed.
func (r *Runner) RunFleet(fn func(*FleetConfig)) (FleetResult, error) {
	if r.err != nil {
		return FleetResult{}, r.err
	}
	specs := r.Topology()
	if specs == nil {
		return FleetResult{}, fmt.Errorf("rocket: no platform configured; pass WithTopology, WithHomogeneous, or WithCluster to New")
	}
	cfg := fleet.DefaultConfig(len(specs))
	cfg.Shards = r.shards
	cfg.Seed = r.cfg.Seed
	cfg.NetLatency = r.fabric.NetLatency
	cfg.NetBandwidth = r.fabric.NetBandwidth
	cfg.Faults = r.cfg.Faults
	cfg.Probes = append([]FaultProbe(nil), r.cfg.FaultProbes...)
	gpus := make([]int, len(specs))
	for i, s := range specs {
		gpus[i] = len(s.GPUs)
		if gpus[i] < 1 {
			gpus[i] = 1
		}
	}
	cfg.GPUs = gpus
	cfg.Elastic = r.elastic
	cfg.Spans = r.cfg.Spans
	if fn != nil {
		fn(&cfg)
	}
	return fleet.Run(cfg)
}

// RunQueue schedules a queue of all-pairs jobs over one shared simulated
// cluster (see QueueConfig). The given jobs are appended to any jobs
// already present in the queue configuration (WithQueueConfig). The
// cluster size defaults to the configured topology when the queue
// configuration names none; queue clusters are homogeneous, so the first
// node's spec is used.
func (r *Runner) RunQueue(jobs ...QueueJob) (*QueueMetrics, error) {
	if r.err != nil {
		return nil, r.err
	}
	cfg := r.queue
	cfg.Jobs = append(append([]QueueJob(nil), cfg.Jobs...), jobs...)
	if cfg.Nodes == 0 && r.topo != nil {
		cfg.Nodes = len(r.topo)
		cfg.NodeSpec = r.topo[0]
	}
	return sched.Run(cfg)
}
