package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

func report(exps ...ExpResult) Report {
	return Report{Run: "t", Scale: 50, Seed: 1, Experiments: exps}
}

func exp(id string, ns int64, sha string) ExpResult {
	return ExpResult{ID: id, NsPerOp: ns, OutputSHA256: sha}
}

func TestGatePassesIdenticalRuns(t *testing.T) {
	base := report(exp("fig6", 100, "aa"), exp("fig8", 200, "bb"))
	g := Gate(base, base, GateOptions{MaxRegress: 0.25})
	if g.Failed() || len(g.Warnings) != 0 {
		t.Fatalf("identical runs gated: %+v", g)
	}
	for _, r := range g.Rows {
		if r.Verdict != "ok" {
			t.Fatalf("row %+v, want ok", r)
		}
	}
}

// The determinism gate: an injected output_sha256 mismatch must fail the
// gate regardless of timing.
func TestGateFailsOnInjectedShaDrift(t *testing.T) {
	base := report(exp("fig6", 100, "aa"), exp("fig8", 200, "bb"))
	cand := report(exp("fig6", 100, "aa"), exp("fig8", 200, "CORRUPTED"))
	g := Gate(base, cand, GateOptions{MaxRegress: 0.25})
	if !g.Failed() {
		t.Fatal("sha drift did not fail the gate")
	}
	if len(g.Failures) != 1 || !strings.Contains(g.Failures[0], "fig8") ||
		!strings.Contains(g.Failures[0], "output_sha256") {
		t.Fatalf("failures: %v", g.Failures)
	}
	if !strings.Contains(g.Markdown(), "drift") {
		t.Fatalf("markdown does not mention drift:\n%s", g.Markdown())
	}
}

func TestGatePerfRegressionWarnsThenFails(t *testing.T) {
	base := report(exp("fig6", 100, "aa"))
	cand := report(exp("fig6", 130, "aa")) // +30% > 25% limit
	g := Gate(base, cand, GateOptions{MaxRegress: 0.25})
	if g.Failed() || len(g.Warnings) != 1 {
		t.Fatalf("default gate: %+v", g)
	}
	if g.Rows[0].Verdict != "slower" {
		t.Fatalf("verdict %q, want slower", g.Rows[0].Verdict)
	}
	strict := Gate(base, cand, GateOptions{MaxRegress: 0.25, PerfIsFatal: true})
	if !strict.Failed() {
		t.Fatal("strict gate did not fail on a 30% regression")
	}
	// Within the limit: no warning.
	ok := Gate(base, report(exp("fig6", 120, "aa")), GateOptions{MaxRegress: 0.25})
	if ok.Failed() || len(ok.Warnings) != 0 {
		t.Fatalf("+20%% should pass a 25%% limit: %+v", ok)
	}
}

func TestGateMissingAndNewExperiments(t *testing.T) {
	base := report(exp("fig6", 100, "aa"), exp("fig8", 200, "bb"))
	cand := report(exp("fig6", 100, "aa"), exp("resilience", 300, "cc"))
	g := Gate(base, cand, GateOptions{MaxRegress: 0.25})
	if !g.Failed() {
		t.Fatal("dropping a baseline experiment must fail")
	}
	verdicts := map[string]string{}
	for _, r := range g.Rows {
		verdicts[r.ID] = r.Verdict
	}
	if verdicts["fig8"] != "missing" || verdicts["resilience"] != "new" || verdicts["fig6"] != "ok" {
		t.Fatalf("verdicts: %v", verdicts)
	}
}

func TestGateRejectsIncomparableRuns(t *testing.T) {
	base := report(exp("fig6", 100, "aa"))
	cand := base
	cand.Scale = 10
	if g := Gate(base, cand, GateOptions{}); !g.Failed() {
		t.Fatal("scale mismatch must fail")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_t.json")
	r := report(exp("fig6", 100, "aa"))
	r.GoVersion = "go1.22"
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Experiments) != 1 || back.Experiments[0] != r.Experiments[0] || back.GoVersion != "go1.22" {
		t.Fatalf("round trip: %+v", back)
	}
	if _, err := Read(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("reading an absent file succeeded")
	}
}

func trajectory(hashes []string, eps ...float64) []ShardPoint {
	pts := make([]ShardPoint, len(eps))
	widths := []int{1, 2, 4, 8}
	for i := range eps {
		pts[i] = ShardPoint{Shards: widths[i], EventsPerSec: eps[i], StateHash: hashes[i]}
	}
	return pts
}

func TestGateShardHashDivergenceFails(t *testing.T) {
	base := report(exp("fig6", 100, "aa"))
	cand := report(exp("fig6", 100, "aa"))
	cand.ShardTrajectory = trajectory([]string{"h1", "h1", "BAD", "h1"}, 1e6, 2e6, 3e6, 4e6)
	g := Gate(base, cand, GateOptions{MaxRegress: 0.25})
	if !g.Failed() {
		t.Fatal("state-hash divergence did not fail the gate")
	}
	if !strings.Contains(strings.Join(g.Failures, "\n"), "shard invariance") {
		t.Fatalf("failures: %v", g.Failures)
	}
}

func TestGateShardTrajectoryMustNotVanish(t *testing.T) {
	base := report(exp("fig6", 100, "aa"))
	base.ShardTrajectory = trajectory([]string{"h", "h", "h", "h"}, 1e6, 2e6, 3e6, 4e6)
	cand := report(exp("fig6", 100, "aa"))
	g := Gate(base, cand, GateOptions{MaxRegress: 0.25})
	if !g.Failed() {
		t.Fatal("vanished trajectory did not fail the gate")
	}
}

func TestGateShardSpeedupTracked(t *testing.T) {
	h := []string{"h", "h", "h", "h"}
	base := report(exp("fig6", 100, "aa"))
	base.ShardTrajectory = trajectory(h, 1e6, 2e6, 3e6, 4e6) // 4x speedup
	cand := report(exp("fig6", 100, "aa"))
	cand.ShardTrajectory = trajectory(h, 1e6, 1e6, 1e6, 1e6) // flat
	g := Gate(base, cand, GateOptions{MaxRegress: 0.25})
	if g.Failed() {
		t.Fatalf("speedup drop must warn, not fail: %v", g.Failures)
	}
	if len(g.Warnings) != 1 || !strings.Contains(g.Warnings[0], "shard speedup regressed") {
		t.Fatalf("warnings: %v", g.Warnings)
	}
	if g.ShardNote == "" || !strings.Contains(g.Text(), "shard speedup") {
		t.Fatalf("trajectory not surfaced: note=%q", g.ShardNote)
	}
	g = Gate(base, cand, GateOptions{MaxRegress: 0.25, PerfIsFatal: true})
	if !g.Failed() {
		t.Fatal("PerfIsFatal did not promote the speedup regression")
	}
	// Matching trajectories pass clean.
	g = Gate(base, base, GateOptions{MaxRegress: 0.25})
	if g.Failed() || len(g.Warnings) != 0 {
		t.Fatalf("identical trajectories gated: %+v", g)
	}
	if (Report{}).ShardSpeedup() != 0 {
		t.Fatal("empty report has nonzero speedup")
	}
	if got := base.ShardSpeedup(); got != 4 {
		t.Fatalf("ShardSpeedup = %v, want 4", got)
	}
}

func storagePoint(pairs int64, bpp float64, planNs int64, hash string) StoragePoint {
	return StoragePoint{
		Pairs: pairs, Items: int(pairs / 100), BytesPerPair: bpp,
		DiskBytes: int64(bpp * float64(pairs)), IndexResidentBytes: pairs,
		PlanNsPerOp: planNs, PlanHash: hash,
	}
}

func TestGateStorageIdenticalPasses(t *testing.T) {
	b := report(exp("fig6", 100, "aa"))
	b.StorageTrajectory = []StoragePoint{storagePoint(1_000_000, 2.5, 5e8, "h1")}
	g := Gate(b, b, GateOptions{MaxRegress: 0.25})
	if g.Failed() || len(g.Warnings) != 0 {
		t.Fatalf("identical storage trajectories gated: %+v", g)
	}
	if len(g.StorageRows) != 1 || g.StorageRows[0].Verdict != "ok" {
		t.Fatalf("storage rows = %+v", g.StorageRows)
	}
	if g.StorageNote == "" || !strings.Contains(g.Markdown(), "storage trajectory") {
		t.Fatal("storage summary missing from markdown")
	}
}

func TestGateStorageBytesPerPairRegressionFails(t *testing.T) {
	b := report(exp("fig6", 100, "aa"))
	b.StorageTrajectory = []StoragePoint{storagePoint(1_000_000, 2.5, 5e8, "h1")}
	c := report(exp("fig6", 100, "aa"))
	// 2.9 is >10% over 2.5 but still under the absolute 8-byte floor:
	// the relative gate must catch it on its own.
	c.StorageTrajectory = []StoragePoint{storagePoint(1_000_000, 2.9, 5e8, "h1")}
	g := Gate(b, c, GateOptions{MaxRegress: 0.25})
	if !g.Failed() {
		t.Fatalf("16%% bytes/pair regression passed: %+v", g)
	}
	if g.StorageRows[0].Verdict != "bloat" {
		t.Fatalf("verdict = %q, want bloat", g.StorageRows[0].Verdict)
	}
}

func TestGateStorageAbsoluteFloorFails(t *testing.T) {
	b := report(exp("fig6", 100, "aa"))
	c := report(exp("fig6", 100, "aa"))
	// No baseline point to compare against — the 8 bytes/pair capability
	// floor must still fail a 10^6-pair candidate on its own.
	c.StorageTrajectory = []StoragePoint{storagePoint(1_000_000, 9.5, 5e8, "h1")}
	g := Gate(b, c, GateOptions{MaxRegress: 0.25})
	if !g.Failed() {
		t.Fatalf("9.5 bytes/pair at 1e6 pairs passed: %+v", g)
	}
	// Below the scale floor the same figure is fine (small stores have
	// amortization overhead).
	c.StorageTrajectory = []StoragePoint{storagePoint(100_000, 9.5, 5e7, "h2")}
	if g := Gate(b, c, GateOptions{MaxRegress: 0.25}); g.Failed() {
		t.Fatalf("9.5 bytes/pair at 1e5 pairs failed: %+v", g)
	}
}

func TestGateStoragePlanHashDriftFails(t *testing.T) {
	b := report(exp("fig6", 100, "aa"))
	b.StorageTrajectory = []StoragePoint{storagePoint(1_000_000, 2.5, 5e8, "h1")}
	c := report(exp("fig6", 100, "aa"))
	c.StorageTrajectory = []StoragePoint{storagePoint(1_000_000, 2.5, 5e8, "h2")}
	g := Gate(b, c, GateOptions{MaxRegress: 0.25})
	if !g.Failed() || g.StorageRows[0].Verdict != "drift" {
		t.Fatalf("plan hash drift not fatal: %+v", g)
	}
}

func TestGateStoragePlanLatencyWarnsThenFails(t *testing.T) {
	b := report(exp("fig6", 100, "aa"))
	b.StorageTrajectory = []StoragePoint{storagePoint(1_000_000, 2.5, 5e8, "h1")}
	c := report(exp("fig6", 100, "aa"))
	c.StorageTrajectory = []StoragePoint{storagePoint(1_000_000, 2.5, 9e8, "h1")}
	g := Gate(b, c, GateOptions{MaxRegress: 0.25})
	if g.Failed() || len(g.Warnings) != 1 {
		t.Fatalf("80%% plan drift should warn: %+v", g)
	}
	if g.StorageRows[0].Verdict != "slower" {
		t.Fatalf("verdict = %q, want slower", g.StorageRows[0].Verdict)
	}
	if g = Gate(b, c, GateOptions{MaxRegress: 0.25, PerfIsFatal: true}); !g.Failed() {
		t.Fatalf("strict-perf plan drift should fail: %+v", g)
	}
}

func TestGateStorageTrajectoryMustNotVanish(t *testing.T) {
	b := report(exp("fig6", 100, "aa"))
	b.StorageTrajectory = []StoragePoint{storagePoint(1_000_000, 2.5, 5e8, "h1")}
	c := report(exp("fig6", 100, "aa"))
	g := Gate(b, c, GateOptions{MaxRegress: 0.25})
	if !g.Failed() {
		t.Fatalf("vanished storage trajectory passed: %+v", g)
	}
}
