// Package benchfmt defines the BENCH_<run>.json format shared by the
// rocketbench harness (writer) and the benchgate CI gate (reader): one
// record per experiment capturing wall time, allocations, event
// throughput, and a SHA-256 fingerprint of the rendered output, so
// performance and bit-exact determinism are tracked across commits.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// ExpResult is one experiment's benchmark record.
type ExpResult struct {
	ID    string `json:"id"`
	Paper string `json:"paper"`
	// NsPerOp is the wall-clock nanoseconds of one full experiment run.
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is the number of heap allocations during the run.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	// Events is the number of simulation events dispatched by the run
	// (summed over all inner environments).
	Events uint64 `json:"events"`
	// EventsPerSec is the dispatch throughput: Events / wall seconds.
	EventsPerSec float64 `json:"events_per_sec"`
	// OutputSHA256 fingerprints the rendered experiment output, so runs
	// can be compared for bit-identical results across engine changes.
	OutputSHA256 string `json:"output_sha256"`
}

// ShardPoint is one engine width of the shard-scaling trajectory: the
// fleet benchmark (BenchmarkShardScaling's workload) measured at a fixed
// shard count. StateHash is the run's deterministic digest — identical
// across widths by the engine's invariance guarantee, which the gate
// enforces; EventsPerSec is wall-clock and therefore tracked, not gated.
type ShardPoint struct {
	Shards       int     `json:"shards"`
	NsPerOp      int64   `json:"ns_per_op"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	StateHash    string  `json:"state_hash"`
}

// StoragePoint is one dataset size of the pairstore scaling
// trajectory (BenchmarkPairstoreScale's workload): an all-pairs store
// built to Pairs entries, sealed, compacted, and persisted, then asked
// to plan a 10% item delta against a fresh snapshot.
type StoragePoint struct {
	// Items and Pairs describe the dataset: Pairs = Items·(Items−1)/2.
	Items int   `json:"items"`
	Pairs int64 `json:"pairs"`
	// BytesPerPair is the persisted columnar size per pair — the
	// storage-efficiency capability the gate enforces (≤ 8 at 10^6
	// pairs, and within 10% of baseline).
	BytesPerPair float64 `json:"bytes_per_pair"`
	DiskBytes    int64   `json:"disk_bytes"`
	// IndexResidentBytes is the in-memory probe-index footprint (fences,
	// dictionaries, bloom filters) the plan ran against — the evidence
	// that planning does not need a resident per-pair index.
	IndexResidentBytes int64 `json:"index_resident_bytes"`
	// PlanNsPerOp is the wall time of planning the 10% delta (probing
	// the full base region against the snapshot). Wall-clock, so
	// tracked with a drift warning rather than gated hard.
	PlanNsPerOp int64 `json:"plan_ns_per_op"`
	// PlanHash fingerprints the planned residency bitmap; it depends
	// only on (seed, items, base), so any drift is a determinism bug.
	PlanHash string `json:"plan_hash"`
	// BloomHitRate is the share of segment probes the bloom filters
	// answered without a block decode during planning.
	BloomHitRate float64 `json:"bloom_hit_rate"`
}

// Report is the top-level BENCH_<run>.json document.
type Report struct {
	Run         string      `json:"run"`
	Scale       int         `json:"scale"`
	Seed        uint64      `json:"seed"`
	GoVersion   string      `json:"go_version"`
	UnixTime    int64       `json:"unix_time"`
	Experiments []ExpResult `json:"experiments"`
	// GoMaxProcs records the OS-thread parallelism available when the
	// shard trajectory was measured; a trajectory recorded at GOMAXPROCS=1
	// cannot show wall-clock speedup no matter how well the engine scales,
	// so readers must interpret EventsPerSec relative to this.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// ShardTrajectory is the fleet benchmark measured at widths 1, 2, 4, 8
	// (absent from reports predating the sharded engine).
	ShardTrajectory []ShardPoint `json:"shard_trajectory,omitempty"`
	// StorageTrajectory is the pairstore scaling sweep (absent from
	// reports predating the columnar store).
	StorageTrajectory []StoragePoint `json:"storage_trajectory,omitempty"`
}

// ShardSpeedup returns the trajectory's events/sec at its widest point
// relative to width 1, or 0 when the trajectory is absent or degenerate.
func (r Report) ShardSpeedup() float64 {
	var base, widest ShardPoint
	for _, p := range r.ShardTrajectory {
		if p.Shards == 1 {
			base = p
		}
		if p.Shards > widest.Shards {
			widest = p
		}
	}
	if base.EventsPerSec <= 0 || widest.Shards <= 1 {
		return 0
	}
	return widest.EventsPerSec / base.EventsPerSec
}

// Read loads and decodes a BENCH_<run>.json file.
func Read(path string) (Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Write encodes the report, indented with a trailing newline, to path.
func (r Report) Write(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
