// Package benchfmt defines the BENCH_<run>.json format shared by the
// rocketbench harness (writer) and the benchgate CI gate (reader): one
// record per experiment capturing wall time, allocations, event
// throughput, and a SHA-256 fingerprint of the rendered output, so
// performance and bit-exact determinism are tracked across commits.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// ExpResult is one experiment's benchmark record.
type ExpResult struct {
	ID    string `json:"id"`
	Paper string `json:"paper"`
	// NsPerOp is the wall-clock nanoseconds of one full experiment run.
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is the number of heap allocations during the run.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	// Events is the number of simulation events dispatched by the run
	// (summed over all inner environments).
	Events uint64 `json:"events"`
	// EventsPerSec is the dispatch throughput: Events / wall seconds.
	EventsPerSec float64 `json:"events_per_sec"`
	// OutputSHA256 fingerprints the rendered experiment output, so runs
	// can be compared for bit-identical results across engine changes.
	OutputSHA256 string `json:"output_sha256"`
}

// Report is the top-level BENCH_<run>.json document.
type Report struct {
	Run         string      `json:"run"`
	Scale       int         `json:"scale"`
	Seed        uint64      `json:"seed"`
	GoVersion   string      `json:"go_version"`
	UnixTime    int64       `json:"unix_time"`
	Experiments []ExpResult `json:"experiments"`
}

// Read loads and decodes a BENCH_<run>.json file.
func Read(path string) (Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Write encodes the report, indented with a trailing newline, to path.
func (r Report) Write(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
