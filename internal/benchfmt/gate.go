package benchfmt

import (
	"fmt"
	"strings"
)

// GateOptions tunes the regression gate.
type GateOptions struct {
	// MaxRegress is the tolerated fractional ns_per_op growth per
	// experiment (e.g. 0.25 = 25%); beyond it the experiment regressed.
	MaxRegress float64
	// PerfIsFatal promotes perf regressions from warnings to failures.
	// Determinism drift (output_sha256 mismatch) is always a failure:
	// shared CI runners make wall time noisy, but output bytes never are.
	PerfIsFatal bool
}

// GateRow is one experiment's comparison.
type GateRow struct {
	ID        string
	Baseline  int64 // baseline ns_per_op
	Candidate int64 // candidate ns_per_op
	Ratio     float64
	// Verdict is "ok", "faster", "slower" (beyond MaxRegress), "drift"
	// (output_sha256 mismatch), "missing" (in baseline, not candidate),
	// or "new" (no baseline to compare against).
	Verdict string
}

// GateResult is the full gate outcome.
type GateResult struct {
	Rows     []GateRow
	Failures []string
	Warnings []string
	// ShardNote summarizes the shard-scaling trajectory comparison (empty
	// when the candidate has no trajectory).
	ShardNote string
	// StorageNote summarizes the storage trajectory comparison (empty
	// when the candidate has no trajectory).
	StorageNote string
	// StorageRows compares the storage trajectory point by point.
	StorageRows []StorageGateRow
}

// StorageGateRow is one dataset size's storage comparison.
type StorageGateRow struct {
	Pairs         int64
	BaselineBPP   float64 // baseline bytes/pair (0 when the point is new)
	CandidateBPP  float64
	BaselinePlan  int64 // baseline plan ns
	CandidatePlan int64
	IndexBytes    int64
	// Verdict is "ok", "new", "bloat" (bytes/pair gate), "drift" (plan
	// hash), or "slower" (plan latency beyond MaxRegress).
	Verdict string
}

// Failed reports whether the gate should fail the build.
func (g GateResult) Failed() bool { return len(g.Failures) > 0 }

// Gate compares a candidate run against the committed baseline:
// determinism first (every shared experiment's output_sha256 must match,
// and nothing from the baseline may disappear), then per-experiment
// ns_per_op within opts.MaxRegress.
func Gate(baseline, candidate Report, opts GateOptions) GateResult {
	var g GateResult
	base := make(map[string]ExpResult, len(baseline.Experiments))
	for _, e := range baseline.Experiments {
		base[e.ID] = e
	}
	if baseline.Scale != candidate.Scale || baseline.Seed != candidate.Seed {
		g.Failures = append(g.Failures, fmt.Sprintf(
			"incomparable runs: baseline scale/seed %d/%d vs candidate %d/%d",
			baseline.Scale, baseline.Seed, candidate.Scale, candidate.Seed))
		return g
	}
	seen := make(map[string]bool, len(candidate.Experiments))
	for _, c := range candidate.Experiments {
		seen[c.ID] = true
		b, ok := base[c.ID]
		if !ok {
			g.Rows = append(g.Rows, GateRow{ID: c.ID, Candidate: c.NsPerOp, Verdict: "new"})
			continue
		}
		row := GateRow{ID: c.ID, Baseline: b.NsPerOp, Candidate: c.NsPerOp}
		if b.NsPerOp > 0 {
			row.Ratio = float64(c.NsPerOp) / float64(b.NsPerOp)
		}
		switch {
		case b.OutputSHA256 != c.OutputSHA256:
			row.Verdict = "drift"
			g.Failures = append(g.Failures, fmt.Sprintf(
				"%s: output_sha256 drifted (%.12s… -> %.12s…): results are no longer bit-identical to the baseline",
				c.ID, b.OutputSHA256, c.OutputSHA256))
		case row.Ratio > 1+opts.MaxRegress:
			row.Verdict = "slower"
			msg := fmt.Sprintf("%s: ns_per_op regressed %.0f%% (%.2fms -> %.2fms, limit %.0f%%)",
				c.ID, 100*(row.Ratio-1), float64(b.NsPerOp)/1e6, float64(c.NsPerOp)/1e6,
				100*opts.MaxRegress)
			if opts.PerfIsFatal {
				g.Failures = append(g.Failures, msg)
			} else {
				g.Warnings = append(g.Warnings, msg)
			}
		case row.Ratio > 0 && row.Ratio < 1-opts.MaxRegress:
			row.Verdict = "faster"
		default:
			row.Verdict = "ok"
		}
		g.Rows = append(g.Rows, row)
	}
	for _, b := range baseline.Experiments {
		if !seen[b.ID] {
			g.Rows = append(g.Rows, GateRow{ID: b.ID, Baseline: b.NsPerOp, Verdict: "missing"})
			g.Failures = append(g.Failures, fmt.Sprintf(
				"%s: present in baseline but missing from candidate run", b.ID))
		}
	}
	gateShards(baseline, candidate, opts, &g)
	gateStorage(baseline, candidate, opts, &g)
	return g
}

// gateShards checks the shard-scaling trajectory. Two properties:
//
//  1. Determinism (always fatal): every width in the candidate trajectory
//     must report the same state hash — a divergence means the engine's
//     shard invariance broke, the exact regression this PR's acceptance
//     bar forbids. A trajectory present in the baseline must not vanish.
//  2. Speedup (tracked): the widest-point events/sec relative to width 1
//     is compared against the baseline's and reported, so scaling is
//     recorded run over run instead of claimed once. Wall-clock speedup
//     depends on the runner's GOMAXPROCS, so a drop is a warning (or a
//     failure under PerfIsFatal), never silently ignored.
func gateShards(baseline, candidate Report, opts GateOptions, g *GateResult) {
	if len(candidate.ShardTrajectory) == 0 {
		if len(baseline.ShardTrajectory) > 0 {
			g.Failures = append(g.Failures,
				"shard trajectory present in baseline but missing from candidate run")
		}
		return
	}
	base := candidate.ShardTrajectory[0]
	for _, p := range candidate.ShardTrajectory[1:] {
		if p.StateHash != base.StateHash {
			g.Failures = append(g.Failures, fmt.Sprintf(
				"shard trajectory: state hash at shards=%d (%.12s…) differs from shards=%d (%.12s…): engine lost shard invariance",
				p.Shards, p.StateHash, base.Shards, base.StateHash))
		}
	}
	cand := candidate.ShardSpeedup()
	prev := baseline.ShardSpeedup()
	g.ShardNote = fmt.Sprintf("shard speedup %.2fx at GOMAXPROCS=%d (baseline %.2fx at GOMAXPROCS=%d)",
		cand, candidate.GoMaxProcs, prev, baseline.GoMaxProcs)
	if prev > 0 && cand < prev*(1-opts.MaxRegress) {
		msg := fmt.Sprintf("shard speedup regressed: %.2fx -> %.2fx (limit -%.0f%%)",
			prev, cand, 100*opts.MaxRegress)
		if opts.PerfIsFatal {
			g.Failures = append(g.Failures, msg)
		} else {
			g.Warnings = append(g.Warnings, msg)
		}
	}
}

// maxBytesPerPairAtScale is the absolute storage-efficiency floor: at
// a million pairs and beyond, a columnar segment store that cannot
// keep a pair under 8 on-disk bytes has lost the capability this
// repo's scaling claim rests on, regardless of what the baseline did.
const (
	maxBytesPerPairAtScale = 8.0
	bytesPerPairScaleFloor = 1_000_000
	// maxBytesPerPairRegress is the tolerated relative bytes/pair growth
	// vs baseline at a matched dataset size — always fatal, unlike wall
	// time: on-disk size is deterministic, so any growth is a real
	// encoding regression, and 10% is the agreed budget.
	maxBytesPerPairRegress = 0.10
)

// gateStorage checks the pairstore scaling trajectory. Three
// properties:
//
//  1. Determinism (always fatal): the planned-residency hash at a
//     matched dataset size must equal the baseline's, and a trajectory
//     present in the baseline must not vanish.
//  2. Bytes/pair (always fatal): ≤ maxBytesPerPairAtScale at 10^6+
//     pairs, and within maxBytesPerPairRegress of the baseline at
//     matched sizes. Disk bytes are noise-free, so this gates hard
//     where wall time cannot.
//  3. Plan latency (tracked): drift beyond opts.MaxRegress is a warning
//     (or a failure under PerfIsFatal) — it shares a runner with every
//     other wall-clock figure.
func gateStorage(baseline, candidate Report, opts GateOptions, g *GateResult) {
	if len(candidate.StorageTrajectory) == 0 {
		if len(baseline.StorageTrajectory) > 0 {
			g.Failures = append(g.Failures,
				"storage trajectory present in baseline but missing from candidate run")
		}
		return
	}
	base := make(map[int64]StoragePoint, len(baseline.StorageTrajectory))
	for _, p := range baseline.StorageTrajectory {
		base[p.Pairs] = p
	}
	var widest StoragePoint
	for _, c := range candidate.StorageTrajectory {
		if c.Pairs > widest.Pairs {
			widest = c
		}
		row := StorageGateRow{
			Pairs:         c.Pairs,
			CandidateBPP:  c.BytesPerPair,
			CandidatePlan: c.PlanNsPerOp,
			IndexBytes:    c.IndexResidentBytes,
			Verdict:       "ok",
		}
		if c.Pairs >= bytesPerPairScaleFloor && c.BytesPerPair > maxBytesPerPairAtScale {
			row.Verdict = "bloat"
			g.Failures = append(g.Failures, fmt.Sprintf(
				"storage: %.2f bytes/pair at %d pairs exceeds the %.0f bytes/pair capability floor",
				c.BytesPerPair, c.Pairs, maxBytesPerPairAtScale))
		}
		b, ok := base[c.Pairs]
		if !ok {
			row.Verdict = "new"
			g.StorageRows = append(g.StorageRows, row)
			continue
		}
		row.BaselineBPP = b.BytesPerPair
		row.BaselinePlan = b.PlanNsPerOp
		if b.PlanHash != "" && c.PlanHash != b.PlanHash {
			row.Verdict = "drift"
			g.Failures = append(g.Failures, fmt.Sprintf(
				"storage: plan hash at %d pairs drifted (%.12s… -> %.12s…): delta planning is no longer deterministic",
				c.Pairs, b.PlanHash, c.PlanHash))
		}
		if b.BytesPerPair > 0 && c.BytesPerPair > b.BytesPerPair*(1+maxBytesPerPairRegress) {
			row.Verdict = "bloat"
			g.Failures = append(g.Failures, fmt.Sprintf(
				"storage: bytes/pair at %d pairs regressed %.1f%% (%.2f -> %.2f, limit %.0f%%)",
				c.Pairs, 100*(c.BytesPerPair/b.BytesPerPair-1), b.BytesPerPair, c.BytesPerPair,
				100*maxBytesPerPairRegress))
		}
		if b.PlanNsPerOp > 0 {
			ratio := float64(c.PlanNsPerOp) / float64(b.PlanNsPerOp)
			if ratio > 1+opts.MaxRegress {
				if row.Verdict == "ok" {
					row.Verdict = "slower"
				}
				msg := fmt.Sprintf(
					"storage: plan latency at %d pairs drifted %.0f%% (%.2fms -> %.2fms, limit %.0f%%)",
					c.Pairs, 100*(ratio-1), float64(b.PlanNsPerOp)/1e6, float64(c.PlanNsPerOp)/1e6,
					100*opts.MaxRegress)
				if opts.PerfIsFatal {
					g.Failures = append(g.Failures, msg)
				} else {
					g.Warnings = append(g.Warnings, msg)
				}
			}
		}
		g.StorageRows = append(g.StorageRows, row)
	}
	if widest.Pairs > 0 {
		g.StorageNote = fmt.Sprintf(
			"storage: %.2f bytes/pair at %d pairs, plan %.2fms over %s resident index, bloom hit rate %.0f%%",
			widest.BytesPerPair, widest.Pairs, float64(widest.PlanNsPerOp)/1e6,
			humanBytes(widest.IndexResidentBytes), 100*widest.BloomHitRate)
	}
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Markdown renders the gate outcome as a GitHub job-summary table.
func (g GateResult) Markdown() string {
	var b strings.Builder
	b.WriteString("## bench gate\n\n")
	if g.Failed() {
		b.WriteString("**FAILED**\n\n")
	} else if len(g.Warnings) > 0 {
		b.WriteString("passed with warnings\n\n")
	} else {
		b.WriteString("passed\n\n")
	}
	for _, f := range g.Failures {
		fmt.Fprintf(&b, "- :x: %s\n", f)
	}
	for _, w := range g.Warnings {
		fmt.Fprintf(&b, "- :warning: %s\n", w)
	}
	b.WriteString("\n| experiment | baseline ms | candidate ms | ratio | verdict |\n")
	b.WriteString("|---|---:|---:|---:|---|\n")
	for _, r := range g.Rows {
		ratio := "-"
		if r.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", r.Ratio)
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
			r.ID, ms(r.Baseline), ms(r.Candidate), ratio, r.Verdict)
	}
	if g.ShardNote != "" {
		fmt.Fprintf(&b, "\n%s\n", g.ShardNote)
	}
	if len(g.StorageRows) > 0 {
		b.WriteString("\n### storage trajectory\n\n")
		b.WriteString("| pairs | baseline bytes/pair | candidate bytes/pair | baseline plan ms | candidate plan ms | resident index | verdict |\n")
		b.WriteString("|---:|---:|---:|---:|---:|---:|---|\n")
		for _, r := range g.StorageRows {
			bpp := "-"
			if r.BaselineBPP > 0 {
				bpp = fmt.Sprintf("%.2f", r.BaselineBPP)
			}
			fmt.Fprintf(&b, "| %d | %s | %.2f | %s | %s | %s | %s |\n",
				r.Pairs, bpp, r.CandidateBPP, ms(r.BaselinePlan), ms(r.CandidatePlan),
				humanBytes(r.IndexBytes), r.Verdict)
		}
	}
	if g.StorageNote != "" {
		fmt.Fprintf(&b, "\n%s\n", g.StorageNote)
	}
	return b.String()
}

func ms(ns int64) string {
	if ns == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(ns)/1e6)
}

// Text renders a terminal-friendly summary.
func (g GateResult) Text() string {
	var b strings.Builder
	for _, r := range g.Rows {
		ratio := "     -"
		if r.Ratio > 0 {
			ratio = fmt.Sprintf("%5.2fx", r.Ratio)
		}
		fmt.Fprintf(&b, "%-18s %12s -> %12s ms  %s  %s\n", r.ID, ms(r.Baseline), ms(r.Candidate), ratio, r.Verdict)
	}
	if g.ShardNote != "" {
		fmt.Fprintf(&b, "%s\n", g.ShardNote)
	}
	for _, r := range g.StorageRows {
		base := "      -"
		if r.BaselineBPP > 0 {
			base = fmt.Sprintf("%7.2f", r.BaselineBPP)
		}
		fmt.Fprintf(&b, "storage %-10d %s -> %7.2f bytes/pair  plan %8s -> %8s ms  %s\n",
			r.Pairs, base, r.CandidateBPP, ms(r.BaselinePlan), ms(r.CandidatePlan), r.Verdict)
	}
	if g.StorageNote != "" {
		fmt.Fprintf(&b, "%s\n", g.StorageNote)
	}
	for _, w := range g.Warnings {
		fmt.Fprintf(&b, "WARN: %s\n", w)
	}
	for _, f := range g.Failures {
		fmt.Fprintf(&b, "FAIL: %s\n", f)
	}
	return b.String()
}
