package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"rocket/internal/jobspec"
	"rocket/internal/pairstore"
)

// Dataset is one registered append-only dataset: the unit of
// incremental serving. Datasets are versioned by length — appending k
// items moves the version from n to n+k — so a job over version v with
// base version b computes exactly the new-vs-all pair set between
// them. The dataset's seed is its content identity: it must stay fixed
// across appends (and daemon restarts, when the store is persisted)
// for store keys to line up.
type Dataset struct {
	ID string `json:"id"`
	// App is the application name ("forensics", "microscopy",
	// "bioinformatics").
	App string `json:"app"`
	// Seed is the dataset's content seed; never zero (a zero request
	// seed is replaced by a stable derivation from the dataset ID).
	Seed uint64 `json:"seed"`
	// Items is the current length — and therefore the current version.
	Items int `json:"items"`
	// Computed is the version already covered by submitted jobs: the
	// base version the next job will be planned against.
	Computed int `json:"computed"`
	// Appends counts append operations; Jobs counts submissions.
	Appends int `json:"appends"`
	Jobs    int `json:"jobs"`
}

type datasetCreateReq struct {
	ID    string `json:"id"`
	App   string `json:"app"`
	Items int    `json:"items"`
	Seed  uint64 `json:"seed,omitempty"`
}

type datasetAppendReq struct {
	Items int `json:"items"`
}

type datasetJobReq struct {
	Tenant string `json:"tenant,omitempty"`
	Nodes  int    `json:"nodes,omitempty"`
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// handleDatasetCreate registers a dataset at its initial version.
func (s *Server) handleDatasetCreate(w http.ResponseWriter, r *http.Request) {
	var req datasetCreateReq
	if !decodeBody(w, r, &req) {
		return
	}
	if req.ID == "" {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("dataset id is required"))
		return
	}
	if req.Items < 2 {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("dataset needs at least 2 items, got %d", req.Items))
		return
	}
	// Validate the app name by building a probe spec.
	if _, err := (jobspec.Spec{App: req.App, Items: req.Items}).BuildApp(1); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	seed := req.Seed
	if seed == 0 {
		// The dataset's identity must be stable and non-zero; derive it
		// from the fleet seed and the dataset ID.
		seed = uint64(pairstore.DigestItem("dataset-seed", req.ID, s.cfg.Seed, 0)) | 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.datasets[req.ID]; dup {
		writeError(w, r, http.StatusConflict, fmt.Errorf("dataset %q already exists", req.ID))
		return
	}
	ds := &Dataset{ID: req.ID, App: req.App, Seed: seed, Items: req.Items}
	s.datasets[req.ID] = ds
	s.dsOrder = append(s.dsOrder, req.ID)
	writeJSON(w, http.StatusCreated, ds)
}

// handleDatasetAppend grows a dataset: version n -> n+k. The appended
// items become new work for the next submitted job; everything already
// computed stays resident in the store.
func (s *Server) handleDatasetAppend(w http.ResponseWriter, r *http.Request) {
	var req datasetAppendReq
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Items <= 0 {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("append needs a positive item count, got %d", req.Items))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ds, ok := s.datasets[r.PathValue("id")]
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown dataset %q", r.PathValue("id")))
		return
	}
	ds.Items += req.Items
	ds.Appends++
	writeJSON(w, http.StatusOK, ds)
}

// handleDatasetJob submits the dataset's next job: a delta job over the
// current version with the already-computed version as base. The
// recorded spec carries store, dataset_version, and base_version, so
// the served arrival log replays bit-identically through the batch
// scheduler (which rebuilds the same store states at the same virtual
// times).
func (s *Server) handleDatasetJob(w http.ResponseWriter, r *http.Request) {
	var req datasetJobReq
	if !decodeBody(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ds, ok := s.datasets[r.PathValue("id")]
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown dataset %q", r.PathValue("id")))
		return
	}
	if ds.Computed == ds.Items {
		writeError(w, r, http.StatusConflict,
			fmt.Errorf("dataset %q has no new items (version %d fully computed)", ds.ID, ds.Items))
		return
	}
	spec := jobspec.Spec{
		Tenant:         req.Tenant,
		App:            ds.App,
		Items:          ds.Items,
		Nodes:          req.Nodes,
		Seed:           ds.Seed,
		Store:          ds.ID,
		DatasetVersion: ds.Items,
		BaseVersion:    ds.Computed,
	}
	if _, ok := s.submitSpecLocked(w, r, spec); !ok {
		return
	}
	// The submitted job covers the dataset up to its current version;
	// the next job is planned against it. (A failed job leaves a gap
	// the planner repairs: its pairs are simply store misses that get
	// recomputed by the next submission.)
	ds.Computed = ds.Items
	ds.Jobs++
}

// Datasets returns the registry in creation order — the counterpart of
// Config.Datasets for persisting across daemon restarts (the daemon
// saves it next to the pair store on shutdown).
func (s *Server) Datasets() []Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Dataset, 0, len(s.dsOrder))
	for _, id := range s.dsOrder {
		out = append(out, *s.datasets[id])
	}
	return out
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Datasets []Dataset `json:"datasets"`
	}{s.Datasets()})
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds, ok := s.datasets[r.PathValue("id")]
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown dataset %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, ds)
}

// handleStore serves the pair store's stats document (the artifact CI
// uploads per run).
func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Stats())
}
