package serve

import (
	"net/http"
	"strings"
)

// MediaV1 is the vendor media type of API version 1. Clients that send
// it in Accept opt into the structured error envelope
// {"error":{"code","message"}}; all other clients get the legacy
// {"error":"message"} shape, so PR 4/5 clients keep working unchanged.
const MediaV1 = "application/vnd.rocket.v1+json"

// apiV1 is the complete version-1 surface: one method per endpoint.
// *Server implements it; Mux is the only place routes are bound, so the
// route table below is the single source of truth for the wire API
// (the /v1/capabilities endpoint lists it via Routes).
type apiV1 interface {
	handleSubmit(w http.ResponseWriter, r *http.Request)
	handleList(w http.ResponseWriter, r *http.Request)
	handleJob(w http.ResponseWriter, r *http.Request)
	handleResult(w http.ResponseWriter, r *http.Request)
	handleJobEvents(w http.ResponseWriter, r *http.Request)
	handleAllEvents(w http.ResponseWriter, r *http.Request)
	handleLog(w http.ResponseWriter, r *http.Request)
	handleDatasetCreate(w http.ResponseWriter, r *http.Request)
	handleDatasetList(w http.ResponseWriter, r *http.Request)
	handleDataset(w http.ResponseWriter, r *http.Request)
	handleDatasetAppend(w http.ResponseWriter, r *http.Request)
	handleDatasetJob(w http.ResponseWriter, r *http.Request)
	handleStore(w http.ResponseWriter, r *http.Request)
	handleTrace(w http.ResponseWriter, r *http.Request)
	handleCapabilities(w http.ResponseWriter, r *http.Request)
	handleMetrics(w http.ResponseWriter, r *http.Request)
	handleHealthz(w http.ResponseWriter, r *http.Request)
}

// route binds one method+pattern to its apiV1 handler.
type route struct {
	pattern string
	handler func(v1 apiV1) http.HandlerFunc
}

// v1Routes is the version-1 route table. Order is documentation order;
// patterns use Go 1.22 method+path matching.
var v1Routes = []route{
	{"POST /v1/jobs", func(v apiV1) http.HandlerFunc { return v.handleSubmit }},
	{"GET /v1/jobs", func(v apiV1) http.HandlerFunc { return v.handleList }},
	{"GET /v1/jobs/{id}", func(v apiV1) http.HandlerFunc { return v.handleJob }},
	{"GET /v1/jobs/{id}/result", func(v apiV1) http.HandlerFunc { return v.handleResult }},
	{"GET /v1/jobs/{id}/events", func(v apiV1) http.HandlerFunc { return v.handleJobEvents }},
	{"GET /v1/events", func(v apiV1) http.HandlerFunc { return v.handleAllEvents }},
	{"GET /v1/log", func(v apiV1) http.HandlerFunc { return v.handleLog }},
	{"POST /v1/datasets", func(v apiV1) http.HandlerFunc { return v.handleDatasetCreate }},
	{"GET /v1/datasets", func(v apiV1) http.HandlerFunc { return v.handleDatasetList }},
	{"GET /v1/datasets/{id}", func(v apiV1) http.HandlerFunc { return v.handleDataset }},
	{"POST /v1/datasets/{id}/append", func(v apiV1) http.HandlerFunc { return v.handleDatasetAppend }},
	{"POST /v1/datasets/{id}/jobs", func(v apiV1) http.HandlerFunc { return v.handleDatasetJob }},
	{"GET /v1/store", func(v apiV1) http.HandlerFunc { return v.handleStore }},
	{"GET /v1/trace", func(v apiV1) http.HandlerFunc { return v.handleTrace }},
	{"GET /v1/capabilities", func(v apiV1) http.HandlerFunc { return v.handleCapabilities }},
	{"GET /metrics", func(v apiV1) http.HandlerFunc { return v.handleMetrics }},
	{"GET /healthz", func(v apiV1) http.HandlerFunc { return v.handleHealthz }},
}

// Mux builds the service's route table over a version-1 implementation.
// New calls it with the Server itself; it exists as a separate
// constructor so the full surface is declared (and testable) in one
// place instead of scattered across registration calls.
func Mux(v1 apiV1) *http.ServeMux {
	mux := http.NewServeMux()
	for _, rt := range v1Routes {
		mux.HandleFunc(rt.pattern, rt.handler(v1))
	}
	return mux
}

// Routes returns the method+pattern strings of the version-1 surface in
// table order — what /v1/capabilities advertises.
func Routes() []string {
	out := make([]string, len(v1Routes))
	for i, rt := range v1Routes {
		out[i] = rt.pattern
	}
	return out
}

// acceptsV1 reports whether the client opted into the structured
// version-1 media type.
func acceptsV1(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), MediaV1)
}

// errorCode maps an HTTP status to a stable machine-readable code for
// the structured envelope.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}
