package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"rocket/internal/jobspec"
)

func getBody(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.StatusCode
}

// TestTraceEndpointDisabled: without Config.Trace there is no recorder,
// and the endpoint says so instead of serving an empty trace.
func TestTraceEndpointDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 2, Seed: 1, TimeScale: 0})
	body, code := getBody(t, ts.URL+"/v1/trace")
	if code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", code)
	}
	if !strings.Contains(body, "tracing disabled") {
		t.Fatalf("body %q does not explain the 404", body)
	}
}

// TestTraceEndpointServesSpans: with tracing on, completed jobs appear
// as job-wait/job-run spans in the Perfetto export.
func TestTraceEndpointServesSpans(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 2, Seed: 7, TimeScale: 0, Trace: true})
	id, code := postJob(t, ts.URL, jobspec.Spec{Tenant: "acme", App: "forensics", Items: 8, Nodes: 1})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitTerminal(t, ts.URL, id)

	body, code := getBody(t, ts.URL+"/v1/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: status %d", code)
	}
	for _, want := range []string{`"traceEvents":[`, `"cat":"job-wait"`, `"cat":"job-run"`, `"tenant":"acme"`} {
		if !strings.Contains(body, want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

// TestMetricsWaitSeries: /metrics exposes the queue-depth and wait
// gauges plus the per-tenant wait histogram, each with HELP and TYPE.
func TestMetricsWaitSeries(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 2, Seed: 3, TimeScale: 0})
	id, code := postJob(t, ts.URL, jobspec.Spec{Tenant: "acme", App: "forensics", Items: 8, Nodes: 1})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitTerminal(t, ts.URL, id)

	body, code := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{
		"# TYPE rocketd_queue_depth gauge",
		"rocketd_queue_depth 0",
		"# TYPE rocketd_p50_wait_seconds gauge",
		"# TYPE rocketd_p99_wait_seconds gauge",
		"# TYPE rocketd_wait_seconds histogram",
		`rocketd_wait_seconds_bucket{tenant="acme",le="+Inf"} 1`,
		`rocketd_wait_seconds_count{tenant="acme"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Every series must carry HELP and TYPE: any rocketd_ sample line's
	// metric family name must have appeared in a preceding # TYPE line.
	typed := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[family] {
			t.Errorf("sample %q has no preceding # TYPE", line)
		}
	}
}
