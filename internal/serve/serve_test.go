package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rocket/internal/jobspec"
	"rocket/internal/sched"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, base string, spec jobspec.Spec) (string, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&reply)
	return reply.ID, resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil && err != io.EOF {
			t.Fatalf("%s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitTerminal polls a job until its status is terminal.
func waitTerminal(t *testing.T, base, id string) sched.JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var info sched.JobInfo
		if code := getJSON(t, base+"/v1/jobs/"+id, &info); code != http.StatusOK {
			t.Fatalf("job %s: status code %d", id, code)
		}
		if info.Status.Terminal() {
			return info
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return sched.JobInfo{}
}

// The acceptance end-to-end: 8 concurrent clients submit mixed
// forensics/microscopy jobs over HTTP, all complete, and replaying the
// recorded arrival log offline reproduces identical per-job metrics and
// identical fleet metrics.
func TestEndToEndConcurrentClientsAndReplay(t *testing.T) {
	s, ts := newTestServer(t, Config{Nodes: 4, Policy: sched.PolicyFairShare, Seed: 11})
	const clients, perClient = 8, 2
	var (
		mu  sync.Mutex
		ids []string
		wg  sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				spec := jobspec.Spec{
					Tenant: fmt.Sprintf("tenant%d", c%3),
					App:    []string{"forensics", "microscopy"}[(c+k)%2],
					Items:  6 + 2*(c%3),
					Nodes:  1 + (c+k)%2,
				}
				id, code := postJob(t, ts.URL, spec)
				if code != http.StatusAccepted || id == "" {
					t.Errorf("client %d: submit returned %d (%q)", c, code, id)
					return
				}
				mu.Lock()
				ids = append(ids, id)
				mu.Unlock()
				// Interleave submissions with completions.
				waitTerminal(t, ts.URL, id)
			}
		}(c)
	}
	wg.Wait()
	if len(ids) != clients*perClient {
		t.Fatalf("submitted %d jobs, want %d", len(ids), clients*perClient)
	}
	for _, id := range ids {
		if info := waitTerminal(t, ts.URL, id); info.Status != sched.StatusDone {
			t.Fatalf("job %s: %+v, want done", id, info)
		}
	}

	// Drain the fleet, then pull the complete arrival log over HTTP.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fleet, err := s.Shutdown(ctx)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/log")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	man, err := jobspec.Parse(raw)
	if err != nil {
		t.Fatalf("log did not parse: %v\n%s", err, raw)
	}
	if len(man.Jobs) != clients*perClient || !man.KeepGoing {
		t.Fatalf("log has %d jobs (keep_going=%v)", len(man.Jobs), man.KeepGoing)
	}

	// Replay the served trace offline through the batch scheduler.
	cfg, err := man.Config()
	if err != nil {
		t.Fatal(err)
	}
	replay, err := sched.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotFleet, err := fleet.JSON()
	if err != nil {
		t.Fatal(err)
	}
	wantFleet, err := replay.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotFleet, wantFleet) {
		t.Fatalf("served fleet metrics differ from offline replay\nserved:\n%s\nreplay:\n%s",
			gotFleet, wantFleet)
	}

	// And the per-job result documents match the replay's, byte for byte.
	byID := map[string]sched.JobDoc{}
	for _, jm := range replay.Jobs {
		byID[jm.ID] = (&jm).Doc()
	}
	for _, id := range ids {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		served, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result %s: code %d", id, resp.StatusCode)
		}
		want, _ := json.MarshalIndent(byID[id], "", "  ")
		want = append(want, '\n')
		if !bytes.Equal(served, want) {
			t.Fatalf("job %s result differs from replay\nserved:\n%s\nreplay:\n%s", id, served, want)
		}
	}
}

func TestSubmitValidationAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 2, Seed: 1})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"unknown app", `{"app": "astrology", "items": 8}`, http.StatusBadRequest},
		{"too few items", `{"app": "forensics", "items": 1}`, http.StatusBadRequest},
		{"unknown field", `{"app": "forensics", "items": 8, "nodez": 1}`, http.StatusBadRequest},
		{"client-set arrival", `{"app": "forensics", "items": 8, "arrival_ms": 5}`, http.StatusBadRequest},
		{"too wide", `{"app": "forensics", "items": 8, "nodes": 3}`, http.StatusBadRequest},
		{"ok", `{"app": "forensics", "items": 8}`, http.StatusAccepted},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: code %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: code %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz: code %d, want 200", code)
	}
}

func TestResultLifecycleAndMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 2, Seed: 1})
	id, code := postJob(t, ts.URL, jobspec.Spec{App: "forensics", Items: 8})
	if code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	waitTerminal(t, ts.URL, id)
	var doc sched.JobDoc
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &doc); code != http.StatusOK {
		t.Fatalf("result code %d", code)
	}
	if doc.ID != id || doc.Inner == nil || doc.Inner.Pairs != 28 {
		t.Fatalf("result doc: %+v", doc)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `rocketd_jobs{state="done"} 1`) {
		t.Fatalf("metrics missing done count:\n%s", body)
	}
	var list struct {
		Jobs []sched.JobInfo `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK || len(list.Jobs) != 1 {
		t.Fatalf("list: code %d, %+v", code, list)
	}
}

// SSE: a job's event stream replays its full lifecycle and closes at the
// terminal event.
func TestJobEventStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 2, Seed: 1})
	id, _ := postJob(t, ts.URL, jobspec.Spec{App: "microscopy", Items: 8})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var types []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: ") {
			types = append(types, strings.TrimPrefix(sc.Text(), "event: "))
		}
	}
	want := []string{sched.EventSubmitted, sched.EventQueued, sched.EventStarted, sched.EventCompleted}
	if len(types) != len(want) {
		t.Fatalf("event types %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event types %v, want %v", types, want)
		}
	}
}

// Draining: once Shutdown begins, healthz flips to 503 and submissions
// are refused with 503.
func TestDrainingRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{Nodes: 2, Seed: 1})
	go s.Shutdown(context.Background())
	for !s.Queue().Draining() {
		time.Sleep(50 * time.Microsecond)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", code)
	}
	if _, code := postJob(t, ts.URL, jobspec.Spec{App: "forensics", Items: 8}); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", code)
	}
}
