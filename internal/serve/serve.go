// Package serve is rocketd's service layer: a long-running HTTP API over
// the online scheduler (sched.Online) that admits all-pairs job
// submissions while the fleet runs.
//
// Endpoints:
//
//	POST /v1/jobs             submit a job (jobspec.Spec JSON) -> 202 {id}
//	GET  /v1/jobs             list job snapshots
//	GET  /v1/jobs/{id}        one job's snapshot
//	GET  /v1/jobs/{id}/result final metrics once the job is terminal
//	GET  /v1/jobs/{id}/events SSE stream of the job's lifecycle
//	GET  /v1/events           SSE stream of all scheduler events
//	GET  /v1/log              the replayable arrival log (a manifest)
//	GET  /v1/trace            flight-recorder spans as Perfetto JSON (404 unless Config.Trace)
//	GET  /v1/capabilities     API version, route table, shard count, store state
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             liveness; 503 while draining
//
// The full method+pattern table lives in one place (Mux); the dataset
// endpoints are documented in datasets.go. Errors default to the legacy
// {"error":"message"} envelope; clients that send Accept:
// application/vnd.rocket.v1+json receive the structured
// {"error":{"code","message"}} form instead (see MediaV1).
//
// Every submission is recorded as a jobspec.Spec; once the scheduler
// assigns its virtual arrival, the submission becomes part of the arrival
// log, an ordinary batch manifest with nanosecond-exact arrivals. Feeding
// that log to `rocketqueue -replay` re-executes the served trace offline
// and reproduces the server's fleet metrics byte-for-byte.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"rocket/internal/cluster"
	"rocket/internal/jobspec"
	"rocket/internal/obs"
	"rocket/internal/pairstore"
	"rocket/internal/sched"
)

// Config configures one rocketd server.
type Config struct {
	// Nodes is the size of the shared simulated cluster (required).
	Nodes int
	// NodeSpec is each node's hardware; the zero value is the scheduler's
	// default (DAS-5 node, one TitanX Maxwell).
	NodeSpec cluster.NodeSpec
	// Policy selects the placement order; default FIFO.
	Policy sched.Policy
	// MaxQueued, MaxRunning, MaxRetries, Workers, Seed: see sched.Config.
	MaxQueued  int
	MaxRunning int
	MaxRetries int
	Workers    int
	Seed       uint64
	// TimeScale is the wall-clock to virtual-time bridge (virtual seconds
	// per wall second); 0 means arrivals latch onto the virtual clock.
	TimeScale float64
	// Store is the fleet's shared pair store; nil starts an empty one.
	// Pass a store reloaded from disk (pairstore.Load) to warm-start the
	// service across restarts.
	Store *pairstore.Store
	// Datasets restores the dataset registry (Server.Datasets of a
	// previous session). A warm Store is only consulted through the
	// datasets API when the registry that produced it is restored too —
	// a re-created dataset would start at Computed = 0 and recompute
	// everything.
	Datasets []Dataset
	// Shards is the event-engine width advertised by /v1/capabilities.
	// It is informational: all-pairs results are width-invariant, so it
	// never changes scheduling outcomes. 0 reports 1.
	Shards int
	// Trace attaches a flight recorder to the scheduler: placement spans
	// (job-wait, job-run) and store maintenance marks are recorded and
	// served as Perfetto JSON on GET /v1/trace. Off by default; a nil
	// recorder costs nothing on the scheduling path.
	Trace bool
	// TraceCapacity bounds the recorder ring (spans retained, oldest
	// overwritten first); 0 means the obs default (64Ki).
	TraceCapacity int
}

// Server owns the online scheduler and the recorded submission specs.
type Server struct {
	cfg   Config
	queue *sched.Online
	store *pairstore.Store
	spans *obs.Recorder // nil unless Config.Trace
	mux   *http.ServeMux

	mu       sync.Mutex
	specs    []jobspec.Spec // submission order, IDs filled
	datasets map[string]*Dataset
	dsOrder  []string // dataset creation order, for stable listings
}

// New starts the online scheduler and returns the server.
func New(cfg Config) (*Server, error) {
	store := cfg.Store
	if store == nil {
		store = pairstore.New()
	}
	var spans *obs.Recorder
	if cfg.Trace {
		spans = obs.New(1, cfg.TraceCapacity)
	}
	q, err := sched.StartOnline(sched.Config{
		Nodes:      cfg.Nodes,
		NodeSpec:   cfg.NodeSpec,
		Policy:     cfg.Policy,
		MaxQueued:  cfg.MaxQueued,
		MaxRunning: cfg.MaxRunning,
		MaxRetries: cfg.MaxRetries,
		Workers:    cfg.Workers,
		Seed:       cfg.Seed,
		TimeScale:  cfg.TimeScale,
		Store:      store,
		Spans:      spans,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, queue: q, store: store, spans: spans, datasets: make(map[string]*Dataset)}
	for i := range cfg.Datasets {
		ds := cfg.Datasets[i]
		if _, dup := s.datasets[ds.ID]; dup {
			return nil, fmt.Errorf("serve: duplicate restored dataset %q", ds.ID)
		}
		s.datasets[ds.ID] = &ds
		s.dsOrder = append(s.dsOrder, ds.ID)
	}
	s.mux = Mux(s)
	return s, nil
}

// Store exposes the fleet's shared pair store (for persistence by the
// daemon on shutdown).
func (s *Server) Store() *pairstore.Store { return s.store }

// Queue exposes the underlying online scheduler.
func (s *Server) Queue() *sched.Online { return s.queue }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// writeJSON writes v with the given status. A Content-Type set by the
// caller (the negotiated vendor type, say) is kept.
func writeJSON(w http.ResponseWriter, status int, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorDoc is the legacy error envelope, the default shape since PR 4.
type errorDoc struct {
	Error string `json:"error"`
}

// errorEnvelope is the structured version-1 envelope, returned when the
// request's Accept header names MediaV1.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeError negotiates the error shape on the request's Accept header:
// legacy {"error":"message"} by default (existing PR 4/5 clients parse
// it), structured {"error":{"code","message"}} for clients sending
// Accept: application/vnd.rocket.v1+json.
func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	if acceptsV1(r) {
		w.Header().Set("Content-Type", MediaV1)
		writeJSON(w, status, errorEnvelope{Error: errorBody{
			Code:    errorCode(status),
			Message: err.Error(),
		}})
		return
	}
	writeJSON(w, status, errorDoc{Error: err.Error()})
}

// submitReply is the 202 body of a submission.
type submitReply struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Job    string `json:"job"`
	Result string `json:"result"`
	Events string `json:"events"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobspec.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	if spec.ArrivalNS != 0 || spec.ArrivalMS != 0 {
		writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("online submissions cannot carry arrival times; the scheduler assigns them"))
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.submitSpecLocked(w, r, spec)
}

// submitSpecLocked converts the spec to a job, submits it, and records
// the spec in the arrival log. One lock spans spec->job conversion and
// Submit so the recorded spec order matches the scheduler's submission
// indices (both drive seed/ID derivation on replay); callers hold s.mu.
func (s *Server) submitSpecLocked(w http.ResponseWriter, r *http.Request, spec jobspec.Spec) (string, bool) {
	index := len(s.specs)
	job, err := spec.Job(index, s.cfg.Seed)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return "", false
	}
	id, err := s.queue.Submit(job)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, sched.ErrShuttingDown) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, r, status, err)
		return "", false
	}
	spec.ID = id
	s.specs = append(s.specs, spec)
	writeJSON(w, http.StatusAccepted, submitReply{
		ID:     id,
		Status: sched.StatusSubmitted.String(),
		Job:    "/v1/jobs/" + id,
		Result: "/v1/jobs/" + id + "/result",
		Events: "/v1/jobs/" + id + "/events",
	})
	return id, true
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []sched.JobInfo `json:"jobs"`
	}{s.queue.Jobs()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	info, ok := s.queue.Job(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := s.queue.Job(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	jm, ok := s.queue.JobMetrics(id)
	if !ok {
		// Not terminal yet: tell the client where the job stands.
		writeJSON(w, http.StatusAccepted, info)
		return
	}
	writeJSON(w, http.StatusOK, jm.Doc())
}

// Log returns the replayable arrival log as a manifest: the recorded
// specs whose virtual arrivals have been assigned, with exact nanosecond
// arrivals, over the server's fleet configuration. KeepGoing is set so
// failed served jobs replay as recorded failures.
//
// Only jobs submitted through the HTTP API carry a recorded spec; a job
// handed straight to Queue().Submit cannot be described in manifest form
// and is omitted, which makes the log unreplayable in the strict
// byte-identical sense. Keep all submissions on the HTTP path when the
// log matters.
func (s *Server) Log() jobspec.Manifest {
	logged := s.queue.Log()
	s.mu.Lock()
	defer s.mu.Unlock()
	man := jobspec.Manifest{
		Nodes:      s.cfg.Nodes,
		Policy:     s.cfg.Policy.String(),
		MaxQueued:  s.cfg.MaxQueued,
		MaxRunning: s.cfg.MaxRunning,
		MaxRetries: s.cfg.MaxRetries,
		KeepGoing:  true,
		Seed:       s.cfg.Seed,
	}
	byID := make(map[string]jobspec.Spec, len(s.specs))
	for _, spec := range s.specs {
		byID[spec.ID] = spec
	}
	for _, j := range logged {
		spec, ok := byID[j.ID]
		if !ok {
			continue // submitted around the HTTP layer; no spec to replay
		}
		spec.ArrivalNS = int64(j.Arrival)
		man.Jobs = append(man.Jobs, spec)
	}
	return man
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	buf, err := s.Log().JSON()
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
}

// capabilitiesDoc is the /v1/capabilities body: what a client can rely
// on without probing — the API version and media type, the advertised
// event-engine width, the fleet shape, and the pair store's state.
type capabilitiesDoc struct {
	API    string   `json:"api"`
	Media  string   `json:"media"`
	Shards int      `json:"shards"`
	Nodes  int      `json:"nodes"`
	Policy string   `json:"policy"`
	Store  storeDoc `json:"store"`
	Routes []string `json:"routes"`
}

// storeDoc is the capabilities view of the pair store.
type storeDoc struct {
	Entries  int   `json:"entries"`
	Segments int   `json:"segments"`
	LogBytes int64 `json:"log_bytes"`
	Datasets int   `json:"datasets"`
}

func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	shards := s.cfg.Shards
	if shards < 1 {
		shards = 1
	}
	st := s.store.Stats()
	s.mu.Lock()
	datasets := len(s.datasets)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, capabilitiesDoc{
		API:    "v1",
		Media:  MediaV1,
		Shards: shards,
		Nodes:  s.cfg.Nodes,
		Policy: s.cfg.Policy.String(),
		Store: storeDoc{
			Entries:  st.Entries,
			Segments: st.Segments,
			LogBytes: st.Bytes,
			Datasets: datasets,
		},
		Routes: Routes(),
	})
}

// handleTrace serves the flight recorder's current contents as Chrome
// trace-event JSON (Perfetto-loadable). ?engine=1 includes the
// width-dependent engine spans; the default export is width-invariant.
// Without Config.Trace there is no recorder and the endpoint is 404.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.spans == nil {
		writeError(w, r, http.StatusNotFound,
			fmt.Errorf("tracing disabled; start rocketd with -trace"))
		return
	}
	opts := obs.ExportOptions{IncludeEngine: r.URL.Query().Get("engine") == "1"}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteTrace(w, s.spans.Snapshot(), opts)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.queue.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics renders the Prometheus text exposition format by hand;
// the counters come from one consistent Counts snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.queue.Counts()
	draining := 0
	if s.queue.Draining() {
		draining = 1
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP rocketd_jobs Jobs by lifecycle state.\n# TYPE rocketd_jobs gauge\n")
	fmt.Fprintf(w, "rocketd_jobs{state=\"submitted\"} %d\n", c.Submitted)
	fmt.Fprintf(w, "rocketd_jobs{state=\"queued\"} %d\n", c.Queued)
	fmt.Fprintf(w, "rocketd_jobs{state=\"running\"} %d\n", c.Running)
	fmt.Fprintf(w, "rocketd_jobs{state=\"done\"} %d\n", c.Done)
	fmt.Fprintf(w, "rocketd_jobs{state=\"failed\"} %d\n", c.Failed)
	fmt.Fprintf(w, "rocketd_jobs{state=\"rejected\"} %d\n", c.Rejected)
	fmt.Fprintf(w, "# HELP rocketd_retries_total Partition-loss requeues.\n# TYPE rocketd_retries_total counter\n")
	fmt.Fprintf(w, "rocketd_retries_total %d\n", c.Retries)
	fmt.Fprintf(w, "# HELP rocketd_virtual_clock_seconds The fleet's virtual clock.\n# TYPE rocketd_virtual_clock_seconds gauge\n")
	fmt.Fprintf(w, "rocketd_virtual_clock_seconds %g\n", s.queue.Clock().Seconds())
	fmt.Fprintf(w, "# HELP rocketd_draining Whether shutdown has begun.\n# TYPE rocketd_draining gauge\n")
	fmt.Fprintf(w, "rocketd_draining %d\n", draining)

	ws := s.queue.WaitStats()
	fmt.Fprintf(w, "# HELP rocketd_queue_depth Jobs currently queued for placement.\n# TYPE rocketd_queue_depth gauge\n")
	fmt.Fprintf(w, "rocketd_queue_depth %d\n", ws.Depth)
	fmt.Fprintf(w, "# HELP rocketd_p50_wait_seconds Exact median queue wait across placements (virtual time).\n# TYPE rocketd_p50_wait_seconds gauge\n")
	fmt.Fprintf(w, "rocketd_p50_wait_seconds %g\n", float64(ws.P50NS)/1e9)
	fmt.Fprintf(w, "# HELP rocketd_p99_wait_seconds Exact 99th-percentile queue wait across placements (virtual time).\n# TYPE rocketd_p99_wait_seconds gauge\n")
	fmt.Fprintf(w, "rocketd_p99_wait_seconds %g\n", float64(ws.P99NS)/1e9)
	fmt.Fprintf(w, "# HELP rocketd_wait_seconds Queue wait per tenant (virtual time, log-bucketed).\n# TYPE rocketd_wait_seconds histogram\n")
	tenants := make([]string, 0, len(ws.Tenants))
	for tenant := range ws.Tenants {
		tenants = append(tenants, tenant)
	}
	sort.Strings(tenants)
	for _, tenant := range tenants {
		h := ws.Tenants[tenant]
		for _, b := range h.Buckets() {
			fmt.Fprintf(w, "rocketd_wait_seconds_bucket{tenant=%q,le=%q} %d\n",
				tenant, strconv.FormatFloat(float64(b.Le)/1e9, 'g', -1, 64), b.Count)
		}
		fmt.Fprintf(w, "rocketd_wait_seconds_bucket{tenant=%q,le=\"+Inf\"} %d\n", tenant, h.Count())
		fmt.Fprintf(w, "rocketd_wait_seconds_sum{tenant=%q} %g\n", tenant, float64(h.Sum())/1e9)
		fmt.Fprintf(w, "rocketd_wait_seconds_count{tenant=%q} %d\n", tenant, h.Count())
	}

	st := s.store.Stats()
	s.mu.Lock()
	datasets := len(s.datasets)
	s.mu.Unlock()
	fmt.Fprintf(w, "# HELP rocketd_datasets Registered datasets.\n# TYPE rocketd_datasets gauge\n")
	fmt.Fprintf(w, "rocketd_datasets %d\n", datasets)
	fmt.Fprintf(w, "# HELP rocketd_store_entries Distinct pair results resident in the store.\n# TYPE rocketd_store_entries gauge\n")
	fmt.Fprintf(w, "rocketd_store_entries %d\n", st.Entries)
	fmt.Fprintf(w, "# HELP rocketd_store_segments Segments of the store's log (mutable log plus sealed columnar segments).\n# TYPE rocketd_store_segments gauge\n")
	fmt.Fprintf(w, "rocketd_store_segments %d\n", st.Segments)
	fmt.Fprintf(w, "# HELP rocketd_store_levels Non-empty compaction tiers of sealed segments.\n# TYPE rocketd_store_levels gauge\n")
	fmt.Fprintf(w, "rocketd_store_levels %d\n", st.Levels)
	fmt.Fprintf(w, "# HELP rocketd_store_log_bytes Modeled size of the segment log.\n# TYPE rocketd_store_log_bytes gauge\n")
	fmt.Fprintf(w, "rocketd_store_log_bytes %d\n", st.Bytes)
	fmt.Fprintf(w, "# HELP rocketd_store_disk_bytes Physical size of persisted columnar segment files.\n# TYPE rocketd_store_disk_bytes gauge\n")
	fmt.Fprintf(w, "rocketd_store_disk_bytes %d\n", st.DiskBytes)
	fmt.Fprintf(w, "# HELP rocketd_store_bytes_per_pair On-disk bytes per pair across persisted segments.\n# TYPE rocketd_store_bytes_per_pair gauge\n")
	fmt.Fprintf(w, "rocketd_store_bytes_per_pair %g\n", st.BytesPerPair)
	fmt.Fprintf(w, "# HELP rocketd_store_index_resident_bytes Resident probe-index footprint (fences, dictionaries, bloom filters).\n# TYPE rocketd_store_index_resident_bytes gauge\n")
	fmt.Fprintf(w, "rocketd_store_index_resident_bytes %d\n", st.IndexResidentBytes)
	fmt.Fprintf(w, "# HELP rocketd_store_bloom_hit_rate Share of segment probes answered absent by bloom filters without a block decode.\n# TYPE rocketd_store_bloom_hit_rate gauge\n")
	fmt.Fprintf(w, "rocketd_store_bloom_hit_rate %g\n", st.BloomHitRate)
	fmt.Fprintf(w, "# HELP rocketd_store_seals_total Mutable-log promotions into sorted columnar segments.\n# TYPE rocketd_store_seals_total counter\n")
	fmt.Fprintf(w, "rocketd_store_seals_total %d\n", st.Seals)
	fmt.Fprintf(w, "# HELP rocketd_store_compactions_total Tier merges and full compactions.\n# TYPE rocketd_store_compactions_total counter\n")
	fmt.Fprintf(w, "rocketd_store_compactions_total %d\n", st.Compactions)
	fmt.Fprintf(w, "# HELP rocketd_store_served_pairs_total Pairs served from the store instead of computed.\n# TYPE rocketd_store_served_pairs_total counter\n")
	fmt.Fprintf(w, "rocketd_store_served_pairs_total %d\n", st.ServedPairs)
	fmt.Fprintf(w, "# HELP rocketd_store_missed_pairs_total Planned-resident pairs recomputed because they were absent.\n# TYPE rocketd_store_missed_pairs_total counter\n")
	fmt.Fprintf(w, "rocketd_store_missed_pairs_total %d\n", st.MissedPairs)
	fmt.Fprintf(w, "# HELP rocketd_store_puts_total Pair results appended to the store.\n# TYPE rocketd_store_puts_total counter\n")
	fmt.Fprintf(w, "rocketd_store_puts_total %d\n", st.Puts)
	fmt.Fprintf(w, "# HELP rocketd_store_read_bytes_total Charged store read I/O.\n# TYPE rocketd_store_read_bytes_total counter\n")
	fmt.Fprintf(w, "rocketd_store_read_bytes_total %d\n", st.ReadBytes)
	fmt.Fprintf(w, "# HELP rocketd_store_write_bytes_total Charged store write I/O.\n# TYPE rocketd_store_write_bytes_total counter\n")
	fmt.Fprintf(w, "rocketd_store_write_bytes_total %d\n", st.WriteBytes)
}

// Shutdown stops admission and drains the fleet (see sched.Online.Shutdown);
// the context bounds the wait, not the in-flight work.
func (s *Server) Shutdown(ctx context.Context) (*sched.Metrics, error) {
	return s.queue.Shutdown(ctx)
}

// sseWriter streams scheduler events in Server-Sent Events framing.
func writeSSE(w http.ResponseWriter, e sched.Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	return err
}

func (s *Server) handleAllEvents(w http.ResponseWriter, r *http.Request) {
	s.streamEvents(w, r, "")
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.queue.Job(id); !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	s.streamEvents(w, r, id)
}

// streamEvents follows the scheduler's event stream. With a job filter,
// the stream ends once the job reaches a terminal event; otherwise it
// ends when the scheduler shuts down (after the final "shutdown" event)
// or the client disconnects.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, jobID string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	terminal := map[string]bool{
		sched.EventRejected:  true,
		sched.EventCompleted: true,
		sched.EventFailed:    true,
	}
	emit := func(evs []sched.Event) (stop bool) {
		for _, e := range evs {
			if jobID != "" && e.Job != jobID {
				continue
			}
			if writeSSE(w, e) != nil {
				return true
			}
			if jobID != "" && terminal[e.Type] {
				stop = true
			}
		}
		fl.Flush()
		return stop
	}

	i := 0
	for {
		evs, wake := s.queue.EventsSince(i)
		i += len(evs)
		if emit(evs) {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-s.queue.Done():
			// Drain whatever was appended up to the shutdown event.
			evs, _ := s.queue.EventsSince(i)
			emit(evs)
			return
		}
	}
}
