package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"rocket/internal/pairstore"
	"rocket/internal/sched"
)

func postJSON(t *testing.T, url string, body any, v any) int {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		json.NewDecoder(resp.Body).Decode(v)
	}
	return resp.StatusCode
}

func TestDatasetLifecycleAndValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 2, Seed: 1, TimeScale: 0})
	base := ts.URL

	var ds Dataset
	if code := postJSON(t, base+"/v1/datasets",
		datasetCreateReq{ID: "corpus", App: "forensics", Items: 8, Seed: 7}, &ds); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if ds.Seed != 7 || ds.Items != 8 || ds.Computed != 0 {
		t.Fatalf("created dataset: %+v", ds)
	}
	// Duplicates, bad apps, tiny datasets, zero appends are refused.
	if code := postJSON(t, base+"/v1/datasets",
		datasetCreateReq{ID: "corpus", App: "forensics", Items: 8}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate create: status %d", code)
	}
	if code := postJSON(t, base+"/v1/datasets",
		datasetCreateReq{ID: "x", App: "astrology", Items: 8}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad app: status %d", code)
	}
	if code := postJSON(t, base+"/v1/datasets",
		datasetCreateReq{ID: "y", App: "forensics", Items: 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("tiny dataset: status %d", code)
	}
	if code := postJSON(t, base+"/v1/datasets/corpus/append",
		datasetAppendReq{Items: 0}, nil); code != http.StatusBadRequest {
		t.Fatalf("zero append: status %d", code)
	}
	if code := postJSON(t, base+"/v1/datasets/nope/append",
		datasetAppendReq{Items: 1}, nil); code != http.StatusNotFound {
		t.Fatalf("append to unknown dataset: status %d", code)
	}
	// A zero request seed derives a stable non-zero one.
	var derived Dataset
	if code := postJSON(t, base+"/v1/datasets",
		datasetCreateReq{ID: "auto", App: "microscopy", Items: 4}, &derived); code != http.StatusCreated {
		t.Fatalf("create auto: status %d", code)
	}
	if derived.Seed == 0 {
		t.Fatal("derived dataset seed is zero")
	}
	var list struct {
		Datasets []Dataset `json:"datasets"`
	}
	if code := getJSON(t, base+"/v1/datasets", &list); code != http.StatusOK || len(list.Datasets) != 2 {
		t.Fatalf("list: %d datasets, code %d", len(list.Datasets), code)
	}
}

// TestIncrementalServeAndReplay is the end-to-end warm-start flow:
// create a dataset, run it, append, run the delta, and verify (a) the
// delta job computed only the new pairs with the base served from the
// store, and (b) the recorded arrival log replays bit-identically
// through the batch scheduler, per job and fleet-wide.
func TestIncrementalServeAndReplay(t *testing.T) {
	s, ts := newTestServer(t, Config{Nodes: 2, Seed: 1, TimeScale: 0})
	base := ts.URL

	if code := postJSON(t, base+"/v1/datasets",
		datasetCreateReq{ID: "corpus", App: "forensics", Items: 10, Seed: 7}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var rep struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, base+"/v1/datasets/corpus/jobs", datasetJobReq{}, &rep); code != http.StatusAccepted {
		t.Fatalf("base job: status %d", code)
	}
	baseID := rep.ID
	if info := waitTerminal(t, base, baseID); info.Status != sched.StatusDone {
		t.Fatalf("base job ended %v (%s)", info.Status, info.Error)
	}
	// No new items -> no job.
	if code := postJSON(t, base+"/v1/datasets/corpus/jobs", datasetJobReq{}, nil); code != http.StatusConflict {
		t.Fatalf("job over fully computed dataset: status %d", code)
	}
	if code := postJSON(t, base+"/v1/datasets/corpus/append", datasetAppendReq{Items: 2}, nil); code != http.StatusOK {
		t.Fatalf("append: status %d", code)
	}
	if code := postJSON(t, base+"/v1/datasets/corpus/jobs", datasetJobReq{}, &rep); code != http.StatusAccepted {
		t.Fatalf("delta job: status %d", code)
	}
	deltaID := rep.ID
	if info := waitTerminal(t, base, deltaID); info.Status != sched.StatusDone {
		t.Fatalf("delta job ended %v (%s)", info.Status, info.Error)
	}

	var deltaDoc sched.JobDoc
	if code := getJSON(t, base+"/v1/jobs/"+deltaID+"/result", &deltaDoc); code != http.StatusOK {
		t.Fatalf("delta result: status %d", code)
	}
	basePairs := uint64(10 * 9 / 2)
	if deltaDoc.Inner.StoreHits != basePairs {
		t.Fatalf("delta served %d pairs from the store, want %d", deltaDoc.Inner.StoreHits, basePairs)
	}
	if deltaDoc.Inner.Pairs != uint64(pairstore.DeltaPairs(12, 10)) {
		t.Fatalf("delta computed %d pairs", deltaDoc.Inner.Pairs)
	}
	if deltaDoc.Store != "corpus" || deltaDoc.BaseVersion != 10 || deltaDoc.DatasetVersion != 12 {
		t.Fatalf("delta provenance: %+v", deltaDoc)
	}

	// Store stats are exposed.
	var st pairstore.Stats
	if code := getJSON(t, base+"/v1/store", &st); code != http.StatusOK {
		t.Fatalf("store stats: status %d", code)
	}
	if st.ServedPairs != basePairs || st.Entries != int(pairstore.DeltaPairs(12, 0)) {
		t.Fatalf("store stats: %+v", st)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, gauge := range []string{
		"rocketd_store_served_pairs_total 45",
		"rocketd_store_levels ",
		"rocketd_store_bytes_per_pair ",
		"rocketd_store_index_resident_bytes ",
		"rocketd_store_seals_total ",
		"rocketd_store_compactions_total ",
	} {
		if !strings.Contains(buf.String(), gauge) {
			t.Fatalf("store gauge %q missing from /metrics:\n%s", gauge, buf.String())
		}
	}

	// Drain and replay the log offline: byte-identical docs.
	log := s.Log()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	served, err := s.Shutdown(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := log.Config()
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := sched.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	servedJSON, _ := served.JSON()
	replayJSON, _ := replayed.JSON()
	if !bytes.Equal(servedJSON, replayJSON) {
		t.Fatalf("incremental replay diverges:\nserved:\n%s\nreplayed:\n%s", servedJSON, replayJSON)
	}
}

// TestWarmRestartWithRestoredDatasets is the cross-session flow: a
// second server handed the first session's store and dataset registry
// serves the already-computed pairs instead of recomputing them.
func TestWarmRestartWithRestoredDatasets(t *testing.T) {
	// Session 1: cold — register, compute, drain.
	s1, ts1 := newTestServer(t, Config{Nodes: 2, Seed: 1, TimeScale: 0})
	if code := postJSON(t, ts1.URL+"/v1/datasets",
		datasetCreateReq{ID: "corpus", App: "forensics", Items: 10, Seed: 7}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var rep struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, ts1.URL+"/v1/datasets/corpus/jobs", datasetJobReq{}, &rep); code != http.StatusAccepted {
		t.Fatalf("base job: status %d", code)
	}
	if info := waitTerminal(t, ts1.URL, rep.ID); info.Status != sched.StatusDone {
		t.Fatalf("base job ended %v", info.Status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Session 2: warm-started from session 1's store AND registry.
	_, ts2 := newTestServer(t, Config{Nodes: 2, Seed: 1, TimeScale: 0,
		Store: s1.Store(), Datasets: s1.Datasets()})
	if code := postJSON(t, ts2.URL+"/v1/datasets/corpus/append", datasetAppendReq{Items: 2}, nil); code != http.StatusOK {
		t.Fatalf("append after restart: status %d", code)
	}
	if code := postJSON(t, ts2.URL+"/v1/datasets/corpus/jobs", datasetJobReq{}, &rep); code != http.StatusAccepted {
		t.Fatalf("delta job after restart: status %d", code)
	}
	if info := waitTerminal(t, ts2.URL, rep.ID); info.Status != sched.StatusDone {
		t.Fatalf("delta job ended %v", info.Status)
	}
	var doc sched.JobDoc
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+rep.ID+"/result", &doc); code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	if doc.Inner.StoreHits != 45 || doc.Inner.Pairs != uint64(pairstore.DeltaPairs(12, 10)) {
		t.Fatalf("restarted delta: hits %d pairs %d, want 45/%d",
			doc.Inner.StoreHits, doc.Inner.Pairs, pairstore.DeltaPairs(12, 10))
	}
}
