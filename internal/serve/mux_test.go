package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRoutesTableCoversEverything: the route table is the single source
// of truth; every documented surface must be in it exactly once.
func TestRoutesTableCoversEverything(t *testing.T) {
	want := []string{
		"POST /v1/jobs",
		"GET /v1/jobs",
		"GET /v1/jobs/{id}",
		"GET /v1/jobs/{id}/result",
		"GET /v1/jobs/{id}/events",
		"GET /v1/events",
		"GET /v1/log",
		"POST /v1/datasets",
		"GET /v1/datasets",
		"GET /v1/datasets/{id}",
		"POST /v1/datasets/{id}/append",
		"POST /v1/datasets/{id}/jobs",
		"GET /v1/store",
		"GET /v1/trace",
		"GET /v1/capabilities",
		"GET /metrics",
		"GET /healthz",
	}
	got := Routes()
	if len(got) != len(want) {
		t.Fatalf("route table has %d entries, want %d: %v", len(got), len(want), got)
	}
	seen := map[string]bool{}
	for i, p := range got {
		if seen[p] {
			t.Fatalf("duplicate route %q", p)
		}
		seen[p] = true
		if p != want[i] {
			t.Errorf("route[%d] = %q, want %q", i, p, want[i])
		}
	}
}

func TestCapabilitiesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 4, Seed: 1, Shards: 4, TimeScale: 0})
	resp, err := http.Get(ts.URL + "/v1/capabilities")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc struct {
		API    string `json:"api"`
		Media  string `json:"media"`
		Shards int    `json:"shards"`
		Nodes  int    `json:"nodes"`
		Policy string `json:"policy"`
		Store  struct {
			Entries  int   `json:"entries"`
			Segments int   `json:"segments"`
			LogBytes int64 `json:"log_bytes"`
			Datasets int   `json:"datasets"`
		} `json:"store"`
		Routes []string `json:"routes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.API != "v1" || doc.Media != MediaV1 {
		t.Fatalf("api=%q media=%q", doc.API, doc.Media)
	}
	if doc.Shards != 4 || doc.Nodes != 4 {
		t.Fatalf("shards=%d nodes=%d, want 4/4", doc.Shards, doc.Nodes)
	}
	if len(doc.Routes) != len(Routes()) {
		t.Fatalf("capabilities advertises %d routes, table has %d", len(doc.Routes), len(Routes()))
	}
	if doc.Store.Entries != 0 || doc.Store.Datasets != 0 {
		t.Fatalf("fresh server store state: %+v", doc.Store)
	}
}

// TestCapabilitiesDefaultsShardsToOne: a zero Config.Shards (every PR
// 4/5 caller) must advertise width 1, not 0.
func TestCapabilitiesDefaultsShardsToOne(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 2, Seed: 1, TimeScale: 0})
	var doc struct {
		Shards int `json:"shards"`
	}
	if code := getJSON(t, ts.URL+"/v1/capabilities", &doc); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if doc.Shards != 1 {
		t.Fatalf("shards = %d, want 1", doc.Shards)
	}
}

// TestErrorEnvelopeNegotiation: the legacy {"error":"message"} string
// shape stays the default (PR 4/5 clients), and the structured
// {"error":{"code","message"}} envelope is opt-in via Accept.
func TestErrorEnvelopeNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 2, Seed: 1, TimeScale: 0})

	// Legacy client: no Accept header -> string error.
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var legacy struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &legacy); err != nil || legacy.Error == "" {
		t.Fatalf("legacy envelope not a string error: %s (%v)", body, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("legacy Content-Type = %q", ct)
	}

	// v1 client: Accept the vendor type -> structured envelope.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/nope", nil)
	req.Header.Set("Accept", MediaV1)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var structured struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &structured); err != nil {
		t.Fatalf("structured envelope: %s (%v)", body, err)
	}
	if structured.Error.Code != "not_found" || !strings.Contains(structured.Error.Message, "nope") {
		t.Fatalf("structured envelope: %+v", structured.Error)
	}
	if ct := resp.Header.Get("Content-Type"); ct != MediaV1 {
		t.Fatalf("structured Content-Type = %q", ct)
	}
}

// TestErrorCodesByStatus covers the code mapping across endpoints: a
// bad submission (400), a duplicate dataset (409), and a submission
// while draining (503).
func TestErrorCodesByStatus(t *testing.T) {
	s, ts := newTestServer(t, Config{Nodes: 2, Seed: 1, TimeScale: 0})

	structuredErr := func(method, url, body string) (int, string) {
		t.Helper()
		req, _ := http.NewRequest(method, ts.URL+url, strings.NewReader(body))
		req.Header.Set("Accept", MediaV1)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&doc)
		return resp.StatusCode, doc.Error.Code
	}

	if st, code := structuredErr("POST", "/v1/jobs", `{"bogus":1}`); st != 400 || code != "bad_request" {
		t.Fatalf("bad spec: %d %q", st, code)
	}
	if st, code := structuredErr("POST", "/v1/datasets", `{"id":"d","app":"forensics","items":8}`); st != 201 || code != "" {
		t.Fatalf("create: %d %q", st, code)
	}
	if st, code := structuredErr("POST", "/v1/datasets", `{"id":"d","app":"forensics","items":8}`); st != 409 || code != "conflict" {
		t.Fatalf("duplicate dataset: %d %q", st, code)
	}

	go s.Shutdown(context.Background())
	for !s.Queue().Draining() {
		time.Sleep(50 * time.Microsecond)
	}
	if st, code := structuredErr("POST", "/v1/jobs", `{"app":"forensics","items":8}`); st != 503 || code != "unavailable" {
		t.Fatalf("draining submit: %d %q", st, code)
	}
}
