// Package jobspec is the shared wire schema for describing all-pairs jobs
// and fleet manifests outside the process: the rocketqueue CLI's job
// manifest, rocketd's HTTP job submissions, and the arrival logs rocketd
// records for offline replay are all this one format, so a log served
// online is literally a manifest the batch scheduler can re-run.
package jobspec

import (
	"encoding/json"
	"fmt"
	"sort"

	"rocket/internal/apps/forensics"
	"rocket/internal/apps/microscopy"
	"rocket/internal/apps/phylo"
	"rocket/internal/core"
	"rocket/internal/fault"
	"rocket/internal/pairstore"
	"rocket/internal/sched"
	"rocket/internal/sim"
)

// Fault is one scheduled fault event of a job's first attempt. Node and
// GPU indices are relative to the job's leased partition.
type Fault struct {
	// Kind is "crash", "restart", "gpu-slow", "link-down", "link-up", or
	// "link-degrade".
	Kind string `json:"kind"`
	// AtMS is the event time in virtual milliseconds from job start.
	AtMS float64 `json:"at_ms"`
	// Node targets crash/restart/gpu-slow.
	Node int `json:"node,omitempty"`
	// GPU is the device index within Node (gpu-slow).
	GPU int `json:"gpu,omitempty"`
	// Factor is the gpu-slow multiplier (>= 1; 1 restores).
	Factor float64 `json:"factor,omitempty"`
	// A and B are the link endpoints (link-down/up/degrade).
	A int `json:"a,omitempty"`
	B int `json:"b,omitempty"`
	// LatencyFactor and BandwidthFactor are link-degrade multipliers.
	LatencyFactor   float64 `json:"latency_factor,omitempty"`
	BandwidthFactor float64 `json:"bandwidth_factor,omitempty"`
}

// apply appends the event to a fault schedule.
func (f Fault) apply(s *fault.Schedule) error {
	at := sim.Millis(f.AtMS)
	switch f.Kind {
	case "crash":
		s.Crash(f.Node, at)
	case "restart":
		s.Restart(f.Node, at)
	case "gpu-slow":
		s.SlowGPU(f.Node, f.GPU, at, f.Factor)
	case "link-down":
		s.CutLink(f.A, f.B, at)
	case "link-up":
		s.RestoreLink(f.A, f.B, at)
	case "link-degrade":
		s.DegradeLink(f.A, f.B, at, f.LatencyFactor, f.BandwidthFactor)
	default:
		return fmt.Errorf("unknown fault kind %q", f.Kind)
	}
	return nil
}

// FaultsFromSchedule converts a compiled fault schedule back to the wire
// format, preserving order. It is the inverse of Spec.Faults' apply path
// (round-trip exact: AtMS = At / 1ms and sim.Millis undoes it), letting a
// scenario file's compiled chaos or event section ride along on a job
// submission — rocketload -scenario uses it so HTTP load tests and the
// scenario harness share one fault vocabulary.
func FaultsFromSchedule(s *fault.Schedule) []Fault {
	if s.Empty() {
		return nil
	}
	out := make([]Fault, 0, len(s.Events))
	for _, ev := range s.Events {
		f := Fault{Kind: ev.Kind.String(), AtMS: float64(ev.At) / 1e6}
		switch ev.Kind {
		case fault.NodeCrash, fault.NodeRestart:
			f.Node = ev.Node
		case fault.GPUSlowdown:
			f.Node, f.GPU, f.Factor = ev.Node, ev.GPU, ev.Factor
		case fault.LinkDown, fault.LinkUp:
			f.A, f.B = ev.A, ev.B
		case fault.LinkDegrade:
			f.A, f.B = ev.A, ev.B
			f.LatencyFactor, f.BandwidthFactor = ev.LatencyFactor, ev.BandwidthFactor
		}
		out = append(out, f)
	}
	return out
}

// Spec describes one job. App seeds and job seeds are derived from the
// manifest seed and submission index when left zero, exactly as the
// scheduler does, so a spec round-trips through a served arrival log.
type Spec struct {
	ID     string `json:"id,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// App is "forensics", "microscopy", or "bioinformatics"/"phylo".
	App string `json:"app"`
	// Items is the data-set size n (>= 2).
	Items int `json:"items"`
	// Nodes is the requested partition width; 0 = one node.
	Nodes int `json:"nodes,omitempty"`
	// ArrivalNS is the exact virtual arrival in nanoseconds; it wins over
	// ArrivalMS. Arrival logs use it so replays are bit-exact.
	ArrivalNS int64 `json:"arrival_ns,omitempty"`
	// ArrivalMS is the human-friendly arrival in milliseconds.
	ArrivalMS float64 `json:"arrival_ms,omitempty"`
	// Seed seeds both the app's data and the job; 0 derives both.
	Seed uint64 `json:"seed,omitempty"`
	// Faults optionally injects a deterministic fault schedule into the
	// job's first attempt.
	Faults []Fault `json:"faults,omitempty"`

	// Store, when non-empty, makes the job participate in the fleet's
	// shared pair store under this dataset namespace: results it
	// computes are merged back, and pairs already resident are served
	// instead of recomputed (see BaseVersion). Dataset versions are item
	// counts — an append-only dataset's length is its version.
	Store string `json:"store,omitempty"`
	// DatasetVersion is the dataset version (item count) this job
	// computes; provenance recorded in the job's metrics. Normally
	// equals Items.
	DatasetVersion int `json:"dataset_version,omitempty"`
	// BaseVersion is the dataset version already covered by the store:
	// the delta planner serves all pairs among the first BaseVersion
	// items from the store and computes only the new-vs-all set.
	// Requires Store. 0 means a full (cold) computation.
	BaseVersion int `json:"base_version,omitempty"`
}

// Apps lists the known application names.
func Apps() []string { return []string{"forensics", "microscopy", "bioinformatics"} }

// BuildApp constructs the spec's application with the given seed.
func (s Spec) BuildApp(seed uint64) (core.Application, error) {
	if s.Items < 2 {
		return nil, fmt.Errorf("job %q: items must be >= 2, got %d", s.ID, s.Items)
	}
	switch s.App {
	case "forensics":
		return forensics.New(forensics.Params{N: s.Items, Seed: seed}), nil
	case "microscopy":
		return microscopy.New(microscopy.Params{N: s.Items, Seed: seed}), nil
	case "bioinformatics", "phylo":
		return phylo.New(phylo.Params{N: s.Items, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("job %q: unknown app %q (known: forensics, microscopy, bioinformatics)", s.ID, s.App)
	}
}

// Arrival returns the spec's virtual arrival time.
func (s Spec) Arrival() sim.Time {
	if s.ArrivalNS != 0 {
		return sim.Time(s.ArrivalNS)
	}
	return sim.Millis(s.ArrivalMS)
}

// Job builds the scheduler job. index is the spec's position in its
// manifest (or submission order), manifestSeed the fleet seed; both only
// matter when the spec leaves Seed zero.
func (s Spec) Job(index int, manifestSeed uint64) (sched.Job, error) {
	appSeed := s.Seed
	if appSeed == 0 {
		appSeed = manifestSeed + uint64(index)
	}
	app, err := s.BuildApp(appSeed)
	if err != nil {
		return sched.Job{}, err
	}
	j := sched.Job{
		ID:      s.ID,
		Tenant:  s.Tenant,
		App:     app,
		Nodes:   s.Nodes,
		Arrival: s.Arrival(),
		Seed:    s.Seed,
	}
	if s.BaseVersion < 0 {
		return sched.Job{}, fmt.Errorf("job %q: negative base_version %d", s.ID, s.BaseVersion)
	}
	if s.BaseVersion > s.Items {
		return sched.Job{}, fmt.Errorf("job %q: base_version %d exceeds items %d", s.ID, s.BaseVersion, s.Items)
	}
	if s.BaseVersion > 0 && s.Store == "" {
		return sched.Job{}, fmt.Errorf("job %q: base_version requires a store", s.ID)
	}
	if s.Store != "" {
		j.StoreRef = s.Store
		j.BaseItems = s.BaseVersion
		j.DatasetVersion = s.DatasetVersion
		if j.DatasetVersion == 0 {
			j.DatasetVersion = s.Items
		}
		// Digests address the dataset's content: the lineage is (store
		// namespace, canonical app name, app seed), so two jobs over the
		// same (possibly grown) dataset share keys while different
		// datasets never collide. The app seed — not the sched-derived
		// run seed — is what identifies the data.
		j.Digest = pairstore.DigestFunc(s.Store, app.Name(), appSeed)
	}
	if len(s.Faults) > 0 {
		sch := new(fault.Schedule)
		for _, f := range s.Faults {
			if err := f.apply(sch); err != nil {
				return sched.Job{}, fmt.Errorf("job %q: %w", s.ID, err)
			}
		}
		j.Faults = sch
	}
	return j, nil
}

// Manifest is a fleet description: the shared cluster, the policy, and
// the jobs. It doubles as rocketd's replayable arrival-log format
// (KeepGoing is set there so a failed served job replays as a recorded
// failure instead of aborting the batch run).
type Manifest struct {
	Nodes      int    `json:"nodes"`
	Policy     string `json:"policy,omitempty"`
	MaxQueued  int    `json:"max_queued,omitempty"`
	MaxRunning int    `json:"max_running,omitempty"`
	MaxRetries int    `json:"max_retries,omitempty"`
	KeepGoing  bool   `json:"keep_going,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	Jobs       []Spec `json:"jobs"`
}

// Parse decodes a manifest from JSON.
func Parse(raw []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// JSON encodes the manifest, indented, with a trailing newline.
func (m Manifest) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// ArrivalsOrdered reports whether the jobs are in non-decreasing
// arrival order. Logs recorded by a rocketd server always are (the
// online scheduler assigns monotone arrivals in submission order);
// hand-edited or merged logs may not be.
func (m Manifest) ArrivalsOrdered() bool {
	for i := 1; i < len(m.Jobs); i++ {
		if m.Jobs[i].Arrival() < m.Jobs[i-1].Arrival() {
			return false
		}
	}
	return true
}

// Normalize stable-sorts the jobs by arrival time (ties keep file
// order) and reports whether anything moved. This matters for replay
// fidelity: submission indices drive derived IDs and seeds, and the
// batch scheduler admits in arrival order — so an out-of-order log
// would silently derive different jobs than its sorted equivalent.
// After Normalize, any permutation of the same entries replays
// identically. rocketqueue -replay normalizes (with a warning) instead
// of silently producing a divergent replay.
func (m *Manifest) Normalize() bool {
	if m.ArrivalsOrdered() {
		return false
	}
	sort.SliceStable(m.Jobs, func(i, j int) bool {
		return m.Jobs[i].Arrival() < m.Jobs[j].Arrival()
	})
	return true
}

// Config builds the batch scheduler configuration: apps are constructed
// and every job is materialized in manifest order.
func (m Manifest) Config() (sched.Config, error) {
	pol := sched.PolicyFIFO
	if m.Policy != "" {
		var err error
		pol, err = sched.ParsePolicy(m.Policy)
		if err != nil {
			return sched.Config{}, err
		}
	}
	jobs := make([]sched.Job, len(m.Jobs))
	for i, s := range m.Jobs {
		j, err := s.Job(i, m.Seed)
		if err != nil {
			return sched.Config{}, err
		}
		jobs[i] = j
	}
	return sched.Config{
		Jobs:       jobs,
		Nodes:      m.Nodes,
		Policy:     pol,
		MaxQueued:  m.MaxQueued,
		MaxRunning: m.MaxRunning,
		MaxRetries: m.MaxRetries,
		KeepGoing:  m.KeepGoing,
		Seed:       m.Seed,
	}, nil
}
