package jobspec

import (
	"reflect"
	"testing"

	"rocket/internal/fault"
	"rocket/internal/sched"
	"rocket/internal/sim"
)

func TestManifestRoundTrip(t *testing.T) {
	m := Manifest{
		Nodes:     4,
		Policy:    "fair",
		Seed:      9,
		KeepGoing: true,
		Jobs: []Spec{
			{ID: "a", Tenant: "t1", App: "forensics", Items: 8, Nodes: 2, ArrivalNS: 1500},
			{ID: "b", App: "microscopy", Items: 6, ArrivalMS: 2.5},
		},
	}
	buf, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != 2 || back.Policy != "fair" || !back.KeepGoing {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Jobs[0].Arrival() != 1500 {
		t.Fatalf("arrival_ns = %v, want 1500ns", back.Jobs[0].Arrival())
	}
	if back.Jobs[1].Arrival() != sim.Millis(2.5) {
		t.Fatalf("arrival_ms = %v, want 2.5ms", back.Jobs[1].Arrival())
	}
}

func TestManifestConfigBuildsJobs(t *testing.T) {
	m := Manifest{
		Nodes:  4,
		Policy: "sjf",
		Seed:   3,
		Jobs: []Spec{
			{App: "forensics", Items: 8},
			{App: "bioinformatics", Items: 6, Seed: 42},
		},
	}
	cfg, err := m.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Policy != sched.PolicySJF || cfg.Nodes != 4 || len(cfg.Jobs) != 2 {
		t.Fatalf("config: %+v", cfg)
	}
	if cfg.Jobs[0].App.Name() != "forensics" || cfg.Jobs[0].App.NumItems() != 8 {
		t.Fatalf("job 0 app: %s/%d", cfg.Jobs[0].App.Name(), cfg.Jobs[0].App.NumItems())
	}
	if cfg.Jobs[1].Seed != 42 {
		t.Fatalf("job 1 seed: %d", cfg.Jobs[1].Seed)
	}
	// The built config actually runs.
	if _, err := sched.Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestManifestConfigErrors(t *testing.T) {
	cases := []Manifest{
		{Nodes: 2, Jobs: []Spec{{App: "astrology", Items: 8}}},
		{Nodes: 2, Jobs: []Spec{{App: "forensics", Items: 1}}},
		{Nodes: 2, Policy: "lifo", Jobs: []Spec{{App: "forensics", Items: 8}}},
		{Nodes: 2, Jobs: []Spec{{App: "forensics", Items: 8, Faults: []Fault{{Kind: "meteor"}}}}},
	}
	for i, m := range cases {
		if _, err := m.Config(); err == nil {
			t.Errorf("case %d: invalid manifest accepted", i)
		}
	}
}

func TestFaultSpecsBuildSchedule(t *testing.T) {
	s := Spec{App: "forensics", Items: 8, Faults: []Fault{
		{Kind: "crash", Node: 1, AtMS: 5},
		{Kind: "restart", Node: 1, AtMS: 10},
		{Kind: "gpu-slow", Node: 0, GPU: 0, AtMS: 2, Factor: 4},
		{Kind: "link-down", A: 0, B: 1, AtMS: 3},
		{Kind: "link-up", A: 0, B: 1, AtMS: 6},
		{Kind: "link-degrade", A: 0, B: 1, AtMS: 7, LatencyFactor: 2, BandwidthFactor: 2},
	}}
	j, err := s.Job(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if j.Faults.Empty() || len(j.Faults.Events) != 6 {
		t.Fatalf("faults: %+v", j.Faults)
	}
	kinds := []fault.EventKind{fault.NodeCrash, fault.NodeRestart, fault.GPUSlowdown,
		fault.LinkDown, fault.LinkUp, fault.LinkDegrade}
	for i, ev := range j.Faults.Events {
		if ev.Kind != kinds[i] {
			t.Fatalf("event %d kind %v, want %v", i, ev.Kind, kinds[i])
		}
	}

	// FaultsFromSchedule is the exact inverse of the apply path: the wire
	// records round-trip through a compiled schedule unchanged.
	back := FaultsFromSchedule(j.Faults)
	if !reflect.DeepEqual(back, s.Faults) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", back, s.Faults)
	}
	if FaultsFromSchedule(nil) != nil || FaultsFromSchedule(new(fault.Schedule)) != nil {
		t.Fatal("empty schedule must convert to nil")
	}
}
