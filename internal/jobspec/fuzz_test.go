package jobspec

import (
	"bytes"
	"testing"
)

// FuzzManifestRoundTrip asserts the manifest codec is stable: any
// input that parses must serialize to a canonical form that re-parses
// to the same bytes (parse → serialize → parse → serialize is a fixed
// point after one round). A violation means served arrival logs could
// drift through a save/load cycle, breaking the replay-fidelity
// argument.
func FuzzManifestRoundTrip(f *testing.F) {
	f.Add([]byte(`{"nodes":8,"policy":"fair","seed":1,"jobs":[` +
		`{"id":"a","tenant":"t","app":"forensics","items":16,"nodes":2,"arrival_ms":1.5},` +
		`{"id":"b","app":"microscopy","items":8,"arrival_ns":2500000}]}`))
	f.Add([]byte(`{"nodes":4,"jobs":[{"app":"bioinformatics","items":6,` +
		`"store":"corpus","dataset_version":6,"base_version":4,` +
		`"faults":[{"kind":"crash","at_ms":5,"node":1}]}]}`))
	f.Add([]byte(`{"jobs":[]}`))
	f.Add([]byte(`{"nodes":-3,"max_queued":7,"keep_going":true,"jobs":null}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := Parse(raw)
		if err != nil {
			t.Skip() // not a manifest; nothing to assert
		}
		first, err := m.JSON()
		if err != nil {
			t.Fatalf("serialize parsed manifest: %v", err)
		}
		back, err := Parse(first)
		if err != nil {
			t.Fatalf("re-parse serialized manifest: %v\n%s", err, first)
		}
		second, err := back.JSON()
		if err != nil {
			t.Fatalf("re-serialize manifest: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip unstable:\n%s\nvs\n%s", first, second)
		}
		// Normalization must be idempotent and preserve the job set.
		back.Normalize()
		if back.Normalize() {
			t.Fatal("Normalize is not idempotent")
		}
		if len(back.Jobs) != len(m.Jobs) {
			t.Fatalf("Normalize changed the job count: %d vs %d", len(back.Jobs), len(m.Jobs))
		}
	})
}
