package jobspec

import (
	"bytes"
	"testing"

	"rocket/internal/pairstore"
	"rocket/internal/sched"
)

func TestSpecStoreFieldsRoundTrip(t *testing.T) {
	m := Manifest{
		Nodes: 2,
		Seed:  1,
		Jobs: []Spec{
			{ID: "base", App: "forensics", Items: 10, Seed: 7,
				Store: "corpus", DatasetVersion: 10},
			{ID: "delta", App: "forensics", Items: 12, Seed: 7, ArrivalMS: 500,
				Store: "corpus", DatasetVersion: 12, BaseVersion: 10},
		},
	}
	buf, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	d := back.Jobs[1]
	if d.Store != "corpus" || d.DatasetVersion != 12 || d.BaseVersion != 10 {
		t.Fatalf("store fields lost: %+v", d)
	}
}

func TestSpecStoreValidation(t *testing.T) {
	cases := []Spec{
		{App: "forensics", Items: 8, BaseVersion: 4},              // base without store
		{App: "forensics", Items: 8, Store: "s", BaseVersion: -1}, // negative
		{App: "forensics", Items: 8, Store: "s", BaseVersion: 9},  // beyond items
	}
	for i, s := range cases {
		if _, err := s.Job(0, 1); err == nil {
			t.Errorf("case %d: invalid store spec accepted", i)
		}
	}
}

func TestSpecJobCarriesStoreWiring(t *testing.T) {
	s := Spec{App: "forensics", Items: 12, Seed: 7, Store: "corpus", BaseVersion: 10}
	j, err := s.Job(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if j.StoreRef != "corpus" || j.BaseItems != 10 || j.DatasetVersion != 12 {
		t.Fatalf("job wiring: %+v", j)
	}
	if j.Digest == nil {
		t.Fatal("no digest function attached")
	}
	// The digest is the canonical dataset lineage: same key regardless
	// of submission index, since the seed is explicit.
	j2, err := s.Job(5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if j.Digest(3) != j2.Digest(3) {
		t.Fatal("digest depends on submission index despite an explicit seed")
	}
	if j.Digest(3) != pairstore.DigestItem("corpus", "forensics", 7, 3) {
		t.Fatal("digest does not match the canonical lineage")
	}
}

func TestManifestIncrementalFleetServesBasePairs(t *testing.T) {
	m := Manifest{
		Nodes: 2,
		Seed:  1,
		Jobs: []Spec{
			{ID: "base", App: "forensics", Items: 10, Seed: 7,
				Store: "corpus", DatasetVersion: 10},
			{ID: "delta", App: "forensics", Items: 12, Seed: 7, ArrivalMS: 1e6,
				Store: "corpus", DatasetVersion: 12, BaseVersion: 10},
		},
	}
	cfg, err := m.Config()
	if err != nil {
		t.Fatal(err)
	}
	fm, err := sched.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	basePairs := uint64(10 * 9 / 2)
	if fm.Jobs[1].Inner.StoreHits != basePairs {
		t.Fatalf("delta hit %d pairs, want %d", fm.Jobs[1].Inner.StoreHits, basePairs)
	}
	if fm.Jobs[1].Inner.Pairs != uint64(pairstore.DeltaPairs(12, 10)) {
		t.Fatalf("delta computed %d pairs", fm.Jobs[1].Inner.Pairs)
	}
}

func TestNormalizeSortsOutOfOrderArrivals(t *testing.T) {
	m := Manifest{Jobs: []Spec{
		{ID: "c", App: "forensics", Items: 8, ArrivalNS: 300},
		{ID: "a", App: "forensics", Items: 8, ArrivalNS: 100},
		{ID: "b1", App: "forensics", Items: 8, ArrivalNS: 200},
		{ID: "b2", App: "microscopy", Items: 8, ArrivalNS: 200},
	}}
	if m.ArrivalsOrdered() {
		t.Fatal("out-of-order manifest reported ordered")
	}
	if !m.Normalize() {
		t.Fatal("Normalize reported no change")
	}
	order := []string{"a", "b1", "b2", "c"}
	for i, want := range order {
		if m.Jobs[i].ID != want {
			t.Fatalf("position %d = %s, want %s (stable ties)", i, m.Jobs[i].ID, want)
		}
	}
	if m.Normalize() {
		t.Fatal("Normalize of an ordered manifest reported a change")
	}
}

// TestNormalizedReplayIsOrderInvariant is the regression test for the
// divergent-replay bug: feeding the same arrival log with its entries
// permuted used to derive different job identities (index-derived IDs
// and seeds) and therefore different fleet metrics. After Normalize,
// any permutation replays byte-identically.
func TestNormalizedReplayIsOrderInvariant(t *testing.T) {
	mk := func(order []int) Manifest {
		// Specs with derived IDs and seeds — the sensitive case.
		all := []Spec{
			{App: "forensics", Items: 8, ArrivalNS: 100},
			{App: "microscopy", Items: 6, ArrivalNS: 200},
			{App: "bioinformatics", Items: 7, ArrivalNS: 300},
		}
		m := Manifest{Nodes: 2, Seed: 5}
		for _, i := range order {
			m.Jobs = append(m.Jobs, all[i])
		}
		return m
	}
	replay := func(m Manifest) []byte {
		m.Normalize()
		cfg, err := m.Config()
		if err != nil {
			t.Fatal(err)
		}
		fm, err := sched.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := fm.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	sorted := replay(mk([]int{0, 1, 2}))
	shuffled := replay(mk([]int{2, 0, 1}))
	if !bytes.Equal(sorted, shuffled) {
		t.Fatalf("permuted log replays differently:\n%s\nvs\n%s", sorted, shuffled)
	}
}
