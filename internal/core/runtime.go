package core

import (
	"fmt"

	"rocket/internal/cache"
	"rocket/internal/cluster"
	"rocket/internal/dht"
	"rocket/internal/gpu"
	"rocket/internal/pairs"
	"rocket/internal/sim"
	"rocket/internal/stats"
	"rocket/internal/steal"
	"rocket/internal/trace"
)

// runtime is the cluster-wide execution state of one run.
type runtime struct {
	cfg    Config
	env    *sim.Env
	cl     *cluster.Cluster
	app    Application
	comp   Computer // nil for cost-model-only runs
	tracer *trace.Tracer

	nodes      []*nodeRT
	totalPairs int64
	pairsDone  int64
	loads      uint64
	done       *sim.Signal
	err        error

	localSteals  uint64
	remoteSteals uint64
	failedSteals uint64

	results    []Result
	throughput map[string]*stats.TimeSeries
}

// nodeRT is the per-node runtime state.
type nodeRT struct {
	rt   *runtime
	node *cluster.Node
	// host is the level-2 cache; nil when disabled.
	host *cache.Cache
	devs []*devRT
	// group holds the work-stealing deques, one per worker (= per GPU).
	group *steal.Group
	// dht is the level-3 engine; nil when the distributed cache is off.
	dht           *dht.Engine
	pendingSteals map[uint64]*sim.Signal
	stealSeq      uint64
	victimRNG     *stats.RNG
}

// devRT pairs a device with its level-1 cache and its concurrent-job
// limit (back-pressure, §4.2).
type devRT struct {
	dev       *gpu.Device
	cache     *cache.Cache
	jobTokens *sim.Resource
}

// Steal-protocol messages exchanged between nodes.
type (
	stealRequest struct {
		ID    uint64
		Thief int
		// Resident samples the thief's host-cache working set
		// (cache-aware stealing only, nil otherwise).
		Resident []int
	}
	stealReply struct {
		ID     uint64
		Region pairs.Region
		OK     bool
	}
)

// Run executes the all-pairs application on the cluster and returns the
// collected metrics. The cluster must be freshly built (its accounting is
// cumulative).
func Run(cfg Config) (*Metrics, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	rt := &runtime{
		cfg:        cfg,
		env:        sim.NewEnv(),
		cl:         cfg.Cluster,
		app:        cfg.App,
		tracer:     trace.New(cfg.DetailedTrace),
		totalPairs: pairs.TotalPairs(cfg.App.NumItems()),
		done:       sim.NewSignal(),
	}
	if cfg.PairFilter != nil {
		rt.totalPairs = 0
		pairs.Root(cfg.App.NumItems()).Each(func(i, j int) {
			if cfg.PairFilter(i, j) {
				rt.totalPairs++
			}
		})
	}
	if comp, ok := cfg.App.(Computer); ok {
		rt.comp = comp
	}
	if cfg.ThroughputWindow > 0 {
		rt.throughput = make(map[string]*stats.TimeSeries)
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x524f434b4554) // "ROCKET"
	for _, node := range rt.cl.Nodes {
		n, err := rt.newNodeRT(node, rng)
		if err != nil {
			return nil, err
		}
		rt.nodes = append(rt.nodes, n)
	}

	if err := rt.prewarm(); err != nil {
		return nil, err
	}

	// The master node spawns the single root task (paper §4.2); everyone
	// else starts by stealing.
	rt.nodes[0].group.Deque(0).PushBottom(pairs.Root(cfg.App.NumItems()))

	if len(rt.nodes) > 1 {
		for _, n := range rt.nodes {
			n := n
			rt.env.Spawn(n.node.Name()+"/server", func(p *sim.Proc) { n.serverLoop(p) })
		}
	}
	for _, n := range rt.nodes {
		for w := range n.devs {
			n, w := n, w
			rt.env.Spawn(n.devs[w].dev.ID+"/worker", func(p *sim.Proc) { n.workerLoop(p, w) })
		}
	}

	rt.env.Run()
	m := rt.aggregate()
	rt.env.Close()
	if rt.err != nil {
		return m, rt.err
	}
	if !rt.done.Fired() || rt.pairsDone != rt.totalPairs {
		return m, fmt.Errorf("core: runtime stalled after %d/%d pairs at t=%v",
			rt.pairsDone, rt.totalPairs, m.Runtime)
	}
	return m, nil
}

func (rt *runtime) newNodeRT(node *cluster.Node, rng *stats.RNG) (*nodeRT, error) {
	n := &nodeRT{
		rt:            rt,
		node:          node,
		group:         steal.NewGroup(len(node.GPUs)),
		pendingSteals: make(map[uint64]*sim.Signal),
		victimRNG:     rng.Fork(),
	}
	policy := cache.PolicyLRU
	if rt.cfg.EvictRandom {
		policy = cache.PolicyRandom
	}
	newCache := func(name string, slots int) *cache.Cache {
		return cache.NewWithPolicy(name, slots, rt.cfg.App.ItemSize(), policy, rng.Fork())
	}
	hostSlots := rt.cfg.hostSlotsFor(node.Spec.HostCacheBytes)
	if hostSlots > 0 {
		n.host = newCache(node.Name()+"/host", hostSlots)
	}
	for _, dev := range node.GPUs {
		slots := rt.cfg.deviceSlotsFor(dev.MemBytes)
		n.devs = append(n.devs, &devRT{
			dev:       dev,
			cache:     newCache(dev.ID+"/cache", slots),
			jobTokens: sim.NewResource(dev.ID+"/jobs", rt.cfg.jobLimitFor(slots, hostSlots, len(node.GPUs))),
		})
	}

	if rt.cfg.DistCache && n.host != nil {
		eng, err := dht.New(dht.Config{
			NodeID:   node.ID,
			NumNodes: len(rt.cl.Nodes),
			Hops:     rt.cfg.Hops,
			CtrlSize: rt.cfg.ctrlMsgSize,
			DataSize: rt.cfg.App.ItemSize(),
			Send: func(p *sim.Proc, to int, size int64, payload interface{}) {
				rt.cl.Net.SendAsync(p, node, rt.cl.Nodes[to], size, payload)
			},
			Lookup: func(item int) (interface{}, bool) {
				if n.host.Contains(item) {
					// Peek without pinning: the payload pointer stays
					// valid because payloads are immutable Go values.
					return n.hostPeek(item), true
				}
				return nil, false
			},
		})
		if err != nil {
			return nil, err
		}
		n.dht = eng
	}
	return n, nil
}

// hostPeek returns the payload of a resident host-cache item. It is only
// called after Contains reported true within the same event.
func (n *nodeRT) hostPeek(item int) interface{} {
	return n.host.Peek(item)
}

// prewarm pre-fills host caches per Config.PrewarmHost: item i belongs to
// node i mod p, and each node warms the configured fraction of its items
// (the ones a previous run would most plausibly have left behind). For
// real-kernel applications the payloads are materialized eagerly, since a
// previous run would have produced them.
func (rt *runtime) prewarm() error {
	frac := rt.cfg.PrewarmHost
	if frac == 0 {
		return nil
	}
	p := len(rt.nodes)
	n := rt.cfg.App.NumItems()
	for item := 0; item < n; item++ {
		node := rt.nodes[item%p]
		if node.host == nil {
			continue
		}
		// The k-th item of a node is warmed iff k < frac * itemsOfNode.
		k := item / p
		itemsOfNode := (n - item%p + p - 1) / p
		if float64(k) >= frac*float64(itemsOfNode) {
			continue
		}
		var data interface{}
		if rt.comp != nil {
			v, err := rt.comp.LoadItem(item)
			if err != nil {
				return fmt.Errorf("core: prewarm item %d: %w", item, err)
			}
			data = v
		}
		node.host.Warm(item, data)
	}
	return nil
}

// serverLoop demultiplexes a node's inbox: distributed-cache protocol
// messages and steal requests/replies.
func (n *nodeRT) serverLoop(p *sim.Proc) {
	for {
		raw := p.Recv(n.node.Inbox)
		msg := raw.(cluster.Message)
		if n.dht != nil && n.dht.Handle(p, msg.Payload) {
			continue
		}
		switch m := msg.Payload.(type) {
		case stealRequest:
			var region pairs.Region
			var ok bool
			if m.Resident != nil {
				region, ok = n.group.StealBestOverlap(m.Resident)
			} else {
				region, ok = n.group.StealLocal(-1)
			}
			reply := stealReply{ID: m.ID, Region: region, OK: ok}
			n.rt.cl.Net.SendAsync(p, n.node, n.rt.cl.Nodes[m.Thief], n.rt.cfg.ctrlMsgSize, reply)
		case stealReply:
			sig, ok := n.pendingSteals[m.ID]
			if !ok {
				panic(fmt.Sprintf("core: %s received unexpected steal reply %d", n.node.Name(), m.ID))
			}
			delete(n.pendingSteals, m.ID)
			sig.Value = m
			sig.Fire(p.Env())
		default:
			panic(fmt.Sprintf("core: %s received unknown message %T", n.node.Name(), m))
		}
	}
}

// workerLoop is the per-GPU Constellation-style worker: pop local work,
// steal hierarchically when idle, split non-leaf regions, and submit leaf
// jobs subject to the concurrent-job limit.
func (n *nodeRT) workerLoop(p *sim.Proc, w int) {
	rt := n.rt
	if rt.totalPairs == 0 {
		rt.done.Fire(p.Env())
		return
	}
	deque := n.group.Deque(w)
	// Failed steals back off exponentially (capped) so fully idle workers
	// do not flood the cluster with steal requests while long comparisons
	// drain elsewhere; any success resets the backoff.
	backoff := rt.cfg.StealBackoff
	maxBackoff := 256 * rt.cfg.StealBackoff
	for !rt.done.Fired() && rt.err == nil {
		region, ok := deque.PopBottom()
		if !ok {
			region, ok = n.stealWork(p, w)
		}
		if !ok {
			p.Wait(backoff)
			if backoff < maxBackoff {
				backoff *= 2
			}
			continue
		}
		backoff = rt.cfg.StealBackoff
		if region.Count() <= rt.cfg.LeafPairs {
			n.submitLeaf(p, w, region)
			continue
		}
		kids := region.Split()
		// Push in reverse so the first quadrant is popped first,
		// preserving depth-first traversal order.
		for k := len(kids) - 1; k >= 0; k-- {
			deque.PushBottom(kids[k])
		}
	}
}

// stealWork implements victim selection: same-node workers first, then a
// random remote node (StealHierarchical), or a uniformly random node
// (StealFlat).
func (n *nodeRT) stealWork(p *sim.Proc, w int) (pairs.Region, bool) {
	rt := n.rt
	if rt.cfg.StealPolicy != StealFlat {
		if r, ok := n.group.StealLocal(w); ok {
			rt.localSteals++
			return r, true
		}
	}
	if len(rt.nodes) == 1 {
		if rt.cfg.StealPolicy == StealFlat {
			if r, ok := n.group.StealLocal(w); ok {
				rt.localSteals++
				return r, true
			}
		}
		return pairs.Region{}, false
	}
	victim := n.pickVictim()
	if victim == n.node.ID {
		if r, ok := n.group.StealLocal(w); ok {
			rt.localSteals++
			return r, true
		}
		return pairs.Region{}, false
	}
	n.stealSeq++
	id := n.stealSeq
	sig := sim.NewSignal()
	n.pendingSteals[id] = sig
	req := stealRequest{ID: id, Thief: n.node.ID}
	size := rt.cfg.ctrlMsgSize
	if rt.cfg.StealPolicy == StealCacheAware && n.host != nil {
		req.Resident = n.host.Items(residentSampleMax)
		size += 8 * int64(len(req.Resident))
	}
	start := p.Now()
	rt.cl.Net.Send(p, n.node, rt.cl.Nodes[victim], size, req)
	p.WaitSignal(sig)
	rep := sig.Value.(stealReply)
	rt.tracer.Record(trace.Task{
		Resource: n.node.Name() + "/steal",
		Class:    trace.ClassNet,
		Kind:     trace.KindSteal,
		Item:     victim, Item2: -1,
		Start: start, End: p.Now(),
	})
	if !rep.OK {
		rt.failedSteals++
		return pairs.Region{}, false
	}
	rt.remoteSteals++
	return rep.Region, true
}

// pickVictim selects a steal target according to the policy.
func (n *nodeRT) pickVictim() int {
	rt := n.rt
	if rt.cfg.StealPolicy == StealFlat {
		return n.victimRNG.Intn(len(rt.nodes))
	}
	// Hierarchical: uniform among remote nodes.
	v := n.victimRNG.Intn(len(rt.nodes) - 1)
	if v >= n.node.ID {
		v++
	}
	return v
}

// submitLeaf submits every pair of a leaf region as an asynchronous job,
// blocking on the concurrent-job limit (back-pressure).
func (n *nodeRT) submitLeaf(p *sim.Proc, w int, region pairs.Region) {
	rt := n.rt
	region.Each(func(i, j int) {
		if rt.done.Fired() || rt.err != nil {
			return
		}
		if rt.cfg.PairFilter != nil && !rt.cfg.PairFilter(i, j) {
			return
		}
		p.Acquire(n.devs[w].jobTokens)
		rt.env.Spawn(fmt.Sprintf("%s/job(%d,%d)", n.devs[w].dev.ID, i, j), func(jp *sim.Proc) {
			n.runJob(jp, w, i, j)
		})
	})
}
