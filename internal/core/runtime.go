package core

import (
	"errors"
	"fmt"

	"rocket/internal/cache"
	"rocket/internal/cluster"
	"rocket/internal/dht"
	"rocket/internal/fault"
	"rocket/internal/gpu"
	"rocket/internal/pairs"
	"rocket/internal/sim"
	"rocket/internal/stats"
	"rocket/internal/steal"
	"rocket/internal/trace"
)

// Sentinel errors surfaced through the run result. Both are wrapped with
// context; match with errors.Is.
var (
	// ErrProtocol reports an inter-node message the runtime cannot
	// explain: an unknown payload type, or (in failure-free runs, where
	// nothing may be lost) a steal reply with no matching pending
	// request. With fault injection active, unmatched steal replies are
	// expected after a crash and are absorbed instead.
	ErrProtocol = errors.New("core: protocol violation")
	// ErrPartitionLost reports that every node of the run crashed with
	// work outstanding and no restart is scheduled, so the job can never
	// complete. Schedulers treat it as retryable (the job can be requeued
	// on fresh nodes).
	ErrPartitionLost = errors.New("core: partition lost")
)

// runtime is the cluster-wide execution state of one run.
type runtime struct {
	cfg    Config
	env    *sim.Env
	cl     *cluster.Cluster
	app    Application
	comp   Computer // nil for cost-model-only runs
	tracer *trace.Tracer

	nodes      []*nodeRT
	totalPairs int64
	pairsDone  int64
	loads      uint64
	done       *sim.Signal
	err        error

	localSteals  uint64
	remoteSteals uint64
	failedSteals uint64

	// Fault-injection state; inj is nil (and every recovery path dormant)
	// in failure-free runs.
	inj *fault.Injector
	// orphans holds regions recovered while every node was dead, waiting
	// for a restart to adopt them.
	orphans []pairs.Region
	// finished pins the completion (or abort) time so fault events
	// scheduled beyond it do not inflate the reported runtime.
	finished   bool
	finishedAt sim.Time

	crashes           uint64
	restarts          uint64
	staleStealReplies uint64
	recoveredRegions  uint64
	recoveredPairs    int64

	// plan is the resolved incremental (pair-store) plan; nil when the
	// run has no store participation, keeping every store path dormant.
	plan *storePlan

	results    []Result
	throughput map[string]*stats.TimeSeries
}

// nodeRT is the per-node runtime state.
type nodeRT struct {
	rt   *runtime
	node *cluster.Node
	// alive and epoch implement fail-stop semantics: a crash flips alive
	// and bumps epoch, and every suspended callback chain belonging to the
	// old epoch quenches itself at its next step instead of touching the
	// rebuilt state.
	alive bool
	epoch int
	// rootRNG is the run-wide generator caches fork from, kept so a crash
	// rebuild draws its forks from the same deterministic stream.
	rootRNG *stats.RNG
	// host is the level-2 cache; nil when disabled.
	host *cache.Cache
	devs []*devRT
	// group holds the work-stealing deques, one per worker (= per GPU).
	group *steal.Group
	// dht is the level-3 engine; nil when the distributed cache is off.
	dht           *dht.Engine
	pendingSteals map[uint64]*sim.Signal
	stealSeq      uint64
	victimRNG     *stats.RNG
	// workers are the live worker state machines of the current epoch.
	workers []*worker
	// inflight tracks pairs handed to job chains but not yet completed,
	// so a crash can re-expose them. Populated only under fault injection.
	inflight map[pairIJ]struct{}
	// onMsg is the inbox handler, allocated once at startServer; it stays
	// registered across crash/restart (the fabric never delivers to a dead
	// node, so it simply lies dormant while down).
	onMsg func(raw interface{})
}

// devRT pairs a device with its level-1 cache and its concurrent-job
// limit (back-pressure, §4.2).
type devRT struct {
	dev       *gpu.Device
	cache     *cache.Cache
	jobTokens *sim.Resource
}

// Steal-protocol messages exchanged between nodes.
type (
	stealRequest struct {
		ID    uint64
		Thief int
		// Resident samples the thief's host-cache working set
		// (cache-aware stealing only, nil otherwise).
		Resident []int
	}
	stealReply struct {
		ID     uint64
		Region pairs.Region
		OK     bool
	}
)

// Run executes the all-pairs application on the cluster and returns the
// collected metrics. The cluster must be freshly built (its accounting is
// cumulative).
func Run(cfg Config) (*Metrics, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	rt := &runtime{
		cfg:        cfg,
		env:        sim.NewEnv(),
		cl:         cfg.Cluster,
		app:        cfg.App,
		tracer:     trace.New(cfg.DetailedTrace),
		totalPairs: pairs.TotalPairs(cfg.App.NumItems()),
		done:       sim.NewSignal(),
	}
	plan, err := buildStorePlan(cfg)
	if err != nil {
		return nil, err
	}
	rt.plan = plan
	// Recounting is O(n^2); skip it when nothing can be excluded (a plan
	// that only emits — base 0, no filter — computes every pair).
	if cfg.PairFilter != nil || (plan != nil && plan.base > 0) {
		rt.totalPairs = 0
		pairs.Root(cfg.App.NumItems()).Each(func(i, j int) {
			if rt.pairOK(i, j) {
				rt.totalPairs++
			}
		})
	}
	if comp, ok := cfg.App.(Computer); ok {
		rt.comp = comp
	}
	if cfg.ThroughputWindow > 0 {
		rt.throughput = make(map[string]*stats.TimeSeries)
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x524f434b4554) // "ROCKET"
	for _, node := range rt.cl.Nodes {
		n, err := rt.newNodeRT(node, rng)
		if err != nil {
			return nil, err
		}
		rt.nodes = append(rt.nodes, n)
	}

	// Arm fault injection before any workload event is scheduled so fault
	// events fire first within their timestamp.
	if !cfg.Faults.Empty() {
		if err := rt.armFaults(cfg.Faults); err != nil {
			return nil, err
		}
	}
	// Probes arm after the injector so a probe sharing a timestamp with a
	// fault event observes the post-event world; with no schedule rt.inj
	// is nil and every probe reads alive.
	if len(cfg.FaultProbes) > 0 {
		for _, p := range cfg.FaultProbes {
			if p.Node < 0 || p.Node >= len(rt.nodes) {
				return nil, fmt.Errorf("core: fault probe targets node %d of %d", p.Node, len(rt.nodes))
			}
		}
		fault.ArmProbes(rt.env, rt.inj, cfg.FaultProbes)
	}

	if err := rt.prewarm(); err != nil {
		return nil, err
	}

	// Serving resident pairs reads them from the store's segment log;
	// charge that scan first in line for node 0's I/O thread. With zero
	// hits nothing is scheduled and the event stream is untouched.
	if rt.plan != nil && rt.plan.readBytes > 0 {
		rt.chargeStoreRead()
	}

	// The master node spawns the single root task (paper §4.2); everyone
	// else starts by stealing.
	rt.nodes[0].group.Deque(0).PushBottom(pairs.Root(cfg.App.NumItems()))

	if len(rt.nodes) > 1 {
		for _, n := range rt.nodes {
			n.startServer()
		}
	}
	for _, n := range rt.nodes {
		for w := range n.devs {
			n.startWorker(w)
		}
	}

	rt.env.Run()
	m := rt.aggregate()
	rt.env.Close()
	if rt.err != nil {
		return m, rt.err
	}
	if !rt.done.Fired() || rt.pairsDone != rt.totalPairs {
		return m, fmt.Errorf("core: runtime stalled after %d/%d pairs at t=%v",
			rt.pairsDone, rt.totalPairs, m.Runtime)
	}
	return m, nil
}

func (rt *runtime) newNodeRT(node *cluster.Node, rng *stats.RNG) (*nodeRT, error) {
	n := &nodeRT{
		rt:        rt,
		node:      node,
		alive:     true,
		rootRNG:   rng,
		victimRNG: rng.Fork(),
	}
	if err := n.buildVolatile(); err != nil {
		return nil, err
	}
	return n, nil
}

// buildVolatile (re)creates the node's crash-volatile state: deques,
// caches, job-token pools, the pending-steal table, and the DHT engine.
// It runs once at startup and again on every crash, so a restarted node
// rejoins cold while any surviving chains of the old epoch reference only
// the orphaned objects.
func (n *nodeRT) buildVolatile() error {
	rt := n.rt
	node := n.node
	n.group = steal.NewGroup(len(node.GPUs))
	n.pendingSteals = make(map[uint64]*sim.Signal)
	n.inflight = make(map[pairIJ]struct{})
	policy := cache.PolicyLRU
	if rt.cfg.EvictRandom {
		policy = cache.PolicyRandom
	}
	newCache := func(name string, slots int) *cache.Cache {
		return cache.NewWithPolicy(name, slots, rt.cfg.App.ItemSize(), policy, n.rootRNG.Fork())
	}
	hostSlots := rt.cfg.hostSlotsFor(node.Spec.HostCacheBytes)
	n.host = nil
	if hostSlots > 0 {
		n.host = newCache(node.Name()+"/host", hostSlots)
	}
	n.devs = n.devs[:0]
	for _, dev := range node.GPUs {
		slots := rt.cfg.deviceSlotsFor(dev.MemBytes)
		n.devs = append(n.devs, &devRT{
			dev:       dev,
			cache:     newCache(dev.ID+"/cache", slots),
			jobTokens: sim.NewResource(dev.ID+"/jobs", rt.cfg.jobLimitFor(slots, hostSlots, len(node.GPUs))),
		})
	}

	n.dht = nil
	if rt.cfg.DistCache && n.host != nil {
		eng, err := dht.New(dht.Config{
			NodeID:   node.ID,
			NumNodes: len(rt.cl.Nodes),
			Hops:     rt.cfg.Hops,
			CtrlSize: rt.cfg.ctrlMsgSize,
			DataSize: rt.cfg.App.ItemSize(),
			Alive:    rt.nodeAliveFn(),
			Send: func(e *sim.Env, to int, size int64, payload interface{}) {
				rt.cl.Net.SendAsync(e, node, rt.cl.Nodes[to], size, payload)
			},
			Lookup: func(item int) (interface{}, bool) {
				if n.host.Contains(item) {
					// Peek without pinning: the payload pointer stays
					// valid because payloads are immutable Go values.
					return n.hostPeek(item), true
				}
				return nil, false
			},
		})
		if err != nil {
			return err
		}
		n.dht = eng
	}
	return nil
}

// nodeAliveFn returns the liveness hook handed to protocol layers, or nil
// in failure-free runs (preserving their no-liveness fast paths exactly).
func (rt *runtime) nodeAliveFn() dht.AliveFunc {
	if rt.cfg.Faults.Empty() {
		return nil
	}
	return func(id int) bool { return rt.nodes[id].alive }
}

// hostPeek returns the payload of a resident host-cache item. It is only
// called after Contains reported true within the same event.
func (n *nodeRT) hostPeek(item int) interface{} {
	return n.host.Peek(item)
}

// prewarm pre-fills host caches per Config.PrewarmHost: item i belongs to
// node i mod p, and each node warms the configured fraction of its items
// (the ones a previous run would most plausibly have left behind). For
// real-kernel applications the payloads are materialized eagerly, since a
// previous run would have produced them.
func (rt *runtime) prewarm() error {
	frac := rt.cfg.PrewarmHost
	if frac == 0 {
		return nil
	}
	p := len(rt.nodes)
	n := rt.cfg.App.NumItems()
	for item := 0; item < n; item++ {
		node := rt.nodes[item%p]
		if node.host == nil {
			continue
		}
		// The k-th item of a node is warmed iff k < frac * itemsOfNode.
		k := item / p
		itemsOfNode := (n - item%p + p - 1) / p
		if float64(k) >= frac*float64(itemsOfNode) {
			continue
		}
		var data interface{}
		if rt.comp != nil {
			v, err := rt.comp.LoadItem(item)
			if err != nil {
				return fmt.Errorf("core: prewarm item %d: %w", item, err)
			}
			data = v
		}
		node.host.Warm(item, data)
	}
	return nil
}

// startServer registers the node's message handler on its inbox. The
// server is a callback chain, not a process: no message ever blocks it
// (all protocol replies go through asynchronous sends), so each inbound
// message is handled inline in scheduler context. Registration is
// deferred one event, where the server process used to be scheduled to
// start.
func (n *nodeRT) startServer() {
	n.onMsg = func(raw interface{}) { n.handleMessage(raw) }
	n.rt.env.Defer(func() { n.node.Inbox.RecvFunc(n.rt.env, n.onMsg) })
}

// handleMessage demultiplexes one inbox message — distributed-cache
// protocol traffic and steal requests/replies — then re-arms the
// receiver. Queued bursts drain inline, exactly like the former server
// process draining its inbox within one wake-up.
func (n *nodeRT) handleMessage(raw interface{}) {
	env := n.rt.env
	msg := raw.(cluster.Message)
	if n.dht != nil && n.dht.Handle(env, msg.Payload) {
		n.node.Inbox.RecvFunc(env, n.onMsg)
		return
	}
	rt := n.rt
	switch m := msg.Payload.(type) {
	case stealRequest:
		var region pairs.Region
		var ok bool
		if m.Resident != nil {
			region, ok = n.group.StealBestOverlap(m.Resident)
		} else {
			region, ok = n.group.StealLocal(-1)
		}
		reply := stealReply{ID: m.ID, Region: region, OK: ok}
		rt.cl.Net.SendAsync(env, n.node, rt.cl.Nodes[m.Thief], rt.cfg.ctrlMsgSize, reply)
	case stealReply:
		sig, ok := n.pendingSteals[m.ID]
		if !ok {
			// Reachable once nodes can crash with replies in flight: a
			// thief that crashed and restarted has lost its pending table.
			// Salvage the region (it left the victim's deque) and drop the
			// reply; in a failure-free run the same condition is a protocol
			// violation surfaced through the run result.
			if rt.inj != nil {
				rt.staleStealReplies++
				if m.OK {
					rt.recoverRegions([]pairs.Region{m.Region})
				}
			} else {
				rt.fail(fmt.Errorf("%w: %s received unexpected steal reply %d",
					ErrProtocol, n.node.Name(), m.ID))
			}
			break
		}
		delete(n.pendingSteals, m.ID)
		sig.Value = m
		sig.Fire(env)
	default:
		rt.fail(fmt.Errorf("%w: %s received unknown message %T", ErrProtocol, n.node.Name(), m))
	}
	n.node.Inbox.RecvFunc(env, n.onMsg)
}

// worker is the per-GPU Constellation-style work loop: pop local work,
// steal hierarchically when idle, split non-leaf regions, and submit leaf
// jobs subject to the concurrent-job limit. Like the jobs it feeds, a
// worker is a callback state machine: the pop/split fast path runs as a
// plain loop, and the three suspension points (steal round-trip, failed-
// steal backoff, job-token back-pressure) are explicit continuations.
type worker struct {
	n *nodeRT
	w int
	// epoch pins the worker to the node incarnation that started it; a
	// crash strands the old epoch's continuations, which quench themselves.
	epoch int
	deque *steal.Deque
	// backoff is the current failed-steal delay. Failed steals back off
	// exponentially (capped) so fully idle workers do not flood the
	// cluster with steal requests while long comparisons drain elsewhere;
	// any success resets the backoff.
	backoff    sim.Time
	maxBackoff sim.Time
	// stepFn caches the step method value so backoff rescheduling does
	// not allocate a closure per idle round.
	stepFn func()
	// pendingList/pendingK record a leaf submission suspended on the
	// job-token limit, so crash recovery can harvest the unsubmitted tail
	// list[pendingK:]. pendingList is nil while nothing is suspended.
	pendingList []pairIJ
	pendingK    int
}

// startWorker launches worker w's state machine, deferred one event to
// the slot where the worker process used to be scheduled to start.
func (n *nodeRT) startWorker(w int) {
	wk := &worker{
		n: n, w: w,
		epoch:      n.epoch,
		deque:      n.group.Deque(w),
		backoff:    n.rt.cfg.StealBackoff,
		maxBackoff: 256 * n.rt.cfg.StealBackoff,
	}
	wk.stepFn = wk.step
	n.workers = append(n.workers, wk)
	n.rt.env.Defer(wk.begin)
}

// stale reports whether the worker belongs to a crashed incarnation of
// its node and must stop touching the rebuilt state.
func (wk *worker) stale() bool { return wk.epoch != wk.n.epoch }

func (wk *worker) begin() {
	rt := wk.n.rt
	if rt.totalPairs == 0 {
		rt.done.Fire(rt.env)
		return
	}
	wk.step()
}

// step runs the work loop until it suspends (steal, backoff, or token
// wait) or the run completes.
func (wk *worker) step() {
	rt := wk.n.rt
	if wk.stale() {
		return
	}
	for !rt.done.Fired() && rt.err == nil {
		region, ok := wk.deque.PopBottom()
		if !ok {
			wk.n.stealFunc(wk.w, wk.onSteal)
			return
		}
		if !wk.dispatch(region) {
			return
		}
	}
}

// dispatch handles one region, reporting whether the loop may continue
// inline (false: a leaf submission suspended on the job-token limit and
// will resume the loop itself).
func (wk *worker) dispatch(region pairs.Region) bool {
	rt := wk.n.rt
	if rt.plan != nil && rt.plan.pruneRegion(region) {
		// Every pair of the region is resident in the pair store: served,
		// not computed — drop it before subdividing.
		return true
	}
	if region.Count() <= rt.cfg.LeafPairs {
		return wk.submitLeaf(region)
	}
	kids := region.Split()
	// Push in reverse so the first quadrant is popped first, preserving
	// depth-first traversal order.
	for k := len(kids) - 1; k >= 0; k-- {
		wk.deque.PushBottom(kids[k])
	}
	return true
}

// onSteal continues the loop after a steal attempt.
func (wk *worker) onSteal(region pairs.Region, ok bool) {
	rt := wk.n.rt
	if wk.stale() {
		// The node crashed while the steal was in flight; the region left
		// its victim's deque, so hand it to recovery instead of losing it.
		if ok {
			rt.recoverRegions([]pairs.Region{region})
		}
		return
	}
	if !ok {
		rt.env.After(wk.backoff, wk.stepFn)
		if wk.backoff < wk.maxBackoff {
			wk.backoff *= 2
		}
		return
	}
	wk.backoff = rt.cfg.StealBackoff
	if rt.done.Fired() || rt.err != nil {
		return
	}
	if wk.dispatch(region) {
		wk.step()
	}
}

// submitLeaf submits every pair of a leaf region as an asynchronous job
// chain, suspending on the concurrent-job limit (back-pressure). It
// reports whether it completed inline.
func (wk *worker) submitLeaf(region pairs.Region) bool {
	list := make([]pairIJ, 0, region.Count())
	region.Each(func(i, j int) { list = append(list, pairIJ{i, j}) })
	return wk.submitFrom(list, 0)
}

// submitFrom submits list[k:], suspending when the job-token pool is
// exhausted; the continuation resumes at the same pair once a token frees
// up, and re-enters the work loop after the last pair.
func (wk *worker) submitFrom(list []pairIJ, k int) bool {
	rt := wk.n.rt
	tokens := wk.n.devs[wk.w].jobTokens
	for ; k < len(list); k++ {
		if rt.done.Fired() || rt.err != nil {
			continue
		}
		i, j := list[k].i, list[k].j
		if !rt.pairOK(i, j) {
			continue
		}
		if tokens.TryAcquire(rt.env) {
			wk.n.startJob(wk.w, i, j)
			continue
		}
		k := k
		wk.pendingList, wk.pendingK = list, k
		tokens.AcquireFunc(rt.env, func() {
			if wk.stale() {
				// Crash recovery harvested list[k:]; this grant arrived on
				// the orphaned token pool and simply dies with it.
				return
			}
			wk.pendingList = nil
			wk.n.startJob(wk.w, list[k].i, list[k].j)
			if wk.submitFrom(list, k+1) {
				wk.step()
			}
		})
		return false
	}
	wk.pendingList = nil
	return true
}

type pairIJ struct{ i, j int }

// stealFunc implements victim selection: same-node workers first, then a
// random remote node (StealHierarchical), or a uniformly random node
// (StealFlat). Local outcomes complete inline; a remote attempt suspends
// until the reply arrives and then calls fn in scheduler context.
func (n *nodeRT) stealFunc(w int, fn func(pairs.Region, bool)) {
	rt := n.rt
	if rt.cfg.StealPolicy != StealFlat {
		if r, ok := n.group.StealLocal(w); ok {
			rt.localSteals++
			fn(r, true)
			return
		}
	}
	if len(rt.nodes) == 1 {
		if rt.cfg.StealPolicy == StealFlat {
			if r, ok := n.group.StealLocal(w); ok {
				rt.localSteals++
				fn(r, true)
				return
			}
		}
		fn(pairs.Region{}, false)
		return
	}
	victim := n.pickVictim()
	if victim < 0 {
		// Fault-aware selection found no live peer to target.
		fn(pairs.Region{}, false)
		return
	}
	if victim == n.node.ID {
		if r, ok := n.group.StealLocal(w); ok {
			rt.localSteals++
			fn(r, true)
			return
		}
		fn(pairs.Region{}, false)
		return
	}
	n.stealSeq++
	id := n.stealSeq
	sig := sim.NewSignal()
	n.pendingSteals[id] = sig
	req := stealRequest{ID: id, Thief: n.node.ID}
	size := rt.cfg.ctrlMsgSize
	if rt.cfg.StealPolicy == StealCacheAware && n.host != nil {
		req.Resident = n.host.Items(residentSampleMax)
		size += 8 * int64(len(req.Resident))
	}
	start := rt.env.Now()
	rt.cl.Net.SendFunc(rt.env, n.node, rt.cl.Nodes[victim], size, req, func() {
		sig.OnFire(rt.env, func() {
			rep := sig.Value.(stealReply)
			rt.tracer.Record(trace.Task{
				Resource: n.node.Name() + "/steal",
				Class:    trace.ClassNet,
				Kind:     trace.KindSteal,
				Item:     victim, Item2: -1,
				Start: start, End: rt.env.Now(),
			})
			if !rep.OK {
				rt.failedSteals++
				fn(pairs.Region{}, false)
				return
			}
			rt.remoteSteals++
			fn(rep.Region, true)
		})
	})
}

// pickVictim selects a steal target according to the policy; -1 means no
// eligible victim exists. Failure-free runs keep the original draw
// sequence exactly; under fault injection the thief draws uniformly among
// live nodes only (steal-based recovery assumes a failure detector, like
// Constellation's membership layer).
func (n *nodeRT) pickVictim() int {
	rt := n.rt
	if rt.inj == nil {
		if rt.cfg.StealPolicy == StealFlat {
			return n.victimRNG.Intn(len(rt.nodes))
		}
		// Hierarchical: uniform among remote nodes.
		v := n.victimRNG.Intn(len(rt.nodes) - 1)
		if v >= n.node.ID {
			v++
		}
		return v
	}
	cands := make([]int, 0, len(rt.nodes))
	for _, peer := range rt.nodes {
		if !peer.alive {
			continue
		}
		if peer == n && rt.cfg.StealPolicy != StealFlat {
			continue
		}
		cands = append(cands, peer.node.ID)
	}
	if len(cands) == 0 {
		return -1
	}
	return cands[n.victimRNG.Intn(len(cands))]
}
