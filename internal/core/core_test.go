package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"rocket/internal/cluster"
	"rocket/internal/gpu"
	"rocket/internal/pairs"
	"rocket/internal/sim"
	"rocket/internal/trace"
)

// testApp is a synthetic application with uniform costs.
type testApp struct {
	n          int
	itemSize   int64
	fileSize   int64
	resultSize int64
	parse      sim.Time
	pre        sim.Time
	cmp        sim.Time
	post       sim.Time
}

func (a *testApp) Name() string                      { return "test" }
func (a *testApp) NumItems() int                     { return a.n }
func (a *testApp) FileSize(int) int64                { return a.fileSize }
func (a *testApp) ItemSize() int64                   { return a.itemSize }
func (a *testApp) ResultSize() int64                 { return a.resultSize }
func (a *testApp) ParseTime(int) sim.Time            { return a.parse }
func (a *testApp) PreprocessTime(int) sim.Time       { return a.pre }
func (a *testApp) CompareTime(int, int) sim.Time     { return a.cmp }
func (a *testApp) PostprocessTime(int, int) sim.Time { return a.post }

func defaultTestApp(n int) *testApp {
	return &testApp{
		n:          n,
		itemSize:   1 << 20, // 1 MiB
		fileSize:   100 << 10,
		resultSize: 64,
		parse:      sim.Millis(5),
		pre:        sim.Millis(1),
		cmp:        sim.Millis(1),
		post:       0,
	}
}

// computeApp extends testApp with real kernels.
type computeApp struct {
	testApp
	failLoad    int // item whose load fails (-1 = none)
	failCompare int // left item whose compare fails (-1 = none)
}

func (a *computeApp) LoadItem(item int) (interface{}, error) {
	if item == a.failLoad {
		return nil, errors.New("injected load failure")
	}
	return item * 10, nil
}

func (a *computeApp) ComparePair(i, j int, x, y interface{}) (interface{}, error) {
	if i == a.failCompare {
		return nil, errors.New("injected compare failure")
	}
	return x.(int) + y.(int), nil
}

func newCluster(t testing.TB, nodes int, models ...gpu.Model) *cluster.Cluster {
	t.Helper()
	if len(models) == 0 {
		models = []gpu.Model{gpu.TitanXMaxwell}
	}
	spec := cluster.NodeSpec{Cores: 16, HostCacheBytes: 2 << 30, GPUs: models}
	specs := make([]cluster.NodeSpec, nodes)
	for i := range specs {
		specs[i] = spec
	}
	c, err := cluster.New(specs, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	app := defaultTestApp(8)
	cl := newCluster(t, 1)
	cases := []Config{
		{},
		{App: app},
		{Cluster: cl},
		{App: defaultTestApp(1), Cluster: cl},
		{App: app, Cluster: cl, Hops: -1},
		{App: app, Cluster: cl, LeafPairs: -3},
		{App: app, Cluster: cl, StealBackoff: -1},
		{App: app, Cluster: cl, DeviceSlots: -1},
		{App: app, Cluster: cl, HostSlots: -2},
		{App: &testApp{n: 4, itemSize: 0}, Cluster: cl},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSingleNodeCompletesAllPairs(t *testing.T) {
	app := defaultTestApp(32)
	m, err := Run(Config{App: app, Cluster: newCluster(t, 1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != uint64(pairs.TotalPairs(32)) {
		t.Fatalf("pairs = %d, want %d", m.Pairs, pairs.TotalPairs(32))
	}
	if m.Runtime <= 0 {
		t.Fatal("zero runtime")
	}
	if m.R < 1 {
		t.Fatalf("R = %v < 1", m.R)
	}
	if m.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestPerfectReuseWhenEverythingFits(t *testing.T) {
	app := defaultTestApp(16)
	// 2 GiB host cache and 11 GiB device memory hold all 16 MiB of items.
	m, err := Run(Config{App: app, Cluster: newCluster(t, 1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Loads != 16 {
		t.Fatalf("loads = %d, want 16 (R = 1)", m.Loads)
	}
	if m.R != 1 {
		t.Fatalf("R = %v, want 1", m.R)
	}
	if m.IOReads != 16 {
		t.Fatalf("IO reads = %d, want 16", m.IOReads)
	}
}

func TestSmallCacheIncreasesLoads(t *testing.T) {
	app := defaultTestApp(24)
	big, err := Run(Config{App: app, Cluster: newCluster(t, 1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(Config{
		App: app, Cluster: newCluster(t, 1), Seed: 1,
		DeviceSlots: 4, HostSlots: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if small.Loads <= big.Loads {
		t.Fatalf("small cache loads %d <= big cache loads %d", small.Loads, big.Loads)
	}
	if small.Pairs != big.Pairs {
		t.Fatalf("pair counts differ: %d vs %d", small.Pairs, big.Pairs)
	}
}

func TestHostCacheDisabled(t *testing.T) {
	app := defaultTestApp(12)
	m, err := Run(Config{App: app, Cluster: newCluster(t, 1), Seed: 1, HostSlots: -1})
	if err != nil {
		t.Fatal(err)
	}
	if m.HostSlots != 0 {
		t.Fatalf("host slots = %d, want 0", m.HostSlots)
	}
	if m.HostCache.Hits+m.HostCache.Misses != 0 {
		t.Fatal("disabled host cache saw traffic")
	}
	if m.Pairs != uint64(pairs.TotalPairs(12)) {
		t.Fatal("pairs incomplete")
	}
}

func TestMultiNodeSpeedup(t *testing.T) {
	app := defaultTestApp(48)
	one, err := Run(Config{App: app, Cluster: newCluster(t, 1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(Config{App: app, Cluster: newCluster(t, 4), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(one.Runtime) / float64(four.Runtime)
	if speedup < 2.5 {
		t.Fatalf("speedup on 4 nodes = %.2f, want > 2.5", speedup)
	}
	if four.RemoteSteals == 0 {
		t.Fatal("no remote steals on 4 nodes")
	}
}

func TestDistributedCacheReducesLoads(t *testing.T) {
	app := defaultTestApp(64)
	base := Config{
		App: app, Seed: 1,
		DeviceSlots: 8, HostSlots: 12,
	}
	without := base
	without.Cluster = newCluster(t, 4)
	mOff, err := Run(without)
	if err != nil {
		t.Fatal(err)
	}
	with := base
	with.Cluster = newCluster(t, 4)
	with.DistCache = true
	mOn, err := Run(with)
	if err != nil {
		t.Fatal(err)
	}
	if mOn.Loads >= mOff.Loads {
		t.Fatalf("dist cache did not reduce loads: %d (on) vs %d (off)", mOn.Loads, mOff.Loads)
	}
	if mOn.DHT.Requests == 0 {
		t.Fatal("no DHT requests recorded")
	}
	var hits uint64
	for _, h := range mOn.DHT.HitAtHop {
		hits += h
	}
	if hits == 0 {
		t.Fatal("no DHT hits recorded")
	}
	if mOn.IOBytes >= mOff.IOBytes {
		t.Fatalf("dist cache did not reduce I/O: %d vs %d", mOn.IOBytes, mOff.IOBytes)
	}
}

func TestRealComputeCollectsResults(t *testing.T) {
	app := &computeApp{testApp: *defaultTestApp(10), failLoad: -1, failCompare: -1}
	m, err := Run(Config{App: app, Cluster: newCluster(t, 2), Seed: 1, CollectResults: true, DistCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Results) != int(pairs.TotalPairs(10)) {
		t.Fatalf("results = %d, want %d", len(m.Results), pairs.TotalPairs(10))
	}
	seen := map[[2]int]bool{}
	for _, r := range m.Results {
		if r.I >= r.J {
			t.Fatalf("bad pair (%d, %d)", r.I, r.J)
		}
		if seen[[2]int{r.I, r.J}] {
			t.Fatalf("duplicate pair (%d, %d)", r.I, r.J)
		}
		seen[[2]int{r.I, r.J}] = true
		if want := r.I*10 + r.J*10; r.Value.(int) != want {
			t.Fatalf("result (%d, %d) = %v, want %d", r.I, r.J, r.Value, want)
		}
	}
}

func TestLoadFailurePropagates(t *testing.T) {
	app := &computeApp{testApp: *defaultTestApp(10), failLoad: 3, failCompare: -1}
	_, err := Run(Config{App: app, Cluster: newCluster(t, 1), Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "injected load failure") {
		t.Fatalf("err = %v, want injected load failure", err)
	}
}

func TestCompareFailurePropagates(t *testing.T) {
	app := &computeApp{testApp: *defaultTestApp(10), failLoad: -1, failCompare: 2}
	_, err := Run(Config{App: app, Cluster: newCluster(t, 1), Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "injected compare failure") {
		t.Fatalf("err = %v, want injected compare failure", err)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Metrics {
		app := defaultTestApp(40)
		m, err := Run(Config{
			App: app, Cluster: newCluster(t, 3), Seed: 7,
			DeviceSlots: 10, HostSlots: 16, DistCache: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := mk(), mk()
	if a.Runtime != b.Runtime {
		t.Fatalf("run times differ: %v vs %v", a.Runtime, b.Runtime)
	}
	if a.Loads != b.Loads || a.RemoteSteals != b.RemoteSteals || a.NetBytes != b.NetBytes {
		t.Fatalf("metrics differ: %+v vs %+v", a, b)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	run := func(seed uint64) *Metrics {
		app := defaultTestApp(40)
		m, err := Run(Config{App: app, Cluster: newCluster(t, 3), Seed: seed, DeviceSlots: 10, HostSlots: 16})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(1), run(2)
	// Different victim choices should shift at least some accounting.
	if a.Runtime == b.Runtime && a.RemoteSteals == b.RemoteSteals && a.Loads == b.Loads {
		t.Log("warning: seeds produced identical runs (possible but unlikely)")
	}
}

func TestHeterogeneousFasterGPUDoesMoreWork(t *testing.T) {
	app := defaultTestApp(64)
	app.parse = sim.Millis(1)
	cl := newCluster(t, 1, gpu.K20m, gpu.RTX2080Ti)
	m, err := Run(Config{
		App: app, Cluster: cl, Seed: 1,
		ThroughputWindow: sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow := m.DeviceThroughput["node0/gpu0"]
	fast := m.DeviceThroughput["node0/gpu1"]
	if slow == nil || fast == nil {
		t.Fatalf("missing throughput series: %v", m.DeviceIDs)
	}
	var slowPairs, fastPairs float64
	for _, v := range slow.Buckets {
		slowPairs += v
	}
	for _, v := range fast.Buckets {
		fastPairs += v
	}
	if fastPairs <= slowPairs {
		t.Fatalf("RTX2080Ti did %v pairs, K20m did %v; want faster GPU to do more", fastPairs, slowPairs)
	}
	if slowPairs+fastPairs != float64(pairs.TotalPairs(64)) {
		t.Fatalf("throughput series total %v != %d", slowPairs+fastPairs, pairs.TotalPairs(64))
	}
}

func TestDetailedTraceRecordsPipeline(t *testing.T) {
	app := defaultTestApp(8)
	m, err := Run(Config{App: app, Cluster: newCluster(t, 1), Seed: 1, DetailedTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tracer.Tasks()) == 0 {
		t.Fatal("no tasks recorded")
	}
	if m.Tracer.Count(trace.ClassGPU, trace.KindCompare) != m.Pairs {
		t.Fatalf("compare tasks %d != pairs %d",
			m.Tracer.Count(trace.ClassGPU, trace.KindCompare), m.Pairs)
	}
	if m.Tracer.Count(trace.ClassIO, trace.KindIO) != m.Loads {
		t.Fatalf("io tasks %d != loads %d", m.Tracer.Count(trace.ClassIO, trace.KindIO), m.Loads)
	}
	if m.Tracer.Busy(trace.ClassCPU) == 0 {
		t.Fatal("no CPU busy time")
	}
}

func TestGPUBusyMatchesModel(t *testing.T) {
	app := defaultTestApp(16)
	m, err := Run(Config{App: app, Cluster: newCluster(t, 1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With perfect reuse: n preprocess kernels + C(n,2) comparisons.
	want := sim.Time(16)*app.pre + sim.Time(pairs.TotalPairs(16))*app.cmp
	if got := m.Tracer.Busy(trace.ClassGPU); got != want {
		t.Fatalf("GPU busy = %v, want %v", got, want)
	}
}

func TestStealFlatPolicyRuns(t *testing.T) {
	app := defaultTestApp(32)
	m, err := Run(Config{App: app, Cluster: newCluster(t, 3), Seed: 1, StealPolicy: StealFlat})
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != uint64(pairs.TotalPairs(32)) {
		t.Fatal("flat policy lost pairs")
	}
}

func TestJobLimitDerivation(t *testing.T) {
	cfg := Config{}
	if got := cfg.jobLimitFor(20, 100, 2); got != 19 {
		t.Errorf("limit = %d, want 19 (dev bound)", got)
	}
	if got := cfg.jobLimitFor(1000, 8, 2); got != 3 {
		t.Errorf("limit = %d, want 3 (host bound)", got)
	}
	if got := cfg.jobLimitFor(1000, 0, 2); got != 48 {
		t.Errorf("limit = %d, want 48 (per-device default)", got)
	}
	cfg.ConcurrentJobs = 5
	if got := cfg.jobLimitFor(1000, 1000, 2); got != 5 {
		t.Errorf("limit = %d, want 5 (explicit)", got)
	}
	if got := cfg.jobLimitFor(2, 2, 1); got != 1 {
		t.Errorf("limit = %d, want 1 (floor)", got)
	}
}

func TestTwoItemsMinimalRun(t *testing.T) {
	app := defaultTestApp(2)
	m, err := Run(Config{App: app, Cluster: newCluster(t, 1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != 1 || m.Loads != 2 {
		t.Fatalf("pairs=%d loads=%d", m.Pairs, m.Loads)
	}
}

// Property: for random small configurations, the runtime completes all
// pairs with R >= 1, and loads never exceed what a cache-less system would
// perform (2 loads per pair).
func TestQuickRuntimeInvariants(t *testing.T) {
	f := func(seed uint64, nRaw, nodesRaw, devRaw, hostRaw, leafRaw uint8) bool {
		n := int(nRaw%20) + 4
		nodes := int(nodesRaw%3) + 1
		devSlots := int(devRaw%8)*2 + 4
		hostSlots := int(hostRaw%10)*2 + 4
		leaf := int64(leafRaw%30) + 1
		app := defaultTestApp(n)
		app.parse = sim.Micros(100)
		app.cmp = sim.Micros(50)
		m, err := Run(Config{
			App:         app,
			Cluster:     newCluster(t, nodes),
			Seed:        seed,
			DeviceSlots: devSlots,
			HostSlots:   hostSlots,
			DistCache:   nodes > 1 && seed%2 == 0,
			LeafPairs:   leaf,
		})
		if err != nil {
			t.Logf("run failed: %v", err)
			return false
		}
		if m.Pairs != uint64(pairs.TotalPairs(n)) {
			return false
		}
		if m.Loads < uint64(n) {
			return false // every item must be loaded at least once
		}
		if m.Loads > 2*m.Pairs {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRuntimeSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app := defaultTestApp(32)
		_, err := Run(Config{App: app, Cluster: newCluster(b, 2), Seed: 1, DistCache: true})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleRun() {
	app := &testApp{
		n: 4, itemSize: 1 << 20, fileSize: 1 << 10, resultSize: 8,
		parse: sim.Millis(2), pre: sim.Millis(1), cmp: sim.Millis(1),
	}
	spec := cluster.NodeSpec{Cores: 4, HostCacheBytes: 1 << 30, GPUs: []gpu.Model{gpu.TitanXMaxwell}}
	cl, _ := cluster.New([]cluster.NodeSpec{spec}, cluster.DefaultConfig())
	m, err := Run(Config{App: app, Cluster: cl, Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("pairs=%d loads=%d R=%.1f\n", m.Pairs, m.Loads, m.R)
	// Output: pairs=6 loads=4 R=1.0
}

func TestCacheAwareStealPolicy(t *testing.T) {
	app := defaultTestApp(48)
	m, err := Run(Config{
		App: app, Cluster: newCluster(t, 4), Seed: 1,
		StealPolicy: StealCacheAware,
		DeviceSlots: 12, HostSlots: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != uint64(pairs.TotalPairs(48)) {
		t.Fatalf("pairs = %d", m.Pairs)
	}
	if m.RemoteSteals == 0 {
		t.Fatal("cache-aware run had no remote steals")
	}
}

func TestPairFilter(t *testing.T) {
	app := defaultTestApp(20)
	even := func(i, j int) bool { return (i+j)%2 == 0 }
	var want uint64
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if even(i, j) {
				want++
			}
		}
	}
	capp := &computeApp{testApp: *app, failLoad: -1, failCompare: -1}
	m, err := Run(Config{
		App: capp, Cluster: newCluster(t, 2), Seed: 1,
		PairFilter: even, CollectResults: true, DistCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != want {
		t.Fatalf("pairs = %d, want %d", m.Pairs, want)
	}
	for _, r := range m.Results {
		if !even(r.I, r.J) {
			t.Fatalf("filtered pair (%d, %d) was computed", r.I, r.J)
		}
	}
}

func TestPairFilterRejectsAll(t *testing.T) {
	app := defaultTestApp(10)
	m, err := Run(Config{
		App: app, Cluster: newCluster(t, 1), Seed: 1,
		PairFilter: func(int, int) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != 0 || m.Loads != 0 {
		t.Fatalf("pairs=%d loads=%d, want 0/0", m.Pairs, m.Loads)
	}
}

func TestPrewarmEliminatesLoads(t *testing.T) {
	app := defaultTestApp(16)
	cold, err := Run(Config{App: app, Cluster: newCluster(t, 1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(Config{App: app, Cluster: newCluster(t, 1), Seed: 1, PrewarmHost: 1})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Loads != 0 {
		t.Fatalf("fully prewarmed run performed %d loads", warm.Loads)
	}
	if warm.Runtime >= cold.Runtime {
		t.Fatalf("prewarmed run (%v) not faster than cold (%v)", warm.Runtime, cold.Runtime)
	}
	if warm.Pairs != cold.Pairs {
		t.Fatal("prewarm changed the computed pairs")
	}
}

func TestPrewarmPartialFraction(t *testing.T) {
	app := defaultTestApp(20)
	m, err := Run(Config{App: app, Cluster: newCluster(t, 2), Seed: 1, PrewarmHost: 0.5, DistCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Loads == 0 || m.Loads >= 20 {
		t.Fatalf("half prewarm loads = %d, want in (0, 20)", m.Loads)
	}
}

func TestPrewarmRealComputePayloads(t *testing.T) {
	app := &computeApp{testApp: *defaultTestApp(8), failLoad: -1, failCompare: -1}
	m, err := Run(Config{
		App: app, Cluster: newCluster(t, 1), Seed: 1,
		PrewarmHost: 1, CollectResults: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range m.Results {
		if want := r.I*10 + r.J*10; r.Value.(int) != want {
			t.Fatalf("prewarmed payloads corrupted result (%d, %d): %v", r.I, r.J, r.Value)
		}
	}
}

func TestPrewarmValidation(t *testing.T) {
	app := defaultTestApp(8)
	if _, err := Run(Config{App: app, Cluster: newCluster(t, 1), PrewarmHost: 1.5}); err == nil {
		t.Fatal("PrewarmHost > 1 accepted")
	}
	if _, err := Run(Config{App: app, Cluster: newCluster(t, 1), PrewarmHost: -0.1}); err == nil {
		t.Fatal("negative PrewarmHost accepted")
	}
}
