package core

import (
	"fmt"
	"sort"

	"rocket/internal/cluster"
	"rocket/internal/dht"
	"rocket/internal/fault"
	"rocket/internal/pairs"
	"rocket/internal/sim"
)

// This file implements steal-based crash recovery (the robustness story of
// paper §4.2 under injected faults). A crash fail-stops a node: its
// volatile state — deques, caches, pending protocol tables, job-token
// pool — is lost, and every region the node had not finished (queued in
// its deques, suspended behind the job-token limit, or in flight in a job
// chain) is harvested and re-exposed for stealing on a surviving node.
// In-flight protocol messages touching the dead node resolve as failures
// through the fabric's drop notifications instead of hanging or
// panicking. A restart rejoins the node cold: empty deques, empty caches,
// fresh workers that begin by stealing — exactly how a replacement node
// would join the computation.

// armFaults builds the injector from the validated schedule and wires its
// health state into the network, the devices, and the recovery hooks.
func (rt *runtime) armFaults(s *fault.Schedule) error {
	gpus := make([]int, len(rt.cl.Nodes))
	for i, nd := range rt.cl.Nodes {
		gpus[i] = len(nd.GPUs)
	}
	inj, err := fault.NewInjector(rt.env, gpus, s, fault.Hooks{
		OnCrash:   rt.onCrash,
		OnRestart: rt.onRestart,
	})
	if err != nil {
		return err
	}
	rt.inj = inj
	net := rt.cl.Net
	net.SetAliveFunc(inj.Alive)
	net.SetLinkFunc(func(from, to int) cluster.LinkState {
		up, latF, bwF := inj.Link(from, to)
		return cluster.LinkState{Up: up, LatencyFactor: latF, BandwidthFactor: bwF}
	})
	net.SetDropFunc(rt.onDrop)
	for ni, nd := range rt.cl.Nodes {
		for gi, dev := range nd.GPUs {
			ni, gi := ni, gi
			dev.SetThrottle(func() float64 { return rt.inj.GPUFactor(ni, gi) })
		}
	}
	return nil
}

// unitRegion wraps a single pair as a region for re-exposure.
func unitRegion(p pairIJ) pairs.Region {
	return pairs.Region{RowLo: p.i, RowHi: p.i + 1, ColLo: p.j, ColHi: p.j + 1}
}

// onCrash is the injector's crash hook: harvest the dead node's
// unfinished work, rebuild its volatile state cold, and re-expose the
// work for stealing.
func (rt *runtime) onCrash(id int) {
	if rt.done.Fired() || rt.err != nil {
		return
	}
	n := rt.nodes[id]
	n.alive = false
	n.epoch++
	rt.crashes++

	// Harvest, in deterministic order: queued deque regions (FIFO per
	// worker), then leaf tails suspended on the job-token limit, then
	// in-flight pairs sorted by (i, j).
	regions := n.group.Drain()
	for _, wk := range n.workers {
		if wk.pendingList == nil {
			continue
		}
		for _, p := range wk.pendingList[wk.pendingK:] {
			regions = append(regions, unitRegion(p))
		}
		wk.pendingList = nil
	}
	inflight := make([]pairIJ, 0, len(n.inflight))
	for p := range n.inflight {
		inflight = append(inflight, p)
	}
	sort.Slice(inflight, func(a, b int) bool {
		if inflight[a].i != inflight[b].i {
			return inflight[a].i < inflight[b].i
		}
		return inflight[a].j < inflight[b].j
	})
	for _, p := range inflight {
		regions = append(regions, unitRegion(p))
	}

	// The old epoch's workers and chains quench themselves against the
	// bumped epoch; everything they still reference is orphaned here.
	n.workers = nil
	if err := n.buildVolatile(); err != nil {
		rt.fail(err)
		return
	}
	rt.recoverRegions(regions)
}

// onRestart is the injector's restart hook: the node rejoins cold (its
// volatile state was already rebuilt at crash time), adopts any orphaned
// work, and starts fresh workers that begin by stealing. The inbox
// handler registered at startup stayed armed — the fabric delivered
// nothing while the node was down.
func (rt *runtime) onRestart(id int) {
	if rt.done.Fired() || rt.err != nil {
		return
	}
	n := rt.nodes[id]
	n.alive = true
	rt.restarts++
	if len(rt.orphans) > 0 {
		regions := rt.orphans
		rt.orphans = nil
		rt.recoverRegions(regions)
	}
	for w := range n.devs {
		n.startWorker(w)
	}
}

// recoverRegions re-exposes harvested regions on the lowest-ID live node,
// spread round-robin over its worker deques, where its own workers pop
// them and remote thieves steal them. With no node alive the regions wait
// as orphans for a restart; if none is scheduled the run fails with
// ErrPartitionLost.
func (rt *runtime) recoverRegions(regions []pairs.Region) {
	var target *nodeRT
	for _, n := range rt.nodes {
		if n.alive {
			target = n
			break
		}
	}
	if target == nil {
		rt.orphans = append(rt.orphans, regions...)
		if !rt.inj.RestartsPending() && !rt.done.Fired() {
			rt.fail(fmt.Errorf("%w: all %d nodes crashed with %d/%d pairs done",
				ErrPartitionLost, len(rt.nodes), rt.pairsDone, rt.totalPairs))
		}
		return
	}
	w := target.group.Size()
	for i, r := range regions {
		target.group.Deque(i % w).PushBottom(r)
		rt.recoveredPairs += rt.countablePairs(r)
	}
	rt.recoveredRegions += uint64(len(regions))
}

// countablePairs returns how many of a region's pairs actually belong to
// the run, honoring Config.PairFilter so RecoveredPairs stays comparable
// to Pairs and the total. Only crash recovery pays the per-pair walk, and
// only when a filter is set.
func (rt *runtime) countablePairs(r pairs.Region) int64 {
	if rt.cfg.PairFilter == nil {
		return r.Count()
	}
	var n int64
	r.Each(func(i, j int) {
		if rt.cfg.PairFilter(i, j) {
			n++
		}
	})
	return n
}

// onDrop is the fabric's drop notifier: every message the network
// discards (dead endpoint or partitioned link) resolves the in-flight
// operation it carried as a failure, so nothing hangs on a reply that
// will never come.
func (rt *runtime) onDrop(env *sim.Env, msg cluster.Message) {
	switch m := msg.Payload.(type) {
	case stealRequest:
		// The victim is unreachable: the thief's attempt fails and it
		// backs off (unless the thief itself died meanwhile).
		if th := rt.nodes[m.Thief]; th.alive {
			th.failPendingSteal(env, m.ID)
		}
	case stealReply:
		// The reply cannot reach the thief — it died, or the link to it
		// partitioned. A granted region already left the victim's deque,
		// so re-expose it; and if the thief is still alive (link fault),
		// fail its pending attempt so the worker backs off instead of
		// waiting forever on a reply that will never come.
		if th := rt.nodes[msg.To]; th.alive {
			th.failPendingSteal(env, m.ID)
		}
		if m.OK {
			rt.recoverRegions([]pairs.Region{m.Region})
		}
	case dht.Request:
		rt.failDHTFetch(env, m.Requester, m.ID)
	case dht.Forward:
		rt.failDHTFetch(env, m.Requester, m.ID)
	case dht.Reply:
		// The reply's payload was a cached copy — nothing to recover. If
		// the requester is still alive (the drop was a partitioned link,
		// not its death), resolve its fetch as a miss so the job chain
		// falls back to loading instead of hanging on its cache leases.
		rt.failDHTFetch(env, msg.To, m.ID)
	}
}

// failDHTFetch resolves a requester's pending distributed-cache lookup as
// a miss after the fabric dropped a message of its chain.
func (rt *runtime) failDHTFetch(env *sim.Env, requester int, id uint64) {
	n := rt.nodes[requester]
	if n.alive && n.dht != nil {
		n.dht.FailPending(env, id)
	}
}

// failPendingSteal resolves one pending remote steal as failed. Unknown
// IDs (the table was lost to a crash) are ignored.
func (n *nodeRT) failPendingSteal(env *sim.Env, id uint64) {
	sig, ok := n.pendingSteals[id]
	if !ok {
		return
	}
	delete(n.pendingSteals, id)
	sig.Value = stealReply{ID: id, OK: false}
	sig.Fire(env)
}
