// Package core implements the Rocket runtime system: the orchestration of
// the three-level cache hierarchy (paper §4.1), locality-aware
// divide-and-conquer work scheduling with hierarchical random
// work-stealing (§4.2), and fully asynchronous processing that overlaps
// I/O, CPU work, PCIe transfers, and GPU kernels (§4.3).
package core

import (
	"rocket/internal/sim"
)

// Application describes an all-pairs application to the runtime: the data
// set, per-stage data sizes, and per-stage durations (the cost model
// calibrated from Table 1). Durations are baselines for one CPU core or
// the reference GPU (TitanX Maxwell); the runtime scales GPU stages by
// device speed. Implementations must be deterministic: the duration of a
// stage may depend only on its arguments, never on execution order (use
// stats.HashRNG).
type Application interface {
	// Name identifies the application in reports.
	Name() string
	// NumItems is the data set size n.
	NumItems() int
	// FileSize is the on-disk (compressed) size of item's input file.
	FileSize(item int) int64
	// ItemSize is the size of one parsed+preprocessed item in memory; it
	// is the slot size of every cache level (Rocket uses fixed-size
	// slots).
	ItemSize() int64
	// ResultSize is the size of one comparison result copied back from
	// the GPU.
	ResultSize() int64
	// ParseTime is the CPU time to parse item's file.
	ParseTime(item int) sim.Time
	// PreprocessTime is the baseline GPU time to pre-process item
	// (zero if the application has no pre-processing stage).
	PreprocessTime(item int) sim.Time
	// CompareTime is the baseline GPU time to compare items i and j.
	CompareTime(i, j int) sim.Time
	// PostprocessTime is the CPU time to post-process one result.
	PostprocessTime(i, j int) sim.Time
}

// Computer is an optional extension of Application for real-kernel runs:
// when the configured application implements Computer, the runtime
// actually loads items and computes comparison results (pure Go
// re-implementations of the paper's CUDA kernels) in addition to charging
// the modeled durations, and collects the results.
type Computer interface {
	// LoadItem executes the real load pipeline ell(item): read, parse,
	// pre-process. The returned payload flows through the caches.
	LoadItem(item int) (interface{}, error)
	// ComparePair executes the real comparison f(a, b) for items (i, j).
	ComparePair(i, j int, a, b interface{}) (interface{}, error)
}

// Result is one collected comparison output (real-kernel runs only).
type Result struct {
	I, J  int
	Value interface{}
}
