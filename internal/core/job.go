package core

import (
	"fmt"

	"rocket/internal/cache"
	"rocket/internal/sim"
	"rocket/internal/stats"
	"rocket/internal/trace"
)

// A comparison job is a pure delay state machine: every step either holds
// a resource for a span of virtual time or waits on a cache/network
// condition, then continues. Jobs therefore run as callback chains on the
// scheduler — no goroutine, no channel handoff per step — which is what
// lets a run dispatch millions of pair jobs cheaply. Only the worker and
// server control loops remain processes.
//
// Chain steps run in scheduler context and must never block; all waiting
// is via the callback-completion primitives (sim.Resource.UseFunc,
// cache.AcquireFunc, dht.FetchFunc, cluster ReadFunc/SendAsync).
//
// Fault semantics: a job is pinned to its node's epoch. When the node
// crashes, the epoch advances and every suspended step of the old epoch
// quenches at its next resumption — it stops without touching the rebuilt
// caches or token pool (its own handles reference only the orphaned
// objects) and, for the one cluster-durable resource it may hold (the I/O
// thread), releases it first. The crashed pair itself is re-exposed by
// recovery, so nothing is double-counted and nothing is lost.

// job carries one comparison (i, j) through the pipeline of Fig. 2
// (bottom): acquire both items via the cache hierarchy, run the compare
// kernel, move the result, post-process, account completion.
type job struct {
	n     *nodeRT
	d     *devRT
	epoch int
	i, j  int
	hi    *cache.Handle
	hj    *cache.Handle
}

// startJob launches the job chain for pair (i, j) on worker w's device.
// The first step is deferred one event, exactly where the per-job process
// used to be scheduled to start, so dispatch order is unchanged.
func (n *nodeRT) startJob(w int, i, j int) {
	jb := &job{n: n, d: n.devs[w], epoch: n.epoch, i: i, j: j}
	if n.rt.inj != nil {
		n.inflight[pairIJ{i, j}] = struct{}{}
	}
	n.rt.env.Defer(jb.start)
}

// stale reports whether the job belongs to a crashed incarnation of its
// node. Stale steps stop silently; recovery already re-exposed the pair.
func (jb *job) stale() bool { return jb.epoch != jb.n.epoch }

func (jb *job) start() {
	if jb.stale() {
		return
	}
	jb.acquireItemFunc(jb.i, func(h *cache.Handle, err error) {
		if err != nil {
			jb.fail(err)
			return
		}
		jb.hi = h
		jb.acquireItemFunc(jb.j, func(h *cache.Handle, err error) {
			if err != nil {
				jb.hi.Release(jb.n.rt.env)
				jb.fail(err)
				return
			}
			jb.hj = h
			jb.compare()
		})
	})
}

// compare runs the comparison kernel on the GPU.
func (jb *job) compare() {
	rt := jb.n.rt
	jb.d.dev.LaunchKernel(rt.env, rt.app.CompareTime(jb.i, jb.j), func(start sim.Time) {
		if jb.stale() {
			return
		}
		rt.tracer.Record(trace.Task{
			Resource: jb.d.dev.ID, Class: trace.ClassGPU, Kind: trace.KindCompare,
			Item: jb.i, Item2: jb.j, Start: start, End: rt.env.Now(),
		})
		jb.resultOut()
	})
}

// resultOut transfers the comparison result device -> host.
func (jb *job) resultOut() {
	rt := jb.n.rt
	rs := rt.app.ResultSize()
	if rs <= 0 {
		jb.post()
		return
	}
	jb.d.dev.CopyD2H(rt.env, rs, func(start sim.Time) {
		if jb.stale() {
			return
		}
		rt.tracer.Record(trace.Task{
			Resource: jb.d.dev.ID + "/d2h", Class: trace.ClassD2H, Kind: trace.KindD2H,
			Item: jb.i, Item2: jb.j, Start: start, End: rt.env.Now(),
		})
		jb.post()
	})
}

// post runs the post-processing step on the CPU pool.
func (jb *job) post() {
	rt := jb.n.rt
	pt := rt.app.PostprocessTime(jb.i, jb.j)
	if pt <= 0 {
		jb.finish()
		return
	}
	jb.n.node.CPU.UseFunc(rt.env, pt, func(start sim.Time) {
		if jb.stale() {
			return
		}
		rt.tracer.Record(trace.Task{
			Resource: jb.n.node.Name() + "/cpu", Class: trace.ClassCPU, Kind: trace.KindPost,
			Item: jb.i, Item2: jb.j, Start: start, End: rt.env.Now(),
		})
		jb.finish()
	})
}

// finish runs real kernels when provided, releases both leases, and
// accounts the completed pair. The job token is returned last, mirroring
// the deferred release of the former per-job process.
func (jb *job) finish() {
	rt := jb.n.rt
	var value interface{}
	if rt.comp != nil {
		v, cerr := rt.comp.ComparePair(jb.i, jb.j, jb.hi.Data(), jb.hj.Data())
		if cerr != nil {
			jb.hi.Release(rt.env)
			jb.hj.Release(rt.env)
			jb.fail(fmt.Errorf("compare (%d, %d): %w", jb.i, jb.j, cerr))
			return
		}
		value = v
		if rt.cfg.CollectResults {
			rt.results = append(rt.results, Result{I: jb.i, J: jb.j, Value: value})
		}
	}
	if rt.plan != nil {
		rt.emitResult(jb.i, jb.j, value)
	}
	jb.hi.Release(rt.env)
	jb.hj.Release(rt.env)
	jb.n.pairCompleted(jb)
	jb.d.jobTokens.Release(rt.env)
}

// fail records the error and returns the job token.
func (jb *job) fail(err error) {
	rt := jb.n.rt
	if rt.inj != nil {
		delete(jb.n.inflight, pairIJ{jb.i, jb.j})
	}
	rt.fail(err)
	jb.d.jobTokens.Release(rt.env)
}

// pairCompleted updates counters, the per-device throughput series, and
// fires the completion signal after the final pair.
func (n *nodeRT) pairCompleted(jb *job) {
	rt := n.rt
	if rt.inj != nil {
		delete(n.inflight, pairIJ{jb.i, jb.j})
	}
	rt.pairsDone++
	if rt.throughput != nil {
		ts, ok := rt.throughput[jb.d.dev.ID]
		if !ok {
			ts = stats.NewTimeSeries(rt.cfg.ThroughputWindow.Seconds())
			rt.throughput[jb.d.dev.ID] = ts
		}
		ts.Add(rt.env.Now().Seconds(), 1)
	}
	if rt.pairsDone == rt.totalPairs {
		rt.markFinished()
		rt.done.Fire(rt.env)
		// The computation is complete (and, under fault injection, the
		// completion time pinned); making the emitted results durable is
		// charged on top and extends the reported runtime of fault-free
		// runs.
		rt.flushStore()
	}
}

// markFinished pins the completion time (see runtime.finishedAt).
func (rt *runtime) markFinished() {
	if !rt.finished {
		rt.finished = true
		rt.finishedAt = rt.env.Now()
	}
}

// fail records the first error and unblocks the run.
func (rt *runtime) fail(err error) {
	if rt.err == nil {
		rt.err = err
	}
	rt.markFinished()
	rt.done.Fire(rt.env)
}

// acquireItemFunc obtains a read lease for item on the job's device,
// walking the hierarchy of Fig. 4: device cache, host cache, distributed
// cache, and finally the full load pipeline. fn receives the device-level
// read lease (or the first error).
func (jb *job) acquireItemFunc(item int, fn func(*cache.Handle, error)) {
	rt := jb.n.rt
	jb.d.cache.AcquireFunc(rt.env, item, func(dh *cache.Handle, hit bool) {
		if jb.stale() {
			return
		}
		if hit {
			fn(dh, nil)
			return
		}
		// Device miss: the device write lease is ours to fill.
		if jb.n.host == nil {
			// No host cache: load straight through to the device.
			jb.loadFunc(item, func(data interface{}, err error) {
				if err != nil {
					dh.Abort(rt.env)
					fn(nil, err)
					return
				}
				dh.SetData(data)
				dh.Publish(rt.env)
				fn(dh, nil)
			})
			return
		}
		jb.n.host.AcquireFunc(rt.env, item, func(hh *cache.Handle, hostHit bool) {
			if jb.stale() {
				return
			}
			if hostHit {
				jb.copyH2D(item, func() {
					dh.SetData(hh.Data())
					dh.Publish(rt.env)
					hh.Release(rt.env)
					fn(dh, nil)
				})
				return
			}
			// Host miss: we hold the host write lease; try the distributed
			// cache.
			if jb.n.dht != nil {
				start := rt.env.Now()
				jb.n.dht.FetchFunc(rt.env, item, func(data interface{}, hop int, ok bool) {
					if jb.stale() {
						return
					}
					rt.tracer.Record(trace.Task{
						Resource: jb.n.node.Name() + "/net", Class: trace.ClassNet, Kind: trace.KindFetch,
						Item: item, Item2: -1, Start: start, End: rt.env.Now(),
					})
					if ok {
						hh.SetData(data)
						hh.Publish(rt.env)
						jb.copyH2D(item, func() {
							dh.SetData(data)
							dh.Publish(rt.env)
							hh.Release(rt.env)
							fn(dh, nil)
						})
						return
					}
					jb.loadThrough(item, dh, hh, fn)
				})
				return
			}
			jb.loadThrough(item, dh, hh, fn)
		})
	})
}

// loadThrough executes the full load pipeline; the result lands on the
// device first (the last stage runs there), then is copied back so the
// host cache — and thus the distributed cache — can serve it (§4.1.2).
func (jb *job) loadThrough(item int, dh, hh *cache.Handle, fn func(*cache.Handle, error)) {
	rt := jb.n.rt
	jb.loadFunc(item, func(data interface{}, err error) {
		if err != nil {
			dh.Abort(rt.env)
			hh.Abort(rt.env)
			fn(nil, err)
			return
		}
		dh.SetData(data)
		dh.Publish(rt.env)
		jb.copyD2H(item, func() {
			hh.SetData(data)
			hh.Publish(rt.env)
			hh.Release(rt.env)
			fn(dh, nil)
		})
	})
}

// loadFunc executes the load pipeline ell(item) of Fig. 2: remote I/O, CPU
// parse, host-to-device transfer, and the GPU pre-processing kernel.
func (jb *job) loadFunc(item int, fn func(interface{}, error)) {
	rt := jb.n.rt
	rt.loads++

	// Remote I/O through this node's I/O thread. The interval covers the
	// whole storage interaction including server-side queueing: that is
	// exactly the time the paper's I/O thread is occupied.
	jb.n.node.IO.AcquireFunc(rt.env, func() {
		if jb.stale() {
			// The I/O thread outlives the crash (it belongs to the cluster
			// node, not the epoch); hand it back before quenching.
			jb.n.node.IO.Release(rt.env)
			return
		}
		start := rt.env.Now()
		rt.cl.Storage.ReadFunc(rt.env, rt.app.FileSize(item), func() {
			jb.n.node.IO.Release(rt.env)
			if jb.stale() {
				return
			}
			rt.tracer.Record(trace.Task{
				Resource: jb.n.node.Name() + "/io", Class: trace.ClassIO, Kind: trace.KindIO,
				Item: item, Item2: -1, Start: start, End: rt.env.Now(),
			})
			jb.parseAndStage(item, fn)
		})
	})
}

// parseAndStage continues the load pipeline after the I/O stage.
func (jb *job) parseAndStage(item int, fn func(interface{}, error)) {
	rt := jb.n.rt
	stage := func() {
		jb.copyH2D(item, func() {
			jb.preprocess(item, fn)
		})
	}
	if pt := rt.app.ParseTime(item); pt > 0 {
		jb.n.node.CPU.UseFunc(rt.env, pt, func(start sim.Time) {
			if jb.stale() {
				return
			}
			rt.tracer.Record(trace.Task{
				Resource: jb.n.node.Name() + "/cpu", Class: trace.ClassCPU, Kind: trace.KindParse,
				Item: item, Item2: -1, Start: start, End: rt.env.Now(),
			})
			stage()
		})
		return
	}
	stage()
}

// preprocess runs the GPU pre-processing kernel and materializes the
// payload for real-kernel applications.
func (jb *job) preprocess(item int, fn func(interface{}, error)) {
	rt := jb.n.rt
	materialize := func() {
		if rt.comp != nil {
			data, err := rt.comp.LoadItem(item)
			if err != nil {
				fn(nil, fmt.Errorf("load item %d: %w", item, err))
				return
			}
			fn(data, nil)
			return
		}
		fn(nil, nil)
	}
	if ppt := rt.app.PreprocessTime(item); ppt > 0 {
		jb.d.dev.LaunchKernel(rt.env, ppt, func(start sim.Time) {
			if jb.stale() {
				return
			}
			rt.tracer.Record(trace.Task{
				Resource: jb.d.dev.ID, Class: trace.ClassGPU, Kind: trace.KindPreprocess,
				Item: item, Item2: -1, Start: start, End: rt.env.Now(),
			})
			materialize()
		})
		return
	}
	materialize()
}

// copyH2D charges a host-to-device transfer of one item.
func (jb *job) copyH2D(item int, fn func()) {
	rt := jb.n.rt
	jb.d.dev.CopyH2D(rt.env, rt.app.ItemSize(), func(start sim.Time) {
		if jb.stale() {
			return
		}
		rt.tracer.Record(trace.Task{
			Resource: jb.d.dev.ID + "/h2d", Class: trace.ClassH2D, Kind: trace.KindH2D,
			Item: item, Item2: -1, Start: start, End: rt.env.Now(),
		})
		fn()
	})
}

// copyD2H charges a device-to-host transfer of one item (write-back into
// the host cache after pre-processing).
func (jb *job) copyD2H(item int, fn func()) {
	rt := jb.n.rt
	jb.d.dev.CopyD2H(rt.env, rt.app.ItemSize(), func(start sim.Time) {
		if jb.stale() {
			return
		}
		rt.tracer.Record(trace.Task{
			Resource: jb.d.dev.ID + "/d2h", Class: trace.ClassD2H, Kind: trace.KindD2H,
			Item: item, Item2: -1, Start: start, End: rt.env.Now(),
		})
		fn()
	})
}
