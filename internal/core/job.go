package core

import (
	"fmt"

	"rocket/internal/cache"
	"rocket/internal/sim"
	"rocket/internal/stats"
	"rocket/internal/trace"
)

// A comparison job is a pure delay state machine: every step either holds
// a resource for a span of virtual time or waits on a cache/network
// condition, then continues. Jobs therefore run as callback chains on the
// scheduler — no goroutine, no channel handoff per step — which is what
// lets a run dispatch millions of pair jobs cheaply. Only the worker and
// server control loops remain processes.
//
// Chain steps run in scheduler context and must never block; all waiting
// is via the callback-completion primitives (sim.Resource.UseFunc,
// cache.AcquireFunc, dht.FetchFunc, cluster ReadFunc/SendAsync).

// job carries one comparison (i, j) through the pipeline of Fig. 2
// (bottom): acquire both items via the cache hierarchy, run the compare
// kernel, move the result, post-process, account completion.
type job struct {
	n      *nodeRT
	d      *devRT
	i, j   int
	hi, hj *cache.Handle
}

// startJob launches the job chain for pair (i, j) on worker w's device.
// The first step is deferred one event, exactly where the per-job process
// used to be scheduled to start, so dispatch order is unchanged.
func (n *nodeRT) startJob(w int, i, j int) {
	jb := &job{n: n, d: n.devs[w], i: i, j: j}
	n.rt.env.Defer(jb.start)
}

func (jb *job) start() {
	jb.n.acquireItemFunc(jb.d, jb.i, func(h *cache.Handle, err error) {
		if err != nil {
			jb.fail(err)
			return
		}
		jb.hi = h
		jb.n.acquireItemFunc(jb.d, jb.j, func(h *cache.Handle, err error) {
			if err != nil {
				jb.hi.Release(jb.n.rt.env)
				jb.fail(err)
				return
			}
			jb.hj = h
			jb.compare()
		})
	})
}

// compare runs the comparison kernel on the GPU.
func (jb *job) compare() {
	rt := jb.n.rt
	jb.d.dev.LaunchKernel(rt.env, rt.app.CompareTime(jb.i, jb.j), func(start sim.Time) {
		rt.tracer.Record(trace.Task{
			Resource: jb.d.dev.ID, Class: trace.ClassGPU, Kind: trace.KindCompare,
			Item: jb.i, Item2: jb.j, Start: start, End: rt.env.Now(),
		})
		jb.resultOut()
	})
}

// resultOut transfers the comparison result device -> host.
func (jb *job) resultOut() {
	rt := jb.n.rt
	rs := rt.app.ResultSize()
	if rs <= 0 {
		jb.post()
		return
	}
	jb.d.dev.CopyD2H(rt.env, rs, func(start sim.Time) {
		rt.tracer.Record(trace.Task{
			Resource: jb.d.dev.ID + "/d2h", Class: trace.ClassD2H, Kind: trace.KindD2H,
			Item: jb.i, Item2: jb.j, Start: start, End: rt.env.Now(),
		})
		jb.post()
	})
}

// post runs the post-processing step on the CPU pool.
func (jb *job) post() {
	rt := jb.n.rt
	pt := rt.app.PostprocessTime(jb.i, jb.j)
	if pt <= 0 {
		jb.finish()
		return
	}
	jb.n.node.CPU.UseFunc(rt.env, pt, func(start sim.Time) {
		rt.tracer.Record(trace.Task{
			Resource: jb.n.node.Name() + "/cpu", Class: trace.ClassCPU, Kind: trace.KindPost,
			Item: jb.i, Item2: jb.j, Start: start, End: rt.env.Now(),
		})
		jb.finish()
	})
}

// finish runs real kernels when provided, releases both leases, and
// accounts the completed pair. The job token is returned last, mirroring
// the deferred release of the former per-job process.
func (jb *job) finish() {
	rt := jb.n.rt
	if rt.comp != nil {
		value, cerr := rt.comp.ComparePair(jb.i, jb.j, jb.hi.Data(), jb.hj.Data())
		if cerr != nil {
			jb.hi.Release(rt.env)
			jb.hj.Release(rt.env)
			jb.fail(fmt.Errorf("compare (%d, %d): %w", jb.i, jb.j, cerr))
			return
		}
		if rt.cfg.CollectResults {
			rt.results = append(rt.results, Result{I: jb.i, J: jb.j, Value: value})
		}
	}
	jb.hi.Release(rt.env)
	jb.hj.Release(rt.env)
	jb.n.pairCompleted(jb.d)
	jb.d.jobTokens.Release(rt.env)
}

// fail records the error and returns the job token.
func (jb *job) fail(err error) {
	rt := jb.n.rt
	rt.fail(err)
	jb.d.jobTokens.Release(rt.env)
}

// pairCompleted updates counters, the per-device throughput series, and
// fires the completion signal after the final pair.
func (n *nodeRT) pairCompleted(d *devRT) {
	rt := n.rt
	rt.pairsDone++
	if rt.throughput != nil {
		ts, ok := rt.throughput[d.dev.ID]
		if !ok {
			ts = stats.NewTimeSeries(rt.cfg.ThroughputWindow.Seconds())
			rt.throughput[d.dev.ID] = ts
		}
		ts.Add(rt.env.Now().Seconds(), 1)
	}
	if rt.pairsDone == rt.totalPairs {
		rt.done.Fire(rt.env)
	}
}

// fail records the first error and unblocks the run.
func (rt *runtime) fail(err error) {
	if rt.err == nil {
		rt.err = err
	}
	rt.done.Fire(rt.env)
}

// acquireItemFunc obtains a read lease for item on device d, walking the
// hierarchy of Fig. 4: device cache, host cache, distributed cache, and
// finally the full load pipeline. fn receives the device-level read lease
// (or the first error).
func (n *nodeRT) acquireItemFunc(d *devRT, item int, fn func(*cache.Handle, error)) {
	rt := n.rt
	d.cache.AcquireFunc(rt.env, item, func(dh *cache.Handle, hit bool) {
		if hit {
			fn(dh, nil)
			return
		}
		// Device miss: the device write lease is ours to fill.
		if n.host == nil {
			// No host cache: load straight through to the device.
			n.loadFunc(d, item, func(data interface{}, err error) {
				if err != nil {
					dh.Abort(rt.env)
					fn(nil, err)
					return
				}
				dh.SetData(data)
				dh.Publish(rt.env)
				fn(dh, nil)
			})
			return
		}
		n.host.AcquireFunc(rt.env, item, func(hh *cache.Handle, hostHit bool) {
			if hostHit {
				n.copyH2D(d, item, func() {
					dh.SetData(hh.Data())
					dh.Publish(rt.env)
					hh.Release(rt.env)
					fn(dh, nil)
				})
				return
			}
			// Host miss: we hold the host write lease; try the distributed
			// cache.
			if n.dht != nil {
				start := rt.env.Now()
				n.dht.FetchFunc(rt.env, item, func(data interface{}, hop int, ok bool) {
					rt.tracer.Record(trace.Task{
						Resource: n.node.Name() + "/net", Class: trace.ClassNet, Kind: trace.KindFetch,
						Item: item, Item2: -1, Start: start, End: rt.env.Now(),
					})
					if ok {
						hh.SetData(data)
						hh.Publish(rt.env)
						n.copyH2D(d, item, func() {
							dh.SetData(data)
							dh.Publish(rt.env)
							hh.Release(rt.env)
							fn(dh, nil)
						})
						return
					}
					n.loadThrough(d, item, dh, hh, fn)
				})
				return
			}
			n.loadThrough(d, item, dh, hh, fn)
		})
	})
}

// loadThrough executes the full load pipeline; the result lands on the
// device first (the last stage runs there), then is copied back so the
// host cache — and thus the distributed cache — can serve it (§4.1.2).
func (n *nodeRT) loadThrough(d *devRT, item int, dh, hh *cache.Handle, fn func(*cache.Handle, error)) {
	rt := n.rt
	n.loadFunc(d, item, func(data interface{}, err error) {
		if err != nil {
			dh.Abort(rt.env)
			hh.Abort(rt.env)
			fn(nil, err)
			return
		}
		dh.SetData(data)
		dh.Publish(rt.env)
		n.copyD2H(d, item, func() {
			hh.SetData(data)
			hh.Publish(rt.env)
			hh.Release(rt.env)
			fn(dh, nil)
		})
	})
}

// loadFunc executes the load pipeline ell(item) of Fig. 2: remote I/O, CPU
// parse, host-to-device transfer, and the GPU pre-processing kernel.
func (n *nodeRT) loadFunc(d *devRT, item int, fn func(interface{}, error)) {
	rt := n.rt
	rt.loads++

	// Remote I/O through this node's I/O thread. The interval covers the
	// whole storage interaction including server-side queueing: that is
	// exactly the time the paper's I/O thread is occupied.
	n.node.IO.AcquireFunc(rt.env, func() {
		start := rt.env.Now()
		rt.cl.Storage.ReadFunc(rt.env, rt.app.FileSize(item), func() {
			n.node.IO.Release(rt.env)
			rt.tracer.Record(trace.Task{
				Resource: n.node.Name() + "/io", Class: trace.ClassIO, Kind: trace.KindIO,
				Item: item, Item2: -1, Start: start, End: rt.env.Now(),
			})
			n.parseAndStage(d, item, fn)
		})
	})
}

// parseAndStage continues the load pipeline after the I/O stage.
func (n *nodeRT) parseAndStage(d *devRT, item int, fn func(interface{}, error)) {
	rt := n.rt
	stage := func() {
		n.copyH2D(d, item, func() {
			n.preprocess(d, item, fn)
		})
	}
	if pt := rt.app.ParseTime(item); pt > 0 {
		n.node.CPU.UseFunc(rt.env, pt, func(start sim.Time) {
			rt.tracer.Record(trace.Task{
				Resource: n.node.Name() + "/cpu", Class: trace.ClassCPU, Kind: trace.KindParse,
				Item: item, Item2: -1, Start: start, End: rt.env.Now(),
			})
			stage()
		})
		return
	}
	stage()
}

// preprocess runs the GPU pre-processing kernel and materializes the
// payload for real-kernel applications.
func (n *nodeRT) preprocess(d *devRT, item int, fn func(interface{}, error)) {
	rt := n.rt
	materialize := func() {
		if rt.comp != nil {
			data, err := rt.comp.LoadItem(item)
			if err != nil {
				fn(nil, fmt.Errorf("load item %d: %w", item, err))
				return
			}
			fn(data, nil)
			return
		}
		fn(nil, nil)
	}
	if ppt := rt.app.PreprocessTime(item); ppt > 0 {
		d.dev.LaunchKernel(rt.env, ppt, func(start sim.Time) {
			rt.tracer.Record(trace.Task{
				Resource: d.dev.ID, Class: trace.ClassGPU, Kind: trace.KindPreprocess,
				Item: item, Item2: -1, Start: start, End: rt.env.Now(),
			})
			materialize()
		})
		return
	}
	materialize()
}

// copyH2D charges a host-to-device transfer of one item.
func (n *nodeRT) copyH2D(d *devRT, item int, fn func()) {
	rt := n.rt
	d.dev.CopyH2D(rt.env, rt.app.ItemSize(), func(start sim.Time) {
		rt.tracer.Record(trace.Task{
			Resource: d.dev.ID + "/h2d", Class: trace.ClassH2D, Kind: trace.KindH2D,
			Item: item, Item2: -1, Start: start, End: rt.env.Now(),
		})
		fn()
	})
}

// copyD2H charges a device-to-host transfer of one item (write-back into
// the host cache after pre-processing).
func (n *nodeRT) copyD2H(d *devRT, item int, fn func()) {
	rt := n.rt
	d.dev.CopyD2H(rt.env, rt.app.ItemSize(), func(start sim.Time) {
		rt.tracer.Record(trace.Task{
			Resource: d.dev.ID + "/d2h", Class: trace.ClassD2H, Kind: trace.KindD2H,
			Item: item, Item2: -1, Start: start, End: rt.env.Now(),
		})
		fn()
	})
}
