package core

import (
	"fmt"

	"rocket/internal/cache"
	"rocket/internal/sim"
	"rocket/internal/stats"
	"rocket/internal/trace"
)

// useTraced occupies resource r for dur and records the occupancy as a
// task. The recorded interval starts after the resource is granted, so
// queueing ahead of a busy resource never inflates its busy time.
func (rt *runtime) useTraced(p *sim.Proc, r *sim.Resource, dur sim.Time,
	resource string, class trace.Class, kind trace.Kind, item, item2 int) {
	p.Acquire(r)
	start := p.Now()
	p.Wait(dur)
	r.Release(p.Env())
	rt.tracer.Record(trace.Task{
		Resource: resource, Class: class, Kind: kind,
		Item: item, Item2: item2, Start: start, End: p.Now(),
	})
}

// runJob executes one comparison job (i, j) on worker w's device: acquire
// both items through the cache hierarchy (Fig. 4), run the comparison
// pipeline (Fig. 2, bottom), and account the completion.
func (n *nodeRT) runJob(p *sim.Proc, w int, i, j int) {
	rt := n.rt
	d := n.devs[w]
	defer d.jobTokens.Release(rt.env)

	hi, err := n.acquireItem(p, d, i)
	if err != nil {
		rt.fail(p, err)
		return
	}
	hj, err := n.acquireItem(p, d, j)
	if err != nil {
		hi.Release(rt.env)
		rt.fail(p, err)
		return
	}

	// Comparison kernel on the GPU.
	rt.useTraced(p, d.dev.Compute, d.dev.KernelTime(rt.app.CompareTime(i, j)),
		d.dev.ID, trace.ClassGPU, trace.KindCompare, i, j)

	// Result transfer device -> host.
	if rs := rt.app.ResultSize(); rs > 0 {
		rt.useTraced(p, d.dev.D2H, d.dev.TransferTime(rs),
			d.dev.ID+"/d2h", trace.ClassD2H, trace.KindD2H, i, j)
	}

	// Post-processing on the CPU.
	if pt := rt.app.PostprocessTime(i, j); pt > 0 {
		rt.useTraced(p, n.node.CPU, pt,
			n.node.Name()+"/cpu", trace.ClassCPU, trace.KindPost, i, j)
	}

	// Real kernels, when the application provides them.
	if rt.comp != nil {
		value, cerr := rt.comp.ComparePair(i, j, hi.Data(), hj.Data())
		if cerr != nil {
			hi.Release(rt.env)
			hj.Release(rt.env)
			rt.fail(p, fmt.Errorf("compare (%d, %d): %w", i, j, cerr))
			return
		}
		if rt.cfg.CollectResults {
			rt.results = append(rt.results, Result{I: i, J: j, Value: value})
		}
	}

	hi.Release(rt.env)
	hj.Release(rt.env)
	n.pairCompleted(p, d)
}

// pairCompleted updates counters, the per-device throughput series, and
// fires the completion signal after the final pair.
func (n *nodeRT) pairCompleted(p *sim.Proc, d *devRT) {
	rt := n.rt
	rt.pairsDone++
	if rt.throughput != nil {
		ts, ok := rt.throughput[d.dev.ID]
		if !ok {
			ts = stats.NewTimeSeries(rt.cfg.ThroughputWindow.Seconds())
			rt.throughput[d.dev.ID] = ts
		}
		ts.Add(p.Now().Seconds(), 1)
	}
	if rt.pairsDone == rt.totalPairs {
		rt.done.Fire(rt.env)
	}
}

// fail records the first error and unblocks the run.
func (rt *runtime) fail(p *sim.Proc, err error) {
	if rt.err == nil {
		rt.err = err
	}
	rt.done.Fire(rt.env)
}

// acquireItem obtains a read lease for item on device d, walking the
// hierarchy of Fig. 4: device cache, host cache, distributed cache, and
// finally the full load pipeline.
func (n *nodeRT) acquireItem(p *sim.Proc, d *devRT, item int) (*cache.Handle, error) {
	rt := n.rt
	dh, hit := d.cache.Acquire(p, item)
	if hit {
		return dh, nil
	}
	// Device miss: the device write lease is ours to fill.
	if n.host == nil {
		// No host cache: load straight through to the device.
		data, err := n.load(p, d, item)
		if err != nil {
			dh.Abort(rt.env)
			return nil, err
		}
		dh.SetData(data)
		dh.Publish(rt.env)
		return dh, nil
	}

	hh, hostHit := n.host.Acquire(p, item)
	if hostHit {
		n.copyH2D(p, d, item)
		dh.SetData(hh.Data())
		dh.Publish(rt.env)
		hh.Release(rt.env)
		return dh, nil
	}

	// Host miss: we hold the host write lease; try the distributed cache.
	if n.dht != nil {
		start := p.Now()
		data, _, ok := n.dht.Fetch(p, item)
		rt.tracer.Record(trace.Task{
			Resource: n.node.Name() + "/net", Class: trace.ClassNet, Kind: trace.KindFetch,
			Item: item, Item2: -1, Start: start, End: p.Now(),
		})
		if ok {
			hh.SetData(data)
			hh.Publish(rt.env)
			n.copyH2D(p, d, item)
			dh.SetData(data)
			dh.Publish(rt.env)
			hh.Release(rt.env)
			return dh, nil
		}
	}

	// Full load pipeline; the result lands on the device first (the last
	// stage runs there), then is copied back so the host cache — and thus
	// the distributed cache — can serve it (§4.1.2).
	data, err := n.load(p, d, item)
	if err != nil {
		dh.Abort(rt.env)
		hh.Abort(rt.env)
		return nil, err
	}
	dh.SetData(data)
	dh.Publish(rt.env)
	n.copyD2H(p, d, item)
	hh.SetData(data)
	hh.Publish(rt.env)
	hh.Release(rt.env)
	return dh, nil
}

// load executes the load pipeline ell(item) of Fig. 2: remote I/O, CPU
// parse, host-to-device transfer, and the GPU pre-processing kernel.
func (n *nodeRT) load(p *sim.Proc, d *devRT, item int) (interface{}, error) {
	rt := n.rt
	rt.loads++

	// Remote I/O through this node's I/O thread. The interval covers the
	// whole storage interaction including server-side queueing: that is
	// exactly the time the paper's I/O thread is occupied.
	p.Acquire(n.node.IO)
	start := p.Now()
	rt.cl.Storage.Read(p, rt.app.FileSize(item))
	n.node.IO.Release(rt.env)
	rt.tracer.Record(trace.Task{
		Resource: n.node.Name() + "/io", Class: trace.ClassIO, Kind: trace.KindIO,
		Item: item, Item2: -1, Start: start, End: p.Now(),
	})

	// Parse on the CPU pool.
	if pt := rt.app.ParseTime(item); pt > 0 {
		rt.useTraced(p, n.node.CPU, pt,
			n.node.Name()+"/cpu", trace.ClassCPU, trace.KindParse, item, -1)
	}

	// Transfer the parsed item to the device.
	n.copyH2D(p, d, item)

	// Pre-process on the GPU.
	if ppt := rt.app.PreprocessTime(item); ppt > 0 {
		rt.useTraced(p, d.dev.Compute, d.dev.KernelTime(ppt),
			d.dev.ID, trace.ClassGPU, trace.KindPreprocess, item, -1)
	}

	if rt.comp != nil {
		data, err := rt.comp.LoadItem(item)
		if err != nil {
			return nil, fmt.Errorf("load item %d: %w", item, err)
		}
		return data, nil
	}
	return nil, nil
}

// copyH2D charges a host-to-device transfer of one item.
func (n *nodeRT) copyH2D(p *sim.Proc, d *devRT, item int) {
	n.rt.useTraced(p, d.dev.H2D, d.dev.TransferTime(n.rt.app.ItemSize()),
		d.dev.ID+"/h2d", trace.ClassH2D, trace.KindH2D, item, -1)
}

// copyD2H charges a device-to-host transfer of one item (write-back into
// the host cache after pre-processing).
func (n *nodeRT) copyD2H(p *sim.Proc, d *devRT, item int) {
	n.rt.useTraced(p, d.dev.D2H, d.dev.TransferTime(n.rt.app.ItemSize()),
		d.dev.ID+"/d2h", trace.ClassD2H, trace.KindD2H, item, -1)
}
