package core

import (
	"fmt"
	"testing"

	"rocket/internal/pairstore"
	"rocket/internal/trace"
)

// storeDigest is the digest function the store tests share.
func storeDigest() func(int) pairstore.Digest {
	return pairstore.DigestFunc("test-store", "test", 1)
}

// warmStore runs a full n-item computation that emits into a fresh
// store and returns the store plus the run's metrics.
func warmStore(t *testing.T, n, nodes int) (*pairstore.Store, *Metrics) {
	t.Helper()
	store := pairstore.New()
	batch := pairstore.NewBatch()
	m, err := Run(Config{
		App:        defaultTestApp(n),
		Cluster:    newCluster(t, nodes),
		Seed:       1,
		StoreBatch: batch,
		ItemDigest: storeDigest(),
	})
	if err != nil {
		t.Fatal(err)
	}
	store.Merge(batch)
	return store, m
}

func TestStoreEmissionCollectsEveryPair(t *testing.T) {
	store, m := warmStore(t, 12, 1)
	want := int64(12 * 11 / 2)
	if int64(store.Len()) != want {
		t.Fatalf("store holds %d entries, want %d", store.Len(), want)
	}
	if m.StorePuts != uint64(want) || m.StoreHits != 0 {
		t.Fatalf("puts %d hits %d, want %d/0", m.StorePuts, m.StoreHits, want)
	}
	if m.StoreWriteBytes == 0 {
		t.Fatal("batch flush charged no write bytes")
	}
}

func TestDeltaRunComputesOnlyNewPairs(t *testing.T) {
	const base, n = 12, 16
	store, _ := warmStore(t, base, 1)
	batch := pairstore.NewBatch()
	m, err := Run(Config{
		App:        defaultTestApp(n),
		Cluster:    newCluster(t, 1),
		Seed:       1,
		BaseItems:  base,
		Store:      store.Snapshot(),
		StoreBatch: batch,
		ItemDigest: storeDigest(),
	})
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := uint64(pairstore.DeltaPairs(n, base))
	wantHits := uint64(base * (base - 1) / 2)
	if m.Pairs != wantDelta {
		t.Fatalf("delta run computed %d pairs, want %d", m.Pairs, wantDelta)
	}
	if m.StoreHits != wantHits || m.StoreMisses != 0 {
		t.Fatalf("hits %d misses %d, want %d/0", m.StoreHits, m.StoreMisses, wantHits)
	}
	if m.Pairs+m.StoreHits != uint64(pairs16(n)) {
		t.Fatalf("coverage %d+%d != %d", m.Pairs, m.StoreHits, pairs16(n))
	}
	if m.StoreReadBytes == 0 {
		t.Fatal("store hits charged no read bytes")
	}
	// Only the new results are emitted.
	if m.StorePuts != wantDelta {
		t.Fatalf("emitted %d, want %d", m.StorePuts, wantDelta)
	}
	// The union store now covers the grown dataset.
	store.Merge(batch)
	if int64(store.Len()) != pairs16(n) {
		t.Fatalf("merged store holds %d, want %d", store.Len(), pairs16(n))
	}
}

func pairs16(n int) int64 { return int64(n) * int64(n-1) / 2 }

func TestDeltaRunIsFasterThanFull(t *testing.T) {
	const base, n = 40, 44 // 10% growth
	store, _ := warmStore(t, base, 1)
	full, err := Run(Config{
		App:     defaultTestApp(n),
		Cluster: newCluster(t, 1),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	delta, err := Run(Config{
		App:        defaultTestApp(n),
		Cluster:    newCluster(t, 1),
		Seed:       1,
		BaseItems:  base,
		Store:      store.Snapshot(),
		ItemDigest: storeDigest(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Runtime >= full.Runtime {
		t.Fatalf("delta runtime %v not below full %v", delta.Runtime, full.Runtime)
	}
}

func TestStoreMissesAreRecomputed(t *testing.T) {
	const base, n = 10, 12
	store, _ := warmStore(t, base, 1)
	// Remove two base pairs by rebuilding a store without them: the
	// planner must detect the absences and recompute exactly those.
	d := storeDigest()
	partial := pairstore.New()
	dropped := 0
	for i := 0; i < base; i++ {
		for j := i + 1; j < base; j++ {
			if e, ok := store.Get(pairstore.PairKey(d, i, j)); ok {
				if (i == 0 && j == 1) || (i == 2 && j == 5) {
					dropped++
					continue
				}
				partial.Put(e)
			}
		}
	}
	if dropped != 2 {
		t.Fatalf("dropped %d base entries, want 2", dropped)
	}
	m, err := Run(Config{
		App:        defaultTestApp(n),
		Cluster:    newCluster(t, 1),
		Seed:       1,
		BaseItems:  base,
		Store:      partial.Snapshot(),
		ItemDigest: storeDigest(),
	})
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := uint64(pairstore.DeltaPairs(n, base)) + 2
	if m.Pairs != wantDelta || m.StoreMisses != 2 {
		t.Fatalf("pairs %d misses %d, want %d/2", m.Pairs, m.StoreMisses, wantDelta)
	}
}

func TestTrustedBaseWithoutStoreMatchesWarmStore(t *testing.T) {
	// The storeless-replay argument: a delta run with a warm store
	// holding exactly the base pairs is bit-identical to a storeless
	// run that trusts BaseItems.
	const base, n = 12, 15
	store, _ := warmStore(t, base, 2)
	run := func(snap *pairstore.Snapshot) *Metrics {
		cfg := Config{
			App:       defaultTestApp(n),
			Cluster:   newCluster(t, 2),
			Seed:      3,
			BaseItems: base,
		}
		if snap != nil {
			cfg.Store = snap
			cfg.ItemDigest = storeDigest()
		}
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	warm, trusted := run(store.Snapshot()), run(nil)
	if warm.Runtime != trusted.Runtime || warm.Pairs != trusted.Pairs ||
		warm.StoreHits != trusted.StoreHits || warm.Events != trusted.Events {
		t.Fatalf("warm %v/%d/%d/%d vs trusted %v/%d/%d/%d",
			warm.Runtime, warm.Pairs, warm.StoreHits, warm.Events,
			trusted.Runtime, trusted.Pairs, trusted.StoreHits, trusted.Events)
	}
}

func TestEmptyStoreLeavesRunByteIdentical(t *testing.T) {
	// The golden-trace invariant: attaching an empty store (no resident
	// pairs, no batch) must not perturb the run at all.
	run := func(withStore bool) *Metrics {
		cfg := Config{
			App:           defaultTestApp(14),
			Cluster:       newCluster(t, 2),
			Seed:          7,
			DetailedTrace: true,
		}
		if withStore {
			cfg.Store = pairstore.New().Snapshot()
			cfg.ItemDigest = storeDigest()
		}
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(false), run(true)
	if a.Runtime != b.Runtime || a.Events != b.Events || a.Pairs != b.Pairs {
		t.Fatalf("empty store perturbed the run: %v/%d/%d vs %v/%d/%d",
			a.Runtime, a.Events, a.Pairs, b.Runtime, b.Events, b.Pairs)
	}
	ta, tb := a.Tracer.Tasks(), b.Tracer.Tasks()
	if len(ta) != len(tb) {
		t.Fatalf("trace lengths differ: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("trace task %d differs: %+v vs %+v", i, ta[i], tb[i])
		}
	}
}

func TestFullyResidentRunComputesNothing(t *testing.T) {
	const n = 10
	store, _ := warmStore(t, n, 1)
	m, err := Run(Config{
		App:        defaultTestApp(n),
		Cluster:    newCluster(t, 1),
		Seed:       1,
		BaseItems:  n,
		Store:      store.Snapshot(),
		ItemDigest: storeDigest(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != 0 || m.StoreHits != uint64(pairs16(n)) {
		t.Fatalf("pairs %d hits %d, want 0/%d", m.Pairs, m.StoreHits, pairs16(n))
	}
	if m.Runtime <= 0 {
		t.Fatal("fully resident run charged no store read time")
	}
	if m.Loads != 0 {
		t.Fatalf("fully resident run loaded %d items", m.Loads)
	}
}

func TestStoreTraceRecordsChargedIO(t *testing.T) {
	const base, n = 10, 12
	store, _ := warmStore(t, base, 1)
	m, err := Run(Config{
		App:           defaultTestApp(n),
		Cluster:       newCluster(t, 1),
		Seed:          1,
		BaseItems:     base,
		Store:         store.Snapshot(),
		StoreBatch:    pairstore.NewBatch(),
		ItemDigest:    storeDigest(),
		DetailedTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Tracer.Count(trace.ClassIO, trace.KindStoreRead) != 1 {
		t.Fatal("store read not traced")
	}
	if m.Tracer.Count(trace.ClassIO, trace.KindStoreWrite) != 1 {
		t.Fatal("store write not traced")
	}
	if m.Tracer.BusyKind(trace.ClassIO, trace.KindStoreRead) <= 0 {
		t.Fatal("store read busy time not charged")
	}
}

func TestStoreConfigValidation(t *testing.T) {
	base := Config{App: defaultTestApp(8), Cluster: newCluster(t, 1)}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"snapshot without digest", func(c *Config) { c.Store = pairstore.New().Snapshot() }},
		{"batch without digest", func(c *Config) { c.StoreBatch = pairstore.NewBatch() }},
		{"negative base", func(c *Config) { c.BaseItems = -1 }},
	}
	for _, c := range cases {
		cfg := base
		c.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("%s: Run accepted an invalid config", c.name)
		}
	}
}

func TestDeltaDeterminism(t *testing.T) {
	const base, n = 12, 16
	store, _ := warmStore(t, base, 2)
	run := func() string {
		m, err := Run(Config{
			App:        defaultTestApp(n),
			Cluster:    newCluster(t, 2),
			Seed:       5,
			BaseItems:  base,
			Store:      store.Snapshot(),
			StoreBatch: pairstore.NewBatch(),
			ItemDigest: storeDigest(),
			DistCache:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v/%d/%d/%d/%d", m.Runtime, m.Pairs, m.StoreHits, m.Events, m.StoreWriteBytes)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("delta runs diverge: %s vs %s", a, b)
	}
}
