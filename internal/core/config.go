package core

import (
	"fmt"

	"rocket/internal/cluster"
	"rocket/internal/fault"
	"rocket/internal/obs"
	"rocket/internal/pairstore"
	"rocket/internal/sim"
)

// StealPolicy selects how an idle worker picks a victim.
type StealPolicy int

const (
	// StealHierarchical tries same-node workers first and only then a
	// random remote node (the paper's policy, §4.2).
	StealHierarchical StealPolicy = iota
	// StealFlat skips the node-local preference and always targets a
	// uniformly random node (including the local one). Used by the
	// ablation benchmarks.
	StealFlat
	// StealCacheAware extends the hierarchical policy with the paper's §7
	// future-work idea: the steal request carries a sample of the thief's
	// host-cache working set, and the victim hands over the queued task
	// whose items overlap it the most, enabling more reuse after a steal.
	StealCacheAware
)

// residentSampleMax bounds the working-set sample attached to cache-aware
// steal requests (and its wire size: 8 bytes per entry).
const residentSampleMax = 128

// Config configures one runtime execution.
type Config struct {
	// App is the application to run (required).
	App Application
	// Cluster is the platform to run on (required). A cluster must not be
	// reused across runs: it accumulates I/O and network accounting.
	Cluster *cluster.Cluster

	// DeviceSlots overrides the per-device cache capacity. 0 derives it
	// from device memory / ItemSize, capped at NumItems.
	DeviceSlots int
	// HostSlots overrides the per-node host cache capacity. 0 derives it
	// from NodeSpec.HostCacheBytes / ItemSize, capped at NumItems.
	// -1 disables the host cache entirely (Fig. 9's device-limit regime).
	HostSlots int

	// EvictRandom switches the device and host caches from LRU to random
	// eviction (ablation of the paper's §4.1.1 policy).
	EvictRandom bool

	// DistCache enables the third-level distributed cache.
	DistCache bool
	// Hops is the paper's h parameter (max candidates per lookup);
	// default 1, the value used for most of the evaluation.
	Hops int

	// ConcurrentJobs is the per-device limit on simultaneously submitted
	// jobs (the back-pressure knob of §4.2). 0 derives a safe default.
	ConcurrentJobs int
	// LeafPairs is the divide-and-conquer leaf threshold: regions with at
	// most this many pairs are processed directly. Default 16.
	LeafPairs int64

	// PairFilter, when non-nil, restricts the computation to pairs for
	// which it returns true — the paper's §7 "user-defined heuristics to
	// reduce the number of pairs" extension. It must be deterministic.
	PairFilter func(i, j int) bool

	// PrewarmHost pre-fills each node's host cache with the given
	// fraction [0, 1] of the items it would plausibly hold from a
	// previous run (item i lands on node i mod p) — the paper's §7
	// "persistent caches that reuse data from previous runs" extension.
	PrewarmHost float64

	// BaseItems declares the store-resident prefix of the data set: pairs
	// with both items below BaseItems were computed by a previous run
	// over the first BaseItems items and are served from the pair store
	// instead of recomputed — the incremental (delta) mode. The run then
	// computes only the new-vs-all pair set. With Store attached each
	// planned pair is verified against the snapshot and absences are
	// recomputed; without it the base region is trusted, which is the
	// storeless-replay mode (bit-identical as long as the original store
	// held at least the base pairs). 0 disables delta planning.
	BaseItems int
	// Store is an immutable pair-store snapshot consulted by the delta
	// prefilter. Requires ItemDigest. A nil Store with BaseItems > 0
	// trusts the base region (see BaseItems).
	Store *pairstore.Snapshot
	// StoreBatch, when non-nil, collects every computed pair result (in
	// completion order) for a post-run merge into a pair store. Requires
	// ItemDigest. The batch flush is charged as store write I/O.
	StoreBatch *pairstore.Batch
	// ItemDigest derives the content digest of one item for store keys;
	// see pairstore.DigestFunc.
	ItemDigest func(item int) pairstore.Digest
	// OnResult, when non-nil, is invoked in scheduler context once per
	// computed pair at completion (value is nil for cost-model runs).
	// It must not block.
	OnResult func(i, j int, value interface{})

	// Seed drives all randomized behavior (durations, victim selection).
	Seed uint64

	// DetailedTrace retains every task interval for timeline rendering
	// (the paper's profiling flag). Aggregate busy times are always kept.
	DetailedTrace bool
	// Spans, when non-nil, receives the run's task intervals as
	// virtual-time spans in the flight recorder once at metrics
	// aggregation (implies DetailedTrace). Nil — the default — keeps
	// the observability layer entirely off the hot path.
	Spans *obs.Recorder
	// CollectResults stores comparison outputs (real-kernel runs).
	CollectResults bool
	// ThroughputWindow, when positive, records per-device completed-pair
	// counts bucketed by this window (Fig. 14). Zero disables.
	ThroughputWindow sim.Time

	// StealBackoff is the idle wait after a failed steal round.
	// Default 100us.
	StealBackoff sim.Time
	// StealPolicy selects victim selection; default StealHierarchical.
	StealPolicy StealPolicy

	// Faults, when non-nil and non-empty, injects the deterministic fault
	// schedule (node crashes/restarts, straggler GPUs, degraded or
	// partitioned links) into the run and enables steal-based recovery.
	// With a nil or empty schedule every fault path is dormant and the
	// run is bit-identical to a failure-free build.
	Faults *fault.Schedule

	// FaultProbes are timed health observations armed inside virtual time
	// (scenario assertions). Probes sharing a timestamp with a fault event
	// observe the post-event world. With no schedule armed every probe
	// observes alive. Nil leaves the event stream untouched.
	FaultProbes []fault.Probe

	// ctrlMsgSize is the wire size of control messages.
	ctrlMsgSize int64
}

const defaultCtrlMsgSize = 256

// normalize validates cfg and fills in derived defaults, returning the
// ready-to-use copy.
func (cfg Config) normalize() (Config, error) {
	if cfg.App == nil {
		return cfg, fmt.Errorf("core: Config.App is required")
	}
	if cfg.Cluster == nil {
		return cfg, fmt.Errorf("core: Config.Cluster is required")
	}
	n := cfg.App.NumItems()
	if n < 2 {
		return cfg, fmt.Errorf("core: application has %d items; need at least 2", n)
	}
	if cfg.App.ItemSize() <= 0 {
		return cfg, fmt.Errorf("core: ItemSize must be positive")
	}
	if cfg.Hops == 0 {
		cfg.Hops = 1
	}
	if cfg.Hops < 0 {
		return cfg, fmt.Errorf("core: negative Hops %d", cfg.Hops)
	}
	if cfg.LeafPairs == 0 {
		cfg.LeafPairs = 16
	}
	if cfg.LeafPairs < 1 {
		return cfg, fmt.Errorf("core: LeafPairs must be >= 1")
	}
	if cfg.Spans != nil {
		// The flight recorder is fed from the detailed task list at
		// aggregation time, so recording spans requires retaining it.
		cfg.DetailedTrace = true
	}
	if cfg.StealBackoff == 0 {
		cfg.StealBackoff = sim.Micros(100)
	}
	if cfg.StealBackoff < 0 {
		return cfg, fmt.Errorf("core: negative StealBackoff")
	}
	if cfg.DeviceSlots < 0 {
		return cfg, fmt.Errorf("core: negative DeviceSlots %d", cfg.DeviceSlots)
	}
	if cfg.HostSlots < -1 {
		return cfg, fmt.Errorf("core: HostSlots must be >= -1, got %d", cfg.HostSlots)
	}
	if cfg.ctrlMsgSize == 0 {
		cfg.ctrlMsgSize = defaultCtrlMsgSize
	}
	if cfg.PrewarmHost < 0 || cfg.PrewarmHost > 1 {
		return cfg, fmt.Errorf("core: PrewarmHost %v outside [0, 1]", cfg.PrewarmHost)
	}
	if cfg.BaseItems < 0 {
		return cfg, fmt.Errorf("core: negative BaseItems %d", cfg.BaseItems)
	}
	if len(cfg.Cluster.Nodes) == 1 {
		// The distributed cache needs peers.
		cfg.DistCache = false
	}
	return cfg, nil
}

// deviceSlotsFor returns the level-1 capacity for a device with the given
// memory.
func (cfg Config) deviceSlotsFor(memBytes int64) int {
	n := cfg.App.NumItems()
	slots := cfg.DeviceSlots
	if slots == 0 {
		slots = int(memBytes / cfg.App.ItemSize())
	}
	if slots > n {
		slots = n
	}
	if slots < 2 {
		slots = 2 // a comparison needs two resident items
	}
	return slots
}

// hostSlotsFor returns the level-2 capacity for a node, or 0 when the host
// cache is disabled.
func (cfg Config) hostSlotsFor(hostCacheBytes int64) int {
	if cfg.HostSlots == -1 {
		return 0
	}
	n := cfg.App.NumItems()
	slots := cfg.HostSlots
	if slots == 0 {
		slots = int(hostCacheBytes / cfg.App.ItemSize())
	}
	if slots > n {
		slots = n
	}
	if slots != 0 && slots < 2 {
		slots = 2
	}
	return slots
}

// jobLimitFor derives the per-device concurrent-job limit, bounded so
// that pinned cache slots can never deadlock the pipelines. Every job
// pins at most two slots per level and waits for at most one more while
// holding at most one; with J jobs and S slots, J <= S-1 guarantees an
// unpinned (evictable) slot always exists for some waiting job, so the
// system always makes progress. The host cache is shared by all of a
// node's devices, hence the division by numGPUs. The limit is per device
// (not per node) so that a fast GPU's submission rate is throttled only
// by its own completions, which is what lets work-stealing balance
// heterogeneous nodes.
func (cfg Config) jobLimitFor(devSlots, hostSlots, numGPUs int) int {
	limit := cfg.ConcurrentJobs
	if limit == 0 {
		limit = 48
	}
	if maxByDev := devSlots - 1; limit > maxByDev {
		limit = maxByDev
	}
	if hostSlots > 0 {
		if maxByHost := (hostSlots - 1) / numGPUs; limit > maxByHost {
			limit = maxByHost
		}
	}
	if limit < 1 {
		limit = 1
	}
	return limit
}
