package core

import (
	"encoding/json"
	"fmt"

	"rocket/internal/pairs"
	"rocket/internal/pairstore"
	"rocket/internal/trace"
)

// storePlan is one run's resolved incremental plan: which pairs are
// served from the persistent pair store instead of computed, what the
// serving costs in charged I/O, and where computed results are emitted.
//
// The plan is pure function of (BaseItems, PairFilter, snapshot
// contents): pairs with both items below BaseItems are planned
// resident; with a snapshot attached each planned pair is verified and
// absences are recomputed, without a snapshot the base region is
// trusted (the storeless-replay mode — see DESIGN.md §8 for why a warm
// store holding at least the base pairs makes the two modes
// bit-identical). Everything here is decided before the first event
// fires, so an empty plan (zero hits, zero puts) leaves the event
// stream byte-identical to a storeless run.
type storePlan struct {
	base   int
	digest func(int) pairstore.Digest
	snap   *pairstore.Snapshot
	batch  *pairstore.Batch
	// missing holds planned-resident pairs the snapshot did not contain;
	// they are recomputed (and re-emitted). Almost always empty.
	missing map[pairIJ]struct{}
	// pruneOK allows O(1) whole-region pruning: every pair of the base
	// region is resident and no user filter intersects it.
	pruneOK bool
	version int

	hits       int64
	misses     int64
	entryBytes int64
	readBytes  int64
	writeBytes int64
}

// buildStorePlan resolves the incremental plan, or returns (nil, nil)
// when the configuration has no store participation at all.
func buildStorePlan(cfg Config) (*storePlan, error) {
	if cfg.BaseItems == 0 && cfg.Store == nil && cfg.StoreBatch == nil && cfg.OnResult == nil {
		return nil, nil
	}
	if (cfg.Store != nil || cfg.StoreBatch != nil) && cfg.ItemDigest == nil {
		return nil, fmt.Errorf("core: Store/StoreBatch require Config.ItemDigest")
	}
	p := &storePlan{
		base:       cfg.BaseItems,
		digest:     cfg.ItemDigest,
		snap:       cfg.Store,
		batch:      cfg.StoreBatch,
		version:    cfg.App.NumItems(),
		entryBytes: cfg.App.ResultSize() + pairstore.EntryOverheadBytes,
	}
	if n := cfg.App.NumItems(); p.base > n {
		p.base = n
	}
	if p.base > 0 {
		p.missing = make(map[pairIJ]struct{})
		// Probe the snapshot in chunks so the store lock is taken once
		// per batch, not once per pair (the base region is O(base²)).
		// HasMany sorts each chunk internally and resolves it against
		// sealed columnar segments with one merge-walk per segment —
		// predicate pushdown by fence and bloom — so larger chunks also
		// mean fewer block decodes per resident pair.
		const probeChunk = 4096
		var (
			keys = make([]pairstore.Key, 0, probeChunk)
			prs  = make([]pairIJ, 0, probeChunk)
			res  = make([]bool, probeChunk)
		)
		flush := func() {
			if len(keys) == 0 {
				return
			}
			p.snap.HasMany(keys, res)
			for k := range keys {
				if res[k] {
					p.hits++
				} else {
					p.missing[prs[k]] = struct{}{}
					p.misses++
				}
			}
			keys, prs = keys[:0], prs[:0]
		}
		pairs.Region{RowLo: 0, RowHi: p.base, ColLo: 0, ColHi: p.base}.Each(func(i, j int) {
			if cfg.PairFilter != nil && !cfg.PairFilter(i, j) {
				return
			}
			if p.snap == nil {
				p.hits++ // trust mode: no snapshot to verify against
				return
			}
			keys = append(keys, pairstore.PairKey(p.digest, i, j))
			prs = append(prs, pairIJ{i, j})
			if len(keys) == probeChunk {
				flush()
			}
		})
		flush()
		p.pruneOK = len(p.missing) == 0 && cfg.PairFilter == nil
		p.readBytes = p.hits * p.entryBytes
	}
	return p, nil
}

// resident reports whether pair (i, j) is served from the store.
func (p *storePlan) resident(i, j int) bool {
	if i >= p.base || j >= p.base {
		return false
	}
	if len(p.missing) == 0 {
		return true
	}
	_, miss := p.missing[pairIJ{i, j}]
	return !miss
}

// pruneRegion reports whether the whole region is store-resident and
// can be dropped before subdivision.
func (p *storePlan) pruneRegion(r pairs.Region) bool {
	return p.pruneOK && r.RowHi <= p.base && r.ColHi <= p.base
}

// emit records one computed pair into the batch (when attached) and
// invokes the result-emission hook.
func (rt *runtime) emitResult(i, j int, value interface{}) {
	if rt.cfg.OnResult != nil {
		rt.cfg.OnResult(i, j, value)
	}
	p := rt.plan
	if p == nil || p.batch == nil {
		return
	}
	e := pairstore.Entry{Key: pairstore.PairKey(p.digest, i, j), Version: p.version}
	if value != nil {
		if raw, err := json.Marshal(value); err == nil {
			e.Value = raw
		}
		// An unmarshalable result degrades to storing the completion
		// fact only; the charged write cost is modeled from ResultSize
		// either way.
	}
	p.batch.Add(e)
}

// pairOK reports whether pair (i, j) is to be computed by this run:
// it passes the user filter and is not served from the store.
func (rt *runtime) pairOK(i, j int) bool {
	if rt.cfg.PairFilter != nil && !rt.cfg.PairFilter(i, j) {
		return false
	}
	return rt.plan == nil || !rt.plan.resident(i, j)
}

// chargeStoreRead schedules the store scan that serves the resident
// pairs: one batched read of the resident entries through node 0's I/O
// thread and the shared storage server, exactly like an input-file
// read, so the cost of warm-starting shows up on the same axes as
// every other cost. Scheduled before the workers start so the scan is
// first in line for the I/O thread at t=0.
func (rt *runtime) chargeStoreRead() {
	n := rt.nodes[0]
	rt.env.At(0, func() {
		n.node.IO.AcquireFunc(rt.env, func() {
			start := rt.env.Now()
			rt.cl.Storage.ReadFunc(rt.env, rt.plan.readBytes, func() {
				n.node.IO.Release(rt.env)
				rt.tracer.Record(trace.Task{
					Resource: n.node.Name() + "/store", Class: trace.ClassIO, Kind: trace.KindStoreRead,
					Item: -1, Item2: -1, Start: start, End: rt.env.Now(),
				})
			})
		})
	})
}

// flushStore charges the append of the emitted batch to the store's
// segment log: one batched write through node 0's I/O thread and the
// shared storage server. It runs after the final pair completes (the
// computation is done; the flush extends the reported runtime of
// fault-free runs, modeling the cost of making results durable).
func (rt *runtime) flushStore() {
	p := rt.plan
	if p == nil || p.batch.Len() == 0 {
		return
	}
	bytes := int64(p.batch.Len()) * p.entryBytes
	n := rt.nodes[0]
	n.node.IO.AcquireFunc(rt.env, func() {
		start := rt.env.Now()
		rt.cl.Storage.WriteFunc(rt.env, bytes, func() {
			n.node.IO.Release(rt.env)
			p.writeBytes = bytes
			rt.tracer.Record(trace.Task{
				Resource: n.node.Name() + "/store", Class: trace.ClassIO, Kind: trace.KindStoreWrite,
				Item: -1, Item2: -1, Start: start, End: rt.env.Now(),
			})
		})
	})
}
