package core

import (
	"errors"
	"testing"

	"rocket/internal/fault"
	"rocket/internal/gpu"
	"rocket/internal/pairs"
	"rocket/internal/sim"
)

// faultRun executes the default test app with a fault schedule.
func faultRun(t *testing.T, n, nodes int, s *fault.Schedule, mutate func(*Config)) (*Metrics, error) {
	t.Helper()
	cfg := Config{App: defaultTestApp(n), Cluster: newCluster(t, nodes), Seed: 1, Faults: s}
	if mutate != nil {
		mutate(&cfg)
	}
	return Run(cfg)
}

// A mid-run node crash must complete the job via re-stolen regions with no
// panic and no hung events — the acceptance scenario.
func TestCrashMidRunCompletesViaRecovery(t *testing.T) {
	base, err := faultRun(t, 32, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	crashAt := base.Runtime / 3
	s := new(fault.Schedule).Crash(1, crashAt)
	m, err := faultRun(t, 32, 2, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != uint64(pairs.TotalPairs(32)) {
		t.Fatalf("pairs = %d, want %d", m.Pairs, pairs.TotalPairs(32))
	}
	if m.Crashes != 1 {
		t.Fatalf("crashes = %d", m.Crashes)
	}
	if m.RecoveredRegions == 0 || m.RecoveredPairs == 0 {
		t.Fatalf("no work recovered: regions=%d pairs=%d", m.RecoveredRegions, m.RecoveredPairs)
	}
	if m.Runtime <= base.Runtime {
		t.Fatalf("crash run (%v) not slower than failure-free (%v)", m.Runtime, base.Runtime)
	}
}

// Crashing the master (which owns the root region) right at the start
// moves the whole computation to the survivor.
func TestMasterCrashAtStartRecovered(t *testing.T) {
	s := new(fault.Schedule).Crash(0, 0)
	m, err := faultRun(t, 24, 2, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != uint64(pairs.TotalPairs(24)) {
		t.Fatalf("pairs = %d", m.Pairs)
	}
	// The root region (all pairs) must have been re-exposed.
	if m.RecoveredPairs != pairs.TotalPairs(24) {
		t.Fatalf("recovered pairs = %d, want %d", m.RecoveredPairs, pairs.TotalPairs(24))
	}
}

// With every node dead and no restart scheduled the run must fail with
// ErrPartitionLost instead of hanging.
func TestAllNodesCrashedPartitionLost(t *testing.T) {
	s := new(fault.Schedule).Crash(0, sim.Millis(10))
	_, err := faultRun(t, 16, 1, s, nil)
	if !errors.Is(err, ErrPartitionLost) {
		t.Fatalf("err = %v, want ErrPartitionLost", err)
	}
	s2 := new(fault.Schedule).Crash(0, sim.Millis(10)).Crash(1, sim.Millis(20))
	_, err = faultRun(t, 24, 2, s2, nil)
	if !errors.Is(err, ErrPartitionLost) {
		t.Fatalf("err = %v, want ErrPartitionLost", err)
	}
}

// A crashed node that restarts rejoins cold and helps finish the job; a
// partition that is temporarily all-dead survives if a restart is pending.
func TestCrashThenRestartCompletes(t *testing.T) {
	s := new(fault.Schedule).
		Crash(1, sim.Millis(50)).
		Restart(1, sim.Millis(120))
	m, err := faultRun(t, 32, 2, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Crashes != 1 || m.Restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d", m.Crashes, m.Restarts)
	}
	if m.Pairs != uint64(pairs.TotalPairs(32)) {
		t.Fatalf("pairs = %d", m.Pairs)
	}

	// Single node: crash with a scheduled restart must not be partition
	// loss; the orphaned work waits and the restarted node adopts it.
	s2 := new(fault.Schedule).
		Crash(0, sim.Millis(30)).
		Restart(0, sim.Millis(90))
	m2, err := faultRun(t, 16, 1, s2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Pairs != uint64(pairs.TotalPairs(16)) {
		t.Fatalf("pairs = %d after restart-only recovery", m2.Pairs)
	}
	if m2.Restarts != 1 {
		t.Fatalf("restarts = %d", m2.Restarts)
	}
}

// Crash recovery must also work with the distributed cache active:
// lookups touching the dead node resolve as misses, stale replies are
// absorbed, and the run completes.
func TestCrashWithDistributedCache(t *testing.T) {
	mutate := func(cfg *Config) {
		cfg.DistCache = true
		cfg.DeviceSlots = 8
		cfg.HostSlots = 12
	}
	base, err := faultRun(t, 48, 4, nil, mutate)
	if err != nil {
		t.Fatal(err)
	}
	s := new(fault.Schedule).Crash(2, base.Runtime/4).Crash(3, base.Runtime/2)
	m, err := faultRun(t, 48, 4, s, mutate)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != uint64(pairs.TotalPairs(48)) {
		t.Fatalf("pairs = %d", m.Pairs)
	}
	if m.Crashes != 2 {
		t.Fatalf("crashes = %d", m.Crashes)
	}
	if m.DroppedMessages == 0 {
		t.Fatal("no fabric drops despite two crashes under DHT traffic")
	}
}

// A straggler GPU inflates the runtime but never the result; restoring it
// mid-run keeps the balance via stealing.
func TestStragglerGPUInflatesRuntime(t *testing.T) {
	mutate := func(cfg *Config) { cfg.ThroughputWindow = 0 }
	base, err := faultRun(t, 32, 2, nil, mutate)
	if err != nil {
		t.Fatal(err)
	}
	s := new(fault.Schedule).SlowGPU(0, 0, 0, 8)
	m, err := faultRun(t, 32, 2, s, mutate)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != base.Pairs {
		t.Fatalf("pairs = %d, want %d", m.Pairs, base.Pairs)
	}
	if m.Runtime <= base.Runtime {
		t.Fatalf("straggler run (%v) not slower than baseline (%v)", m.Runtime, base.Runtime)
	}
}

// A partitioned then healed link stalls remote stealing temporarily; the
// run completes and the drops are accounted.
func TestLinkPartitionHealsAndCompletes(t *testing.T) {
	s := new(fault.Schedule).
		CutLink(0, 1, sim.Millis(10)).
		RestoreLink(0, 1, sim.Millis(200))
	m, err := faultRun(t, 32, 2, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != uint64(pairs.TotalPairs(32)) {
		t.Fatalf("pairs = %d", m.Pairs)
	}
	if m.DroppedMessages == 0 {
		t.Fatal("no drops recorded across the partition window")
	}
}

// The same fault schedule must be bit-deterministic across runs.
func TestFaultRunDeterminism(t *testing.T) {
	mk := func() *Metrics {
		s := new(fault.Schedule).
			Crash(1, sim.Millis(40)).
			Restart(1, sim.Millis(150)).
			SlowGPU(0, 0, sim.Millis(20), 3).
			RestoreGPU(0, 0, sim.Millis(100)).
			DegradeLink(0, 2, sim.Millis(10), 2, 4)
		m, err := faultRun(t, 40, 3, s, func(cfg *Config) {
			cfg.DistCache = true
			cfg.DeviceSlots = 10
			cfg.HostSlots = 16
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := mk(), mk()
	if a.Runtime != b.Runtime || a.Loads != b.Loads ||
		a.RemoteSteals != b.RemoteSteals || a.DroppedMessages != b.DroppedMessages ||
		a.RecoveredPairs != b.RecoveredPairs || a.Events != b.Events {
		t.Fatalf("fault runs diverge:\n%+v\nvs\n%+v", a, b)
	}
}

// With an empty (or nil) schedule every fault path must be dormant: the
// run is metric-identical to a failure-free one.
func TestEmptyScheduleIdenticalToNoFaults(t *testing.T) {
	run := func(s *fault.Schedule) *Metrics {
		m, err := faultRun(t, 32, 2, s, func(cfg *Config) { cfg.DistCache = true })
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	none, empty := run(nil), run(new(fault.Schedule))
	if none.Runtime != empty.Runtime || none.Events != empty.Events ||
		none.Loads != empty.Loads || none.NetBytes != empty.NetBytes {
		t.Fatalf("empty schedule perturbed the run:\n%+v\nvs\n%+v", none, empty)
	}
	if empty.Crashes != 0 || empty.DroppedMessages != 0 || empty.RecoveredRegions != 0 {
		t.Fatalf("fault counters nonzero without faults: %+v", empty)
	}
}

// An invalid schedule is rejected before execution.
func TestFaultScheduleValidated(t *testing.T) {
	s := new(fault.Schedule).Crash(9, 0)
	if _, err := faultRun(t, 8, 2, s, nil); err == nil {
		t.Fatal("out-of-range crash accepted")
	}
	s2 := new(fault.Schedule).SlowGPU(0, 3, 0, 2)
	if _, err := faultRun(t, 8, 2, s2, nil); err == nil {
		t.Fatal("out-of-range GPU accepted")
	}
}

// Heterogeneous platform + repeated crash/restart cycles of the same node.
func TestRepeatedCrashRestartCycles(t *testing.T) {
	cl := newCluster(t, 2, gpu.K20m, gpu.RTX2080Ti)
	s := new(fault.Schedule).
		Crash(1, sim.Millis(20)).
		Restart(1, sim.Millis(60)).
		Crash(1, sim.Millis(100)).
		Restart(1, sim.Millis(140))
	m, err := Run(Config{App: defaultTestApp(32), Cluster: cl, Seed: 3, Faults: s})
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != uint64(pairs.TotalPairs(32)) {
		t.Fatalf("pairs = %d", m.Pairs)
	}
	if m.Crashes != 2 || m.Restarts != 2 {
		t.Fatalf("crashes=%d restarts=%d", m.Crashes, m.Restarts)
	}
}

// Regression (review finding): a full fabric partition with every node
// alive used to hang the run — dropped dht.Reply and stealReply messages
// were attributed to dead addressees, so a live requester's fetch (and a
// live thief's steal) never resolved and the job chain parked forever on
// its cache leases. Drops on partitioned links must resolve the pending
// operation on the still-alive endpoint.
func TestFullPartitionWithLiveNodesCompletes(t *testing.T) {
	s := new(fault.Schedule).
		CutLink(0, 1, sim.Micros(125)).
		CutLink(0, 2, sim.Micros(125)).
		CutLink(1, 2, sim.Micros(125))
	m, err := faultRun(t, 40, 3, s, func(cfg *Config) {
		cfg.DistCache = true
		cfg.DeviceSlots = 10
		cfg.HostSlots = 16
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != uint64(pairs.TotalPairs(40)) {
		t.Fatalf("pairs = %d, want %d", m.Pairs, pairs.TotalPairs(40))
	}
	if m.DroppedMessages == 0 {
		t.Fatal("no drops recorded across a full partition")
	}
	// No node crashed, so nothing should have needed crash recovery.
	if m.Crashes != 0 {
		t.Fatalf("crashes = %d", m.Crashes)
	}
}

// Regression (review finding): RecoveredPairs must honor PairFilter —
// harvested regions cover the full matrix, but only filter-passing pairs
// are work the run owes, so the metric must never exceed the total.
func TestRecoveredPairsHonorPairFilter(t *testing.T) {
	even := func(i, j int) bool { return (i+j)%2 == 0 }
	var want int64
	for i := 0; i < 24; i++ {
		for j := i + 1; j < 24; j++ {
			if even(i, j) {
				want++
			}
		}
	}
	s := new(fault.Schedule).Crash(0, 0) // root region harvested whole
	m, err := faultRun(t, 24, 2, s, func(cfg *Config) { cfg.PairFilter = even })
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs != uint64(want) {
		t.Fatalf("pairs = %d, want %d", m.Pairs, want)
	}
	if m.RecoveredPairs != want {
		t.Fatalf("recovered pairs = %d, want %d (filtered total)", m.RecoveredPairs, want)
	}
}
