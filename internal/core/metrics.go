package core

import (
	"sort"

	"rocket/internal/cache"
	"rocket/internal/dht"
	"rocket/internal/obs"
	"rocket/internal/sim"
	"rocket/internal/stats"
	"rocket/internal/trace"
)

// Metrics is the outcome of one runtime execution.
type Metrics struct {
	// Runtime is the start-to-end virtual run time.
	Runtime sim.Time
	// Pairs is the number of comparisons performed (always n choose 2 on
	// success).
	Pairs uint64
	// Loads is the number of full load-pipeline executions across the
	// cluster; R = Loads / n (paper §6.1).
	Loads uint64
	// R is the relative number of loads, the paper's data-reuse metric.
	R float64

	// IOBytes and IOReads account traffic to the storage server. IOBytes
	// covers both directions (input-file and store reads, plus store
	// segment-log writes — they contend on the same server); IOReads
	// counts read requests only.
	IOBytes int64
	IOReads uint64
	// NetBytes is total inter-node traffic (distributed cache + stealing).
	NetBytes int64

	// DevCache and HostCache aggregate slot-cache statistics over all
	// devices / nodes.
	DevCache  cache.Stats
	HostCache cache.Stats
	// DHT aggregates distributed-cache outcomes over all nodes (zero when
	// the distributed cache is disabled).
	DHT dht.Metrics

	// Work-stealing counters.
	LocalSteals  uint64
	RemoteSteals uint64
	FailedSteals uint64

	// Fault-injection outcomes; all zero in failure-free runs.
	Crashes  uint64
	Restarts uint64
	// DroppedMessages counts fabric messages discarded because an
	// endpoint was dead or a link partitioned.
	DroppedMessages uint64
	// StaleStealReplies counts steal replies that arrived after a crash
	// invalidated their pending request (their regions are re-exposed).
	StaleStealReplies uint64
	// RecoveredRegions/RecoveredPairs measure the work re-exposed for
	// stealing by crash recovery.
	RecoveredRegions uint64
	RecoveredPairs   int64

	// Pair-store outcomes; all zero for runs without store participation.
	// StoreHits is the number of pairs served from the store instead of
	// computed (Pairs + StoreHits covers the full workload); StoreMisses
	// counts planned-resident pairs the snapshot did not contain
	// (recomputed); StorePuts counts results emitted for merge.
	StoreHits   uint64
	StoreMisses uint64
	StorePuts   uint64
	// StoreReadBytes and StoreWriteBytes are the charged store I/O.
	StoreReadBytes  int64
	StoreWriteBytes int64
	// BaseItems echoes the delta plan's resident prefix (0 = full run).
	BaseItems int

	// Tracer holds per-class busy times (and task timelines when detailed
	// tracing was enabled).
	Tracer *trace.Tracer

	// DeviceThroughput maps device ID to its completed-pairs time series
	// (only when Config.ThroughputWindow > 0).
	DeviceThroughput map[string]*stats.TimeSeries
	// DeviceIDs lists device IDs in deterministic order.
	DeviceIDs []string

	// DeviceSlots and HostSlots record the derived capacities of node 0
	// (for reporting).
	DeviceSlots int
	HostSlots   int
	// JobLimit records the derived per-device concurrent-job limit.
	JobLimit int

	// Results holds comparison outputs for real-kernel runs with
	// CollectResults set.
	Results []Result

	// Events is the number of simulation events processed (cost metric).
	Events uint64
}

// Throughput returns average pairs/second over the whole run.
func (m *Metrics) Throughput() float64 {
	secs := m.Runtime.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(m.Pairs) / secs
}

// aggregate gathers per-node state into the metrics after a run.
func (rt *runtime) aggregate() *Metrics {
	m := &Metrics{
		Runtime:           rt.env.Now(),
		Pairs:             uint64(rt.pairsDone),
		Loads:             rt.loads,
		IOBytes:           rt.cl.Storage.BytesRead() + rt.cl.Storage.BytesWritten(),
		IOReads:           rt.cl.Storage.Reads(),
		NetBytes:          rt.cl.Net.BytesSent(),
		Tracer:            rt.tracer,
		LocalSteals:       rt.localSteals,
		RemoteSteals:      rt.remoteSteals,
		FailedSteals:      rt.failedSteals,
		Crashes:           rt.crashes,
		Restarts:          rt.restarts,
		DroppedMessages:   rt.cl.Net.Dropped(),
		StaleStealReplies: rt.staleStealReplies,
		RecoveredRegions:  rt.recoveredRegions,
		RecoveredPairs:    rt.recoveredPairs,
		Results:           rt.results,
		DeviceThroughput:  rt.throughput,
		Events:            rt.env.EventsProcessed(),
		JobLimit:          rt.nodes[0].devs[0].jobTokens.Cap(),
	}
	if p := rt.plan; p != nil {
		m.StoreHits = uint64(p.hits)
		m.StoreMisses = uint64(p.misses)
		m.StorePuts = uint64(p.batch.Len())
		m.StoreReadBytes = p.readBytes
		m.StoreWriteBytes = p.writeBytes
		m.BaseItems = p.base
	}
	if rt.inj != nil && rt.finished {
		// Fault events armed beyond completion still drain through the
		// event loop; report the pinned completion time instead.
		m.Runtime = rt.finishedAt
	}
	m.R = float64(m.Loads) / float64(rt.cfg.App.NumItems())
	m.DHT.HitAtHop = make([]uint64, rt.cfg.Hops)
	for _, n := range rt.nodes {
		if n.host != nil {
			hs := n.host.Stats()
			m.HostCache.Hits += hs.Hits
			m.HostCache.WaitHits += hs.WaitHits
			m.HostCache.Misses += hs.Misses
			m.HostCache.Evictions += hs.Evictions
			m.HostCache.Stalls += hs.Stalls
		}
		for _, d := range n.devs {
			ds := d.cache.Stats()
			m.DevCache.Hits += ds.Hits
			m.DevCache.WaitHits += ds.WaitHits
			m.DevCache.Misses += ds.Misses
			m.DevCache.Evictions += ds.Evictions
			m.DevCache.Stalls += ds.Stalls
			m.DeviceIDs = append(m.DeviceIDs, d.dev.ID)
		}
		if n.dht != nil {
			dm := n.dht.Metrics()
			m.DHT.Requests += dm.Requests
			m.DHT.Misses += dm.Misses
			m.DHT.StaleReplies += dm.StaleReplies
			for i, h := range dm.HitAtHop {
				m.DHT.HitAtHop[i] += h
			}
		}
	}
	sort.Strings(m.DeviceIDs)
	m.DeviceSlots = rt.nodes[0].devs[0].cache.Cap()
	if rt.nodes[0].host != nil {
		m.HostSlots = rt.nodes[0].host.Cap()
	}
	// Bridge the detailed task list into the flight recorder in one shot:
	// the hot path keeps recording into the tracer exactly as before, so
	// span collection adds zero per-event work inside the run.
	obs.FromTasks(rt.cfg.Spans, 0, rt.tracer.Tasks())
	return m
}
