package core

import "rocket/internal/cache"

// MetricsSummary is the stable wire form of a run's Metrics: the curated
// scalar outcomes, with explicit JSON field names so serialized results
// can be compared byte-for-byte across runs (the online scheduler's
// replay-fidelity argument) and consumed by HTTP clients. Large or
// pointer-heavy diagnostics (tracer timelines, throughput series) are
// deliberately excluded.
type MetricsSummary struct {
	RuntimeNS int64   `json:"runtime_ns"`
	Pairs     uint64  `json:"pairs"`
	Loads     uint64  `json:"loads"`
	R         float64 `json:"r"`

	IOBytes  int64  `json:"io_bytes"`
	IOReads  uint64 `json:"io_reads"`
	NetBytes int64  `json:"net_bytes"`

	DevCacheHitRate  float64 `json:"dev_cache_hit_rate"`
	HostCacheHitRate float64 `json:"host_cache_hit_rate"`

	LocalSteals  uint64 `json:"local_steals"`
	RemoteSteals uint64 `json:"remote_steals"`
	FailedSteals uint64 `json:"failed_steals"`

	Crashes          uint64 `json:"crashes,omitempty"`
	Restarts         uint64 `json:"restarts,omitempty"`
	DroppedMessages  uint64 `json:"dropped_messages,omitempty"`
	RecoveredRegions uint64 `json:"recovered_regions,omitempty"`

	// Pair-store provenance; omitted for runs without store
	// participation, so their documents are unchanged.
	StoreHits       uint64 `json:"store_hits,omitempty"`
	StoreMisses     uint64 `json:"store_misses,omitempty"`
	StorePuts       uint64 `json:"store_puts,omitempty"`
	StoreReadBytes  int64  `json:"store_read_bytes,omitempty"`
	StoreWriteBytes int64  `json:"store_write_bytes,omitempty"`
	BaseItems       int    `json:"base_items,omitempty"`
}

// hitRate folds a slot cache's counters into hits over lookups; caches
// that were never consulted report 0.
func hitRate(s cache.Stats) float64 {
	lookups := s.Hits + s.WaitHits + s.Misses
	if lookups == 0 {
		return 0
	}
	return float64(s.Hits+s.WaitHits) / float64(lookups)
}

// Summary extracts the stable wire form of m.
func (m *Metrics) Summary() MetricsSummary {
	return MetricsSummary{
		RuntimeNS:        int64(m.Runtime),
		Pairs:            m.Pairs,
		Loads:            m.Loads,
		R:                m.R,
		IOBytes:          m.IOBytes,
		IOReads:          m.IOReads,
		NetBytes:         m.NetBytes,
		DevCacheHitRate:  hitRate(m.DevCache),
		HostCacheHitRate: hitRate(m.HostCache),
		LocalSteals:      m.LocalSteals,
		RemoteSteals:     m.RemoteSteals,
		FailedSteals:     m.FailedSteals,
		Crashes:          m.Crashes,
		Restarts:         m.Restarts,
		DroppedMessages:  m.DroppedMessages,
		RecoveredRegions: m.RecoveredRegions,
		StoreHits:        m.StoreHits,
		StoreMisses:      m.StoreMisses,
		StorePuts:        m.StorePuts,
		StoreReadBytes:   m.StoreReadBytes,
		StoreWriteBytes:  m.StoreWriteBytes,
		BaseItems:        m.BaseItems,
	}
}
