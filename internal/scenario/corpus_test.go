package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// The committed corpus is the regression suite: every scenario under
// scenarios/ must parse, run, and pass its own assertions. The 1k-node
// stress scenario is skipped under -short; `make smoke-scenarios` (CI)
// always runs the whole corpus twice and diffs the reports.
func TestCommittedCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no committed scenarios found: %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			if testing.Short() && sc.nodeCount() >= 1000 {
				t.Skip("large stress scenario skipped under -short")
			}
			rep, err := Run(sc, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Pass {
				t.Fatalf("scenario failed:\n%s", rep.Text())
			}
		})
	}
}
