package scenario

// Strict typed decoding over the parsed YAML tree: every mapping is read
// through an obj, which records the keys the schema consumed and rejects
// the rest, so a misspelled field is a hard error instead of a silently
// ignored setting.

import (
	"fmt"
	"strconv"
	"time"

	"rocket/internal/sim"
)

// obj wraps one yMap for strict field access. The first error sticks;
// subsequent accessors no-op, so decode code reads straight-line.
type obj struct {
	n    *yNode
	path string
	used map[string]bool
	err  *error
}

func newObj(n *yNode, path string, err *error) *obj {
	o := &obj{n: n, path: path, used: map[string]bool{}, err: err}
	if *err == nil && n.kind != yMap {
		*err = fmt.Errorf("line %d: %s must be a mapping, got a %s", n.line, path, n.kindName())
	}
	return o
}

func (o *obj) fail(format string, args ...interface{}) {
	if *o.err == nil {
		*o.err = fmt.Errorf(format, args...)
	}
}

// get returns the raw child node, or nil when absent.
func (o *obj) get(key string) *yNode {
	if *o.err != nil {
		return nil
	}
	o.used[key] = true
	return o.n.vals[key]
}

// finish rejects keys the schema never consumed.
func (o *obj) finish() {
	if *o.err != nil {
		return
	}
	for _, k := range o.n.keys {
		if !o.used[k] {
			o.fail("line %d: unknown key %q in %s", o.n.vals[k].line, k, o.path)
			return
		}
	}
}

func (o *obj) scalar(key string) (string, bool) {
	n := o.get(key)
	if n == nil {
		return "", false
	}
	if n.kind != yScalar {
		o.fail("line %d: %s.%s must be a scalar, got a %s", n.line, o.path, key, n.kindName())
		return "", false
	}
	return n.scalar, true
}

func (o *obj) str(key, def string) string {
	if s, ok := o.scalar(key); ok {
		return s
	}
	return def
}

func (o *obj) integer(key string, def int) int {
	s, ok := o.scalar(key)
	if !ok {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		o.fail("%s.%s: %q is not an integer", o.path, key, s)
		return def
	}
	return v
}

func (o *obj) unsigned(key string, def uint64) uint64 {
	s, ok := o.scalar(key)
	if !ok {
		return def
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		o.fail("%s.%s: %q is not an unsigned integer", o.path, key, s)
		return def
	}
	return v
}

func (o *obj) float(key string, def float64) float64 {
	s, ok := o.scalar(key)
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		o.fail("%s.%s: %q is not a number", o.path, key, s)
		return def
	}
	return v
}

func (o *obj) boolean(key string, def bool) bool {
	s, ok := o.scalar(key)
	if !ok {
		return def
	}
	switch s {
	case "true", "yes", "on":
		return true
	case "false", "no", "off":
		return false
	}
	o.fail("%s.%s: %q is not a boolean", o.path, key, s)
	return def
}

// dur decodes a duration scalar ("5ms", "250us", "1.5s") into virtual
// time. A bare number is rejected: scenario times always carry units.
func (o *obj) dur(key string, def sim.Time) sim.Time {
	s, ok := o.scalar(key)
	if !ok {
		return def
	}
	t, err := parseDur(s)
	if err != nil {
		o.fail("%s.%s: %v", o.path, key, err)
		return def
	}
	return t
}

func parseDur(s string) (sim.Time, error) {
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return 0, fmt.Errorf("duration %q has no unit (write 5ms, 250us, 1s, ...)", s)
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("%q is not a duration", s)
	}
	if d < 0 {
		return 0, fmt.Errorf("duration %q is negative", s)
	}
	return sim.Time(d.Nanoseconds()), nil
}

// list returns the items of a child list, or nil when absent.
func (o *obj) list(key string) []*yNode {
	n := o.get(key)
	if n == nil {
		return nil
	}
	if n.kind != yList {
		o.fail("line %d: %s.%s must be a list, got a %s", n.line, o.path, key, n.kindName())
		return nil
	}
	return n.items
}

// child returns a nested mapping as an obj, or nil when absent.
func (o *obj) child(key string) *obj {
	n := o.get(key)
	if n == nil {
		return nil
	}
	return newObj(n, o.path+"."+key, o.err)
}
