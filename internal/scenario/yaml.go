package scenario

// A hand-written strict decoder for the YAML subset scenario files use.
// The repo deliberately has no third-party dependencies, and scenarios
// only need a small, predictable slice of YAML: block mappings nested by
// two-space indentation, block lists of scalars or mappings, one level of
// flow collections ({k: v, ...} and [a, b]), comments, and quoted or
// plain scalars. Everything outside that subset — anchors, aliases,
// multi-line scalars, tabs, documents — is a parse error, which is a
// feature: a scenario that needs exotic YAML is a scenario that should be
// rewritten.
//
// Scalars stay strings at this layer; the schema decoder (decode.go)
// assigns types and rejects unknown keys, so typos fail loudly instead of
// silently defaulting.

import (
	"fmt"
	"strings"
)

type yKind int

const (
	yScalar yKind = iota
	yMap
	yList
)

// yNode is one parsed YAML value.
type yNode struct {
	kind   yKind
	scalar string
	keys   []string // map insertion order
	vals   map[string]*yNode
	items  []*yNode
	line   int // 1-based source line, for error messages
}

func (n *yNode) kindName() string {
	switch n.kind {
	case yScalar:
		return "scalar"
	case yMap:
		return "mapping"
	default:
		return "list"
	}
}

type yLine struct {
	indent int
	text   string
	num    int
}

// parseYAML parses a whole document into its root mapping.
func parseYAML(data []byte) (*yNode, error) {
	var lines []yLine
	for i, raw := range strings.Split(string(data), "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("line %d: tabs are not allowed; indent with spaces", i+1)
		}
		text := stripComment(raw)
		trimmed := strings.TrimLeft(text, " ")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		if trimmed == "---" {
			continue // document marker tolerated at any position's own line
		}
		lines = append(lines, yLine{
			indent: len(text) - len(trimmed),
			text:   strings.TrimRight(trimmed, " "),
			num:    i + 1,
		})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	node, next, err := parseBlock(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("line %d: content outdented past the document root", lines[next].num)
	}
	if node.kind != yMap {
		return nil, fmt.Errorf("line %d: the document root must be a mapping", lines[0].num)
	}
	return node, nil
}

// stripComment removes a trailing comment, honoring quotes.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || s[i-1] == ' ') {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses the block starting at lines[i], all of whose lines
// share the given indent, and returns the node and the index of the first
// line after the block.
func parseBlock(lines []yLine, i, indent int) (*yNode, int, error) {
	if lines[i].indent != indent {
		return nil, 0, fmt.Errorf("line %d: unexpected indentation", lines[i].num)
	}
	if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
		return parseList(lines, i, indent)
	}
	return parseMap(lines, i, indent)
}

func parseMap(lines []yLine, i, indent int) (*yNode, int, error) {
	n := &yNode{kind: yMap, vals: map[string]*yNode{}, line: lines[i].num}
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, 0, fmt.Errorf("line %d: list item inside a mapping block", ln.num)
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, 0, err
		}
		if _, dup := n.vals[key]; dup {
			return nil, 0, fmt.Errorf("line %d: duplicate key %q", ln.num, key)
		}
		var val *yNode
		if rest != "" {
			val, err = parseInline(rest, ln.num)
			if err != nil {
				return nil, 0, err
			}
			i++
		} else {
			// Block value: the nested lines must be indented deeper.
			i++
			if i >= len(lines) || lines[i].indent <= indent {
				return nil, 0, fmt.Errorf("line %d: key %q has no value", ln.num, key)
			}
			val, i, err = parseBlock(lines, i, lines[i].indent)
			if err != nil {
				return nil, 0, err
			}
		}
		n.keys = append(n.keys, key)
		n.vals[key] = val
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, 0, fmt.Errorf("line %d: unexpected indentation", lines[i].num)
	}
	return n, i, nil
}

func parseList(lines []yLine, i, indent int) (*yNode, int, error) {
	n := &yNode{kind: yList, line: lines[i].num}
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			return nil, 0, fmt.Errorf("line %d: expected a list item", ln.num)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		itemIndent := indent + 2
		switch {
		case rest == "":
			// "-" alone: the item is the nested block below.
			i++
			if i >= len(lines) || lines[i].indent <= indent {
				return nil, 0, fmt.Errorf("line %d: empty list item", ln.num)
			}
			item, next, err := parseBlock(lines, i, lines[i].indent)
			if err != nil {
				return nil, 0, err
			}
			n.items = append(n.items, item)
			i = next
		case strings.HasPrefix(rest, "{") || strings.HasPrefix(rest, "["):
			// "- {k: v, ...}" / "- [a, b]": a flow-collection item.
			item, err := parseInline(rest, ln.num)
			if err != nil {
				return nil, 0, err
			}
			n.items = append(n.items, item)
			i++
		case strings.Contains(rest, ": ") || strings.HasSuffix(rest, ":"):
			// "- key: value": a mapping whose first entry is inline and
			// whose remaining entries continue on deeper-indented lines.
			// Re-parse with the dash treated as two columns of indent.
			sub := []yLine{{indent: itemIndent, text: rest, num: ln.num}}
			j := i + 1
			for j < len(lines) && lines[j].indent >= itemIndent {
				sub = append(sub, lines[j])
				j++
			}
			item, next, err := parseMap(sub, 0, itemIndent)
			if err != nil {
				return nil, 0, err
			}
			if next != len(sub) {
				return nil, 0, fmt.Errorf("line %d: unexpected indentation", sub[next].num)
			}
			n.items = append(n.items, item)
			i = j
		default:
			item, err := parseInline(rest, ln.num)
			if err != nil {
				return nil, 0, err
			}
			n.items = append(n.items, item)
			i++
		}
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, 0, fmt.Errorf("line %d: unexpected indentation", lines[i].num)
	}
	return n, i, nil
}

// splitKey splits "key: rest" / "key:"; the key may be quoted.
func splitKey(ln yLine) (key, rest string, err error) {
	idx := strings.Index(ln.text, ":")
	if idx < 0 {
		return "", "", fmt.Errorf("line %d: expected \"key: value\"", ln.num)
	}
	key = strings.TrimSpace(ln.text[:idx])
	rest = strings.TrimSpace(ln.text[idx+1:])
	if unq, ok := unquote(key); ok {
		key = unq
	}
	if key == "" {
		return "", "", fmt.Errorf("line %d: empty key", ln.num)
	}
	return key, rest, nil
}

// parseInline parses a scalar or a one-level flow collection.
func parseInline(s string, num int) (*yNode, error) {
	switch {
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return nil, fmt.Errorf("line %d: unterminated flow mapping", num)
		}
		n := &yNode{kind: yMap, vals: map[string]*yNode{}, line: num}
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			idx := strings.Index(part, ":")
			if idx < 0 {
				return nil, fmt.Errorf("line %d: flow mapping entry %q has no colon", num, part)
			}
			key := strings.TrimSpace(part[:idx])
			if unq, ok := unquote(key); ok {
				key = unq
			}
			val := strings.TrimSpace(part[idx+1:])
			if key == "" || val == "" {
				return nil, fmt.Errorf("line %d: malformed flow mapping entry %q", num, part)
			}
			if strings.ContainsAny(val, "{}[]") {
				return nil, fmt.Errorf("line %d: nested flow collections are not supported", num)
			}
			if _, dup := n.vals[key]; dup {
				return nil, fmt.Errorf("line %d: duplicate key %q", num, key)
			}
			n.keys = append(n.keys, key)
			n.vals[key] = &yNode{kind: yScalar, scalar: scalarOf(val), line: num}
		}
		return n, nil
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("line %d: unterminated flow list", num)
		}
		n := &yNode{kind: yList, line: num}
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			if strings.ContainsAny(part, "{}[]") {
				return nil, fmt.Errorf("line %d: nested flow collections are not supported", num)
			}
			n.items = append(n.items, &yNode{kind: yScalar, scalar: scalarOf(part), line: num})
		}
		return n, nil
	default:
		return &yNode{kind: yScalar, scalar: scalarOf(s), line: num}, nil
	}
}

// splitFlow splits flow-collection content on commas, dropping empties.
func splitFlow(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func scalarOf(s string) string {
	if unq, ok := unquote(s); ok {
		return unq
	}
	return s
}

// unquote strips one level of matching quotes.
func unquote(s string) (string, bool) {
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return s[1 : len(s)-1], true
		}
	}
	return s, false
}
