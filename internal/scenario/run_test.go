package scenario

import (
	"bytes"
	"strings"
	"testing"
)

const pairsDoc = `
name: tiny-recovery
mode: pairs
seed: 3
app:
  kind: forensics
  items: 24
fleet:
  nodes: 2
events:
  - at: 1ms
    kind: crash
    node: 1
  - at: 4ms
    kind: restart
    node: 1
assertions:
  - at: 2ms
    assert: node-dead
    node: 1
  - at: 5ms
    assert: node-alive
    node: 1
  - assert: pairs-complete
  - assert: metric
    name: crashes
    min: 1
    max: 1
`

func TestRunPairsScenario(t *testing.T) {
	sc, err := Parse([]byte(pairsDoc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("scenario failed:\n%s", rep.Text())
	}
	if len(rep.Assertions) != 4 || len(rep.Faults) != 2 {
		t.Fatalf("report shape: %d assertions, %d faults", len(rep.Assertions), len(rep.Faults))
	}
	if rep.OutputSHA256 == "" || len(rep.Metrics) == 0 {
		t.Fatal("report missing hash or metrics")
	}
}

func TestAssertionFailureIsReportedNotError(t *testing.T) {
	doc := strings.Replace(pairsDoc, "assert: node-dead", "assert: node-alive", 1)
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("inverted assertion passed")
	}
	if rep.Assertions[0].Pass || rep.Assertions[0].Detail == "" {
		t.Fatalf("failed assertion = %+v", rep.Assertions[0])
	}
	// The others still pass: one failure doesn't poison the report.
	if !rep.Assertions[2].Pass {
		t.Fatal("unrelated assertion failed")
	}
	if !strings.Contains(rep.Text(), "FAIL") {
		t.Fatal("text report hides the failure")
	}
}

func TestMetricBounds(t *testing.T) {
	doc := strings.Replace(pairsDoc, "name: crashes\n    min: 1\n    max: 1", "name: crashes\n    max: 0", 1)
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("crashes max=0 passed despite an injected crash")
	}
	last := rep.Assertions[len(rep.Assertions)-1]
	if !strings.Contains(last.Detail, "above max") {
		t.Fatalf("detail = %q", last.Detail)
	}
}

func TestUnknownMetricFails(t *testing.T) {
	doc := strings.Replace(pairsDoc, "name: crashes", "name: warp_factor", 1)
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("unknown metric passed")
	}
}

// The acceptance property: the same scenario + seed produces the
// byte-identical JSON report across repeated runs AND across engine
// shard widths 1, 2, 4, 8.
func TestReportByteIdenticalAcrossRunsAndWidths(t *testing.T) {
	sc, err := Parse([]byte(fleetDoc))
	if err != nil {
		t.Fatal(err)
	}
	var golden []byte
	for _, w := range []int{1, 1, 2, 4, 8} { // width 1 twice = rerun check
		rep, err := Run(sc, RunOptions{Shards: w})
		if err != nil {
			t.Fatalf("shards=%d: %v", w, err)
		}
		if !rep.Pass {
			t.Fatalf("shards=%d: scenario failed:\n%s", w, rep.Text())
		}
		doc, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = doc
			continue
		}
		if !bytes.Equal(doc, golden) {
			t.Fatalf("shards=%d: report diverged", w)
		}
	}
}

// A seed override changes the report; the override is recorded in it.
func TestSeedOverride(t *testing.T) {
	sc, err := Parse([]byte(fleetDoc))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, RunOptions{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if b.Seed != 99 {
		t.Fatalf("report seed = %d", b.Seed)
	}
	if a.OutputSHA256 == b.OutputSHA256 {
		t.Fatal("different seeds hashed identically")
	}
}

func TestReportRenderings(t *testing.T) {
	sc, err := Parse([]byte(pairsDoc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Text()
	for _, want := range []string{"PASS", "Assertions", "Fault timeline", "Metrics", rep.OutputSHA256} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q", want)
		}
	}
	csv := rep.CSV()
	if !strings.Contains(csv, "tiny-recovery,crashes,1") {
		t.Errorf("csv missing metric row:\n%s", csv)
	}
	doc, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(doc, []byte("\n")) {
		t.Error("JSON report missing trailing newline")
	}
}

// An elastic fleet's report is byte-identical across reruns and shard
// widths, and surfaces the churn metrics that churn-free runs omit.
func TestElasticReportWidthInvariantWithChurnMetrics(t *testing.T) {
	sc, err := Parse([]byte(elasticDoc))
	if err != nil {
		t.Fatal(err)
	}
	var golden []byte
	for _, w := range []int{1, 1, 2, 4, 8} { // width 1 twice = rerun check
		rep, err := Run(sc, RunOptions{Shards: w})
		if err != nil {
			t.Fatalf("shards=%d: %v", w, err)
		}
		doc, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = doc
			names := map[string]float64{}
			for _, m := range rep.Metrics {
				names[m.Name] = m.Value
			}
			if names["joins"] == 0 {
				t.Fatalf("elastic run reported no joins: %v", names)
			}
			if _, ok := names["preempts"]; !ok {
				t.Fatalf("churn metrics missing: %v", names)
			}
			continue
		}
		if !bytes.Equal(doc, golden) {
			t.Fatalf("shards=%d: elastic report diverged", w)
		}
	}
}

// Scripted membership events flow through the DSL: a preempted node is
// observed dead, a joined node alive, and the timeline names them.
func TestScriptedJoinPreemptEvents(t *testing.T) {
	doc := `
name: scripted-churn
mode: fleet
seed: 2
duration: 6ms
fleet:
  nodes: 8
events:
  - at: 1ms
    kind: preempt
    node: 5
  - at: 2ms
    kind: join
    node: 7
assertions:
  - at: 3ms
    assert: node-dead
    node: 5
  - at: 3ms
    assert: node-alive
    node: 7
`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("scenario failed:\n%s", rep.Text())
	}
	if len(rep.Faults) != 2 {
		t.Fatalf("fault timeline has %d records", len(rep.Faults))
	}
	for _, f := range rep.Faults {
		if !strings.HasPrefix(f.Target, "node ") {
			t.Fatalf("membership event rendered as %q", f.Target)
		}
	}
}
