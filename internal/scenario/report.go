package scenario

// The scenario report: a seed-reproducible record of one run. The JSON
// form is the regression artefact — same scenario + same seed produces
// the byte-identical document at every engine shard width, which CI
// enforces by running every committed scenario twice and diffing. The
// report therefore contains no wall-clock quantity, no shard width, and
// no map iteration: metrics are sorted slices, the fault timeline is in
// firing order, and the output hash digests the run's canonical summary
// line.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"rocket/internal/report"
)

// Report is the outcome of one scenario run.
type Report struct {
	Scenario string `json:"scenario"`
	Mode     string `json:"mode"`
	Seed     uint64 `json:"seed"`
	// Pass is the conjunction of all assertion outcomes.
	Pass bool `json:"pass"`
	// Assertions lists every assertion in file order.
	Assertions []AssertionResult `json:"assertions"`
	// Faults is the armed fault timeline in firing order (scripted or
	// chaos-generated; nil for fault-free scenarios).
	Faults []FaultRecord `json:"fault_timeline,omitempty"`
	// Metrics is the run summary as sorted name/value pairs.
	Metrics []MetricValue `json:"metrics"`
	// Summary is the run's canonical one-line summary.
	Summary string `json:"summary"`
	// OutputSHA256 digests Summary: two reports describe the same
	// simulated world if and only if their hashes match.
	OutputSHA256 string `json:"output_sha256"`
}

// AssertionResult is one assertion's outcome.
type AssertionResult struct {
	Desc   string  `json:"desc"`
	AtMS   float64 `json:"at_ms,omitempty"`
	Pass   bool    `json:"pass"`
	Detail string  `json:"detail,omitempty"`
}

// FaultRecord is one fault event of the timeline.
type FaultRecord struct {
	AtMS   float64 `json:"at_ms"`
	Kind   string  `json:"kind"`
	Target string  `json:"target"`
	Detail string  `json:"detail,omitempty"`
}

// MetricValue is one summary metric.
type MetricValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// hashSummary digests the canonical summary line.
func hashSummary(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// JSON renders the canonical report document (trailing newline included,
// so the bytes are diff- and shell-friendly).
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Text renders the human-readable report.
func (r *Report) Text() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "scenario %s (%s, seed %d): %s\n", r.Scenario, r.Mode, r.Seed, verdict)
	fmt.Fprintf(&b, "summary: %s\n", r.Summary)
	fmt.Fprintf(&b, "output_sha256: %s\n", r.OutputSHA256)
	if len(r.Assertions) > 0 {
		t := report.NewTable("Assertions", "assertion", "outcome", "detail")
		for _, a := range r.Assertions {
			outcome := "pass"
			if !a.Pass {
				outcome = "FAIL"
			}
			t.AddRow(a.Desc, outcome, a.Detail)
		}
		b.WriteString("\n")
		b.WriteString(t.String())
	}
	if len(r.Faults) > 0 {
		t := report.NewTable(fmt.Sprintf("Fault timeline (%d events)", len(r.Faults)),
			"at (ms)", "kind", "target", "detail")
		for _, f := range r.Faults {
			t.AddRow(f.AtMS, f.Kind, f.Target, f.Detail)
		}
		b.WriteString("\n")
		b.WriteString(t.String())
	}
	if len(r.Metrics) > 0 {
		t := report.NewTable("Metrics", "metric", "value")
		for _, m := range r.Metrics {
			t.AddRow(m.Name, m.Value)
		}
		b.WriteString("\n")
		b.WriteString(t.String())
	}
	return b.String()
}

// CSV renders the metrics as CSV (one scenario per invocation; the
// scenario name is repeated per row so files concatenate cleanly).
func (r *Report) CSV() string {
	t := report.NewTable("", "scenario", "metric", "value")
	for _, m := range r.Metrics {
		t.AddRow(r.Scenario, m.Name, m.Value)
	}
	return t.CSV()
}
