package scenario

import (
	"strings"
	"testing"

	"rocket/internal/sim"
)

const fleetDoc = `
name: mini-storm
mode: fleet
seed: 5
duration: 8ms
fleet_gen:
  nodes: 32
  zones: 4
  templates:
    - name: a
      weight: 3
      gpus: 1
    - name: b
      weight: 1
      gpus: 2
  startup:
    pattern: linear
    over: 1ms
chaos:
  crash_fraction: 0.1
  restart_fraction: 0.5
  min_downtime: 1ms
  max_downtime: 3ms
assertions:
  - at: 7ms
    assert: node-alive
    node: 0
  - assert: metric
    name: work_done
    min: 1
`

func TestParseFleetScenario(t *testing.T) {
	sc, err := Parse([]byte(fleetDoc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Mode != ModeFleet || sc.Gen == nil || sc.Chaos == nil {
		t.Fatalf("parsed = %+v", sc)
	}
	if sc.Gen.Startup.Pattern != StartupLinear || sc.Gen.Startup.Over != sim.Millis(1) {
		t.Fatalf("startup = %+v", sc.Gen.Startup)
	}
	faults, err := sc.CompileFaults()
	if err != nil {
		t.Fatal(err)
	}
	if faults.Empty() {
		t.Fatal("chaos compiled to an empty schedule")
	}
}

func TestParseRejects(t *testing.T) {
	base := `
name: x
mode: pairs
seed: 1
app:
  kind: forensics
  items: 16
fleet:
  nodes: 2
`
	cases := []struct {
		name, doc, want string
	}{
		{"unknown key", base + "bogus: 1\n", "unknown key"},
		{"unknown nested key", base + "events:\n  - at: 1ms\n    kind: crash\n    nodee: 1\n", "unknown key"},
		{"no name", "mode: fleet\nduration: 1ms\nfleet:\n  nodes: 2\n", "name is required"},
		{"bad mode", "name: x\nmode: turbo\n", "unknown mode"},
		{"fleet needs duration", "name: x\nmode: fleet\nfleet:\n  nodes: 2\n", "positive duration"},
		{"fleet xor gen", "name: x\nmode: fleet\nduration: 1ms\n", "exactly one of fleet or fleet_gen"},
		{"chaos in pairs", base + "chaos:\n  crash_fraction: 0.1\n", "fleet-mode only"},
		{"chaos and events", strings.Replace(fleetDoc, "chaos:", "events:\n  - at: 1ms\n    kind: crash\n    node: 0\nchaos:", 1), "mutually exclusive"},
		{"bad event kind", base + "events:\n  - at: 1ms\n    kind: melt\n    node: 0\n", "unknown event kind"},
		{"event node range", base + "events:\n  - at: 1ms\n    kind: crash\n    node: 9\n", "node 9"},
		{"restart before crash", base + "events:\n  - at: 2ms\n    kind: restart\n    node: 1\n  - at: 3ms\n    kind: crash\n    node: 1\n", "before its crash"},
		{"assert node range", base + "assertions:\n  - at: 1ms\n    assert: node-dead\n    node: 7\n", "outside fleet"},
		{"assert needs at", base + "assertions:\n  - assert: node-dead\n    node: 1\n", "needs at"},
		{"metric needs bounds", base + "assertions:\n  - assert: metric\n    name: pairs\n", "min and/or max"},
		{"metric min gt max", base + "assertions:\n  - assert: metric\n    name: pairs\n    min: 5\n    max: 2\n", "min 5 > max 2"},
		{"pairs-complete in fleet", strings.Replace(fleetDoc, "assertions:", "assertions:\n  - assert: pairs-complete\n", 1), "pairs-mode only"},
		{"assert beyond horizon", strings.Replace(fleetDoc, "at: 7ms", "at: 9ms", 1), "beyond duration"},
		{"zone outage without zones", strings.Replace(strings.Replace(fleetDoc, "zones: 4", "zones: 0", 1), "max_downtime: 3ms", "max_downtime: 3ms\n  zone_outages:\n    count: 1\n    duration: 1ms", 1), "zones >= 2"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestFleetGenShapes(t *testing.T) {
	g := &FleetGen{
		Nodes: 400,
		Templates: []Template{
			{Name: "a", Weight: 3, GPUs: 1},
			{Name: "b", Weight: 1, GPUs: 2},
		},
		Startup: Startup{Pattern: StartupWave, Over: sim.Millis(4), Waves: 4},
	}
	shape := g.GPUShape(9)
	again := g.GPUShape(9)
	for i := range shape {
		if shape[i] != again[i] {
			t.Fatal("GPUShape not deterministic")
		}
	}
	ones, twos := 0, 0
	for _, v := range shape {
		switch v {
		case 1:
			ones++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected gpu count %d", v)
		}
	}
	// 3:1 weighting over 400 nodes: expect ~300/~100, generously bounded.
	if ones < 250 || twos < 50 {
		t.Fatalf("weighting off: %d ones, %d twos", ones, twos)
	}

	at := g.StartTimes()
	if at[0] != 0 {
		t.Fatalf("first node boots at %v, want 0", at[0])
	}
	waves := map[sim.Time]bool{}
	for i := 1; i < len(at); i++ {
		if at[i] < at[i-1] {
			t.Fatal("start times not monotone")
		}
		if at[i] >= g.Startup.Over {
			t.Fatalf("start %v beyond window %v", at[i], g.Startup.Over)
		}
		waves[at[i]] = true
	}
	if len(waves) != 4 {
		t.Fatalf("wave pattern produced %d cohorts, want 4", len(waves))
	}

	g.Startup = Startup{Pattern: StartupInstant}
	if g.StartTimes() != nil {
		t.Fatal("instant startup must return nil (the fast path)")
	}

	g.Startup = Startup{Pattern: StartupExponential, Over: sim.Millis(4)}
	at = g.StartTimes()
	if at[0] != 0 || at[len(at)-1] != at[len(at)-2] && at[len(at)-1] > g.Startup.Over {
		t.Fatalf("exponential start times out of range: first=%v last=%v", at[0], at[len(at)-1])
	}
	for i := 1; i < len(at); i++ {
		if at[i] < at[i-1] {
			t.Fatal("exponential start times not monotone")
		}
	}
}

const elasticDoc = `
name: elastic-mini
mode: fleet
seed: 11
duration: 6ms
fleet:
  nodes: 16
elasticity:
  initial_nodes: 4
  arrival: wave
  over: 3ms
  waves: 3
  cold_start_jitter: 100us
  preempt_fraction: 0.25
  preempt_after: 500us
`

func TestParseElasticScenario(t *testing.T) {
	sc, err := Parse([]byte(elasticDoc))
	if err != nil {
		t.Fatal(err)
	}
	e := sc.Elastic
	if e == nil {
		t.Fatal("elasticity section not decoded")
	}
	if e.InitialNodes != 4 || e.Arrival != "wave" || e.Waves != 3 ||
		e.Over != sim.Millis(3) || e.ColdStartJitter != sim.Micros(100) ||
		e.PreemptFraction != 0.25 || e.PreemptAfter != sim.Micros(500) {
		t.Fatalf("elasticity = %+v", e)
	}
	// The generator inherits fleet size, seed, and horizon from the
	// scenario, not from the section.
	gen := sc.elasticity()
	if gen.Nodes != 16 || gen.Seed != 11 || gen.Duration != sim.Millis(6) {
		t.Fatalf("generator mapping = %+v", gen)
	}
}

func TestElasticityRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"pairs mode", `
name: x
mode: pairs
seed: 1
app:
  kind: forensics
  items: 16
fleet:
  nodes: 2
elasticity:
  initial_nodes: 1
`, "fleet-mode only"},
		{"with chaos", strings.Replace(elasticDoc, "elasticity:", "chaos:\n  crash_fraction: 0.1\nelasticity:", 1), "mutually exclusive"},
		{"bad arrival", strings.Replace(elasticDoc, "arrival: wave", "arrival: warp", 1), "unknown arrival pattern"},
		{"initial above fleet", strings.Replace(elasticDoc, "initial_nodes: 4", "initial_nodes: 99", 1), "outside [1, 16]"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
