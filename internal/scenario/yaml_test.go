package scenario

import (
	"strings"
	"testing"
)

func TestYAMLParse(t *testing.T) {
	doc := `
# a comment
name: demo          # trailing comment
mode: "fleet"
seed: 7
nested:
  alpha: 1ms
  beta:
    gamma: true
flow_map: {a: 1, b: two}
flow_list: [1, 2, 3]
items:
  - plain
  - 'quoted # not a comment'
maps:
  - name: first
    weight: 3
  - name: second
    weight: 1
    extra:
      deep: yes
flow_items:
  - {at: 1ms, kind: crash}
  - [4, 5]
`
	root, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := root.vals["name"].scalar; got != "demo" {
		t.Errorf("name = %q", got)
	}
	if got := root.vals["mode"].scalar; got != "fleet" {
		t.Errorf("mode = %q (quotes not stripped?)", got)
	}
	if got := root.vals["nested"].vals["beta"].vals["gamma"].scalar; got != "true" {
		t.Errorf("nested.beta.gamma = %q", got)
	}
	fm := root.vals["flow_map"]
	if fm.kind != yMap || fm.vals["b"].scalar != "two" {
		t.Errorf("flow map = %+v", fm)
	}
	fl := root.vals["flow_list"]
	if fl.kind != yList || len(fl.items) != 3 || fl.items[2].scalar != "3" {
		t.Errorf("flow list = %+v", fl)
	}
	items := root.vals["items"]
	if len(items.items) != 2 || items.items[1].scalar != "quoted # not a comment" {
		t.Errorf("items = %+v", items.items)
	}
	maps := root.vals["maps"]
	if len(maps.items) != 2 {
		t.Fatalf("maps has %d items", len(maps.items))
	}
	if got := maps.items[0].vals["weight"].scalar; got != "3" {
		t.Errorf("maps[0].weight = %q", got)
	}
	if got := maps.items[1].vals["extra"].vals["deep"].scalar; got != "yes" {
		t.Errorf("maps[1].extra.deep = %q", got)
	}
	fi := root.vals["flow_items"]
	if len(fi.items) != 2 || fi.items[0].kind != yMap || fi.items[1].kind != yList {
		t.Fatalf("flow items = %+v", fi.items)
	}
	if got := fi.items[0].vals["kind"].scalar; got != "crash" {
		t.Errorf("flow_items[0].kind = %q", got)
	}
	if got := fi.items[1].items[1].scalar; got != "5" {
		t.Errorf("flow_items[1][1] = %q", got)
	}
}

func TestYAMLParseErrors(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"tab", "a:\tb", "tabs"},
		{"empty", "# nothing\n", "empty document"},
		{"scalar root", "just a scalar", "key: value"},
		{"dup key", "a: 1\na: 2", "duplicate key"},
		{"no value", "a:\nb: 2", "no value"},
		{"bad indent", "a:\n  b: 1\n   c: 2", "indentation"},
		{"list in map", "a: 1\n- b", "list item"},
		{"unterminated flow map", "a: {x: 1", "unterminated"},
		{"unterminated flow list", "a: [1, 2", "unterminated"},
		{"nested flow", "a: {x: [1]}", "nested flow"},
		{"flow entry no colon", "a: {x}", "no colon"},
		{"empty list item", "a:\n  -", "empty list item"},
	}
	for _, tc := range cases {
		_, err := parseYAML([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: parse accepted %q", tc.name, tc.doc)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestDurationsRequireUnits(t *testing.T) {
	if _, err := parseDur("5"); err == nil {
		t.Error("bare number accepted as duration")
	}
	if _, err := parseDur("-3ms"); err == nil {
		t.Error("negative duration accepted")
	}
	d, err := parseDur("1.5ms")
	if err != nil || d != 1_500_000 {
		t.Errorf("1.5ms = %v, %v", d, err)
	}
}
