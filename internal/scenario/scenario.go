// Package scenario is the declarative front door to Rocket's robustness
// testing: YAML files describe a platform, a fault script or a seeded
// chaos storm, and a set of assertions, and the runner executes them over
// the deterministic simulation and renders a replayable report. The same
// scenario file with the same seed always produces the byte-identical
// report — at every engine shard width — so a scenario is simultaneously
// a stress test, a regression test, and a reproduction recipe.
//
// Two shapes of scenario exist. A regular scenario names an explicit
// fleet and scripts individual fault events ("crash node 3 at 5ms") with
// timed assertions about the world ("node 3 is dead at 6ms"). A stress
// scenario generates its fleet from weighted hardware templates
// (fleet_gen) and samples its fault stream from a seeded chaos
// configuration — thousand-node storms that remain exactly replayable.
package scenario

import (
	"fmt"

	"rocket/internal/fault"
	"rocket/internal/sim"
	"rocket/internal/stats"
)

// Modes.
const (
	// ModePairs runs an all-pairs application through the Rocket runtime.
	ModePairs = "pairs"
	// ModeFleet runs the fleet protocol workload over the sharded engine.
	ModeFleet = "fleet"
)

// Assertion kinds.
const (
	AssertNodeDead      = "node-dead"
	AssertNodeAlive     = "node-alive"
	AssertPairsComplete = "pairs-complete"
	AssertMetric        = "metric"
)

// Scenario is one parsed scenario file.
type Scenario struct {
	Name        string
	Description string
	Mode        string
	Seed        uint64
	// Duration is the fleet-mode horizon; pairs-mode runs end when the
	// computation completes.
	Duration sim.Time

	// App is the pairs-mode application ("forensics", "microscopy",
	// "bioinformatics") and data-set size.
	App AppSpec
	// Fleet is the explicit platform of a regular scenario.
	Fleet FleetSpec
	// Gen generates the platform of a stress scenario.
	Gen *FleetGen
	// Chaos samples the fault stream of a stress scenario.
	Chaos *ChaosSpec
	// Elastic generates seeded fleet churn (arrival patterns plus spot
	// preemption) in fleet mode. Mutually exclusive with chaos — one
	// generated fault source per scenario; scripted events compose with
	// it (validated against the merged schedule at run time).
	Elastic *ElasticSpec
	// Events script the fault stream of a regular scenario.
	Events []EventSpec
	// Asserts are evaluated inside virtual time (timed kinds) or against
	// the run summary (metric kinds).
	Asserts []Assertion
}

// AppSpec names the pairs-mode application.
type AppSpec struct {
	Kind  string
	Items int
}

// FleetSpec is an explicit homogeneous platform.
type FleetSpec struct {
	Nodes       int
	GPUsPerNode int
	DistCache   bool
}

// Template is one weighted hardware class of a generated fleet.
type Template struct {
	Name   string
	Weight int
	GPUs   int
}

// Startup patterns.
const (
	StartupInstant     = "instant"
	StartupLinear      = "linear"
	StartupExponential = "exponential"
	StartupWave        = "wave"
)

// Startup staggers node boot across the fleet.
type Startup struct {
	Pattern string
	// Over is the window the boots are spread across (all but instant).
	Over sim.Time
	// Waves is the cohort count of the wave pattern.
	Waves int
}

// FleetGen generates a heterogeneous fleet from weighted templates.
type FleetGen struct {
	Nodes     int
	Zones     int
	Templates []Template
	Startup   Startup
}

// ChaosSpec mirrors fault.ChaosConfig in scenario vocabulary.
type ChaosSpec struct {
	CrashFraction   float64
	RestartFraction float64
	MinDowntime     sim.Time
	MaxDowntime     sim.Time

	StragglerFraction float64
	StragglerFactor   float64
	StragglerWindow   sim.Time

	LinkFaults          int
	LinkCutFraction     float64
	LinkWindow          sim.Time
	LinkLatencyFactor   float64
	LinkBandwidthFactor float64

	CascadeCount   int
	CascadeSize    int
	CascadeSpacing sim.Time

	ZoneOutages        int
	ZoneOutageDuration sim.Time
}

// ElasticSpec mirrors fault.Elasticity in scenario vocabulary. The fleet
// size, seed, and horizon come from the scenario itself.
type ElasticSpec struct {
	InitialNodes    int
	Arrival         string
	Over            sim.Time
	Waves           int
	ColdStartJitter sim.Time
	PreemptFraction float64
	PreemptAfter    sim.Time
}

// EventSpec is one scripted fault event; Kind uses the jobspec
// vocabulary ("crash", "restart", "gpu-slow", "link-down", "link-up",
// "link-degrade").
type EventSpec struct {
	At              sim.Time
	Kind            string
	Node            int
	GPU             int
	A, B            int
	Factor          float64
	LatencyFactor   float64
	BandwidthFactor float64
}

// Assertion is one check. Timed kinds (node-dead, node-alive) carry At;
// metric kinds carry a name and at least one bound.
type Assertion struct {
	Kind   string
	At     sim.Time
	Node   int
	Metric string
	Min    float64
	Max    float64
	HasMin bool
	HasMax bool
}

// Describe renders the assertion for reports.
func (a Assertion) Describe() string {
	switch a.Kind {
	case AssertNodeDead, AssertNodeAlive:
		return fmt.Sprintf("%s node=%d at=%v", a.Kind, a.Node, a.At)
	case AssertPairsComplete:
		return "pairs-complete"
	default:
		s := fmt.Sprintf("metric %s", a.Metric)
		if a.HasMin {
			s += fmt.Sprintf(" min=%v", a.Min)
		}
		if a.HasMax {
			s += fmt.Sprintf(" max=%v", a.Max)
		}
		return s
	}
}

// Parse decodes and validates one scenario document.
func Parse(data []byte) (*Scenario, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	var derr error
	o := newObj(root, "scenario", &derr)
	sc := &Scenario{
		Name:        o.str("name", ""),
		Description: o.str("description", ""),
		Mode:        o.str("mode", ModePairs),
		Seed:        o.unsigned("seed", 1),
		Duration:    o.dur("duration", 0),
	}
	if app := o.child("app"); app != nil {
		sc.App = AppSpec{Kind: app.str("kind", "forensics"), Items: app.integer("items", 0)}
		app.finish()
	}
	if fl := o.child("fleet"); fl != nil {
		sc.Fleet = FleetSpec{
			Nodes:       fl.integer("nodes", 0),
			GPUsPerNode: fl.integer("gpus_per_node", 1),
			DistCache:   fl.boolean("dist_cache", false),
		}
		fl.finish()
	}
	if gen := o.child("fleet_gen"); gen != nil {
		sc.Gen = decodeFleetGen(gen)
	}
	if ch := o.child("chaos"); ch != nil {
		sc.Chaos = decodeChaos(ch)
	}
	if el := o.child("elasticity"); el != nil {
		sc.Elastic = &ElasticSpec{
			InitialNodes:    el.integer("initial_nodes", 1),
			Arrival:         el.str("arrival", fault.ArrivalInstant),
			Over:            el.dur("over", 0),
			Waves:           el.integer("waves", 0),
			ColdStartJitter: el.dur("cold_start_jitter", 0),
			PreemptFraction: el.float("preempt_fraction", 0),
			PreemptAfter:    el.dur("preempt_after", 0),
		}
		el.finish()
	}
	for i, n := range o.list("events") {
		ev := decodeEvent(newObj(n, fmt.Sprintf("events[%d]", i), &derr))
		sc.Events = append(sc.Events, ev)
	}
	for i, n := range o.list("assertions") {
		a := decodeAssertion(newObj(n, fmt.Sprintf("assertions[%d]", i), &derr))
		sc.Asserts = append(sc.Asserts, a)
	}
	o.finish()
	if derr != nil {
		return nil, derr
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func decodeFleetGen(o *obj) *FleetGen {
	g := &FleetGen{
		Nodes: o.integer("nodes", 0),
		Zones: o.integer("zones", 0),
	}
	for i, n := range o.list("templates") {
		to := newObj(n, fmt.Sprintf("fleet_gen.templates[%d]", i), o.err)
		g.Templates = append(g.Templates, Template{
			Name:   to.str("name", fmt.Sprintf("t%d", i)),
			Weight: to.integer("weight", 1),
			GPUs:   to.integer("gpus", 1),
		})
		to.finish()
	}
	if st := o.child("startup"); st != nil {
		g.Startup = Startup{
			Pattern: st.str("pattern", StartupInstant),
			Over:    st.dur("over", 0),
			Waves:   st.integer("waves", 4),
		}
		st.finish()
	} else {
		g.Startup = Startup{Pattern: StartupInstant}
	}
	o.finish()
	return g
}

func decodeChaos(o *obj) *ChaosSpec {
	c := &ChaosSpec{
		CrashFraction:   o.float("crash_fraction", 0),
		RestartFraction: o.float("restart_fraction", 0),
		MinDowntime:     o.dur("min_downtime", 0),
		MaxDowntime:     o.dur("max_downtime", 0),

		StragglerFraction: o.float("straggler_fraction", 0),
		StragglerFactor:   o.float("straggler_factor", 1),
		StragglerWindow:   o.dur("straggler_window", 0),

		LinkFaults:          o.integer("link_faults", 0),
		LinkCutFraction:     o.float("link_cut_fraction", 1),
		LinkWindow:          o.dur("link_window", 0),
		LinkLatencyFactor:   o.float("link_latency_factor", 1),
		LinkBandwidthFactor: o.float("link_bandwidth_factor", 1),
	}
	if ca := o.child("cascades"); ca != nil {
		c.CascadeCount = ca.integer("count", 0)
		c.CascadeSize = ca.integer("size", 1)
		c.CascadeSpacing = ca.dur("spacing", 0)
		ca.finish()
	}
	if zo := o.child("zone_outages"); zo != nil {
		c.ZoneOutages = zo.integer("count", 0)
		c.ZoneOutageDuration = zo.dur("duration", 0)
		zo.finish()
	}
	o.finish()
	return c
}

func decodeEvent(o *obj) EventSpec {
	ev := EventSpec{
		At:              o.dur("at", 0),
		Kind:            o.str("kind", ""),
		Node:            o.integer("node", 0),
		GPU:             o.integer("gpu", 0),
		A:               o.integer("a", 0),
		B:               o.integer("b", 0),
		Factor:          o.float("factor", 1),
		LatencyFactor:   o.float("latency_factor", 1),
		BandwidthFactor: o.float("bandwidth_factor", 1),
	}
	o.finish()
	return ev
}

func decodeAssertion(o *obj) Assertion {
	a := Assertion{
		Kind:   o.str("assert", ""),
		At:     o.dur("at", 0),
		Node:   o.integer("node", 0),
		Metric: o.str("name", ""),
	}
	if n := o.get("min"); n != nil {
		a.HasMin = true
		a.Min = o.float("min", 0)
	}
	if n := o.get("max"); n != nil {
		a.HasMax = true
		a.Max = o.float("max", 0)
	}
	o.finish()
	return a
}

// validate checks cross-field semantics once decode succeeded.
func (sc *Scenario) validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	switch sc.Mode {
	case ModePairs:
		if sc.App.Items < 2 {
			return fmt.Errorf("scenario %s: pairs mode needs app.items >= 2, got %d", sc.Name, sc.App.Items)
		}
		if sc.Fleet.Nodes < 1 {
			return fmt.Errorf("scenario %s: pairs mode needs fleet.nodes >= 1", sc.Name)
		}
		if sc.Fleet.GPUsPerNode < 1 {
			return fmt.Errorf("scenario %s: fleet.gpus_per_node must be >= 1", sc.Name)
		}
		if sc.Gen != nil {
			return fmt.Errorf("scenario %s: fleet_gen is fleet-mode only", sc.Name)
		}
		if sc.Chaos != nil {
			return fmt.Errorf("scenario %s: chaos is fleet-mode only; script pairs-mode faults as events", sc.Name)
		}
		if sc.Elastic != nil {
			return fmt.Errorf("scenario %s: elasticity is fleet-mode only", sc.Name)
		}
	case ModeFleet:
		if sc.Duration <= 0 {
			return fmt.Errorf("scenario %s: fleet mode needs a positive duration", sc.Name)
		}
		if (sc.Gen == nil) == (sc.Fleet.Nodes == 0) {
			return fmt.Errorf("scenario %s: fleet mode needs exactly one of fleet or fleet_gen", sc.Name)
		}
		if sc.App.Items != 0 {
			return fmt.Errorf("scenario %s: app is pairs-mode only", sc.Name)
		}
	default:
		return fmt.Errorf("scenario %s: unknown mode %q (want %q or %q)", sc.Name, sc.Mode, ModePairs, ModeFleet)
	}
	if sc.Chaos != nil && len(sc.Events) > 0 {
		return fmt.Errorf("scenario %s: chaos and events are mutually exclusive (one fault source per scenario)", sc.Name)
	}
	if sc.Elastic != nil && sc.Chaos != nil {
		return fmt.Errorf("scenario %s: elasticity and chaos are mutually exclusive (one generated fault source per scenario)", sc.Name)
	}
	if sc.Elastic != nil {
		// Shape-check the generator now so a broken elasticity section
		// fails at parse, not mid-run.
		if err := sc.elasticity().Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}
	if sc.Gen != nil {
		if err := sc.Gen.validate(sc.Name); err != nil {
			return err
		}
	}
	nodes := sc.nodeCount()
	for i, ev := range sc.Events {
		if err := validKind(ev.Kind); err != nil {
			return fmt.Errorf("scenario %s: events[%d]: %w", sc.Name, i, err)
		}
		if ev.At <= 0 {
			return fmt.Errorf("scenario %s: events[%d]: at must be positive", sc.Name, i)
		}
	}
	for i, a := range sc.Asserts {
		switch a.Kind {
		case AssertNodeDead, AssertNodeAlive:
			if a.At <= 0 {
				return fmt.Errorf("scenario %s: assertions[%d]: timed assertion needs at", sc.Name, i)
			}
			if a.Node < 0 || a.Node >= nodes {
				return fmt.Errorf("scenario %s: assertions[%d]: node %d outside fleet of %d", sc.Name, i, a.Node, nodes)
			}
			if sc.Mode == ModeFleet && a.At > sc.Duration {
				return fmt.Errorf("scenario %s: assertions[%d]: at %v beyond duration %v", sc.Name, i, a.At, sc.Duration)
			}
		case AssertPairsComplete:
			if sc.Mode != ModePairs {
				return fmt.Errorf("scenario %s: assertions[%d]: pairs-complete is pairs-mode only", sc.Name, i)
			}
		case AssertMetric:
			if a.Metric == "" {
				return fmt.Errorf("scenario %s: assertions[%d]: metric assertion needs name", sc.Name, i)
			}
			if !a.HasMin && !a.HasMax {
				return fmt.Errorf("scenario %s: assertions[%d]: metric assertion needs min and/or max", sc.Name, i)
			}
			if a.HasMin && a.HasMax && a.Min > a.Max {
				return fmt.Errorf("scenario %s: assertions[%d]: min %v > max %v", sc.Name, i, a.Min, a.Max)
			}
		case "":
			return fmt.Errorf("scenario %s: assertions[%d]: assert kind is required", sc.Name, i)
		default:
			return fmt.Errorf("scenario %s: assertions[%d]: unknown assertion %q", sc.Name, i, a.Kind)
		}
	}
	// Compiling the fault schedule validates event targets and ordering
	// (restart-after-crash, endpoint ranges) against the platform shape.
	if _, err := sc.CompileFaults(); err != nil {
		return err
	}
	return nil
}

func (g *FleetGen) validate(name string) error {
	if g.Nodes < 2 {
		return fmt.Errorf("scenario %s: fleet_gen.nodes must be >= 2, got %d", name, g.Nodes)
	}
	if len(g.Templates) == 0 {
		return fmt.Errorf("scenario %s: fleet_gen needs at least one template", name)
	}
	for i, t := range g.Templates {
		if t.Weight < 1 {
			return fmt.Errorf("scenario %s: fleet_gen.templates[%d]: weight must be >= 1", name, i)
		}
		if t.GPUs < 1 {
			return fmt.Errorf("scenario %s: fleet_gen.templates[%d]: gpus must be >= 1", name, i)
		}
	}
	switch g.Startup.Pattern {
	case StartupInstant:
	case StartupLinear, StartupExponential:
		if g.Startup.Over <= 0 {
			return fmt.Errorf("scenario %s: fleet_gen.startup: pattern %q needs over", name, g.Startup.Pattern)
		}
	case StartupWave:
		if g.Startup.Over <= 0 || g.Startup.Waves < 1 {
			return fmt.Errorf("scenario %s: fleet_gen.startup: wave needs over and waves >= 1", name)
		}
	default:
		return fmt.Errorf("scenario %s: fleet_gen.startup: unknown pattern %q", name, g.Startup.Pattern)
	}
	return nil
}

func validKind(kind string) error {
	switch kind {
	case "crash", "restart", "gpu-slow", "link-down", "link-up", "link-degrade",
		"join", "preempt":
		return nil
	case "":
		return fmt.Errorf("event kind is required")
	default:
		return fmt.Errorf("unknown event kind %q", kind)
	}
}

// nodeCount returns the platform size.
func (sc *Scenario) nodeCount() int {
	if sc.Gen != nil {
		return sc.Gen.Nodes
	}
	return sc.Fleet.Nodes
}

// gpuShape returns the per-node device counts of the platform.
func (sc *Scenario) gpuShape() []int {
	if sc.Gen != nil {
		return sc.Gen.GPUShape(sc.Seed)
	}
	shape := make([]int, sc.Fleet.Nodes)
	for i := range shape {
		shape[i] = sc.Fleet.GPUsPerNode
	}
	return shape
}

// GPUShape assigns a template to every node by seeded weighted sampling
// and returns the per-node device counts. The assignment is a pure
// function of (gen, seed): stress fleets are heterogeneous but exactly
// reproducible.
func (g *FleetGen) GPUShape(seed uint64) []int {
	total := 0
	for _, t := range g.Templates {
		total += t.Weight
	}
	rng := stats.NewRNG(seed ^ 0x464c4545) // "FLEE"
	shape := make([]int, g.Nodes)
	for i := range shape {
		pick := rng.Intn(total)
		for _, t := range g.Templates {
			if pick < t.Weight {
				shape[i] = t.GPUs
				break
			}
			pick -= t.Weight
		}
	}
	return shape
}

// StartTimes returns the per-node boot offsets of the startup pattern
// (nil for instant boot, which keeps the fleet on its bit-identical
// fast path).
func (g *FleetGen) StartTimes() []sim.Time {
	if g.Startup.Pattern == StartupInstant {
		return nil
	}
	at := make([]sim.Time, g.Nodes)
	switch g.Startup.Pattern {
	case StartupLinear:
		for i := range at {
			at[i] = sim.Time(int64(g.Startup.Over) * int64(i) / int64(g.Nodes))
		}
	case StartupExponential:
		// Doubling cohorts: node 0 boots at 0, nodes 1-2 after one step,
		// nodes 3-6 after two, ... — the shape of a peer-to-peer join wave.
		steps := 0
		for c := 1; c < g.Nodes; c *= 2 {
			steps++
		}
		if steps == 0 {
			steps = 1
		}
		for i := range at {
			level := 0
			for c := 1; i >= c; c = c*2 + 1 {
				level++
			}
			at[i] = sim.Time(int64(g.Startup.Over) * int64(level) / int64(steps))
		}
	case StartupWave:
		for i := range at {
			wave := i * g.Startup.Waves / g.Nodes
			at[i] = sim.Time(int64(g.Startup.Over) * int64(wave) / int64(g.Startup.Waves))
		}
	}
	return at
}

// CompileFaults builds the scenario's fault schedule: scripted events in
// file order, or the chaos storm sampled from the scenario seed. The
// schedule is validated against the platform's GPU shape. Fault-free
// scenarios return nil, which keeps runs on the engine's fast paths.
func (sc *Scenario) CompileFaults() (*fault.Schedule, error) {
	if sc.Chaos != nil {
		cc := sc.chaosConfig()
		s, err := cc.Generate()
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		return s, nil
	}
	if len(sc.Events) == 0 {
		return nil, nil
	}
	s := &fault.Schedule{}
	for _, ev := range sc.Events {
		switch ev.Kind {
		case "crash":
			s.Crash(ev.Node, ev.At)
		case "restart":
			s.Restart(ev.Node, ev.At)
		case "gpu-slow":
			s.SlowGPU(ev.Node, ev.GPU, ev.At, ev.Factor)
		case "link-down":
			s.CutLink(ev.A, ev.B, ev.At)
		case "link-up":
			s.RestoreLink(ev.A, ev.B, ev.At)
		case "link-degrade":
			s.DegradeLink(ev.A, ev.B, ev.At, ev.LatencyFactor, ev.BandwidthFactor)
		case "join":
			s.Join(ev.Node, ev.At)
		case "preempt":
			s.Preempt(ev.Node, ev.At)
		}
	}
	if err := s.Validate(sc.gpuShape()); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	return s, nil
}

// elasticity maps the elasticity section onto the churn generator; fleet
// size, seed, and horizon come from the scenario.
func (sc *Scenario) elasticity() fault.Elasticity {
	e := sc.Elastic
	return fault.Elasticity{
		Seed:            sc.Seed,
		Nodes:           sc.nodeCount(),
		InitialNodes:    e.InitialNodes,
		Arrival:         e.Arrival,
		Over:            e.Over,
		Waves:           e.Waves,
		ColdStartJitter: e.ColdStartJitter,
		PreemptFraction: e.PreemptFraction,
		PreemptAfter:    e.PreemptAfter,
		Duration:        sc.Duration,
	}
}

// chaosConfig maps the chaos section onto the generator.
func (sc *Scenario) chaosConfig() fault.ChaosConfig {
	c := sc.Chaos
	zones := 0
	if sc.Gen != nil {
		zones = sc.Gen.Zones
	}
	return fault.ChaosConfig{
		Seed:     sc.Seed,
		Nodes:    sc.nodeCount(),
		GPUs:     sc.gpuShape(),
		Duration: sc.Duration,
		Zones:    zones,

		CrashFraction:   c.CrashFraction,
		RestartFraction: c.RestartFraction,
		MinDowntime:     c.MinDowntime,
		MaxDowntime:     c.MaxDowntime,

		StragglerFraction: c.StragglerFraction,
		StragglerFactor:   c.StragglerFactor,
		StragglerWindow:   c.StragglerWindow,

		LinkFaults:          c.LinkFaults,
		LinkCutFraction:     c.LinkCutFraction,
		LinkWindow:          c.LinkWindow,
		LinkLatencyFactor:   c.LinkLatencyFactor,
		LinkBandwidthFactor: c.LinkBandwidthFactor,

		CascadeCount:   c.CascadeCount,
		CascadeSize:    c.CascadeSize,
		CascadeSpacing: c.CascadeSpacing,

		ZoneOutages:        c.ZoneOutages,
		ZoneOutageDuration: c.ZoneOutageDuration,
	}
}
