package scenario

// Scenario execution. Timed assertions become fault probes armed inside
// virtual time — they observe the simulated world as it evolves, not a
// reconstruction of it — and metric assertions are evaluated against the
// run's deterministic summary. Everything that reaches the report is a
// pure function of (scenario, seed), so the report is byte-identical
// across runs and across engine shard widths.

import (
	"fmt"
	"sort"

	"rocket"
	"rocket/internal/fault"
	"rocket/internal/jobspec"
)

// RunOptions override scenario fields from the command line.
type RunOptions struct {
	// Seed, when non-zero, replaces the scenario seed.
	Seed uint64
	// Shards, when non-zero, sets the engine width (fleet mode). The
	// report is byte-identical at every width; the knob exists so CI can
	// prove that.
	Shards int
	// Spans, when non-nil, attaches a flight recorder to the run
	// (rockettrace's export path). Recorded timelines inherit the
	// report's determinism: byte-identical across widths and reruns.
	Spans *rocket.SpanRecorder
}

// Run executes the scenario and returns its report. The error return is
// reserved for execution failures (a scenario that cannot run at all);
// assertion failures are reported in Report.Pass, not as errors.
func Run(sc *Scenario, opts RunOptions) (*Report, error) {
	seed := sc.Seed
	if opts.Seed != 0 {
		seed = opts.Seed
	}
	run := *sc
	run.Seed = seed

	faults, err := run.CompileFaults()
	if err != nil {
		return nil, err
	}

	// Timed assertions become probes; each writes its own result slot
	// (indexed by assertion position), so sharded runs never race on
	// shared state. Fleet-mode probe times are validated to sit inside
	// the horizon, and pairs-mode runs drain every scheduled event, so
	// every probe is guaranteed to fire.
	var probes []fault.Probe
	observed := make([]bool, len(run.Asserts))
	for i, a := range run.Asserts {
		if a.Kind != AssertNodeDead && a.Kind != AssertNodeAlive {
			continue
		}
		idx := i
		probes = append(probes, fault.Probe{
			At:   a.At,
			Node: a.Node,
			Fn:   func(alive bool) { observed[idx] = alive },
		})
	}

	rep := &Report{
		Scenario: run.Name,
		Mode:     run.Mode,
		Seed:     seed,
		Faults:   faultTimeline(faults),
	}

	var metrics map[string]float64
	var summary string
	var runErr error
	switch run.Mode {
	case ModeFleet:
		metrics, summary, runErr = runFleet(&run, faults, probes, opts.Shards, opts.Spans)
	default:
		metrics, summary, runErr = runPairs(&run, faults, probes, opts.Spans)
	}
	if runErr != nil {
		return nil, runErr
	}
	rep.OutputSHA256 = hashSummary(summary)
	rep.Summary = summary

	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rep.Metrics = append(rep.Metrics, MetricValue{Name: name, Value: metrics[name]})
	}

	rep.Pass = true
	for i, a := range run.Asserts {
		r := AssertionResult{Desc: a.Describe(), Pass: true}
		switch a.Kind {
		case AssertNodeDead, AssertNodeAlive:
			r.AtMS = a.At.Seconds() * 1e3
			wantAlive := a.Kind == AssertNodeAlive
			if observed[i] != wantAlive {
				r.Pass = false
				r.Detail = fmt.Sprintf("node %d observed alive=%v at %v", a.Node, observed[i], a.At)
			}
		case AssertPairsComplete:
			want := float64(int64(run.App.Items) * int64(run.App.Items-1) / 2)
			if got := metrics["pairs"] + metrics["store_hits"]; got != want {
				r.Pass = false
				r.Detail = fmt.Sprintf("covered %v of %v pairs", got, want)
			}
		case AssertMetric:
			v, ok := metrics[a.Metric]
			if !ok {
				r.Pass = false
				r.Detail = fmt.Sprintf("unknown metric %q (known: %v)", a.Metric, names)
			} else if a.HasMin && v < a.Min {
				r.Pass = false
				r.Detail = fmt.Sprintf("%s = %v below min %v", a.Metric, v, a.Min)
			} else if a.HasMax && v > a.Max {
				r.Pass = false
				r.Detail = fmt.Sprintf("%s = %v above max %v", a.Metric, v, a.Max)
			}
		}
		if !r.Pass {
			rep.Pass = false
		}
		rep.Assertions = append(rep.Assertions, r)
	}
	return rep, nil
}

// runPairs executes the all-pairs application through the public API.
func runPairs(sc *Scenario, faults *fault.Schedule, probes []fault.Probe, spans *rocket.SpanRecorder) (map[string]float64, string, error) {
	app, err := jobspec.Spec{ID: sc.Name, App: sc.App.Kind, Items: sc.App.Items}.BuildApp(sc.Seed)
	if err != nil {
		return nil, "", err
	}
	spec := rocket.DAS5Node(gpuModels(sc.Fleet.GPUsPerNode)...)
	r := rocket.New(
		rocket.WithHomogeneous(sc.Fleet.Nodes, spec),
		rocket.WithSeed(sc.Seed),
		rocket.WithDistCache(sc.Fleet.DistCache),
		rocket.WithFaults(faults),
		rocket.WithFaultProbes(probes...),
		rocket.WithSpans(spans),
	)
	m, err := r.Run(app)
	if err != nil {
		return nil, "", fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	metrics := map[string]float64{
		"pairs":            float64(m.Pairs),
		"loads":            float64(m.Loads),
		"r":                m.R,
		"runtime_ms":       m.Runtime.Seconds() * 1e3,
		"io_bytes":         float64(m.IOBytes),
		"net_bytes":        float64(m.NetBytes),
		"crashes":          float64(m.Crashes),
		"restarts":         float64(m.Restarts),
		"dropped_messages": float64(m.DroppedMessages),
		"recovered_pairs":  float64(m.RecoveredPairs),
		"local_steals":     float64(m.LocalSteals),
		"remote_steals":    float64(m.RemoteSteals),
		"failed_steals":    float64(m.FailedSteals),
		"store_hits":       float64(m.StoreHits),
		"events":           float64(m.Events),
	}
	summary := fmt.Sprintf(
		"pairs nodes=%d items=%d pairs=%d loads=%d io=%d net=%d crashes=%d restarts=%d dropped=%d recovered=%d runtime=%v",
		sc.Fleet.Nodes, sc.App.Items, m.Pairs, m.Loads, m.IOBytes, m.NetBytes,
		m.Crashes, m.Restarts, m.DroppedMessages, m.RecoveredPairs, m.Runtime)
	return metrics, summary, nil
}

// runFleet executes the fleet workload over the sharded engine.
func runFleet(sc *Scenario, faults *fault.Schedule, probes []fault.Probe, shards int, spans *rocket.SpanRecorder) (map[string]float64, string, error) {
	if shards < 1 {
		shards = 1
	}
	shape := sc.gpuShape()
	specs := make([]rocket.NodeSpec, len(shape))
	for i, g := range shape {
		specs[i] = rocket.DAS5Node(gpuModels(g)...)
	}
	r := rocket.New(
		rocket.WithTopology(specs...),
		rocket.WithSeed(sc.Seed),
		rocket.WithShards(shards),
		rocket.WithFaults(faults),
		rocket.WithFaultProbes(probes...),
		rocket.WithSpans(spans),
	)
	res, err := r.RunFleet(func(c *rocket.FleetConfig) {
		c.Duration = sc.Duration
		if sc.Gen != nil {
			c.StartAt = sc.Gen.StartTimes()
		}
		if sc.Elastic != nil {
			e := sc.elasticity()
			c.Elastic = &e
		}
	})
	if err != nil {
		return nil, "", fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	metrics := map[string]float64{
		"nodes":           float64(res.Nodes),
		"events":          float64(res.Events),
		"messages":        float64(res.Messages),
		"bytes_sent":      float64(res.BytesSent),
		"dropped":         float64(res.Dropped),
		"heartbeats":      float64(res.Heartbeats),
		"rumors":          float64(res.Rumors),
		"work_done":       float64(res.WorkDone),
		"virtual_time_ms": res.VirtualTime.Seconds() * 1e3,
	}
	// Churn metrics appear only when membership actually changed, so
	// churn-free reports (and their goldens) keep the exact metric list.
	if res.Joins+res.Preempts > 0 {
		metrics["joins"] = float64(res.Joins)
		metrics["preempts"] = float64(res.Preempts)
		metrics["drained"] = float64(res.Drained)
	}
	// Result.String excludes shard width and window count by design: the
	// summary (and therefore the report hash) is a shard-invariance
	// witness.
	return metrics, res.String(), nil
}

// gpuModels returns n TitanX-Maxwell entries (the DAS-5 baseline device).
func gpuModels(n int) []rocket.GPUModel {
	models := make([]rocket.GPUModel, n)
	for i := range models {
		models[i] = rocket.TitanXMaxwell
	}
	return models
}

// faultTimeline renders the armed schedule for the report, in firing
// order.
func faultTimeline(s *fault.Schedule) []FaultRecord {
	if s.Empty() {
		return nil
	}
	recs := make([]FaultRecord, 0, len(s.Events))
	for _, ev := range s.Events {
		r := FaultRecord{AtMS: ev.At.Seconds() * 1e3, Kind: ev.Kind.String()}
		switch ev.Kind {
		case fault.NodeCrash, fault.NodeRestart, fault.NodeJoin, fault.NodePreempt:
			r.Target = fmt.Sprintf("node %d", ev.Node)
		case fault.GPUSlowdown:
			r.Target = fmt.Sprintf("node %d gpu %d", ev.Node, ev.GPU)
			r.Detail = fmt.Sprintf("factor %v", ev.Factor)
		default:
			r.Target = fmt.Sprintf("link %d-%d", ev.A, ev.B)
			if ev.Kind == fault.LinkDegrade {
				r.Detail = fmt.Sprintf("latency x%v bandwidth x%v", ev.LatencyFactor, ev.BandwidthFactor)
			}
		}
		recs = append(recs, r)
	}
	sort.SliceStable(recs, func(a, b int) bool { return recs[a].AtMS < recs[b].AtMS })
	return recs
}
