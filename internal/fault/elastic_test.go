package fault

import (
	"testing"

	"rocket/internal/sim"
)

func TestMembershipValidation(t *testing.T) {
	ones := []int{1, 1, 1, 1}
	cases := []struct {
		name string
		s    *Schedule
		ok   bool
	}{
		{"join then preempt", new(Schedule).Join(1, sim.Millis(1)).Preempt(1, sim.Millis(5)), true},
		{"preempt initial member", new(Schedule).Preempt(0, sim.Millis(2)), true},
		{"preempt crashed node", new(Schedule).Crash(2, sim.Millis(1)).Preempt(2, sim.Millis(2)), true},
		{"rejoin after preempt", new(Schedule).Preempt(3, sim.Millis(1)).Join(3, sim.Millis(4)), true},
		// A lone join is legal by definition: the first-event-is-join rule
		// makes the node initially absent. Likewise a preempt that fires
		// before a join of the same node reads as depart-then-rejoin of an
		// initial member.
		{"lone join defines initial absence", new(Schedule).Join(0, sim.Millis(1)), true},
		{"depart then rejoin", new(Schedule).Preempt(1, sim.Millis(2)).Join(1, sim.Millis(5)), true},
		{"double join", new(Schedule).Join(1, sim.Millis(1)).Join(1, sim.Millis(2)), false},
		{"crash before join", new(Schedule).Crash(1, sim.Millis(1)).Join(1, sim.Millis(2)), false},
		{"restart after preempt", new(Schedule).Crash(1, sim.Millis(1)).Preempt(1, sim.Millis(2)).Restart(1, sim.Millis(3)), false},
		{"crash after preempt", new(Schedule).Preempt(1, sim.Millis(1)).Crash(1, sim.Millis(2)), false},
		{"double preempt", new(Schedule).Preempt(1, sim.Millis(1)).Preempt(1, sim.Millis(2)), false},
	}
	for _, c := range cases {
		err := c.s.Validate(ones)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestInitialMembers(t *testing.T) {
	s := new(Schedule).
		Join(2, sim.Millis(3)).
		Crash(0, sim.Millis(1)).
		Preempt(3, sim.Millis(2)).
		Join(3, sim.Millis(6))
	got := InitialMembers(s, 4)
	want := []bool{true, true, false, true} // only node 2's first event is a join
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("InitialMembers[%d] = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	for i, m := range InitialMembers(nil, 3) {
		if !m {
			t.Fatalf("nil schedule: node %d not a member", i)
		}
	}
}

func TestInjectorJoinPreemptLifecycle(t *testing.T) {
	env := sim.NewEnv()
	s := new(Schedule).
		Join(2, sim.Millis(2)).
		Preempt(0, sim.Millis(4))
	var joined, preempted []int
	var aliveAtPreempt bool
	var inj *Injector
	inj, err := NewInjector(env, []int{1, 1, 1}, s, Hooks{
		OnJoin: func(n int) { joined = append(joined, n) },
		OnPreempt: func(n int) {
			preempted = append(preempted, n)
			aliveAtPreempt = inj.Alive(n) // pre-flip: still alive in the drain window
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Alive(2) {
		t.Fatal("node 2 alive before its join")
	}
	if got := inj.AliveCount(); got != 2 {
		t.Fatalf("initial AliveCount = %d, want 2", got)
	}
	env.RunUntil(sim.Millis(3))
	if !inj.Alive(2) {
		t.Fatal("node 2 dead after its join")
	}
	env.RunUntil(sim.Millis(5))
	if inj.Alive(0) {
		t.Fatal("node 0 alive after its preemption")
	}
	if len(joined) != 1 || joined[0] != 2 {
		t.Fatalf("OnJoin calls = %v, want [2]", joined)
	}
	if len(preempted) != 1 || preempted[0] != 0 {
		t.Fatalf("OnPreempt calls = %v, want [0]", preempted)
	}
	if !aliveAtPreempt {
		t.Fatal("OnPreempt observed a dead node: the drain window must precede the liveness flip")
	}
	env.Close()
}

func TestElasticityGenerateDeterministic(t *testing.T) {
	e := Elasticity{
		Seed: 7, Nodes: 32, InitialNodes: 8,
		Arrival: ArrivalWave, Waves: 4,
		ColdStartJitter: sim.Micros(500),
		PreemptFraction: 0.25, PreemptAfter: sim.Millis(5),
		Duration: sim.Millis(50),
	}
	a, err := e.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("regeneration changed event count: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs across regenerations: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	joins, preempts := 0, 0
	for _, ev := range a.Events {
		switch ev.Kind {
		case NodeJoin:
			joins++
		case NodePreempt:
			preempts++
		}
	}
	if joins != 24 {
		t.Fatalf("generated %d joins, want 24", joins)
	}
	if preempts == 0 {
		t.Fatal("generated no preemptions at fraction 0.25")
	}
}

func TestElasticityPatternsValidate(t *testing.T) {
	for _, pat := range []string{ArrivalInstant, ArrivalLinear, ArrivalExponential, ArrivalWave} {
		e := Elasticity{
			Seed: 3, Nodes: 16, InitialNodes: 4, Arrival: pat,
			ColdStartJitter: sim.Micros(200),
			PreemptFraction: 0.5,
			Duration:        sim.Millis(20),
		}
		s, err := e.Generate()
		if err != nil {
			t.Fatalf("%s: %v", pat, err)
		}
		ones := make([]int, e.Nodes)
		for i := range ones {
			ones[i] = 1
		}
		if err := s.Validate(ones); err != nil {
			t.Fatalf("%s: generated schedule invalid: %v", pat, err)
		}
		members := InitialMembers(s, e.Nodes)
		for i := 0; i < e.InitialNodes; i++ {
			if !members[i] {
				t.Fatalf("%s: initial node %d not a member", pat, i)
			}
		}
		for i := e.InitialNodes; i < e.Nodes; i++ {
			if members[i] {
				t.Fatalf("%s: joiner %d is an initial member", pat, i)
			}
		}
	}
}

func TestElasticitySplitRoutesMembership(t *testing.T) {
	e := Elasticity{
		Seed: 11, Nodes: 16, InitialNodes: 8,
		Arrival: ArrivalLinear, PreemptFraction: 0.25,
		Duration: sim.Millis(10),
	}
	s, err := e.Generate()
	if err != nil {
		t.Fatal(err)
	}
	shardOf := func(n int) int { return n * 4 / 16 }
	parts := Split(s, 4, shardOf)
	total := 0
	for sh, part := range parts {
		total += len(part.Events)
		for _, ev := range part.Events {
			if shardOf(ev.Node) != sh {
				t.Fatalf("event %+v routed to shard %d, owner is %d", ev, sh, shardOf(ev.Node))
			}
		}
	}
	if total != len(s.Events) {
		t.Fatalf("split dropped or duplicated events: %d of %d", total, len(s.Events))
	}
}
