package fault

import (
	"fmt"

	"rocket/internal/sim"
	"rocket/internal/stats"
)

// ChaosConfig parameterizes a seeded fault storm: independent crashes
// with optional restarts, straggler GPU windows, link cuts/degradations,
// cascading failures that roll through contiguous node runs, and zone
// outages that fail-stop a whole zone at one instant. Generate samples an
// event stream from Seed with a single deterministic generator, so the
// same config always yields the byte-identical Schedule — chaos runs are
// replayable by construction, never "flaky but interesting".
//
// All fractions are of the fleet (or of the device population); rates are
// not wall-clock — everything is placed inside the virtual horizon
// [0, Duration].
type ChaosConfig struct {
	// Seed drives all sampling.
	Seed uint64
	// Nodes is the fleet size.
	Nodes int
	// GPUs is the per-node device count shape used for straggler targets
	// and schedule validation; nil means one device per node (the fleet
	// workload's shape).
	GPUs []int
	// Duration is the virtual horizon events are placed in.
	Duration sim.Time
	// Zones partitions the fleet into contiguous zones (rack/failure
	// domains) for zone outages; 0 or 1 disables zone structure.
	Zones int

	// CrashFraction of the fleet fail-stops at independent times.
	CrashFraction float64
	// RestartFraction of the crashed nodes rejoin after a downtime drawn
	// uniformly from [MinDowntime, MaxDowntime].
	RestartFraction float64
	MinDowntime     sim.Time
	MaxDowntime     sim.Time

	// StragglerFraction of all devices slow down by StragglerFactor for a
	// StragglerWindow, then recover.
	StragglerFraction float64
	StragglerFactor   float64
	StragglerWindow   sim.Time

	// LinkFaults random node pairs suffer a link fault: LinkCutFraction
	// of them are hard partitions, the rest degrade by the latency and
	// bandwidth factors; every link heals after LinkWindow.
	LinkFaults          int
	LinkCutFraction     float64
	LinkWindow          sim.Time
	LinkLatencyFactor   float64
	LinkBandwidthFactor float64

	// CascadeCount correlated failures roll through CascadeSize
	// contiguous nodes, one crash every CascadeSpacing; cascade victims
	// do not restart (a cascade models a shared root cause).
	CascadeCount   int
	CascadeSize    int
	CascadeSpacing sim.Time

	// ZoneOutages whole zones crash at a single timestamp (deliberately
	// colliding — the tie-break contract is load-bearing here) and
	// restart together after ZoneOutageDuration.
	ZoneOutages        int
	ZoneOutageDuration sim.Time
}

// ZoneOf returns the zone owning node i under a contiguous split of nodes
// into zones near-equal blocks — the same arithmetic cluster.ShardMap
// uses for shard ownership, so zone boundaries are a pure function of the
// pair (nodes, zones).
func ZoneOf(node, nodes, zones int) int {
	if zones <= 1 {
		return 0
	}
	if zones > nodes {
		zones = nodes
	}
	return node * zones / nodes
}

// ZoneRange returns the half-open node interval [lo, hi) of zone z.
func ZoneRange(z, nodes, zones int) (lo, hi int) {
	if zones <= 1 {
		return 0, nodes
	}
	if zones > nodes {
		zones = nodes
	}
	lo = (z*nodes + zones - 1) / zones
	hi = ((z+1)*nodes + zones - 1) / zones
	return lo, hi
}

// validate rejects shapes Generate cannot place sensibly.
func (c ChaosConfig) validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("fault: chaos over %d nodes", c.Nodes)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("fault: chaos needs a positive horizon, got %v", c.Duration)
	}
	if c.GPUs != nil && len(c.GPUs) != c.Nodes {
		return fmt.Errorf("fault: chaos GPU shape has %d entries for %d nodes", len(c.GPUs), c.Nodes)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"crash_fraction", c.CrashFraction},
		{"restart_fraction", c.RestartFraction},
		{"straggler_fraction", c.StragglerFraction},
		{"link_cut_fraction", c.LinkCutFraction},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("fault: chaos %s %v outside [0, 1]", f.name, f.v)
		}
	}
	if c.StragglerFraction > 0 && c.StragglerFactor < 1 {
		return fmt.Errorf("fault: chaos straggler factor %v < 1", c.StragglerFactor)
	}
	if c.LinkFaults > 0 && c.LinkCutFraction < 1 &&
		(c.LinkLatencyFactor < 1 || c.LinkBandwidthFactor < 1) {
		return fmt.Errorf("fault: chaos link factors %v/%v < 1",
			c.LinkLatencyFactor, c.LinkBandwidthFactor)
	}
	if c.LinkFaults > 0 && c.Nodes < 2 {
		return fmt.Errorf("fault: chaos link faults need at least 2 nodes")
	}
	if c.CascadeCount > 0 && c.CascadeSize < 1 {
		return fmt.Errorf("fault: chaos cascade size %d < 1", c.CascadeSize)
	}
	if c.ZoneOutages > 0 && c.Zones < 2 {
		return fmt.Errorf("fault: chaos zone outages need zones >= 2, got %d", c.Zones)
	}
	return nil
}

// gpuShape returns the validation shape: c.GPUs or one device per node.
func (c ChaosConfig) gpuShape() []int {
	if c.GPUs != nil {
		return c.GPUs
	}
	ones := make([]int, c.Nodes)
	for i := range ones {
		ones[i] = 1
	}
	return ones
}

// Generate samples the fault storm into a Schedule whose events are in
// firing order (ascending time, generation order for ties). The result
// always passes Validate against the config's GPU shape: no-op restarts
// that a later crash would orphan are pruned (they would be no-ops at
// apply time anyway — the injector ignores restarts of live nodes).
func (c ChaosConfig) Generate() (*Schedule, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(c.Seed ^ 0x43484153) // "CHAS"
	d := float64(c.Duration)
	at := func(lo, hi float64) sim.Time {
		return sim.Time(d*lo + rng.Float64()*d*(hi-lo))
	}
	var events []Event

	// A single shuffled permutation feeds every node-victim draw, so the
	// independent crash and straggler pools never collide with each other.
	perm := make([]int, c.Nodes)
	for i := range perm {
		perm[i] = i
	}
	for i := c.Nodes - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	next := 0
	take := func(k int) []int {
		if next+k > len(perm) {
			k = len(perm) - next
		}
		v := perm[next : next+k]
		next += k
		return v
	}

	// Independent crashes, placed early enough that downtimes fit.
	crashes := int(c.CrashFraction*float64(c.Nodes) + 0.5)
	restarts := int(c.RestartFraction*float64(crashes) + 0.5)
	for i, node := range take(crashes) {
		t := at(0.10, 0.75)
		events = append(events, Event{At: t, Kind: NodeCrash, Node: node})
		if i < restarts {
			down := c.MinDowntime
			if c.MaxDowntime > c.MinDowntime {
				down += sim.Time(rng.Float64() * float64(c.MaxDowntime-c.MinDowntime))
			}
			if down <= 0 {
				down = c.Duration / 10
			}
			events = append(events, Event{At: t + down, Kind: NodeRestart, Node: node})
		}
	}

	// Straggler windows over the device population.
	gpus := c.gpuShape()
	if c.StragglerFraction > 0 {
		total := 0
		for _, g := range gpus {
			total += g
		}
		count := int(c.StragglerFraction*float64(total) + 0.5)
		for _, node := range take(count) {
			g := 0
			if gpus[node] > 1 {
				g = rng.Intn(gpus[node])
			}
			t := at(0.05, 0.60)
			events = append(events,
				Event{At: t, Kind: GPUSlowdown, Node: node, GPU: g, Factor: c.StragglerFactor},
				Event{At: t + c.StragglerWindow, Kind: GPUSlowdown, Node: node, GPU: g, Factor: 1})
		}
	}

	// Link faults between random distinct pairs.
	cuts := int(c.LinkCutFraction*float64(c.LinkFaults) + 0.5)
	for i := 0; i < c.LinkFaults; i++ {
		a := rng.Intn(c.Nodes)
		b := rng.Intn(c.Nodes - 1)
		if b >= a {
			b++
		}
		t := at(0.05, 0.70)
		if i < cuts {
			events = append(events,
				Event{At: t, Kind: LinkDown, A: a, B: b},
				Event{At: t + c.LinkWindow, Kind: LinkUp, A: a, B: b})
		} else {
			events = append(events,
				Event{At: t, Kind: LinkDegrade, A: a, B: b,
					LatencyFactor: c.LinkLatencyFactor, BandwidthFactor: c.LinkBandwidthFactor},
				Event{At: t + c.LinkWindow, Kind: LinkDegrade, A: a, B: b,
					LatencyFactor: 1, BandwidthFactor: 1})
		}
	}

	// Cascades: a shared root cause rolls through a contiguous node run.
	for i := 0; i < c.CascadeCount; i++ {
		size := c.CascadeSize
		if size > c.Nodes {
			size = c.Nodes
		}
		start := rng.Intn(c.Nodes)
		t := at(0.15, 0.60)
		for k := 0; k < size; k++ {
			events = append(events, Event{
				At:   t + sim.Time(k)*c.CascadeSpacing,
				Kind: NodeCrash,
				Node: (start + k) % c.Nodes,
			})
		}
	}

	// Zone outages: every node of the zone crashes at one shared
	// timestamp and the zone restarts together.
	for i := 0; i < c.ZoneOutages; i++ {
		z := rng.Intn(c.Zones)
		t := at(0.20, 0.65)
		lo, hi := ZoneRange(z, c.Nodes, c.Zones)
		for n := lo; n < hi; n++ {
			events = append(events, Event{At: t, Kind: NodeCrash, Node: n})
		}
		if c.ZoneOutageDuration > 0 {
			for n := lo; n < hi; n++ {
				events = append(events, Event{At: t + c.ZoneOutageDuration, Kind: NodeRestart, Node: n})
			}
		}
	}

	s := &Schedule{Events: sortAndPrune(events, c.Nodes)}
	if err := s.Validate(gpus); err != nil {
		// Unreachable by construction; kept as a hard backstop so a
		// generator bug can never smuggle an invalid schedule into a run.
		return nil, fmt.Errorf("fault: chaos generated an invalid schedule: %w", err)
	}
	return s, nil
}

// sortAndPrune puts events into firing order (stable by time) and drops
// restarts that would fire while their node is alive: those are no-ops to
// the injector, and pruning them keeps composed storms (a zone outage
// overlapping an independent crash's recovery) within Validate's
// restart-order rule without changing any applied transition.
func sortAndPrune(events []Event, nodes int) []Event {
	order := firingOrder(events)
	alive := make([]bool, nodes)
	for i := range alive {
		alive[i] = true
	}
	out := make([]Event, 0, len(events))
	for _, idx := range order {
		ev := events[idx]
		switch ev.Kind {
		case NodeCrash:
			alive[ev.Node] = false
		case NodeRestart:
			if alive[ev.Node] {
				continue
			}
			alive[ev.Node] = true
		}
		out = append(out, ev)
	}
	return out
}
