// Package fault implements deterministic fault injection for the Rocket
// simulation. A Schedule is a list of timed events — node crashes and
// restarts, per-GPU straggler windows, and link partitions or degradations
// — expressed in virtual time. An Injector arms the schedule on a sim.Env
// and maintains the resulting cluster health state, which the runtime
// wires into the network (liveness, link state, message drops), the GPU
// devices (kernel throttling), and its own crash/restart recovery hooks.
//
// Everything is driven by the discrete-event clock: the same schedule,
// seed, and workload always produce the same run, which is what lets the
// resilience experiment report reproducible completion-time inflation and
// lets tests assert exact recovery behavior.
package fault

import (
	"fmt"
	"sort"

	"rocket/internal/sim"
)

// EventKind discriminates scheduled fault events.
type EventKind int

const (
	// NodeCrash fail-stops a node: its volatile state (caches, deques,
	// pending protocol tables) is lost and messages to or from it drop.
	NodeCrash EventKind = iota
	// NodeRestart rejoins a crashed node with cold caches and idle workers.
	NodeRestart
	// GPUSlowdown multiplies one device's kernel durations by Factor
	// (>= 1) from the event time onward; Factor == 1 restores full speed.
	GPUSlowdown
	// LinkDown partitions the (symmetric) link between nodes A and B.
	LinkDown
	// LinkUp heals a partitioned link.
	LinkUp
	// LinkDegrade multiplies the link's propagation latency and
	// serialization time by LatencyFactor and BandwidthFactor (>= 1);
	// 1/1 restores the healthy link.
	LinkDegrade
	// NodeJoin brings a node into the fleet mid-run. A node whose first
	// membership event (in firing order) is a join starts the run absent:
	// dead to the fabric, its protocol loops unarmed (see InitialMembers).
	NodeJoin
	// NodePreempt is a scheduled departure (spot reclaim): the node leaves
	// permanently. Unlike OnCrash, the OnPreempt hook runs BEFORE the
	// liveness flip — the drain window in which the departing node's last
	// sends are still admitted by the fabric.
	NodePreempt
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case NodeCrash:
		return "crash"
	case NodeRestart:
		return "restart"
	case GPUSlowdown:
		return "gpu-slow"
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case LinkDegrade:
		return "link-degrade"
	case NodeJoin:
		return "join"
	case NodePreempt:
		return "preempt"
	}
	return fmt.Sprintf("fault.EventKind(%d)", int(k))
}

// Event is one scheduled fault. Which fields matter depends on Kind.
type Event struct {
	At   sim.Time
	Kind EventKind
	// Node is the target of NodeCrash, NodeRestart, and GPUSlowdown.
	Node int
	// GPU is the device index within Node (GPUSlowdown).
	GPU int
	// Factor is the GPUSlowdown multiplier (>= 1; 1 restores).
	Factor float64
	// A and B are the link endpoints (LinkDown, LinkUp, LinkDegrade);
	// links are symmetric.
	A, B int
	// LatencyFactor and BandwidthFactor are the LinkDegrade multipliers
	// (>= 1; both 1 restores).
	LatencyFactor   float64
	BandwidthFactor float64
}

// Schedule is an ordered set of fault events. The zero value is an empty
// (fault-free) schedule; the builder methods append and return the
// receiver for chaining.
type Schedule struct {
	Events []Event
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// Crash appends a fail-stop of node at the given time.
func (s *Schedule) Crash(node int, at sim.Time) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: NodeCrash, Node: node})
	return s
}

// Restart appends a rejoin of node at the given time.
func (s *Schedule) Restart(node int, at sim.Time) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: NodeRestart, Node: node})
	return s
}

// Join appends a mid-run arrival of node at the given time. A node whose
// first membership event is a join starts the run absent.
func (s *Schedule) Join(node int, at sim.Time) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: NodeJoin, Node: node})
	return s
}

// Preempt appends a scheduled departure (spot reclaim) of node at the
// given time. Preempted nodes never return; rejoining requires a Join.
func (s *Schedule) Preempt(node int, at sim.Time) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: NodePreempt, Node: node})
	return s
}

// SlowGPU appends a straggler window start: from at onward, kernels on
// device gpu of node take factor times their nominal duration.
func (s *Schedule) SlowGPU(node, gpu int, at sim.Time, factor float64) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: GPUSlowdown, Node: node, GPU: gpu, Factor: factor})
	return s
}

// RestoreGPU appends the end of a straggler window.
func (s *Schedule) RestoreGPU(node, gpu int, at sim.Time) *Schedule {
	return s.SlowGPU(node, gpu, at, 1)
}

// CutLink appends a symmetric partition of the link between a and b.
func (s *Schedule) CutLink(a, b int, at sim.Time) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: LinkDown, A: a, B: b})
	return s
}

// RestoreLink appends the healing of a partitioned link.
func (s *Schedule) RestoreLink(a, b int, at sim.Time) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: LinkUp, A: a, B: b})
	return s
}

// DegradeLink appends a symmetric degradation of the link between a and b:
// latency is multiplied by latF and serialization time by bwF from at
// onward. DegradeLink(a, b, at, 1, 1) restores the healthy link.
func (s *Schedule) DegradeLink(a, b int, at sim.Time, latF, bwF float64) *Schedule {
	s.Events = append(s.Events, Event{
		At: at, Kind: LinkDegrade, A: a, B: b,
		LatencyFactor: latF, BandwidthFactor: bwF,
	})
	return s
}

// Validate checks every event against the platform shape: gpus[i] is the
// number of devices of node i (len(gpus) is the node count). Beyond
// per-event shape checks (node and GPU indices in range, link endpoints
// in range and distinct, factors >= 1), it replays the schedule in firing
// order against the membership state machine (see validateMembership):
// restarts scheduled at-or-before their crash, joins of current members,
// and crashes/restarts/preemptions of nodes that are absent or have
// departed are all rejected — each is a transposition or composition error
// the injector would silently turn into a no-op or a resurrection.
func (s *Schedule) Validate(gpus []int) error {
	if s == nil {
		return nil
	}
	p := len(gpus)
	checkNode := func(i int, n int) error {
		if n < 0 || n >= p {
			return fmt.Errorf("fault: event %d: node %d out of range [0, %d)", i, n, p)
		}
		return nil
	}
	for i, ev := range s.Events {
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d: negative time %v", i, ev.At)
		}
		switch ev.Kind {
		case NodeCrash, NodeRestart, NodeJoin, NodePreempt:
			if err := checkNode(i, ev.Node); err != nil {
				return err
			}
		case GPUSlowdown:
			if err := checkNode(i, ev.Node); err != nil {
				return err
			}
			if ev.GPU < 0 || ev.GPU >= gpus[ev.Node] {
				return fmt.Errorf("fault: event %d: node %d has no GPU %d", i, ev.Node, ev.GPU)
			}
			if ev.Factor < 1 {
				return fmt.Errorf("fault: event %d: GPU factor %v < 1", i, ev.Factor)
			}
		case LinkDown, LinkUp, LinkDegrade:
			if err := checkNode(i, ev.A); err != nil {
				return err
			}
			if err := checkNode(i, ev.B); err != nil {
				return err
			}
			if ev.A == ev.B {
				return fmt.Errorf("fault: event %d: link endpoints equal (%d)", i, ev.A)
			}
			if ev.Kind == LinkDegrade && (ev.LatencyFactor < 1 || ev.BandwidthFactor < 1) {
				return fmt.Errorf("fault: event %d: link factors %v/%v < 1",
					i, ev.LatencyFactor, ev.BandwidthFactor)
			}
		default:
			return fmt.Errorf("fault: event %d: unknown kind %d", i, int(ev.Kind))
		}
	}
	return s.validateMembership(p)
}

// memberState is the per-node position in the membership state machine the
// validation replay tracks. Nodes without a leading join start present.
type memberState uint8

const (
	memberPresent memberState = iota
	memberCrashed
	memberAbsent   // not yet joined
	memberDeparted // preempted; permanent
)

// validateMembership replays crash/restart/join/preempt events in firing
// order (time order, schedule order for ties — exactly how NewInjector
// arms them) against a per-node state machine {absent, present, crashed,
// departed} and rejects transitions that can never apply: joins of members,
// preemptions or crashes of non-members, restarts of departed or absent
// nodes, and — the original restart-order rule — restarts that fire while
// their node is alive when a later crash of the same node exists (such a
// restart is scheduled at-or-before its crash and the node would stay dead
// forever).
func (s *Schedule) validateMembership(p int) error {
	order := firingOrder(s.Events)
	// crashLater[k] is true when, at firing position k, some later firing
	// position holds a crash of the same node.
	crashLater := make([]bool, len(order))
	pending := make([]bool, p)
	for k := len(order) - 1; k >= 0; k-- {
		ev := s.Events[order[k]]
		if ev.Kind != NodeCrash && ev.Kind != NodeRestart {
			continue
		}
		crashLater[k] = pending[ev.Node]
		if ev.Kind == NodeCrash {
			pending[ev.Node] = true
		}
	}
	state := initialStates(s.Events, order, p)
	for k, idx := range order {
		ev := s.Events[idx]
		switch ev.Kind {
		case NodeCrash:
			switch state[ev.Node] {
			case memberAbsent:
				return fmt.Errorf("fault: event %d: crash of node %d at %v before its join", idx, ev.Node, ev.At)
			case memberDeparted:
				return fmt.Errorf("fault: event %d: crash of node %d at %v after its preemption", idx, ev.Node, ev.At)
			}
			state[ev.Node] = memberCrashed
		case NodeRestart:
			switch state[ev.Node] {
			case memberAbsent:
				return fmt.Errorf("fault: event %d: restart of node %d at %v before its join", idx, ev.Node, ev.At)
			case memberDeparted:
				return fmt.Errorf("fault: event %d: restart of node %d at %v after its preemption (preempted nodes rejoin with Join)", idx, ev.Node, ev.At)
			case memberPresent:
				if crashLater[k] {
					return fmt.Errorf(
						"fault: event %d: restart of node %d at %v fires before its crash (restarts must be scheduled strictly after the crash they heal)",
						idx, ev.Node, ev.At)
				}
			}
			state[ev.Node] = memberPresent
		case NodeJoin:
			switch state[ev.Node] {
			case memberPresent, memberCrashed:
				return fmt.Errorf("fault: event %d: join of node %d at %v while it is a member", idx, ev.Node, ev.At)
			}
			state[ev.Node] = memberPresent
		case NodePreempt:
			switch state[ev.Node] {
			case memberAbsent:
				return fmt.Errorf("fault: event %d: preempt of node %d at %v before its join", idx, ev.Node, ev.At)
			case memberDeparted:
				return fmt.Errorf("fault: event %d: preempt of node %d at %v after its preemption", idx, ev.Node, ev.At)
			}
			state[ev.Node] = memberDeparted
		}
	}
	return nil
}

// initialStates derives the t=0 membership from the firing order: a node
// whose first membership event is a NodeJoin starts absent; every other
// node starts present.
func initialStates(events []Event, order []int, p int) []memberState {
	state := make([]memberState, p)
	seen := make([]bool, p)
	for _, idx := range order {
		ev := events[idx]
		switch ev.Kind {
		case NodeCrash, NodeRestart, NodeJoin, NodePreempt:
			if !seen[ev.Node] {
				seen[ev.Node] = true
				if ev.Kind == NodeJoin {
					state[ev.Node] = memberAbsent
				}
			}
		}
	}
	return state
}

// InitialMembers returns the t=0 membership the schedule implies over a
// fleet of p nodes: members[i] is false exactly when node i's first
// membership event in firing order is a NodeJoin — such a node starts the
// run absent (dead to the fabric, loops unarmed) and enters at its join.
// A nil or churn-free schedule yields all-true.
func InitialMembers(s *Schedule, p int) []bool {
	members := make([]bool, p)
	for i := range members {
		members[i] = true
	}
	if s == nil {
		return members
	}
	for i, st := range initialStates(s.Events, firingOrder(s.Events), p) {
		members[i] = st != memberAbsent
	}
	return members
}

// firingOrder returns event indices in firing order: ascending time,
// original schedule order for equal timestamps. This is the exact order
// NewInjector arms events in, and — because Split preserves relative
// order and routes every event touching one piece of state to the same
// shard — the order each ShardedInjector applies them in at every width.
func firingOrder(events []Event) []int {
	order := make([]int, len(events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return events[order[a]].At < events[order[b]].At
	})
	return order
}

// Hooks are the runtime's recovery callbacks, invoked in scheduler context
// after the injector has updated its own state (so a hook observing
// Alive/Link/GPUFactor sees the post-event world) — with one documented
// exception: OnPreempt runs BEFORE the liveness flip. A preemption is a
// scheduled departure with a drain window, and the hook is that window:
// sends the departing node issues inside OnPreempt are still admitted by
// a fabric consulting Alive, which is what lets it hand its remaining
// work to a peer on the way out.
type Hooks struct {
	OnCrash   func(node int)
	OnRestart func(node int)
	// OnJoin fires when a NodeJoin brings a node in (post-flip: the node
	// is already alive). The fleet layer arms the node's protocol loops
	// here.
	OnJoin func(node int)
	// OnPreempt fires when a NodePreempt departs a node, BEFORE the
	// liveness flip (see above).
	OnPreempt func(node int)
}

// linkKey normalizes a symmetric link to (min, max).
func linkKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

type linkHealth struct {
	down bool
	latF float64
	bwF  float64
}

// Injector is the armed form of a Schedule: it owns the evolving health
// state and exposes the query hooks the cluster layers consume. All
// methods must be called from the Env's scheduler goroutine.
type Injector struct {
	alive []bool
	gpuF  map[[2]int]float64
	links map[[2]int]linkHealth
	// restartsLeft counts not-yet-fired NodeRestart events; recovery uses
	// it to decide whether an all-dead partition can still heal.
	restartsLeft int
	hooks        Hooks
}

// NewInjector validates the schedule against the platform shape (gpus[i] =
// number of devices of node i) and arms every event on env.
//
// Tie-break contract: events sharing a timestamp fire in schedule order
// (the stable firing order of Schedule.Validate). This is a documented,
// tested invariant — chaos-generated schedules routinely collide on
// timestamps (a zone outage crashes a whole zone at one instant), and the
// apply order decides which hook runs first. The same order holds at
// every shard width: Split preserves relative order within each per-shard
// schedule, and any two events that touch the same health state (same
// node, same device, same link) are routed to the same shard, so their
// relative firing position is identical whether one injector or eight
// apply them.
func NewInjector(env *sim.Env, gpus []int, s *Schedule, hooks Hooks) (*Injector, error) {
	if err := s.Validate(gpus); err != nil {
		return nil, err
	}
	inj := &Injector{
		// Initial liveness is the schedule's implied t=0 membership: nodes
		// with a leading join start absent (dead to every query) and flip
		// alive when the join fires.
		alive: InitialMembers(s, len(gpus)),
		gpuF:  make(map[[2]int]float64),
		links: make(map[[2]int]linkHealth),
		hooks: hooks,
	}
	for _, idx := range firingOrder(s.Events) {
		ev := s.Events[idx]
		if ev.Kind == NodeRestart {
			inj.restartsLeft++
		}
		env.At(ev.At, func() { inj.apply(ev) })
	}
	return inj, nil
}

// apply transitions the health state for one event and runs the matching
// hook. Redundant events (crashing a dead node, healing a healthy link)
// are no-ops so schedules compose without bookkeeping.
func (inj *Injector) apply(ev Event) {
	switch ev.Kind {
	case NodeCrash:
		if !inj.alive[ev.Node] {
			return
		}
		inj.alive[ev.Node] = false
		if inj.hooks.OnCrash != nil {
			inj.hooks.OnCrash(ev.Node)
		}
	case NodeRestart:
		inj.restartsLeft--
		if inj.alive[ev.Node] {
			return
		}
		inj.alive[ev.Node] = true
		if inj.hooks.OnRestart != nil {
			inj.hooks.OnRestart(ev.Node)
		}
	case NodeJoin:
		if inj.alive[ev.Node] {
			return
		}
		inj.alive[ev.Node] = true
		if inj.hooks.OnJoin != nil {
			inj.hooks.OnJoin(ev.Node)
		}
	case NodePreempt:
		if !inj.alive[ev.Node] {
			return
		}
		// Drain window: the hook runs while the node is still alive, so
		// its parting sends are admitted; the flip follows immediately.
		if inj.hooks.OnPreempt != nil {
			inj.hooks.OnPreempt(ev.Node)
		}
		inj.alive[ev.Node] = false
	case GPUSlowdown:
		key := [2]int{ev.Node, ev.GPU}
		if ev.Factor == 1 {
			delete(inj.gpuF, key)
			return
		}
		inj.gpuF[key] = ev.Factor
	case LinkDown:
		lh := inj.links[linkKey(ev.A, ev.B)]
		lh.down = true
		inj.links[linkKey(ev.A, ev.B)] = lh
	case LinkUp:
		lh := inj.links[linkKey(ev.A, ev.B)]
		lh.down = false
		inj.setOrClear(linkKey(ev.A, ev.B), lh)
	case LinkDegrade:
		lh := inj.links[linkKey(ev.A, ev.B)]
		lh.latF, lh.bwF = ev.LatencyFactor, ev.BandwidthFactor
		inj.setOrClear(linkKey(ev.A, ev.B), lh)
	}
}

func (inj *Injector) setOrClear(key [2]int, lh linkHealth) {
	if !lh.down && (lh.latF == 0 || lh.latF == 1) && (lh.bwF == 0 || lh.bwF == 1) {
		delete(inj.links, key)
		return
	}
	inj.links[key] = lh
}

// Alive reports node liveness.
func (inj *Injector) Alive(node int) bool { return inj.alive[node] }

// AliveCount returns the number of live nodes.
func (inj *Injector) AliveCount() int {
	n := 0
	for _, a := range inj.alive {
		if a {
			n++
		}
	}
	return n
}

// RestartsPending reports whether any NodeRestart event has yet to fire —
// i.e. whether an all-dead partition can still heal on its own.
func (inj *Injector) RestartsPending() bool { return inj.restartsLeft > 0 }

// GPUFactor returns the current straggler multiplier for a device (1 when
// healthy).
func (inj *Injector) GPUFactor(node, gpu int) float64 {
	if f, ok := inj.gpuF[[2]int{node, gpu}]; ok {
		return f
	}
	return 1
}

// Link returns the health of the (symmetric) link between two nodes: up,
// plus the latency and serialization-time multipliers (1 when healthy).
func (inj *Injector) Link(from, to int) (up bool, latF, bwF float64) {
	lh, ok := inj.links[linkKey(from, to)]
	if !ok {
		return true, 1, 1
	}
	latF, bwF = lh.latF, lh.bwF
	if latF == 0 {
		latF = 1
	}
	if bwF == 0 {
		bwF = 1
	}
	return !lh.down, latF, bwF
}
