package fault

import (
	"testing"

	"rocket/internal/sim"
)

// A probe sharing a timestamp with a fault event observes the post-event
// world; a probe before the event observes the pre-event world.
func TestArmProbesObservesPostEventState(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	s := new(Schedule).
		Crash(1, sim.Millis(5)).
		Restart(1, sim.Millis(9))
	inj, err := NewInjector(env, []int{1, 1}, s, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[sim.Time]bool{}
	probes := []Probe{
		{At: sim.Millis(4), Node: 1, Fn: func(alive bool) { got[sim.Millis(4)] = alive }},
		{At: sim.Millis(5), Node: 1, Fn: func(alive bool) { got[sim.Millis(5)] = alive }},
		{At: sim.Millis(9), Node: 1, Fn: func(alive bool) { got[sim.Millis(9)] = alive }},
	}
	ArmProbes(env, inj, probes)
	env.RunUntil(sim.Millis(10))
	want := map[sim.Time]bool{
		sim.Millis(4): true,  // before the crash
		sim.Millis(5): false, // same tick as the crash: post-event
		sim.Millis(9): true,  // same tick as the restart: post-event
	}
	for at, w := range want {
		if got[at] != w {
			t.Errorf("probe at %v observed alive=%v, want %v", at, got[at], w)
		}
	}
}

// Nil injector is the failure-free world: every probe observes alive.
func TestArmProbesNilInjector(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	fired := 0
	ArmProbes(env, nil, []Probe{
		{At: sim.Millis(1), Node: 0, Fn: func(alive bool) {
			fired++
			if !alive {
				t.Error("nil injector reported a dead node")
			}
		}},
		{At: sim.Millis(2), Node: 7, Fn: func(alive bool) {
			fired++
			if !alive {
				t.Error("nil injector reported a dead node")
			}
		}},
	})
	env.RunUntil(sim.Millis(3))
	if fired != 2 {
		t.Fatalf("fired %d probes, want 2", fired)
	}
}

// Sharded probes fire on the node's owning shard and observe the same
// health trajectory at every shard width.
func TestArmShardedProbesAcrossWidths(t *testing.T) {
	const nodes = 8
	gpus := make([]int, nodes)
	for i := range gpus {
		gpus[i] = 1
	}
	s := new(Schedule).
		Crash(2, sim.Millis(3)).
		Crash(6, sim.Millis(3)).
		Restart(6, sim.Millis(7))
	probeAt := []sim.Time{sim.Millis(2), sim.Millis(3), sim.Millis(7), sim.Millis(9)}

	var all [][]bool
	for _, width := range []int{1, 2, 4, 8} {
		env := sim.NewEnv(sim.WithShards(width))
		ss := env.Sharded()
		shardOf := func(n int) int { return n * width / nodes }
		si, err := NewShardedInjector(ss, gpus, s, shardOf, Hooks{})
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		obs := make([]bool, 2*len(probeAt))
		var probes []Probe
		for i, at := range probeAt {
			i, at := i, at
			probes = append(probes,
				Probe{At: at, Node: 2, Fn: func(alive bool) { obs[2*i] = alive }},
				Probe{At: at, Node: 6, Fn: func(alive bool) { obs[2*i+1] = alive }})
		}
		ArmShardedProbes(ss, si, shardOf, probes)
		env.RunUntil(sim.Millis(10))
		env.Close()
		all = append(all, obs)
	}
	want := []bool{
		true, true, // t=2ms: both alive
		false, false, // t=3ms: both crashed (post-event)
		false, true, // t=7ms: node 6 restarted
		false, true, // t=9ms: steady state
	}
	for w, obs := range all {
		for i := range want {
			if obs[i] != want[i] {
				t.Fatalf("width %d: observations = %v, want %v", []int{1, 2, 4, 8}[w], obs, want)
			}
		}
	}
}

// Nil sharded injector is the failure-free world on every shard.
func TestArmShardedProbesNilInjector(t *testing.T) {
	env := sim.NewEnv(sim.WithShards(2))
	defer env.Close()
	ss := env.Sharded()
	fired := 0
	ArmShardedProbes(ss, nil, func(n int) int { return n / 4 }, []Probe{
		{At: sim.Millis(1), Node: 0, Fn: func(alive bool) {
			fired++
			if !alive {
				t.Error("nil sharded injector reported a dead node")
			}
		}},
		{At: sim.Millis(1), Node: 6, Fn: func(alive bool) {
			fired++
			if !alive {
				t.Error("nil sharded injector reported a dead node")
			}
		}},
	})
	env.RunUntil(sim.Millis(2))
	if fired != 2 {
		t.Fatalf("fired %d probes, want 2", fired)
	}
}
