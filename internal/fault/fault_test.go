package fault

import (
	"testing"

	"rocket/internal/sim"
)

func TestScheduleValidate(t *testing.T) {
	gpus := []int{2, 1}
	cases := []*Schedule{
		new(Schedule).Crash(2, 0),
		new(Schedule).Crash(-1, 0),
		new(Schedule).Crash(0, -sim.Second),
		new(Schedule).SlowGPU(0, 2, 0, 2),
		new(Schedule).SlowGPU(0, 0, 0, 0.5),
		new(Schedule).CutLink(0, 0, 0),
		new(Schedule).CutLink(0, 5, 0),
		new(Schedule).DegradeLink(0, 1, 0, 0.5, 1),
	}
	for i, s := range cases {
		if err := s.Validate(gpus); err == nil {
			t.Errorf("case %d: invalid schedule accepted: %+v", i, s.Events)
		}
	}
	ok := new(Schedule).
		Crash(1, sim.Second).
		Restart(1, 2*sim.Second).
		SlowGPU(0, 1, 0, 4).
		CutLink(0, 1, sim.Second).
		RestoreLink(0, 1, 2*sim.Second).
		DegradeLink(0, 1, 3*sim.Second, 2, 8)
	if err := ok.Validate(gpus); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	var nilSched *Schedule
	if !nilSched.Empty() || !new(Schedule).Empty() {
		t.Fatal("Empty misreported")
	}
	if err := nilSched.Validate(gpus); err != nil {
		t.Fatal("nil schedule must validate")
	}
}

func TestInjectorLifecycle(t *testing.T) {
	e := sim.NewEnv()
	s := new(Schedule).
		Crash(1, sim.Second).
		SlowGPU(0, 0, sim.Second, 3).
		CutLink(0, 2, sim.Second).
		Restart(1, 3*sim.Second).
		RestoreGPU(0, 0, 3*sim.Second).
		RestoreLink(0, 2, 3*sim.Second)
	var crashes, restarts []int
	inj, err := NewInjector(e, []int{1, 1, 1}, s, Hooks{
		OnCrash:   func(n int) { crashes = append(crashes, n) },
		OnRestart: func(n int) { restarts = append(restarts, n) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Alive(1) || inj.AliveCount() != 3 || !inj.RestartsPending() {
		t.Fatal("initial state wrong")
	}
	e.RunUntil(2 * sim.Second)
	if inj.Alive(1) || inj.AliveCount() != 2 {
		t.Fatal("crash not applied")
	}
	if f := inj.GPUFactor(0, 0); f != 3 {
		t.Fatalf("GPUFactor = %v, want 3", f)
	}
	if up, _, _ := inj.Link(2, 0); up {
		t.Fatal("cut link still up (symmetric lookup)")
	}
	if up, latF, bwF := inj.Link(0, 1); !up || latF != 1 || bwF != 1 {
		t.Fatal("untouched link not healthy")
	}
	e.RunUntil(4 * sim.Second)
	e.Close()
	if !inj.Alive(1) || inj.RestartsPending() {
		t.Fatal("restart not applied")
	}
	if f := inj.GPUFactor(0, 0); f != 1 {
		t.Fatalf("restored GPUFactor = %v", f)
	}
	if up, _, _ := inj.Link(0, 2); !up {
		t.Fatal("link not restored")
	}
	if len(crashes) != 1 || crashes[0] != 1 || len(restarts) != 1 || restarts[0] != 1 {
		t.Fatalf("hooks: crashes=%v restarts=%v", crashes, restarts)
	}
}

func TestInjectorRedundantEventsAreNoOps(t *testing.T) {
	e := sim.NewEnv()
	s := new(Schedule).
		Crash(0, sim.Second).
		Crash(0, sim.Second). // second crash of a dead node
		Restart(0, 2*sim.Second).
		Restart(0, 2*sim.Second) // second restart of a live node
	var crashes, restarts int
	if _, err := NewInjector(e, []int{1}, s, Hooks{
		OnCrash:   func(int) { crashes++ },
		OnRestart: func(int) { restarts++ },
	}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	e.Close()
	if crashes != 1 || restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1", crashes, restarts)
	}
}

func TestInjectorLinkDegradation(t *testing.T) {
	e := sim.NewEnv()
	s := new(Schedule).
		DegradeLink(0, 1, 0, 2, 8).
		DegradeLink(0, 1, sim.Second, 1, 1)
	inj, err := NewInjector(e, []int{1, 1}, s, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(sim.Millis(500))
	if up, latF, bwF := inj.Link(1, 0); !up || latF != 2 || bwF != 8 {
		t.Fatalf("degraded link = %v/%v/%v", up, latF, bwF)
	}
	e.RunUntil(2 * sim.Second)
	e.Close()
	if up, latF, bwF := inj.Link(0, 1); !up || latF != 1 || bwF != 1 {
		t.Fatalf("restored link = %v/%v/%v", up, latF, bwF)
	}
	if len(inj.links) != 0 {
		t.Fatal("healthy link not cleared from the map")
	}
}

// The restart-order rule: a restart that fires while its node is alive
// and has a later crash can never heal that crash — Validate rejects it.
func TestValidateRestartOrder(t *testing.T) {
	gpus := []int{1, 1}
	bad := []*Schedule{
		// Plainly transposed times.
		new(Schedule).Restart(0, sim.Second).Crash(0, 2*sim.Second),
		// Same timestamp, restart earlier in schedule order: it fires
		// first (while alive) and the crash lands after it.
		new(Schedule).Restart(0, sim.Second).Crash(0, sim.Second),
		// A healed first crash does not excuse a transposed second pair.
		new(Schedule).
			Crash(0, sim.Second).Restart(0, 2*sim.Second).
			Restart(0, 3*sim.Second).Crash(0, 4*sim.Second),
	}
	for i, s := range bad {
		if err := s.Validate(gpus); err == nil {
			t.Errorf("case %d: restart-before-crash accepted: %+v", i, s.Events)
		}
	}
	good := []*Schedule{
		// Crash then restart at the very same timestamp heals: ties fire
		// in schedule order.
		new(Schedule).Crash(0, sim.Second).Restart(0, sim.Second),
		// Interleaved lifecycles on one node.
		new(Schedule).
			Crash(0, sim.Second).Restart(0, 2*sim.Second).
			Crash(0, 3*sim.Second).Restart(0, 4*sim.Second),
		// A lone restart with no crash anywhere is a tolerated no-op
		// (schedules compose; see TestInjectorRedundantEventsAreNoOps).
		new(Schedule).Restart(1, sim.Second),
		// A redundant restart after a healed crash, with no further
		// crash, is equally harmless.
		new(Schedule).
			Crash(0, sim.Second).Restart(0, 2*sim.Second).Restart(0, 3*sim.Second),
	}
	for i, s := range good {
		if err := s.Validate(gpus); err != nil {
			t.Errorf("case %d: valid lifecycle rejected: %v", i, err)
		}
	}
}

// Link endpoints must be in range for the fleet for every link kind, not
// just LinkDown.
func TestValidateLinkEndpointRange(t *testing.T) {
	gpus := []int{1, 1, 1}
	bad := []*Schedule{
		new(Schedule).RestoreLink(0, 3, 0),
		new(Schedule).RestoreLink(-1, 1, 0),
		new(Schedule).DegradeLink(1, 7, 0, 2, 2),
		new(Schedule).DegradeLink(2, 2, 0, 2, 2),
		new(Schedule).CutLink(3, 4, 0),
	}
	for i, s := range bad {
		if err := s.Validate(gpus); err == nil {
			t.Errorf("case %d: out-of-range link endpoints accepted: %+v", i, s.Events)
		}
	}
}

// Same-timestamp events apply in schedule order — the documented
// tie-break. Crash-then-restart at one instant leaves the node alive;
// slowdown-then-restore leaves the device healthy, and the reverse
// orders leave it dead / throttled.
func TestInjectorTieBreakIsScheduleOrder(t *testing.T) {
	at := sim.Millis(1)
	run := func(s *Schedule) *Injector {
		t.Helper()
		e := sim.NewEnv()
		inj, err := NewInjector(e, []int{1, 1}, s, Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		e.Run()
		e.Close()
		return inj
	}
	inj := run(new(Schedule).Crash(0, at).Restart(0, at))
	if !inj.Alive(0) {
		t.Fatal("crash;restart at one timestamp must end alive")
	}
	inj = run(new(Schedule).SlowGPU(1, 0, at, 4).RestoreGPU(1, 0, at))
	if f := inj.GPUFactor(1, 0); f != 1 {
		t.Fatalf("slow;restore at one timestamp: factor = %v, want 1", f)
	}
	inj = run(new(Schedule).RestoreGPU(1, 0, at).SlowGPU(1, 0, at, 4))
	if f := inj.GPUFactor(1, 0); f != 4 {
		t.Fatalf("restore;slow at one timestamp: factor = %v, want 4", f)
	}
	inj = run(new(Schedule).CutLink(0, 1, at).RestoreLink(0, 1, at))
	if up, _, _ := inj.Link(0, 1); !up {
		t.Fatal("cut;restore at one timestamp must end up")
	}
}
