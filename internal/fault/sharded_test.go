package fault

import (
	"testing"

	"rocket/internal/sim"
)

func TestSplitRoutesToOwningShard(t *testing.T) {
	s := new(Schedule).
		Crash(0, sim.Millis(1)).
		Crash(5, sim.Millis(2)).
		Restart(0, sim.Millis(3)).
		SlowGPU(6, 0, sim.Millis(1), 2).
		CutLink(1, 6, sim.Millis(1)).    // crosses the shard boundary
		RestoreLink(1, 2, sim.Millis(2)) // both endpoints on shard 0
	shardOf := func(n int) int { return n / 4 } // nodes 0-3 → shard 0, 4-7 → shard 1
	parts := Split(s, 2, shardOf)
	if got := len(parts[0].Events); got != 4 {
		t.Fatalf("shard 0 got %d events, want 4", got)
	}
	if got := len(parts[1].Events); got != 3 {
		t.Fatalf("shard 1 got %d events, want 3", got)
	}
	// The cross-boundary link event must appear on both shards.
	count := 0
	for _, p := range parts {
		for _, ev := range p.Events {
			if ev.Kind == LinkDown && ev.A == 1 && ev.B == 6 {
				count++
			}
		}
	}
	if count != 2 {
		t.Fatalf("cross-shard link event appears %d times, want 2", count)
	}
	// The same-shard link event must appear exactly once.
	count = 0
	for _, p := range parts {
		for _, ev := range p.Events {
			if ev.Kind == LinkUp {
				count++
			}
		}
	}
	if count != 1 {
		t.Fatalf("same-shard link event appears %d times, want 1", count)
	}
	// Nil schedules split into empty parts.
	for _, p := range Split(nil, 3, shardOf) {
		if !p.Empty() {
			t.Fatal("nil schedule split non-empty")
		}
	}
}

func TestShardedInjectorFiresOnOwningShard(t *testing.T) {
	env := sim.NewEnv(sim.WithShards(2))
	ss := env.Sharded()
	gpus := []int{1, 1, 1, 1}
	shardOf := func(n int) int { return n / 2 }
	s := new(Schedule).
		Crash(0, sim.Millis(1)).
		Crash(3, sim.Millis(1)).
		Restart(3, sim.Millis(2))
	var crashed []int
	si, err := NewShardedInjector(ss, gpus, s, shardOf, Hooks{
		OnCrash: func(n int) { crashed = append(crashed, n) },
	})
	if err != nil {
		t.Fatal(err)
	}
	env.RunUntil(sim.Millis(1))
	if len(crashed) != 2 {
		t.Fatalf("crashed = %v, want both nodes", crashed)
	}
	if si.Alive(0) || si.Alive(3) {
		t.Fatal("crashed nodes still alive")
	}
	if !si.For(1).Alive(1) {
		t.Fatal("healthy node reported dead")
	}
	// Shard 0's injector never saw node 3's events: its (stale) view of
	// node 3 is untouched — the ownership contract means nobody asks it.
	if !si.Shard(0).Alive(3) {
		t.Fatal("node 3's crash leaked onto shard 0's injector")
	}
	env.RunUntil(sim.Millis(2))
	if !si.Alive(3) {
		t.Fatal("node 3 did not restart")
	}
	env.Close()
}

func TestShardedInjectorValidates(t *testing.T) {
	env := sim.NewEnv(sim.WithShards(2))
	defer env.Close()
	s := new(Schedule).Crash(99, sim.Millis(1))
	if _, err := NewShardedInjector(env.Sharded(), []int{1, 1}, s, func(int) int { return 0 }, Hooks{}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}
