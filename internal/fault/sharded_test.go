package fault

import (
	"testing"

	"rocket/internal/sim"
)

func TestSplitRoutesToOwningShard(t *testing.T) {
	s := new(Schedule).
		Crash(0, sim.Millis(1)).
		Crash(5, sim.Millis(2)).
		Restart(0, sim.Millis(3)).
		SlowGPU(6, 0, sim.Millis(1), 2).
		CutLink(1, 6, sim.Millis(1)).    // crosses the shard boundary
		RestoreLink(1, 2, sim.Millis(2)) // both endpoints on shard 0
	shardOf := func(n int) int { return n / 4 } // nodes 0-3 → shard 0, 4-7 → shard 1
	parts := Split(s, 2, shardOf)
	if got := len(parts[0].Events); got != 4 {
		t.Fatalf("shard 0 got %d events, want 4", got)
	}
	if got := len(parts[1].Events); got != 3 {
		t.Fatalf("shard 1 got %d events, want 3", got)
	}
	// The cross-boundary link event must appear on both shards.
	count := 0
	for _, p := range parts {
		for _, ev := range p.Events {
			if ev.Kind == LinkDown && ev.A == 1 && ev.B == 6 {
				count++
			}
		}
	}
	if count != 2 {
		t.Fatalf("cross-shard link event appears %d times, want 2", count)
	}
	// The same-shard link event must appear exactly once.
	count = 0
	for _, p := range parts {
		for _, ev := range p.Events {
			if ev.Kind == LinkUp {
				count++
			}
		}
	}
	if count != 1 {
		t.Fatalf("same-shard link event appears %d times, want 1", count)
	}
	// Nil schedules split into empty parts.
	for _, p := range Split(nil, 3, shardOf) {
		if !p.Empty() {
			t.Fatal("nil schedule split non-empty")
		}
	}
}

func TestShardedInjectorFiresOnOwningShard(t *testing.T) {
	env := sim.NewEnv(sim.WithShards(2))
	ss := env.Sharded()
	gpus := []int{1, 1, 1, 1}
	shardOf := func(n int) int { return n / 2 }
	s := new(Schedule).
		Crash(0, sim.Millis(1)).
		Crash(3, sim.Millis(1)).
		Restart(3, sim.Millis(2))
	var crashed []int
	si, err := NewShardedInjector(ss, gpus, s, shardOf, Hooks{
		OnCrash: func(n int) { crashed = append(crashed, n) },
	})
	if err != nil {
		t.Fatal(err)
	}
	env.RunUntil(sim.Millis(1))
	if len(crashed) != 2 {
		t.Fatalf("crashed = %v, want both nodes", crashed)
	}
	if si.Alive(0) || si.Alive(3) {
		t.Fatal("crashed nodes still alive")
	}
	if !si.For(1).Alive(1) {
		t.Fatal("healthy node reported dead")
	}
	// Shard 0's injector never saw node 3's events: its (stale) view of
	// node 3 is untouched — the ownership contract means nobody asks it.
	if !si.Shard(0).Alive(3) {
		t.Fatal("node 3's crash leaked onto shard 0's injector")
	}
	env.RunUntil(sim.Millis(2))
	if !si.Alive(3) {
		t.Fatal("node 3 did not restart")
	}
	env.Close()
}

func TestShardedInjectorValidates(t *testing.T) {
	env := sim.NewEnv(sim.WithShards(2))
	defer env.Close()
	s := new(Schedule).Crash(99, sim.Millis(1))
	if _, err := NewShardedInjector(env.Sharded(), []int{1, 1}, s, func(int) int { return 0 }, Hooks{}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// Split edge cases: an empty (but non-nil) schedule, a schedule whose
// events all land on one shard, and a link event whose endpoints straddle
// shards while other events interleave around it.
func TestSplitEdgeCases(t *testing.T) {
	shardOf := func(n int) int { return n / 4 } // 8 nodes, 2 shards

	// Empty schedule: every part exists and is empty.
	for i, p := range Split(new(Schedule), 3, func(int) int { return 0 }) {
		if p == nil || !p.Empty() {
			t.Fatalf("empty schedule: part %d = %+v", i, p)
		}
	}

	// All events on one shard: the other part stays empty and the dense
	// part preserves schedule order exactly.
	oneSide := new(Schedule).
		Crash(1, sim.Millis(2)).
		SlowGPU(2, 0, sim.Millis(1), 3).
		CutLink(0, 3, sim.Millis(1)).
		Restart(1, sim.Millis(3))
	parts := Split(oneSide, 2, shardOf)
	if len(parts[1].Events) != 0 {
		t.Fatalf("shard 1 got %d events, want 0", len(parts[1].Events))
	}
	if len(parts[0].Events) != len(oneSide.Events) {
		t.Fatalf("shard 0 got %d events, want %d", len(parts[0].Events), len(oneSide.Events))
	}
	for i, ev := range parts[0].Events {
		if ev != oneSide.Events[i] {
			t.Fatalf("shard 0 event %d reordered: %+v != %+v", i, ev, oneSide.Events[i])
		}
	}

	// A straddling link event is duplicated to both endpoint shards, and
	// each copy keeps its relative position among that shard's events.
	straddle := new(Schedule).
		Crash(0, sim.Millis(1)).
		CutLink(2, 6, sim.Millis(1)). // endpoints on different shards
		Crash(6, sim.Millis(1)).
		RestoreLink(2, 6, sim.Millis(2))
	parts = Split(straddle, 2, shardOf)
	wantKinds := [][]EventKind{
		{NodeCrash, LinkDown, LinkUp}, // shard 0: Crash(0) precedes the link
		{LinkDown, NodeCrash, LinkUp}, // shard 1: the link precedes Crash(6)
	}
	for sh := 0; sh < 2; sh++ {
		var kinds []EventKind
		for _, ev := range parts[sh].Events {
			kinds = append(kinds, ev.Kind)
		}
		want := wantKinds[sh]
		if len(kinds) != 3 || kinds[0] != want[0] || kinds[1] != want[1] || kinds[2] != want[2] {
			t.Fatalf("shard %d kinds = %v, want %v", sh, kinds, want)
		}
	}
}

// Chaos-style colliding timestamps (a whole zone crashing at one instant,
// straggler flaps at the same tick) must resolve to the identical health
// state at every shard width — the tie-break contract, sharded.
func TestShardedTieBreakInvariantAcrossWidths(t *testing.T) {
	const nodes = 16
	gpus := make([]int, nodes)
	for i := range gpus {
		gpus[i] = 2
	}
	at := sim.Millis(5)
	s := &Schedule{}
	for n := 4; n < 12; n++ { // "zone" 4..11 dies at one timestamp
		s.Crash(n, at)
	}
	for n := 4; n < 12; n++ {
		s.Restart(n, at+sim.Millis(3))
	}
	s.Crash(6, at+sim.Millis(3)) // collides with the zone restart wave
	s.SlowGPU(0, 1, at, 4).RestoreGPU(0, 1, at).SlowGPU(0, 1, at, 8)
	s.CutLink(3, 12, at).RestoreLink(3, 12, at).CutLink(3, 12, at)

	type state struct {
		alive [nodes]bool
		gpuF  float64
		lin   bool
	}
	var states []state
	for _, width := range []int{1, 2, 4, 8} {
		env := sim.NewEnv(sim.WithShards(width))
		ss := env.Sharded()
		shardOf := func(n int) int { return n * width / nodes }
		si, err := NewShardedInjector(ss, gpus, s, shardOf, Hooks{})
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		env.RunUntil(sim.Millis(20))
		var st state
		for n := 0; n < nodes; n++ {
			st.alive[n] = si.Alive(n)
		}
		st.gpuF = si.For(0).GPUFactor(0, 1)
		// Both endpoint owners must agree the link is down.
		upA, _, _ := si.For(3).Link(3, 12)
		upB, _, _ := si.For(12).Link(3, 12)
		st.lin = upA || upB
		env.Close()
		states = append(states, st)
	}
	for i := 1; i < len(states); i++ {
		if states[i] != states[0] {
			t.Fatalf("width %d diverged: %+v != %+v", []int{1, 2, 4, 8}[i], states[i], states[0])
		}
	}
	if states[0].gpuF != 8 {
		t.Fatalf("gpu factor = %v, want 8 (last writer at the tick wins)", states[0].gpuF)
	}
	if states[0].lin {
		t.Fatal("link must end down (last writer at the tick wins)")
	}
	if states[0].alive[6] {
		t.Fatal("node 6: restart wave then crash at one tick must end dead")
	}
}
