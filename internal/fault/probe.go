package fault

import "rocket/internal/sim"

// Probe is one timed health observation: at virtual time At, Fn receives
// the liveness of Node as the injector sees it. Probes are how scenario
// assertions (assert_node_dead, assert_node_alive) read fault state from
// inside virtual time instead of re-deriving it from the schedule.
//
// Probes are armed after the schedule's own events, so a probe sharing a
// timestamp with a fault event observes the post-event world — crash at t
// plus assert_node_dead at t passes.
type Probe struct {
	At   sim.Time
	Node int
	// Fn runs in scheduler context on the env the probe was armed on (the
	// node's owning shard in sharded runs). It must not block and must
	// only touch state it owns — the usual per-shard ownership contract.
	Fn func(alive bool)
}

// ArmProbes schedules probes on env against inj. A nil injector is the
// failure-free world: every probe observes alive. Call it after
// NewInjector so same-timestamp fault events fire first.
func ArmProbes(env *sim.Env, inj *Injector, probes []Probe) {
	for _, p := range probes {
		p := p
		env.At(p.At, func() {
			p.Fn(inj == nil || inj.Alive(p.Node))
		})
	}
}

// ArmShardedProbes routes each probe to its node's owning shard and arms
// it there against that shard's injector, mirroring how NewShardedInjector
// routes events: the probe fires on the thread that owns the node's
// health state. A nil si is the failure-free world.
func ArmShardedProbes(ss *sim.ShardSet, si *ShardedInjector, shardOf func(node int) int, probes []Probe) {
	for _, p := range probes {
		p := p
		env := ss.Shard(shardOf(p.Node)).Env()
		env.At(p.At, func() {
			p.Fn(si == nil || si.For(p.Node).Alive(p.Node))
		})
	}
}
