package fault

import (
	"fmt"

	"rocket/internal/sim"
)

// Split partitions a schedule for a sharded simulation: each event is
// routed to the shard that owns the state it mutates, per shardOf. Node
// events (crash, restart, join, preempt, GPU slowdown) go to the target
// node's shard — so a node's entire membership history applies on one
// shard, in schedule order, at every width.
// Link events are duplicated to BOTH endpoints' shards — each side of a
// symmetric link is observed independently (the sender consults its local
// view at send time, the receiver at delivery time), so both owners must
// see the transition; when the endpoints share a shard the event is
// routed once.
//
// The per-shard schedules preserve the original event order, so ties at
// one timestamp fire in schedule order exactly as they would have on a
// single injector.
func Split(s *Schedule, shards int, shardOf func(node int) int) []*Schedule {
	out := make([]*Schedule, shards)
	for i := range out {
		out[i] = &Schedule{}
	}
	if s == nil {
		return out
	}
	for _, ev := range s.Events {
		switch ev.Kind {
		case NodeCrash, NodeRestart, GPUSlowdown, NodeJoin, NodePreempt:
			sh := shardOf(ev.Node)
			out[sh].Events = append(out[sh].Events, ev)
		case LinkDown, LinkUp, LinkDegrade:
			sa, sb := shardOf(ev.A), shardOf(ev.B)
			out[sa].Events = append(out[sa].Events, ev)
			if sb != sa {
				out[sb].Events = append(out[sb].Events, ev)
			}
		}
	}
	return out
}

// ShardedInjector arms a schedule across a sim.ShardSet: one Injector per
// shard, fed only the events Split routed to it, armed on that shard's
// Env so each fault fires on the thread that owns the affected state.
// Health queries must respect ownership — ask shard s's injector only
// about nodes that live on shard s (For panics otherwise when mapped).
type ShardedInjector struct {
	injectors []*Injector
	shardOf   func(node int) int
}

// NewShardedInjector validates the full schedule once against the platform
// shape, splits it, and arms each part on its shard's Env. hooks are
// shared: a shard's injector invokes them on its own thread for its own
// nodes, which is safe exactly when the hooks touch only that node's
// (shard-owned) state — the same ownership contract as every other
// cross-shard interaction.
func NewShardedInjector(ss *sim.ShardSet, gpus []int, s *Schedule, shardOf func(node int) int, hooks Hooks) (*ShardedInjector, error) {
	if err := s.Validate(gpus); err != nil {
		return nil, err
	}
	parts := Split(s, ss.NumShards(), shardOf)
	si := &ShardedInjector{
		injectors: make([]*Injector, ss.NumShards()),
		shardOf:   shardOf,
	}
	for i, part := range parts {
		inj, err := NewInjector(ss.Shard(i).Env(), gpus, part, hooks)
		if err != nil {
			return nil, err
		}
		si.injectors[i] = inj
	}
	return si, nil
}

// For returns the injector owning node's health state. Call its queries
// only from that node's shard.
func (si *ShardedInjector) For(node int) *Injector {
	sh := si.shardOf(node)
	if sh < 0 || sh >= len(si.injectors) {
		panic(fmt.Sprintf("fault: node %d maps to shard %d of %d", node, sh, len(si.injectors)))
	}
	return si.injectors[sh]
}

// Shard returns shard i's injector directly.
func (si *ShardedInjector) Shard(i int) *Injector { return si.injectors[i] }

// Alive reports node liveness from the owning shard's injector. It is the
// natural ShardedNet alive hook: the fabric only queries senders on their
// own shard and receivers on theirs, matching the ownership contract.
func (si *ShardedInjector) Alive(node int) bool { return si.For(node).Alive(node) }
