package fault

import (
	"reflect"
	"testing"

	"rocket/internal/sim"
)

func stormConfig() ChaosConfig {
	return ChaosConfig{
		Seed:     7,
		Nodes:    64,
		Duration: sim.Millis(20),
		Zones:    8,

		CrashFraction:   0.25,
		RestartFraction: 0.5,
		MinDowntime:     sim.Millis(2),
		MaxDowntime:     sim.Millis(6),

		StragglerFraction: 0.1,
		StragglerFactor:   4,
		StragglerWindow:   sim.Millis(5),

		LinkFaults:          6,
		LinkCutFraction:     0.5,
		LinkWindow:          sim.Millis(4),
		LinkLatencyFactor:   8,
		LinkBandwidthFactor: 8,

		CascadeCount:   2,
		CascadeSize:    5,
		CascadeSpacing: sim.Micros(200),

		ZoneOutages:        1,
		ZoneOutageDuration: sim.Millis(4),
	}
}

// The same config generates the byte-identical schedule, and the result
// always satisfies Validate against the config's GPU shape.
func TestChaosDeterministicAndValid(t *testing.T) {
	cfg := stormConfig()
	a, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config+seed generated different schedules")
	}
	if err := a.Validate(cfg.gpuShape()); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	cfg.Seed = 8
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical storms")
	}
	// Events come out in firing order.
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Fatalf("events not time-sorted at %d: %v after %v", i, a.Events[i].At, a.Events[i-1].At)
		}
	}
}

// The storm's composition matches the config: crash and straggler counts,
// a full-zone outage colliding on one timestamp, cascades spaced on
// contiguous runs, and every event inside the horizon (restarts may
// overhang it by a downtime; nothing else).
func TestChaosShape(t *testing.T) {
	cfg := stormConfig()
	s, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[EventKind]int{}
	crashTimes := map[sim.Time]int{}
	for _, ev := range s.Events {
		byKind[ev.Kind]++
		if ev.Kind == NodeCrash {
			crashTimes[ev.At]++
		}
		if ev.Kind != NodeRestart && ev.At > cfg.Duration {
			t.Fatalf("%v event at %v beyond horizon %v", ev.Kind, ev.At, cfg.Duration)
		}
		if ev.At <= 0 {
			t.Fatalf("%v event at non-positive time %v", ev.Kind, ev.At)
		}
	}
	// 16 independent crashes + 2 cascades x 5 + one 8-node zone: some may
	// collide on a victim, so bound rather than pin.
	if byKind[NodeCrash] < 30 || byKind[NodeCrash] > 34 {
		t.Fatalf("crash count = %d, want ~34", byKind[NodeCrash])
	}
	if byKind[GPUSlowdown] != 2*6 { // 10% of 64 devices ≈ 6, slow + restore
		t.Fatalf("gpu events = %d, want 12", byKind[GPUSlowdown])
	}
	if byKind[LinkDown] != 3 || byKind[LinkUp] != 3 || byKind[LinkDegrade] != 6 {
		t.Fatalf("link events = %d/%d/%d, want 3/3/6",
			byKind[LinkDown], byKind[LinkUp], byKind[LinkDegrade])
	}
	// The zone outage crashes a whole zone at one shared timestamp.
	zoneWide := 0
	for _, n := range crashTimes {
		if n >= 8 {
			zoneWide++
		}
	}
	if zoneWide != 1 {
		t.Fatalf("found %d zone-wide crash instants, want 1", zoneWide)
	}
}

// Overlapping storms (zone outage on top of independent crash/restart
// lifecycles) must still produce schedules that pass the restart-order
// rule; the pruning path is exercised across many seeds.
func TestChaosOverlapStaysValid(t *testing.T) {
	cfg := stormConfig()
	cfg.Nodes = 16 // small fleet: collisions between categories are certain
	cfg.Zones = 2
	cfg.CrashFraction = 0.8
	cfg.RestartFraction = 1
	cfg.ZoneOutages = 3
	cfg.CascadeCount = 2
	for seed := uint64(1); seed <= 50; seed++ {
		cfg.Seed = seed
		s, err := cfg.Generate()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(cfg.gpuShape()); err != nil {
			t.Fatalf("seed %d: invalid: %v", seed, err)
		}
	}
}

func TestChaosConfigValidation(t *testing.T) {
	bad := []func(*ChaosConfig){
		func(c *ChaosConfig) { c.Nodes = 0 },
		func(c *ChaosConfig) { c.Duration = 0 },
		func(c *ChaosConfig) { c.CrashFraction = 1.5 },
		func(c *ChaosConfig) { c.RestartFraction = -0.1 },
		func(c *ChaosConfig) { c.StragglerFactor = 0.5 },
		func(c *ChaosConfig) { c.LinkLatencyFactor = 0.9; c.LinkCutFraction = 0 },
		func(c *ChaosConfig) { c.ZoneOutages = 1; c.Zones = 1 },
		func(c *ChaosConfig) { c.GPUs = []int{1, 2} },
		func(c *ChaosConfig) { c.CascadeSize = 0 },
	}
	for i, mutate := range bad {
		cfg := stormConfig()
		mutate(&cfg)
		if _, err := cfg.Generate(); err == nil {
			t.Errorf("case %d: invalid chaos config accepted", i)
		}
	}
}

func TestZoneGrouping(t *testing.T) {
	const nodes, zones = 10, 3
	seen := map[int]int{}
	for z := 0; z < zones; z++ {
		lo, hi := ZoneRange(z, nodes, zones)
		for n := lo; n < hi; n++ {
			if got := ZoneOf(n, nodes, zones); got != z {
				t.Fatalf("ZoneOf(%d) = %d, want %d", n, got, z)
			}
			seen[n]++
		}
	}
	if len(seen) != nodes {
		t.Fatalf("zones cover %d nodes, want %d", len(seen), nodes)
	}
	for n, c := range seen {
		if c != 1 {
			t.Fatalf("node %d in %d zones", n, c)
		}
	}
	if ZoneOf(5, 10, 0) != 0 || ZoneOf(5, 10, 1) != 0 {
		t.Fatal("degenerate zone counts must map to zone 0")
	}
	if lo, hi := ZoneRange(0, 4, 9); lo != 0 || hi != 1 {
		t.Fatalf("more zones than nodes: ZoneRange = [%d, %d)", lo, hi)
	}
}
