package fault

import (
	"fmt"
	"math/bits"

	"rocket/internal/sim"
	"rocket/internal/stats"
)

// Arrival patterns for Elasticity joins: the Navarch-style startup shapes
// a provider's capacity comes online in.
const (
	// ArrivalInstant brings every joiner in at t=0 (plus cold-start
	// jitter) — the whole allocation is granted at once.
	ArrivalInstant = "instant"
	// ArrivalLinear spreads joins evenly across the Over window — a
	// steady provisioning pipeline.
	ArrivalLinear = "linear"
	// ArrivalExponential doubles the cohort size each step (1, 2, 4, ...)
	// across the Over window — a scale-out ramp.
	ArrivalExponential = "exponential"
	// ArrivalWave admits Waves equal cohorts at evenly spaced instants
	// across the Over window — batch grants.
	ArrivalWave = "wave"
)

// Elasticity parameterizes seeded fleet churn: a fleet of Nodes slots
// starts with InitialNodes members, the rest join per an arrival pattern,
// and a seeded fraction of the fleet is spot-preempted inside the horizon.
// Generate samples the churn into a Schedule of NodeJoin/NodePreempt
// events with a single deterministic generator, so the same config always
// yields the byte-identical schedule — elastic runs are replayable by
// construction, exactly like chaos storms.
type Elasticity struct {
	// Seed drives all sampling (cold-start jitter, preemption victims and
	// times).
	Seed uint64
	// Nodes is the fleet capacity: every slot that can ever be a member.
	Nodes int
	// InitialNodes are present at t=0 (IDs [0, InitialNodes)); the
	// remaining IDs join per the arrival pattern.
	InitialNodes int
	// Arrival is the join pattern: ArrivalInstant (default), ArrivalLinear,
	// ArrivalExponential, or ArrivalWave.
	Arrival string
	// Over is the window joins are spread across; 0 defaults to half the
	// horizon.
	Over sim.Time
	// Waves is the cohort count of ArrivalWave; 0 defaults to 4.
	Waves int
	// ColdStartJitter is the per-node uniform [0, jitter) delay added to
	// the pattern slot — no two providers hand over capacity on a clock
	// edge.
	ColdStartJitter sim.Time
	// PreemptFraction of the full fleet is spot-preempted at seeded times
	// inside the horizon (victims drawn over all slots, initial members
	// and joiners alike; a joiner is only preempted after it has joined).
	PreemptFraction float64
	// PreemptAfter is the earliest preemption instant.
	PreemptAfter sim.Time
	// Duration is the virtual horizon events are placed in.
	Duration sim.Time
}

// Validate rejects shapes Generate cannot place sensibly.
func (e Elasticity) Validate() error {
	if e.Nodes < 2 {
		return fmt.Errorf("fault: elasticity over %d nodes", e.Nodes)
	}
	if e.InitialNodes < 1 || e.InitialNodes > e.Nodes {
		return fmt.Errorf("fault: elasticity initial nodes %d outside [1, %d]", e.InitialNodes, e.Nodes)
	}
	if e.Duration <= 0 {
		return fmt.Errorf("fault: elasticity needs a positive horizon, got %v", e.Duration)
	}
	switch e.Arrival {
	case "", ArrivalInstant, ArrivalLinear, ArrivalExponential, ArrivalWave:
	default:
		return fmt.Errorf("fault: unknown arrival pattern %q", e.Arrival)
	}
	if e.Over < 0 || e.Over > e.Duration {
		return fmt.Errorf("fault: elasticity join window %v outside [0, %v]", e.Over, e.Duration)
	}
	if e.Waves < 0 {
		return fmt.Errorf("fault: elasticity waves %d < 0", e.Waves)
	}
	if e.PreemptFraction < 0 || e.PreemptFraction > 1 {
		return fmt.Errorf("fault: elasticity preempt fraction %v outside [0, 1]", e.PreemptFraction)
	}
	if e.ColdStartJitter < 0 {
		return fmt.Errorf("fault: elasticity negative cold-start jitter %v", e.ColdStartJitter)
	}
	if e.PreemptAfter < 0 {
		return fmt.Errorf("fault: elasticity negative preempt-after %v", e.PreemptAfter)
	}
	return nil
}

// joinSlot returns joiner k's pattern slot (before jitter) when m nodes
// join across the window `over`.
func (e Elasticity) joinSlot(k, m int, over sim.Time) sim.Time {
	switch e.Arrival {
	case ArrivalLinear:
		return over * sim.Time(k+1) / sim.Time(m)
	case ArrivalExponential:
		// Doubling cohorts 1, 2, 4, ...: joiner k sits in cohort
		// bits.Len(k+1)-1 of bits.Len(m) total.
		c := bits.Len(uint(k+1)) - 1
		total := bits.Len(uint(m))
		return over * sim.Time(c+1) / sim.Time(total)
	case ArrivalWave:
		w := e.Waves
		if w == 0 {
			w = 4
		}
		if w > m {
			w = m
		}
		return over * sim.Time(k*w/m+1) / sim.Time(w)
	default: // ArrivalInstant
		return 0
	}
}

// Generate samples the churn into a Schedule in firing order (ascending
// time, generation order for ties). The result always passes Validate
// against a one-device-per-node shape: joins strictly precede their node's
// preemption, and preemptions whose window closed (a joiner arriving too
// late in the horizon) are skipped rather than misplaced.
func (e Elasticity) Generate() (*Schedule, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(e.Seed ^ 0x454c4153) // "ELAS"
	over := e.Over
	if over == 0 {
		over = e.Duration / 2
	}

	// Joins: node InitialNodes+k is joiner k.
	m := e.Nodes - e.InitialNodes
	joinAt := make([]sim.Time, e.Nodes) // 0 for initial members
	var events []Event
	for k := 0; k < m; k++ {
		t := e.joinSlot(k, m, over)
		if e.ColdStartJitter > 0 {
			t += sim.Time(rng.Float64() * float64(e.ColdStartJitter))
		}
		node := e.InitialNodes + k
		joinAt[node] = t
		events = append(events, Event{At: t, Kind: NodeJoin, Node: node})
	}

	// Preemptions: victims drawn from a single shuffled permutation over
	// the whole fleet; each victim departs at a seeded time after both
	// its join (with a settling gap) and PreemptAfter.
	count := int(e.PreemptFraction*float64(e.Nodes) + 0.5)
	perm := make([]int, e.Nodes)
	for i := range perm {
		perm[i] = i
	}
	for i := e.Nodes - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	settle := e.Duration / 20
	for _, v := range perm[:count] {
		lo := e.PreemptAfter
		if t := joinAt[v] + settle; t > lo {
			lo = t
		}
		if lo >= e.Duration {
			continue // window closed; skipping keeps the schedule valid
		}
		t := lo + sim.Time(rng.Float64()*float64(e.Duration-lo))
		events = append(events, Event{At: t, Kind: NodePreempt, Node: v})
	}

	ordered := make([]Event, 0, len(events))
	for _, idx := range firingOrder(events) {
		ordered = append(ordered, events[idx])
	}
	s := &Schedule{Events: ordered}
	ones := make([]int, e.Nodes)
	for i := range ones {
		ones[i] = 1
	}
	if err := s.Validate(ones); err != nil {
		// Unreachable by construction; kept as a hard backstop so a
		// generator bug can never smuggle an invalid schedule into a run.
		return nil, fmt.Errorf("fault: elasticity generated an invalid schedule: %w", err)
	}
	return s, nil
}
