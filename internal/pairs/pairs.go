// Package pairs implements the divide-and-conquer decomposition of the
// all-pairs workload (paper §4.2, Fig. 5). The workload {(i, j) : 0 <= i <
// j < n} is viewed as the strict upper triangle of an n x n matrix; a
// Region is a rectangular block of that matrix, recursively split into
// four quadrants until leaf-sized. Index ranges are half-open.
package pairs

import "fmt"

// Region is the block of pairs (i, j) with RowLo <= i < RowHi,
// ColLo <= j < ColHi, intersected with the constraint i < j.
type Region struct {
	RowLo, RowHi int
	ColLo, ColHi int
}

// Root returns the region covering all pairs of an n-item data set.
func Root(n int) Region {
	if n < 0 {
		panic(fmt.Sprintf("pairs: negative n %d", n))
	}
	return Region{0, n, 0, n}
}

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("rows[%d,%d)xcols[%d,%d)", r.RowLo, r.RowHi, r.ColLo, r.ColHi)
}

// Count returns the number of pairs in the region, honoring i < j.
func (r Region) Count() int64 {
	if r.RowHi <= r.RowLo || r.ColHi <= r.ColLo {
		return 0
	}
	var total int64
	// Rows fully above the diagonal within this block contribute the full
	// column width; the diagonal band needs per-row clamping. Split the row
	// range at the points where max(ColLo, i+1) changes regime.
	rows, cols := r.RowHi-r.RowLo, r.ColHi-r.ColLo
	if r.ColLo >= r.RowHi {
		// Entire block strictly above the diagonal.
		return int64(rows) * int64(cols)
	}
	for i := r.RowLo; i < r.RowHi; i++ {
		lo := r.ColLo
		if i+1 > lo {
			lo = i + 1
		}
		if r.ColHi > lo {
			total += int64(r.ColHi - lo)
		}
	}
	return total
}

// Empty reports whether the region contains no pairs.
func (r Region) Empty() bool { return r.Count() == 0 }

// Dims returns the row and column extents.
func (r Region) Dims() (rows, cols int) {
	return r.RowHi - r.RowLo, r.ColHi - r.ColLo
}

// Split divides the region into up to four quadrants at the midpoints of
// its row and column ranges, discarding quadrants that contain no pairs.
// Quadrants are returned in (top-left, top-right, bottom-left,
// bottom-right) order. Splitting a region with a single row and column is
// invalid; callers stop splitting at leaves.
func (r Region) Split() []Region {
	rows, cols := r.Dims()
	if rows <= 1 && cols <= 1 {
		panic(fmt.Sprintf("pairs: splitting unit region %v", r))
	}
	rowMid := r.RowLo + rows/2
	colMid := r.ColLo + cols/2
	if rows <= 1 {
		rowMid = r.RowHi
	}
	if cols <= 1 {
		colMid = r.ColHi
	}
	candidates := []Region{
		{r.RowLo, rowMid, r.ColLo, colMid},
		{r.RowLo, rowMid, colMid, r.ColHi},
		{rowMid, r.RowHi, r.ColLo, colMid},
		{rowMid, r.RowHi, colMid, r.ColHi},
	}
	out := candidates[:0]
	for _, c := range candidates {
		if c.RowHi > c.RowLo && c.ColHi > c.ColLo && !c.Empty() {
			out = append(out, c)
		}
	}
	return out
}

// Each calls fn for every pair (i, j) in the region in row-major order.
func (r Region) Each(fn func(i, j int)) {
	for i := r.RowLo; i < r.RowHi; i++ {
		lo := r.ColLo
		if i+1 > lo {
			lo = i + 1
		}
		for j := lo; j < r.ColHi; j++ {
			fn(i, j)
		}
	}
}

// Items calls fn once for every distinct item index referenced by the
// region (the union of its row and column ranges, deduplicated).
func (r Region) Items(fn func(item int)) {
	for i := r.RowLo; i < r.RowHi; i++ {
		fn(i)
	}
	for j := r.ColLo; j < r.ColHi; j++ {
		if j < r.RowLo || j >= r.RowHi {
			fn(j)
		}
	}
}

// TotalPairs returns n choose 2.
func TotalPairs(n int) int64 {
	return int64(n) * int64(n-1) / 2
}

// OverlapCount returns how many of the given items (ascending, distinct)
// are referenced by the region — the basis of cache-aware stealing: a
// thief prefers regions whose items it already holds.
func (r Region) OverlapCount(sorted []int) int {
	rows := countInRange(sorted, r.RowLo, r.RowHi)
	cols := countInRange(sorted, r.ColLo, r.ColHi)
	// Subtract the double-counted intersection of the two index ranges.
	lo, hi := r.RowLo, r.RowHi
	if r.ColLo > lo {
		lo = r.ColLo
	}
	if r.ColHi < hi {
		hi = r.ColHi
	}
	both := 0
	if hi > lo {
		both = countInRange(sorted, lo, hi)
	}
	return rows + cols - both
}

// countInRange counts values v in sorted with lo <= v < hi.
func countInRange(sorted []int, lo, hi int) int {
	return lowerBound(sorted, hi) - lowerBound(sorted, lo)
}

// lowerBound returns the first index whose value is >= x.
func lowerBound(sorted []int, x int) int {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
