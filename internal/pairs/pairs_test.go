package pairs

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestRootCount(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 10, 100} {
		want := int64(n) * int64(n-1) / 2
		if got := Root(n).Count(); got != want {
			t.Errorf("Root(%d).Count() = %d, want %d", n, got, want)
		}
		if TotalPairs(n) != want {
			t.Errorf("TotalPairs(%d) = %d, want %d", n, TotalPairs(n), want)
		}
	}
}

func TestNegativeRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Root(-1) did not panic")
		}
	}()
	Root(-1)
}

func TestCountFullyAboveDiagonal(t *testing.T) {
	r := Region{0, 4, 8, 16}
	if got := r.Count(); got != 32 {
		t.Fatalf("Count = %d, want 32 (full rectangle)", got)
	}
}

func TestCountBelowDiagonalEmpty(t *testing.T) {
	r := Region{8, 16, 0, 4}
	if !r.Empty() {
		t.Fatalf("below-diagonal block should be empty, Count = %d", r.Count())
	}
}

func TestEachMatchesCount(t *testing.T) {
	regions := []Region{
		{0, 8, 0, 8},
		{3, 7, 2, 9},
		{0, 1, 0, 1},
		{5, 5, 0, 10},
		{2, 6, 6, 12},
	}
	for _, r := range regions {
		var seen int64
		r.Each(func(i, j int) {
			if i >= j {
				t.Fatalf("region %v yielded invalid pair (%d, %d)", r, i, j)
			}
			if i < r.RowLo || i >= r.RowHi || j < r.ColLo || j >= r.ColHi {
				t.Fatalf("region %v yielded out-of-range pair (%d, %d)", r, i, j)
			}
			seen++
		})
		if seen != r.Count() {
			t.Errorf("region %v: Each yielded %d, Count says %d", r, seen, r.Count())
		}
	}
}

func TestSplitPreservesPairsExactly(t *testing.T) {
	r := Root(16)
	type pair struct{ i, j int }
	seen := map[pair]int{}
	var walk func(Region)
	var leaves int
	walk = func(rg Region) {
		if rg.Count() <= 2 {
			leaves++
			rg.Each(func(i, j int) { seen[pair{i, j}]++ })
			return
		}
		for _, c := range rg.Split() {
			walk(c)
		}
	}
	walk(r)
	if int64(len(seen)) != r.Count() {
		t.Fatalf("coverage: %d distinct pairs, want %d", len(seen), r.Count())
	}
	for pr, c := range seen {
		if c != 1 {
			t.Fatalf("pair %v produced %d times", pr, c)
		}
	}
	if leaves < 8 {
		t.Fatalf("suspiciously few leaves: %d", leaves)
	}
}

func TestSplitDiscardsEmptyQuadrants(t *testing.T) {
	// The bottom-left quadrant of the root is entirely below the diagonal.
	for _, c := range Root(8).Split() {
		if c.Empty() {
			t.Fatalf("Split returned empty region %v", c)
		}
	}
}

func TestSplitChildCountsSumToParent(t *testing.T) {
	parents := []Region{Root(9), {1, 7, 3, 11}, {0, 2, 0, 16}}
	for _, r := range parents {
		if r.Count() <= 1 {
			continue
		}
		var sum int64
		for _, c := range r.Split() {
			sum += c.Count()
		}
		if sum != r.Count() {
			t.Errorf("region %v: children sum %d != parent %d", r, sum, r.Count())
		}
	}
}

func TestSplitUnitRegionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic splitting unit region")
		}
	}()
	Region{3, 4, 7, 8}.Split()
}

func TestSplitSingleRowOrColumn(t *testing.T) {
	// A 1 x k strip must split along columns only.
	r := Region{0, 1, 1, 9}
	kids := r.Split()
	var sum int64
	for _, c := range kids {
		if c.RowLo != 0 || c.RowHi != 1 {
			t.Fatalf("row range changed in %v", c)
		}
		sum += c.Count()
	}
	if sum != r.Count() {
		t.Fatalf("strip children sum %d != %d", sum, r.Count())
	}
	// A k x 1 band: only the part above the diagonal survives.
	r2 := Region{0, 8, 8, 9}
	kids2 := r2.Split()
	sum = 0
	for _, c := range kids2 {
		sum += c.Count()
	}
	if sum != r2.Count() {
		t.Fatalf("band children sum %d != %d", sum, r2.Count())
	}
}

func TestItemsDeduplicated(t *testing.T) {
	r := Region{2, 6, 4, 8} // rows {2..5}, cols {4..7}; overlap {4, 5}
	seen := map[int]int{}
	r.Items(func(it int) { seen[it]++ })
	if len(seen) != 6 {
		t.Fatalf("distinct items = %d, want 6 (%v)", len(seen), seen)
	}
	for it, c := range seen {
		if c != 1 {
			t.Fatalf("item %d visited %d times", it, c)
		}
	}
}

func TestDims(t *testing.T) {
	rows, cols := (Region{1, 4, 2, 8}).Dims()
	if rows != 3 || cols != 6 {
		t.Fatalf("Dims = %d, %d", rows, cols)
	}
}

func TestStringNonEmpty(t *testing.T) {
	if Root(4).String() == "" {
		t.Fatal("empty String")
	}
}

// Property: recursive splitting of Root(n) covers each pair exactly once
// for arbitrary n and leaf thresholds.
func TestQuickSplitCoverage(t *testing.T) {
	f := func(nRaw, leafRaw uint8) bool {
		n := int(nRaw%60) + 2
		leaf := int64(leafRaw%16) + 1
		count := make(map[[2]int]int)
		var walk func(Region) bool
		walk = func(r Region) bool {
			if r.Count() == 0 {
				return true
			}
			if r.Count() <= leaf {
				r.Each(func(i, j int) { count[[2]int{i, j}]++ })
				return true
			}
			var sum int64
			for _, c := range r.Split() {
				sum += c.Count()
				if !walk(c) {
					return false
				}
			}
			return sum == r.Count()
		}
		if !walk(Root(n)) {
			return false
		}
		if int64(len(count)) != TotalPairs(n) {
			return false
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Count is consistent with brute-force enumeration for arbitrary
// rectangles.
func TestQuickCountBruteForce(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		r := Region{int(a % 20), int(a%20) + int(b%20), int(c % 20), int(c%20) + int(d%20)}
		var brute int64
		for i := r.RowLo; i < r.RowHi; i++ {
			for j := r.ColLo; j < r.ColHi; j++ {
				if i < j {
					brute++
				}
			}
		}
		return brute == r.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: OverlapCount matches brute-force membership counting.
func TestQuickOverlapCount(t *testing.T) {
	f := func(a, b, c, d uint8, itemsRaw []uint8) bool {
		r := Region{int(a % 15), int(a%15) + int(b%15), int(c % 15), int(c%15) + int(d%15)}
		// Build a sorted, distinct item list.
		set := map[int]bool{}
		for _, v := range itemsRaw {
			set[int(v%40)] = true
		}
		items := make([]int, 0, len(set))
		for v := range set {
			items = append(items, v)
		}
		sort.Ints(items)
		want := 0
		for _, v := range items {
			inRows := v >= r.RowLo && v < r.RowHi
			inCols := v >= r.ColLo && v < r.ColHi
			if inRows || inCols {
				want++
			}
		}
		return r.OverlapCount(items) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
