package obs

import "rocket/internal/trace"

// kindFor maps a pipeline trace kind to the span kind it observes.
func kindFor(k trace.Kind) Kind {
	switch k {
	case trace.KindPreprocess, trace.KindCompare:
		return KindKernel
	case trace.KindH2D, trace.KindD2H:
		return KindCopy
	case trace.KindParse, trace.KindPost:
		return KindCPU
	case trace.KindIO:
		return KindIO
	case trace.KindFetch:
		return KindFetch
	case trace.KindSteal:
		return KindSteal
	case trace.KindStoreRead, trace.KindStoreWrite:
		return KindStore
	default:
		return KindMark
	}
}

// FromTasks converts a detailed pipeline task list into spans on lane.
// This is the single bridge between core's per-run tracer and the
// flight recorder: core records into its existing trace.Tracer on the
// hot path (unchanged) and the conversion happens once, at metrics
// aggregation, so enabling spans adds no per-event work inside the run.
func FromTasks(r *Recorder, lane int, tasks []trace.Task) {
	if r == nil {
		return
	}
	for _, t := range tasks {
		item2 := int64(0)
		if t.Item2 >= 0 {
			item2 = int64(t.Item2) + 1
		}
		r.Record(lane, Span{
			Start: t.Start,
			End:   t.End,
			Kind:  kindFor(t.Kind),
			Track: t.Resource,
			Name:  t.Kind.String(),
			Arg:   int64(t.Item),
			Arg2:  item2,
		})
	}
}
