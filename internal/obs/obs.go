// Package obs is the deterministic observability layer: virtual-time
// spans recorded into a fixed-size per-lane flight recorder, log-bucketed
// histograms with deterministic quantile extraction, and a Perfetto/Chrome
// trace-event exporter.
//
// Everything in this package is stamped in virtual time and ordered by a
// canonical value-based key, never by wall clock or goroutine
// interleaving, so recorded timelines are byte-identical across reruns
// and across engine shard widths — the same determinism contract the rest
// of the repo property-tests. A nil *Recorder is the disabled layer:
// every method no-ops, and the packages that thread a recorder through
// (core, sched, fleet, sim) guard each recording site with a single nil
// check, which is the zero-overhead-when-off budget.
package obs

import (
	"cmp"
	"fmt"
	"sync"

	"rocket/internal/sim"
)

// Kind classifies a span by the mechanism it observes.
type Kind uint8

// Span kinds. KindWindow is the one engine-internal kind: shard windows
// are a property of the engine width, not the workload, so exporters
// exclude them unless asked (ExportOptions.IncludeEngine).
const (
	// KindJobWait is a job's admission→placement interval (queueing).
	KindJobWait Kind = iota
	// KindJobRun is a job's placement→completion interval (service).
	KindJobRun
	// KindWindow is one engine shard's synchronization window (engine
	// category: width-dependent by construction).
	KindWindow
	// KindSteal is one work-stealing protocol activity.
	KindSteal
	// KindSeal is a pairstore mutable-log seal (instant).
	KindSeal
	// KindCompact is a pairstore tier merge or full compaction (instant).
	KindCompact
	// KindKernel is a GPU kernel phase (preprocess, compare).
	KindKernel
	// KindCopy is a GPU copy phase (h2d, d2h).
	KindCopy
	// KindCPU is a host compute phase (parse, postprocess).
	KindCPU
	// KindIO is a storage-server read.
	KindIO
	// KindFetch is a distributed-cache fetch.
	KindFetch
	// KindStore is charged pairstore I/O inside a run (read or write).
	KindStore
	// KindMark is a generic instant marker (join, preempt, drain, ...).
	KindMark
	numKinds
)

// String returns the kind's stable wire name (the Perfetto category).
func (k Kind) String() string {
	switch k {
	case KindJobWait:
		return "job-wait"
	case KindJobRun:
		return "job-run"
	case KindWindow:
		return "window"
	case KindSteal:
		return "steal"
	case KindSeal:
		return "seal"
	case KindCompact:
		return "compact"
	case KindKernel:
		return "kernel"
	case KindCopy:
		return "copy"
	case KindCPU:
		return "cpu"
	case KindIO:
		return "io"
	case KindFetch:
		return "fetch"
	case KindStore:
		return "store"
	case KindMark:
		return "mark"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind inverts String for every declared kind.
func ParseKind(s string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// NumKinds returns the number of declared span kinds (for table tests).
func NumKinds() int { return int(numKinds) }

// Span is one recorded interval of virtual time on a track. Instant
// events are spans with End == Start.
type Span struct {
	// Start and End bound the interval in virtual time.
	Start, End sim.Time
	// Kind classifies the mechanism (the Perfetto category).
	Kind Kind
	// Track is the lane the span renders on: a resource ("node3/gpu0"),
	// a subsystem ("sched", "store"), or an engine shard ("shard2").
	Track string
	// Name labels the span ("compare", "job0", "seal").
	Name string
	// Tenant is the owning tenant, when the span has one.
	Tenant string
	// Arg and Arg2 are kind-specific payloads (items, pairs, rows, ...).
	Arg, Arg2 int64
}

// Compare orders spans by the canonical export key: virtual start time,
// then end time, then the value fields. The key deliberately excludes
// the recording lane and sequence number — those depend on the engine
// width, while the value tuple is a pure function of workload behavior —
// so a canonically sorted span list is byte-identical across widths.
// Fully equal spans are interchangeable, which keeps the sort
// deterministic even though it is not stable.
func (s Span) Compare(o Span) int {
	if c := cmp.Compare(s.Start, o.Start); c != 0 {
		return c
	}
	if c := cmp.Compare(s.End, o.End); c != 0 {
		return c
	}
	if c := cmp.Compare(s.Track, o.Track); c != 0 {
		return c
	}
	if c := cmp.Compare(s.Kind, o.Kind); c != 0 {
		return c
	}
	if c := cmp.Compare(s.Name, o.Name); c != 0 {
		return c
	}
	if c := cmp.Compare(s.Tenant, o.Tenant); c != 0 {
		return c
	}
	if c := cmp.Compare(s.Arg, o.Arg); c != 0 {
		return c
	}
	return cmp.Compare(s.Arg2, o.Arg2)
}

// DefaultCapacity is the per-lane flight-recorder capacity when New is
// given 0: large enough that the committed scenario corpus never wraps,
// small enough that an always-on daemon stays bounded (64Ki spans/lane).
const DefaultCapacity = 1 << 16

// lane is one fixed-capacity ring. Each recording site writes to one
// lane (its shard, or lane 0 for single-loop subsystems); the mutex is
// effectively uncontended because a lane has one writer, and exists so
// snapshots can be taken concurrently (rocketd's /v1/trace).
//
// The backing slice grows geometrically toward cap instead of being
// allocated up front: a 64Ki-span lane is 5 MB, and zeroing that per
// recorder would dominate short traced runs that record a few hundred
// spans. Until the slice reaches cap the ring has never wrapped, so
// growth is a plain copy.
type lane struct {
	mu   sync.Mutex
	buf  []Span
	cap  int
	next int
	n    int
	seq  uint64
}

// Recorder is the flight recorder: per-lane fixed-size rings of spans.
// When a lane is full the oldest span is overwritten — the recorder
// keeps the most recent history, like an aircraft flight recorder.
//
// A nil *Recorder is valid and disabled: Record is a no-op and Snapshot
// returns an empty snapshot. That is the off state.
type Recorder struct {
	lanes []lane
}

// New returns a recorder with the given number of lanes (one per engine
// shard, minimum 1) and per-lane capacity (0 = DefaultCapacity).
func New(lanes, capacity int) *Recorder {
	if lanes < 1 {
		lanes = 1
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Recorder{lanes: make([]lane, lanes)}
	for i := range r.lanes {
		r.lanes[i].cap = capacity
	}
	return r
}

// Enabled reports whether the recorder records (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Lanes returns the lane count (0 for nil).
func (r *Recorder) Lanes() int {
	if r == nil {
		return 0
	}
	return len(r.lanes)
}

// Record appends one span to the given lane's ring (modulo the lane
// count), overwriting the oldest span when full. Safe for concurrent use
// across lanes; a single lane must have one writer at a time, which the
// engine's shard ownership already guarantees.
func (r *Recorder) Record(laneIdx int, s Span) {
	if r == nil {
		return
	}
	if s.End < s.Start {
		panic(fmt.Sprintf("obs: span ends before it starts: %+v", s))
	}
	l := &r.lanes[laneIdx%len(r.lanes)]
	l.mu.Lock()
	if l.n == len(l.buf) && len(l.buf) < l.cap {
		// Still in the growth phase (never wrapped: next == n), so the
		// retained spans are buf[:n] in order and copy preserves them.
		grown := min(max(2*len(l.buf), 64), l.cap)
		next := make([]Span, grown)
		copy(next, l.buf)
		l.buf = next
		// next had wrapped to 0 when the old slice filled; the retained
		// spans occupy buf[:n], so writing resumes at n.
		l.next = l.n
	}
	l.buf[l.next] = s
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
	}
	if l.n < len(l.buf) {
		l.n++
	}
	l.seq++
	l.mu.Unlock()
}

// RecordInstant records a zero-duration span at t.
func (r *Recorder) RecordInstant(laneIdx int, kind Kind, track, name string, t sim.Time, arg int64) {
	r.Record(laneIdx, Span{Start: t, End: t, Kind: kind, Track: track, Name: name, Arg: arg})
}

// Snapshot is a point-in-time copy of the recorder's contents in
// canonical order.
type Snapshot struct {
	// Spans holds the retained spans sorted by Span.Compare.
	Spans []Span
	// Recorded counts every span ever recorded; Dropped counts the ones
	// the rings overwrote. Exports are width-invariant only while
	// Dropped == 0 (drop order depends on the lane layout); exporters
	// surface the counter so pipelines can detect truncated recordings.
	Recorded, Dropped uint64
}

// Snapshot copies and canonically sorts the retained spans. Safe to call
// while recording continues (each lane is locked briefly in turn, so the
// snapshot is per-lane consistent).
func (r *Recorder) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	for i := range r.lanes {
		l := &r.lanes[i]
		l.mu.Lock()
		snap.Recorded += l.seq
		snap.Dropped += l.seq - uint64(l.n)
		if l.n == len(l.buf) {
			// Full ring: next is both write position and oldest entry.
			snap.Spans = append(snap.Spans, l.buf[l.next:]...)
			snap.Spans = append(snap.Spans, l.buf[:l.next]...)
		} else {
			snap.Spans = append(snap.Spans, l.buf[:l.n]...)
		}
		l.mu.Unlock()
	}
	sortSpans(snap.Spans)
	return snap
}
