package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"rocket/internal/sim"
)

// ExportOptions controls WriteTrace.
type ExportOptions struct {
	// IncludeEngine includes engine-internal spans (shard windows).
	// These depend on the engine width, so traces exported with them are
	// comparable only across runs at the same width. Off by default to
	// preserve the width-invariance guarantee.
	IncludeEngine bool
}

// engineSpan reports whether the span is engine-internal (width-dependent).
func engineSpan(s Span) bool { return s.Kind == KindWindow }

// WriteTrace writes the snapshot as Chrome trace-event JSON, loadable by
// Perfetto (ui.perfetto.dev) and chrome://tracing. The writer is
// hand-rolled rather than encoding/json so the byte stream is a pure
// function of the canonical span list: object key order, number
// formatting, and event order are all fixed, which is what lets CI diff
// two exports with cmp(1).
//
// Layout: one process (pid 1); each distinct track becomes a thread
// whose tid is the track's rank in sorted order, named via thread_name
// metadata; spans become "X" (complete) events with microsecond
// timestamps carrying nanosecond precision in the fraction.
func WriteTrace(w io.Writer, snap Snapshot, opts ExportOptions) error {
	bw := bufio.NewWriter(w)

	spans := snap.Spans
	if !opts.IncludeEngine {
		kept := make([]Span, 0, len(spans))
		for _, s := range spans {
			if !engineSpan(s) {
				kept = append(kept, s)
			}
		}
		spans = kept
	}

	// Assign tids by sorted track name so the numbering is independent
	// of recording order.
	trackSet := map[string]int{}
	for _, s := range spans {
		trackSet[s.Track] = 0
	}
	tracks := make([]string, 0, len(trackSet))
	for t := range trackSet {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	for i, t := range tracks {
		trackSet[t] = i + 1
	}

	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteString("\n")
			first = false
		}
	}
	for _, t := range tracks {
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			trackSet[t], quote(t))
	}
	for _, s := range spans {
		sep()
		bw.WriteString(`{"ph":"X","pid":1,"tid":`)
		bw.WriteString(strconv.Itoa(trackSet[s.Track]))
		bw.WriteString(`,"ts":`)
		writeMicros(bw, s.Start)
		bw.WriteString(`,"dur":`)
		writeMicros(bw, s.End-s.Start)
		bw.WriteString(`,"name":`)
		name := s.Name
		if name == "" {
			name = s.Kind.String()
		}
		bw.WriteString(quote(name))
		bw.WriteString(`,"cat":`)
		bw.WriteString(quote(s.Kind.String()))
		bw.WriteString(`,"args":{`)
		argFirst := true
		arg := func(k, v string) {
			if !argFirst {
				bw.WriteByte(',')
			}
			argFirst = false
			bw.WriteString(quote(k))
			bw.WriteByte(':')
			bw.WriteString(v)
		}
		if s.Tenant != "" {
			arg("tenant", quote(s.Tenant))
		}
		if s.Arg != 0 {
			arg("arg", strconv.FormatInt(s.Arg, 10))
		}
		if s.Arg2 != 0 {
			arg("arg2", strconv.FormatInt(s.Arg2, 10))
		}
		bw.WriteString(`}}`)
	}
	// The trailer reports the exported span count, not Snapshot.Recorded:
	// the recorded total includes engine spans, whose number depends on
	// the engine width, and the default export must stay width-invariant
	// byte for byte. Dropped is 0 in any trace the invariance guarantee
	// covers (see Snapshot), so surfacing it cannot break the property —
	// it only flags recordings where the property is already off.
	fmt.Fprintf(bw, "\n],\"otherData\":{\"spans\":\"%d\",\"dropped\":\"%d\"}}\n",
		len(spans), snap.Dropped)
	return bw.Flush()
}

// writeMicros renders a nanosecond virtual duration as microseconds with
// exactly three fractional digits ("12.500"), preserving full precision
// with a fixed byte representation.
func writeMicros(w *bufio.Writer, t sim.Time) {
	n := int64(t)
	fmt.Fprintf(w, "%d.%03d", n/1000, n%1000)
}

// quote returns the JSON string literal for s (strconv's quoting is
// deterministic and escapes everything JSON needs at ASCII level).
func quote(s string) string { return strconv.Quote(s) }

// WriteTable renders the snapshot as a human-readable span table, at
// most limit rows (0 = all), in canonical order.
func (snap Snapshot) WriteTable(w io.Writer, limit int, opts ExportOptions) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-12s %-12s %-10s %-18s %-18s %8s %8s\n",
		"START", "DUR", "KIND", "TRACK", "NAME", "ARG", "ARG2")
	rows := 0
	for _, s := range snap.Spans {
		if engineSpan(s) && !opts.IncludeEngine {
			continue
		}
		if limit > 0 && rows >= limit {
			break
		}
		rows++
		name := s.Name
		if s.Tenant != "" {
			name += "(" + s.Tenant + ")"
		}
		fmt.Fprintf(bw, "%-12s %-12s %-10s %-18s %-18s %8d %8d\n",
			s.Start, s.End-s.Start, s.Kind, s.Track, name, s.Arg, s.Arg2)
	}
	fmt.Fprintf(bw, "spans: %d recorded, %d dropped, %d shown\n",
		snap.Recorded, snap.Dropped, rows)
	return bw.Flush()
}

// TopEntry aggregates busy virtual time over one grouping key.
type TopEntry struct {
	Key   string
	Busy  sim.Time
	Count int
}

// Top aggregates span durations by track ("track") or kind ("kind"),
// sorted by descending busy time then key. Engine spans are excluded —
// window spans cover the whole run and would drown the workload.
func (snap Snapshot) Top(by string) []TopEntry {
	agg := map[string]*TopEntry{}
	for _, s := range snap.Spans {
		if engineSpan(s) {
			continue
		}
		key := s.Track
		if by == "kind" {
			key = s.Kind.String()
		}
		e := agg[key]
		if e == nil {
			e = &TopEntry{Key: key}
			agg[key] = e
		}
		e.Busy += s.End - s.Start
		e.Count++
	}
	out := make([]TopEntry, 0, len(agg))
	for _, e := range agg {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Busy != out[j].Busy {
			return out[i].Busy > out[j].Busy
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// WriteTop renders Top as a table.
func (snap Snapshot) WriteTop(w io.Writer, by string, limit int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-24s %14s %8s\n", by, "BUSY", "COUNT")
	for i, e := range snap.Top(by) {
		if limit > 0 && i >= limit {
			break
		}
		fmt.Fprintf(bw, "%-24s %14s %8d\n", e.Key, e.Busy, e.Count)
	}
	return bw.Flush()
}
