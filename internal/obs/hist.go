package obs

import (
	"math/bits"
	"sort"
)

// Histogram is a log-bucketed (HDR-style) distribution of non-negative
// int64 samples. Values below 32 land in exact unit buckets; above that,
// each power of two is split into 32 sub-buckets, bounding the relative
// quantile error at ~3% while keeping the bucket count small enough to
// export on /metrics. All state is integer, so merging and quantile
// extraction are deterministic.
//
// The zero value is ready to use. Histogram is not safe for concurrent
// use; callers (sched.Online) guard it with their own mutex.
type Histogram struct {
	counts []uint64
	count  uint64
	sum    int64
	max    int64
}

// histSub is the number of sub-buckets per power of two above the exact
// range. The exact range covers [0, histSub) with one bucket per value.
const histSub = 32

// histBucket maps a sample to its bucket index.
func histBucket(v int64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2 v), ≥ 5 here
	sub := int(v>>(uint(exp)-5)) - histSub
	return histSub + (exp-5)*histSub + sub
}

// histUpper returns the largest value that maps into bucket i (the
// bucket's inclusive upper bound — Prometheus `le`).
func histUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := (i-histSub)/histSub + 5
	sub := (i - histSub) % histSub
	return (int64(histSub+sub+1))<<(uint(exp)-5) - 1
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := histBucket(v)
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest observed sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// upper bound of the bucket holding the ⌈q·count⌉-th sample. Exact for
// values < 32; within one sub-bucket (≤ ~3% relative) above. Returns 0
// for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			u := histUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Merge adds o's samples into h. The max is the max of both.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{count: h.count, sum: h.sum, max: h.max}
	c.counts = append([]uint64(nil), h.counts...)
	return c
}

// Bucket is one cumulative exposition bucket: Count samples ≤ Le.
type Bucket struct {
	Le    int64
	Count uint64
}

// Buckets returns the non-empty buckets in cumulative (Prometheus) form,
// ordered by upper bound. Empty buckets are elided — the cumulative
// counts are unaffected and the exposition stays compact.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if c > 0 {
			out = append(out, Bucket{Le: histUpper(i), Count: cum})
		}
	}
	return out
}

// sortSpans sorts spans by the canonical export key.
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Compare(spans[j]) < 0 })
}
