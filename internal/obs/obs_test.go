package obs

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rocket/internal/sim"
	"rocket/internal/trace"
)

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Lanes() != 0 {
		t.Fatal("nil recorder reports lanes")
	}
	r.Record(0, Span{Kind: KindMark})
	r.RecordInstant(3, KindSteal, "node0", "probe", 5, 1)
	FromTasks(r, 0, []trace.Task{{Kind: trace.KindIO}})
	snap := r.Snapshot()
	if len(snap.Spans) != 0 || snap.Recorded != 0 || snap.Dropped != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", snap)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := New(1, 4)
	for i := 0; i < 10; i++ {
		r.Record(0, Span{Start: sim.Time(i), End: sim.Time(i), Kind: KindMark, Track: "t"})
	}
	snap := r.Snapshot()
	if snap.Recorded != 10 || snap.Dropped != 6 {
		t.Fatalf("recorded=%d dropped=%d, want 10/6", snap.Recorded, snap.Dropped)
	}
	if len(snap.Spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(snap.Spans))
	}
	// The most recent four (starts 6..9) survive.
	for i, s := range snap.Spans {
		if want := sim.Time(6 + i); s.Start != want {
			t.Fatalf("span %d start = %v, want %v", i, s.Start, want)
		}
	}
}

// TestLazyGrowthLosesNothing covers the growth-phase boundary: the ring
// allocates lazily toward its capacity, and the moment the backing slice
// fills (write position wrapped to 0) the next record must grow and keep
// every span, not overwrite the oldest.
func TestLazyGrowthLosesNothing(t *testing.T) {
	const total = 1000 // crosses the 64/128/256/512 growth boundaries
	r := New(1, 1<<12)
	for i := 0; i < total; i++ {
		r.Record(0, Span{Start: sim.Time(i), End: sim.Time(i), Kind: KindMark, Track: "t"})
	}
	snap := r.Snapshot()
	if snap.Recorded != total || snap.Dropped != 0 {
		t.Fatalf("recorded=%d dropped=%d, want %d/0", snap.Recorded, snap.Dropped, total)
	}
	if len(snap.Spans) != total {
		t.Fatalf("retained %d spans, want %d", len(snap.Spans), total)
	}
	for i, s := range snap.Spans {
		if s.Start != sim.Time(i) {
			t.Fatalf("span %d start = %v, want %v", i, s.Start, sim.Time(i))
		}
	}
}

func TestSnapshotCanonicalOrderAcrossLaneLayouts(t *testing.T) {
	// The same multiset of spans recorded under different lane counts and
	// interleavings must snapshot identically — the width-invariance
	// property the exporters rely on.
	spans := make([]Span, 0, 200)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		start := sim.Time(rng.Intn(50))
		spans = append(spans, Span{
			Start: start,
			End:   start + sim.Time(rng.Intn(20)),
			Kind:  Kind(rng.Intn(int(numKinds))),
			Track: []string{"node0", "node1", "shard0"}[rng.Intn(3)],
			Name:  []string{"a", "b", ""}[rng.Intn(3)],
			Arg:   int64(rng.Intn(3)),
		})
	}
	var base Snapshot
	for trial, lanes := range []int{1, 2, 4, 8} {
		r := New(lanes, 0)
		order := rng.Perm(len(spans))
		for _, i := range order {
			r.Record(i%lanes, spans[i])
		}
		snap := r.Snapshot()
		if trial == 0 {
			base = snap
			continue
		}
		if len(snap.Spans) != len(base.Spans) {
			t.Fatalf("lanes=%d: %d spans, want %d", lanes, len(snap.Spans), len(base.Spans))
		}
		for i := range snap.Spans {
			if snap.Spans[i] != base.Spans[i] {
				t.Fatalf("lanes=%d: span %d differs: %+v vs %+v", lanes, i, snap.Spans[i], base.Spans[i])
			}
		}
	}
}

func TestRecordPanicsOnNegativeDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for End < Start")
		}
	}()
	New(1, 4).Record(0, Span{Start: 10, End: 5})
}

func TestKindRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
		got, ok := ParseKind(s)
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", s, got, ok, k)
		}
	}
	if _, ok := ParseKind("no-such-kind"); ok {
		t.Fatal("ParseKind accepted garbage")
	}
	if NumKinds() != int(numKinds) {
		t.Fatalf("NumKinds() = %d, want %d", NumKinds(), numKinds)
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 32; v++ {
		h.Observe(v)
	}
	if h.Count() != 32 || h.Sum() != 496 || h.Max() != 31 {
		t.Fatalf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	// Values below 32 are exact: the quantile is the sample itself.
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 = %d", got)
	}
	if got := h.Quantile(0.5); got != 16 {
		t.Fatalf("p50 = %d, want 16", got)
	}
	if got := h.Quantile(1); got != 31 {
		t.Fatalf("p100 = %d, want 31", got)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(3))
	var samples []int64
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1_000_000))
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)))]
		got := h.Quantile(q)
		if got < exact {
			t.Fatalf("p%v = %d below exact %d", q*100, got, exact)
		}
		// Log-bucketed upper bound: within one sub-bucket (~1/32 relative).
		if float64(got) > float64(exact)*(1+2.0/histSub)+1 {
			t.Fatalf("p%v = %d too far above exact %d", q*100, got, exact)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("p100 = %d, want max %d", h.Quantile(1), h.Max())
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1 << 20, 1<<40 + 12345} {
		i := histBucket(v)
		if histUpper(i) < v {
			t.Fatalf("value %d above its bucket upper %d (bucket %d)", v, histUpper(i), i)
		}
		if i > 0 && histUpper(i-1) >= v {
			t.Fatalf("value %d fits previous bucket (upper %d)", v, histUpper(i-1))
		}
	}
}

func TestHistogramMergeClone(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 100; i++ {
		a.Observe(i)
		b.Observe(i * 1000)
	}
	c := a.Clone()
	c.Merge(&b)
	if c.Count() != 200 || c.Sum() != a.Sum()+b.Sum() || c.Max() != b.Max() {
		t.Fatalf("merge: count=%d sum=%d max=%d", c.Count(), c.Sum(), c.Max())
	}
	if a.Count() != 100 {
		t.Fatal("merge mutated the clone source")
	}
	c.Merge(nil) // no-op
	var cum uint64
	var lastLe int64 = -1
	for _, bk := range c.Buckets() {
		if bk.Le <= lastLe {
			t.Fatalf("buckets not ascending: %d after %d", bk.Le, lastLe)
		}
		if bk.Count < cum {
			t.Fatalf("cumulative count decreased: %d after %d", bk.Count, cum)
		}
		cum, lastLe = bk.Count, bk.Le
	}
	if cum != c.Count() {
		t.Fatalf("last cumulative %d != count %d", cum, c.Count())
	}
}

func snapFixture() Snapshot {
	r := New(2, 0)
	r.Record(0, Span{Start: 0, End: 2500, Kind: KindKernel, Track: "node0/gpu0", Name: "compare", Arg: 3, Arg2: 5})
	r.Record(1, Span{Start: 1000, End: 1000, Kind: KindSeal, Track: "store", Name: "seal", Arg: 64})
	r.Record(0, Span{Start: 500, End: 4000, Kind: KindJobRun, Track: "sched", Name: "job1", Tenant: "acme"})
	r.Record(1, Span{Start: 0, End: 10000, Kind: KindWindow, Track: "shard1", Name: "window"})
	return r.Snapshot()
}

func TestWriteTraceBytes(t *testing.T) {
	var b strings.Builder
	if err := WriteTrace(&b, snapFixture(), ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	want := `{"displayTimeUnit":"ms","traceEvents":[
{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"node0/gpu0"}},
{"ph":"M","pid":1,"tid":2,"name":"thread_name","args":{"name":"sched"}},
{"ph":"M","pid":1,"tid":3,"name":"thread_name","args":{"name":"store"}},
{"ph":"X","pid":1,"tid":1,"ts":0.000,"dur":2.500,"name":"compare","cat":"kernel","args":{"arg":3,"arg2":5}},
{"ph":"X","pid":1,"tid":2,"ts":0.500,"dur":3.500,"name":"job1","cat":"job-run","args":{"tenant":"acme"}},
{"ph":"X","pid":1,"tid":3,"ts":1.000,"dur":0.000,"name":"seal","cat":"seal","args":{"arg":64}}
],"otherData":{"spans":"3","dropped":"0"}}
`
	if b.String() != want {
		t.Fatalf("trace bytes:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWriteTraceIncludeEngine(t *testing.T) {
	var off, on strings.Builder
	if err := WriteTrace(&off, snapFixture(), ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&on, snapFixture(), ExportOptions{IncludeEngine: true}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(off.String(), `"cat":"window"`) {
		t.Fatal("default export contains engine spans")
	}
	if !strings.Contains(on.String(), `"cat":"window"`) {
		t.Fatal("IncludeEngine export missing engine spans")
	}
}

func TestWriteTableAndTop(t *testing.T) {
	snap := snapFixture()
	var tbl strings.Builder
	if err := snap.WriteTable(&tbl, 0, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"job1(acme)", "compare", "seal", "3 shown"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "window") {
		t.Fatalf("table shows engine spans by default:\n%s", out)
	}

	top := snap.Top("kind")
	if len(top) != 3 || top[0].Key != "job-run" || top[0].Busy != 3500 {
		t.Fatalf("top by kind = %+v", top)
	}
	byTrack := snap.Top("track")
	if byTrack[0].Key != "sched" {
		t.Fatalf("top by track = %+v", byTrack)
	}
	var topOut strings.Builder
	if err := snap.WriteTop(&topOut, "kind", 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(topOut.String(), "job-run") {
		t.Fatalf("top table:\n%s", topOut.String())
	}
}

func TestFromTasksBridge(t *testing.T) {
	r := New(1, 0)
	FromTasks(r, 0, []trace.Task{
		{Resource: "node0/gpu0", Class: trace.ClassGPU, Kind: trace.KindCompare, Item: 2, Item2: 7, Start: 10, End: 20},
		{Resource: "node0/cpu", Class: trace.ClassCPU, Kind: trace.KindParse, Item: 1, Item2: -1, Start: 0, End: 5},
		{Resource: "node0/io", Class: trace.ClassIO, Kind: trace.KindIO, Item: 1, Item2: -1, Start: 0, End: 3},
	})
	snap := r.Snapshot()
	if len(snap.Spans) != 3 {
		t.Fatalf("got %d spans", len(snap.Spans))
	}
	// Canonical order: (0,3,io) before (0,5,parse) before (10,20,compare).
	if snap.Spans[0].Kind != KindIO || snap.Spans[1].Kind != KindCPU || snap.Spans[2].Kind != KindKernel {
		t.Fatalf("kinds = %v %v %v", snap.Spans[0].Kind, snap.Spans[1].Kind, snap.Spans[2].Kind)
	}
	if snap.Spans[2].Name != "compare" || snap.Spans[2].Arg != 2 || snap.Spans[2].Arg2 != 8 {
		t.Fatalf("compare span = %+v", snap.Spans[2])
	}
	if snap.Spans[1].Arg2 != 0 {
		t.Fatalf("parse span Arg2 = %d, want 0", snap.Spans[1].Arg2)
	}
}
