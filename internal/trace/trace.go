// Package trace records which task ran on which simulated resource and
// when. It backs the paper's profiling flag: Fig. 6 (task timeline),
// Fig. 8/10 (total processing time per thread class), and Fig. 14 (rolling
// throughput per GPU).
package trace

import (
	"cmp"
	"fmt"
	"io"
	"slices"
	"strings"

	"rocket/internal/sim"
)

// Kind classifies a task by the pipeline stage it implements (Fig. 2).
type Kind int

// Task kinds, one per pipeline stage plus runtime-internal activities.
const (
	KindIO         Kind = iota // read input file from (remote) storage
	KindParse                  // parse file contents on the CPU
	KindH2D                    // host-to-device transfer
	KindPreprocess             // pre-processing kernel on the GPU
	KindCompare                // comparison kernel on the GPU
	KindD2H                    // device-to-host transfer
	KindPost                   // post-processing on the CPU
	KindFetch                  // distributed-cache fetch from a peer node
	KindSteal                  // work-stealing protocol activity
	KindStoreRead              // pairstore read: resident results served
	KindStoreWrite             // pairstore write: segment-log append flush
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindIO:
		return "io"
	case KindParse:
		return "parse"
	case KindH2D:
		return "h2d"
	case KindPreprocess:
		return "preprocess"
	case KindCompare:
		return "compare"
	case KindD2H:
		return "d2h"
	case KindPost:
		return "postprocess"
	case KindFetch:
		return "fetch"
	case KindSteal:
		return "steal"
	case KindStoreRead:
		return "store-read"
	case KindStoreWrite:
		return "store-write"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind maps a wire name produced by Kind.String back to its kind,
// so tools that filter recorded timelines by stage name ("compare",
// "store-read", ...) can validate the name against the enum.
func ParseKind(name string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown task kind %q", name)
}

// Class groups resources the way the paper groups threads in Fig. 8:
// GPU, CPU, CPU→GPU, GPU→CPU, and IO.
type Class int

// Resource classes.
const (
	ClassGPU Class = iota
	ClassCPU
	ClassH2D
	ClassD2H
	ClassIO
	ClassNet
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassGPU:
		return "GPU"
	case ClassCPU:
		return "CPU"
	case ClassH2D:
		return "CPU>GPU"
	case ClassD2H:
		return "GPU>CPU"
	case ClassIO:
		return "IO"
	case ClassNet:
		return "NET"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Task is one recorded interval of work on a resource.
type Task struct {
	Resource string // e.g. "node3/gpu0", "node3/cpu", "node3/io"
	Class    Class
	Kind     Kind
	Item     int // item loaded (load pipeline) or left item (compare)
	Item2    int // right item for comparisons, -1 otherwise
	Start    sim.Time
	End      sim.Time
}

// Tracer accumulates per-class busy time always, and the full task list
// only when detailed recording is enabled (the paper's profiling flag).
type Tracer struct {
	detailed bool
	tasks    []Task
	busy     [numClasses][numKinds]sim.Time
	count    [numClasses][numKinds]uint64
}

// New returns a tracer. With detailed=false only aggregate busy times are
// kept, which is what the benchmarks need; detailed=true additionally
// retains every task for timeline rendering.
func New(detailed bool) *Tracer {
	return &Tracer{detailed: detailed}
}

// Record logs one completed task interval.
func (tr *Tracer) Record(t Task) {
	if t.End < t.Start {
		panic(fmt.Sprintf("trace: task ends before it starts: %+v", t))
	}
	tr.busy[t.Class][t.Kind] += t.End - t.Start
	tr.count[t.Class][t.Kind]++
	if tr.detailed {
		tr.tasks = append(tr.tasks, t)
	}
}

// Busy returns the total recorded busy time for a class, summed over kinds.
func (tr *Tracer) Busy(c Class) sim.Time {
	var total sim.Time
	for k := Kind(0); k < numKinds; k++ {
		total += tr.busy[c][k]
	}
	return total
}

// BusyKind returns the busy time for one (class, kind) pair, e.g. the GPU
// time spent in comparison kernels only.
func (tr *Tracer) BusyKind(c Class, k Kind) sim.Time { return tr.busy[c][k] }

// Count returns the number of tasks recorded for (class, kind).
func (tr *Tracer) Count(c Class, k Kind) uint64 { return tr.count[c][k] }

// Tasks returns the detailed task list (nil unless detailed recording).
func (tr *Tracer) Tasks() []Task { return tr.tasks }

// Merge folds other's aggregates (and detailed tasks, if any) into tr,
// used to combine per-node tracers into a cluster-wide view.
func (tr *Tracer) Merge(other *Tracer) {
	for c := Class(0); c < numClasses; c++ {
		for k := Kind(0); k < numKinds; k++ {
			tr.busy[c][k] += other.busy[c][k]
			tr.count[c][k] += other.count[c][k]
		}
	}
	if tr.detailed {
		tr.tasks = append(tr.tasks, other.tasks...)
	}
}

// WriteTimeline renders the detailed task list as a per-resource textual
// timeline in start order, the Fig. 6 view. Limit caps the number of rows
// (0 = no limit).
func (tr *Tracer) WriteTimeline(w io.Writer, limit int) error {
	// Bucket task indices by resource first, then sort each bucket by
	// (Start, index): resources are few, so this replaces the per-element
	// string comparisons of one big sort — which dominated the whole
	// Fig. 6 rendering path — with cheap integer sorts. Moving indices
	// instead of the ~64-byte tasks keeps the swaps allocation-free.
	buckets := make(map[string][]int)
	for i := range tr.tasks {
		buckets[tr.tasks[i].Resource] = append(buckets[tr.tasks[i].Resource], i)
	}
	names := make([]string, 0, len(buckets))
	for name := range buckets {
		names = append(names, name)
	}
	slices.Sort(names)
	rows := 0
	for _, name := range names {
		if limit > 0 && rows >= limit {
			break
		}
		idx := buckets[name]
		slices.SortFunc(idx, func(i, j int) int {
			if c := cmp.Compare(tr.tasks[i].Start, tr.tasks[j].Start); c != 0 {
				return c
			}
			return cmp.Compare(i, j)
		})
		if _, err := fmt.Fprintf(w, "== %s ==\n", name); err != nil {
			return err
		}
		for _, i := range idx {
			if limit > 0 && rows >= limit {
				break
			}
			t := tr.tasks[i]
			items := fmt.Sprintf("item %d", t.Item)
			if t.Item2 >= 0 {
				items = fmt.Sprintf("pair (%d, %d)", t.Item, t.Item2)
			}
			if _, err := fmt.Fprintf(w, "  %12v .. %-12v %-11s %s\n",
				t.Start, t.End, t.Kind, items); err != nil {
				return err
			}
			rows++
		}
	}
	return nil
}

// Summary renders the aggregate busy-time table, one row per class.
func (tr *Tracer) Summary() string {
	var b strings.Builder
	for c := Class(0); c < numClasses; c++ {
		total := tr.Busy(c)
		if total == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8s %v\n", c, total)
	}
	return b.String()
}
