package trace

import (
	"strings"
	"testing"

	"rocket/internal/sim"
)

func TestKindAndClassStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	for c := Class(0); c < numClasses; c++ {
		if strings.HasPrefix(c.String(), "class(") {
			t.Errorf("class %d has no name", c)
		}
	}
	if Kind(99).String() != "kind(99)" || Class(99).String() != "class(99)" {
		t.Error("unknown values should format numerically")
	}
}

// TestKindRoundTrip: every kind's wire name parses back to itself, names
// are distinct, and unknown names are rejected.
func TestKindRoundTrip(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if prev, dup := seen[name]; dup {
			t.Fatalf("kinds %v and %v share the name %q", prev, k, name)
		}
		seen[name] = k
		got, err := ParseKind(name)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", name, err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", name, got, k)
		}
	}
	if _, err := ParseKind("warp-drive"); err == nil {
		t.Error("ParseKind accepted an unknown name")
	}
	if _, err := ParseKind(""); err == nil {
		t.Error("ParseKind accepted the empty name")
	}
}

func TestRecordAggregates(t *testing.T) {
	tr := New(false)
	tr.Record(Task{Resource: "n0/gpu0", Class: ClassGPU, Kind: KindCompare, Item: 1, Item2: 2, Start: 0, End: sim.Millis(2)})
	tr.Record(Task{Resource: "n0/gpu0", Class: ClassGPU, Kind: KindPreprocess, Item: 3, Item2: -1, Start: sim.Millis(2), End: sim.Millis(5)})
	tr.Record(Task{Resource: "n0/cpu", Class: ClassCPU, Kind: KindParse, Item: 3, Item2: -1, Start: 0, End: sim.Millis(10)})
	if got := tr.Busy(ClassGPU); got != sim.Millis(5) {
		t.Errorf("GPU busy %v, want 5ms", got)
	}
	if got := tr.BusyKind(ClassGPU, KindCompare); got != sim.Millis(2) {
		t.Errorf("GPU compare busy %v, want 2ms", got)
	}
	if tr.Count(ClassCPU, KindParse) != 1 {
		t.Error("parse count wrong")
	}
	if tr.Tasks() != nil {
		t.Error("non-detailed tracer retained tasks")
	}
}

func TestDetailedTimeline(t *testing.T) {
	tr := New(true)
	tr.Record(Task{Resource: "n0/io", Class: ClassIO, Kind: KindIO, Item: 7, Item2: -1, Start: 0, End: sim.Millis(1)})
	tr.Record(Task{Resource: "n0/gpu0", Class: ClassGPU, Kind: KindCompare, Item: 1, Item2: 2, Start: 0, End: sim.Millis(1)})
	var b strings.Builder
	if err := tr.WriteTimeline(&b, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "== n0/gpu0 ==") || !strings.Contains(out, "pair (1, 2)") {
		t.Errorf("timeline missing entries:\n%s", out)
	}
	if !strings.Contains(out, "item 7") {
		t.Errorf("timeline missing load entry:\n%s", out)
	}
}

func TestTimelineLimit(t *testing.T) {
	tr := New(true)
	for i := 0; i < 10; i++ {
		tr.Record(Task{Resource: "r", Class: ClassCPU, Kind: KindParse, Item: i, Item2: -1, Start: sim.Time(i), End: sim.Time(i + 1)})
	}
	var b strings.Builder
	if err := tr.WriteTimeline(&b, 3); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(b.String(), "\n")
	if lines != 4 { // header + 3 rows
		t.Errorf("got %d lines, want 4:\n%s", lines, b.String())
	}
}

func TestMerge(t *testing.T) {
	a, b := New(true), New(true)
	a.Record(Task{Resource: "n0/cpu", Class: ClassCPU, Kind: KindParse, Item2: -1, Start: 0, End: sim.Millis(1)})
	b.Record(Task{Resource: "n1/cpu", Class: ClassCPU, Kind: KindParse, Item2: -1, Start: 0, End: sim.Millis(2)})
	a.Merge(b)
	if got := a.Busy(ClassCPU); got != sim.Millis(3) {
		t.Errorf("merged busy %v, want 3ms", got)
	}
	if len(a.Tasks()) != 2 {
		t.Errorf("merged tasks %d, want 2", len(a.Tasks()))
	}
}

func TestRecordBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for End < Start")
		}
	}()
	New(false).Record(Task{Start: sim.Millis(2), End: sim.Millis(1)})
}

func TestSummaryNonEmpty(t *testing.T) {
	tr := New(false)
	tr.Record(Task{Class: ClassIO, Kind: KindIO, Item2: -1, Start: 0, End: sim.Second})
	if s := tr.Summary(); !strings.Contains(s, "IO") {
		t.Errorf("summary = %q", s)
	}
}
