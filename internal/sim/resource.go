package sim

import "fmt"

// Resource is a counting semaphore with a FIFO wait queue, used to model
// exclusive or capacity-limited hardware: a GPU compute queue (capacity 1),
// a CPU thread pool (capacity = cores), a NIC or PCIe copy engine, or the
// shared bandwidth of a storage server.
type Resource struct {
	name    string
	cap     int
	inUse   int
	waiters []*Proc

	// Accounting.
	busy      Time // total (units x time) the resource spent occupied
	lastStamp Time
	acquires  uint64
	waited    Time // total time processes spent queued
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{name: name, cap: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Cap returns the resource capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquires returns the total number of successful acquisitions.
func (r *Resource) Acquires() uint64 { return r.acquires }

// BusyTime returns the integral of units-in-use over time, i.e. the total
// occupied time summed over units. Divide by capacity and elapsed time for
// utilization.
func (r *Resource) BusyTime(now Time) Time {
	r.account(now)
	return r.busy
}

// WaitedTime returns the cumulative time processes spent queued on r.
func (r *Resource) WaitedTime() Time { return r.waited }

func (r *Resource) account(now Time) {
	r.busy += Time(int64(r.inUse) * int64(now-r.lastStamp))
	r.lastStamp = now
}

// Acquire blocks the process until a unit of r is available, then holds it.
// Units are granted in strict FIFO order.
func (p *Proc) Acquire(r *Resource) {
	e := p.env
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.account(e.now)
		r.inUse++
		r.acquires++
		return
	}
	start := e.now
	r.waiters = append(r.waiters, p)
	p.yieldBlockedAndWait()
	r.waited += e.now - start
	// The releasing process transferred the unit to us (see Release).
}

// Release returns one unit of r, waking the longest-waiting process if any.
// The unit is transferred directly to the woken process, preserving FIFO
// fairness.
func (r *Resource) Release(e *Env) {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	r.account(e.now)
	if len(r.waiters) > 0 {
		// Hand the unit to the next waiter without dropping inUse.
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.acquires++
		e.wake(next)
		return
	}
	r.inUse--
}

// Use acquires r, holds it for d of virtual time, and releases it. It is
// the common pattern for "run this task on that device".
func (p *Proc) Use(r *Resource, d Time) {
	p.Acquire(r)
	p.Wait(d)
	r.Release(p.env)
}
