package sim

import "fmt"

// rwaiter is one entry of a resource's FIFO wait queue: a blocked process
// (p), a completion callback (fn), or a queued timed hold (useFn + useDur,
// from UseFunc). Exactly one of p, fn, and useFn is set.
type rwaiter struct {
	p      *Proc
	fn     func()
	useFn  func(start Time)
	useDur Time
	start  Time // enqueue time, for queued-time accounting of callbacks
}

// Resource is a counting semaphore with a FIFO wait queue, used to model
// exclusive or capacity-limited hardware: a GPU compute queue (capacity 1),
// a CPU thread pool (capacity = cores), a NIC or PCIe copy engine, or the
// shared bandwidth of a storage server. Process waiters (Acquire) and
// callback waiters (AcquireFunc) share one queue and are granted units in
// strict arrival order.
type Resource struct {
	name    string
	cap     int
	inUse   int
	waiters []rwaiter

	// Accounting.
	busy      Time // total (units x time) the resource spent occupied
	lastStamp Time
	acquires  uint64
	waited    Time // total time processes spent queued
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{name: name, cap: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Cap returns the resource capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of waiters (processes and callbacks) queued
// to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquires returns the total number of successful acquisitions.
func (r *Resource) Acquires() uint64 { return r.acquires }

// BusyTime returns the integral of units-in-use over time, i.e. the total
// occupied time summed over units. Divide by capacity and elapsed time for
// utilization.
func (r *Resource) BusyTime(now Time) Time {
	r.account(now)
	return r.busy
}

// WaitedTime returns the cumulative time waiters spent queued on r.
func (r *Resource) WaitedTime() Time { return r.waited }

func (r *Resource) account(now Time) {
	r.busy += Time(int64(r.inUse) * int64(now-r.lastStamp))
	r.lastStamp = now
}

// Acquire blocks the process until a unit of r is available, then holds it.
// Units are granted in strict FIFO order.
func (p *Proc) Acquire(r *Resource) {
	e := p.env
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.account(e.now)
		r.inUse++
		r.acquires++
		return
	}
	start := e.now
	r.waiters = append(r.waiters, rwaiter{p: p, start: start})
	p.yieldBlockedAndWait()
	r.waited += e.now - start
	// The releasing process transferred the unit to us (see Release).
}

// TryAcquire takes a unit of r if one is free and nobody is queued ahead,
// reporting whether it succeeded. It never blocks and never queues.
func (r *Resource) TryAcquire(e *Env) bool {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.account(e.now)
		r.inUse++
		r.acquires++
		return true
	}
	return false
}

// AcquireFunc obtains a unit of r and then calls fn. When a unit is free
// and nobody is queued, fn runs inline before AcquireFunc returns — the
// same semantics as Acquire returning without blocking. Otherwise fn is
// queued FIFO alongside blocked processes and runs in scheduler context
// when a unit is granted. fn must not block; it must eventually lead to a
// Release.
func (r *Resource) AcquireFunc(e *Env, fn func()) {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.account(e.now)
		r.inUse++
		r.acquires++
		fn()
		return
	}
	r.waiters = append(r.waiters, rwaiter{fn: fn, start: e.now})
}

// Release returns one unit of r, waking the longest-waiting process or
// scheduling the longest-waiting callback, if any. The unit is transferred
// directly to the woken waiter, preserving FIFO fairness.
func (r *Resource) Release(e *Env) {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	r.account(e.now)
	if len(r.waiters) > 0 {
		// Hand the unit to the next waiter without dropping inUse.
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.acquires++
		switch {
		case next.p != nil:
			e.wake(next.p)
		case next.useFn != nil:
			r.waited += e.now - next.start
			e.scheduleUseGrant(r, next.useDur, next.useFn)
		default:
			r.waited += e.now - next.start
			e.Defer(next.fn)
		}
		return
	}
	r.inUse--
}

// Use acquires r, holds it for d of virtual time, and releases it. It is
// the common pattern for "run this task on that device".
func (p *Proc) Use(r *Resource, d Time) {
	p.Acquire(r)
	p.Wait(d)
	r.Release(p.env)
}

// UseFunc is the callback analogue of Use: it acquires r, holds it for d of
// virtual time, releases it, and then calls fn with the time the unit was
// granted (occupancy ran [start, start+d]). No goroutine or closure is
// involved: the grant, hold, and completion ride inline in one or two
// queue entries (zero allocations — the engine's hottest pattern).
func (r *Resource) UseFunc(e *Env, d Time, fn func(start Time)) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative UseFunc duration %v", d))
	}
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.account(e.now)
		r.inUse++
		r.acquires++
		e.scheduleUseEnd(r, d, fn, e.now)
		return
	}
	r.waiters = append(r.waiters, rwaiter{useFn: fn, useDur: d, start: e.now})
}
