package sim

import "fmt"

// Proc is a simulated process: a goroutine that cooperatively shares the
// simulation with all other processes. At most one Proc executes at a time;
// a Proc runs until it blocks in Wait, WaitSignal, Acquire, or Recv.
type Proc struct {
	name   string
	env    *Env
	resume chan resumeMsg
	// done is set by the scheduler when the process function returns; it
	// lets the dispatch loop skip stale wake-ups without a map lookup.
	done bool
}

type resumeMsg struct {
	kill bool
}

// killed is the sentinel panic value used by Env.Close to unwind blocked
// processes.
type killed struct{}

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

func (p *Proc) run(fn func(p *Proc)) {
	// Wait for the first dispatch.
	p.block()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killed); !ok {
				// Forward user panics to the scheduler goroutine.
				p.env.panicVal = r
				p.env.panicked = true
			}
		}
		p.env.yield <- yieldDone
	}()
	fn(p)
}

// block yields control to the scheduler and waits to be resumed. The caller
// must have already arranged a wake-up (timer event or waiter registration).
func (p *Proc) block() {
	msg := <-p.resume
	if msg.kill {
		panic(killed{})
	}
}

// yieldBlockedAndWait notifies the scheduler that this process has blocked
// and then waits for the next resume.
func (p *Proc) yieldBlockedAndWait() {
	p.env.yield <- yieldBlocked
	p.block()
}

// Wait suspends the process for d of virtual time. d must be >= 0.
func (p *Proc) Wait(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative Wait duration %v", d))
	}
	p.env.schedule(p.env.now+d, p, nil)
	p.yieldBlockedAndWait()
}

// WaitUntil suspends the process until virtual time t. If t is in the past,
// the process continues at the current time after a scheduler round-trip.
func (p *Proc) WaitUntil(t Time) {
	if t < p.env.now {
		t = p.env.now
	}
	p.env.schedule(t, p, nil)
	p.yieldBlockedAndWait()
}

// Yield reschedules the process at the current virtual time, letting other
// ready processes run first.
func (p *Proc) Yield() {
	p.env.wake(p)
	p.yieldBlockedAndWait()
}

// Park blocks the process indefinitely until another party calls
// Env.Unpark on it. The caller must have registered itself somewhere a
// future Unpark will find it, otherwise the process sleeps forever (until
// Env.Close).
func (p *Proc) Park() {
	p.yieldBlockedAndWait()
}
