package sim

// EnvOption configures NewEnv. The zero configuration (no options) is the
// classic single-loop environment, bit-compatible with every prior release:
// NewEnv() with no options constructs exactly the engine the committed
// goldens were produced on.
type EnvOption func(*envConfig)

type envConfig struct {
	seed       uint64
	shards     int
	lookahead  Time
	windowHook WindowHook
}

// WindowHook observes one completed shard window: shard executed its
// events in virtual interval [start, end] and dispatched events of them.
// Hooks for different shards may run concurrently (windows execute on
// parallel OS threads), so implementations must be safe for concurrent
// use across shards — e.g. by writing to per-shard sinks.
type WindowHook func(shard int, start, end Time, events uint64)

// DefaultLookahead is the conservative window bound used when WithShards is
// given without WithLookahead. It matches the smallest cross-node delay in
// the default fabric (cluster.DefaultConfig's 5us propagation latency), so
// cluster-backed fleets can shard without extra configuration.
const DefaultLookahead = 5 * Microsecond

// WithSeed records the run's seed on the environment (Env.Seed). The engine
// itself consumes no randomness — determinism comes from the event order —
// but workloads conventionally fork their generators from this value, and
// recording it here keeps the provenance of a run inspectable.
func WithSeed(seed uint64) EnvOption {
	return func(c *envConfig) { c.seed = seed }
}

// WithShards partitions the environment into n shards that execute on
// parallel OS threads with deterministic cross-shard message merging (see
// ShardSet). n must be >= 1; WithShards(1) still builds a (degenerate)
// ShardSet so that a workload written against the sharded API behaves
// identically at every width, including 1.
func WithShards(n int) EnvOption {
	return func(c *envConfig) { c.shards = n }
}

// WithLookahead sets the conservative lookahead bound of a sharded
// environment: every cross-shard send must be delayed by at least this
// much virtual time. Larger lookahead means wider safe windows and fewer
// barriers; it must not exceed the smallest cross-shard delay the workload
// uses. Ignored without WithShards.
func WithLookahead(d Time) EnvOption {
	return func(c *envConfig) { c.lookahead = d }
}

// WithWindowHook installs a per-window observer on a sharded environment
// (the flight recorder's engine feed). Each non-empty window invokes the
// hook once per shard that dispatched events. Ignored without WithShards;
// nil disables. The hook costs one nil check per shard-window when unset.
func WithWindowHook(h WindowHook) EnvOption {
	return func(c *envConfig) { c.windowHook = h }
}

// Seed returns the seed recorded by WithSeed (0 if none was given).
func (e *Env) Seed() uint64 { return e.seed }
