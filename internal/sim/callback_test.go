package sim

import (
	"fmt"
	"testing"
)

func TestAfterFuncFires(t *testing.T) {
	e := NewEnv()
	var fired Time
	tm := e.AfterFunc(Millis(3), func() { fired = e.Now() })
	if !tm.Active() || tm.When() != Millis(3) {
		t.Fatalf("timer not pending at 3ms: active=%v when=%v", tm.Active(), tm.When())
	}
	e.Run()
	if fired != Millis(3) {
		t.Fatalf("fired at %v, want 3ms", fired)
	}
	if tm.Active() || tm.Stop() {
		t.Fatal("fired timer still active / stoppable")
	}
}

func TestAfterFuncStop(t *testing.T) {
	e := NewEnv()
	ran := false
	tm := e.AfterFunc(Millis(3), func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.After(Millis(5), func() {}) // keep the clock moving past the timer
	e.Run()
	if ran {
		t.Fatal("stopped timer fired")
	}
	if e.Now() != Millis(5) {
		t.Fatalf("Now = %v, want 5ms", e.Now())
	}
}

func TestStoppedTimerNotCounted(t *testing.T) {
	e := NewEnv()
	tm := e.AfterFunc(Millis(1), func() {})
	e.AfterFunc(Millis(2), func() {})
	tm.Stop()
	e.Run()
	if got := e.EventsProcessed(); got != 1 {
		t.Fatalf("EventsProcessed = %d, want 1 (stopped timer must not count)", got)
	}
}

func TestNegativeAfterFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	NewEnv().AfterFunc(-1, func() {})
}

func TestAcquireFuncInlineWhenFree(t *testing.T) {
	e := NewEnv()
	r := NewResource("r", 1)
	ran := false
	r.AcquireFunc(e, func() { ran = true })
	if !ran {
		t.Fatal("AcquireFunc on a free resource must run fn inline")
	}
	if r.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", r.InUse())
	}
	r.Release(e)
}

func TestAcquireFuncFIFOWithProcs(t *testing.T) {
	e := NewEnv()
	r := NewResource("r", 1)
	var order []string
	e.Spawn("p1", func(p *Proc) {
		p.Acquire(r)
		order = append(order, "p1")
		p.Wait(Millis(1))
		r.Release(p.Env())
	})
	e.Spawn("p2", func(p *Proc) {
		p.Acquire(r)
		order = append(order, "p2")
		p.Wait(Millis(1))
		r.Release(p.Env())
	})
	e.At(0, func() {
		r.AcquireFunc(e, func() {
			order = append(order, "cb")
			r.Release(e)
		})
	})
	e.Spawn("p3", func(p *Proc) {
		p.Acquire(r)
		order = append(order, "p3")
		r.Release(p.Env())
	})
	e.Run()
	want := []string{"p1", "p2", "cb", "p3"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("grant order %v, want %v (FIFO across procs and callbacks)", order, want)
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEnv()
	r := NewResource("r", 1)
	if !r.TryAcquire(e) {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire(e) {
		t.Fatal("TryAcquire on exhausted resource succeeded")
	}
	r.Release(e)
	if !r.TryAcquire(e) {
		t.Fatal("TryAcquire after release failed")
	}
	r.Release(e)
}

func TestUseFuncOccupancy(t *testing.T) {
	e := NewEnv()
	r := NewResource("r", 1)
	var starts, ends []Time
	for i := 0; i < 3; i++ {
		r.UseFunc(e, Millis(10), func(start Time) {
			starts = append(starts, start)
			ends = append(ends, e.Now())
		})
	}
	e.Run()
	wantStarts := []Time{0, Millis(10), Millis(20)}
	wantEnds := []Time{Millis(10), Millis(20), Millis(30)}
	for i := range wantStarts {
		if starts[i] != wantStarts[i] || ends[i] != wantEnds[i] {
			t.Fatalf("occupancy %d = [%v, %v], want [%v, %v]",
				i, starts[i], ends[i], wantStarts[i], wantEnds[i])
		}
	}
	if r.BusyTime(e.Now()) != Millis(30) {
		t.Fatalf("busy = %v, want 30ms", r.BusyTime(e.Now()))
	}
	if r.WaitedTime() != Millis(30) { // 10 + 20 queued
		t.Fatalf("waited = %v, want 30ms", r.WaitedTime())
	}
}

func TestOnFire(t *testing.T) {
	e := NewEnv()
	s := NewSignal()
	var order []string
	s.OnFire(e, func() { order = append(order, "cb1") })
	e.Spawn("w", func(p *Proc) {
		p.WaitSignal(s)
		order = append(order, "proc")
	})
	e.At(Millis(1), func() {
		s.OnFire(e, func() { order = append(order, "cb2") })
		s.Fire(e)
	})
	e.Run()
	want := []string{"cb1", "proc", "cb2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("wake order %v, want %v (registration order)", order, want)
	}
	// Already fired: runs inline.
	ran := false
	s.OnFire(e, func() { ran = true })
	if !ran {
		t.Fatal("OnFire on fired signal must run inline")
	}
}

func TestRecvFuncInlineAndBlocked(t *testing.T) {
	e := NewEnv()
	m := NewMailbox("m")
	m.Send(e, 1)
	var got []int
	m.RecvFunc(e, func(v interface{}) { got = append(got, v.(int)) })
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("inline RecvFunc got %v", got)
	}
	m.RecvFunc(e, func(v interface{}) { got = append(got, v.(int)) })
	e.At(Millis(2), func() { m.Send(e, 2) })
	e.Run()
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("blocked RecvFunc got %v", got)
	}
}

func TestRecvFuncFIFOWithProcs(t *testing.T) {
	e := NewEnv()
	m := NewMailbox("m")
	var got []string
	e.Spawn("r1", func(p *Proc) {
		got = append(got, fmt.Sprintf("r1=%v", p.Recv(m)))
	})
	e.At(0, func() {
		m.RecvFunc(e, func(v interface{}) { got = append(got, fmt.Sprintf("cb=%v", v)) })
	})
	e.Spawn("r2", func(p *Proc) {
		got = append(got, fmt.Sprintf("r2=%v", p.Recv(m)))
	})
	e.At(Millis(1), func() {
		m.Send(e, 1)
		m.Send(e, 2)
		m.Send(e, 3)
	})
	e.Run()
	want := []string{"r1=1", "cb=2", "r2=3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("delivery %v, want %v (FIFO across procs and callbacks)", got, want)
	}
}

func TestRecvFuncRequeuesWhenSnatched(t *testing.T) {
	e := NewEnv()
	m := NewMailbox("m")
	var got []int
	m.RecvFunc(e, func(v interface{}) { got = append(got, v.(int)) })
	e.At(Millis(1), func() {
		m.Send(e, 1)
		// Snatch the message before the woken callback's delivery event
		// dispatches (the TryRecv race).
		m.q = m.q[1:]
	})
	e.At(Millis(2), func() { m.Send(e, 2) })
	e.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v, want [2] (callback must re-queue after snatch)", got)
	}
}

// TestCallbackProcEquivalence runs the same contended workload twice — once
// with blocking processes, once as callback chains — and checks that both
// observe identical grant times, occupancy, and completion order. This is
// the engine's core guarantee: the two waiting styles are interchangeable
// without perturbing the simulation.
func TestCallbackProcEquivalence(t *testing.T) {
	run := func(callbacks bool) []string {
		e := NewEnv()
		var log []string
		r := NewResource("r", 2)
		s := NewSignal()
		for i := 0; i < 6; i++ {
			i := i
			dur := Time(1+i%3) * Millisecond
			record := func(start Time) {
				log = append(log, fmt.Sprintf("%d:[%v,%v]", i, start, e.Now()))
				if len(log) == 6 {
					s.Fire(e)
				}
			}
			if callbacks {
				r.UseFunc(e, dur, record)
			} else {
				e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
					p.Acquire(r)
					start := p.Now()
					p.Wait(dur)
					r.Release(p.Env())
					record(start)
				})
			}
		}
		done := func() { log = append(log, fmt.Sprintf("done@%v", e.Now())) }
		if callbacks {
			s.OnFire(e, done)
		} else {
			e.Spawn("waiter", func(p *Proc) {
				p.WaitSignal(s)
				done()
			})
		}
		e.Run()
		e.Close()
		return log
	}
	procs, cbs := run(false), run(true)
	if fmt.Sprint(procs) != fmt.Sprint(cbs) {
		t.Fatalf("proc and callback traces diverge:\nprocs: %v\ncbs:   %v", procs, cbs)
	}
}

func TestStaleWakeupSkippedUncounted(t *testing.T) {
	e := NewEnv()
	p := e.Spawn("p", func(p *Proc) {})
	e.Run()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d", e.LiveProcs())
	}
	// White-box: enqueue a wake-up for the finished process, plus a real
	// callback behind it.
	e.schedule(e.now, p, nil)
	ran := false
	e.Defer(func() { ran = true })
	before := e.EventsProcessed()
	if !e.Step() {
		t.Fatal("Step with a stale event returned false")
	}
	if e.EventsProcessed() != before {
		t.Fatal("stale wake-up inflated EventsProcessed")
	}
	if !e.Step() || !ran {
		t.Fatal("callback after stale event did not run")
	}
	if e.EventsProcessed() != before+1 {
		t.Fatalf("EventsProcessed = %d, want %d", e.EventsProcessed(), before+1)
	}
}

func TestCloseDropsPendingCallbacksAndTimers(t *testing.T) {
	e := NewEnv()
	e.Spawn("p", func(p *Proc) { p.Wait(Millis(1)) })
	e.RunUntil(Millis(1))
	ran := false
	e.After(Millis(5), func() { ran = true })
	e.AfterFunc(Millis(5), func() { ran = true })
	e.Defer(func() { ran = true })
	if e.PendingEvents() != 3 {
		t.Fatalf("PendingEvents = %d, want 3", e.PendingEvents())
	}
	e.Close()
	if ran {
		t.Fatal("Close ran a pending callback")
	}
	if e.PendingEvents() != 0 {
		t.Fatalf("PendingEvents after Close = %d", e.PendingEvents())
	}
}

func TestRunUntilExactBoundary(t *testing.T) {
	e := NewEnv()
	var fired []Time
	for _, at := range []Time{Millis(1), Millis(2), Millis(2), Millis(3)} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	n := e.RunUntil(Millis(2))
	if n != 3 {
		t.Fatalf("RunUntil dispatched %d events, want 3 (events exactly at t run)", n)
	}
	if len(fired) != 3 || fired[2] != Millis(2) {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != Millis(2) {
		t.Fatalf("Now = %v, want 2ms", e.Now())
	}
	if rest := e.RunUntil(Millis(10)); rest != 1 {
		t.Fatalf("second RunUntil dispatched %d, want 1", rest)
	}
	if e.Now() != Millis(10) {
		t.Fatalf("Now = %v, want 10ms (clock advances past last event)", e.Now())
	}
}

func TestRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	e := NewEnv()
	if n := e.RunUntil(Millis(7)); n != 0 {
		t.Fatalf("dispatched %d events on empty queue", n)
	}
	if e.Now() != Millis(7) {
		t.Fatalf("Now = %v, want 7ms", e.Now())
	}
}

func TestReentrancyPanics(t *testing.T) {
	// Reentrant calls panic inside the process; the scheduler forwards the
	// panic to the goroutine driving Run, where we catch it.
	check := func(name string, inner func(e *Env)) {
		e := NewEnv()
		var got interface{}
		e.Spawn("p", func(p *Proc) { inner(e) })
		func() {
			defer func() { got = recover() }()
			e.Run()
		}()
		if got == nil {
			t.Errorf("%s from inside a running simulation did not panic", name)
		}
	}
	check("Run", func(e *Env) { e.Run() })
	check("RunUntil", func(e *Env) { e.RunUntil(Millis(1)) })
	check("Close", func(e *Env) { e.Close() })
}
