package sim

import "testing"

// The engine's performance contract, enforced here and measured by the
// benchmarks below:
//
//   - dispatching a plain callback event costs zero heap allocations once
//     the queue has grown to its steady-state capacity;
//   - process resume/yield costs two channel handoffs but no allocations;
//   - the callback-completion primitives allocate only their continuation
//     closures, never per-event queue boxes.

func TestZeroAllocEventDispatch(t *testing.T) {
	e := NewEnv()
	fn := func() {}
	// Warm the queue so the backing array is at capacity.
	for i := 0; i < 1024; i++ {
		e.After(Time(i), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(1, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("event schedule+dispatch allocates %.1f objects/event, want 0", allocs)
	}
}

func TestZeroAllocResourceGrant(t *testing.T) {
	e := NewEnv()
	r := NewResource("r", 1)
	fn := func() { r.Release(e) }
	// Warm the waiter slice and event queue.
	for i := 0; i < 64; i++ {
		r.AcquireFunc(e, fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		r.AcquireFunc(e, fn) // grants inline, releases inline
	})
	if allocs != 0 {
		t.Fatalf("uncontended acquire/release allocates %.1f objects, want 0", allocs)
	}
}

func TestZeroAllocWaitDispatch(t *testing.T) {
	e := NewEnv()
	e.Spawn("p", func(p *Proc) {
		for {
			p.Wait(1)
		}
	})
	e.Step() // start the process; it parks in Wait
	allocs := testing.AllocsPerRun(1000, func() {
		e.Step() // resume, re-Wait, yield
	})
	if allocs != 0 {
		t.Fatalf("process Wait dispatch allocates %.1f objects/event, want 0", allocs)
	}
	e.Close()
}

// BenchmarkEventDispatch measures the raw queue push+pop+call cycle.
func BenchmarkEventDispatch(b *testing.B) {
	e := NewEnv()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		e.Step()
	}
}

// BenchmarkEventQueueChurn measures push/pop with a deep queue (realistic
// steady state: thousands of in-flight events).
func BenchmarkEventQueueChurn(b *testing.B) {
	e := NewEnv()
	fn := func() {}
	for i := 0; i < 4096; i++ {
		e.After(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(4096, fn)
		e.Step()
	}
}

// BenchmarkWaitPingPong measures the goroutine process path: one resume +
// one yield (two channel handoffs) per simulated Wait.
func BenchmarkWaitPingPong(b *testing.B) {
	e := NewEnv()
	e.Spawn("p", func(p *Proc) {
		for {
			p.Wait(1)
		}
	})
	e.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.StopTimer()
	e.Close()
}

// BenchmarkTimerChain measures AfterFunc self-rescheduling, the pattern
// callback state machines reduce to.
func BenchmarkTimerChain(b *testing.B) {
	e := NewEnv()
	n := 0
	var tick func()
	tick = func() {
		n++
		e.AfterFunc(1, tick)
	}
	e.AfterFunc(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkResourceContentionCallback measures a capacity-1 resource with
// a deep callback wait queue: one grant hand-off per Step pair.
func BenchmarkResourceContentionCallback(b *testing.B) {
	e := NewEnv()
	r := NewResource("r", 1)
	var use func(start Time)
	use = func(start Time) {
		r.UseFunc(e, 1, use)
	}
	for i := 0; i < 64; i++ {
		r.UseFunc(e, 1, use)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkResourceContentionProcs is the process-based counterpart of
// BenchmarkResourceContentionCallback: the same contended semaphore, paid
// for with goroutine handoffs.
func BenchmarkResourceContentionProcs(b *testing.B) {
	e := NewEnv()
	r := NewResource("r", 1)
	for i := 0; i < 64; i++ {
		e.Spawn("u", func(p *Proc) {
			for {
				p.Use(r, 1)
			}
		})
	}
	for i := 0; i < 64; i++ {
		e.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.StopTimer()
	e.Close()
}

// BenchmarkMailboxThroughput measures send → callback-deliver cycles.
func BenchmarkMailboxThroughput(b *testing.B) {
	e := NewEnv()
	m := NewMailbox("m")
	var recv func(v interface{})
	recv = func(v interface{}) {
		m.RecvFunc(e, recv)
	}
	m.RecvFunc(e, recv)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(e, i)
		e.Step()
	}
}
