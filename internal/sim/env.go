package sim

import (
	"fmt"
	"sync/atomic"
)

// Env is a discrete-event simulation environment. All processes, resources,
// and mailboxes belong to exactly one Env, and an Env must only be driven
// from a single OS goroutine (the one that calls Run or Step).
type Env struct {
	now     Time
	events  eventQueue
	seq     uint64
	live    map[*Proc]struct{}
	yield   chan yieldKind
	running bool
	closed  bool
	// A non-killed panic inside a process is captured here and re-raised on
	// the goroutine driving the scheduler, so user panics surface normally.
	panicked bool
	panicVal interface{}
	// eventsProcessed counts scheduler dispatches: process resumes, timer
	// firings, and inline callbacks. Stale wake-ups for finished processes
	// and stopped timers are skipped without being counted, so the metric
	// reflects useful dispatch work only.
	eventsProcessed uint64
	// flushed tracks how much of eventsProcessed has been added to the
	// process-wide counter (see GlobalEvents).
	flushed uint64
	// seed is the value recorded by WithSeed (see Seed).
	seed uint64
	// shard is non-nil when this Env is a member of a ShardSet; the root
	// Env (shard 0) additionally carries the set and forwards Run, RunUntil
	// and Close to it.
	shard *Shard
}

// globalEvents accumulates dispatches over all Envs in the process,
// including the per-job inner simulations the scheduler runs on separate
// goroutines. Envs add their counts in bulk when Run/RunUntil/Close
// return, so the hot dispatch loop never touches the atomic.
var globalEvents atomic.Uint64

// GlobalEvents returns the total number of events dispatched by all
// environments in this process so far. Benchmark harnesses read it before
// and after a run to derive an events/second rate.
func GlobalEvents() uint64 { return globalEvents.Load() }

type yieldKind int

const (
	yieldBlocked yieldKind = iota // process blocked; wake-up already arranged
	yieldDone                     // process function returned
)

// eventKind discriminates the queue entry variants.
type eventKind uint8

const (
	evFn       eventKind = iota // run fn inline in scheduler context
	evProc                      // resume proc (skip if finished)
	evTimer                     // fire timer (skip if stopped)
	evUseGrant                  // unit of res granted: begin the timed hold
	evUseEnd                    // timed hold over: release res, call useFn(useStart)
)

// event is one entry of the queue. The use variants exist so the hot
// "occupy a resource for d, then continue" pattern costs zero closure
// allocations: the resource, continuation, and grant time ride inline in
// the event (see Resource.UseFunc).
type event struct {
	at    Time
	seq   uint64
	kind  eventKind
	proc  *Proc
	fn    func()
	timer *Timer
	res   *Resource
	useFn func(start Time)
	// useStart is the grant time for evUseEnd; useDur the hold duration
	// for evUseGrant.
	useStart Time
	useDur   Time
}

// NewEnv returns an empty environment at virtual time zero. Without
// options it is the classic single-loop engine; with WithShards(n) the
// returned Env is the root of an n-way ShardSet (see Sharded) whose Run,
// RunUntil, and Close drive all shards with deterministic cross-shard
// message merging.
func NewEnv(opts ...EnvOption) *Env {
	var cfg envConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards < 0 {
		panic(fmt.Sprintf("sim: WithShards(%d): shard count must be >= 1", cfg.shards))
	}
	if cfg.shards >= 1 {
		// WithShards(1) deliberately still builds a (degenerate) set: a
		// workload written against the sharded API then takes the exact
		// same merge-discipline code path at every width, which is what
		// makes width-1 runs the determinism baseline for width-N.
		return newShardSet(cfg).root
	}
	return &Env{
		live:  make(map[*Proc]struct{}),
		yield: make(chan yieldKind),
		seed:  cfg.seed,
	}
}

// newMemberEnv returns a bare environment for one shard of a set.
func newMemberEnv(seed uint64) *Env {
	return &Env{
		live:  make(map[*Proc]struct{}),
		yield: make(chan yieldKind),
		seed:  seed,
	}
}

// Sharded returns the ShardSet this Env belongs to, or nil for a classic
// single-loop environment.
func (e *Env) Sharded() *ShardSet {
	if e.shard == nil {
		return nil
	}
	return e.shard.set
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// EventsProcessed returns the number of scheduler dispatches so far. Stale
// wake-ups (events for processes that already finished) and stopped timers
// are not counted.
func (e *Env) EventsProcessed() uint64 { return e.eventsProcessed }

// PendingEvents returns the number of queued events, including not yet
// skipped stale wake-ups and stopped timers.
func (e *Env) PendingEvents() int { return e.events.Len() }

// LiveProcs returns the number of processes that have been spawned and have
// not yet finished.
func (e *Env) LiveProcs() int { return len(e.live) }

func (e *Env) schedule(at Time, p *Proc, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %v < %v", at, e.now))
	}
	kind := evFn
	if p != nil {
		kind = evProc
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, kind: kind, proc: p, fn: fn})
}

// scheduleUseGrant enqueues the hand-off of a resource unit to a queued
// UseFunc continuation, at the slot where a process wake-up would go.
func (e *Env) scheduleUseGrant(r *Resource, d Time, fn func(start Time)) {
	e.seq++
	e.events.push(event{at: e.now, seq: e.seq, kind: evUseGrant, res: r, useFn: fn, useDur: d})
}

// scheduleUseEnd enqueues the completion of a timed resource hold that
// was granted at start.
func (e *Env) scheduleUseEnd(r *Resource, d Time, fn func(start Time), start Time) {
	e.seq++
	e.events.push(event{at: e.now + d, seq: e.seq, kind: evUseEnd, res: r, useFn: fn, useStart: start})
}

// At schedules fn to run in scheduler context at virtual time t (>= now).
// fn must not block; it may wake processes, fire signals, send to
// mailboxes, and schedule further callbacks.
func (e *Env) At(t Time, fn func()) {
	e.schedule(t, nil, fn)
}

// After schedules fn to run d from now. See At.
func (e *Env) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Defer schedules fn at the current virtual time, after the events already
// queued at this instant. It is the callback analogue of waking a process
// "now": completion callbacks granted by resources, signals, and mailboxes
// run through Defer-like events so that callback and process waiters
// interleave in the same FIFO order.
func (e *Env) Defer(fn func()) { e.schedule(e.now, nil, fn) }

// wake arranges for p to resume at the current virtual time. It must be
// called at most once per blocked period of p; Signal, Resource, and
// Mailbox enforce this by removing waiters from their lists when waking.
func (e *Env) wake(p *Proc) {
	e.schedule(e.now, p, nil)
}

// Unpark wakes a process blocked in Park at the current virtual time. It
// must be called exactly once per Park, by the party that holds the parked
// process (e.g. a wait list).
func (e *Env) Unpark(p *Proc) {
	e.wake(p)
}

// Spawn creates a new process executing fn and schedules it to start at the
// current virtual time. It may be called before Run or from inside a running
// process.
//
// A process costs a goroutine plus two channel handoffs per resume. Work
// that only sleeps and continues — a transfer, a cache fill, a timer chain
// — is much cheaper as a callback chain via AfterFunc, Resource.UseFunc,
// Signal.OnFire, and Mailbox.RecvFunc; reserve Spawn for control loops
// that genuinely block mid-stack.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Spawn on closed Env")
	}
	p := &Proc{name: name, env: e, resume: make(chan resumeMsg)}
	e.live[p] = struct{}{}
	go p.run(fn)
	e.schedule(e.now, p, nil)
	return p
}

// resumeProc hands control to p and waits for it to block or finish.
func (e *Env) resumeProc(p *Proc, kill bool) {
	p.resume <- resumeMsg{kill: kill}
	kind := <-e.yield
	if kind == yieldDone {
		p.done = true
		delete(e.live, p)
	}
	if e.panicked {
		e.panicked = false
		panic(e.panicVal)
	}
}

// Step executes the next pending event, advancing virtual time. It returns
// false if the event queue is empty. A stale wake-up (the process already
// finished) or a stopped timer consumes the queue entry and advances the
// clock to its timestamp, but does not count as a dispatch.
func (e *Env) Step() bool {
	if e.closed {
		return false
	}
	if e.events.Len() == 0 {
		return false
	}
	ev := e.events.pop()
	e.now = ev.at
	switch ev.kind {
	case evProc:
		if ev.proc.done {
			return true // stale wake-up for a finished process: skip, uncounted
		}
		e.eventsProcessed++
		e.resumeProc(ev.proc, false)
	case evTimer:
		if ev.timer.state != timerPending {
			return true // stopped timer: skip, uncounted
		}
		ev.timer.state = timerFired
		e.eventsProcessed++
		ev.timer.fn()
	case evUseGrant:
		e.eventsProcessed++
		e.scheduleUseEnd(ev.res, ev.useDur, ev.useFn, e.now)
	case evUseEnd:
		e.eventsProcessed++
		ev.res.Release(e)
		ev.useFn(ev.useStart)
	default:
		e.eventsProcessed++
		ev.fn()
	}
	return true
}

// Run executes events until the queue is empty. Processes still blocked on
// conditions (for example server loops waiting on a Mailbox) remain alive;
// call Close to terminate them. On the root Env of a ShardSet, Run drives
// all shards in parallel conservative windows until every shard is idle.
func (e *Env) Run() {
	if e.shard != nil {
		e.shard.set.runRoot(e, 0, false)
		return
	}
	if e.running {
		panic("sim: Run is not reentrant")
	}
	e.running = true
	defer func() {
		e.running = false
		e.flushGlobalEvents()
	}()
	for e.Step() {
	}
}

// nextTime returns the timestamp of the earliest pending event, or ok ==
// false when the queue is empty.
func (e *Env) nextTime() (Time, bool) {
	if e.events.Len() == 0 {
		return 0, false
	}
	return e.events.minTime(), true
}

// RunUntil executes events with timestamps <= t and then sets the clock to
// t. It returns the number of events dispatched (stale wake-ups and
// stopped timers excluded). Events scheduled exactly at t are executed. On
// the root Env of a ShardSet, every shard advances to t and the returned
// count sums all shards' dispatches.
func (e *Env) RunUntil(t Time) uint64 {
	if e.shard != nil {
		return e.shard.set.runRoot(e, t, true)
	}
	if e.running {
		panic("sim: RunUntil is not reentrant")
	}
	e.running = true
	start := e.eventsProcessed
	defer func() {
		e.running = false
		e.flushGlobalEvents()
	}()
	for e.events.Len() > 0 && e.events.minTime() <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
	return e.eventsProcessed - start
}

// Close terminates all still-live processes by unwinding them with a
// sentinel panic at their next blocking point, then marks the Env unusable.
// All pending events are dropped: callbacks scheduled with At/After/Defer
// and timers armed with AfterFunc never run. It is safe to call Close
// multiple times. Close must not be called from inside a process or while
// Run or RunUntil is executing.
//
// On the root Env of a ShardSet, Close first drains the couplers — every
// cross-shard batch still in flight is merged into its destination shard's
// queue — and then drops all pending work on every shard, local events and
// undelivered cross-shard messages alike, before unwinding processes. The
// drain step means drop semantics are well-defined: a message either ran
// before Close or is accounted as dropped on its destination shard
// (ShardSet.DroppedDeliveries); it is never lost in an intermediate buffer.
func (e *Env) Close() {
	if e.shard != nil {
		e.shard.set.closeRoot(e)
		return
	}
	e.closeLocal()
}

// closeLocal is Close without shard delegation; the ShardSet teardown
// calls it on each member env after draining the couplers.
func (e *Env) closeLocal() {
	if e.running {
		panic("sim: Close is not reentrant with Run or RunUntil")
	}
	if e.closed {
		return
	}
	// Drop pending wake-ups, callbacks, and timers so no process is resumed
	// twice and no fn runs after shutdown.
	e.events = eventQueue{}
	for p := range e.live {
		e.resumeProc(p, true)
	}
	if len(e.live) != 0 {
		panic(fmt.Sprintf("sim: %d processes survived Close", len(e.live)))
	}
	e.closed = true
	e.flushGlobalEvents()
}

// flushGlobalEvents publishes this Env's dispatch count increments to the
// process-wide counter.
func (e *Env) flushGlobalEvents() {
	if d := e.eventsProcessed - e.flushed; d > 0 {
		globalEvents.Add(d)
		e.flushed = e.eventsProcessed
	}
}
