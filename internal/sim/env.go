package sim

import (
	"container/heap"
	"fmt"
)

// Env is a discrete-event simulation environment. All processes, resources,
// and mailboxes belong to exactly one Env, and an Env must only be driven
// from a single OS goroutine (the one that calls Run or Step).
type Env struct {
	now     Time
	events  eventHeap
	seq     uint64
	live    map[*Proc]struct{}
	yield   chan yieldKind
	running bool
	closed  bool
	// A non-killed panic inside a process is captured here and re-raised on
	// the goroutine driving the scheduler, so user panics surface normally.
	panicked bool
	panicVal interface{}
	// eventsProcessed counts scheduler dispatches; useful for perf metrics
	// and for loop-bound assertions in tests.
	eventsProcessed uint64
}

type yieldKind int

const (
	yieldBlocked yieldKind = iota // process blocked; wake-up already arranged
	yieldDone                     // process function returned
)

type event struct {
	at   Time
	seq  uint64
	proc *Proc  // non-nil: resume this process
	fn   func() // non-nil: run inline in scheduler context (must not block)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewEnv returns an empty environment at virtual time zero.
func NewEnv() *Env {
	return &Env{
		live:  make(map[*Proc]struct{}),
		yield: make(chan yieldKind),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// EventsProcessed returns the number of scheduler dispatches so far.
func (e *Env) EventsProcessed() uint64 { return e.eventsProcessed }

// LiveProcs returns the number of processes that have been spawned and have
// not yet finished.
func (e *Env) LiveProcs() int { return len(e.live) }

func (e *Env) schedule(at Time, p *Proc, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %v < %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, proc: p, fn: fn})
}

// At schedules fn to run in scheduler context at virtual time t (>= now).
// fn must not block; it may wake processes, fire signals, and send to
// mailboxes.
func (e *Env) At(t Time, fn func()) {
	e.schedule(t, nil, fn)
}

// After schedules fn to run d from now. See At.
func (e *Env) After(d Time, fn func()) { e.At(e.now+d, fn) }

// wake arranges for p to resume at the current virtual time. It must be
// called at most once per blocked period of p; Signal, Resource, and
// Mailbox enforce this by removing waiters from their lists when waking.
func (e *Env) wake(p *Proc) {
	e.schedule(e.now, p, nil)
}

// Unpark wakes a process blocked in Park at the current virtual time. It
// must be called exactly once per Park, by the party that holds the parked
// process (e.g. a wait list).
func (e *Env) Unpark(p *Proc) {
	e.wake(p)
}

// Spawn creates a new process executing fn and schedules it to start at the
// current virtual time. It may be called before Run or from inside a running
// process.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Spawn on closed Env")
	}
	p := &Proc{name: name, env: e, resume: make(chan resumeMsg)}
	e.live[p] = struct{}{}
	go p.run(fn)
	e.schedule(e.now, p, nil)
	return p
}

// resumeProc hands control to p and waits for it to block or finish.
func (e *Env) resumeProc(p *Proc, kill bool) {
	p.resume <- resumeMsg{kill: kill}
	kind := <-e.yield
	if kind == yieldDone {
		delete(e.live, p)
	}
	if e.panicked {
		e.panicked = false
		panic(e.panicVal)
	}
}

// Step executes the next pending event, advancing virtual time. It returns
// false if the event queue is empty.
func (e *Env) Step() bool {
	if e.closed {
		return false
	}
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.eventsProcessed++
	if ev.proc != nil {
		if _, ok := e.live[ev.proc]; !ok {
			return true // stale wake-up for a finished process
		}
		e.resumeProc(ev.proc, false)
	} else if ev.fn != nil {
		ev.fn()
	}
	return true
}

// Run executes events until the queue is empty. Processes still blocked on
// conditions (for example server loops waiting on a Mailbox) remain alive;
// call Close to terminate them.
func (e *Env) Run() {
	if e.running {
		panic("sim: Run is not reentrant")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then sets the clock to
// t. It returns the number of events processed.
func (e *Env) RunUntil(t Time) uint64 {
	if e.running {
		panic("sim: RunUntil is not reentrant")
	}
	e.running = true
	defer func() { e.running = false }()
	var n uint64
	for e.events.Len() > 0 && e.events[0].at <= t {
		e.Step()
		n++
	}
	if e.now < t {
		e.now = t
	}
	return n
}

// Close terminates all still-live processes by unwinding them with a
// sentinel panic at their next blocking point, then marks the Env unusable.
// It is safe to call Close multiple times. Close must not be called from
// inside a process.
func (e *Env) Close() {
	if e.closed {
		return
	}
	// Drain pending wake-ups first so no process is resumed twice.
	e.events = nil
	for p := range e.live {
		e.resumeProc(p, true)
	}
	if len(e.live) != 0 {
		panic(fmt.Sprintf("sim: %d processes survived Close", len(e.live)))
	}
	e.closed = true
}
