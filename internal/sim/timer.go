package sim

import "fmt"

// Timer is a cancellable one-shot callback armed with Env.AfterFunc. It is
// the cheap primitive for "charge d of virtual time, then continue": no
// goroutine, no channel handoff, one queue entry.
type Timer struct {
	env   *Env
	when  Time
	state uint8
	fn    func()
}

const (
	timerPending uint8 = iota
	timerFired
	timerStopped
)

// AfterFunc schedules fn to run in scheduler context d from now and
// returns a Timer that can cancel it. fn must not block; it may wake
// processes, fire signals, send to mailboxes, and arm further timers.
func (e *Env) AfterFunc(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative AfterFunc delay %v", d))
	}
	if e.closed {
		panic("sim: AfterFunc on closed Env")
	}
	t := &Timer{env: e, when: e.now + d, fn: fn}
	e.seq++
	e.events.push(event{at: t.when, seq: e.seq, kind: evTimer, timer: t})
	return t
}

// Stop cancels the timer. It reports true when the call prevented the
// callback from running, and false when the timer had already fired or was
// already stopped. Stopping leaves the queue entry in place; the scheduler
// skips it (uncounted) when its timestamp comes up.
func (t *Timer) Stop() bool {
	if t.state != timerPending {
		return false
	}
	t.state = timerStopped
	return true
}

// Active reports whether the timer is still pending (not fired, not
// stopped).
func (t *Timer) Active() bool { return t.state == timerPending }

// When returns the virtual time the timer fires (or would have fired).
func (t *Timer) When() Time { return t.when }
