package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardSet is the sharded form of the discrete-event engine: K shards,
// each owning a private Env, executing on parallel OS threads under a
// conservative (lookahead-based) synchronization protocol with
// deterministic cross-shard message merging.
//
// # Execution model
//
// Simulation state is partitioned: every entity (node, device, queue)
// lives on exactly one shard and is only ever touched by code running on
// that shard's Env. Shards interact exclusively through Sender.Send, which
// delays each message by at least the set's lookahead L.
//
// Execution proceeds in windows. Let N_j be shard j's earliest pending
// event (local or inbound). Any message a shard emits this window is sent
// from an event at time >= N_j and arrives at >= N_j + L, so every shard
// may safely process all events strictly before
//
//	B = min_j(N_j) + L
//
// without ever receiving a message "from the past". Shards run their
// windows concurrently, then meet at a barrier where couplers flush each
// shard's outgoing batch into the destination shards' merge queues, a new
// bound is computed, and the next window begins. The simulation is done
// when every shard is idle and no batch is in flight.
//
// # Determinism
//
// Two rules make the result independent of shard count and thread
// scheduling:
//
//  1. Canonical merge order. Inbound messages are ordered by
//     (time, sender, sender-sequence) — a key derived only from the
//     sending entity's behavior — so the order two messages are applied
//     in never depends on which shards their senders lived on or on when
//     batches happened to cross a barrier.
//  2. Deliveries before local events. At equal timestamps, a shard applies
//     all inbound messages before any locally scheduled event. Without
//     this rule the interleaving would depend on whether a local event was
//     scheduled before or after a barrier, which varies with the window
//     layout and therefore with the shard count.
//
// Under these rules each shard's execution is a pure function of the
// initial state and the canonical message streams, so by induction over
// windows a workload produces bit-identical results at every width —
// including width 1, which is why WithShards(1) still routes messages
// through the same merge discipline.
type ShardSet struct {
	shards    []*Shard
	lookahead Time
	root      *Env
	running   bool
	closed    bool
	// dropped counts deliveries discarded by Close (after the coupler
	// drain), summed over all shards.
	dropped uint64
	// windows counts completed synchronization windows (barrier rounds).
	windows uint64
	// windowHook, when non-nil, observes each shard's non-empty windows
	// (WithWindowHook).
	windowHook WindowHook
}

// Shard is one partition of a ShardSet: a private Env plus the inbound
// merge queue and the outbound couplers. All simulation code of a shard
// runs on its Env; cross-shard effects go through Sender.Send only.
type Shard struct {
	set *ShardSet
	id  int
	env *Env
	// merge holds inbound deliveries not yet applied.
	merge mergeQueue
	// out[k] is the coupler to shard k, accumulating this window's
	// outgoing deliveries; flushed into shard k's merge queue at the
	// barrier.
	out []Coupler
	// dispatched counts applied deliveries (they also count as env
	// dispatches; see applyDelivery).
	delivered uint64
}

// Coupler is a directed cross-shard channel: it batches the deliveries one
// shard emits toward another during a window. Couplers are flushed —
// merged into the destination's queue in canonical order — only at
// barriers, so a shard's merge queue is never written while its window
// executes.
type Coupler struct {
	batch []delivery
}

// newShardSet builds the set plus member envs; cfg.shards >= 1.
func newShardSet(cfg envConfig) *ShardSet {
	la := cfg.lookahead
	if la <= 0 {
		la = DefaultLookahead
	}
	ss := &ShardSet{lookahead: la, windowHook: cfg.windowHook}
	ss.shards = make([]*Shard, cfg.shards)
	for i := range ss.shards {
		sh := &Shard{set: ss, id: i, env: newMemberEnv(cfg.seed)}
		sh.env.shard = sh
		sh.out = make([]Coupler, cfg.shards)
		ss.shards[i] = sh
	}
	ss.root = ss.shards[0].env
	return ss
}

// NumShards returns the width of the set.
func (ss *ShardSet) NumShards() int { return len(ss.shards) }

// Lookahead returns the conservative bound every cross-shard send must
// respect.
func (ss *ShardSet) Lookahead() Time { return ss.lookahead }

// Shard returns shard i.
func (ss *ShardSet) Shard(i int) *Shard { return ss.shards[i] }

// Root returns the root Env (shard 0's), whose Run/RunUntil/Close drive
// the whole set.
func (ss *ShardSet) Root() *Env { return ss.root }

// Windows returns the number of completed synchronization windows, an
// indicator of how well the workload's event density amortizes barriers.
func (ss *ShardSet) Windows() uint64 { return ss.windows }

// DroppedDeliveries returns the number of cross-shard messages dropped by
// Close after the coupler drain.
func (ss *ShardSet) DroppedDeliveries() uint64 { return ss.dropped }

// ID returns the shard's index in the set.
func (sh *Shard) ID() int { return sh.id }

// Env returns the shard's private environment. Schedule local work on it
// freely; its Run, RunUntil, and Close must not be called directly on
// non-root members (drive the set through the root Env instead).
func (sh *Shard) Env() *Env { return sh.env }

// Set returns the owning ShardSet.
func (sh *Shard) Set() *ShardSet { return sh.set }

// Delivered returns the number of cross-shard messages applied on this
// shard so far.
func (sh *Shard) Delivered() uint64 { return sh.delivered }

// Sender stamps cross-shard messages with a stable identity and a running
// sequence number — the canonical merge key. Create one Sender per sending
// entity (e.g. per simulated node) with an id that does not depend on the
// shard layout; the invariance argument leans on the key being a pure
// function of the entity, not of its placement.
type Sender struct {
	shard *Shard
	id    uint32
	seq   uint64
}

// NewSender returns a sender handle owned by this shard. id must be unique
// across the whole set and stable across shard widths (a node ID is the
// canonical choice).
func (sh *Shard) NewSender(id uint32) *Sender {
	return &Sender{shard: sh, id: id}
}

// Send schedules fn to run on shard dst's Env at now + delay. delay must
// be >= the set's lookahead — that is the conservative contract that lets
// shards run ahead of each other safely. fn must touch only dst-shard
// state and must not block. Messages from one Sender preserve their send
// order; messages from different senders arriving at the same instant
// apply in sender-ID order.
//
// Send may target the sender's own shard: same-shard messages take the
// identical merge-queue path (never the local event queue), which is what
// keeps a workload's behavior invariant when a peer that used to be remote
// becomes co-resident at a smaller width.
func (snd *Sender) Send(dst int, delay Time, fn func(*Env)) {
	sh := snd.shard
	if delay < sh.set.lookahead {
		panic(fmt.Sprintf("sim: cross-shard send delay %v below lookahead %v", delay, sh.set.lookahead))
	}
	if sh.set.closed {
		panic("sim: Send on closed ShardSet")
	}
	snd.seq++
	c := &sh.out[dst]
	c.batch = append(c.batch, delivery{
		at:  sh.env.now + delay,
		src: snd.id,
		seq: snd.seq,
		fn:  fn,
	})
}

// PendingDeliveries returns the number of inbound messages queued but not
// yet applied on this shard.
func (sh *Shard) PendingDeliveries() int { return sh.merge.Len() }

// nextTime returns the shard's earliest pending work item — local event or
// inbound delivery — or ok == false when idle.
func (sh *Shard) nextTime() (Time, bool) {
	lt, lok := sh.env.nextTime()
	mt, mok := sh.merge.peek()
	switch {
	case lok && mok:
		if mt < lt {
			return mt, true
		}
		return lt, true
	case lok:
		return lt, true
	case mok:
		return mt, true
	}
	return 0, false
}

// runWindow executes one window, reporting it to the set's window hook
// when one is installed and the window dispatched any events. The hook
// runs on the shard's executing goroutine, so a window's observation cost
// is one nil check when tracing is off.
func (sh *Shard) runWindow(bound Time) {
	hook := sh.set.windowHook
	if hook == nil {
		sh.runWindowEvents(bound)
		return
	}
	start := sh.env.now
	before := sh.env.eventsProcessed
	sh.runWindowEvents(bound)
	if ev := sh.env.eventsProcessed - before; ev > 0 {
		hook(sh.id, start, sh.env.now, ev)
	}
}

// runWindowEvents executes the shard's events strictly before bound,
// interleaving local events and inbound deliveries; at equal timestamps
// deliveries apply first (rule 2 of the determinism argument).
func (sh *Shard) runWindowEvents(bound Time) {
	e := sh.env
	for {
		mt, mok := sh.merge.peek()
		for mok && mt < bound {
			lt, lok := e.nextTime()
			if lok && lt < mt {
				break
			}
			sh.applyDelivery()
			mt, mok = sh.merge.peek()
		}
		lt, lok := e.nextTime()
		if !lok || lt >= bound {
			if !mok || mt >= bound {
				return
			}
			continue
		}
		if mok && mt <= lt {
			continue
		}
		e.Step()
	}
}

// applyDelivery pops the earliest inbound message and runs it at its
// timestamp. A delivery counts as one dispatched event, exactly like the
// local callback it would have been on a single-loop engine.
func (sh *Shard) applyDelivery() {
	d := sh.merge.pop()
	e := sh.env
	e.now = d.at
	e.eventsProcessed++
	sh.delivered++
	d.fn(e)
}

// exchange is the barrier body: flush every coupler into its destination
// merge queue. Iteration order is fixed but irrelevant — the merge queue
// orders by canonical key, not insertion.
func (ss *ShardSet) exchange() (moved bool) {
	for _, src := range ss.shards {
		for dst := range src.out {
			c := &src.out[dst]
			if len(c.batch) == 0 {
				continue
			}
			moved = true
			mq := &ss.shards[dst].merge
			for _, d := range c.batch {
				mq.push(d)
			}
			c.batch = c.batch[:0]
		}
	}
	return moved
}

// runRoot drives the whole set: windows of parallel shard execution
// separated by coupler barriers. With hasUntil, events with timestamps <=
// until execute and every shard's clock then advances to until (RunUntil
// semantics); otherwise the set runs until globally idle. It returns the
// number of events dispatched across all shards.
func (ss *ShardSet) runRoot(e *Env, until Time, hasUntil bool) uint64 {
	if e != ss.root {
		panic("sim: Run/RunUntil on a member shard Env; drive the set through its root Env")
	}
	if ss.running {
		panic("sim: Run is not reentrant")
	}
	if ss.closed {
		return 0
	}
	ss.running = true
	var before uint64
	for _, sh := range ss.shards {
		before += sh.env.eventsProcessed
	}
	defer func() {
		ss.running = false
		for _, sh := range ss.shards {
			sh.env.flushGlobalEvents()
		}
	}()

	for {
		ss.exchange()
		minNext := Time(0)
		idle := true
		for _, sh := range ss.shards {
			if t, ok := sh.nextTime(); ok {
				if idle || t < minNext {
					minNext = t
				}
				idle = false
			}
		}
		if idle {
			break
		}
		if hasUntil && minNext > until {
			break
		}
		bound := minNext + ss.lookahead
		if hasUntil && bound > until+1 {
			// RunUntil is inclusive: events exactly at until execute, so
			// the window bound (exclusive) is capped at until+1ns.
			bound = until + 1
		}
		ss.runWindows(bound)
		ss.windows++
	}

	var after uint64
	for _, sh := range ss.shards {
		if hasUntil && sh.env.now < until {
			sh.env.now = until
		}
		after += sh.env.eventsProcessed
	}
	return after - before
}

// runWindows executes one window on every shard, using up to
// min(GOMAXPROCS, K) OS threads: the driving goroutine and workers claim
// shard indices from a shared counter, so stragglers don't serialize
// behind a fixed assignment. On a single-processor runtime (or a
// single-shard set) the windows run inline — parallel dispatch would be
// pure scheduling overhead there, and because shards are independent
// within a window the execution strategy cannot affect the result.
//
// Shard state is touched only by the goroutine that claimed it during the
// window; the WaitGroup provides the happens-before edges for the barrier
// that follows. A panic inside any shard (a workload bug surfacing, or a
// process panic re-raised by its env) is re-raised on the driving
// goroutine once all shards have stopped; when several shards panic in
// one window the lowest-numbered shard's panic wins, so the reported
// failure is stable across runs.
func (ss *ShardSet) runWindows(bound Time) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ss.shards) {
		workers = len(ss.shards)
	}
	if workers <= 1 {
		for _, sh := range ss.shards {
			sh.runWindow(bound)
		}
		return
	}
	var next atomic.Int32
	panics := make([]interface{}, len(ss.shards))
	claim := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(ss.shards) {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panics[i] = r
					}
				}()
				ss.shards[i].runWindow(bound)
			}()
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			claim()
		}()
	}
	claim()
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// closeRoot implements Close for sharded environments: drain the couplers
// so every in-flight batch reaches its destination queue, account and drop
// the undelivered messages, then close each member env (dropping its local
// events and unwinding its processes). Idempotent.
func (ss *ShardSet) closeRoot(e *Env) {
	if e != ss.root {
		panic("sim: Close on a member shard Env; close the set through its root Env")
	}
	if ss.running {
		panic("sim: Close is not reentrant with Run or RunUntil")
	}
	if ss.closed {
		return
	}
	// Drain couplers first: undelivered messages are dropped from their
	// destination's merge queue, not lost in a buffer, so the drop
	// accounting below is exact and per-destination.
	ss.exchange()
	for _, sh := range ss.shards {
		ss.dropped += uint64(sh.merge.Len())
		sh.merge = mergeQueue{}
		sh.env.closeLocal()
	}
	ss.closed = true
}
