package sim

// Mailbox is an unbounded FIFO message queue. Any simulation code may Send;
// processes block in Recv until a message is available. Messages are
// delivered in send order, and blocked receivers are served FIFO.
type Mailbox struct {
	name    string
	q       []interface{}
	waiters []*Proc
	sent    uint64
}

// NewMailbox returns an empty mailbox.
func NewMailbox(name string) *Mailbox { return &Mailbox{name: name} }

// Name returns the mailbox name.
func (m *Mailbox) Name() string { return m.name }

// Len returns the number of queued (undelivered) messages.
func (m *Mailbox) Len() int { return len(m.q) }

// Sent returns the total number of messages ever sent.
func (m *Mailbox) Sent() uint64 { return m.sent }

// Send enqueues v and wakes the longest-waiting receiver, if any.
func (m *Mailbox) Send(e *Env, v interface{}) {
	m.sent++
	m.q = append(m.q, v)
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		e.wake(w)
	}
}

// Recv blocks until a message is available and returns it.
func (p *Proc) Recv(m *Mailbox) interface{} {
	for len(m.q) == 0 {
		m.waiters = append(m.waiters, p)
		p.yieldBlockedAndWait()
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v
}

// TryRecv returns the next message if one is queued, without blocking.
func (p *Proc) TryRecv(m *Mailbox) (interface{}, bool) {
	if len(m.q) == 0 {
		return nil, false
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v, true
}
