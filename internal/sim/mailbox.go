package sim

// mwaiter is one blocked receiver: a process or a callback. Exactly one of
// p and fn is set.
type mwaiter struct {
	p  *Proc
	fn func(v interface{})
}

// Mailbox is an unbounded FIFO message queue. Any simulation code may Send;
// processes block in Recv (and callbacks register with RecvFunc) until a
// message is available. Messages are delivered in send order, and blocked
// receivers — processes and callbacks alike — are served FIFO.
type Mailbox struct {
	name    string
	q       []interface{}
	waiters []mwaiter
	sent    uint64
	// pendingFn holds callback receivers that have been woken by a Send
	// but whose delivery event has not dispatched yet; deliverFn is the
	// single reusable dispatcher closure, so waking a callback receiver
	// allocates nothing.
	pendingFn []func(v interface{})
	deliverFn func()
}

// NewMailbox returns an empty mailbox.
func NewMailbox(name string) *Mailbox { return &Mailbox{name: name} }

// Name returns the mailbox name.
func (m *Mailbox) Name() string { return m.name }

// Len returns the number of queued (undelivered) messages.
func (m *Mailbox) Len() int { return len(m.q) }

// Sent returns the total number of messages ever sent.
func (m *Mailbox) Sent() uint64 { return m.sent }

// Send enqueues v and wakes the longest-waiting receiver, if any.
func (m *Mailbox) Send(e *Env, v interface{}) {
	m.sent++
	m.q = append(m.q, v)
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		if w.p != nil {
			e.wake(w.p)
		} else {
			m.pendingFn = append(m.pendingFn, w.fn)
			if m.deliverFn == nil {
				m.deliverFn = m.deliverNext
			}
			e.Defer(m.deliverFn)
		}
	}
}

// deliverNext runs the longest-woken callback receiver: like a woken
// process it takes the head message at dispatch time, and re-queues the
// receiver if the message was snatched (e.g. by TryRecv) between wake-up
// and dispatch.
func (m *Mailbox) deliverNext() {
	fn := m.pendingFn[0]
	m.pendingFn[0] = nil
	m.pendingFn = m.pendingFn[1:]
	if len(m.q) == 0 {
		m.waiters = append(m.waiters, mwaiter{fn: fn})
		return
	}
	v := m.q[0]
	m.q = m.q[1:]
	fn(v)
}

// Recv blocks until a message is available and returns it.
func (p *Proc) Recv(m *Mailbox) interface{} {
	for len(m.q) == 0 {
		m.waiters = append(m.waiters, mwaiter{p: p})
		p.yieldBlockedAndWait()
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v
}

// RecvFunc delivers the next message to fn. When a message is already
// queued, fn runs inline before RecvFunc returns — mirroring Recv's
// non-blocking path. Otherwise fn joins the FIFO receiver queue and runs
// in scheduler context when a message arrives. fn must not block.
func (m *Mailbox) RecvFunc(e *Env, fn func(v interface{})) {
	if len(m.q) > 0 {
		v := m.q[0]
		m.q = m.q[1:]
		fn(v)
		return
	}
	m.waiters = append(m.waiters, mwaiter{fn: fn})
}

// TryRecv returns the next message if one is queued, without blocking.
func (p *Proc) TryRecv(m *Mailbox) (interface{}, bool) {
	if len(m.q) == 0 {
		return nil, false
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v, true
}
