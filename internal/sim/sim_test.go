package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{Microsecond + Microsecond/2, "1.500us"},
		{Millis(2.25), "2.250ms"},
		{Seconds(1.5), "1.500s"},
		{90 * Second, "1.500m"},
		{90 * Minute, "1.500h"},
		{-Millis(1), "-1.000ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if Millis(1.5) != 1500*Microsecond {
		t.Errorf("Millis(1.5) = %v", Millis(1.5))
	}
	if Seconds(2).Seconds() != 2 {
		t.Errorf("round-trip seconds failed: %v", Seconds(2).Seconds())
	}
	if Micros(3).Millis() != 0.003 {
		t.Errorf("Micros(3).Millis() = %v", Micros(3).Millis())
	}
}

func TestWaitAdvancesClock(t *testing.T) {
	e := NewEnv()
	var at Time
	e.Spawn("a", func(p *Proc) {
		p.Wait(Millis(5))
		at = p.Now()
	})
	e.Run()
	if at != Millis(5) {
		t.Fatalf("process observed time %v, want 5ms", at)
	}
	if e.Now() != Millis(5) {
		t.Fatalf("env time %v, want 5ms", e.Now())
	}
}

func TestEventOrderingFIFOAtSameTime(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			order = append(order, i)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v; same-time events must run in spawn order", order)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEnv()
	var log []string
	e.Spawn("parent", func(p *Proc) {
		p.Env().Spawn("child", func(c *Proc) {
			c.Wait(Millis(1))
			log = append(log, "child")
		})
		log = append(log, "parent")
	})
	e.Run()
	if len(log) != 2 || log[0] != "parent" || log[1] != "child" {
		t.Fatalf("log = %v", log)
	}
}

func TestWaitUntilPastClampsToNow(t *testing.T) {
	e := NewEnv()
	e.Spawn("a", func(p *Proc) {
		p.Wait(Millis(10))
		p.WaitUntil(Millis(3)) // in the past
		if p.Now() != Millis(10) {
			t.Errorf("WaitUntil(past) moved clock to %v", p.Now())
		}
	})
	e.Run()
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEnv()
	s := NewSignal()
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("waiter", func(p *Proc) {
			p.WaitSignal(s)
			if p.Now() != Millis(7) {
				t.Errorf("waiter woke at %v, want 7ms", p.Now())
			}
			woken++
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Wait(Millis(7))
		s.Value = "payload"
		s.Fire(p.Env())
	})
	e.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
	if s.Value != "payload" {
		t.Fatalf("signal payload lost")
	}
}

func TestSignalAlreadyFiredDoesNotBlock(t *testing.T) {
	e := NewEnv()
	s := NewSignal()
	ran := false
	e.Spawn("a", func(p *Proc) {
		s.Fire(p.Env())
		s.Fire(p.Env()) // idempotent
		p.WaitSignal(s)
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("process blocked on fired signal")
	}
}

func TestResourceExclusive(t *testing.T) {
	e := NewEnv()
	r := NewResource("gpu", 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Spawn("user", func(p *Proc) {
			p.Use(r, Millis(10))
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []Time{Millis(10), Millis(20), Millis(30)}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v (strict serialization)", finish, want)
		}
	}
	if got := r.BusyTime(e.Now()); got != Millis(30) {
		t.Fatalf("busy time %v, want 30ms", got)
	}
	if r.Acquires() != 3 {
		t.Fatalf("acquires = %d, want 3", r.Acquires())
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	e := NewEnv()
	r := NewResource("cpus", 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Spawn("user", func(p *Proc) {
			p.Use(r, Millis(10))
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []Time{Millis(10), Millis(10), Millis(20), Millis(20)}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
}

func TestResourceFIFOFairness(t *testing.T) {
	e := NewEnv()
	r := NewResource("x", 1)
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		e.Spawn("u", func(p *Proc) {
			p.Acquire(r)
			order = append(order, i)
			p.Wait(Millis(1))
			r.Release(p.Env())
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("acquisition order %v, want FIFO", order)
		}
	}
}

func TestResourceWaitedTime(t *testing.T) {
	e := NewEnv()
	r := NewResource("x", 1)
	e.Spawn("a", func(p *Proc) { p.Use(r, Millis(10)) })
	e.Spawn("b", func(p *Proc) { p.Use(r, Millis(10)) })
	e.Run()
	if r.WaitedTime() != Millis(10) {
		t.Fatalf("waited = %v, want 10ms", r.WaitedTime())
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on releasing idle resource")
		}
	}()
	e := NewEnv()
	r := NewResource("x", 1)
	r.Release(e)
}

func TestResourceBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	NewResource("bad", 0)
}

func TestMailboxDeliveryOrder(t *testing.T) {
	e := NewEnv()
	m := NewMailbox("box")
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, p.Recv(m).(int))
		}
	})
	e.Spawn("send", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(Millis(1))
			m.Send(p.Env(), i)
		}
	})
	e.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got %v", got)
	}
	if m.Sent() != 3 {
		t.Fatalf("Sent = %d", m.Sent())
	}
}

func TestMailboxBufferedBeforeRecv(t *testing.T) {
	e := NewEnv()
	m := NewMailbox("box")
	m.Send(e, "a")
	m.Send(e, "b")
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	var got []string
	e.Spawn("r", func(p *Proc) {
		got = append(got, p.Recv(m).(string), p.Recv(m).(string))
	})
	e.Run()
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestMailboxTryRecv(t *testing.T) {
	e := NewEnv()
	m := NewMailbox("box")
	e.Spawn("a", func(p *Proc) {
		if _, ok := p.TryRecv(m); ok {
			t.Error("TryRecv on empty box returned ok")
		}
		m.Send(p.Env(), 42)
		v, ok := p.TryRecv(m)
		if !ok || v.(int) != 42 {
			t.Errorf("TryRecv = %v, %v", v, ok)
		}
	})
	e.Run()
}

func TestMailboxMultipleReceiversFIFO(t *testing.T) {
	e := NewEnv()
	m := NewMailbox("box")
	var got []string
	for _, name := range []string{"r1", "r2"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			v := p.Recv(m)
			got = append(got, fmt.Sprintf("%s=%v", name, v))
		})
	}
	e.Spawn("s", func(p *Proc) {
		p.Wait(Millis(1))
		m.Send(p.Env(), 1)
		m.Send(p.Env(), 2)
	})
	e.Run()
	if len(got) != 2 || got[0] != "r1=1" || got[1] != "r2=2" {
		t.Fatalf("got %v (receivers must be served FIFO)", got)
	}
}

func TestCloseUnwindsBlockedProcesses(t *testing.T) {
	e := NewEnv()
	m := NewMailbox("never")
	cleaned := false
	e.Spawn("server", func(p *Proc) {
		defer func() { cleaned = true }()
		for {
			p.Recv(m)
		}
	})
	e.Run()
	if e.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d, want 1 blocked server", e.LiveProcs())
	}
	e.Close()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on Close")
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after Close = %d", e.LiveProcs())
	}
	e.Close() // idempotent
}

func TestAtCallback(t *testing.T) {
	e := NewEnv()
	var fired Time
	e.At(Millis(4), func() { fired = e.Now() })
	e.Run()
	if fired != Millis(4) {
		t.Fatalf("callback at %v, want 4ms", fired)
	}
}

func TestAfterCallback(t *testing.T) {
	e := NewEnv()
	var fired Time
	e.Spawn("a", func(p *Proc) {
		p.Wait(Millis(2))
		p.Env().After(Millis(3), func() { fired = p.Env().Now() })
	})
	e.Run()
	if fired != Millis(5) {
		t.Fatalf("callback at %v, want 5ms", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEnv()
	e.Spawn("a", func(p *Proc) { p.Wait(Millis(5)) })
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(Millis(1), func() {})
}

func TestNegativeWaitPanics(t *testing.T) {
	e := NewEnv()
	panicked := make(chan bool, 1)
	e.Spawn("a", func(p *Proc) {
		defer func() { panicked <- recover() != nil }()
		p.Wait(-1)
	})
	func() {
		defer func() { recover() }() // run may re-panic through scheduler
		e.Run()
	}()
	select {
	case ok := <-panicked:
		if !ok {
			t.Fatal("negative Wait did not panic")
		}
	default:
		t.Fatal("process did not run")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEnv()
	ticks := 0
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Wait(Millis(10))
			ticks++
		}
	})
	e.RunUntil(Millis(35))
	if ticks != 3 {
		t.Fatalf("ticks = %d at t=35ms, want 3", ticks)
	}
	if e.Now() != Millis(35) {
		t.Fatalf("Now = %v, want 35ms", e.Now())
	}
	e.Close()
}

func TestYieldLetsOthersRun(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b")
	})
	e.Run()
	want := []string{"a1", "b", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestDeterminism runs a randomized workload twice and checks the event
// traces match exactly.
func TestDeterminism(t *testing.T) {
	trace := func() []string {
		e := NewEnv()
		var log []string
		r := NewResource("r", 2)
		m := NewMailbox("m")
		for i := 0; i < 20; i++ {
			i := i
			e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				p.Wait(Time(i%7) * Millisecond)
				p.Use(r, Time(1+i%3)*Millisecond)
				m.Send(p.Env(), i)
				log = append(log, fmt.Sprintf("%d@%v", i, p.Now()))
			})
		}
		e.Spawn("drain", func(p *Proc) {
			for j := 0; j < 20; j++ {
				v := p.Recv(m)
				log = append(log, fmt.Sprintf("recv%v@%v", v, p.Now()))
			}
		})
		e.Run()
		return log
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// Property: for any set of wait durations, processes complete in
// nondecreasing time order equal to their duration, and the env clock ends
// at the max.
func TestQuickWaitCompletion(t *testing.T) {
	f := func(durs []uint16) bool {
		e := NewEnv()
		var max Time
		ok := true
		for _, d := range durs {
			d := Time(d) * Microsecond
			if d > max {
				max = d
			}
			e.Spawn("w", func(p *Proc) {
				p.Wait(d)
				if p.Now() != d {
					ok = false
				}
			})
		}
		e.Run()
		return ok && e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a capacity-c resource with n unit-time users finishes at
// ceil(n/c) time units and never exceeds capacity.
func TestQuickResourceThroughput(t *testing.T) {
	f := func(n uint8, c uint8) bool {
		users := int(n%50) + 1
		capacity := int(c%8) + 1
		e := NewEnv()
		r := NewResource("r", capacity)
		overCap := false
		for i := 0; i < users; i++ {
			e.Spawn("u", func(p *Proc) {
				p.Acquire(r)
				if r.InUse() > capacity {
					overCap = true
				}
				p.Wait(Millisecond)
				r.Release(p.Env())
			})
		}
		e.Run()
		wantEnd := Time((users+capacity-1)/capacity) * Millisecond
		return !overCap && e.Now() == wantEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
