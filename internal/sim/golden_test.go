package sim

import (
	"fmt"
	"strings"
	"testing"
)

// goldenWorkload drives a fixed mixed workload — timed waits, contended
// resources, signal broadcast, mailbox hand-off, inline callbacks, yields,
// and same-timestamp ties — and records every observable step in dispatch
// order. The recorded trace pins the engine's (time, seq) determinism: any
// change to event ordering (a different heap arity is fine, a different
// tie-break is not) shows up as a trace diff.
func goldenWorkload() []string {
	e := NewEnv()
	var log []string
	rec := func(format string, args ...interface{}) {
		log = append(log, fmt.Sprintf("%v ", e.Now())+fmt.Sprintf(format, args...))
	}

	r := NewResource("r", 2)
	s := NewSignal()
	m := NewMailbox("m")

	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Wait(Time(i) * Millisecond)
			rec("w%d waited", i)
			p.Use(r, Time(3+i)*Millisecond)
			rec("w%d used r", i)
			m.Send(p.Env(), i)
			p.WaitSignal(s)
			rec("w%d signalled", i)
		})
	}
	e.Spawn("recv", func(p *Proc) {
		for j := 0; j < 4; j++ {
			v := p.Recv(m)
			rec("recv %v", v)
		}
		s.Fire(p.Env())
		rec("fired")
	})
	e.Spawn("tie", func(p *Proc) {
		// Land exactly on w2's wake-up time to exercise the seq tie-break.
		p.WaitUntil(2 * Millisecond)
		rec("tie at 2ms")
		p.Yield()
		rec("tie after yield")
	})
	e.At(5*Millisecond, func() { rec("cb at 5ms") })
	e.After(Millisecond, func() { rec("cb after 1ms") })
	e.Run()
	rec("done live=%d events=%d", e.LiveProcs(), e.EventsProcessed())
	e.Close()
	return log
}

var goldenTrace = []string{
	"0ns w0 waited",
	"1.000ms cb after 1ms",
	"1.000ms w1 waited",
	"2.000ms w2 waited",
	"2.000ms tie at 2ms",
	"2.000ms tie after yield",
	"3.000ms w3 waited",
	"3.000ms w0 used r",
	"3.000ms recv 0",
	"5.000ms cb at 5ms",
	"5.000ms w1 used r",
	"5.000ms recv 1",
	"8.000ms w2 used r",
	"8.000ms recv 2",
	"11.000ms w3 used r",
	"11.000ms recv 3",
	"11.000ms fired",
	"11.000ms w0 signalled",
	"11.000ms w1 signalled",
	"11.000ms w2 signalled",
	"11.000ms w3 signalled",
	"11.000ms done live=0 events=28",
}

func TestGoldenTrace(t *testing.T) {
	got := goldenWorkload()
	if len(got) != len(goldenTrace) {
		t.Errorf("trace length %d, want %d", len(got), len(goldenTrace))
	}
	for i := 0; i < len(got) && i < len(goldenTrace); i++ {
		if got[i] != goldenTrace[i] {
			t.Errorf("trace[%d] = %q, want %q", i, got[i], goldenTrace[i])
		}
	}
	if t.Failed() {
		t.Logf("full trace:\n%s", strings.Join(got, "\n"))
	}
}
