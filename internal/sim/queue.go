package sim

// eventQueue is an inline 4-ary min-heap ordered by (at, seq). It replaces
// container/heap, which costs an interface{} boxing allocation on every
// Push and Pop; here steady-state push/pop performs zero allocations.
//
// The heap itself holds only 24-byte pointer-free eventRef keys; the event
// payloads live in a slab indexed by the refs and never move. Sifting
// therefore copies three words per level — no duffcopy of the full event,
// and crucially no GC write barriers, which dominated the dispatch cost
// when pointer-bearing events were swapped directly.
//
// A 4-ary layout halves the tree depth of a binary heap: pops do slightly
// more comparisons per level but far fewer cache-missing level hops, which
// is the dominant cost once the queue holds thousands of events. Because
// every event carries a unique seq, the (at, seq) order is total, so any
// heap arity pops the exact same sequence — determinism does not depend on
// the layout.
type eventQueue struct {
	heap []eventRef
	slab []event
	free []int32 // stack of reusable slab indices
}

// eventRef is the sift-able key of one queued event: its ordering fields
// plus the slab index of the payload. Pointer-free by design.
type eventRef struct {
	at  Time
	seq uint64
	idx int32
}

// queueArity is the heap fan-out. Benchmarked against 2 and 8 on the event
// dispatch microbenchmark; 4 is the sweet spot for the 24-byte ref.
const queueArity = 4

// minQueueCap is the initial bulk allocation: growing 1→2→4→… would pay
// several copies during the startup burst every experiment begins with.
const minQueueCap = 64

func (q *eventQueue) Len() int { return len(q.heap) }

// minTime returns the timestamp of the earliest event. The caller must
// ensure the queue is non-empty.
func (q *eventQueue) minTime() Time { return q.heap[0].at }

func (q *eventQueue) less(i, j int) bool {
	if q.heap[i].at != q.heap[j].at {
		return q.heap[i].at < q.heap[j].at
	}
	return q.heap[i].seq < q.heap[j].seq
}

// push inserts ev, growing the backing arrays in bulk when full.
func (q *eventQueue) push(ev event) {
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
		q.slab[idx] = ev
	} else {
		idx = int32(len(q.slab))
		if len(q.slab) == cap(q.slab) {
			q.slab = append(make([]event, 0, growCap(cap(q.slab))), q.slab...)
		}
		q.slab = append(q.slab, ev)
	}
	if len(q.heap) == cap(q.heap) {
		q.heap = append(make([]eventRef, 0, growCap(cap(q.heap))), q.heap...)
	}
	q.heap = append(q.heap, eventRef{at: ev.at, seq: ev.seq, idx: idx})
	q.siftUp(len(q.heap) - 1)
}

func growCap(c int) int {
	if c < minQueueCap/2 {
		return minQueueCap
	}
	return 2 * c
}

// pop removes and returns the minimum event. The caller must ensure the
// queue is non-empty.
func (q *eventQueue) pop() event {
	ref := q.heap[0]
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap = q.heap[:n]
	if n > 1 {
		q.siftDown(0)
	}
	ev := q.slab[ref.idx]
	q.slab[ref.idx] = event{} // release proc/fn/timer references to the GC
	q.free = append(q.free, ref.idx)
	return ev
}

func (q *eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / queueArity
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.heap)
	for {
		first := queueArity*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + queueArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(c, min) {
				min = c
			}
		}
		if !q.less(min, i) {
			return
		}
		q.heap[i], q.heap[min] = q.heap[min], q.heap[i]
		i = min
	}
}
