package sim

// delivery is one cross-shard message: a function to run on the
// destination shard's Env at virtual time at. The (at, src, seq) triple is
// its canonical merge key — src is the stable sender identity chosen by
// the workload (e.g. a node ID) and seq the sender's running message
// count, so the key is a pure function of the sending entity's behavior
// and carries no trace of which shard the sender happened to live on or
// when batches crossed a barrier.
type delivery struct {
	at  Time
	src uint32
	seq uint64
	fn  func(*Env)
}

// before reports the canonical delivery order: time, then sender identity,
// then the sender's message sequence. Two deliveries never compare equal:
// (src, seq) pairs are unique.
func (d delivery) before(o delivery) bool {
	if d.at != o.at {
		return d.at < o.at
	}
	if d.src != o.src {
		return d.src < o.src
	}
	return d.seq < o.seq
}

// mergeQueue is a shard's inbound cross-shard queue: a 4-ary min-heap of
// deliveries in canonical (at, src, seq) order. Because the key order is
// total and canonical, the pop sequence is independent of insertion order —
// which is what makes barrier timing (and therefore shard count and thread
// scheduling) invisible to the simulation.
type mergeQueue struct {
	heap []delivery
}

func (q *mergeQueue) Len() int { return len(q.heap) }

// peek returns the earliest delivery time; ok == false when empty.
func (q *mergeQueue) peek() (Time, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].at, true
}

func (q *mergeQueue) push(d delivery) {
	if len(q.heap) == cap(q.heap) {
		q.heap = append(make([]delivery, 0, growCap(cap(q.heap))), q.heap...)
	}
	q.heap = append(q.heap, d)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / queueArity
		if !q.heap[i].before(q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *mergeQueue) pop() delivery {
	top := q.heap[0]
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap[n] = delivery{} // release the fn closure to the GC
	q.heap = q.heap[:n]
	i := 0
	for {
		first := queueArity*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + queueArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.heap[c].before(q.heap[min]) {
				min = c
			}
		}
		if !q.heap[min].before(q.heap[i]) {
			break
		}
		q.heap[i], q.heap[min] = q.heap[min], q.heap[i]
		i = min
	}
	return top
}
