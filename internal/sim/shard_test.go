package sim

import (
	"fmt"
	"testing"
)

func TestShardSetConstruction(t *testing.T) {
	e := NewEnv(WithShards(4), WithSeed(7))
	ss := e.Sharded()
	if ss == nil {
		t.Fatal("WithShards(4) did not produce a ShardSet")
	}
	if ss.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", ss.NumShards())
	}
	if ss.Lookahead() != DefaultLookahead {
		t.Fatalf("Lookahead = %v, want %v", ss.Lookahead(), DefaultLookahead)
	}
	if ss.Root() != e || ss.Shard(0).Env() != e {
		t.Fatal("root Env is not shard 0's Env")
	}
	for i := 0; i < 4; i++ {
		sh := ss.Shard(i)
		if sh.ID() != i || sh.Set() != ss {
			t.Fatalf("shard %d miswired", i)
		}
		if sh.Env().Seed() != 7 {
			t.Fatalf("shard %d seed = %d, want 7", i, sh.Env().Seed())
		}
		if sh.Env().Sharded() != ss {
			t.Fatalf("member env %d does not report its set", i)
		}
	}
	if NewEnv().Sharded() != nil {
		t.Fatal("plain NewEnv reports a ShardSet")
	}
	if NewEnv(WithShards(1)).Sharded() == nil {
		t.Fatal("WithShards(1) must still build a degenerate ShardSet")
	}
}

func TestWithLookahead(t *testing.T) {
	e := NewEnv(WithShards(2), WithLookahead(Millis(1)))
	if got := e.Sharded().Lookahead(); got != Millis(1) {
		t.Fatalf("Lookahead = %v, want 1ms", got)
	}
}

func TestBadShardCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithShards(-1) did not panic")
		}
	}()
	NewEnv(WithShards(-1))
}

func TestSendBelowLookaheadPanics(t *testing.T) {
	e := NewEnv(WithShards(2))
	ss := e.Sharded()
	snd := ss.Shard(0).NewSender(1)
	e.Defer(func() {
		snd.Send(1, Micros(4), func(*Env) {}) // lookahead is 5us
	})
	defer func() {
		if recover() == nil {
			t.Fatal("Send below lookahead did not panic")
		}
		e.Close()
	}()
	e.Run()
}

// TestMergeOrderCanonical checks rule 1: messages arriving at one instant
// apply in (sender, seq) order no matter which order they were emitted or
// which shards emitted them.
func TestMergeOrderCanonical(t *testing.T) {
	e := NewEnv(WithShards(4))
	ss := e.Sharded()
	var got []uint32
	// Senders 9, 3, 7 on three different shards all target shard 1 at the
	// same instant, emitted in descending-ID order.
	for _, id := range []uint32{9, 3, 7} {
		id := id
		sh := ss.Shard(int(id) % 4)
		snd := sh.NewSender(id)
		sh.Env().Defer(func() {
			snd.Send(1, Micros(10), func(*Env) { got = append(got, id) })
			snd.Send(1, Micros(10), func(*Env) { got = append(got, id) })
		})
	}
	e.Run()
	want := []uint32{3, 3, 7, 7, 9, 9}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("apply order = %v, want %v", got, want)
	}
	e.Close()
}

// TestDeliveryBeforeLocalAtSameTime checks rule 2: at equal timestamps a
// shard applies inbound messages before locally scheduled events.
func TestDeliveryBeforeLocalAtSameTime(t *testing.T) {
	e := NewEnv(WithShards(2))
	ss := e.Sharded()
	var got []string
	ss.Shard(1).Env().At(Micros(10), func() { got = append(got, "local") })
	snd := ss.Shard(0).NewSender(1)
	e.Defer(func() {
		snd.Send(1, Micros(10), func(*Env) { got = append(got, "delivery") })
	})
	e.Run()
	if fmt.Sprint(got) != "[delivery local]" {
		t.Fatalf("order = %v, want [delivery local]", got)
	}
	e.Close()
}

func TestDeliveryRunsAtItsTimestamp(t *testing.T) {
	e := NewEnv(WithShards(2))
	ss := e.Sharded()
	dst := ss.Shard(1).Env()
	snd := ss.Shard(0).NewSender(42)
	var at Time
	var count uint64
	e.At(Micros(3), func() {
		snd.Send(1, Micros(20), func(de *Env) {
			if de != dst {
				t.Error("delivery ran on the wrong shard's Env")
			}
			at = de.Now()
			count = de.EventsProcessed()
		})
	})
	e.Run()
	if at != Micros(23) {
		t.Fatalf("delivery ran at %v, want 23us", at)
	}
	if count == 0 {
		t.Fatal("delivery did not count as a dispatched event")
	}
	if ss.Shard(1).Delivered() != 1 {
		t.Fatalf("Delivered = %d, want 1", ss.Shard(1).Delivered())
	}
	e.Close()
}

func TestSameShardSendTakesMergePath(t *testing.T) {
	e := NewEnv(WithShards(2))
	ss := e.Sharded()
	snd := ss.Shard(0).NewSender(5)
	var ran bool
	e.Defer(func() { snd.Send(0, Micros(5), func(*Env) { ran = true }) })
	e.Run()
	if !ran {
		t.Fatal("same-shard Send never delivered")
	}
	if ss.Shard(0).Delivered() != 1 {
		t.Fatalf("same-shard send bypassed the merge queue (Delivered = %d)", ss.Shard(0).Delivered())
	}
	e.Close()
}

func TestShardedRunUntil(t *testing.T) {
	e := NewEnv(WithShards(3))
	ss := e.Sharded()
	var fired []Time
	ss.Shard(2).Env().At(Millis(1), func() { fired = append(fired, Millis(1)) })
	ss.Shard(1).Env().At(Millis(2), func() { fired = append(fired, Millis(2)) })
	ss.Shard(2).Env().At(Millis(5), func() { fired = append(fired, Millis(5)) })
	if n := e.RunUntil(Millis(2)); n != 2 {
		t.Fatalf("RunUntil dispatched %d, want 2 (events exactly at t run)", n)
	}
	for i := 0; i < 3; i++ {
		if now := ss.Shard(i).Env().Now(); now != Millis(2) {
			t.Fatalf("shard %d clock = %v, want 2ms", i, now)
		}
	}
	if n := e.RunUntil(Millis(10)); n != 1 {
		t.Fatalf("second RunUntil dispatched %d, want 1", n)
	}
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
	e.Close()
}

// TestCloseDrainsCouplersBeforeDropping extends the Close drop-semantics
// test to sharded environments: a message still sitting in a coupler batch
// at Close time is drained into its destination's merge queue and then
// accounted as dropped there — never lost in the intermediate buffer, and
// never run.
func TestCloseDrainsCouplersBeforeDropping(t *testing.T) {
	e := NewEnv(WithShards(2))
	ss := e.Sharded()
	ran := false
	snd := ss.Shard(0).NewSender(1)
	e.Defer(func() {
		// Runs during the first window; the outbound batch is in shard 0's
		// coupler when RunUntil's window ends, and the message's timestamp
		// (10us) is beyond the RunUntil horizon, so after the final
		// exchange it sits undelivered in shard 1's merge queue.
		snd.Send(1, Micros(10), func(*Env) { ran = true })
	})
	e.RunUntil(Micros(1))
	if got := ss.Shard(1).PendingDeliveries(); got != 1 {
		t.Fatalf("PendingDeliveries = %d, want 1 (batch exchanged at barrier)", got)
	}
	ss.Shard(1).Env().After(Millis(1), func() { ran = true })
	e.Close()
	if ran {
		t.Fatal("Close ran a pending delivery or callback")
	}
	if ss.DroppedDeliveries() != 1 {
		t.Fatalf("DroppedDeliveries = %d, want 1", ss.DroppedDeliveries())
	}
	for i := 0; i < 2; i++ {
		if n := ss.Shard(i).Env().PendingEvents(); n != 0 {
			t.Fatalf("shard %d has %d pending events after Close", i, n)
		}
		if n := ss.Shard(i).PendingDeliveries(); n != 0 {
			t.Fatalf("shard %d has %d pending deliveries after Close", i, n)
		}
	}
	e.Close() // idempotent
	if ss.DroppedDeliveries() != 1 {
		t.Fatal("second Close re-counted drops")
	}
}

// TestCloseDrainCountsUnflushedCoupler is the sharper variant: Close is
// called while a batch is still in the coupler (no barrier ever flushed
// it), proving Close itself performs the drain.
func TestCloseDrainCountsUnflushedCoupler(t *testing.T) {
	e := NewEnv(WithShards(2))
	ss := e.Sharded()
	snd := ss.Shard(0).NewSender(1)
	// Send outside Run: the batch sits in the coupler, no exchange happens.
	snd.Send(1, Micros(5), func(*Env) { t.Error("dropped delivery ran") })
	e.Close()
	if ss.DroppedDeliveries() != 1 {
		t.Fatalf("DroppedDeliveries = %d, want 1 (coupler drained by Close)", ss.DroppedDeliveries())
	}
}

func TestMemberEnvRunAndClosePanic(t *testing.T) {
	check := func(name string, f func(*Env)) {
		e := NewEnv(WithShards(2))
		member := e.Sharded().Shard(1).Env()
		defer e.Close()
		var got interface{}
		func() {
			defer func() { got = recover() }()
			f(member)
		}()
		if got == nil {
			t.Errorf("%s on a member shard Env did not panic", name)
		}
	}
	check("Run", func(m *Env) { m.Run() })
	check("RunUntil", func(m *Env) { m.RunUntil(Millis(1)) })
	check("Close", func(m *Env) { m.Close() })
}

func TestShardedReentrancyPanics(t *testing.T) {
	e := NewEnv(WithShards(2))
	var got interface{}
	e.Defer(func() {
		defer func() { got = recover() }()
		e.Run()
	})
	e.Run()
	if got == nil {
		t.Fatal("reentrant Run on the sharded root did not panic")
	}
	e.Close()
}

func TestShardPanicPropagates(t *testing.T) {
	e := NewEnv(WithShards(4))
	ss := e.Sharded()
	ss.Shard(3).Env().At(Micros(1), func() { panic("shard boom") })
	var got interface{}
	func() {
		defer func() { got = recover() }()
		e.Run()
	}()
	if got != "shard boom" {
		t.Fatalf("recovered %v, want shard boom", got)
	}
}

// fleetTrace runs a deterministic token-ring workload over nEntities
// mapped round-robin onto the set's shards and returns a digest of every
// entity's observation history. Entities forward tokens with
// value-dependent delays, mutate local state from timer callbacks at the
// same timestamps as inbound tokens, and hash (time, value, hops) on every
// receipt — exercising both determinism rules at once.
func fleetTrace(t *testing.T, shards, nEntities, hops int) uint64 {
	t.Helper()
	e := NewEnv(WithShards(shards), WithSeed(99))
	ss := e.Sharded()
	type entity struct {
		snd  *Sender
		hash uint64
	}
	ents := make([]*entity, nEntities)
	for i := range ents {
		ents[i] = &entity{snd: ss.Shard(i % ss.NumShards()).NewSender(uint32(i))}
	}
	var forward func(dst int, v uint64, hop int)
	forward = func(dst int, v uint64, hop int) {
		delay := Micros(float64(5 + v%7))
		ents[(dst+nEntities-1)%nEntities].snd.Send(dst%ss.NumShards(), delay, func(de *Env) {
			en := ents[dst]
			en.hash = en.hash*1099511628211 + v + uint64(de.Now()) + uint64(hop)
			// A local event at the very same timestamp: must run after the
			// delivery regardless of shard layout.
			de.At(de.Now(), func() { en.hash = en.hash*31 + 1 })
			if hop < hops {
				forward((dst+1)%nEntities, v+1, hop+1)
			}
		})
	}
	for i := 0; i < nEntities; i++ {
		i := i
		ss.Shard(i % ss.NumShards()).Env().Defer(func() {
			forward((i+1)%nEntities, uint64(i), 0)
		})
	}
	e.Run()
	var digest uint64
	for i, en := range ents {
		digest = digest*1099511628211 + en.hash + uint64(i)
	}
	e.Close()
	return digest
}

// TestShardCountInvariance is the engine-level property test: the same
// workload produces bit-identical state at shard widths 1, 2, 4 and 8.
func TestShardCountInvariance(t *testing.T) {
	want := fleetTrace(t, 1, 24, 40)
	for _, k := range []int{2, 4, 8} {
		if got := fleetTrace(t, k, 24, 40); got != want {
			t.Fatalf("shards=%d digest %x != shards=1 digest %x", k, got, want)
		}
	}
}

func TestWindowsCounterAdvances(t *testing.T) {
	e := NewEnv(WithShards(2))
	ss := e.Sharded()
	snd := ss.Shard(0).NewSender(1)
	e.Defer(func() {
		snd.Send(1, Micros(5), func(de *Env) {
			de.At(de.Now()+Micros(100), func() {})
		})
	})
	e.Run()
	if ss.Windows() < 2 {
		t.Fatalf("Windows = %d, want >= 2", ss.Windows())
	}
	e.Close()
}

func TestSendOnClosedSetPanics(t *testing.T) {
	e := NewEnv(WithShards(2))
	snd := e.Sharded().Shard(0).NewSender(1)
	e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Send on closed set did not panic")
		}
	}()
	snd.Send(1, Micros(5), func(*Env) {})
}
