package sim

// swaiter is one party waiting on a signal: a blocked process or a
// callback. Exactly one of p and fn is set.
type swaiter struct {
	p  *Proc
	fn func()
}

// Signal is a one-shot broadcast condition. Processes block on WaitSignal
// and callbacks register with OnFire until Fire is called, after which all
// current and future waiters proceed immediately. The zero value is an
// unfired signal.
type Signal struct {
	fired   bool
	waiters []swaiter
	// Value optionally carries a payload set by the firing party, e.g. the
	// result of an asynchronous operation.
	Value interface{}
}

// NewSignal returns an unfired signal.
func NewSignal() *Signal { return &Signal{} }

// Fired reports whether the signal has been fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal fired and wakes all waiters at the current virtual
// time, in registration order: blocked processes resume and callbacks run
// in scheduler context. Firing an already-fired signal is a no-op.
func (s *Signal) Fire(e *Env) {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		if w.p != nil {
			e.wake(w.p)
		} else {
			e.Defer(w.fn)
		}
	}
	s.waiters = nil
}

// WaitSignal blocks the process until the signal fires. If the signal has
// already fired it returns immediately without yielding.
func (p *Proc) WaitSignal(s *Signal) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, swaiter{p: p})
	p.yieldBlockedAndWait()
}

// OnFire arranges for fn to run when the signal fires. If the signal has
// already fired, fn runs inline before OnFire returns — mirroring
// WaitSignal's immediate return. fn must not block.
func (s *Signal) OnFire(e *Env, fn func()) {
	if s.fired {
		fn()
		return
	}
	s.waiters = append(s.waiters, swaiter{fn: fn})
}
