package sim

// Signal is a one-shot broadcast condition. Processes block on WaitSignal
// until Fire is called, after which all current and future waiters proceed
// immediately. The zero value is an unfired signal.
type Signal struct {
	fired   bool
	waiters []*Proc
	// Value optionally carries a payload set by the firing party, e.g. the
	// result of an asynchronous operation.
	Value interface{}
}

// NewSignal returns an unfired signal.
func NewSignal() *Signal { return &Signal{} }

// Fired reports whether the signal has been fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal fired and wakes all waiters at the current virtual
// time. Firing an already-fired signal is a no-op.
func (s *Signal) Fire(e *Env) {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		e.wake(w)
	}
	s.waiters = nil
}

// WaitSignal blocks the process until the signal fires. If the signal has
// already fired it returns immediately without yielding.
func (p *Proc) WaitSignal(s *Signal) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.yieldBlockedAndWait()
}
