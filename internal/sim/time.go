// Package sim implements a deterministic discrete-event simulation (DES)
// kernel used as the substrate for the simulated cluster, GPUs, network,
// and storage on which the Rocket runtime executes.
//
// The engine is cooperative and single-threaded: exactly one simulated
// process runs at a time, and processes hand control back to the scheduler
// whenever they block on virtual time, a Signal, a Resource, or a Mailbox.
// With all randomness injected from outside, a simulation with the same
// inputs replays the exact same event order, which the test suite verifies.
package sim

import "fmt"

// Time is a point in (or duration of) virtual time, in nanoseconds.
// Virtual time starts at 0 when an Env is created and only moves forward.
type Time int64

// Common durations, mirroring time.Duration constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Millis returns f milliseconds of virtual time, rounding to the nearest
// nanosecond.
func Millis(f float64) Time { return Time(f * float64(Millisecond)) }

// Micros returns f microseconds of virtual time.
func Micros(f float64) Time { return Time(f * float64(Microsecond)) }

// Seconds returns f seconds of virtual time.
func Seconds(f float64) Time { return Time(f * float64(Second)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit, e.g. "1.500ms" or "2.250h".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t < Minute:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t < Hour:
		return fmt.Sprintf("%.3fm", float64(t)/float64(Minute))
	default:
		return fmt.Sprintf("%.3fh", float64(t)/float64(Hour))
	}
}
