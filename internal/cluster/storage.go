package cluster

import (
	"rocket/internal/sim"
)

// Storage models the central file server (the paper's MinIO over
// InfiniBand). Its bandwidth is shared: concurrent reads from many nodes
// queue on the server, so "actual bandwidth depends heavily on the load on
// the storage system" (§6.1) emerges naturally.
type Storage struct {
	// Latency is per-request overhead (connection, lookup).
	Latency sim.Time
	// Bandwidth is the aggregate server bandwidth in bytes/second.
	Bandwidth float64

	server *sim.Resource

	bytesRead    int64
	reads        uint64
	bytesWritten int64
	writes       uint64
}

// NewStorage returns a storage server.
func NewStorage(latency sim.Time, bandwidth float64) *Storage {
	if bandwidth <= 0 {
		panic("cluster: storage bandwidth must be positive")
	}
	return &Storage{
		Latency:   latency,
		Bandwidth: bandwidth,
		server:    sim.NewResource("storage", 1),
	}
}

// Read simulates fetching size bytes, blocking the calling process for the
// request latency plus queueing plus transfer time, and accounts the bytes.
func (s *Storage) Read(p *sim.Proc, size int64) {
	s.reads++
	s.bytesRead += size
	p.Wait(s.Latency)
	p.Use(s.server, sim.Seconds(float64(size)/s.Bandwidth))
}

// ReadFunc is the callback analogue of Read: it charges the request
// latency, queues on the shared server bandwidth, and calls fn when the
// transfer completes — no goroutine involved. fn must not block.
func (s *Storage) ReadFunc(e *sim.Env, size int64, fn func()) {
	s.reads++
	s.bytesRead += size
	transfer := sim.Seconds(float64(size) / s.Bandwidth)
	e.After(s.Latency, func() {
		s.server.UseFunc(e, transfer, func(sim.Time) { fn() })
	})
}

// WriteFunc is the write-side analogue of ReadFunc: it charges the
// request latency, queues on the same shared server bandwidth (reads
// and writes contend for one fabric), and calls fn when the transfer
// completes. The pairstore uses it to charge segment-log appends.
func (s *Storage) WriteFunc(e *sim.Env, size int64, fn func()) {
	s.writes++
	s.bytesWritten += size
	transfer := sim.Seconds(float64(size) / s.Bandwidth)
	e.After(s.Latency, func() {
		s.server.UseFunc(e, transfer, func(sim.Time) { fn() })
	})
}

// BytesRead returns the cumulative bytes served.
func (s *Storage) BytesRead() int64 { return s.bytesRead }

// Reads returns the number of read requests served.
func (s *Storage) Reads() uint64 { return s.reads }

// BytesWritten returns the cumulative bytes written.
func (s *Storage) BytesWritten() int64 { return s.bytesWritten }

// Writes returns the number of write requests served.
func (s *Storage) Writes() uint64 { return s.writes }

// QueueLen returns the number of requests waiting on the server.
func (s *Storage) QueueLen() int { return s.server.QueueLen() }
