package cluster

import (
	"fmt"

	"rocket/internal/sim"
)

// ShardMap is a contiguous node→shard assignment: nodes [0, n) are split
// into k blocks of near-equal size, node i belonging to shard i*k/n.
// Contiguity keeps a node's neighbors (ring protocols, rack locality) on
// the same shard where possible, and makes the mapping a pure function of
// (n, k) — no layout state to persist or ship.
type ShardMap struct {
	nodes  int
	shards int
}

// NewShardMap builds the mapping. shards is clamped to [1, nodes].
func NewShardMap(nodes, shards int) ShardMap {
	if nodes < 1 {
		panic(fmt.Sprintf("cluster: ShardMap over %d nodes", nodes))
	}
	if shards < 1 {
		shards = 1
	}
	if shards > nodes {
		shards = nodes
	}
	return ShardMap{nodes: nodes, shards: shards}
}

// Nodes returns the node count.
func (m ShardMap) Nodes() int { return m.nodes }

// NumShards returns the shard count.
func (m ShardMap) NumShards() int { return m.shards }

// ShardOf returns the shard owning node i.
func (m ShardMap) ShardOf(i int) int {
	return i * m.shards / m.nodes
}

// Range returns the half-open node interval [lo, hi) owned by shard s.
func (m ShardMap) Range(s int) (lo, hi int) {
	lo = (s*m.nodes + m.shards - 1) / m.shards
	hi = ((s+1)*m.nodes + m.shards - 1) / m.shards
	return lo, hi
}

// shardNetStats is one shard's private slice of the fabric counters,
// padded to a cache line so neighboring shards don't false-share.
type shardNetStats struct {
	messages  uint64
	bytesSent int64
	dropped   uint64
	_         [5]uint64
}

// ShardedNet is the cross-shard send path of a sharded fleet: the same
// latency/bandwidth fabric model as Network, re-expressed on sim.Sender so
// nodes on different shards exchange messages through the deterministic
// merge path instead of a shared Mailbox.
//
// Model: a message from node a to node b first serializes on a's NIC —
// modeled as a per-node departure clock, so back-to-back sends queue
// behind each other exactly like Network's NIC resource — and is then
// delivered Latency after departure by a closure running on b's shard.
// Latency must be >= the ShardSet's lookahead (the conservative contract);
// with the default fabric both are 5us, so this holds by construction.
//
// Liveness is split by ownership so no shard ever reads another shard's
// health state: the sender checks only its own node at send time, and the
// receiver's shard checks the destination at delivery time. Counters are
// kept per shard and summed on demand; call the accessors only while the
// simulation is stopped.
type ShardedNet struct {
	Latency   sim.Time
	Bandwidth float64

	m       ShardMap
	senders []*sim.Sender // per node, owned by the node's shard
	nicFree []sim.Time    // per node: earliest time the NIC is idle
	stats   []shardNetStats

	// aliveFn reports node liveness; it is called only from the queried
	// node's owning shard (sender side for From, receiver side for To), so
	// implementations may read shard-local state without synchronization.
	aliveFn func(node int) bool
}

// NewShardedNet wires a fabric over the shard set. Every node gets a
// sim.Sender on its owning shard keyed by its node ID, which is what makes
// the merge order — and therefore the simulation — independent of the
// shard count.
func NewShardedNet(ss *sim.ShardSet, m ShardMap, latency sim.Time, bandwidth float64) *ShardedNet {
	if bandwidth <= 0 {
		panic("cluster: network bandwidth must be positive")
	}
	if latency < ss.Lookahead() {
		panic(fmt.Sprintf("cluster: net latency %v below shard lookahead %v", latency, ss.Lookahead()))
	}
	sn := &ShardedNet{
		Latency:   latency,
		Bandwidth: bandwidth,
		m:         m,
		senders:   make([]*sim.Sender, m.Nodes()),
		nicFree:   make([]sim.Time, m.Nodes()),
		stats:     make([]shardNetStats, ss.NumShards()),
	}
	for i := range sn.senders {
		sn.senders[i] = ss.Shard(m.ShardOf(i)).NewSender(uint32(i))
	}
	return sn
}

// Map returns the node→shard assignment the fabric was built over.
func (sn *ShardedNet) Map() ShardMap { return sn.m }

// SetAliveFunc installs the liveness hook. It is consulted for the sender
// at send time and for the receiver at delivery time, each on the node's
// owning shard. Passing nil restores the always-alive default.
func (sn *ShardedNet) SetAliveFunc(fn func(node int) bool) { sn.aliveFn = fn }

// TransferTime returns the serialization time for size bytes on one NIC.
func (sn *ShardedNet) TransferTime(size int64) sim.Time {
	return sim.Seconds(float64(size) / sn.Bandwidth)
}

// Send transmits size bytes from node from to node to and runs fn on to's
// shard at the delivery time. It must be called from from's owning shard
// (its Env is the one executing the caller). Serialization queues on
// from's departure clock; delivery happens Latency after departure. fn
// must touch only state owned by to's shard.
//
// Drop semantics mirror Network: a send from a dead node is refused and
// counted on the sender's shard; a message to a node that is dead at
// delivery time was transmitted, so it counts as a message and as a drop
// (on the receiver's shard). fn does not run for dropped messages.
func (sn *ShardedNet) Send(e *sim.Env, from, to int, size int64, fn func(*sim.Env)) {
	fromShard := sn.m.ShardOf(from)
	st := &sn.stats[fromShard]
	if sn.aliveFn != nil && !sn.aliveFn(from) {
		st.dropped++
		return
	}
	now := e.Now()
	depart := now
	if sn.nicFree[from] > depart {
		depart = sn.nicFree[from]
	}
	depart += sn.TransferTime(size)
	sn.nicFree[from] = depart
	st.messages++
	st.bytesSent += size
	toShard := sn.m.ShardOf(to)
	toNode := to
	sn.senders[from].Send(toShard, depart+sn.Latency-now, func(de *sim.Env) {
		if sn.aliveFn != nil && !sn.aliveFn(toNode) {
			sn.stats[toShard].dropped++
			return
		}
		fn(de)
	})
}

// Messages returns the number of fabric messages admitted for transmission,
// summed over shards. Stopped-simulation accessor.
func (sn *ShardedNet) Messages() uint64 {
	var n uint64
	for i := range sn.stats {
		n += sn.stats[i].messages
	}
	return n
}

// BytesSent returns cumulative payload bytes, summed over shards.
// Stopped-simulation accessor.
func (sn *ShardedNet) BytesSent() int64 {
	var n int64
	for i := range sn.stats {
		n += sn.stats[i].bytesSent
	}
	return n
}

// Dropped returns messages refused at send time plus messages lost at
// delivery time, summed over shards. Stopped-simulation accessor.
func (sn *ShardedNet) Dropped() uint64 {
	var n uint64
	for i := range sn.stats {
		n += sn.stats[i].dropped
	}
	return n
}
