// Package cluster models the distributed platform the paper evaluates on:
// compute nodes (CPU cores, host memory, one or more GPUs), an InfiniBand-
// style network with per-NIC bandwidth and latency, and a central storage
// server with shared bandwidth (the paper's MinIO service).
package cluster

import (
	"fmt"

	"rocket/internal/gpu"
	"rocket/internal/sim"
)

// NodeSpec describes the hardware of one node.
type NodeSpec struct {
	// Cores is the number of CPU cores available to the parse/postprocess
	// thread pool. DAS-5 and Cartesius nodes have 16.
	Cores int
	// HostCacheBytes is the page-locked main memory dedicated to the
	// level-2 host cache (40 GiB on DAS-5, 80 GiB on Cartesius).
	HostCacheBytes int64
	// GPUs lists the device models installed in the node.
	GPUs []gpu.Model
}

// Validate reports an error for nonsensical specs.
func (s NodeSpec) Validate() error {
	if s.Cores < 1 {
		return fmt.Errorf("cluster: node needs at least 1 core, got %d", s.Cores)
	}
	if s.HostCacheBytes < 0 {
		return fmt.Errorf("cluster: negative host cache size %d", s.HostCacheBytes)
	}
	if len(s.GPUs) == 0 {
		return fmt.Errorf("cluster: node needs at least 1 GPU")
	}
	return nil
}

// Node is one simulated machine.
type Node struct {
	ID   int
	Spec NodeSpec
	// CPU is the parse/postprocess thread pool (capacity = Cores).
	CPU *sim.Resource
	// IO serializes this node's requests to remote storage (the paper uses
	// one I/O thread per node, §4.3).
	IO *sim.Resource
	// NIC serializes outbound network transfers.
	NIC *sim.Resource
	// Inbox receives messages from peer nodes.
	Inbox *sim.Mailbox
	// GPUs are the node's devices.
	GPUs []*gpu.Device
}

// Name returns the node's trace identifier, e.g. "node3".
func (n *Node) Name() string { return fmt.Sprintf("node%d", n.ID) }

// Cluster is the set of nodes plus the fabrics connecting them. Nodes is
// append-only (IDs are dense, node i at index i); grow it through AddNode
// so the aggregate counters stay consistent.
type Cluster struct {
	Nodes   []*Node
	Net     *Network
	Storage *Storage

	// Incrementally maintained aggregates: membership churn queries these
	// on every placement decision, so they must not rescan Nodes.
	totalGPUs  int
	totalSpeed float64
}

// Config configures fabric characteristics.
type Config struct {
	// NetLatency is the one-way message latency (FDR InfiniBand ~ few us).
	NetLatency sim.Time
	// NetBandwidth is per-NIC bandwidth in bytes/second (56 Gb/s FDR = 7e9).
	NetBandwidth float64
	// StorageLatency is the per-request overhead of the storage server.
	StorageLatency sim.Time
	// StorageBandwidth is the server's aggregate bandwidth in bytes/second,
	// shared by all nodes.
	StorageBandwidth float64
}

// DefaultConfig returns fabric parameters modeled on the DAS-5 setup:
// 56 Gb/s FDR InfiniBand and a MinIO server on the same fabric.
func DefaultConfig() Config {
	return Config{
		NetLatency:       sim.Micros(5),
		NetBandwidth:     7e9,
		StorageLatency:   sim.Micros(500),
		StorageBandwidth: 2e9,
	}
}

// New builds a cluster of the given nodes. Node i gets ID i.
func New(specs []NodeSpec, cfg Config) (*Cluster, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	c := &Cluster{
		Net:     NewNetwork(cfg.NetLatency, cfg.NetBandwidth),
		Storage: NewStorage(cfg.StorageLatency, cfg.StorageBandwidth),
	}
	for i, s := range specs {
		if _, err := c.AddNode(s); err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
	}
	return c, nil
}

// AddNode appends one node (ID = current count) and folds its hardware
// into the aggregate counters. This is the join path under elastic fleets:
// capacity arriving mid-run registers here before it takes work.
func (c *Cluster) AddNode(s NodeSpec) (*Node, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	i := len(c.Nodes)
	n := &Node{
		ID:    i,
		Spec:  s,
		CPU:   sim.NewResource(fmt.Sprintf("node%d/cpu", i), s.Cores),
		IO:    sim.NewResource(fmt.Sprintf("node%d/io", i), 1),
		NIC:   sim.NewResource(fmt.Sprintf("node%d/nic", i), 1),
		Inbox: sim.NewMailbox(fmt.Sprintf("node%d/inbox", i)),
	}
	for g, m := range s.GPUs {
		d := gpu.New(fmt.Sprintf("node%d/gpu%d", i, g), m)
		n.GPUs = append(n.GPUs, d)
		c.totalGPUs++
		c.totalSpeed += d.Speed
	}
	c.Nodes = append(c.Nodes, n)
	return n, nil
}

// Node returns node id, or nil when out of range. IDs are dense, so the
// lookup is an index — O(1) regardless of fleet size or churn history.
func (c *Cluster) Node(id int) *Node {
	if id < 0 || id >= len(c.Nodes) {
		return nil
	}
	return c.Nodes[id]
}

// TotalGPUs returns the number of devices across all nodes. O(1): the
// count is maintained incrementally by AddNode.
func (c *Cluster) TotalGPUs() int { return c.totalGPUs }

// TotalSpeed returns the sum of relative GPU speeds, used by the
// performance model to compute the heterogeneous lower bound. O(1): the
// sum is maintained incrementally by AddNode.
func (c *Cluster) TotalSpeed() float64 { return c.totalSpeed }
