package cluster

import (
	"rocket/internal/sim"
)

// Message is what arrives in a node's Inbox: an application payload plus
// provenance.
type Message struct {
	From    int
	To      int
	Size    int64
	Payload interface{}
}

// Network is a switched fabric: each node owns a full-duplex NIC; a
// transfer occupies the sender's NIC for size/bandwidth and is delivered
// to the receiver's inbox after an additional propagation latency.
type Network struct {
	Latency   sim.Time
	Bandwidth float64 // bytes/sec per NIC

	bytesSent int64
	messages  uint64
}

// NewNetwork returns a network with the given characteristics.
func NewNetwork(latency sim.Time, bandwidth float64) *Network {
	if bandwidth <= 0 {
		panic("cluster: network bandwidth must be positive")
	}
	return &Network{Latency: latency, Bandwidth: bandwidth}
}

// BytesSent returns the cumulative payload bytes moved over the network.
func (nw *Network) BytesSent() int64 { return nw.bytesSent }

// Messages returns the number of messages delivered or in flight.
func (nw *Network) Messages() uint64 { return nw.messages }

// TransferTime returns the serialization time for size bytes on one NIC.
func (nw *Network) TransferTime(size int64) sim.Time {
	return sim.Seconds(float64(size) / nw.Bandwidth)
}

// Send transmits payload from one node to another, blocking the calling
// process for the sender-side serialization time. Delivery into to.Inbox
// happens Latency after serialization completes. Local sends (from == to)
// are delivered immediately without occupying the NIC.
func (nw *Network) Send(p *sim.Proc, from, to *Node, size int64, payload interface{}) {
	nw.messages++
	msg := Message{From: from.ID, To: to.ID, Size: size, Payload: payload}
	env := p.Env()
	if from == to {
		to.Inbox.Send(env, msg)
		return
	}
	nw.bytesSent += size
	p.Acquire(from.NIC)
	p.Wait(nw.TransferTime(size))
	from.NIC.Release(env)
	env.After(nw.Latency, func() {
		to.Inbox.Send(env, msg)
	})
}

// SendFunc is the callback analogue of Send: it occupies the sender's NIC
// for the serialization time, schedules delivery Latency later, and then
// calls fn — at the point where Send would have returned to the blocked
// caller. Local sends (from == to) deliver immediately and call fn inline.
// fn must not block.
func (nw *Network) SendFunc(e *sim.Env, from, to *Node, size int64, payload interface{}, fn func()) {
	nw.messages++
	msg := Message{From: from.ID, To: to.ID, Size: size, Payload: payload}
	if from == to {
		to.Inbox.Send(e, msg)
		fn()
		return
	}
	nw.bytesSent += size
	from.NIC.UseFunc(e, nw.TransferTime(size), func(sim.Time) {
		e.After(nw.Latency, func() {
			to.Inbox.Send(e, msg)
		})
		fn()
	})
}

// SendAsync transmits without blocking the caller: the transfer runs as a
// callback chain — queue for the sender's NIC, occupy it for the
// serialization time, then deliver after the propagation latency — with no
// helper goroutine. Use it when the sender must continue immediately (e.g.
// forwarding while serving other requests).
func (nw *Network) SendAsync(env *sim.Env, from, to *Node, size int64, payload interface{}) {
	// The whole transfer is deferred one event so a burst of SendAsync
	// calls from a single scheduler slice contends for the NIC (and
	// delivers local messages) in the same order a burst of spawned sender
	// processes would have.
	env.Defer(func() {
		nw.messages++
		msg := Message{From: from.ID, To: to.ID, Size: size, Payload: payload}
		if from == to {
			to.Inbox.Send(env, msg)
			return
		}
		nw.bytesSent += size
		from.NIC.UseFunc(env, nw.TransferTime(size), func(sim.Time) {
			env.After(nw.Latency, func() {
				to.Inbox.Send(env, msg)
			})
		})
	})
}
