package cluster

import (
	"rocket/internal/sim"
)

// Message is what arrives in a node's Inbox: an application payload plus
// provenance.
type Message struct {
	From    int
	To      int
	Size    int64
	Payload interface{}
}

// Network is a switched fabric: each node owns a full-duplex NIC; a
// transfer occupies the sender's NIC for size/bandwidth and is delivered
// to the receiver's inbox after an additional propagation latency.
type Network struct {
	Latency   sim.Time
	Bandwidth float64 // bytes/sec per NIC

	bytesSent int64
	messages  uint64
}

// NewNetwork returns a network with the given characteristics.
func NewNetwork(latency sim.Time, bandwidth float64) *Network {
	if bandwidth <= 0 {
		panic("cluster: network bandwidth must be positive")
	}
	return &Network{Latency: latency, Bandwidth: bandwidth}
}

// BytesSent returns the cumulative payload bytes moved over the network.
func (nw *Network) BytesSent() int64 { return nw.bytesSent }

// Messages returns the number of messages delivered or in flight.
func (nw *Network) Messages() uint64 { return nw.messages }

// TransferTime returns the serialization time for size bytes on one NIC.
func (nw *Network) TransferTime(size int64) sim.Time {
	return sim.Seconds(float64(size) / nw.Bandwidth)
}

// Send transmits payload from one node to another, blocking the calling
// process for the sender-side serialization time. Delivery into to.Inbox
// happens Latency after serialization completes. Local sends (from == to)
// are delivered immediately without occupying the NIC.
func (nw *Network) Send(p *sim.Proc, from, to *Node, size int64, payload interface{}) {
	nw.messages++
	msg := Message{From: from.ID, To: to.ID, Size: size, Payload: payload}
	env := p.Env()
	if from == to {
		to.Inbox.Send(env, msg)
		return
	}
	nw.bytesSent += size
	p.Acquire(from.NIC)
	p.Wait(nw.TransferTime(size))
	from.NIC.Release(env)
	env.After(nw.Latency, func() {
		to.Inbox.Send(env, msg)
	})
}

// SendAsync transmits without blocking the caller: a helper process is
// spawned to perform the send. Use it when the sender must continue
// immediately (e.g. forwarding while serving other requests).
func (nw *Network) SendAsync(p *sim.Proc, from, to *Node, size int64, payload interface{}) {
	env := p.Env()
	env.Spawn(from.Name()+"/send", func(sp *sim.Proc) {
		nw.Send(sp, from, to, size, payload)
	})
}
