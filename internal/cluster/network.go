package cluster

import (
	"rocket/internal/sim"
)

// Message is what arrives in a node's Inbox: an application payload plus
// provenance.
type Message struct {
	From    int
	To      int
	Size    int64
	Payload interface{}
}

// LinkState describes the health of one directed link, as reported by the
// link hook. Factors are multipliers (>= 1) applied to the fabric's
// baseline propagation latency and serialization time; Up == false means
// the link is partitioned and messages on it are dropped.
type LinkState struct {
	Up              bool
	LatencyFactor   float64
	BandwidthFactor float64
}

// healthyLink is the state assumed when no link hook is installed.
var healthyLink = LinkState{Up: true, LatencyFactor: 1, BandwidthFactor: 1}

// Network is a switched fabric: each node owns a full-duplex NIC; a
// transfer occupies the sender's NIC for size/bandwidth and is delivered
// to the receiver's inbox after an additional propagation latency.
//
// Accounting semantics: Messages and BytesSent count fabric transfers
// only, and agree on what a message is. A local send (from == to) is a
// loopback delivery — it occupies no NIC and touches neither counter. A
// message dropped at send time (dead endpoint or partitioned link) counts
// only in Dropped; a message dropped at delivery time (the receiver died
// while it was in flight) was transmitted, so it counts in Messages,
// BytesSent, and Dropped.
type Network struct {
	Latency   sim.Time
	Bandwidth float64 // bytes/sec per NIC

	bytesSent int64
	messages  uint64
	dropped   uint64

	// Fault-injection hooks; all nil in failure-free runs, in which case
	// every path below reduces to the unconditional healthy behavior.
	aliveFn func(node int) bool
	linkFn  func(from, to int) LinkState
	dropFn  func(e *sim.Env, msg Message)
}

// NewNetwork returns a network with the given characteristics.
func NewNetwork(latency sim.Time, bandwidth float64) *Network {
	if bandwidth <= 0 {
		panic("cluster: network bandwidth must be positive")
	}
	return &Network{Latency: latency, Bandwidth: bandwidth}
}

// SetAliveFunc installs the node-liveness hook. A message whose sender or
// receiver is reported dead is dropped (see SetDropFunc). Passing nil
// restores the always-alive default.
func (nw *Network) SetAliveFunc(fn func(node int) bool) { nw.aliveFn = fn }

// SetLinkFunc installs the link-state hook, consulted once per message at
// send time. Passing nil restores the always-healthy default.
func (nw *Network) SetLinkFunc(fn func(from, to int) LinkState) { nw.linkFn = fn }

// SetDropFunc installs the drop notifier, called in scheduler context for
// every message the fabric discards so protocol layers can resolve the
// in-flight operation as a failure instead of hanging. Drops at send time
// are notified via a deferred event (letting the sender finish arming its
// completion first); drops at delivery time are notified inline.
func (nw *Network) SetDropFunc(fn func(e *sim.Env, msg Message)) { nw.dropFn = fn }

// BytesSent returns the cumulative payload bytes moved over the fabric
// (loopback sends excluded).
func (nw *Network) BytesSent() int64 { return nw.bytesSent }

// Messages returns the number of fabric messages transmitted or in flight
// (loopback sends excluded).
func (nw *Network) Messages() uint64 { return nw.messages }

// Dropped returns the number of messages discarded by the fabric because
// an endpoint was dead or the link was partitioned.
func (nw *Network) Dropped() uint64 { return nw.dropped }

// TransferTime returns the serialization time for size bytes on one NIC.
func (nw *Network) TransferTime(size int64) sim.Time {
	return sim.Seconds(float64(size) / nw.Bandwidth)
}

// nodeUp reports hook-provided liveness (no hook: always alive).
func (nw *Network) nodeUp(id int) bool { return nw.aliveFn == nil || nw.aliveFn(id) }

// linkOf returns the effective state of the directed link from -> to.
func (nw *Network) linkOf(from, to int) LinkState {
	if nw.linkFn == nil {
		return healthyLink
	}
	return nw.linkFn(from, to)
}

// scaled multiplies a duration by a link factor, preserving the exact
// baseline value on the healthy factor 1.
func scaled(t sim.Time, factor float64) sim.Time {
	if factor == 1 {
		return t
	}
	return sim.Time(float64(t) * factor)
}

// admit checks endpoint liveness and link health at send time. On failure
// it accounts the drop, schedules the drop notification, and returns
// ok == false.
func (nw *Network) admit(e *sim.Env, msg Message) (LinkState, bool) {
	ls := nw.linkOf(msg.From, msg.To)
	if ls.Up && nw.nodeUp(msg.From) && nw.nodeUp(msg.To) {
		return ls, true
	}
	nw.dropped++
	if nw.dropFn != nil {
		e.Defer(func() { nw.dropFn(e, msg) })
	}
	return ls, false
}

// deliver places a transmitted message in the receiver's inbox, unless the
// receiver died while the message was in flight, in which case the message
// is dropped and the drop notifier runs inline.
func (nw *Network) deliver(e *sim.Env, to *Node, msg Message) {
	if !nw.nodeUp(to.ID) {
		nw.dropped++
		if nw.dropFn != nil {
			nw.dropFn(e, msg)
		}
		return
	}
	to.Inbox.Send(e, msg)
}

// Send transmits payload from one node to another, blocking the calling
// process for the sender-side serialization time. Delivery into to.Inbox
// happens Latency after serialization completes. Local sends (from == to)
// are delivered immediately without occupying the NIC or touching the
// fabric counters.
func (nw *Network) Send(p *sim.Proc, from, to *Node, size int64, payload interface{}) {
	msg := Message{From: from.ID, To: to.ID, Size: size, Payload: payload}
	env := p.Env()
	if from == to {
		to.Inbox.Send(env, msg)
		return
	}
	ls, ok := nw.admit(env, msg)
	if !ok {
		return
	}
	nw.messages++
	nw.bytesSent += size
	p.Acquire(from.NIC)
	p.Wait(scaled(nw.TransferTime(size), ls.BandwidthFactor))
	from.NIC.Release(env)
	env.After(scaled(nw.Latency, ls.LatencyFactor), func() {
		nw.deliver(env, to, msg)
	})
}

// SendFunc is the callback analogue of Send: it occupies the sender's NIC
// for the serialization time, schedules delivery Latency later, and then
// calls fn — at the point where Send would have returned to the blocked
// caller. Local sends (from == to) deliver immediately and call fn inline.
// A message refused by the fabric (dead endpoint, partitioned link) still
// calls fn inline — the local send completed; the loss surfaces through
// the drop notifier. fn must not block.
func (nw *Network) SendFunc(e *sim.Env, from, to *Node, size int64, payload interface{}, fn func()) {
	msg := Message{From: from.ID, To: to.ID, Size: size, Payload: payload}
	if from == to {
		to.Inbox.Send(e, msg)
		fn()
		return
	}
	ls, ok := nw.admit(e, msg)
	if !ok {
		fn()
		return
	}
	nw.messages++
	nw.bytesSent += size
	from.NIC.UseFunc(e, scaled(nw.TransferTime(size), ls.BandwidthFactor), func(sim.Time) {
		e.After(scaled(nw.Latency, ls.LatencyFactor), func() {
			nw.deliver(e, to, msg)
		})
		fn()
	})
}

// SendAsync transmits without blocking the caller: the transfer runs as a
// callback chain — queue for the sender's NIC, occupy it for the
// serialization time, then deliver after the propagation latency — with no
// helper goroutine. Use it when the sender must continue immediately (e.g.
// forwarding while serving other requests).
func (nw *Network) SendAsync(env *sim.Env, from, to *Node, size int64, payload interface{}) {
	// The whole transfer is deferred one event so a burst of SendAsync
	// calls from a single scheduler slice contends for the NIC (and
	// delivers local messages) in the same order a burst of spawned sender
	// processes would have.
	env.Defer(func() {
		msg := Message{From: from.ID, To: to.ID, Size: size, Payload: payload}
		if from == to {
			to.Inbox.Send(env, msg)
			return
		}
		ls, ok := nw.admit(env, msg)
		if !ok {
			return
		}
		nw.messages++
		nw.bytesSent += size
		from.NIC.UseFunc(env, scaled(nw.TransferTime(size), ls.BandwidthFactor), func(sim.Time) {
			env.After(scaled(nw.Latency, ls.LatencyFactor), func() {
				nw.deliver(env, to, msg)
			})
		})
	})
}
