package cluster

import "fmt"

// Membership is the dynamic-membership overlay over a fixed slot space.
// Elastic fleets keep the slot space (and therefore the ShardMap, the
// per-slot senders, and every derived ordering key) constant for the whole
// run; what changes over virtual time is which slots are members. That
// split is the determinism argument for churn: the shard mapping stays a
// pure function of (slots, shards), join/leave only flip per-slot bits on
// the slot's owning shard, and the canonical cross-shard merge order —
// keyed by slot ID — never observes membership at all.
//
// Membership is shard-local state: under a sharded engine each shard owns
// the roster bits of its own slot range and must only touch those.
type Membership struct {
	present []bool
	count   int
	joins   int
	leaves  int
}

// NewMembership builds a roster over slots. initial marks the slots
// present at t=0; nil means all present (the static-fleet degenerate
// case, in which the roster never changes and costs nothing).
func NewMembership(slots int, initial []bool) *Membership {
	if slots < 1 {
		panic(fmt.Sprintf("cluster: membership over %d slots", slots))
	}
	if initial != nil && len(initial) != slots {
		panic(fmt.Sprintf("cluster: initial roster has %d entries for %d slots", len(initial), slots))
	}
	m := &Membership{present: make([]bool, slots)}
	for i := range m.present {
		if initial == nil || initial[i] {
			m.present[i] = true
			m.count++
		}
	}
	return m
}

// Slots returns the fixed slot-space size.
func (m *Membership) Slots() int { return len(m.present) }

// Present reports whether slot id is currently a member.
func (m *Membership) Present(id int) bool { return m.present[id] }

// Count returns the current member count. O(1).
func (m *Membership) Count() int { return m.count }

// Join marks slot id a member. Reports whether the roster changed.
func (m *Membership) Join(id int) bool {
	if m.present[id] {
		return false
	}
	m.present[id] = true
	m.count++
	m.joins++
	return true
}

// Leave removes slot id from the roster (departure or preemption).
// Reports whether the roster changed.
func (m *Membership) Leave(id int) bool {
	if !m.present[id] {
		return false
	}
	m.present[id] = false
	m.count--
	m.leaves++
	return true
}

// Joins returns the number of effective joins since construction.
func (m *Membership) Joins() int { return m.joins }

// Leaves returns the number of effective departures since construction.
func (m *Membership) Leaves() int { return m.leaves }
