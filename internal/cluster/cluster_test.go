package cluster

import (
	"fmt"
	"testing"

	"rocket/internal/gpu"
	"rocket/internal/sim"
)

func twoNodeCluster(t *testing.T) *Cluster {
	t.Helper()
	spec := NodeSpec{Cores: 16, HostCacheBytes: 40 * gpu.GiB, GPUs: []gpu.Model{gpu.TitanXMaxwell}}
	c, err := New([]NodeSpec{spec, spec}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidatesSpecs(t *testing.T) {
	_, err := New(nil, DefaultConfig())
	if err == nil {
		t.Error("empty cluster accepted")
	}
	bad := []NodeSpec{{Cores: 0, GPUs: []gpu.Model{gpu.K20m}}}
	if _, err := New(bad, DefaultConfig()); err == nil {
		t.Error("zero-core node accepted")
	}
	noGPU := []NodeSpec{{Cores: 4}}
	if _, err := New(noGPU, DefaultConfig()); err == nil {
		t.Error("GPU-less node accepted")
	}
	negMem := []NodeSpec{{Cores: 4, HostCacheBytes: -1, GPUs: []gpu.Model{gpu.K20m}}}
	if _, err := New(negMem, DefaultConfig()); err == nil {
		t.Error("negative host cache accepted")
	}
}

func TestClusterShape(t *testing.T) {
	c := twoNodeCluster(t)
	if len(c.Nodes) != 2 || c.TotalGPUs() != 2 {
		t.Fatalf("nodes=%d gpus=%d", len(c.Nodes), c.TotalGPUs())
	}
	if c.Nodes[1].Name() != "node1" {
		t.Errorf("name = %q", c.Nodes[1].Name())
	}
	if c.Nodes[0].CPU.Cap() != 16 {
		t.Errorf("CPU capacity = %d", c.Nodes[0].CPU.Cap())
	}
	if got := c.TotalSpeed(); got != 2.0 {
		t.Errorf("TotalSpeed = %v, want 2.0", got)
	}
}

func TestNetworkSendDelivers(t *testing.T) {
	c := twoNodeCluster(t)
	e := sim.NewEnv()
	var gotAt sim.Time
	var got Message
	e.Spawn("recv", func(p *sim.Proc) {
		got = p.Recv(c.Nodes[1].Inbox).(Message)
		gotAt = p.Now()
	})
	e.Spawn("send", func(p *sim.Proc) {
		c.Net.Send(p, c.Nodes[0], c.Nodes[1], 7e9, "hello") // 1s at 7 GB/s
	})
	e.Run()
	e.Close()
	if got.Payload != "hello" || got.From != 0 || got.To != 1 {
		t.Fatalf("message = %+v", got)
	}
	want := sim.Second + c.Net.Latency
	if gotAt != want {
		t.Fatalf("delivered at %v, want %v", gotAt, want)
	}
	if c.Net.BytesSent() != 7e9 {
		t.Fatalf("BytesSent = %d", c.Net.BytesSent())
	}
}

func TestNetworkLocalSendImmediate(t *testing.T) {
	c := twoNodeCluster(t)
	e := sim.NewEnv()
	e.Spawn("self", func(p *sim.Proc) {
		c.Net.Send(p, c.Nodes[0], c.Nodes[0], 1e9, "x")
		if p.Now() != 0 {
			t.Errorf("local send took %v", p.Now())
		}
		if c.Nodes[0].Inbox.Len() != 1 {
			t.Error("local message not delivered")
		}
	})
	e.Run()
	e.Close()
	if c.Net.BytesSent() != 0 {
		t.Error("local send counted as network traffic")
	}
}

func TestNetworkNICSerializes(t *testing.T) {
	c := twoNodeCluster(t)
	e := sim.NewEnv()
	var done []sim.Time
	for i := 0; i < 2; i++ {
		e.Spawn("send", func(p *sim.Proc) {
			c.Net.Send(p, c.Nodes[0], c.Nodes[1], 7e9, i)
			done = append(done, p.Now())
		})
	}
	e.Run()
	e.Close()
	if done[0] != sim.Second || done[1] != 2*sim.Second {
		t.Fatalf("send completions %v; NIC must serialize", done)
	}
}

func TestSendAsyncDoesNotBlock(t *testing.T) {
	c := twoNodeCluster(t)
	e := sim.NewEnv()
	e.Spawn("send", func(p *sim.Proc) {
		c.Net.SendAsync(p.Env(), c.Nodes[0], c.Nodes[1], 7e9, "big")
		if p.Now() != 0 {
			t.Errorf("SendAsync blocked caller until %v", p.Now())
		}
	})
	e.Spawn("recv", func(p *sim.Proc) {
		p.Recv(c.Nodes[1].Inbox)
		if p.Now() != sim.Second+c.Net.Latency {
			t.Errorf("async delivery at %v", p.Now())
		}
	})
	e.Run()
	e.Close()
}

func TestStorageAccountsAndQueues(t *testing.T) {
	s := NewStorage(0, 2e9)
	e := sim.NewEnv()
	var done []sim.Time
	for i := 0; i < 2; i++ {
		e.Spawn("reader", func(p *sim.Proc) {
			s.Read(p, 2e9) // 1s each at 2 GB/s shared
			done = append(done, p.Now())
		})
	}
	e.Run()
	e.Close()
	if done[0] != sim.Second || done[1] != 2*sim.Second {
		t.Fatalf("reads completed at %v; bandwidth must be shared", done)
	}
	if s.BytesRead() != 4e9 || s.Reads() != 2 {
		t.Fatalf("accounting: %d bytes, %d reads", s.BytesRead(), s.Reads())
	}
}

func TestStorageLatencyApplied(t *testing.T) {
	s := NewStorage(sim.Millis(1), 1e9)
	e := sim.NewEnv()
	e.Spawn("r", func(p *sim.Proc) {
		s.Read(p, 1e9)
		want := sim.Millis(1) + sim.Second
		if p.Now() != want {
			t.Errorf("read took %v, want %v", p.Now(), want)
		}
	})
	e.Run()
	e.Close()
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NetBandwidth <= 0 || cfg.StorageBandwidth <= 0 {
		t.Fatal("default bandwidths must be positive")
	}
	if cfg.NetLatency <= 0 {
		t.Fatal("default latency must be positive")
	}
}

func TestSendFuncMirrorsBlockingSend(t *testing.T) {
	c := twoNodeCluster(t)
	e := sim.NewEnv()
	var returned, delivered sim.Time
	e.At(0, func() {
		c.Net.SendFunc(e, c.Nodes[0], c.Nodes[1], 7e9, "big", func() {
			returned = e.Now()
		})
	})
	e.Spawn("recv", func(p *sim.Proc) {
		p.Recv(c.Nodes[1].Inbox)
		delivered = p.Now()
	})
	e.Run()
	e.Close()
	if returned != sim.Second {
		t.Errorf("SendFunc continuation at %v, want 1s (after serialization)", returned)
	}
	if delivered != sim.Second+c.Net.Latency {
		t.Errorf("delivery at %v, want 1s + latency", delivered)
	}
}

func TestSendFuncLocalInline(t *testing.T) {
	c := twoNodeCluster(t)
	e := sim.NewEnv()
	ran := false
	c.Net.SendFunc(e, c.Nodes[0], c.Nodes[0], 123, "x", func() { ran = true })
	if !ran {
		t.Fatal("local SendFunc must call fn inline")
	}
	if c.Nodes[0].Inbox.Len() != 1 {
		t.Fatal("local SendFunc did not deliver")
	}
	if c.Net.BytesSent() != 0 {
		t.Fatal("local send accounted network bytes")
	}
	e.Close()
}

func TestStorageReadFuncMatchesRead(t *testing.T) {
	run := func(callback bool) []sim.Time {
		s := NewStorage(sim.Millis(1), 2e9)
		e := sim.NewEnv()
		var done []sim.Time
		for i := 0; i < 3; i++ {
			if callback {
				s.ReadFunc(e, 2e9, func() { done = append(done, e.Now()) })
			} else {
				e.Spawn("r", func(p *sim.Proc) {
					s.Read(p, 2e9)
					done = append(done, p.Now())
				})
			}
		}
		e.Run()
		e.Close()
		return done
	}
	procs, cbs := run(false), run(true)
	if fmt.Sprint(procs) != fmt.Sprint(cbs) {
		t.Fatalf("Read %v vs ReadFunc %v: completion times must match", procs, cbs)
	}
	if len(cbs) != 3 || cbs[2] != sim.Millis(1)+3*sim.Second {
		t.Fatalf("shared-bandwidth queueing broken: %v", cbs)
	}
}

// The message and byte counters must agree on what a "message" is: fabric
// transfers only. Loopback sends (from == to) touch neither counter, over
// every send variant.
func TestNetworkCountersAgreeOnLocalSends(t *testing.T) {
	c := twoNodeCluster(t)
	e := sim.NewEnv()
	e.Spawn("local", func(p *sim.Proc) {
		c.Net.Send(p, c.Nodes[0], c.Nodes[0], 1e6, "a")
	})
	c.Net.SendFunc(e, c.Nodes[0], c.Nodes[0], 1e6, "b", func() {})
	c.Net.SendAsync(e, c.Nodes[0], c.Nodes[0], 1e6, "c")
	e.Run()
	if c.Net.Messages() != 0 || c.Net.BytesSent() != 0 {
		t.Fatalf("loopback counted: messages=%d bytes=%d, want 0/0",
			c.Net.Messages(), c.Net.BytesSent())
	}
	e.Spawn("remote", func(p *sim.Proc) {
		c.Net.Send(p, c.Nodes[0], c.Nodes[1], 1e6, "d")
	})
	c.Net.SendFunc(e, c.Nodes[0], c.Nodes[1], 2e6, "e", func() {})
	c.Net.SendAsync(e, c.Nodes[0], c.Nodes[1], 3e6, "f")
	e.Run()
	e.Close()
	if c.Net.Messages() != 3 || c.Net.BytesSent() != 6e6 {
		t.Fatalf("fabric accounting: messages=%d bytes=%d, want 3/6e6",
			c.Net.Messages(), c.Net.BytesSent())
	}
	if c.Nodes[0].Inbox.Len() != 3 || c.Nodes[1].Inbox.Len() != 3 {
		t.Fatalf("deliveries: local=%d remote=%d, want 3/3",
			c.Nodes[0].Inbox.Len(), c.Nodes[1].Inbox.Len())
	}
}

func TestNetworkDropsToDeadNode(t *testing.T) {
	c := twoNodeCluster(t)
	e := sim.NewEnv()
	alive := []bool{true, false}
	var drops []Message
	c.Net.SetAliveFunc(func(n int) bool { return alive[n] })
	c.Net.SetDropFunc(func(_ *sim.Env, m Message) { drops = append(drops, m) })
	c.Net.SendAsync(e, c.Nodes[0], c.Nodes[1], 1e6, "lost")
	e.Run()
	if len(drops) != 1 || drops[0].Payload != "lost" {
		t.Fatalf("drops = %+v", drops)
	}
	if c.Net.Dropped() != 1 || c.Net.Messages() != 0 || c.Net.BytesSent() != 0 {
		t.Fatalf("send-time drop accounting: dropped=%d messages=%d bytes=%d",
			c.Net.Dropped(), c.Net.Messages(), c.Net.BytesSent())
	}
	if c.Nodes[1].Inbox.Len() != 0 {
		t.Fatal("message delivered to dead node")
	}
	e.Close()
}

func TestNetworkDropsInFlightWhenReceiverDies(t *testing.T) {
	c := twoNodeCluster(t)
	e := sim.NewEnv()
	alive := []bool{true, true}
	var drops int
	c.Net.SetAliveFunc(func(n int) bool { return alive[n] })
	c.Net.SetDropFunc(func(_ *sim.Env, m Message) { drops++ })
	c.Net.SendAsync(e, c.Nodes[0], c.Nodes[1], 7e9, "in-flight") // 1s serialization
	e.At(sim.Millis(500), func() { alive[1] = false })           // dies mid-transfer
	e.Run()
	e.Close()
	if drops != 1 || c.Net.Dropped() != 1 {
		t.Fatalf("in-flight drop not notified: drops=%d", drops)
	}
	// The transfer was transmitted, so it stays in the fabric counters.
	if c.Net.Messages() != 1 || c.Net.BytesSent() != 7e9 {
		t.Fatalf("messages=%d bytes=%d", c.Net.Messages(), c.Net.BytesSent())
	}
	if c.Nodes[1].Inbox.Len() != 0 {
		t.Fatal("message delivered after death")
	}
}

func TestNetworkLinkPartitionAndDegradation(t *testing.T) {
	c := twoNodeCluster(t)
	e := sim.NewEnv()
	state := LinkState{Up: false, LatencyFactor: 1, BandwidthFactor: 1}
	c.Net.SetLinkFunc(func(from, to int) LinkState { return state })
	var drops int
	c.Net.SetDropFunc(func(_ *sim.Env, m Message) { drops++ })
	c.Net.SendAsync(e, c.Nodes[0], c.Nodes[1], 1e6, "cut")
	e.Run()
	if drops != 1 {
		t.Fatalf("partitioned link delivered: drops=%d", drops)
	}
	// Degraded: 2x latency, 4x serialization.
	state = LinkState{Up: true, LatencyFactor: 2, BandwidthFactor: 4}
	var gotAt sim.Time
	e.Spawn("recv", func(p *sim.Proc) {
		p.Recv(c.Nodes[1].Inbox)
		gotAt = p.Now()
	})
	c.Net.SendAsync(e, c.Nodes[0], c.Nodes[1], 7e9, "slow") // 1s healthy
	e.Run()
	e.Close()
	want := 4*sim.Second + 2*c.Net.Latency
	if gotAt != want {
		t.Fatalf("degraded delivery at %v, want %v", gotAt, want)
	}
}
