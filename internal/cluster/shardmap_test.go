package cluster

import (
	"testing"

	"rocket/internal/sim"
)

func TestShardMapContiguousAndComplete(t *testing.T) {
	for _, tc := range []struct{ nodes, shards int }{
		{10, 1}, {10, 3}, {10, 4}, {10, 10}, {1024, 8}, {7, 16},
	} {
		m := NewShardMap(tc.nodes, tc.shards)
		prev := -1
		covered := 0
		for s := 0; s < m.NumShards(); s++ {
			lo, hi := m.Range(s)
			if lo != prev+1 && lo != hi {
				// empty ranges allowed only when shards were clamped
			}
			for i := lo; i < hi; i++ {
				if m.ShardOf(i) != s {
					t.Fatalf("nodes=%d shards=%d: ShardOf(%d) = %d, Range says %d",
						tc.nodes, tc.shards, i, m.ShardOf(i), s)
				}
				covered++
			}
			if hi > lo {
				prev = hi - 1
			}
		}
		if covered != tc.nodes {
			t.Fatalf("nodes=%d shards=%d: ranges cover %d nodes", tc.nodes, tc.shards, covered)
		}
		// Contiguity: ShardOf is monotone.
		for i := 1; i < tc.nodes; i++ {
			if m.ShardOf(i) < m.ShardOf(i-1) {
				t.Fatalf("nodes=%d shards=%d: ShardOf not monotone at %d", tc.nodes, tc.shards, i)
			}
		}
	}
	if NewShardMap(4, 9).NumShards() != 4 {
		t.Fatal("shards not clamped to node count")
	}
	if NewShardMap(4, 0).NumShards() != 1 {
		t.Fatal("shards not clamped to 1")
	}
}

func TestShardedNetDeliveryTiming(t *testing.T) {
	env := sim.NewEnv(sim.WithShards(2), sim.WithLookahead(sim.Micros(5)))
	ss := env.Sharded()
	m := NewShardMap(4, 2)
	sn := NewShardedNet(ss, m, sim.Micros(5), 1e9)
	var at sim.Time
	// 1000 bytes at 1 GB/s = 1us serialization + 5us latency.
	env.Defer(func() {
		sn.Send(env, 0, 3, 1000, func(de *sim.Env) { at = de.Now() })
	})
	env.Run()
	if want := sim.Micros(6); at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	if sn.Messages() != 1 || sn.BytesSent() != 1000 || sn.Dropped() != 0 {
		t.Fatalf("counters: msgs=%d bytes=%d dropped=%d", sn.Messages(), sn.BytesSent(), sn.Dropped())
	}
	env.Close()
}

func TestShardedNetNICSerialization(t *testing.T) {
	env := sim.NewEnv(sim.WithShards(2), sim.WithLookahead(sim.Micros(5)))
	ss := env.Sharded()
	m := NewShardMap(2, 2)
	sn := NewShardedNet(ss, m, sim.Micros(5), 1e9)
	var ats []sim.Time
	env.Defer(func() {
		// Two back-to-back sends queue on node 0's NIC: departures at 1us
		// and 2us, deliveries at 6us and 7us.
		sn.Send(env, 0, 1, 1000, func(de *sim.Env) { ats = append(ats, de.Now()) })
		sn.Send(env, 0, 1, 1000, func(de *sim.Env) { ats = append(ats, de.Now()) })
	})
	env.Run()
	if len(ats) != 2 || ats[0] != sim.Micros(6) || ats[1] != sim.Micros(7) {
		t.Fatalf("deliveries at %v, want [6us 7us]", ats)
	}
	env.Close()
}

func TestShardedNetLiveness(t *testing.T) {
	env := sim.NewEnv(sim.WithShards(2), sim.WithLookahead(sim.Micros(5)))
	ss := env.Sharded()
	m := NewShardMap(2, 2)
	sn := NewShardedNet(ss, m, sim.Micros(5), 1e9)
	dead := map[int]bool{}
	sn.SetAliveFunc(func(n int) bool { return !dead[n] })
	ran := 0
	env.Defer(func() {
		dead[0] = true
		sn.Send(env, 0, 1, 100, func(*sim.Env) { ran++ }) // refused at send
		dead[0] = false
		sn.Send(env, 0, 1, 100, func(*sim.Env) { ran++ }) // transmitted...
		dead[1] = true                                    // ...but receiver dies before delivery
	})
	env.Run()
	if ran != 0 {
		t.Fatalf("%d dropped messages ran their delivery fn", ran)
	}
	if sn.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", sn.Dropped())
	}
	if sn.Messages() != 1 {
		t.Fatalf("Messages = %d, want 1 (send-time refusal not transmitted)", sn.Messages())
	}
	env.Close()
}

func TestShardedNetLatencyBelowLookaheadPanics(t *testing.T) {
	env := sim.NewEnv(sim.WithShards(2), sim.WithLookahead(sim.Micros(10)))
	defer env.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("latency below lookahead accepted")
		}
	}()
	NewShardedNet(env.Sharded(), NewShardMap(2, 2), sim.Micros(5), 1e9)
}
