package cluster

import (
	"testing"

	"rocket/internal/gpu"
	"rocket/internal/sim"
)

func TestShardMapContiguousAndComplete(t *testing.T) {
	for _, tc := range []struct{ nodes, shards int }{
		{10, 1}, {10, 3}, {10, 4}, {10, 10}, {1024, 8}, {7, 16},
	} {
		m := NewShardMap(tc.nodes, tc.shards)
		prev := -1
		covered := 0
		for s := 0; s < m.NumShards(); s++ {
			lo, hi := m.Range(s)
			if lo != prev+1 && lo != hi {
				// empty ranges allowed only when shards were clamped
			}
			for i := lo; i < hi; i++ {
				if m.ShardOf(i) != s {
					t.Fatalf("nodes=%d shards=%d: ShardOf(%d) = %d, Range says %d",
						tc.nodes, tc.shards, i, m.ShardOf(i), s)
				}
				covered++
			}
			if hi > lo {
				prev = hi - 1
			}
		}
		if covered != tc.nodes {
			t.Fatalf("nodes=%d shards=%d: ranges cover %d nodes", tc.nodes, tc.shards, covered)
		}
		// Contiguity: ShardOf is monotone.
		for i := 1; i < tc.nodes; i++ {
			if m.ShardOf(i) < m.ShardOf(i-1) {
				t.Fatalf("nodes=%d shards=%d: ShardOf not monotone at %d", tc.nodes, tc.shards, i)
			}
		}
	}
	if NewShardMap(4, 9).NumShards() != 4 {
		t.Fatal("shards not clamped to node count")
	}
	if NewShardMap(4, 0).NumShards() != 1 {
		t.Fatal("shards not clamped to 1")
	}
}

func TestShardedNetDeliveryTiming(t *testing.T) {
	env := sim.NewEnv(sim.WithShards(2), sim.WithLookahead(sim.Micros(5)))
	ss := env.Sharded()
	m := NewShardMap(4, 2)
	sn := NewShardedNet(ss, m, sim.Micros(5), 1e9)
	var at sim.Time
	// 1000 bytes at 1 GB/s = 1us serialization + 5us latency.
	env.Defer(func() {
		sn.Send(env, 0, 3, 1000, func(de *sim.Env) { at = de.Now() })
	})
	env.Run()
	if want := sim.Micros(6); at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	if sn.Messages() != 1 || sn.BytesSent() != 1000 || sn.Dropped() != 0 {
		t.Fatalf("counters: msgs=%d bytes=%d dropped=%d", sn.Messages(), sn.BytesSent(), sn.Dropped())
	}
	env.Close()
}

func TestShardedNetNICSerialization(t *testing.T) {
	env := sim.NewEnv(sim.WithShards(2), sim.WithLookahead(sim.Micros(5)))
	ss := env.Sharded()
	m := NewShardMap(2, 2)
	sn := NewShardedNet(ss, m, sim.Micros(5), 1e9)
	var ats []sim.Time
	env.Defer(func() {
		// Two back-to-back sends queue on node 0's NIC: departures at 1us
		// and 2us, deliveries at 6us and 7us.
		sn.Send(env, 0, 1, 1000, func(de *sim.Env) { ats = append(ats, de.Now()) })
		sn.Send(env, 0, 1, 1000, func(de *sim.Env) { ats = append(ats, de.Now()) })
	})
	env.Run()
	if len(ats) != 2 || ats[0] != sim.Micros(6) || ats[1] != sim.Micros(7) {
		t.Fatalf("deliveries at %v, want [6us 7us]", ats)
	}
	env.Close()
}

func TestShardedNetLiveness(t *testing.T) {
	env := sim.NewEnv(sim.WithShards(2), sim.WithLookahead(sim.Micros(5)))
	ss := env.Sharded()
	m := NewShardMap(2, 2)
	sn := NewShardedNet(ss, m, sim.Micros(5), 1e9)
	dead := map[int]bool{}
	sn.SetAliveFunc(func(n int) bool { return !dead[n] })
	ran := 0
	env.Defer(func() {
		dead[0] = true
		sn.Send(env, 0, 1, 100, func(*sim.Env) { ran++ }) // refused at send
		dead[0] = false
		sn.Send(env, 0, 1, 100, func(*sim.Env) { ran++ }) // transmitted...
		dead[1] = true                                    // ...but receiver dies before delivery
	})
	env.Run()
	if ran != 0 {
		t.Fatalf("%d dropped messages ran their delivery fn", ran)
	}
	if sn.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", sn.Dropped())
	}
	if sn.Messages() != 1 {
		t.Fatalf("Messages = %d, want 1 (send-time refusal not transmitted)", sn.Messages())
	}
	env.Close()
}

func TestShardedNetLatencyBelowLookaheadPanics(t *testing.T) {
	env := sim.NewEnv(sim.WithShards(2), sim.WithLookahead(sim.Micros(10)))
	defer env.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("latency below lookahead accepted")
		}
	}()
	NewShardedNet(env.Sharded(), NewShardMap(2, 2), sim.Micros(5), 1e9)
}

// TestShardMapChurnInvariants pins the rebalancing edge cases of the
// dynamic-membership design: the slot space (and therefore ShardOf) is
// fixed for the run, so "join into a full shard" and "departure of a
// shard's last node" must not move any assignment — churn is a membership
// overlay, never a remap.
func TestShardMapChurnInvariants(t *testing.T) {
	const nodes = 16
	for _, width := range []int{1, 2, 4, 8} {
		m := NewShardMap(nodes, width)

		// Join into a full shard: every slot of shard 0's range becomes a
		// member, then one more joiner lands in that range. Its shard is
		// decided by ShardOf alone and every prior assignment is unchanged.
		lo, hi := m.Range(0)
		roster := NewMembership(nodes, make([]bool, nodes))
		for i := lo; i < hi; i++ {
			roster.Join(i)
		}
		before := make([]int, nodes)
		for i := 0; i < nodes; i++ {
			before[i] = m.ShardOf(i)
		}
		joiner := lo // rejoin of a full shard's own slot
		if !roster.Present(joiner) {
			t.Fatalf("width %d: slot %d should be present", width, joiner)
		}
		for i := 0; i < nodes; i++ {
			if m.ShardOf(i) != before[i] {
				t.Fatalf("width %d: join moved node %d from shard %d to %d",
					width, i, before[i], m.ShardOf(i))
			}
		}

		// Departure of a shard's last node: empty shard 0 entirely. The
		// shard still owns its range — ShardOf and Range are membership-
		// blind, so in-flight sends keyed by slot ID still merge in the
		// same canonical order.
		for i := lo; i < hi; i++ {
			roster.Leave(i)
		}
		for i := lo; i < hi; i++ {
			if got := m.ShardOf(i); got != 0 {
				t.Fatalf("width %d: empty shard lost slot %d to shard %d", width, i, got)
			}
		}
		rlo, rhi := m.Range(0)
		if rlo != lo || rhi != hi {
			t.Fatalf("width %d: empty shard range moved to [%d,%d)", width, rlo, rhi)
		}
		if roster.Leaves() != hi-lo || roster.Count() != 0 {
			t.Fatalf("width %d: roster leaves=%d count=%d", width, roster.Leaves(), roster.Count())
		}
	}
}

// TestShardMapDeterministicAcrossWidths pins that the assignment at every
// width is the same pure function of (nodes, shards) on every call, that
// ranges partition the slot space, and that ShardOf agrees with Range —
// the properties the byte-identical-across-widths guarantee leans on.
func TestShardMapDeterministicAcrossWidths(t *testing.T) {
	for _, nodes := range []int{1, 2, 5, 16, 33} {
		for _, width := range []int{1, 2, 4, 8} {
			m1 := NewShardMap(nodes, width)
			m2 := NewShardMap(nodes, width)
			covered := 0
			for s := 0; s < m1.NumShards(); s++ {
				lo, hi := m1.Range(s)
				if lo2, hi2 := m2.Range(s); lo2 != lo || hi2 != hi {
					t.Fatalf("nodes=%d width=%d: range(%d) not deterministic", nodes, width, s)
				}
				if hi < lo {
					t.Fatalf("nodes=%d width=%d: inverted range [%d,%d)", nodes, width, lo, hi)
				}
				covered += hi - lo
				for i := lo; i < hi; i++ {
					if got := m1.ShardOf(i); got != s {
						t.Fatalf("nodes=%d width=%d: ShardOf(%d)=%d, Range says %d",
							nodes, width, i, got, s)
					}
				}
			}
			if covered != nodes {
				t.Fatalf("nodes=%d width=%d: ranges cover %d slots", nodes, width, covered)
			}
			// Monotone: contiguous blocks mean a node's shard never
			// decreases as IDs grow.
			for i := 1; i < nodes; i++ {
				if m1.ShardOf(i) < m1.ShardOf(i-1) {
					t.Fatalf("nodes=%d width=%d: ShardOf not monotone at %d", nodes, width, i)
				}
			}
		}
	}
}

func TestMembershipRoster(t *testing.T) {
	m := NewMembership(4, []bool{true, true, false, false})
	if m.Count() != 2 || !m.Present(0) || m.Present(2) {
		t.Fatalf("initial roster wrong: count=%d", m.Count())
	}
	if !m.Join(2) || m.Join(2) {
		t.Fatal("join must flip once")
	}
	if !m.Leave(0) || m.Leave(0) {
		t.Fatal("leave must flip once")
	}
	if m.Count() != 2 || m.Joins() != 1 || m.Leaves() != 1 {
		t.Fatalf("count=%d joins=%d leaves=%d", m.Count(), m.Joins(), m.Leaves())
	}
	if NewMembership(3, nil).Count() != 3 {
		t.Fatal("nil initial roster must mean all present")
	}
}

func TestClusterAddNodeMaintainsAggregates(t *testing.T) {
	c, err := New([]NodeSpec{NodeSpec{Cores: 16, HostCacheBytes: 1 << 30, GPUs: []gpu.Model{gpu.TitanXMaxwell}}, NodeSpec{Cores: 16, HostCacheBytes: 1 << 30, GPUs: []gpu.Model{gpu.TitanXMaxwell}}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g0, s0 := c.TotalGPUs(), c.TotalSpeed()
	n, err := c.AddNode(NodeSpec{Cores: 16, HostCacheBytes: 1 << 30, GPUs: []gpu.Model{gpu.TitanXMaxwell}})
	if err != nil {
		t.Fatal(err)
	}
	if n.ID != 2 || c.Node(2) != n {
		t.Fatalf("AddNode gave ID %d; Node(2)=%p want %p", n.ID, c.Node(2), n)
	}
	if c.TotalGPUs() != g0+len(n.GPUs) {
		t.Fatalf("TotalGPUs=%d after join, want %d", c.TotalGPUs(), g0+len(n.GPUs))
	}
	if c.TotalSpeed() <= s0 {
		t.Fatalf("TotalSpeed=%v did not grow from %v", c.TotalSpeed(), s0)
	}
	if c.Node(-1) != nil || c.Node(99) != nil {
		t.Fatal("out-of-range lookup must return nil")
	}
}
