package dht

import (
	"testing"
	"testing/quick"

	"rocket/internal/sim"
	"rocket/internal/stats"
)

// harness wires n engines together over a toy message fabric with a fixed
// per-message delay, and tracks per-node item holdings and message counts.
type harness struct {
	env      *sim.Env
	engines  []*Engine
	inboxes  []*sim.Mailbox
	holdings []map[int]interface{}
	messages int
	// alive models node liveness; entries flipped to false make the fabric
	// swallow messages to that node (it "never responds"). withLiveness
	// additionally exposes the state to the engines via Config.Alive.
	alive []bool
}

func newHarness(t *testing.T, n, hops int) *harness {
	return buildHarness(t, n, hops, false)
}

// withLiveness builds a harness whose engines route around nodes marked
// dead in h.alive.
func withLiveness(t *testing.T, n, hops int) *harness {
	return buildHarness(t, n, hops, true)
}

func buildHarness(t *testing.T, n, hops int, liveness bool) *harness {
	t.Helper()
	h := &harness{env: sim.NewEnv()}
	h.inboxes = make([]*sim.Mailbox, n)
	h.holdings = make([]map[int]interface{}, n)
	h.engines = make([]*Engine, n)
	h.alive = make([]bool, n)
	for i := 0; i < n; i++ {
		h.inboxes[i] = sim.NewMailbox("inbox")
		h.holdings[i] = make(map[int]interface{})
		h.alive[i] = true
	}
	var aliveFn AliveFunc
	if liveness {
		aliveFn = func(node int) bool { return h.alive[node] }
	}
	for i := 0; i < n; i++ {
		i := i
		eng, err := New(Config{
			NodeID:   i,
			NumNodes: n,
			Hops:     hops,
			CtrlSize: 100,
			DataSize: 1 << 20,
			Alive:    aliveFn,
			Send: func(e *sim.Env, to int, size int64, payload interface{}) {
				h.messages++
				if !h.alive[to] {
					return // dead receiver: the fabric swallows the message
				}
				h.env.After(sim.Micros(5), func() {
					h.inboxes[to].Send(h.env, payload)
				})
			},
			Lookup: func(item int) (interface{}, bool) {
				v, ok := h.holdings[i][item]
				return v, ok
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		h.engines[i] = eng
		h.env.Spawn("server", func(p *sim.Proc) {
			for {
				msg := p.Recv(h.inboxes[i])
				if !h.engines[i].Handle(p.Env(), msg) {
					t.Errorf("node %d: unhandled message %v", i, msg)
				}
			}
		})
	}
	return h
}

// fetch runs a Fetch from the given node inside the simulation and returns
// the outcome.
func (h *harness) fetch(node, item int) (data interface{}, hop int, ok bool) {
	h.env.Spawn("client", func(p *sim.Proc) {
		data, hop, ok = h.engines[node].Fetch(p, item)
	})
	h.env.Run()
	return data, hop, ok
}

func TestConfigValidation(t *testing.T) {
	send := func(*sim.Env, int, int64, interface{}) {}
	lookup := func(int) (interface{}, bool) { return nil, false }
	bad := []Config{
		{NodeID: 0, NumNodes: 0, Hops: 1, Send: send, Lookup: lookup},
		{NodeID: 5, NumNodes: 2, Hops: 1, Send: send, Lookup: lookup},
		{NodeID: 0, NumNodes: 2, Hops: 0, Send: send, Lookup: lookup},
		{NodeID: 0, NumNodes: 2, Hops: 1, Lookup: lookup},
		{NodeID: 0, NumNodes: 2, Hops: 1, Send: send},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestMissWithNoCandidates(t *testing.T) {
	h := newHarness(t, 4, 3)
	defer h.env.Close()
	_, _, ok := h.fetch(0, 7) // mediator is node 3; nobody requested before
	if ok {
		t.Fatal("fetch succeeded with no candidates")
	}
	m := h.engines[0].Metrics()
	if m.Requests != 1 || m.Misses != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	// Exactly 2 messages: request + failure reply.
	if h.messages != 2 {
		t.Fatalf("messages = %d, want 2", h.messages)
	}
}

func TestHitAtFirstHop(t *testing.T) {
	h := newHarness(t, 4, 3)
	defer h.env.Close()
	const item = 5 // mediator = 1
	// Node 2 requests first (miss) — this registers node 2 as a candidate.
	if _, _, ok := h.fetch(2, item); ok {
		t.Fatal("first fetch should miss")
	}
	// Node 2 now holds the item (it loaded it after the miss).
	h.holdings[2][item] = "payload"
	h.messages = 0
	data, hop, ok := h.fetch(0, item)
	if !ok || hop != 1 || data != "payload" {
		t.Fatalf("fetch = %v, %d, %v; want hit at hop 1", data, hop, ok)
	}
	// request + forward + data reply = 3 messages = h' + 2 with h' = 1 hop used.
	if h.messages != 3 {
		t.Fatalf("messages = %d, want 3", h.messages)
	}
	m := h.engines[0].Metrics()
	if m.HitAtHop[0] != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestHitAtSecondHop(t *testing.T) {
	h := newHarness(t, 5, 3)
	defer h.env.Close()
	const item = 10 // mediator = 0
	// Two prior requesters: 3 then 4; candidate order becomes [4, 3].
	h.fetch(3, item)
	h.fetch(4, item)
	// Only node 3 (second candidate) holds the item.
	h.holdings[3][item] = "x"
	data, hop, ok := h.fetch(1, item)
	if !ok || hop != 2 || data != "x" {
		t.Fatalf("fetch = %v, %d, %v; want hit at hop 2", data, hop, ok)
	}
	if m := h.engines[1].Metrics(); m.HitAtHop[1] != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestMissAfterExhaustingChain(t *testing.T) {
	h := newHarness(t, 6, 2)
	defer h.env.Close()
	const item = 12 // mediator = 0
	// Three prior requesters; with h=2 only the 2 most recent are kept.
	h.fetch(1, item)
	h.fetch(2, item)
	h.fetch(3, item)
	// Node 1 holds it, but it fell off the candidate list ([3, 2]).
	h.holdings[1][item] = "lost"
	h.messages = 0
	_, _, ok := h.fetch(4, item)
	if ok {
		t.Fatal("fetch found item outside candidate list")
	}
	// request + forward + forward + failure = h + 2 = 4 messages.
	if h.messages != 4 {
		t.Fatalf("messages = %d, want h+2 = 4", h.messages)
	}
}

func TestCandidateListBoundedAndDeduplicated(t *testing.T) {
	h := newHarness(t, 8, 3)
	defer h.env.Close()
	const item = 16 // mediator = 0
	for _, requester := range []int{1, 2, 3, 4, 2, 5} {
		h.fetch(requester, item)
	}
	got := h.engines[0].CandidateList(item)
	want := []int{5, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

func TestSelfMediatorAndSelfCandidate(t *testing.T) {
	h := newHarness(t, 3, 2)
	defer h.env.Close()
	const item = 3 // mediator = node 0
	// Node 0 requests an item it mediates itself.
	if _, _, ok := h.fetch(0, item); ok {
		t.Fatal("should miss")
	}
	// Now node 0 is its own candidate; a new request from node 0 visits
	// itself. It holds the item now, so it "fetches" from itself — the
	// paper notes this is harmless.
	h.holdings[0][item] = "self"
	data, hop, ok := h.fetch(0, item)
	if !ok || hop != 1 || data != "self" {
		t.Fatalf("self-fetch = %v, %d, %v", data, hop, ok)
	}
}

func TestWrongMediatorPanics(t *testing.T) {
	eng, err := New(Config{
		NodeID: 1, NumNodes: 4, Hops: 1, CtrlSize: 1, DataSize: 1,
		Send:   func(*sim.Env, int, int64, interface{}) {},
		Lookup: func(int) (interface{}, bool) { return nil, false },
	})
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEnv()
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for misrouted request")
		}
	}()
	e.Spawn("x", func(p *sim.Proc) {
		eng.Handle(p.Env(), Request{ID: 1, Item: 8, Requester: 0}) // 8 mod 4 = 0, not 1
	})
	e.Run()
}

func TestUnknownPayloadIgnored(t *testing.T) {
	h := newHarness(t, 2, 1)
	defer h.env.Close()
	handled := true
	h.env.Spawn("x", func(p *sim.Proc) {
		handled = h.engines[0].Handle(p.Env(), "not a dht message")
	})
	h.env.Run()
	if handled {
		t.Fatal("non-DHT payload reported as handled")
	}
}

// Property: for random holdings and request sequences, every fetch
// terminates with at most h+2 messages, candidate lists stay bounded by h,
// and a reported hit implies some node actually held the item.
func TestQuickProtocolBounds(t *testing.T) {
	f := func(seed uint64, nRaw, hRaw, opsRaw uint8) bool {
		n := int(nRaw%6) + 2
		hops := int(hRaw%3) + 1
		ops := int(opsRaw%30) + 5
		rng := stats.NewRNG(seed)
		var tt testing.T
		h := newHarness(&tt, n, hops)
		defer h.env.Close()
		ok := true
		for k := 0; k < ops; k++ {
			item := rng.Intn(n * 3)
			node := rng.Intn(n)
			if rng.Intn(2) == 0 {
				h.holdings[node][item] = item
			}
			before := h.messages
			_, _, hit := h.fetch(node, item)
			if h.messages-before > hops+2 {
				ok = false
			}
			if hit {
				found := false
				for _, hold := range h.holdings {
					if _, has := hold[item]; has {
						found = true
					}
				}
				if !found {
					ok = false
				}
			}
			med := item % n
			if len(h.engines[med].CandidateList(item)) > hops {
				ok = false
			}
		}
		return ok && !tt.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// fetchFunc runs a callback-style lookup and returns the outcome after the
// protocol completes.
func (h *harness) fetchFunc(node, item int) (data interface{}, hop int, ok bool) {
	h.engines[node].FetchFunc(h.env, item, func(d interface{}, hp int, o bool) {
		data, hop, ok = d, hp, o
	})
	h.env.Run()
	return data, hop, ok
}

func TestFetchFuncMatchesFetch(t *testing.T) {
	build := func() *harness {
		h := newHarness(t, 4, 2)
		h.holdings[1][5] = "payload" // item 5 mediated by node 1
		return h
	}
	// Prime both the same way: a first fetch from node 1 registers it as a
	// candidate, so the second fetch (from node 0) hits at hop 1.
	hp := build()
	hp.fetch(1, 5)
	d1, hop1, ok1 := hp.fetch(0, 5)
	m1 := hp.engines[0].Metrics()
	msgs1 := hp.messages
	hp.env.Close()

	hf := build()
	hf.fetchFunc(1, 5)
	d2, hop2, ok2 := hf.fetchFunc(0, 5)
	m2 := hf.engines[0].Metrics()
	msgs2 := hf.messages
	hf.env.Close()

	if d1 != d2 || hop1 != hop2 || ok1 != ok2 {
		t.Fatalf("Fetch (%v,%d,%v) vs FetchFunc (%v,%d,%v)", d1, hop1, ok1, d2, hop2, ok2)
	}
	if !ok2 || d2 != "payload" {
		t.Fatalf("lookup failed: %v %v", d2, ok2)
	}
	if m1.Requests != m2.Requests || m1.Misses != m2.Misses || msgs1 != msgs2 {
		t.Fatalf("metrics diverge: %+v/%d vs %+v/%d", m1, msgs1, m2, msgs2)
	}
}

// Satellite: a duplicate (stale) Reply for an already-resolved pending ID
// must be counted and dropped, not panic.
func TestStaleReplyIsCountedNotFatal(t *testing.T) {
	h := newHarness(t, 4, 2)
	defer h.env.Close()
	const item = 7 // mediator = 3
	if _, _, ok := h.fetch(0, item); ok {
		t.Fatal("first fetch should miss")
	}
	// Replay the failure reply for the already-resolved request ID 1, twice.
	for i := 0; i < 2; i++ {
		if !h.engines[0].Handle(h.env, Reply{ID: 1, Item: item}) {
			t.Fatal("stale reply not recognized as a DHT message")
		}
	}
	h.env.Run()
	m := h.engines[0].Metrics()
	if m.StaleReplies != 2 {
		t.Fatalf("StaleReplies = %d, want 2", m.StaleReplies)
	}
	if m.Requests != 1 || m.Misses != 1 {
		t.Fatalf("stale replies perturbed outcome counters: %+v", m)
	}
}

// Satellite: a reply for an ID that was never issued (e.g. addressed to a
// node that crashed and restarted, losing its pending table) is stale too.
func TestReplyAfterRestartLostPendingTable(t *testing.T) {
	h := newHarness(t, 2, 1)
	defer h.env.Close()
	h.engines[0].Handle(h.env, Reply{ID: 99, Item: 0, Hit: true, Data: "late"})
	h.env.Run()
	if m := h.engines[0].Metrics(); m.StaleReplies != 1 {
		t.Fatalf("StaleReplies = %d, want 1", m.StaleReplies)
	}
}

// Satellite: the mediator's candidate list references a node that never
// responds (dead). Without liveness routing the fetch would hang on the
// swallowed Forward; FailPending resolves it as a miss, the way the core
// runtime reacts to a fabric drop notification.
func TestFailPendingResolvesDroppedLookup(t *testing.T) {
	h := newHarness(t, 4, 2)
	defer h.env.Close()
	const item = 5     // mediator = 1
	h.fetch(2, item)   // register node 2 as a candidate
	h.alive[2] = false // node 2 dies and will never respond
	h.holdings[2][item] = "unreachable"
	var data interface{}
	var ok, resolved bool
	h.engines[0].FetchFunc(h.env, item, func(d interface{}, hp int, o bool) {
		data, ok, resolved = d, o, true
	})
	h.env.Run() // forward to node 2 swallowed; fetch still pending
	if resolved {
		t.Fatal("fetch resolved without a reply")
	}
	h.engines[0].FailPending(h.env, 1)
	h.env.Run()
	if !resolved || ok || data != nil {
		t.Fatalf("FailPending outcome = (%v, %v, resolved=%v); want miss", data, ok, resolved)
	}
	if m := h.engines[0].Metrics(); m.Misses != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	// Unknown IDs are ignored.
	h.engines[0].FailPending(h.env, 12345)
}

// With liveness routing, the mediator skips the dead candidate entirely:
// the walk visits only live nodes and a hit is still found behind the dead
// entry in the list.
func TestMediatorRoutesAroundDeadCandidate(t *testing.T) {
	h := withLiveness(t, 5, 3)
	defer h.env.Close()
	const item = 10  // mediator = 0
	h.fetch(3, item) // candidates: [3]
	h.fetch(4, item) // candidates: [4, 3]
	h.holdings[3][item] = "behind-dead"
	h.alive[4] = false // most recent candidate dies
	h.messages = 0
	data, hop, ok := h.fetch(1, item)
	if !ok || data != "behind-dead" {
		t.Fatalf("fetch = %v, %d, %v; want hit via live candidate", data, hop, ok)
	}
	if hop != 1 {
		t.Fatalf("hop = %d; dead candidate must not consume a hop", hop)
	}
	// request + forward(to 3) + data reply: no message to the dead node.
	if h.messages != 3 {
		t.Fatalf("messages = %d, want 3", h.messages)
	}
}

// A dead mediator resolves as an immediate, message-free miss.
func TestDeadMediatorImmediateMiss(t *testing.T) {
	h := withLiveness(t, 4, 2)
	defer h.env.Close()
	const item = 6 // mediator = 2
	h.alive[2] = false
	h.messages = 0
	_, _, ok := h.fetch(0, item)
	if ok {
		t.Fatal("fetch through dead mediator succeeded")
	}
	if h.messages != 0 {
		t.Fatalf("messages = %d, want 0 (routed around)", h.messages)
	}
	m := h.engines[0].Metrics()
	if m.Requests != 1 || m.Misses != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// A candidate that dies mid-chain is skipped at forward time.
func TestForwardSkipsCandidateThatDiedMidChain(t *testing.T) {
	h := withLiveness(t, 6, 3)
	defer h.env.Close()
	const item = 12 // mediator = 0
	h.fetch(1, item)
	h.fetch(2, item)
	h.fetch(3, item) // candidates: [3, 2, 1]
	h.holdings[1][item] = "tail"
	// Node 2 (mid-chain) dies before the next fetch: the mediator prunes
	// it and the forward chain becomes [3, 1].
	h.alive[2] = false
	data, hop, ok := h.fetch(5, item)
	if !ok || data != "tail" || hop != 2 {
		t.Fatalf("fetch = %v, %d, %v; want hit at hop 2 via [3, 1]", data, hop, ok)
	}
}
