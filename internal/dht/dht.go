// Package dht implements Rocket's third cache level (paper §4.1.3): a
// best-effort distributed lookup that lets a node fetch an already-loaded
// item from a peer's host cache instead of re-executing the load pipeline.
//
// Every item i has a mediator node (i mod p) that keeps a small
// bookkeeping list candidates[i] of the h nodes that most recently
// requested i — the nodes most likely to still hold it. A request visits
// the mediator and then walks at most h candidates; the first candidate
// with the item in its host cache sends the data directly to the
// requester, otherwise the requester receives a failure and falls back to
// loading the item itself. Each request costs at most h+2 messages and the
// scheme has no central component.
package dht

import (
	"fmt"

	"rocket/internal/sim"
)

// Message types exchanged by the protocol. They travel as payloads of
// cluster messages.
type (
	// Request is sent by the requester to the item's mediator.
	Request struct {
		ID        uint64
		Item      int
		Requester int
	}
	// Forward carries the request along the candidate chain. Hop is
	// 1-based: the first candidate contacted sees Hop == 1.
	Forward struct {
		ID        uint64
		Item      int
		Requester int
		Chain     []int
		Hop       int
	}
	// Reply terminates a request: either a candidate found the item (Hit,
	// with Data and the Hop it was found at) or the search failed.
	Reply struct {
		ID   uint64
		Item int
		Hit  bool
		Hop  int
		Data interface{}
	}
)

// SendFunc transmits a payload of the given size to a peer node without
// blocking the caller beyond local bookkeeping (the core runtime wires
// this to an asynchronous network send, which runs as a callback chain).
type SendFunc func(e *sim.Env, to int, size int64, payload interface{})

// LookupFunc checks the local host cache for an item and returns its
// payload. In synthetic (cost-model) runs the payload is nil and only the
// boolean matters.
type LookupFunc func(item int) (interface{}, bool)

// AliveFunc reports whether a peer node is currently reachable. It backs
// the engine's failure routing: fetches to a dead mediator resolve as
// immediate misses, and mediators skip dead candidates when forwarding.
// A nil AliveFunc means every node is always alive.
type AliveFunc func(node int) bool

// Config parameterizes an Engine.
type Config struct {
	NodeID   int
	NumNodes int
	// Hops is the paper's h: the maximum number of candidates visited.
	Hops int
	// CtrlSize is the wire size of control messages (request/forward/fail).
	CtrlSize int64
	// DataSize is the wire size of one item payload (the cache slot size).
	DataSize int64
	Send     SendFunc
	Lookup   LookupFunc
	// Alive, when non-nil, lets the protocol route around dead nodes
	// (fault injection); nil preserves the failure-free behavior exactly.
	Alive AliveFunc
}

// Metrics counts request outcomes observed at the requester side.
type Metrics struct {
	Requests uint64
	// HitAtHop[k] counts hits served by the (k+1)-th candidate.
	HitAtHop []uint64
	Misses   uint64
	// StaleReplies counts replies for requests no longer pending —
	// duplicates, or answers to lookups a crash already resolved. They
	// are dropped, not errors: a node that crashed and restarted has
	// legitimately forgotten its pending table.
	StaleReplies uint64
}

// Engine is the per-node protocol state machine. One engine instance
// handles both roles: client (Fetch) and server (Handle, called by the
// node's message loop for every inbound protocol message).
type Engine struct {
	cfg Config
	// candidates holds the mediator bookkeeping for items this node is
	// responsible for (item mod p == NodeID).
	candidates map[int][]int
	pending    map[uint64]*sim.Signal
	nextID     uint64
	metrics    Metrics
}

// New validates cfg and returns an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.NumNodes < 1 {
		return nil, fmt.Errorf("dht: NumNodes %d < 1", cfg.NumNodes)
	}
	if cfg.NodeID < 0 || cfg.NodeID >= cfg.NumNodes {
		return nil, fmt.Errorf("dht: NodeID %d out of range [0, %d)", cfg.NodeID, cfg.NumNodes)
	}
	if cfg.Hops < 1 {
		return nil, fmt.Errorf("dht: Hops %d < 1", cfg.Hops)
	}
	if cfg.Send == nil || cfg.Lookup == nil {
		return nil, fmt.Errorf("dht: Send and Lookup are required")
	}
	return &Engine{
		cfg:        cfg,
		candidates: make(map[int][]int),
		pending:    make(map[uint64]*sim.Signal),
		metrics:    Metrics{HitAtHop: make([]uint64, cfg.Hops)},
	}, nil
}

// Metrics returns a copy of the outcome counters.
func (e *Engine) Metrics() Metrics {
	m := e.metrics
	m.HitAtHop = append([]uint64(nil), e.metrics.HitAtHop...)
	return m
}

// CandidateList returns the mediator's current candidate list for an item
// (nil when unknown). Exposed for tests and introspection.
func (e *Engine) CandidateList(item int) []int {
	return append([]int(nil), e.candidates[item]...)
}

// Fetch performs a blocking distributed lookup for item. It returns the
// payload, the hop at which the item was found (1-based), and whether the
// lookup succeeded. On failure the caller must execute the load pipeline
// locally.
func (e *Engine) Fetch(p *sim.Proc, item int) (interface{}, int, bool) {
	sig := e.beginFetch(p.Env(), item)
	p.WaitSignal(sig)
	rep := sig.Value.(Reply)
	return e.endFetch(rep)
}

// FetchFunc is the callback analogue of Fetch: fn receives the payload,
// the hop the item was found at, and the success flag once the reply
// arrives. The requesting side never blocks a goroutine; the lookup is a
// pure message chain. fn must not block.
func (e *Engine) FetchFunc(env *sim.Env, item int, fn func(data interface{}, hop int, ok bool)) {
	sig := e.beginFetch(env, item)
	sig.OnFire(env, func() {
		fn(e.endFetch(sig.Value.(Reply)))
	})
}

// alive reports reachability of a peer (always true without an AliveFunc).
func (e *Engine) alive(node int) bool {
	return e.cfg.Alive == nil || e.cfg.Alive(node)
}

// beginFetch registers a pending request, sends it to the mediator, and
// returns the signal the reply will fire. A dead mediator resolves as an
// immediate local miss: the requester routes around it and falls back to
// the load pipeline without spending a message.
func (e *Engine) beginFetch(env *sim.Env, item int) *sim.Signal {
	e.metrics.Requests++
	e.nextID++
	id := e.nextID
	sig := sim.NewSignal()
	mediator := item % e.cfg.NumNodes
	if !e.alive(mediator) {
		sig.Value = Reply{ID: id, Item: item}
		sig.Fire(env)
		return sig
	}
	e.pending[id] = sig
	e.cfg.Send(env, mediator, e.cfg.CtrlSize, Request{ID: id, Item: item, Requester: e.cfg.NodeID})
	return sig
}

// FailPending resolves a pending fetch as a miss. The runtime calls it
// when the fabric drops a Request or Forward carrying the lookup (the
// mediator or a candidate died with the message in flight), so the
// requester falls back to loading instead of hanging. Unknown IDs are
// ignored (the fetch may have resolved through another path).
func (e *Engine) FailPending(env *sim.Env, id uint64) {
	sig, ok := e.pending[id]
	if !ok {
		return
	}
	delete(e.pending, id)
	sig.Value = Reply{ID: id}
	sig.Fire(env)
}

// endFetch accounts a reply and unpacks it.
func (e *Engine) endFetch(rep Reply) (interface{}, int, bool) {
	if !rep.Hit {
		e.metrics.Misses++
		return nil, 0, false
	}
	if rep.Hop >= 1 && rep.Hop <= e.cfg.Hops {
		e.metrics.HitAtHop[rep.Hop-1]++
	}
	return rep.Data, rep.Hop, true
}

// Handle processes one inbound protocol message and returns true if the
// payload was a DHT message. It never blocks on the network: all sends go
// through the asynchronous SendFunc.
func (e *Engine) Handle(env *sim.Env, payload interface{}) bool {
	switch m := payload.(type) {
	case Request:
		e.handleRequest(env, m)
	case Forward:
		e.handleForward(env, m)
	case Reply:
		e.handleReply(env, m)
	default:
		return false
	}
	return true
}

// handleRequest implements the mediator role. Dead candidates are dropped
// from the walk (the fault layer's routing): the request visits only
// reachable nodes, and an all-dead candidate list is an immediate miss.
func (e *Engine) handleRequest(env *sim.Env, m Request) {
	if m.Item%e.cfg.NumNodes != e.cfg.NodeID {
		panic(fmt.Sprintf("dht: node %d received request for item %d mediated by node %d",
			e.cfg.NodeID, m.Item, m.Item%e.cfg.NumNodes))
	}
	chain := e.candidates[m.Item]
	// Record the requester as the most recent (and thus most likely future)
	// holder, deduplicating and bounding the list at h entries.
	e.candidates[m.Item] = prepend(chain, m.Requester, e.cfg.Hops)
	if e.cfg.Alive != nil {
		chain = e.aliveOnly(chain)
	}
	if len(chain) == 0 {
		e.cfg.Send(env, m.Requester, e.cfg.CtrlSize, Reply{ID: m.ID, Item: m.Item})
		return
	}
	fwd := Forward{
		ID:        m.ID,
		Item:      m.Item,
		Requester: m.Requester,
		Chain:     chain[1:],
		Hop:       1,
	}
	e.cfg.Send(env, chain[0], e.cfg.CtrlSize, fwd)
}

// aliveOnly filters a candidate chain down to reachable nodes.
func (e *Engine) aliveOnly(chain []int) []int {
	out := make([]int, 0, len(chain))
	for _, n := range chain {
		if e.alive(n) {
			out = append(out, n)
		}
	}
	return out
}

// handleForward implements the candidate role. Candidates that died after
// the chain was built are skipped; Hop counts nodes actually visited, so
// HitAtHop keeps measuring real message cost.
func (e *Engine) handleForward(env *sim.Env, m Forward) {
	if data, ok := e.cfg.Lookup(m.Item); ok {
		e.cfg.Send(env, m.Requester, e.cfg.DataSize,
			Reply{ID: m.ID, Item: m.Item, Hit: true, Hop: m.Hop, Data: data})
		return
	}
	chain := m.Chain
	for len(chain) > 0 && !e.alive(chain[0]) {
		chain = chain[1:]
	}
	if len(chain) > 0 {
		e.cfg.Send(env, chain[0], e.cfg.CtrlSize, Forward{
			ID:        m.ID,
			Item:      m.Item,
			Requester: m.Requester,
			Chain:     chain[1:],
			Hop:       m.Hop + 1,
		})
		return
	}
	e.cfg.Send(env, m.Requester, e.cfg.CtrlSize, Reply{ID: m.ID, Item: m.Item, Hop: m.Hop})
}

// handleReply completes a pending Fetch. Replies for IDs no longer pending
// are stale — the requester crashed and restarted (losing its pending
// table), or the fetch was already failed by a message drop — and are
// counted and discarded rather than treated as fatal.
func (e *Engine) handleReply(env *sim.Env, m Reply) {
	sig, ok := e.pending[m.ID]
	if !ok {
		e.metrics.StaleReplies++
		return
	}
	delete(e.pending, m.ID)
	sig.Value = m
	sig.Fire(env)
}

// prepend inserts v at the front of list, removing an existing occurrence
// of v and truncating to at most max entries.
func prepend(list []int, v, max int) []int {
	out := make([]int, 0, max)
	out = append(out, v)
	for _, x := range list {
		if len(out) >= max {
			break
		}
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
