package phylo

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Amino-acid alphabet of the composition-vector method.
const alphabet = "ACDEFGHIKLMNPQRSTVWY"

// alphaIndex maps an amino-acid letter to its index, -1 for anything else.
var alphaIndex [256]int8

func init() {
	for i := range alphaIndex {
		alphaIndex[i] = -1
	}
	for i := 0; i < len(alphabet); i++ {
		alphaIndex[alphabet[i]] = int8(i)
	}
}

// EncodeFASTA serializes protein sequences into a deflate-compressed FASTA
// file, the input format of the application (§5.2: "files are stored in
// compressed FASTA format").
func EncodeFASTA(name string, seqs []string) ([]byte, error) {
	var plain bytes.Buffer
	for i, s := range seqs {
		fmt.Fprintf(&plain, ">%s|protein%d\n", name, i)
		for len(s) > 60 {
			plain.WriteString(s[:60])
			plain.WriteByte('\n')
			s = s[60:]
		}
		plain.WriteString(s)
		plain.WriteByte('\n')
	}
	var out bytes.Buffer
	zw, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(plain.Bytes()); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// DecodeFASTA decompresses and parses a file produced by EncodeFASTA,
// returning the protein sequences.
func DecodeFASTA(raw []byte) ([]string, error) {
	zr := flate.NewReader(bytes.NewReader(raw))
	defer zr.Close()
	plain, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("phylo: decompress: %w", err)
	}
	var seqs []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			seqs = append(seqs, cur.String())
			cur.Reset()
		}
	}
	for _, line := range strings.Split(string(plain), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if line[0] == '>' {
			flush()
			continue
		}
		cur.WriteString(line)
	}
	flush()
	if len(seqs) == 0 {
		return nil, fmt.Errorf("phylo: no sequences in FASTA input")
	}
	return seqs, nil
}

// CV is a sparse composition vector: parallel slices of k-string codes
// (base-20 encoded, ascending) and component values.
type CV struct {
	K     int
	Keys  []uint64
	Vals  []float32
	normV float64
}

// Len returns the number of non-zero components.
func (v *CV) Len() int { return len(v.Keys) }

// Norm returns the Euclidean norm of the vector.
func (v *CV) Norm() float64 { return v.normV }

// countK counts k-string occurrences over all sequences.
func countK(seqs []string, k int) (map[uint64]float64, float64) {
	counts := make(map[uint64]float64)
	var total float64
	mod := pow20(k - 1)
	for _, s := range seqs {
		var code uint64
		run := 0 // length of current valid suffix
		for i := 0; i < len(s); i++ {
			idx := alphaIndex[s[i]]
			if idx < 0 {
				run, code = 0, 0
				continue
			}
			code = (code%mod)*20 + uint64(idx)
			if run < k {
				run++
			}
			if run == k {
				counts[code]++
				total++
			}
		}
	}
	return counts, total
}

func pow20(k int) uint64 {
	v := uint64(1)
	for i := 0; i < k; i++ {
		v *= 20
	}
	return v
}

// BuildCV computes the composition vector of order k following Qi et al.:
// the relative deviation a(s) = (f(s) - f0(s)) / f0(s) of each observed
// k-string frequency f from its Markov-model prediction
// f0(a1..ak) = f(a1..a_{k-1}) f(a2..ak) / f(a2..a_{k-1}).
func BuildCV(seqs []string, k int) (*CV, error) {
	if k < 3 {
		return nil, fmt.Errorf("phylo: k must be >= 3, got %d", k)
	}
	fk, nk := countK(seqs, k)
	if nk == 0 {
		return nil, fmt.Errorf("phylo: sequences shorter than k=%d", k)
	}
	fk1, nk1 := countK(seqs, k-1)
	fk2, nk2 := countK(seqs, k-2)
	div := pow20(k - 1)
	keys := make([]uint64, 0, len(fk))
	for code := range fk {
		keys = append(keys, code)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	cv := &CV{K: k, Keys: keys, Vals: make([]float32, len(keys))}
	var norm float64
	for i, code := range keys {
		prefix := code / 20   // a1..a_{k-1}
		suffix := code % div  // a2..ak
		middle := suffix / 20 // a2..a_{k-1}
		f := fk[code] / nk
		p := fk1[prefix] / nk1
		s := fk1[suffix] / nk1
		m := fk2[middle] / nk2
		var a float64
		if p > 0 && s > 0 && m > 0 {
			f0 := p * s / m
			if f0 > 0 {
				a = (f - f0) / f0
			}
		}
		cv.Vals[i] = float32(a)
		norm += a * a
	}
	cv.normV = math.Sqrt(norm)
	return cv, nil
}

// Correlation computes the cosine similarity C(A, B) between two sparse
// composition vectors by merging their sorted key lists (the "dot product
// between two sparse vectors" of §5.2).
func Correlation(a, b *CV) (float64, error) {
	if a.K != b.K {
		return 0, fmt.Errorf("phylo: comparing CVs of different k (%d vs %d)", a.K, b.K)
	}
	if a.normV == 0 || b.normV == 0 {
		return 0, nil
	}
	var dot float64
	i, j := 0, 0
	for i < len(a.Keys) && j < len(b.Keys) {
		switch {
		case a.Keys[i] < b.Keys[j]:
			i++
		case a.Keys[i] > b.Keys[j]:
			j++
		default:
			dot += float64(a.Vals[i]) * float64(b.Vals[j])
			i++
			j++
		}
	}
	return dot / (a.normV * b.normV), nil
}

// Distance converts a correlation into the CV distance D = (1 - C) / 2,
// which lies in [0, 1].
func Distance(c float64) float64 { return (1 - c) / 2 }
