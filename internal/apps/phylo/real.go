package phylo

import (
	"fmt"
	"os"
	"path/filepath"

	"rocket/internal/stats"
)

// Dataset supplies the raw compressed-FASTA files of the proteomes.
type Dataset interface {
	File(item int) ([]byte, error)
	Len() int
}

// MemDataset is an in-memory dataset.
type MemDataset struct {
	Files [][]byte
}

// File implements Dataset.
func (d *MemDataset) File(item int) ([]byte, error) {
	if item < 0 || item >= len(d.Files) {
		return nil, fmt.Errorf("phylo: item %d out of range", item)
	}
	return d.Files[item], nil
}

// Len implements Dataset.
func (d *MemDataset) Len() int { return len(d.Files) }

// DirDataset reads numbered files ("proteome%05d.fa.z") from a directory.
type DirDataset struct {
	Dir string
	N   int
}

// File implements Dataset.
func (d *DirDataset) File(item int) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.Dir, fmt.Sprintf("proteome%05d.fa.z", item)))
}

// Len implements Dataset.
func (d *DirDataset) Len() int { return d.N }

// RealParams configures the real-kernel application: synthetic proteomes
// evolved from a set of ancestor genomes, so the reconstructed tree has a
// known ground truth.
type RealParams struct {
	// N is the number of species.
	N int
	// Groups is the number of ancestral clades; species are assigned
	// round-robin, so species i belongs to clade i mod Groups.
	Groups int
	// Proteins is the number of proteins per proteome.
	Proteins int
	// ProteinLen is the mean protein length (amino acids).
	ProteinLen int
	// MutationRate is the per-residue substitution probability applied
	// when deriving a species from its clade ancestor.
	MutationRate float64
	// K is the composition-vector string length.
	K    int
	Seed uint64
	// Dataset overrides generation with existing files.
	Dataset Dataset
}

func (p *RealParams) fillDefaults() {
	if p.N == 0 {
		p.N = 12
	}
	if p.Groups == 0 {
		p.Groups = 3
	}
	if p.Proteins == 0 {
		p.Proteins = 20
	}
	if p.ProteinLen == 0 {
		p.ProteinLen = 300
	}
	if p.MutationRate == 0 {
		p.MutationRate = 0.05
	}
	if p.K == 0 {
		p.K = 4
	}
}

// RealApp runs the actual composition-vector pipeline. It implements
// core.Application and core.Computer.
type RealApp struct {
	*App
	params RealParams
	ds     Dataset
}

// NewReal builds the real application, generating synthetic proteomes
// unless a dataset is supplied.
func NewReal(p RealParams) (*RealApp, error) {
	p.fillDefaults()
	a := &RealApp{App: New(Params{N: p.N, Seed: p.Seed}), params: p}
	if p.Dataset != nil {
		if p.Dataset.Len() != p.N {
			return nil, fmt.Errorf("phylo: dataset has %d items, want %d", p.Dataset.Len(), p.N)
		}
		a.ds = p.Dataset
		return a, nil
	}
	ds, err := GenerateDataset(p)
	if err != nil {
		return nil, err
	}
	a.ds = ds
	return a, nil
}

// Clade returns the ground-truth clade of a species.
func (a *RealApp) Clade(item int) int { return item % a.params.Groups }

// K returns the configured composition-vector order.
func (a *RealApp) K() int { return a.params.K }

// GenerateDataset synthesizes proteome files: Groups random ancestor
// proteomes, each species a mutated copy of its clade's ancestor.
func GenerateDataset(p RealParams) (*MemDataset, error) {
	p.fillDefaults()
	ancestors := make([][]string, p.Groups)
	for g := range ancestors {
		rng := stats.HashRNG(p.Seed, uint64(g), 0xa9ce5)
		ancestors[g] = randomProteome(rng, p.Proteins, p.ProteinLen)
	}
	ds := &MemDataset{Files: make([][]byte, p.N)}
	for i := 0; i < p.N; i++ {
		rng := stats.HashRNG(p.Seed, uint64(i), 0x59ec1e5)
		proteome := mutateProteome(ancestors[i%p.Groups], p.MutationRate, rng)
		raw, err := EncodeFASTA(fmt.Sprintf("species%d", i), proteome)
		if err != nil {
			return nil, err
		}
		ds.Files[i] = raw
	}
	return ds, nil
}

// WriteDataset materializes a generated data set into a directory.
func WriteDataset(p RealParams, dir string) error {
	ds, err := GenerateDataset(p)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, raw := range ds.Files {
		name := filepath.Join(dir, fmt.Sprintf("proteome%05d.fa.z", i))
		if err := os.WriteFile(name, raw, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func randomProteome(rng *stats.RNG, proteins, meanLen int) []string {
	out := make([]string, proteins)
	for i := range out {
		length := meanLen/2 + rng.Intn(meanLen)
		seq := make([]byte, length)
		for j := range seq {
			seq[j] = alphabet[rng.Intn(len(alphabet))]
		}
		out[i] = string(seq)
	}
	return out
}

func mutateProteome(ancestor []string, rate float64, rng *stats.RNG) []string {
	out := make([]string, len(ancestor))
	for i, s := range ancestor {
		seq := []byte(s)
		for j := range seq {
			if rng.Float64() < rate {
				seq[j] = alphabet[rng.Intn(len(alphabet))]
			}
		}
		out[i] = string(seq)
	}
	return out
}

// LoadItem implements core.Computer: decompress the FASTA file and build
// the composition vector (parse + pre-process stages).
func (a *RealApp) LoadItem(item int) (interface{}, error) {
	raw, err := a.ds.File(item)
	if err != nil {
		return nil, err
	}
	seqs, err := DecodeFASTA(raw)
	if err != nil {
		return nil, fmt.Errorf("item %d: %w", item, err)
	}
	return BuildCV(seqs, a.params.K)
}

// ComparePair implements core.Computer: the CV correlation distance.
func (a *RealApp) ComparePair(i, j int, x, y interface{}) (interface{}, error) {
	c, err := Correlation(x.(*CV), y.(*CV))
	if err != nil {
		return nil, err
	}
	return Distance(c), nil
}
