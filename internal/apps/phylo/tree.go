package phylo

import (
	"fmt"
	"strings"
)

// Node is a binary phylogenetic tree node. Leaves have Species >= 0 and no
// children; internal nodes carry the merge height.
type Node struct {
	Species     int // leaf: species index; internal: -1
	Left, Right *Node
	Height      float64
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Leaves returns the species indices under the node in left-to-right
// order.
func (n *Node) Leaves() []int {
	if n.IsLeaf() {
		return []int{n.Species}
	}
	return append(n.Left.Leaves(), n.Right.Leaves()...)
}

// Newick renders the tree in Newick format with the given leaf names.
func (n *Node) Newick(names []string) string {
	var b strings.Builder
	n.newick(&b, names)
	b.WriteByte(';')
	return b.String()
}

func (n *Node) newick(b *strings.Builder, names []string) {
	if n.IsLeaf() {
		if n.Species < len(names) {
			b.WriteString(names[n.Species])
		} else {
			fmt.Fprintf(b, "sp%d", n.Species)
		}
		return
	}
	b.WriteByte('(')
	n.Left.newick(b, names)
	b.WriteByte(',')
	n.Right.newick(b, names)
	fmt.Fprintf(b, "):%.4f", n.Height)
}

// NeighborJoining builds an (arbitrarily rooted) tree from a full
// symmetric distance matrix with the Saitou-Nei neighbor-joining
// algorithm, the standard method for distance-based phylogenies and the
// one commonly paired with composition-vector distances. Unlike UPGMA it
// does not assume a molecular clock. Heights on internal nodes carry the
// Q-criterion merge order (monotone bookkeeping, not branch lengths).
func NeighborJoining(dist [][]float64) (*Node, error) {
	n := len(dist)
	if n == 0 {
		return nil, fmt.Errorf("phylo: empty distance matrix")
	}
	for i := range dist {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("phylo: distance matrix row %d has %d entries, want %d", i, len(dist[i]), n)
		}
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{Species: i}
	}
	// Work on a copy; live tracks active cluster indices.
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), dist[i]...)
	}
	live := make([]int, n)
	for i := range live {
		live[i] = i
	}
	merge := 0
	for len(live) > 2 {
		r := len(live)
		// Row sums over live entries.
		sums := make(map[int]float64, r)
		for _, x := range live {
			for _, y := range live {
				sums[x] += d[x][y]
			}
		}
		// Minimize Q(i, j) = (r-2) d(i,j) - sum_i - sum_j.
		bi, bj := 0, 1
		best := 0.0
		first := true
		for x := 0; x < len(live); x++ {
			for y := x + 1; y < len(live); y++ {
				a, b := live[x], live[y]
				q := float64(r-2)*d[a][b] - sums[a] - sums[b]
				if first || q < best {
					best, bi, bj, first = q, x, y, false
				}
			}
		}
		a, b := live[bi], live[bj]
		merge++
		parent := &Node{Species: -1, Left: nodes[a], Right: nodes[b], Height: float64(merge)}
		// Distances from the new cluster to the rest.
		for _, x := range live {
			if x == a || x == b {
				continue
			}
			d[a][x] = (d[a][x] + d[b][x] - d[a][b]) / 2
			d[x][a] = d[a][x]
		}
		nodes[a] = parent
		live = append(live[:bj], live[bj+1:]...)
	}
	if len(live) == 1 {
		return nodes[live[0]], nil
	}
	merge++
	return &Node{
		Species: -1,
		Left:    nodes[live[0]],
		Right:   nodes[live[1]],
		Height:  float64(merge),
	}, nil
}

// UPGMA builds a tree from a full symmetric distance matrix by
// average-linkage hierarchical clustering — the paper's method for turning
// the all-pairs distance matrix into a phylogeny (§5.2).
func UPGMA(dist [][]float64) (*Node, error) {
	n := len(dist)
	if n == 0 {
		return nil, fmt.Errorf("phylo: empty distance matrix")
	}
	for i := range dist {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("phylo: distance matrix row %d has %d entries, want %d", i, len(dist[i]), n)
		}
	}
	type clust struct {
		node *Node
		size int
	}
	clusters := make([]*clust, n)
	for i := 0; i < n; i++ {
		clusters[i] = &clust{node: &Node{Species: i}, size: 1}
	}
	// Work on a copy of the matrix; row/col indices track live clusters.
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), dist[i]...)
	}
	live := make([]int, n)
	for i := range live {
		live[i] = i
	}
	for len(live) > 1 {
		// Find the closest pair of live clusters (deterministic
		// tie-break: smallest indices).
		bi, bj := 0, 1
		best := d[live[0]][live[1]]
		for x := 0; x < len(live); x++ {
			for y := x + 1; y < len(live); y++ {
				if v := d[live[x]][live[y]]; v < best {
					best, bi, bj = v, x, y
				}
			}
		}
		a, b := live[bi], live[bj]
		merged := &clust{
			node: &Node{
				Species: -1,
				Left:    clusters[a].node,
				Right:   clusters[b].node,
				Height:  best / 2,
			},
			size: clusters[a].size + clusters[b].size,
		}
		// Average-linkage update into slot a.
		for _, x := range live {
			if x == a || x == b {
				continue
			}
			wa, wb := float64(clusters[a].size), float64(clusters[b].size)
			d[a][x] = (wa*d[a][x] + wb*d[b][x]) / (wa + wb)
			d[x][a] = d[a][x]
		}
		clusters[a] = merged
		live = append(live[:bj], live[bj+1:]...)
	}
	return clusters[live[0]].node, nil
}
