package phylo

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rocket/internal/stats"
)

func TestCostModelDefaults(t *testing.T) {
	a := New(Params{})
	if a.NumItems() != DefaultN || a.Name() != "bioinformatics" {
		t.Fatal("defaults wrong")
	}
	if a.ItemSize() != SlotBytes {
		t.Fatal("slot size wrong")
	}
}

func TestCompareTimesIrregular(t *testing.T) {
	a := New(Params{N: 100, Seed: 1})
	var s stats.Summary
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			s.Add(a.CompareTime(i, j).Millis())
		}
	}
	if math.Abs(s.Mean()-2.1) > 0.2 {
		t.Errorf("compare mean %.3f, want ~2.1", s.Mean())
	}
	if s.Std() < 0.5 {
		t.Errorf("compare std %.3f; bioinformatics must be irregular (~0.79)", s.Std())
	}
}

func TestFASTARoundTrip(t *testing.T) {
	seqs := []string{
		"ACDEFGHIKLMNPQRSTVWY",
		strings.Repeat("ACDEFG", 30), // forces line wrapping
		"MKVL",
	}
	raw, err := EncodeFASTA("test", seqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFASTA(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(seqs) {
		t.Fatalf("got %d sequences, want %d", len(got), len(seqs))
	}
	for i := range seqs {
		if got[i] != seqs[i] {
			t.Fatalf("sequence %d: %q != %q", i, got[i], seqs[i])
		}
	}
}

func TestDecodeFASTARejectsGarbage(t *testing.T) {
	if _, err := DecodeFASTA([]byte("not deflate data")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBuildCVValidation(t *testing.T) {
	if _, err := BuildCV([]string{"ACDEFG"}, 2); err == nil {
		t.Fatal("k=2 accepted")
	}
	if _, err := BuildCV([]string{"AC"}, 5); err == nil {
		t.Fatal("too-short sequences accepted")
	}
}

func TestBuildCVSortedSparse(t *testing.T) {
	rng := stats.NewRNG(1)
	cv, err := BuildCV(randomProteome(rng, 5, 200), 4)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Len() == 0 {
		t.Fatal("empty CV")
	}
	for i := 1; i < cv.Len(); i++ {
		if cv.Keys[i-1] >= cv.Keys[i] {
			t.Fatal("keys not strictly ascending")
		}
	}
	if cv.Norm() <= 0 {
		t.Fatal("zero norm")
	}
}

func TestCorrelationSelfIsOne(t *testing.T) {
	rng := stats.NewRNG(2)
	cv, err := BuildCV(randomProteome(rng, 5, 300), 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Correlation(cv, cv)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1) > 1e-6 {
		t.Fatalf("self correlation = %v", c)
	}
	if d := Distance(c); math.Abs(d) > 1e-6 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestCorrelationMismatchedK(t *testing.T) {
	rng := stats.NewRNG(3)
	p := randomProteome(rng, 3, 200)
	a, _ := BuildCV(p, 3)
	b, _ := BuildCV(p, 4)
	if _, err := Correlation(a, b); err == nil {
		t.Fatal("mismatched k accepted")
	}
}

func TestRelatedSpeciesCloser(t *testing.T) {
	app, err := NewReal(RealParams{N: 9, Groups: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cvs := make([]*CV, 9)
	for i := range cvs {
		v, err := app.LoadItem(i)
		if err != nil {
			t.Fatal(err)
		}
		cvs[i] = v.(*CV)
	}
	var same, diff stats.Summary
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			v, err := app.ComparePair(i, j, cvs[i], cvs[j])
			if err != nil {
				t.Fatal(err)
			}
			d := v.(float64)
			if d < 0 || d > 1 {
				t.Fatalf("distance %v out of [0,1]", d)
			}
			if app.Clade(i) == app.Clade(j) {
				same.Add(d)
			} else {
				diff.Add(d)
			}
		}
	}
	if same.Max() >= diff.Min() {
		t.Fatalf("clade separation failed: same-clade max %.4f >= cross-clade min %.4f",
			same.Max(), diff.Min())
	}
}

func TestUPGMARecoverGroups(t *testing.T) {
	// Distances: two tight groups {0,1,2} and {3,4,5}.
	n := 6
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i == j {
				continue
			}
			if (i < 3) == (j < 3) {
				d[i][j] = 0.1
			} else {
				d[i][j] = 0.9
			}
		}
	}
	root, err := UPGMA(d)
	if err != nil {
		t.Fatal(err)
	}
	left := root.Left.Leaves()
	right := root.Right.Leaves()
	if len(left)+len(right) != n {
		t.Fatalf("tree lost leaves: %v + %v", left, right)
	}
	sameSide := func(leaves []int) bool {
		for _, l := range leaves {
			if (l < 3) != (leaves[0] < 3) {
				return false
			}
		}
		return true
	}
	if !sameSide(left) || !sameSide(right) {
		t.Fatalf("root split does not separate groups: %v | %v", left, right)
	}
	if root.Height <= root.Left.Height || root.Height <= root.Right.Height {
		t.Fatal("merge heights not increasing")
	}
}

func TestUPGMAValidation(t *testing.T) {
	if _, err := UPGMA(nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := UPGMA([][]float64{{0, 1}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestUPGMASingleLeaf(t *testing.T) {
	root, err := UPGMA([][]float64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if !root.IsLeaf() || root.Species != 0 {
		t.Fatal("single-species tree wrong")
	}
}

func TestNewick(t *testing.T) {
	root := &Node{
		Species: -1,
		Height:  0.5,
		Left:    &Node{Species: 0},
		Right: &Node{
			Species: -1, Height: 0.2,
			Left:  &Node{Species: 1},
			Right: &Node{Species: 2},
		},
	}
	got := root.Newick([]string{"A", "B", "C"})
	want := "(A,(B,C):0.2000):0.5000;"
	if got != want {
		t.Fatalf("newick = %q, want %q", got, want)
	}
	// Missing names fall back to spN.
	if !strings.Contains(root.Newick([]string{"A"}), "sp2") {
		t.Fatal("fallback names missing")
	}
}

func TestEndToEndTree(t *testing.T) {
	app, err := NewReal(RealParams{N: 6, Groups: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cvs := make([]*CV, 6)
	for i := range cvs {
		v, err := app.LoadItem(i)
		if err != nil {
			t.Fatal(err)
		}
		cvs[i] = v.(*CV)
	}
	d := make([][]float64, 6)
	for i := range d {
		d[i] = make([]float64, 6)
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			v, _ := app.ComparePair(i, j, cvs[i], cvs[j])
			d[i][j] = v.(float64)
			d[j][i] = d[i][j]
		}
	}
	root, err := UPGMA(d)
	if err != nil {
		t.Fatal(err)
	}
	// The root split must separate the two clades (even=clade0, odd=clade1).
	for _, side := range [][]int{root.Left.Leaves(), root.Right.Leaves()} {
		for _, l := range side {
			if app.Clade(l) != app.Clade(side[0]) {
				t.Fatalf("root split mixes clades: %v | %v",
					root.Left.Leaves(), root.Right.Leaves())
			}
		}
	}
}

func TestDatasetDiskRoundTrip(t *testing.T) {
	p := RealParams{N: 4, Groups: 2, Seed: 3}
	dir := t.TempDir()
	if err := WriteDataset(p, dir); err != nil {
		t.Fatal(err)
	}
	p.Dataset = &DirDataset{Dir: dir, N: 4}
	app, err := NewReal(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.LoadItem(1); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetSizeMismatch(t *testing.T) {
	if _, err := NewReal(RealParams{N: 5, Dataset: &MemDataset{}}); err == nil {
		t.Fatal("mismatched dataset accepted")
	}
}

// Property: correlation is symmetric and within [-1, 1] for arbitrary
// generated proteome pairs.
func TestQuickCorrelationBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		a, err := BuildCV(randomProteome(rng, 3, 150), 3)
		if err != nil {
			return false
		}
		b, err := BuildCV(randomProteome(rng, 3, 150), 3)
		if err != nil {
			return false
		}
		ab, err1 := Correlation(a, b)
		ba, err2 := Correlation(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab == ba && ab >= -1-1e-9 && ab <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborJoiningRecoversGroups(t *testing.T) {
	// Two tight groups with additive distances.
	n := 6
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i == j {
				continue
			}
			if (i < 3) == (j < 3) {
				d[i][j] = 0.2
			} else {
				d[i][j] = 1.0
			}
		}
	}
	root, err := NeighborJoining(d)
	if err != nil {
		t.Fatal(err)
	}
	leaves := root.Leaves()
	if len(leaves) != n {
		t.Fatalf("tree has %d leaves, want %d", len(leaves), n)
	}
	seen := map[int]bool{}
	for _, l := range leaves {
		if seen[l] {
			t.Fatalf("duplicate leaf %d", l)
		}
		seen[l] = true
	}
	// Some subtree must contain exactly one full group.
	found := false
	var walk func(*Node)
	walk = func(nd *Node) {
		if nd == nil || nd.IsLeaf() {
			return
		}
		ls := nd.Leaves()
		if len(ls) == 3 {
			same := true
			for _, l := range ls {
				if (l < 3) != (ls[0] < 3) {
					same = false
				}
			}
			if same {
				found = true
			}
		}
		walk(nd.Left)
		walk(nd.Right)
	}
	walk(root)
	if !found {
		t.Fatalf("no subtree isolates a group: %s", root.Newick(nil))
	}
}

func TestNeighborJoiningValidation(t *testing.T) {
	if _, err := NeighborJoining(nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := NeighborJoining([][]float64{{0, 1}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestNeighborJoiningSmallInputs(t *testing.T) {
	one, err := NeighborJoining([][]float64{{0}})
	if err != nil || !one.IsLeaf() {
		t.Fatalf("single leaf: %v %v", one, err)
	}
	two, err := NeighborJoining([][]float64{{0, 1}, {1, 0}})
	if err != nil || two.IsLeaf() || len(two.Leaves()) != 2 {
		t.Fatalf("two leaves: %v %v", two, err)
	}
}

func TestNeighborJoiningEndToEnd(t *testing.T) {
	app, err := NewReal(RealParams{N: 8, Groups: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	cvs := make([]*CV, 8)
	for i := range cvs {
		v, err := app.LoadItem(i)
		if err != nil {
			t.Fatal(err)
		}
		cvs[i] = v.(*CV)
	}
	d := make([][]float64, 8)
	for i := range d {
		d[i] = make([]float64, 8)
	}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			v, _ := app.ComparePair(i, j, cvs[i], cvs[j])
			d[i][j] = v.(float64)
			d[j][i] = d[i][j]
		}
	}
	root, err := NeighborJoining(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Leaves()) != 8 {
		t.Fatalf("tree lost species: %v", root.Leaves())
	}
}
