// Package phylo implements the paper's bioinformatics application (§5.2):
// alignment-free phylogenetic tree construction with the k-string
// composition-vector (CV) method of Qi, Wang and Hao.
//
// App is the Table-1 cost model (parse 36.9±14.79 ms, pre-process 27.0±
// 4.90 ms, irregular comparisons 2.1±0.79 ms, 145.8 MB slots). RealApp is
// the full pure-Go pipeline: FASTA decompression, composition-vector
// extraction with Markov background subtraction, sparse-vector correlation
// distance, and UPGMA tree construction — replacing the paper's CUDA
// kernels with behaviour-equivalent Go code.
package phylo

import (
	"rocket/internal/sim"
	"rocket/internal/stats"
)

// Table 1 constants.
const (
	// DefaultN is the proteome count of the DAS-5 experiments; the
	// Cartesius experiment (§6.6) uses CartesiusN.
	DefaultN = 2500
	// CartesiusN is the March-2020 UniProt reference-bacteria count.
	CartesiusN = 6818
	// SlotBytes is the composition-vector slot size (145.8 MB; slots are
	// sized for the largest CV).
	SlotBytes = 145800000
	// MeanFileBytes is the average compressed FASTA size (1.8 GB / 2500).
	MeanFileBytes = 720000
)

// Params configures the cost-model application.
type Params struct {
	// N is the number of proteomes; 0 means DefaultN.
	N int
	// Seed drives the duration draws.
	Seed uint64
}

// App is the bioinformatics cost model. It implements core.Application.
type App struct {
	n    int
	seed uint64

	parseDist stats.Dist
	preDist   stats.Dist
	cmpDist   stats.Dist
	fileDist  stats.Dist
}

// New returns the cost-model application.
func New(p Params) *App {
	n := p.N
	if n == 0 {
		n = DefaultN
	}
	return &App{
		n:    n,
		seed: p.Seed,
		// Sparse vectors of wildly varying population make this workload
		// irregular (Fig. 7): log-normal comparison times.
		parseDist: stats.Normal{Mu: 36.9, Sigma: 14.79, Min: 1},
		preDist:   stats.Normal{Mu: 27.0, Sigma: 4.90, Min: 1},
		cmpDist:   stats.LogNormal{MeanV: 2.1, StdV: 0.79},
		fileDist:  stats.LogNormal{MeanV: MeanFileBytes, StdV: 400000},
	}
}

// Name implements core.Application.
func (a *App) Name() string { return "bioinformatics" }

// NumItems implements core.Application.
func (a *App) NumItems() int { return a.n }

// FileSize implements core.Application.
func (a *App) FileSize(item int) int64 {
	s := int64(a.fileDist.Sample(stats.HashRNG(a.seed, uint64(item), 0xfa57a)))
	if s < 1<<10 {
		s = 1 << 10
	}
	return s
}

// ItemSize implements core.Application.
func (a *App) ItemSize() int64 { return SlotBytes }

// ResultSize implements core.Application.
func (a *App) ResultSize() int64 { return 8 }

// ParseTime implements core.Application.
func (a *App) ParseTime(item int) sim.Time {
	return sim.Millis(a.parseDist.Sample(stats.HashRNG(a.seed, uint64(item), 0x9a45e)))
}

// PreprocessTime implements core.Application.
func (a *App) PreprocessTime(item int) sim.Time {
	return sim.Millis(a.preDist.Sample(stats.HashRNG(a.seed, uint64(item), 0x94e)))
}

// CompareTime implements core.Application.
func (a *App) CompareTime(i, j int) sim.Time {
	return sim.Millis(a.cmpDist.Sample(stats.HashRNG(a.seed, uint64(i), uint64(j))))
}

// PostprocessTime implements core.Application.
func (a *App) PostprocessTime(i, j int) sim.Time { return 0 }

// MeanCosts returns the Table 1 mean stage durations.
func (a *App) MeanCosts() (parse, pre, cmp, post sim.Time, fileBytes float64) {
	return sim.Millis(36.9), sim.Millis(27.0), sim.Millis(2.1), 0, MeanFileBytes
}
