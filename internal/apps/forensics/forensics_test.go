package forensics

import (
	"math"
	"testing"
	"testing/quick"

	"rocket/internal/sim"
	"rocket/internal/stats"
)

func TestCostModelDefaults(t *testing.T) {
	a := New(Params{})
	if a.NumItems() != DefaultN {
		t.Fatalf("n = %d", a.NumItems())
	}
	if a.ItemSize() != SlotBytes || a.ResultSize() != 8 {
		t.Fatal("sizes wrong")
	}
	if a.Name() != "forensics" {
		t.Fatal("name wrong")
	}
	if a.PostprocessTime(0, 1) != 0 {
		t.Fatal("postprocess should be 0")
	}
}

func TestCostModelCalibration(t *testing.T) {
	a := New(Params{N: 500, Seed: 3})
	var parse, cmp stats.Summary
	for i := 0; i < 500; i++ {
		parse.Add(a.ParseTime(i).Millis())
	}
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			cmp.Add(a.CompareTime(i, j).Millis())
		}
	}
	if math.Abs(parse.Mean()-130.8) > 3 {
		t.Errorf("parse mean %.2f ms, want ~130.8", parse.Mean())
	}
	if math.Abs(parse.Std()-14.11) > 3 {
		t.Errorf("parse std %.2f, want ~14.11", parse.Std())
	}
	if math.Abs(cmp.Mean()-1.1) > 0.05 {
		t.Errorf("compare mean %.3f ms, want ~1.1", cmp.Mean())
	}
	// The forensics workload is regular: tight spread.
	if cmp.Std() > 0.05 {
		t.Errorf("compare std %.4f, want regular (~0.01)", cmp.Std())
	}
}

func TestDurationsDeterministic(t *testing.T) {
	a1, a2 := New(Params{N: 10, Seed: 9}), New(Params{N: 10, Seed: 9})
	for i := 0; i < 10; i++ {
		if a1.ParseTime(i) != a2.ParseTime(i) {
			t.Fatal("parse time not a pure function of (seed, item)")
		}
		if a1.FileSize(i) != a2.FileSize(i) {
			t.Fatal("file size not deterministic")
		}
	}
	if a1.CompareTime(2, 5) != a2.CompareTime(2, 5) {
		t.Fatal("compare time not deterministic")
	}
	if a1.CompareTime(2, 5) == a1.CompareTime(2, 6) {
		t.Fatal("compare time ignores pair")
	}
}

func TestMeanCosts(t *testing.T) {
	a := New(Params{})
	parse, pre, cmp, post, fb := a.MeanCosts()
	if parse != sim.Millis(130.8) || pre != sim.Millis(20.5) || cmp != sim.Millis(1.1) || post != 0 {
		t.Fatal("mean costs do not match Table 1")
	}
	if fb != MeanFileBytes {
		t.Fatal("file bytes wrong")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := stats.NewRNG(1)
	img := &Image{W: 37, H: 23, Pix: make([]uint8, 37*23)}
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	raw, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != img.W || got.H != img.H {
		t.Fatalf("dims %dx%d", got.W, got.H)
	}
	for i := range img.Pix {
		if got.Pix[i] != img.Pix[i] {
			t.Fatalf("pixel %d: %d != %d", i, got.Pix[i], img.Pix[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGICxxxxxxxxxxxxxxxx"),
		append([]byte(imageMagic), make([]byte, 8)...), // zero dims
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestEncodeValidatesBuffer(t *testing.T) {
	if _, err := Encode(&Image{W: 4, H: 4, Pix: make([]uint8, 3)}); err == nil {
		t.Fatal("mismatched buffer accepted")
	}
}

func TestNCCBasics(t *testing.T) {
	a := []float32{1, -1, 2, -2, 3, -3}
	if v, err := NCC(a, a); err != nil || math.Abs(v-1) > 1e-9 {
		t.Fatalf("self NCC = %v, %v; want 1", v, err)
	}
	b := make([]float32, len(a))
	for i := range a {
		b[i] = -a[i]
	}
	if v, _ := NCC(a, b); math.Abs(v+1) > 1e-9 {
		t.Fatalf("negated NCC = %v, want -1", v)
	}
	if _, err := NCC(a, a[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	zero := make([]float32, len(a))
	if v, err := NCC(a, zero); err != nil || v != 0 {
		t.Fatalf("zero-variance NCC = %v, %v; want 0", v, err)
	}
}

func TestPRNUIdentifiesCommonSource(t *testing.T) {
	p := RealParams{N: 12, Cameras: 3, Seed: 42}
	app, err := NewReal(p)
	if err != nil {
		t.Fatal(err)
	}
	patterns := make([][]float32, p.N)
	for i := 0; i < 12; i++ {
		v, err := app.LoadItem(i)
		if err != nil {
			t.Fatal(err)
		}
		patterns[i] = v.([]float32)
	}
	var same, diff stats.Summary
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			v, err := app.ComparePair(i, j, patterns[i], patterns[j])
			if err != nil {
				t.Fatal(err)
			}
			score := v.(float64)
			if app.Camera(i) == app.Camera(j) {
				same.Add(score)
			} else {
				diff.Add(score)
			}
		}
	}
	if same.Mean() < diff.Mean()+0.1 {
		t.Fatalf("PRNU separation failed: same-camera mean %.3f, different %.3f",
			same.Mean(), diff.Mean())
	}
	if same.Min() <= diff.Max() {
		t.Logf("warning: score overlap (same min %.3f, diff max %.3f)", same.Min(), diff.Max())
	}
}

func TestDatasetRoundTripThroughDisk(t *testing.T) {
	p := RealParams{N: 4, Cameras: 2, Seed: 7}
	dir := t.TempDir()
	if err := WriteDataset(p, dir); err != nil {
		t.Fatal(err)
	}
	p.Dataset = &DirDataset{Dir: dir, N: 4}
	app, err := NewReal(p)
	if err != nil {
		t.Fatal(err)
	}
	v, err := app.LoadItem(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.([]float32)) != 128*96 {
		t.Fatalf("pattern size %d", len(v.([]float32)))
	}
}

func TestDatasetSizeMismatchRejected(t *testing.T) {
	_, err := NewReal(RealParams{N: 5, Dataset: &MemDataset{Files: make([][]byte, 3)}})
	if err == nil {
		t.Fatal("mismatched dataset accepted")
	}
}

func TestMemDatasetOutOfRange(t *testing.T) {
	d := &MemDataset{Files: [][]byte{{1}}}
	if _, err := d.File(5); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if _, err := d.File(-1); err == nil {
		t.Fatal("negative accepted")
	}
}

// Property: extraction output is zero-mean and finite for arbitrary images.
func TestQuickExtractPattern(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		img := &Image{W: 16, H: 12, Pix: make([]uint8, 16*12)}
		for i := range img.Pix {
			img.Pix[i] = uint8(rng.Intn(256))
		}
		pat := ExtractPattern(img)
		var mean float64
		for _, v := range pat {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return false
			}
			mean += float64(v)
		}
		mean /= float64(len(pat))
		return math.Abs(mean) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
