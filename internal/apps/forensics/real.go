package forensics

import (
	"fmt"
	"os"
	"path/filepath"

	"rocket/internal/stats"
)

// Dataset supplies the raw input files of the items.
type Dataset interface {
	// File returns the raw bytes of item's input file.
	File(item int) ([]byte, error)
	// Len returns the number of items.
	Len() int
}

// MemDataset is an in-memory dataset.
type MemDataset struct {
	Files [][]byte
}

// File implements Dataset.
func (d *MemDataset) File(item int) ([]byte, error) {
	if item < 0 || item >= len(d.Files) {
		return nil, fmt.Errorf("forensics: item %d out of range", item)
	}
	return d.Files[item], nil
}

// Len implements Dataset.
func (d *MemDataset) Len() int { return len(d.Files) }

// DirDataset reads numbered files ("img%05d.prnu") from a directory.
type DirDataset struct {
	Dir string
	N   int
}

// File implements Dataset.
func (d *DirDataset) File(item int) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.Dir, fmt.Sprintf("img%05d.prnu", item)))
}

// Len implements Dataset.
func (d *DirDataset) Len() int { return d.N }

// RealParams configures the real-kernel application.
type RealParams struct {
	// N is the number of images.
	N int
	// Cameras is the number of distinct source cameras; images are
	// assigned round-robin.
	Cameras int
	// Width and Height are the image dimensions (the paper uses
	// 3648x2736; the synthetic default is 128x96 so examples run fast).
	Width, Height int
	// Strength is the PRNU pattern standard deviation.
	Strength float64
	Seed     uint64
	// Dataset overrides generation with pre-existing files (e.g. written
	// by WriteDataset earlier).
	Dataset Dataset
}

func (p *RealParams) fillDefaults() {
	if p.N == 0 {
		p.N = 20
	}
	if p.Cameras == 0 {
		p.Cameras = 4
	}
	if p.Width == 0 {
		p.Width = 128
	}
	if p.Height == 0 {
		p.Height = 96
	}
	if p.Strength == 0 {
		p.Strength = 0.05
	}
}

// RealApp runs the actual PRNU pipeline. It implements both
// core.Application (cost model) and core.Computer (real kernels).
type RealApp struct {
	*App
	params RealParams
	ds     Dataset
	truth  []int // camera index per item
}

// NewReal builds the real application, generating a synthetic data set
// unless one is supplied.
func NewReal(p RealParams) (*RealApp, error) {
	p.fillDefaults()
	a := &RealApp{App: New(Params{N: p.N, Seed: p.Seed}), params: p}
	a.truth = make([]int, p.N)
	for i := range a.truth {
		a.truth[i] = i % p.Cameras
	}
	if p.Dataset != nil {
		if p.Dataset.Len() != p.N {
			return nil, fmt.Errorf("forensics: dataset has %d items, want %d", p.Dataset.Len(), p.N)
		}
		a.ds = p.Dataset
		return a, nil
	}
	mem, err := GenerateDataset(p)
	if err != nil {
		return nil, err
	}
	a.ds = mem
	return a, nil
}

// GenerateDataset synthesizes the image files for the given parameters.
func GenerateDataset(p RealParams) (*MemDataset, error) {
	p.fillDefaults()
	cams := make([]*Camera, p.Cameras)
	for c := range cams {
		cams[c] = NewCamera(p.Width, p.Height, p.Strength, stats.HashRNG(p.Seed, uint64(c), 0xca).Uint64())
	}
	ds := &MemDataset{Files: make([][]byte, p.N)}
	for i := 0; i < p.N; i++ {
		rng := stats.HashRNG(p.Seed, uint64(i), 0x501)
		img := cams[i%p.Cameras].Shoot(rng)
		raw, err := Encode(img)
		if err != nil {
			return nil, err
		}
		ds.Files[i] = raw
	}
	return ds, nil
}

// WriteDataset materializes a generated data set into a directory, one
// container file per image, readable later through DirDataset.
func WriteDataset(p RealParams, dir string) error {
	ds, err := GenerateDataset(p)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, raw := range ds.Files {
		name := filepath.Join(dir, fmt.Sprintf("img%05d.prnu", i))
		if err := os.WriteFile(name, raw, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Camera returns the ground-truth camera index of an item.
func (a *RealApp) Camera(item int) int { return a.truth[item] }

// LoadItem implements core.Computer: decode the container and extract the
// PRNU pattern (the parse + pre-process stages of Fig. 2).
func (a *RealApp) LoadItem(item int) (interface{}, error) {
	raw, err := a.ds.File(item)
	if err != nil {
		return nil, err
	}
	img, err := Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("item %d: %w", item, err)
	}
	return ExtractPattern(img), nil
}

// ComparePair implements core.Computer: Normalized Cross Correlation
// between two PRNU patterns.
func (a *RealApp) ComparePair(i, j int, x, y interface{}) (interface{}, error) {
	return NCC(x.([]float32), y.([]float32))
}
