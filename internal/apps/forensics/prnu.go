package forensics

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"rocket/internal/stats"
)

// Image is a grayscale image. The paper's application decodes JPEG with
// libjpeg; this reproduction uses a simple deflate-compressed container so
// the whole pipeline stays pure Go while still exercising real decode
// work.
type Image struct {
	W, H int
	Pix  []uint8
}

const imageMagic = "PRNU1\n"

// Encode serializes the image into the container format.
func Encode(img *Image) ([]byte, error) {
	if len(img.Pix) != img.W*img.H {
		return nil, fmt.Errorf("forensics: pixel buffer %d != %dx%d", len(img.Pix), img.W, img.H)
	}
	var buf bytes.Buffer
	buf.WriteString(imageMagic)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(img.W))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(img.H))
	buf.Write(hdr[:])
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(img.Pix); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses a container produced by Encode.
func Decode(raw []byte) (*Image, error) {
	if len(raw) < len(imageMagic)+8 || string(raw[:len(imageMagic)]) != imageMagic {
		return nil, fmt.Errorf("forensics: bad image header")
	}
	rest := raw[len(imageMagic):]
	w := int(binary.LittleEndian.Uint32(rest[0:4]))
	h := int(binary.LittleEndian.Uint32(rest[4:8]))
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("forensics: implausible dimensions %dx%d", w, h)
	}
	zr := flate.NewReader(bytes.NewReader(rest[8:]))
	defer zr.Close()
	pix := make([]uint8, w*h)
	if _, err := io.ReadFull(zr, pix); err != nil {
		return nil, fmt.Errorf("forensics: decompress: %w", err)
	}
	return &Image{W: w, H: h, Pix: pix}, nil
}

// Camera is a simulated imaging sensor with a fixed multiplicative PRNU
// pattern (§5.1: small deficiencies in sensor responsivity).
type Camera struct {
	W, H int
	// K is the PRNU pattern, one multiplicative factor deviation per
	// pixel (typically a few percent).
	K []float32
}

// NewCamera creates a camera whose PRNU pattern is drawn from the given
// seed. Strength is the pattern's standard deviation (e.g. 0.05).
func NewCamera(w, h int, strength float64, seed uint64) *Camera {
	rng := stats.NewRNG(seed)
	k := make([]float32, w*h)
	for i := range k {
		k[i] = float32(strength * rng.NormFloat64())
	}
	return &Camera{W: w, H: h, K: k}
}

// Shoot produces an image of a random smooth scene as captured by this
// camera: scene luminance modulated by (1 + K) plus shot noise.
func (c *Camera) Shoot(rng *stats.RNG) *Image {
	scene := smoothScene(c.W, c.H, rng)
	pix := make([]uint8, c.W*c.H)
	for i, s := range scene {
		v := s*(1+float64(c.K[i])) + 2*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		pix[i] = uint8(v + 0.5)
	}
	return &Image{W: c.W, H: c.H, Pix: pix}
}

// smoothScene builds a low-frequency luminance field: a sum of a handful
// of smooth 2D cosine waves over a bright base level, so that the PRNU
// signal (proportional to luminance) is well exercised.
func smoothScene(w, h int, rng *stats.RNG) []float64 {
	type wave struct{ ax, ay, phase, amp float64 }
	waves := make([]wave, 4)
	for i := range waves {
		waves[i] = wave{
			ax:    rng.Float64() * 4 * math.Pi / float64(w),
			ay:    rng.Float64() * 4 * math.Pi / float64(h),
			phase: rng.Float64() * 2 * math.Pi,
			amp:   10 + 20*rng.Float64(),
		}
	}
	scene := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 160.0
			for _, wv := range waves {
				v += wv.amp * math.Cos(wv.ax*float64(x)+wv.ay*float64(y)+wv.phase)
			}
			scene[y*w+x] = v
		}
	}
	return scene
}

// ExtractPattern computes the noise residual W = I - denoise(I), the PRNU
// estimate that the paper's GPU kernel produces. The denoise filter is a
// 3x3 mean filter; the residual is returned zero-meaned.
func ExtractPattern(img *Image) []float32 {
	w, h := img.W, img.H
	out := make([]float32, w*h)
	var mean float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sum, cnt float64
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if nx < 0 || ny < 0 || nx >= w || ny >= h {
						continue
					}
					sum += float64(img.Pix[ny*w+nx])
					cnt++
				}
			}
			r := float64(img.Pix[y*w+x]) - sum/cnt
			out[y*w+x] = float32(r)
			mean += r
		}
	}
	mean /= float64(len(out))
	for i := range out {
		out[i] -= float32(mean)
	}
	return out
}

// NCC computes the Normalized Cross Correlation between two equally sized
// patterns, the paper's similarity metric for PRNU patterns.
func NCC(a, b []float32) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("forensics: NCC on patterns of size %d and %d", len(a), len(b))
	}
	var ma, mb float64
	for i := range a {
		ma += float64(a[i])
		mb += float64(b[i])
	}
	n := float64(len(a))
	ma /= n
	mb /= n
	var dot, na, nb float64
	for i := range a {
		da, db := float64(a[i])-ma, float64(b[i])-mb
		dot += da * db
		na += da * da
		nb += db * db
	}
	if na == 0 || nb == 0 {
		return 0, nil
	}
	return dot / math.Sqrt(na*nb), nil
}
