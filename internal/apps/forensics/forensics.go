// Package forensics implements the paper's digital-forensics application
// (§5.1): common-source camera identification through Photo Response
// Non-Uniformity (PRNU) noise patterns.
//
// The package provides two layers. App is the cost model calibrated from
// Table 1 (parse 130.8±14.11 ms, pre-process 20.5±0.02 ms, comparison
// 1.1±0.01 ms on the TitanX Maxwell; 38.1 MB slots), used by the benchmark
// harness. RealApp additionally implements the actual pipeline in pure Go
// on synthetic data — image decoding, PRNU extraction by denoising, and
// Normalized Cross Correlation — replacing the paper's libjpeg + CUDA
// kernels with behaviour-equivalent substitutes.
package forensics

import (
	"rocket/internal/sim"
	"rocket/internal/stats"
)

// Table 1 constants (reference GPU: NVIDIA TitanX Maxwell).
const (
	// DefaultN is the Dresden-database image count used in the paper.
	DefaultN = 4980
	// SlotBytes is the preprocessed PRNU pattern size (38.1 MB).
	SlotBytes = 38100000
	// MeanFileBytes is the average on-disk JPEG size (19.4 GB / 4980).
	MeanFileBytes = 3900000
)

// Params configures the cost-model application.
type Params struct {
	// N is the number of images; 0 means DefaultN.
	N int
	// Seed drives the per-item and per-pair duration draws.
	Seed uint64
}

// App is the forensics cost model. It implements core.Application.
type App struct {
	n    int
	seed uint64

	parseDist stats.Dist
	preDist   stats.Dist
	cmpDist   stats.Dist
	fileDist  stats.Dist
}

// New returns the cost-model application.
func New(p Params) *App {
	n := p.N
	if n == 0 {
		n = DefaultN
	}
	return &App{
		n:    n,
		seed: p.Seed,
		// The forensics workload is highly regular (Fig. 7): images have
		// equal dimensions, so all stages have tiny variance.
		parseDist: stats.Normal{Mu: 130.8, Sigma: 14.11, Min: 1},
		preDist:   stats.Normal{Mu: 20.5, Sigma: 0.02, Min: 0.1},
		cmpDist:   stats.Normal{Mu: 1.1, Sigma: 0.01, Min: 0.1},
		fileDist:  stats.Normal{Mu: MeanFileBytes, Sigma: 400000, Min: 1 << 20},
	}
}

// Name implements core.Application.
func (a *App) Name() string { return "forensics" }

// NumItems implements core.Application.
func (a *App) NumItems() int { return a.n }

// FileSize implements core.Application.
func (a *App) FileSize(item int) int64 {
	return int64(a.fileDist.Sample(stats.HashRNG(a.seed, uint64(item), 0xf11e)))
}

// ItemSize implements core.Application.
func (a *App) ItemSize() int64 { return SlotBytes }

// ResultSize implements core.Application.
func (a *App) ResultSize() int64 { return 8 }

// ParseTime implements core.Application.
func (a *App) ParseTime(item int) sim.Time {
	return sim.Millis(a.parseDist.Sample(stats.HashRNG(a.seed, uint64(item), 0x9a45e)))
}

// PreprocessTime implements core.Application.
func (a *App) PreprocessTime(item int) sim.Time {
	return sim.Millis(a.preDist.Sample(stats.HashRNG(a.seed, uint64(item), 0x94e)))
}

// CompareTime implements core.Application.
func (a *App) CompareTime(i, j int) sim.Time {
	return sim.Millis(a.cmpDist.Sample(stats.HashRNG(a.seed, uint64(i), uint64(j))))
}

// PostprocessTime implements core.Application. Post-processing only
// thresholds the correlation score; Table 1 reports 0 ms.
func (a *App) PostprocessTime(i, j int) sim.Time { return 0 }

// MeanCosts returns the Table 1 mean stage durations for the performance
// model.
func (a *App) MeanCosts() (parse, pre, cmp, post sim.Time, fileBytes float64) {
	return sim.Millis(130.8), sim.Millis(20.5), sim.Millis(1.1), 0, MeanFileBytes
}
