// Package microscopy implements the paper's localization-microscopy
// application (§5.3): all-to-all registration of super-resolution
// particles (point clouds of fluorophore localizations) for template-free
// particle fusion, after Heydarian et al.
//
// App is the Table-1 cost model (parse 27.4±1.56 ms, no pre-processing,
// heavily irregular comparisons 564.3±348 ms, 6 KB slots). RealApp
// implements the actual kernels in pure Go: the quadratic L2 distance
// between Gaussian mixture models, the Bhattacharyya cross-term score, and
// a rotation-search registration optimizer whose run time is data
// dependent — the source of the workload's irregularity.
package microscopy

import (
	"rocket/internal/sim"
	"rocket/internal/stats"
)

// Table 1 constants.
const (
	// DefaultN is the particle count used in the paper.
	DefaultN = 256
	// SlotBytes is the in-memory particle size (6 KB).
	SlotBytes = 6000
	// MeanFileBytes is the average JSON file size (150 MB / 256).
	MeanFileBytes = 586000
)

// Params configures the cost-model application.
type Params struct {
	// N is the number of particles; 0 means DefaultN.
	N int
	// Seed drives the duration draws.
	Seed uint64
}

// App is the microscopy cost model. It implements core.Application.
type App struct {
	n    int
	seed uint64

	parseDist stats.Dist
	cmpDist   stats.Dist
	fileDist  stats.Dist
}

// New returns the cost-model application.
func New(p Params) *App {
	n := p.N
	if n == 0 {
		n = DefaultN
	}
	return &App{
		n:    n,
		seed: p.Seed,
		// Registration is compute-intensive and heavily data-dependent
		// (Fig. 7, right: a long right tail), hence the log-normal.
		parseDist: stats.Normal{Mu: 27.4, Sigma: 1.56, Min: 1},
		cmpDist:   stats.LogNormal{MeanV: 564.3, StdV: 348},
		fileDist:  stats.Normal{Mu: MeanFileBytes, Sigma: 60000, Min: 10000},
	}
}

// Name implements core.Application.
func (a *App) Name() string { return "microscopy" }

// NumItems implements core.Application.
func (a *App) NumItems() int { return a.n }

// FileSize implements core.Application.
func (a *App) FileSize(item int) int64 {
	return int64(a.fileDist.Sample(stats.HashRNG(a.seed, uint64(item), 0xfa57a)))
}

// ItemSize implements core.Application.
func (a *App) ItemSize() int64 { return SlotBytes }

// ResultSize implements core.Application.
func (a *App) ResultSize() int64 { return 32 }

// ParseTime implements core.Application.
func (a *App) ParseTime(item int) sim.Time {
	return sim.Millis(a.parseDist.Sample(stats.HashRNG(a.seed, uint64(item), 0x9a45e)))
}

// PreprocessTime implements core.Application: the application works
// directly on the parsed localizations (§5.3), so there is no GPU
// pre-processing stage.
func (a *App) PreprocessTime(item int) sim.Time { return 0 }

// CompareTime implements core.Application.
func (a *App) CompareTime(i, j int) sim.Time {
	return sim.Millis(a.cmpDist.Sample(stats.HashRNG(a.seed, uint64(i), uint64(j))))
}

// PostprocessTime implements core.Application.
func (a *App) PostprocessTime(i, j int) sim.Time { return 0 }

// MeanCosts returns the Table 1 mean stage durations.
func (a *App) MeanCosts() (parse, pre, cmp, post sim.Time, fileBytes float64) {
	return sim.Millis(27.4), 0, sim.Millis(564.3), 0, MeanFileBytes
}
