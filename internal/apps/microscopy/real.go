package microscopy

import (
	"fmt"
	"os"
	"path/filepath"

	"rocket/internal/stats"
)

// Dataset supplies the raw JSON particle files.
type Dataset interface {
	File(item int) ([]byte, error)
	Len() int
}

// MemDataset is an in-memory dataset.
type MemDataset struct {
	Files [][]byte
	// Thetas are the ground-truth orientations of the generated particles.
	Thetas []float64
}

// File implements Dataset.
func (d *MemDataset) File(item int) ([]byte, error) {
	if item < 0 || item >= len(d.Files) {
		return nil, fmt.Errorf("microscopy: item %d out of range", item)
	}
	return d.Files[item], nil
}

// Len implements Dataset.
func (d *MemDataset) Len() int { return len(d.Files) }

// DirDataset reads numbered files ("particle%05d.json") from a directory.
type DirDataset struct {
	Dir string
	N   int
}

// File implements Dataset.
func (d *DirDataset) File(item int) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.Dir, fmt.Sprintf("particle%05d.json", item)))
}

// Len implements Dataset.
func (d *DirDataset) Len() int { return d.N }

// RealParams configures the real-kernel application.
type RealParams struct {
	// N is the number of particles.
	N int
	// Noise is the localization noise standard deviation.
	Noise float64
	// LabelEff is the labeling efficiency (detection probability).
	LabelEff float64
	// Sigma is the GMM kernel width used by the registration.
	Sigma float64
	// CoarseSteps is the number of coarse rotation-scan angles.
	CoarseSteps int
	Seed        uint64
	// Dataset overrides generation with existing files.
	Dataset Dataset
}

func (p *RealParams) fillDefaults() {
	if p.N == 0 {
		p.N = 8
	}
	if p.Noise == 0 {
		p.Noise = 2
	}
	if p.LabelEff == 0 {
		p.LabelEff = 0.7
	}
	if p.Sigma == 0 {
		p.Sigma = 6
	}
	if p.CoarseSteps == 0 {
		p.CoarseSteps = 24
	}
}

// RealApp runs the actual registration pipeline. It implements
// core.Application and core.Computer.
type RealApp struct {
	*App
	params RealParams
	ds     Dataset
	thetas []float64 // ground truth when generated
}

// NewReal builds the real application, generating synthetic particles
// unless a dataset is supplied.
func NewReal(p RealParams) (*RealApp, error) {
	p.fillDefaults()
	a := &RealApp{App: New(Params{N: p.N, Seed: p.Seed}), params: p}
	if p.Dataset != nil {
		if p.Dataset.Len() != p.N {
			return nil, fmt.Errorf("microscopy: dataset has %d items, want %d", p.Dataset.Len(), p.N)
		}
		a.ds = p.Dataset
		if mem, ok := p.Dataset.(*MemDataset); ok {
			a.thetas = mem.Thetas
		}
		return a, nil
	}
	ds, err := GenerateDataset(p)
	if err != nil {
		return nil, err
	}
	a.ds = ds
	a.thetas = ds.Thetas
	return a, nil
}

// GenerateDataset synthesizes particle files from the default template.
func GenerateDataset(p RealParams) (*MemDataset, error) {
	p.fillDefaults()
	tpl := DefaultTemplate()
	ds := &MemDataset{Files: make([][]byte, p.N), Thetas: make([]float64, p.N)}
	for i := 0; i < p.N; i++ {
		rng := stats.HashRNG(p.Seed, uint64(i), 0x9a671c1e)
		particle, theta := tpl.Observe(rng, i, p.Noise, p.LabelEff)
		raw, err := EncodeJSON(particle)
		if err != nil {
			return nil, err
		}
		ds.Files[i] = raw
		ds.Thetas[i] = theta
	}
	return ds, nil
}

// WriteDataset materializes a generated data set into a directory.
func WriteDataset(p RealParams, dir string) error {
	ds, err := GenerateDataset(p)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, raw := range ds.Files {
		name := filepath.Join(dir, fmt.Sprintf("particle%05d.json", i))
		if err := os.WriteFile(name, raw, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Theta returns the ground-truth orientation of a generated particle
// (0 when the dataset was supplied externally).
func (a *RealApp) Theta(item int) float64 {
	if item < len(a.thetas) {
		return a.thetas[item]
	}
	return 0
}

// LoadItem implements core.Computer: parse the particle JSON. The
// application has no pre-processing stage (§5.3).
func (a *RealApp) LoadItem(item int) (interface{}, error) {
	raw, err := a.ds.File(item)
	if err != nil {
		return nil, err
	}
	p, err := DecodeJSON(raw)
	if err != nil {
		return nil, fmt.Errorf("item %d: %w", item, err)
	}
	return p, nil
}

// ComparePair implements core.Computer: register the two particles and
// return the Registration outcome.
func (a *RealApp) ComparePair(i, j int, x, y interface{}) (interface{}, error) {
	return Register(x.(*Particle), y.(*Particle), a.params.Sigma, a.params.CoarseSteps), nil
}
