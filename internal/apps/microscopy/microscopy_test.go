package microscopy

import (
	"math"
	"testing"
	"testing/quick"

	"rocket/internal/stats"
)

func TestCostModelDefaults(t *testing.T) {
	a := New(Params{})
	if a.NumItems() != DefaultN || a.Name() != "microscopy" {
		t.Fatal("defaults wrong")
	}
	if a.ItemSize() != SlotBytes {
		t.Fatal("slot size wrong")
	}
	if a.PreprocessTime(3) != 0 {
		t.Fatal("microscopy has no pre-processing stage")
	}
}

func TestCompareTimesHeavyTailed(t *testing.T) {
	a := New(Params{N: 256, Seed: 1})
	var s stats.Summary
	for i := 0; i < 80; i++ {
		for j := i + 1; j < 80; j++ {
			s.Add(a.CompareTime(i, j).Millis())
		}
	}
	if math.Abs(s.Mean()-564.3)/564.3 > 0.1 {
		t.Errorf("compare mean %.1f, want ~564.3", s.Mean())
	}
	if s.Std() < 200 {
		t.Errorf("compare std %.1f; microscopy must be highly irregular (~348)", s.Std())
	}
	if s.Max() < 2*s.Mean() {
		t.Errorf("no heavy tail: max %.1f vs mean %.1f", s.Max(), s.Mean())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := &Particle{ID: 7, Points: []Point{{1, 2}, {-3.5, 4.25}}}
	raw, err := EncodeJSON(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || len(got.Points) != 2 || got.Points[1].Y != 4.25 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	if _, err := DecodeJSON([]byte("{broken")); err == nil {
		t.Fatal("broken JSON accepted")
	}
	if _, err := DecodeJSON([]byte(`{"id":1,"points":[]}`)); err == nil {
		t.Fatal("empty particle accepted")
	}
}

func TestCenteredAndRotated(t *testing.T) {
	p := &Particle{Points: []Point{{0, 0}, {2, 0}, {0, 2}, {2, 2}}}
	c := p.Centered()
	cc := c.Centroid()
	if math.Abs(cc.X) > 1e-12 || math.Abs(cc.Y) > 1e-12 {
		t.Fatalf("centroid after centering = %+v", cc)
	}
	r := c.Rotated(math.Pi / 2)
	// (1, 1) rotated 90 degrees -> (-1, 1).
	found := false
	for _, pt := range r.Points {
		if math.Abs(pt.X+1) < 1e-9 && math.Abs(pt.Y-1) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("rotation wrong: %+v", r.Points)
	}
}

func TestCrossTermPeaksAtAlignment(t *testing.T) {
	tpl := DefaultTemplate()
	base := &Particle{Points: tpl.Points()}
	aligned := CrossTerm(base, base, 5)
	rotated := CrossTerm(base, base.Rotated(1.0), 5)
	if aligned <= rotated {
		t.Fatalf("cross term aligned %v <= rotated %v", aligned, rotated)
	}
}

func TestGMML2SelfIsZero(t *testing.T) {
	tpl := DefaultTemplate()
	p := &Particle{Points: tpl.Points()}
	if l2 := GMML2(p, p, 5); math.Abs(l2) > 1e-9 {
		t.Fatalf("self L2 = %v", l2)
	}
}

func TestRegisterRecoversRotation(t *testing.T) {
	tpl := DefaultTemplate()
	base := &Particle{Points: tpl.Points()}
	for _, want := range []float64{0.4, -1.2, 2.5} {
		// b is the template rotated by -want, so registering b onto the
		// base requires rotating it by +want.
		b := base.Rotated(-want)
		reg := Register(base, b, 4, 24)
		if math.Abs(angleDiff(reg.Theta, want)) > 0.05 {
			t.Errorf("recovered theta %.3f, want %.3f", reg.Theta, want)
		}
		if reg.Evals < 24 {
			t.Errorf("suspiciously few evaluations: %d", reg.Evals)
		}
	}
}

func angleDiff(a, b float64) float64 {
	d := a - b
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

func TestRegisterNoisyParticles(t *testing.T) {
	app, err := NewReal(RealParams{N: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	particles := make([]*Particle, 4)
	for i := range particles {
		v, err := app.LoadItem(i)
		if err != nil {
			t.Fatal(err)
		}
		particles[i] = v.(*Particle)
	}
	v, err := app.ComparePair(0, 1, particles[0], particles[1])
	if err != nil {
		t.Fatal(err)
	}
	reg := v.(Registration)
	want := angleDiff(app.Theta(0), app.Theta(1))
	if math.Abs(angleDiff(reg.Theta, want)) > 0.15 {
		t.Fatalf("noisy registration theta %.3f, want %.3f (truths %.3f, %.3f)",
			reg.Theta, want, app.Theta(0), app.Theta(1))
	}
	if reg.Score <= 0 || reg.L2 < 0 {
		t.Fatalf("degenerate registration: %+v", reg)
	}
}

func TestEvalsVaryAcrossPairs(t *testing.T) {
	app, err := NewReal(RealParams{N: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	particles := make([]*Particle, 6)
	for i := range particles {
		v, _ := app.LoadItem(i)
		particles[i] = v.(*Particle)
	}
	evals := map[int]bool{}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			v, _ := app.ComparePair(i, j, particles[i], particles[j])
			evals[v.(Registration).Evals] = true
		}
	}
	if len(evals) < 2 {
		t.Fatalf("all registrations took identical work; expected data-dependent cost, got %v", evals)
	}
}

func TestDatasetDiskRoundTrip(t *testing.T) {
	p := RealParams{N: 3, Seed: 1}
	dir := t.TempDir()
	if err := WriteDataset(p, dir); err != nil {
		t.Fatal(err)
	}
	p.Dataset = &DirDataset{Dir: dir, N: 3}
	app, err := NewReal(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.LoadItem(2); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetSizeMismatch(t *testing.T) {
	if _, err := NewReal(RealParams{N: 5, Dataset: &MemDataset{}}); err == nil {
		t.Fatal("mismatched dataset accepted")
	}
}

func TestObserveUnderLabeling(t *testing.T) {
	tpl := DefaultTemplate()
	full := len(tpl.Points())
	rng := stats.NewRNG(4)
	p, _ := tpl.Observe(rng, 0, 1, 0.5)
	if len(p.Points) == 0 {
		t.Fatal("no detections")
	}
	// With 50% efficiency and up to 2 detections each, counts should
	// differ from the template size essentially always.
	if len(p.Points) == full {
		t.Log("warning: detection count equals template size (possible but unlikely)")
	}
}

// Property: registration score is symmetric within tolerance and theta is
// in (-pi, pi] for arbitrary seeds.
func TestQuickRegistrationSane(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		tpl := DefaultTemplate()
		a, _ := tpl.Observe(rng, 0, 2, 0.8)
		b, _ := tpl.Observe(rng, 1, 2, 0.8)
		reg := Register(a, b, 6, 12)
		if reg.Theta < -2*math.Pi || reg.Theta > 2*math.Pi {
			return false
		}
		return reg.Score > 0 && !math.IsNaN(reg.L2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
