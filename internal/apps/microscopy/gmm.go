package microscopy

import (
	"encoding/json"
	"fmt"
	"math"

	"rocket/internal/stats"
)

// Point is one 2D fluorophore localization.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Particle is a point cloud of localizations, the unit of comparison.
// Particles are stored as JSON (§5.3).
type Particle struct {
	ID     int     `json:"id"`
	Points []Point `json:"points"`
}

// EncodeJSON serializes a particle.
func EncodeJSON(p *Particle) ([]byte, error) { return json.Marshal(p) }

// DecodeJSON parses a particle file.
func DecodeJSON(raw []byte) (*Particle, error) {
	var p Particle
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("microscopy: bad particle JSON: %w", err)
	}
	if len(p.Points) == 0 {
		return nil, fmt.Errorf("microscopy: particle %d has no localizations", p.ID)
	}
	return &p, nil
}

// Centroid returns the mean of the points.
func (p *Particle) Centroid() Point {
	var cx, cy float64
	for _, pt := range p.Points {
		cx += pt.X
		cy += pt.Y
	}
	n := float64(len(p.Points))
	return Point{cx / n, cy / n}
}

// Centered returns a copy translated so its centroid is the origin.
func (p *Particle) Centered() *Particle {
	c := p.Centroid()
	out := &Particle{ID: p.ID, Points: make([]Point, len(p.Points))}
	for i, pt := range p.Points {
		out.Points[i] = Point{pt.X - c.X, pt.Y - c.Y}
	}
	return out
}

// Rotated returns a copy rotated by theta radians about the origin.
func (p *Particle) Rotated(theta float64) *Particle {
	s, c := math.Sin(theta), math.Cos(theta)
	out := &Particle{ID: p.ID, Points: make([]Point, len(p.Points))}
	for i, pt := range p.Points {
		out.Points[i] = Point{c*pt.X - s*pt.Y, s*pt.X + c*pt.Y}
	}
	return out
}

// CrossTerm is the Gaussian-mixture cross correlation between two point
// clouds with isotropic kernels of width sigma: the Bhattacharyya-style
// score of Heydarian et al. Higher is better aligned.
func CrossTerm(a, b *Particle, sigma float64) float64 {
	inv := 1 / (4 * sigma * sigma)
	var sum float64
	for _, pa := range a.Points {
		for _, pb := range b.Points {
			dx, dy := pa.X-pb.X, pa.Y-pb.Y
			sum += math.Exp(-(dx*dx + dy*dy) * inv)
		}
	}
	return sum / float64(len(a.Points)*len(b.Points))
}

// GMML2 is the quadratic L2 distance between the two Gaussian mixture
// models (Jian & Vemuri): ||A||^2 + ||B||^2 - 2<A, B>. Lower is better
// aligned.
func GMML2(a, b *Particle, sigma float64) float64 {
	return CrossTerm(a, a, sigma) + CrossTerm(b, b, sigma) - 2*CrossTerm(a, b, sigma)
}

// Registration is the outcome of aligning particle B onto particle A.
type Registration struct {
	// Theta is the rotation applied to B (radians, in (-pi, pi]).
	Theta float64
	// Score is the cross-term at the optimum.
	Score float64
	// L2 is the GMM L2 distance at the optimum.
	L2 float64
	// Evals counts score evaluations — the data-dependent cost that makes
	// this workload irregular.
	Evals int
}

// Register aligns b to a: both are centered (translation), then the
// rotation maximizing the GMM cross-term is found by a coarse angular scan
// followed by golden-section refinement of every competitive coarse
// candidate. Ambiguous particle pairs produce several competitive
// candidates and therefore cost more evaluations — the data-dependent,
// irregular run time of §5.3.
func Register(a, b *Particle, sigma float64, coarseSteps int) Registration {
	if coarseSteps < 4 {
		coarseSteps = 4
	}
	ca, cb := a.Centered(), b.Centered()
	evals := 0
	score := func(theta float64) float64 {
		evals++
		return CrossTerm(ca, cb.Rotated(theta), sigma)
	}
	// Coarse scan.
	thetas := make([]float64, coarseSteps)
	scores := make([]float64, coarseSteps)
	bestScore := math.Inf(-1)
	for k := 0; k < coarseSteps; k++ {
		thetas[k] = -math.Pi + 2*math.Pi*float64(k)/float64(coarseSteps)
		scores[k] = score(thetas[k])
		if scores[k] > bestScore {
			bestScore = scores[k]
		}
	}
	// Refine every local maximum whose score is competitive with the best.
	width := 2 * math.Pi / float64(coarseSteps)
	bestTheta, bestRefined := 0.0, math.Inf(-1)
	for k := 0; k < coarseSteps; k++ {
		prev := scores[(k+coarseSteps-1)%coarseSteps]
		next := scores[(k+1)%coarseSteps]
		if scores[k] < prev || scores[k] < next || scores[k] < 0.8*bestScore {
			continue
		}
		theta, s := goldenMax(score, thetas[k]-width, thetas[k]+width, &evals)
		if s > bestRefined {
			bestRefined, bestTheta = s, theta
		}
	}
	return Registration{
		Theta: bestTheta,
		Score: bestRefined,
		L2:    GMML2(ca, cb.Rotated(bestTheta), sigma),
		Evals: evals,
	}
}

// goldenMax runs golden-section search for the maximum of f on [lo, hi].
func goldenMax(f func(float64) float64, lo, hi float64, evals *int) (float64, float64) {
	const phi = 0.6180339887498949
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := f(x1), f(x2)
	for hi-lo > 1e-4 && *evals < 10000 {
		if f1 < f2 {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = f(x2)
		} else {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = f(x1)
		}
	}
	mid := (lo + hi) / 2
	return mid, f(mid)
}

// Template describes the underlying biological structure imaged by all
// particles: points on a ring plus spokes, a shape with no rotational
// symmetry for unambiguous registration.
type Template struct {
	Ring   int
	Spokes int
	Radius float64
}

// DefaultTemplate returns the structure used by the synthetic generator.
func DefaultTemplate() Template { return Template{Ring: 40, Spokes: 3, Radius: 50} }

// Points materializes the template point set. Spokes sit at irregular
// angles with distinct lengths and the ring is incomplete, so the
// structure has no approximate rotational self-similarity — ambiguous
// registrations would otherwise dominate.
func (t Template) Points() []Point {
	var pts []Point
	for i := 0; i < t.Ring; i++ {
		// An incomplete ring (300 degrees) breaks rotational symmetry.
		ang := 2 * math.Pi * 5 / 6 * float64(i) / float64(t.Ring)
		pts = append(pts, Point{t.Radius * math.Cos(ang), t.Radius * math.Sin(ang)})
	}
	spokeAngles := []float64{0, 0.9, 2.3, 3.4, 4.8, 5.6}
	for s := 0; s < t.Spokes; s++ {
		ang := spokeAngles[s%len(spokeAngles)]
		length := 9 - 2*(s%3) // 9, 7, 5 points
		for r := 1; r <= length; r++ {
			d := t.Radius * float64(r) / 10
			pts = append(pts, Point{d * math.Cos(ang), d * math.Sin(ang)})
		}
	}
	return pts
}

// Observe simulates imaging the template: random rotation and translation,
// localization noise, and under-labeling (each point detected with
// probability labelEff, possibly multiple times).
func (t Template) Observe(rng *stats.RNG, id int, noise, labelEff float64) (*Particle, float64) {
	theta := (2*rng.Float64() - 1) * math.Pi
	dx, dy := 20*rng.NormFloat64(), 20*rng.NormFloat64()
	s, c := math.Sin(theta), math.Cos(theta)
	var pts []Point
	for _, p := range t.Points() {
		detections := 0
		if rng.Float64() < labelEff {
			detections = 1 + rng.Intn(2)
		}
		for d := 0; d < detections; d++ {
			x := c*p.X - s*p.Y + dx + noise*rng.NormFloat64()
			y := s*p.X + c*p.Y + dy + noise*rng.NormFloat64()
			pts = append(pts, Point{x, y})
		}
	}
	if len(pts) == 0 {
		pts = append(pts, Point{dx, dy})
	}
	return &Particle{ID: id, Points: pts}, theta
}
