package stats

import (
	"fmt"
	"math"
)

// Dist is a one-dimensional probability distribution that can be sampled
// with a caller-supplied generator, keeping all randomness injectable.
type Dist interface {
	// Sample draws one value.
	Sample(r *RNG) float64
	// Mean returns the distribution's expected value.
	Mean() float64
	// String describes the distribution, e.g. "Normal(1.1, 0.01)".
	String() string
}

// Constant is a degenerate distribution that always returns V.
type Constant struct{ V float64 }

// Sample implements Dist.
func (c Constant) Sample(*RNG) float64 { return c.V }

// Mean implements Dist.
func (c Constant) Mean() float64 { return c.V }

func (c Constant) String() string { return fmt.Sprintf("Const(%g)", c.V) }

// Normal is a Gaussian distribution truncated at Min (values below Min are
// clamped, which keeps durations positive without distorting the bulk of
// the distribution for the small relative sigmas in Table 1).
type Normal struct {
	Mu, Sigma float64
	Min       float64
}

// Sample implements Dist.
func (n Normal) Sample(r *RNG) float64 {
	v := n.Mu + n.Sigma*r.NormFloat64()
	if v < n.Min {
		v = n.Min
	}
	return v
}

// Mean implements Dist. For the small truncation used here the clamp's
// effect on the mean is negligible and ignored.
func (n Normal) Mean() float64 { return n.Mu }

func (n Normal) String() string { return fmt.Sprintf("Normal(%g, %g)", n.Mu, n.Sigma) }

// LogNormal is a log-normal distribution parameterized directly by the
// desired mean and standard deviation of the resulting (not log) variable.
// It models the heavy-tailed, irregular kernel times of the bioinformatics
// and microscopy applications (Fig. 7).
type LogNormal struct {
	MeanV, StdV float64
}

func (l LogNormal) params() (mu, sigma float64) {
	v := l.StdV * l.StdV
	m2 := l.MeanV * l.MeanV
	sigma2 := math.Log(1 + v/m2)
	mu = math.Log(l.MeanV) - sigma2/2
	return mu, math.Sqrt(sigma2)
}

// Sample implements Dist.
func (l LogNormal) Sample(r *RNG) float64 {
	mu, sigma := l.params()
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return l.MeanV }

func (l LogNormal) String() string { return fmt.Sprintf("LogNormal(%g, %g)", l.MeanV, l.StdV) }

// Uniform is a uniform distribution over [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("Uniform(%g, %g)", u.Lo, u.Hi) }

// Exponential has rate 1/MeanV.
type Exponential struct{ MeanV float64 }

// Sample implements Dist.
func (e Exponential) Sample(r *RNG) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -e.MeanV * math.Log(u)
}

// Mean implements Dist.
func (e Exponential) Mean() float64 { return e.MeanV }

func (e Exponential) String() string { return fmt.Sprintf("Exp(%g)", e.MeanV) }
