package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates online count/mean/variance/min/max of a stream of
// observations (Welford's algorithm), without storing the samples.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the sample mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Std returns the sample standard deviation (0 if fewer than 2 samples).
func (s *Summary) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// Sum returns mean * n.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// String formats as "mean±std (n=...)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g±%.3g (n=%d)", s.Mean(), s.Std(), s.n)
}

// Histogram is a fixed-range linear-bin histogram used to reproduce the
// comparison-time histograms of Fig. 7.
type Histogram struct {
	Lo, Hi   float64
	Counts   []uint64
	under    uint64
	over     uint64
	samples  []float64 // retained when KeepSamples is set, for percentiles
	keepAll  bool
	nSamples uint64
}

// NewHistogram returns a histogram over [lo, hi) with the given number of
// bins. If keepSamples is true, raw samples are retained for exact
// percentile queries.
func NewHistogram(lo, hi float64, bins int, keepSamples bool) *Histogram {
	if bins < 1 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%g, %g) x%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, bins), keepAll: keepSamples}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.nSamples++
	if h.keepAll {
		h.samples = append(h.samples, x)
	}
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) {
			i--
		}
		h.Counts[i]++
	}
}

// N returns the total number of samples, including out-of-range ones.
func (h *Histogram) N() uint64 { return h.nSamples }

// Underflow and Overflow report samples outside [Lo, Hi).
func (h *Histogram) Underflow() uint64 { return h.under }

// Overflow reports the number of samples >= Hi.
func (h *Histogram) Overflow() uint64 { return h.over }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Percentile returns the p-quantile (0 <= p <= 1) from retained samples.
// It panics if the histogram was created without keepSamples.
func (h *Histogram) Percentile(p float64) float64 {
	if !h.keepAll {
		panic("stats: Percentile requires keepSamples")
	}
	if len(h.samples) == 0 {
		return 0
	}
	s := append([]float64(nil), h.samples...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}

// Render draws a textual histogram with the given width in characters,
// one row per bin, matching the layout used in EXPERIMENTS.md.
func (h *Histogram) Render(width int) string {
	var peak uint64
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if peak > 0 {
			bar = int(float64(width) * float64(c) / float64(peak))
		}
		fmt.Fprintf(&b, "%10.3g | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "%10s | %d overflow\n", ">", h.over)
	}
	return b.String()
}

// TimeSeries accumulates (t, value) points bucketed by a fixed interval,
// used for the rolling-throughput plot of Fig. 14.
type TimeSeries struct {
	Interval float64 // bucket width in seconds
	Buckets  []float64
}

// NewTimeSeries returns a series with the given bucket width (seconds).
func NewTimeSeries(interval float64) *TimeSeries {
	if interval <= 0 {
		panic("stats: TimeSeries interval must be positive")
	}
	return &TimeSeries{Interval: interval}
}

// Add accumulates v into the bucket containing time t (seconds).
func (ts *TimeSeries) Add(t, v float64) {
	if t < 0 {
		return
	}
	i := int(t / ts.Interval)
	for len(ts.Buckets) <= i {
		ts.Buckets = append(ts.Buckets, 0)
	}
	ts.Buckets[i] += v
}

// Rate returns the per-second rate for each bucket.
func (ts *TimeSeries) Rate() []float64 {
	out := make([]float64, len(ts.Buckets))
	for i, v := range ts.Buckets {
		out[i] = v / ts.Interval
	}
	return out
}
