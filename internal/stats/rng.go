// Package stats provides the deterministic random-number generation,
// probability distributions, histograms, and online summary statistics used
// throughout the simulation and the workload generators.
//
// Everything is seedable and reproducible: the same seed always yields the
// same stream, independent of Go version or platform, which underpins the
// determinism guarantees of the DES (see internal/sim).
package stats

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). It is not safe for concurrent use;
// the simulation is single-threaded by construction.
type RNG struct {
	s        [4]uint64
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded from the given seed. Distinct seeds give
// independent-looking streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed over the full state.
	x := seed
	for i := 0; i < 4; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork derives an independent generator from r's stream, for handing a
// private stream to a sub-component without coupling their consumption.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (Box-Muller, one value per
// call; the spare is cached).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			f := math.Sqrt(-2 * math.Log(s) / s)
			r.spare = v * f
			r.hasSpare = true
			return u * f
		}
	}
}

// HashRNG returns a generator whose stream is a pure function of (seed, a,
// b). It is used to give every (item, pair, node) combination its own
// deterministic randomness regardless of execution order — for example the
// comparison time of pair (i, j) must not depend on which GPU runs it.
func HashRNG(seed uint64, a, b uint64) *RNG {
	h := seed
	h = mix(h, a)
	h = mix(h, b)
	return NewRNG(h)
}

func mix(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
