package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical values across seeds", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for n := 1; n <= 20; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(3)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-0.1) > 0.01 {
			t.Errorf("bucket %d frequency %.4f, want ~0.1", i, got)
		}
	}
}

func TestIntnZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.NormFloat64())
	}
	if math.Abs(s.Mean()) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", s.Mean())
	}
	if math.Abs(s.Std()-1) > 0.02 {
		t.Errorf("normal std = %v, want ~1", s.Std())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestHashRNGOrderIndependence(t *testing.T) {
	a := HashRNG(1, 10, 20).Uint64()
	// Recreate with identical inputs: must match regardless of other draws.
	_ = HashRNG(1, 99, 99).Uint64()
	b := HashRNG(1, 10, 20).Uint64()
	if a != b {
		t.Fatal("HashRNG not a pure function of inputs")
	}
	if HashRNG(1, 10, 20).Uint64() == HashRNG(1, 20, 10).Uint64() {
		t.Fatal("HashRNG symmetric in (a, b); arguments must matter")
	}
	if HashRNG(1, 10, 20).Uint64() == HashRNG(2, 10, 20).Uint64() {
		t.Fatal("HashRNG ignores seed")
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(1)
	f := r.Fork()
	if r.Uint64() == f.Uint64() {
		t.Fatal("forked stream mirrors parent")
	}
}

func TestConstantDist(t *testing.T) {
	c := Constant{V: 3.5}
	if c.Sample(NewRNG(1)) != 3.5 || c.Mean() != 3.5 {
		t.Fatal("constant distribution is not constant")
	}
}

func TestNormalDistMoments(t *testing.T) {
	d := Normal{Mu: 130.8, Sigma: 14.11}
	r := NewRNG(2)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(d.Sample(r))
	}
	if math.Abs(s.Mean()-130.8) > 0.5 {
		t.Errorf("mean %v, want ~130.8", s.Mean())
	}
	if math.Abs(s.Std()-14.11) > 0.5 {
		t.Errorf("std %v, want ~14.11", s.Std())
	}
}

func TestNormalClampsAtMin(t *testing.T) {
	d := Normal{Mu: 1, Sigma: 100, Min: 0.1}
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v < 0.1 {
			t.Fatalf("sample %v below Min", v)
		}
	}
}

func TestLogNormalMoments(t *testing.T) {
	d := LogNormal{MeanV: 564.3, StdV: 348}
	r := NewRNG(4)
	var s Summary
	for i := 0; i < 300000; i++ {
		s.Add(d.Sample(r))
	}
	if math.Abs(s.Mean()-564.3)/564.3 > 0.02 {
		t.Errorf("mean %v, want ~564.3", s.Mean())
	}
	if math.Abs(s.Std()-348)/348 > 0.05 {
		t.Errorf("std %v, want ~348", s.Std())
	}
	if s.Min() <= 0 {
		t.Errorf("log-normal produced non-positive sample %v", s.Min())
	}
}

func TestUniformAndExponential(t *testing.T) {
	r := NewRNG(6)
	u := Uniform{Lo: 2, Hi: 4}
	var su Summary
	for i := 0; i < 100000; i++ {
		v := u.Sample(r)
		if v < 2 || v >= 4 {
			t.Fatalf("uniform sample %v out of range", v)
		}
		su.Add(v)
	}
	if math.Abs(su.Mean()-3) > 0.02 {
		t.Errorf("uniform mean %v, want ~3", su.Mean())
	}
	e := Exponential{MeanV: 5}
	var se Summary
	for i := 0; i < 100000; i++ {
		se.Add(e.Sample(r))
	}
	if math.Abs(se.Mean()-5)/5 > 0.03 {
		t.Errorf("exponential mean %v, want ~5", se.Mean())
	}
}

func TestSummaryWelford(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", s.N(), s.Mean())
	}
	if math.Abs(s.Std()-2.138) > 0.001 {
		t.Fatalf("std = %v, want ~2.138 (sample std)", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Fatalf("sum = %v", s.Sum())
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10, true)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // underflow
	h.Add(10) // boundary -> overflow
	h.Add(99) // overflow
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count %d, want 1", i, c)
		}
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under/over = %d/%d", h.Underflow(), h.Overflow())
	}
	if h.N() != 13 {
		t.Fatalf("N = %d", h.N())
	}
	if bc := h.BinCenter(0); bc != 0.5 {
		t.Fatalf("BinCenter(0) = %v", bc)
	}
	if p := h.Percentile(0.5); p < 3 || p > 7 {
		t.Fatalf("median = %v", p)
	}
	if h.Render(20) == "" {
		t.Fatal("empty render")
	}
}

func TestHistogramPercentileWithoutSamplesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 1, 2, false).Percentile(0.5)
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(60)
	ts.Add(0, 30)
	ts.Add(59, 30)
	ts.Add(61, 120)
	r := ts.Rate()
	if len(r) != 2 || r[0] != 1 || r[1] != 2 {
		t.Fatalf("rates = %v", r)
	}
	ts.Add(-5, 100) // ignored
	if ts.Rate()[0] != 1 {
		t.Fatal("negative time not ignored")
	}
}

// Property: Summary matches the two-pass mean for arbitrary inputs.
func TestQuickSummaryMean(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		var sum float64
		ok := true
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			s.Add(x)
			sum += x
			n++
		}
		if n == 0 {
			return s.N() == 0
		}
		want := sum / float64(n)
		if math.Abs(s.Mean()-want) > 1e-6*(1+math.Abs(want)) {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram conserves samples: N == sum(bins) + under + over.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(-100, 100, 13, false)
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
		}
		var total uint64
		for _, c := range h.Counts {
			total += c
		}
		return total+h.Underflow()+h.Overflow() == h.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
