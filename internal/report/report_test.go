package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("a-very-long-name", 123456.7)
	out := tb.String()
	if !strings.Contains(out, "## Demo") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "alpha ") {
		t.Errorf("row not aligned:\n%s", out)
	}
	if !strings.Contains(out, "123457") {
		t.Errorf("large float not rounded to integer: %s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		0.1234: "0.123",
		12.34:  "12.3",
		9999.9: "10000",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2.5)
	csv := tb.CSV()
	if csv != "a,b\n1,2.500\n" {
		t.Fatalf("csv = %q", csv)
	}
}

func TestSeries(t *testing.T) {
	var b strings.Builder
	err := Series(&b, "chart", []string{"x", "yy"}, []float64{1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "##########") {
		t.Errorf("peak bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Errorf("half bar missing:\n%s", out)
	}
}

func TestSeriesAllZero(t *testing.T) {
	var b strings.Builder
	if err := Series(&b, "z", []string{"a"}, []float64{0}, 5); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if i := strings.Index(line, "|"); i >= 0 && strings.Contains(line[i:], "#") {
			t.Errorf("zero series drew bars: %q", line)
		}
	}
}
