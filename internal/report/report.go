// Package report renders aligned text tables and CSV series for the
// experiment harness, so every bench prints the same rows the paper's
// tables and figures report.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		case float32:
			row[i] = formatFloat(float64(x))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000 || x <= -1000:
		return fmt.Sprintf("%.0f", x)
	case x >= 10 || x <= -10:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.title != "" {
		if _, err := fmt.Fprintf(w, "## %s\n", t.title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.headers); err != nil {
		return err
	}
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Write(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// CSV renders comma-separated values (headers + rows), for plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Series writes an ASCII bar chart of labeled values, used for quick
// visual checks of figure shapes in bench output.
func Series(w io.Writer, title string, labels []string, values []float64, width int) error {
	if _, err := fmt.Fprintf(w, "## %s\n", title); err != nil {
		return err
	}
	var peak float64
	for _, v := range values {
		if v > peak {
			peak = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, v := range values {
		bar := 0
		if peak > 0 {
			bar = int(float64(width) * v / peak)
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		if _, err := fmt.Fprintf(w, "%-*s | %-*s %s\n",
			labelW, label, width, strings.Repeat("#", bar), formatFloat(v)); err != nil {
			return err
		}
	}
	return nil
}
