package sched

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"rocket/internal/core"
	"rocket/internal/fault"
	"rocket/internal/sim"
)

// fakeApp is a minimal deterministic application for scheduler tests:
// n items, constant per-stage costs dominated by cmp.
type fakeApp struct {
	name string
	n    int
	cmp  sim.Time
}

func (f fakeApp) Name() string                      { return f.name }
func (f fakeApp) NumItems() int                     { return f.n }
func (f fakeApp) FileSize(int) int64                { return 1 << 20 }
func (f fakeApp) ItemSize() int64                   { return 1 << 20 }
func (f fakeApp) ResultSize() int64                 { return 8 }
func (f fakeApp) ParseTime(int) sim.Time            { return sim.Micros(50) }
func (f fakeApp) PreprocessTime(int) sim.Time       { return sim.Micros(50) }
func (f fakeApp) CompareTime(int, int) sim.Time     { return f.cmp }
func (f fakeApp) PostprocessTime(int, int) sim.Time { return sim.Micros(10) }

func smallApp(name string, n int, cmp sim.Time) fakeApp {
	return fakeApp{name: name, n: n, cmp: cmp}
}

// pendingFor builds jobState queues for direct pick() tests.
func pendingFor(jobs ...Job) []*jobState {
	states, err := newStates(Config{Jobs: jobs, Nodes: 64, Seed: 1}.mustNormalize())
	if err != nil {
		panic(err)
	}
	return states
}

func (cfg Config) mustNormalize() Config {
	n, err := cfg.normalize()
	if err != nil {
		panic(err)
	}
	return n
}

func TestPickOrderingInvariants(t *testing.T) {
	short := smallApp("short", 4, sim.Millis(1))
	long := smallApp("long", 32, sim.Millis(50))
	cases := []struct {
		name    string
		policy  Policy
		jobs    []Job
		free    int
		running []*jobState
		usage   map[string]float64
		want    int // index into pending; -1 = nothing may start
	}{
		{
			name:   "fifo picks head when it fits",
			policy: PolicyFIFO,
			jobs:   []Job{{App: long, Nodes: 4}, {App: short, Nodes: 1}},
			free:   4,
			want:   0,
		},
		{
			name:   "fifo blocks behind a wide head",
			policy: PolicyFIFO,
			jobs:   []Job{{App: long, Nodes: 8}, {App: short, Nodes: 1}},
			free:   4,
			want:   -1, // no bypass: head-of-line blocking is the point
		},
		{
			name:   "sjf bypasses a long head",
			policy: PolicySJF,
			jobs:   []Job{{App: long, Nodes: 1}, {App: short, Nodes: 1}},
			free:   2,
			want:   1,
		},
		{
			name:   "sjf skips fitting check per job",
			policy: PolicySJF,
			jobs:   []Job{{App: short, Nodes: 8}, {App: long, Nodes: 2}},
			free:   4,
			want:   1, // the short job does not fit, the long one does
		},
		{
			name:   "sjf breaks ties toward earlier arrival",
			policy: PolicySJF,
			jobs:   []Job{{App: short, Nodes: 1}, {App: short, Nodes: 1}},
			free:   2,
			want:   0,
		},
		{
			name:   "fair-share prefers the unserved tenant",
			policy: PolicyFairShare,
			jobs:   []Job{{App: short, Tenant: "greedy", Nodes: 1}, {App: short, Tenant: "starved", Nodes: 1}},
			free:   2,
			usage:  map[string]float64{"greedy": 100},
			want:   1,
		},
		{
			name:   "fair-share breaks tenant ties toward arrival order",
			policy: PolicyFairShare,
			jobs:   []Job{{App: short, Tenant: "a", Nodes: 1}, {App: short, Tenant: "b", Nodes: 1}},
			free:   2,
			want:   0,
		},
		{
			name:   "fair-share only considers fitting jobs",
			policy: PolicyFairShare,
			jobs:   []Job{{App: short, Tenant: "starved", Nodes: 8}, {App: short, Tenant: "greedy", Nodes: 1}},
			free:   2,
			usage:  map[string]float64{"greedy": 100},
			want:   1,
		},
		{
			name:   "nothing fits",
			policy: PolicySJF,
			jobs:   []Job{{App: short, Nodes: 8}, {App: long, Nodes: 8}},
			free:   4,
			want:   -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pending := pendingFor(tc.jobs...)
			usage := tc.usage
			if usage == nil {
				usage = map[string]float64{}
			}
			got := pick(tc.policy, pending, tc.running, tc.free, 0, usage)
			if got != tc.want {
				t.Fatalf("pick(%v) = %d, want %d", tc.policy, got, tc.want)
			}
		})
	}
}

func TestFairShareCountsRunningJobs(t *testing.T) {
	short := smallApp("short", 4, sim.Millis(1))
	states := pendingFor(
		Job{App: short, Tenant: "a", Nodes: 1},
		Job{App: short, Tenant: "b", Nodes: 1},
	)
	// Tenant a has no completed usage but holds 4 nodes for 10s of
	// running time; fair-share must charge it and pick tenant b.
	running := []*jobState{{tenant: "a", lease: []int{0, 1, 2, 3}, start: 0}}
	got := pick(PolicyFairShare, states, running, 2, sim.Seconds(10), map[string]float64{})
	if got != 1 {
		t.Fatalf("pick = %d, want 1 (tenant b; tenant a is charged for running nodes)", got)
	}
}

func TestFairShareAlternatesWithinOnePlacementInstant(t *testing.T) {
	// Both tenants burst jobs at t=0. Elapsed running time is zero for
	// jobs placed this instant, so fairness must come from the
	// held-node tie-break: placements alternate a, b, a, b instead of
	// draining tenant a's arrivals first.
	short := smallApp("short", 4, sim.Millis(1))
	pending := pendingFor(
		Job{App: short, Tenant: "a", Nodes: 1},
		Job{App: short, Tenant: "a", Nodes: 1},
		Job{App: short, Tenant: "b", Nodes: 1},
		Job{App: short, Tenant: "b", Nodes: 1},
	)
	var running []*jobState
	var order []string
	for len(pending) > 0 {
		i := pick(PolicyFairShare, pending, running, 4, 0, map[string]float64{})
		if i < 0 {
			t.Fatal("pick refused a fitting job")
		}
		js := pending[i]
		pending = append(pending[:i], pending[i+1:]...)
		js.lease = []int{len(running)}
		running = append(running, js)
		order = append(order, js.tenant)
	}
	want := []string{"a", "b", "a", "b"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("placement order = %v, want %v", order, want)
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown policy")
	}
}

func mixedJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		switch i % 3 {
		case 0:
			jobs[i] = Job{Tenant: "batch", App: smallApp("big", 12, sim.Millis(20)), Nodes: 2}
		case 1:
			jobs[i] = Job{Tenant: "interactive", App: smallApp("small", 6, sim.Millis(2)), Nodes: 1}
		default:
			jobs[i] = Job{Tenant: "interactive", App: smallApp("tiny", 4, sim.Millis(1)), Nodes: 1,
				Arrival: sim.Millis(float64(i))}
		}
	}
	return jobs
}

func TestRunAllPoliciesCompleteAndConserve(t *testing.T) {
	for _, p := range Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			m, err := Run(Config{Jobs: mixedJobs(12), Nodes: 4, Policy: p, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if m.Completed != 12 || m.Rejected != 0 {
				t.Fatalf("completed %d rejected %d, want 12/0", m.Completed, m.Rejected)
			}
			var wantPairs uint64
			for _, j := range mixedJobs(12) {
				n := uint64(j.App.NumItems())
				wantPairs += n * (n - 1) / 2
			}
			if m.Pairs != wantPairs {
				t.Fatalf("pairs = %d, want %d", m.Pairs, wantPairs)
			}
			if m.Utilization <= 0 || m.Utilization > 1 {
				t.Fatalf("utilization = %v outside (0, 1]", m.Utilization)
			}
			for _, j := range m.Jobs {
				if j.Start < j.Arrival || j.End < j.Start {
					t.Fatalf("job %s has inconsistent times: %+v", j.ID, j)
				}
			}
		})
	}
}

func TestRunIsDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *Metrics {
		m, err := Run(Config{Jobs: mixedJobs(12), Nodes: 4, Policy: PolicyFairShare, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(1), run(8)
	if a.Makespan != b.Makespan || a.MeanWait != b.MeanWait || a.Pairs != b.Pairs {
		t.Fatalf("worker count changed results: %v/%v vs %v/%v", a.Makespan, a.MeanWait, b.Makespan, b.MeanWait)
	}
	for i := range a.Jobs {
		if a.Jobs[i].Start != b.Jobs[i].Start || a.Jobs[i].End != b.Jobs[i].End ||
			!reflect.DeepEqual(a.Jobs[i].Nodes, b.Jobs[i].Nodes) {
			t.Fatalf("job %d schedule differs across worker counts", i)
		}
	}
}

func TestLeasesNeverOverlap(t *testing.T) {
	m, err := Run(Config{Jobs: mixedJobs(12), Nodes: 3, Policy: PolicySJF, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range m.Jobs {
		for _, b := range m.Jobs[i+1:] {
			if a.End <= b.Start || b.End <= a.Start {
				continue // disjoint in time
			}
			for _, na := range a.Nodes {
				for _, nb := range b.Nodes {
					if na == nb {
						t.Fatalf("jobs %s and %s overlap in time and share node %d", a.ID, b.ID, na)
					}
				}
			}
		}
	}
}

func TestBackpressureRejectsWhenQueueFull(t *testing.T) {
	// All jobs arrive at t=0: admission sees the instantaneous queue, so
	// two jobs are admitted and the remaining four are shed before
	// placement drains the queue.
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{App: smallApp("j", 4, sim.Millis(5))}
	}
	m, err := Run(Config{Jobs: jobs, Nodes: 1, MaxQueued: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 2 || m.Rejected != 4 {
		t.Fatalf("completed %d rejected %d, want 2/4", m.Completed, m.Rejected)
	}
	// Staggered arrivals are admitted once the queue drains.
	for i := range jobs {
		jobs[i].Arrival = sim.Millis(float64(40 * i))
	}
	m, err = Run(Config{Jobs: jobs, Nodes: 1, MaxQueued: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 6 || m.Rejected != 0 {
		t.Fatalf("staggered: completed %d rejected %d, want 6/0", m.Completed, m.Rejected)
	}
}

func TestMaxRunningCapsConcurrency(t *testing.T) {
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{App: smallApp("j", 4, sim.Millis(5))}
	}
	m, err := Run(Config{Jobs: jobs, Nodes: 4, MaxRunning: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With one job at a time, executions must be strictly sequential.
	for i, a := range m.Jobs {
		for _, b := range m.Jobs[i+1:] {
			if a.End > b.Start && b.End > a.Start {
				t.Fatalf("jobs %s and %s ran concurrently despite MaxRunning=1", a.ID, b.ID)
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	app := smallApp("j", 4, sim.Millis(1))
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no jobs", Config{Nodes: 2}},
		{"no nodes", Config{Jobs: []Job{{App: app}}}},
		{"missing app", Config{Jobs: []Job{{}}, Nodes: 2}},
		{"too wide", Config{Jobs: []Job{{App: app, Nodes: 3}}, Nodes: 2}},
		{"duplicate ids", Config{Jobs: []Job{{ID: "x", App: app}, {ID: "x", App: app}}, Nodes: 2}},
		{"negative arrival", Config{Jobs: []Job{{App: app, Arrival: -1}}, Nodes: 2}},
	}
	for _, tc := range cases {
		if _, err := Run(tc.cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", tc.name)
		}
	}
}

func TestReportMentionsEveryJob(t *testing.T) {
	m, err := Run(Config{Jobs: mixedJobs(6), Nodes: 2, Policy: PolicyFIFO, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := m.Report()
	for i := range m.Jobs {
		if want := fmt.Sprintf("job%d", i); !containsWord(out, want) {
			t.Fatalf("report missing %s:\n%s", want, out)
		}
	}
}

func containsWord(s, w string) bool {
	for i := 0; i+len(w) <= len(s); i++ {
		if s[i:i+len(w)] == w {
			return true
		}
	}
	return false
}

// A job whose partition dies under it (fault injection, no restart) must
// be requeued and complete on a later attempt, not abort the fleet.
func TestPartitionLossRequeuesJob(t *testing.T) {
	doomed := new(fault.Schedule).Crash(0, sim.Millis(5))
	jobs := []Job{
		{ID: "victim", App: smallApp("victim", 8, sim.Millis(1)), Nodes: 1, Faults: doomed},
		{ID: "bystander", App: smallApp("bystander", 8, sim.Millis(1)), Nodes: 1},
	}
	m, err := Run(Config{Jobs: jobs, Nodes: 2, Seed: 1, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 2 || m.Rejected != 0 {
		t.Fatalf("completed=%d rejected=%d", m.Completed, m.Rejected)
	}
	if m.Retries != 1 {
		t.Fatalf("fleet retries = %d, want 1", m.Retries)
	}
	var victim JobMetrics
	for _, jm := range m.Jobs {
		if jm.ID == "victim" {
			victim = jm
		}
	}
	if victim.Retries != 1 {
		t.Fatalf("victim retries = %d, want 1", victim.Retries)
	}
	if victim.Inner == nil || victim.Inner.Crashes != 0 {
		t.Fatalf("final attempt must be fault-free, got %+v", victim.Inner)
	}
	if victim.Inner.Pairs == 0 {
		t.Fatal("victim never completed its pairs")
	}
}

// Without MaxRetries, partition loss aborts the run with the wrapped
// sentinel so callers can distinguish it from application failures.
func TestPartitionLossFatalWithoutRetries(t *testing.T) {
	doomed := new(fault.Schedule).Crash(0, sim.Millis(5))
	jobs := []Job{{ID: "victim", App: smallApp("victim", 8, sim.Millis(1)), Nodes: 1, Faults: doomed}}
	_, err := Run(Config{Jobs: jobs, Nodes: 1, Seed: 1})
	if !errors.Is(err, core.ErrPartitionLost) {
		t.Fatalf("err = %v, want wrapped core.ErrPartitionLost", err)
	}
}

// Retries are bounded: a job that keeps losing its partition eventually
// fails the run. (Faults only apply to attempt 0, so force the loop by
// re-injecting through Mutate on every attempt.)
func TestRetriesAreBounded(t *testing.T) {
	jobs := []Job{{
		ID:  "cursed",
		App: smallApp("cursed", 8, sim.Millis(1)),
		Mutate: func(cfg *core.Config) {
			cfg.Faults = new(fault.Schedule).Crash(0, sim.Millis(5))
		},
	}}
	_, err := Run(Config{Jobs: jobs, Nodes: 1, Seed: 1, MaxRetries: 3})
	if !errors.Is(err, core.ErrPartitionLost) {
		t.Fatalf("err = %v, want core.ErrPartitionLost after retry budget", err)
	}
	if _, err := Run(Config{Jobs: jobs, Nodes: 1, Seed: 1, MaxRetries: -1}); err == nil {
		t.Fatal("negative MaxRetries accepted")
	}
}
