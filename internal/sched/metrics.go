package sched

import (
	"fmt"
	"sort"
	"strings"

	"rocket/internal/core"
	"rocket/internal/report"
	"rocket/internal/sim"
)

// JobMetrics is the outcome of one job, in submission order within
// Metrics.Jobs.
type JobMetrics struct {
	ID     string
	Tenant string
	App    string
	// Nodes is the leased partition (node IDs of the shared cluster);
	// nil for rejected jobs.
	Nodes []int
	// Rejected marks jobs refused admission by the MaxQueued limit.
	Rejected bool
	// Failed marks jobs whose inner runtime failed under Config.KeepGoing;
	// Error holds the failure. The fleet run carried on without them.
	Failed bool
	Error  string
	// Retries counts requeues after partition loss (fault injection);
	// Start/End/Inner describe the final attempt.
	Retries int

	Arrival sim.Time
	Start   sim.Time
	End     sim.Time
	// Wait is Start - Arrival: queueing delay before placement.
	Wait sim.Time
	// Runtime is the job's service time on its partition.
	Runtime sim.Time

	// Inner is the job's full Rocket runtime metrics.
	Inner *core.Metrics

	// Pair-store provenance: the dataset namespace the job ran under,
	// the version it computed, and the resident prefix it was planned
	// against (all zero for jobs without store participation). Hit, miss
	// and put counts are in Inner.
	StoreRef       string
	DatasetVersion int
	BaseItems      int
}

// TenantMetrics aggregates one tenant's jobs.
type TenantMetrics struct {
	Tenant      string
	Jobs        int
	Rejected    int
	Failed      int
	NodeSeconds float64
	MeanWait    sim.Time
}

// Metrics is the fleet-wide outcome of one scheduler run.
type Metrics struct {
	Policy     Policy
	TotalNodes int

	// Jobs holds per-job outcomes in submission order.
	Jobs []JobMetrics
	// Tenants holds per-tenant aggregates sorted by tenant name.
	Tenants []TenantMetrics

	Completed int
	Rejected  int
	// Failed counts jobs whose inner runtime failed under KeepGoing.
	Failed int
	// Retries totals partition-loss requeues across all jobs.
	Retries int

	// Makespan is the completion time of the last job.
	Makespan sim.Time
	// MeanWait and MaxWait summarize queueing delay over completed jobs.
	MeanWait sim.Time
	MaxWait  sim.Time
	// Utilization is leased node-time over total node-time within the
	// makespan, in [0, 1].
	Utilization float64
	// JobsPerHour is completed jobs per virtual hour of makespan.
	JobsPerHour float64

	// Pairs, NetBytes, and IOBytes aggregate the inner runs.
	Pairs    uint64
	NetBytes int64
	IOBytes  int64

	// StoreHits, StoreMisses, and StorePuts aggregate pair-store
	// outcomes over completed jobs: pairs served instead of computed,
	// planned-resident pairs recomputed, and results emitted.
	StoreHits   uint64
	StoreMisses uint64
	StorePuts   uint64

	// P99Wait is the 99th-percentile queueing delay over completed jobs
	// (the max for fleets under 100 completions).
	P99Wait sim.Time
	// NodeSeconds is the capacity bill: active node-time within the
	// makespan. Fixed fleets pay TotalNodes for the whole run; elastic
	// fleets pay each slot only while it is provisioned.
	NodeSeconds float64
	// Elastic marks autoscaled runs; the fields below are zero otherwise.
	Elastic    bool
	ScaleUps   int
	ScaleDowns int
	Preempted  int
	// PeakNodes is the largest concurrently-usable node count observed.
	PeakNodes int
}

// aggregate folds per-job state into the fleet metrics. pool is the
// elastic slot tracker (nil for fixed fleets).
func aggregate(cfg Config, states []*jobState, pool *elasticPool) *Metrics {
	m := &Metrics{Policy: cfg.Policy, TotalNodes: cfg.Nodes}
	tenants := make(map[string]*TenantMetrics)
	tenantWaits := make(map[string]sim.Time)
	var waitSum sim.Time
	var waits []sim.Time
	var leasedSeconds float64
	for _, js := range states {
		jm := JobMetrics{
			ID:             js.id,
			Tenant:         js.tenant,
			App:            js.job.App.Name(),
			Arrival:        js.job.Arrival,
			Retries:        js.attempt,
			StoreRef:       js.job.StoreRef,
			DatasetVersion: js.job.DatasetVersion,
			BaseItems:      js.job.BaseItems,
		}
		m.Retries += js.attempt
		t := tenants[js.tenant]
		if t == nil {
			t = &TenantMetrics{Tenant: js.tenant}
			tenants[js.tenant] = t
		}
		t.Jobs++
		if js.reject {
			jm.Rejected = true
			m.Rejected++
			t.Rejected++
		} else if js.failed {
			// A failed job held its lease from start to abort; charge the
			// occupancy but keep it out of the completion statistics.
			jm.Failed = true
			if js.err != nil {
				jm.Error = js.err.Error()
			}
			jm.Nodes = js.lease
			jm.Start = js.start
			jm.End = js.end
			jm.Wait = js.start - js.job.Arrival
			jm.Runtime = js.end - js.start
			jm.Inner = js.inner
			m.Failed++
			t.Failed++
			nodeSecs := float64(len(js.lease)) * jm.Runtime.Seconds()
			t.NodeSeconds += nodeSecs
			leasedSeconds += nodeSecs
			if jm.End > m.Makespan {
				m.Makespan = jm.End
			}
		} else {
			jm.Nodes = js.lease
			jm.Start = js.start
			jm.End = js.end
			jm.Wait = js.start - js.job.Arrival
			jm.Runtime = js.inner.Runtime
			jm.Inner = js.inner
			m.Completed++
			m.Pairs += js.inner.Pairs
			m.NetBytes += js.inner.NetBytes
			m.IOBytes += js.inner.IOBytes
			m.StoreHits += js.inner.StoreHits
			m.StoreMisses += js.inner.StoreMisses
			m.StorePuts += js.inner.StorePuts
			waitSum += jm.Wait
			waits = append(waits, jm.Wait)
			tenantWaits[js.tenant] += jm.Wait
			nodeSecs := float64(len(js.lease)) * jm.Runtime.Seconds()
			t.NodeSeconds += nodeSecs
			leasedSeconds += nodeSecs
			if jm.End > m.Makespan {
				m.Makespan = jm.End
			}
			if jm.Wait > m.MaxWait {
				m.MaxWait = jm.Wait
			}
		}
		m.Jobs = append(m.Jobs, jm)
	}
	if m.Completed > 0 {
		m.MeanWait = waitSum / sim.Time(m.Completed)
		sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
		m.P99Wait = waits[(len(waits)*99)/100]
	}
	if m.Makespan > 0 {
		m.Utilization = leasedSeconds / (float64(m.TotalNodes) * m.Makespan.Seconds())
		m.JobsPerHour = float64(m.Completed) / (m.Makespan.Seconds() / 3600)
	}
	m.NodeSeconds = float64(m.TotalNodes) * m.Makespan.Seconds()
	if pool != nil {
		pool.finish(m.Makespan)
		m.Elastic = true
		m.NodeSeconds = pool.nodeSeconds
		m.ScaleUps = pool.scaleUps
		m.ScaleDowns = pool.scaleDowns
		m.Preempted = pool.preempted
		m.PeakNodes = pool.peak
	}
	for name, t := range tenants {
		if done := t.Jobs - t.Rejected - t.Failed; done > 0 {
			t.MeanWait = tenantWaits[name] / sim.Time(done)
		}
		m.Tenants = append(m.Tenants, *t)
	}
	sort.Slice(m.Tenants, func(i, j int) bool { return m.Tenants[i].Tenant < m.Tenants[j].Tenant })
	return m
}

// Report renders the fleet outcome as the throughput/latency tables the
// rocketqueue CLI prints.
func (m *Metrics) Report() string {
	var b strings.Builder
	jobs := report.NewTable(
		fmt.Sprintf("rocketd: %d jobs on %d shared nodes, policy %s", len(m.Jobs), m.TotalNodes, m.Policy),
		"job", "tenant", "app", "nodes", "arrival", "wait", "runtime", "end")
	for _, j := range m.Jobs {
		if j.Rejected {
			jobs.AddRow(j.ID, j.Tenant, j.App, "-", j.Arrival.String(), "rejected", "-", "-")
			continue
		}
		if j.Failed {
			jobs.AddRow(j.ID, j.Tenant, j.App, len(j.Nodes),
				j.Arrival.String(), j.Wait.String(), "failed", j.End.String())
			continue
		}
		jobs.AddRow(j.ID, j.Tenant, j.App, len(j.Nodes),
			j.Arrival.String(), j.Wait.String(), j.Runtime.String(), j.End.String())
	}
	b.WriteString(jobs.String())
	b.WriteByte('\n')

	tenants := report.NewTable("per-tenant", "tenant", "jobs", "rejected", "node-seconds", "mean wait")
	for _, t := range m.Tenants {
		tenants.AddRow(t.Tenant, t.Jobs, t.Rejected, t.NodeSeconds, t.MeanWait.String())
	}
	b.WriteString(tenants.String())
	b.WriteByte('\n')

	failed := ""
	if m.Failed > 0 {
		failed = fmt.Sprintf(", %d failed", m.Failed)
	}
	fmt.Fprintf(&b, "completed %d/%d jobs (%d rejected%s) | makespan %v | mean wait %v | max wait %v\n",
		m.Completed, len(m.Jobs), m.Rejected, failed, m.Makespan, m.MeanWait, m.MaxWait)
	fmt.Fprintf(&b, "utilization %.1f%% | %.1f jobs/hour | %d pairs | %.2f GB net | %.2f GB I/O\n",
		100*m.Utilization, m.JobsPerHour, m.Pairs,
		float64(m.NetBytes)/1e9, float64(m.IOBytes)/1e9)
	// Store provenance only for fleets that touched the pair store, so
	// storeless reports (and their goldens) are unchanged.
	if m.StoreHits > 0 || m.StoreMisses > 0 || m.StorePuts > 0 {
		fmt.Fprintf(&b, "pairstore: %d pairs served, %d recomputed, %d emitted\n",
			m.StoreHits, m.StoreMisses, m.StorePuts)
	}
	// Autoscaler summary only for elastic fleets, so fixed-fleet reports
	// (and their goldens) are unchanged.
	if m.Elastic {
		fixed := float64(m.TotalNodes) * m.Makespan.Seconds()
		fmt.Fprintf(&b, "autoscaler: %.2f node-seconds (fixed fleet %.2f) | p99 wait %v | peak %d nodes | %d up / %d down / %d preempted\n",
			m.NodeSeconds, fixed, m.P99Wait, m.PeakNodes, m.ScaleUps, m.ScaleDowns, m.Preempted)
	}
	return b.String()
}
