package sched

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rocket/internal/core"
	"rocket/internal/fault"
	"rocket/internal/sim"
)

func onlineConfig(nodes int) Config {
	return Config{Nodes: nodes, Policy: PolicyFairShare, Seed: 7}
}

// shutdownNow drains o with no deadline and fails the test on error.
func shutdownNow(t *testing.T, o *Online) *Metrics {
	t.Helper()
	m, err := o.Shutdown(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// replayBytes runs the batch replay of o's arrival log and returns both
// serialized fleet metrics for byte-comparison.
func replayBytes(t *testing.T, o *Online, m *Metrics) (online, batch []byte) {
	t.Helper()
	rm, err := Run(o.ReplayConfig())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	online, err = m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	batch, err = rm.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return online, batch
}

// The replay-fidelity property: whatever interleaving of concurrent
// submissions the online scheduler happens to observe, replaying the
// recorded arrival log through the batch scheduler produces byte-identical
// fleet metrics. Each trial uses a different submission schedule.
func TestOnlineReplayMatchesBatch(t *testing.T) {
	apps := []fakeApp{
		smallApp("tiny", 4, sim.Millis(1)),
		smallApp("small", 6, sim.Millis(2)),
		smallApp("big", 10, sim.Millis(10)),
	}
	for trial := 0; trial < 5; trial++ {
		o, err := StartOnline(onlineConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(trial*31 + g)))
				for k := 0; k < 3; k++ {
					app := apps[rng.Intn(len(apps))]
					tenant := []string{"alpha", "beta"}[rng.Intn(2)]
					if _, err := o.Submit(Job{Tenant: tenant, App: app, Nodes: 1 + rng.Intn(2)}); err != nil {
						t.Errorf("submit: %v", err)
						return
					}
					time.Sleep(time.Duration(rng.Intn(400)) * time.Microsecond)
				}
			}(g)
		}
		wg.Wait()
		m := shutdownNow(t, o)
		if m.Completed != 12 {
			t.Fatalf("trial %d: completed %d/12", trial, m.Completed)
		}
		got, want := replayBytes(t, o, m)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: online metrics differ from batch replay\nonline:\n%s\nreplay:\n%s",
				trial, got, want)
		}
	}
}

// Eight concurrent submitters against one scheduler: everything they
// submit before shutdown completes, and the query API stays consistent
// under the race detector.
func TestOnlineConcurrentSubmitters(t *testing.T) {
	o, err := StartOnline(onlineConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	const clients, each = 8, 4
	var wg sync.WaitGroup
	ids := make([][]string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < each; k++ {
				id, err := o.Submit(Job{App: smallApp("j", 4, sim.Millis(1))})
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				ids[c] = append(ids[c], id)
				if _, ok := o.Job(id); !ok {
					t.Errorf("client %d: job %s not visible after submit", c, id)
				}
			}
		}(c)
	}
	wg.Wait()
	m := shutdownNow(t, o)
	if m.Completed != clients*each {
		t.Fatalf("completed %d, want %d", m.Completed, clients*each)
	}
	for _, batch := range ids {
		for _, id := range batch {
			info, ok := o.Job(id)
			if !ok || info.Status != StatusDone {
				t.Fatalf("job %s: status %v, want done", id, info.Status)
			}
			if _, ok := o.JobMetrics(id); !ok {
				t.Fatalf("job %s: no metrics after completion", id)
			}
		}
	}
}

// Drain semantics: submissions after Shutdown begins are rejected with
// the typed sentinel, accepted work still drains.
func TestOnlineSubmitAfterShutdownRejected(t *testing.T) {
	o, err := StartOnline(onlineConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Submit(Job{App: smallApp("j", 6, sim.Millis(2))}); err != nil {
		t.Fatal(err)
	}
	go o.Shutdown(context.Background())
	for !o.Draining() {
		time.Sleep(50 * time.Microsecond)
	}
	if _, err := o.Submit(Job{App: smallApp("late", 4, sim.Millis(1))}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown: err = %v, want ErrShuttingDown", err)
	}
	m := shutdownNow(t, o)
	if m.Completed != 1 || len(m.Jobs) != 1 {
		t.Fatalf("drained fleet: %d completed of %d jobs, want 1/1", m.Completed, len(m.Jobs))
	}
}

// The Shutdown context bounds the wait, not the work: an expired deadline
// reports context.DeadlineExceeded while the drain continues, and a later
// unbounded Shutdown collects the result.
func TestOnlineShutdownDeadline(t *testing.T) {
	o, err := StartOnline(onlineConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := o.Submit(Job{App: smallApp("j", 8, sim.Millis(2))}); err != nil {
			t.Fatal(err)
		}
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := o.Shutdown(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown(expired) err = %v, want DeadlineExceeded", err)
	}
	m := shutdownNow(t, o)
	if m.Completed != 4 {
		t.Fatalf("completed %d/4 after deadline retry", m.Completed)
	}
}

// MaxQueued backpressure applies online exactly as in batch mode, and
// rejected submissions are part of the replayable log.
func TestOnlineBackpressureReplay(t *testing.T) {
	cfg := onlineConfig(1)
	cfg.MaxQueued = 1
	o, err := StartOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Burst faster than the single node can drain: some must be shed.
	for i := 0; i < 6; i++ {
		if _, err := o.Submit(Job{App: smallApp("j", 6, sim.Millis(5))}); err != nil {
			t.Fatal(err)
		}
	}
	m := shutdownNow(t, o)
	if m.Completed+m.Rejected != 6 || m.Failed != 0 {
		t.Fatalf("completed %d + rejected %d != 6 (failed %d)", m.Completed, m.Rejected, m.Failed)
	}
	got, want := replayBytes(t, o, m)
	if !bytes.Equal(got, want) {
		t.Fatalf("backpressure replay differs\nonline:\n%s\nreplay:\n%s", got, want)
	}
}

// A failing job surfaces as StatusFailed without taking the service down,
// and the failure replays identically (the replay config carries
// KeepGoing).
func TestOnlineFailedJobKeepsServing(t *testing.T) {
	o, err := StartOnline(onlineConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	doomed := new(fault.Schedule).Crash(0, sim.Millis(5))
	badID, err := o.Submit(Job{ID: "doomed", App: smallApp("doomed", 8, sim.Millis(1)), Faults: doomed})
	if err != nil {
		t.Fatal(err)
	}
	okID, err := o.Submit(Job{ID: "fine", App: smallApp("fine", 6, sim.Millis(1))})
	if err != nil {
		t.Fatal(err)
	}
	m := shutdownNow(t, o)
	if m.Completed != 1 || m.Failed != 1 {
		t.Fatalf("completed %d failed %d, want 1/1", m.Completed, m.Failed)
	}
	bad, _ := o.Job(badID)
	if bad.Status != StatusFailed || bad.Error == "" {
		t.Fatalf("doomed job: %+v, want failed with error", bad)
	}
	if !errors.Is(errFromInfo(o, badID), core.ErrPartitionLost) {
		t.Fatalf("doomed job error %q does not mention partition loss", bad.Error)
	}
	good, _ := o.Job(okID)
	if good.Status != StatusDone {
		t.Fatalf("bystander job: %+v, want done", good)
	}
	got, want := replayBytes(t, o, m)
	if !bytes.Equal(got, want) {
		t.Fatalf("failure replay differs\nonline:\n%s\nreplay:\n%s", got, want)
	}
}

// errFromInfo resurrects the jobState error for sentinel checks.
func errFromInfo(o *Online, id string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.byID[id].js.err
}

// Partition loss with retry budget requeues online, emits a retrying
// event, and replays identically.
func TestOnlineRetryReplay(t *testing.T) {
	cfg := onlineConfig(2)
	cfg.MaxRetries = 2
	o, err := StartOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	doomed := new(fault.Schedule).Crash(0, sim.Millis(5))
	id, err := o.Submit(Job{App: smallApp("victim", 8, sim.Millis(1)), Faults: doomed})
	if err != nil {
		t.Fatal(err)
	}
	m := shutdownNow(t, o)
	if m.Completed != 1 || m.Retries != 1 {
		t.Fatalf("completed %d retries %d, want 1/1", m.Completed, m.Retries)
	}
	info, _ := o.Job(id)
	if info.Status != StatusDone || info.Retries != 1 {
		t.Fatalf("victim info %+v, want done with 1 retry", info)
	}
	evs, _ := o.EventsSince(0)
	if !hasEvent(evs, EventRetrying, id) {
		t.Fatalf("no retrying event for %s in %+v", id, evs)
	}
	got, want := replayBytes(t, o, m)
	if !bytes.Equal(got, want) {
		t.Fatalf("retry replay differs\nonline:\n%s\nreplay:\n%s", got, want)
	}
}

func hasEvent(evs []Event, typ, job string) bool {
	for _, e := range evs {
		if e.Type == typ && e.Job == job {
			return true
		}
	}
	return false
}

// The event stream records the full lifecycle in order.
func TestOnlineEventLifecycle(t *testing.T) {
	o, err := StartOnline(onlineConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	id, err := o.Submit(Job{App: smallApp("j", 4, sim.Millis(1))})
	if err != nil {
		t.Fatal(err)
	}
	shutdownNow(t, o)
	evs, _ := o.EventsSince(0)
	var order []string
	for _, e := range evs {
		if e.Job == id {
			order = append(order, e.Type)
		}
	}
	want := []string{EventSubmitted, EventQueued, EventStarted, EventCompleted}
	if len(order) != len(want) {
		t.Fatalf("event order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("event order %v, want %v", order, want)
		}
	}
	if last := evs[len(evs)-1]; last.Type != EventShutdown {
		t.Fatalf("final event %+v, want shutdown", last)
	}
	// The wake channel from a drained stream closes on no further events.
	evs2, wake := o.EventsSince(len(evs))
	if len(evs2) != 0 {
		t.Fatalf("unexpected trailing events %+v", evs2)
	}
	select {
	case <-wake:
		t.Fatal("wake channel closed with no new events")
	default:
	}
}

// Submit validates synchronously: structural errors never enter the log.
func TestOnlineSubmitValidation(t *testing.T) {
	o, err := StartOnline(onlineConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Submit(Job{}); err == nil {
		t.Fatal("accepted a job with no App")
	}
	if _, err := o.Submit(Job{App: smallApp("wide", 4, sim.Millis(1)), Nodes: 3}); err == nil {
		t.Fatal("accepted a job wider than the cluster")
	}
	if _, err := o.Submit(Job{ID: "x", App: smallApp("a", 4, sim.Millis(1))}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Submit(Job{ID: "x", App: smallApp("b", 4, sim.Millis(1))}); err == nil {
		t.Fatal("accepted a duplicate ID")
	}
	if m := shutdownNow(t, o); len(m.Jobs) != 1 {
		t.Fatalf("log has %d jobs, want 1", len(m.Jobs))
	}
	if _, err := StartOnline(Config{Jobs: []Job{{App: smallApp("j", 4, 1)}}, Nodes: 2}); err == nil {
		t.Fatal("online mode accepted batch Jobs")
	}
}

// The wall-clock bridge: with TimeScale set, a submission against an idle
// fleet is assigned a virtual arrival reflecting elapsed wall time, and
// the log still replays identically.
func TestOnlineWallClockBridge(t *testing.T) {
	cfg := onlineConfig(2)
	cfg.TimeScale = 1000 // 1 wall ms = 1 virtual s: coarse enough to observe
	o, err := StartOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	id, err := o.Submit(Job{App: smallApp("j", 4, sim.Millis(1))})
	if err != nil {
		t.Fatal(err)
	}
	m := shutdownNow(t, o)
	info, _ := o.Job(id)
	if info.ArrivalNS < int64(sim.Seconds(1)) {
		t.Fatalf("arrival %v does not reflect wall delay", sim.Time(info.ArrivalNS))
	}
	got, want := replayBytes(t, o, m)
	if !bytes.Equal(got, want) {
		t.Fatalf("wall-bridge replay differs\nonline:\n%s\nreplay:\n%s", got, want)
	}
}

// The event stream is a bounded sliding window: a long-running scheduler
// must not retain events forever, and lagging subscribers skip the gap
// instead of faulting.
func TestOnlineEventWindowBounded(t *testing.T) {
	old := eventCap
	eventCap = 16
	defer func() { eventCap = old }()
	o, err := StartOnline(onlineConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // ~4 events each: well past the cap of 16
		if _, err := o.Submit(Job{App: smallApp("j", 4, sim.Millis(1))}); err != nil {
			t.Fatal(err)
		}
	}
	shutdownNow(t, o)
	o.mu.Lock()
	retained, base := len(o.events), o.eventsBase
	o.mu.Unlock()
	if retained > 16 {
		t.Fatalf("window holds %d events, cap 16", retained)
	}
	if base == 0 {
		t.Fatal("nothing was ever trimmed")
	}
	// Absolute sequence numbers survive trimming.
	evs, _ := o.EventsSince(0)
	if len(evs) == 0 || evs[0].Seq != base {
		t.Fatalf("EventsSince(0): first seq %d, want base %d", evs[0].Seq, base)
	}
	if last := evs[len(evs)-1]; last.Seq != base+len(evs)-1 || last.Type != EventShutdown {
		t.Fatalf("last event %+v inconsistent with base %d", last, base)
	}
	// A cursor inside the dropped range clamps forward, not backward.
	evs2, _ := o.EventsSince(base - 1)
	if len(evs2) != len(evs) {
		t.Fatalf("lagging cursor returned %d events, want %d", len(evs2), len(evs))
	}
}
