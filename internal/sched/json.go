package sched

import (
	"encoding/json"

	"rocket/internal/core"
)

// JobDoc is the stable wire form of one job's outcome. Virtual times are
// integer nanoseconds so serialized documents are exact: two runs that
// took identical scheduling decisions marshal to identical bytes, which
// is how replay fidelity is asserted.
type JobDoc struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	App      string `json:"app"`
	Nodes    []int  `json:"nodes,omitempty"`
	Rejected bool   `json:"rejected,omitempty"`
	Failed   bool   `json:"failed,omitempty"`
	Error    string `json:"error,omitempty"`
	Retries  int    `json:"retries,omitempty"`

	ArrivalNS int64 `json:"arrival_ns"`
	StartNS   int64 `json:"start_ns"`
	EndNS     int64 `json:"end_ns"`
	WaitNS    int64 `json:"wait_ns"`
	RuntimeNS int64 `json:"runtime_ns"`

	// Pair-store provenance; omitted for storeless jobs so their
	// documents are unchanged.
	Store          string `json:"store,omitempty"`
	DatasetVersion int    `json:"dataset_version,omitempty"`
	BaseVersion    int    `json:"base_version,omitempty"`

	Inner *core.MetricsSummary `json:"inner,omitempty"`
}

// TenantDoc is the wire form of one tenant's aggregates.
type TenantDoc struct {
	Tenant      string  `json:"tenant"`
	Jobs        int     `json:"jobs"`
	Rejected    int     `json:"rejected,omitempty"`
	Failed      int     `json:"failed,omitempty"`
	NodeSeconds float64 `json:"node_seconds"`
	MeanWaitNS  int64   `json:"mean_wait_ns"`
}

// MetricsDoc is the wire form of a fleet run's Metrics.
type MetricsDoc struct {
	Policy     string `json:"policy"`
	TotalNodes int    `json:"total_nodes"`

	Completed int `json:"completed"`
	Rejected  int `json:"rejected"`
	Failed    int `json:"failed"`
	Retries   int `json:"retries"`

	MakespanNS  int64   `json:"makespan_ns"`
	MeanWaitNS  int64   `json:"mean_wait_ns"`
	MaxWaitNS   int64   `json:"max_wait_ns"`
	Utilization float64 `json:"utilization"`
	JobsPerHour float64 `json:"jobs_per_hour"`

	Pairs    uint64 `json:"pairs"`
	NetBytes int64  `json:"net_bytes"`
	IOBytes  int64  `json:"io_bytes"`

	StoreHits   uint64 `json:"store_hits,omitempty"`
	StoreMisses uint64 `json:"store_misses,omitempty"`
	StorePuts   uint64 `json:"store_puts,omitempty"`

	Jobs    []JobDoc    `json:"jobs"`
	Tenants []TenantDoc `json:"tenants"`
}

// Doc converts one job's metrics to its wire form.
func (jm *JobMetrics) Doc() JobDoc {
	d := JobDoc{
		ID:             jm.ID,
		Tenant:         jm.Tenant,
		App:            jm.App,
		Nodes:          jm.Nodes,
		Rejected:       jm.Rejected,
		Failed:         jm.Failed,
		Error:          jm.Error,
		Retries:        jm.Retries,
		ArrivalNS:      int64(jm.Arrival),
		StartNS:        int64(jm.Start),
		EndNS:          int64(jm.End),
		WaitNS:         int64(jm.Wait),
		RuntimeNS:      int64(jm.Runtime),
		Store:          jm.StoreRef,
		DatasetVersion: jm.DatasetVersion,
		BaseVersion:    jm.BaseItems,
	}
	if jm.Inner != nil {
		s := jm.Inner.Summary()
		d.Inner = &s
	}
	return d
}

// Doc converts the fleet metrics to their wire form.
func (m *Metrics) Doc() MetricsDoc {
	d := MetricsDoc{
		Policy:      m.Policy.String(),
		TotalNodes:  m.TotalNodes,
		Completed:   m.Completed,
		Rejected:    m.Rejected,
		Failed:      m.Failed,
		Retries:     m.Retries,
		MakespanNS:  int64(m.Makespan),
		MeanWaitNS:  int64(m.MeanWait),
		MaxWaitNS:   int64(m.MaxWait),
		Utilization: m.Utilization,
		JobsPerHour: m.JobsPerHour,
		Pairs:       m.Pairs,
		NetBytes:    m.NetBytes,
		IOBytes:     m.IOBytes,
		StoreHits:   m.StoreHits,
		StoreMisses: m.StoreMisses,
		StorePuts:   m.StorePuts,
	}
	for i := range m.Jobs {
		d.Jobs = append(d.Jobs, m.Jobs[i].Doc())
	}
	for _, t := range m.Tenants {
		d.Tenants = append(d.Tenants, TenantDoc{
			Tenant:      t.Tenant,
			Jobs:        t.Jobs,
			Rejected:    t.Rejected,
			Failed:      t.Failed,
			NodeSeconds: t.NodeSeconds,
			MeanWaitNS:  int64(t.MeanWait),
		})
	}
	return d
}

// JSON marshals the fleet metrics' wire form, indented, with a trailing
// newline.
func (m *Metrics) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(m.Doc(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
