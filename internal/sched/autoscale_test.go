package sched

import (
	"testing"

	"rocket/internal/sim"
)

// burstJobs is the autoscaler's canonical workload: b bursts of w
// single-node jobs, bursts separated by gap. Between bursts the fleet is
// idle, which is exactly where an autoscaler earns its keep.
func burstJobs(b, w int, gap sim.Time) []Job {
	var jobs []Job
	for i := 0; i < b; i++ {
		at := sim.Time(i) * gap
		for j := 0; j < w; j++ {
			jobs = append(jobs, Job{App: smallApp("burst", 6, sim.Millis(2)), Arrival: at})
		}
	}
	return jobs
}

// TestWarmAutoscalerMatchesFixedFleetLatency is the headline property: a
// warm pool (zero provision delay) provisions capacity at the same
// instant placement wants it, so every job starts exactly when it would
// on a fixed max-size fleet — identical waits — while idle scale-down
// makes the node-seconds bill strictly smaller.
func TestWarmAutoscalerMatchesFixedFleetLatency(t *testing.T) {
	jobs := burstJobs(3, 12, sim.Seconds(3600))
	fixed, err := Run(Config{Jobs: jobs, Nodes: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	elastic, err := Run(Config{Jobs: jobs, Nodes: 8, Seed: 1, Elastic: &Autoscale{
		MinNodes:    1,
		IdleTimeout: sim.Seconds(60),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !elastic.Elastic || fixed.Elastic {
		t.Fatalf("Elastic flags wrong: fixed=%v elastic=%v", fixed.Elastic, elastic.Elastic)
	}
	if elastic.Completed != len(jobs) || fixed.Completed != len(jobs) {
		t.Fatalf("completions: fixed=%d elastic=%d want %d", fixed.Completed, elastic.Completed, len(jobs))
	}
	for i := range fixed.Jobs {
		if fixed.Jobs[i].Start != elastic.Jobs[i].Start {
			t.Fatalf("job %d starts differ: fixed %v, elastic %v",
				i, fixed.Jobs[i].Start, elastic.Jobs[i].Start)
		}
	}
	if elastic.P99Wait != fixed.P99Wait || elastic.MeanWait != fixed.MeanWait {
		t.Fatalf("warm pool changed latency: p99 %v vs %v", elastic.P99Wait, fixed.P99Wait)
	}
	if elastic.NodeSeconds >= fixed.NodeSeconds {
		t.Fatalf("autoscaler bill %.2f not below fixed fleet %.2f",
			elastic.NodeSeconds, fixed.NodeSeconds)
	}
	if elastic.ScaleDowns == 0 {
		t.Fatal("hour-long idle gaps triggered no scale-down")
	}
	if elastic.PeakNodes > 8 {
		t.Fatalf("peak %d exceeds capacity", elastic.PeakNodes)
	}
}

// TestColdProvisioningDelaysPlacement pins the cold-start path: with a
// provision delay and one boot node, queued jobs wait for capacity to
// warm up, and the clock lands exactly on provisioning completions.
func TestColdProvisioningDelaysPlacement(t *testing.T) {
	// Shorter than a job's ~35ms runtime, so waiting for the warming
	// node beats queueing behind the boot node.
	delay := sim.Millis(10)
	jobs := []Job{
		{App: smallApp("a", 6, sim.Millis(2))},
		{App: smallApp("b", 6, sim.Millis(2))},
	}
	m, err := Run(Config{Jobs: jobs, Nodes: 4, Seed: 1, Elastic: &Autoscale{
		BootNodes:      1,
		ProvisionDelay: delay,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 2 {
		t.Fatalf("completed %d of 2", m.Completed)
	}
	// One job starts at t=0 on the boot node; the other starts when its
	// provisioned node comes online, exactly delay later.
	if m.Jobs[0].Start != 0 {
		t.Fatalf("first job started at %v", m.Jobs[0].Start)
	}
	if m.Jobs[1].Start != delay {
		t.Fatalf("second job started at %v, want the provisioning completion %v",
			m.Jobs[1].Start, delay)
	}
	if m.ScaleUps == 0 {
		t.Fatal("no scale-up recorded")
	}
}

// TestDeadlinePressureWaivesScaleUpStep pins the deadline override: with
// ScaleUpStep 1 a wide burst would warm up one node per round, but an
// at-risk deadline provisions the whole shortfall at once.
func TestDeadlinePressureWaivesScaleUpStep(t *testing.T) {
	mk := func(deadline sim.Time) ([]Job, *Autoscale) {
		jobs := []Job{
			{App: smallApp("a", 6, sim.Millis(2)), Deadline: deadline},
			{App: smallApp("b", 6, sim.Millis(2)), Deadline: deadline},
			{App: smallApp("c", 6, sim.Millis(2)), Deadline: deadline},
		}
		// The delay is well under a job's runtime so provisioning, not
		// boot-node reuse, is the fast path to a start.
		return jobs, &Autoscale{BootNodes: 1, ProvisionDelay: sim.Millis(5), ScaleUpStep: 1}
	}
	// Relaxed deadlines: the step cap holds, rounds provision one slot
	// each, so the last start is two provisioning rounds out.
	jobs, a := mk(sim.Seconds(100000))
	relaxed, err := Run(Config{Jobs: jobs, Nodes: 4, Seed: 1, Elastic: a})
	if err != nil {
		t.Fatal(err)
	}
	// Tight deadlines: pressure waives the cap and both extra slots warm
	// in parallel.
	jobs, a = mk(sim.Millis(1))
	tight, err := Run(Config{Jobs: jobs, Nodes: 4, Seed: 1, Elastic: a})
	if err != nil {
		t.Fatal(err)
	}
	lastStart := func(m *Metrics) sim.Time {
		var last sim.Time
		for _, j := range m.Jobs {
			if j.Start > last {
				last = j.Start
			}
		}
		return last
	}
	if lastStart(tight) >= lastStart(relaxed) {
		t.Fatalf("deadline pressure did not accelerate starts: tight %v, relaxed %v",
			lastStart(tight), lastStart(relaxed))
	}
}

// TestSpotPreemptionCrashesLeaseAndRetries pins the reclaim semantics:
// preempting the only leased node mid-job kills the partition, the job
// retries on remaining capacity, and the slot never comes back.
func TestSpotPreemptionCrashesLeaseAndRetries(t *testing.T) {
	job := Job{App: smallApp("victim", 10, sim.Millis(20))}
	m, err := Run(Config{
		Jobs:       []Job{job},
		Nodes:      2,
		Seed:       1,
		MaxRetries: 2,
		Elastic: &Autoscale{
			BootNodes: 2,
			MinNodes:  2,
			Preemptions: []Preemption{
				{Node: 0, At: sim.Millis(1)},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 1 {
		t.Fatalf("completed %d of 1", m.Completed)
	}
	if m.Retries != 1 {
		t.Fatalf("retries = %d, want 1 (preemption kills the 1-node lease)", m.Retries)
	}
	if m.Preempted != 1 {
		t.Fatalf("preempted = %d, want 1", m.Preempted)
	}
	// The retry must land on the surviving node, not the reclaimed one.
	final := m.Jobs[0].Nodes
	if len(final) != 1 || final[0] != 1 {
		t.Fatalf("final lease %v, want [1]", final)
	}
}

// TestAutoscaleDeterministicReruns pins replayability of the full elastic
// machinery across reruns and worker counts.
func TestAutoscaleDeterministicReruns(t *testing.T) {
	run := func(workers int) *Metrics {
		jobs := burstJobs(2, 6, sim.Seconds(1800))
		jobs[3].Deadline = sim.Millis(5)
		m, err := Run(Config{Jobs: jobs, Nodes: 6, Seed: 7, Workers: workers, Elastic: &Autoscale{
			BootNodes:      2,
			ProvisionDelay: sim.Seconds(2),
			IdleTimeout:    sim.Seconds(120),
			ScaleUpStep:    2,
			Preemptions:    []Preemption{{Node: 5, At: sim.Seconds(1)}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b, c := run(1), run(4), run(1)
	for _, other := range []*Metrics{b, c} {
		if a.NodeSeconds != other.NodeSeconds || a.P99Wait != other.P99Wait ||
			a.ScaleUps != other.ScaleUps || a.ScaleDowns != other.ScaleDowns ||
			a.Preempted != other.Preempted || a.Makespan != other.Makespan {
			t.Fatalf("elastic rerun diverged:\n%+v\nvs\n%+v", summary(a), summary(other))
		}
		for i := range a.Jobs {
			if a.Jobs[i].Start != other.Jobs[i].Start || a.Jobs[i].End != other.Jobs[i].End {
				t.Fatalf("job %d timeline diverged across reruns", i)
			}
		}
	}
}

func summary(m *Metrics) map[string]any {
	return map[string]any{
		"nodeSeconds": m.NodeSeconds, "p99": m.P99Wait, "ups": m.ScaleUps,
		"downs": m.ScaleDowns, "preempted": m.Preempted, "makespan": m.Makespan,
	}
}

// TestAutoscaleValidation covers the policy cross-checks.
func TestAutoscaleValidation(t *testing.T) {
	base := func() Config {
		return Config{Jobs: []Job{{App: smallApp("v", 4, sim.Millis(1))}}, Nodes: 4, Seed: 1}
	}
	cases := []struct {
		name string
		a    Autoscale
	}{
		{"min above capacity", Autoscale{MinNodes: 5}},
		{"max below min", Autoscale{MinNodes: 3, MaxNodes: 2}},
		{"boot above max", Autoscale{MaxNodes: 2, BootNodes: 3}},
		{"negative delay", Autoscale{ProvisionDelay: -1}},
		{"negative step", Autoscale{ScaleUpStep: -1}},
		{"preempt out of range", Autoscale{Preemptions: []Preemption{{Node: 9, At: 1}}}},
		{"preempt at zero", Autoscale{Preemptions: []Preemption{{Node: 1}}}},
		{"double preempt", Autoscale{Preemptions: []Preemption{{Node: 1, At: 1}, {Node: 1, At: 2}}}},
	}
	for _, c := range cases {
		cfg := base()
		cfg.Elastic = &c.a
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	cfg := base()
	cfg.Jobs[0].Nodes = 4
	cfg.Elastic = &Autoscale{MaxNodes: 2}
	if _, err := Run(cfg); err == nil {
		t.Error("job wider than MaxNodes accepted")
	}
	cfg = base()
	cfg.Jobs[0].Deadline = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative deadline accepted")
	}
}
