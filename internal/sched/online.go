package sched

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"rocket/internal/core"
	"rocket/internal/obs"
	"rocket/internal/sim"
)

// ErrShuttingDown is returned by Online.Submit once Shutdown has begun:
// the scheduler drains the jobs it already accepted but admits no more.
var ErrShuttingDown = fmt.Errorf("sched: scheduler is shutting down")

// JobStatus is one submission's position in the online lifecycle.
type JobStatus int

const (
	// StatusSubmitted: accepted, waiting for the scheduler loop to assign
	// its virtual arrival time.
	StatusSubmitted JobStatus = iota
	// StatusQueued: admitted to the pending queue (also after a
	// partition-loss requeue), waiting for nodes.
	StatusQueued
	// StatusRejected: refused admission by the MaxQueued limit.
	StatusRejected
	// StatusRunning: executing on its leased partition.
	StatusRunning
	// StatusDone: completed; metrics are available.
	StatusDone
	// StatusFailed: the inner runtime failed; Error holds the cause.
	StatusFailed
)

// String returns the status's wire name.
func (s JobStatus) String() string {
	switch s {
	case StatusSubmitted:
		return "submitted"
	case StatusQueued:
		return "queued"
	case StatusRejected:
		return "rejected"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Terminal reports whether the status is an endpoint of the lifecycle.
func (s JobStatus) Terminal() bool {
	return s == StatusRejected || s == StatusDone || s == StatusFailed
}

// MarshalJSON writes the wire name.
func (s JobStatus) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the wire name, so HTTP clients can decode JobInfo.
func (s *JobStatus) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for _, c := range []JobStatus{StatusSubmitted, StatusQueued, StatusRejected,
		StatusRunning, StatusDone, StatusFailed} {
		if c.String() == name {
			*s = c
			return nil
		}
	}
	return fmt.Errorf("sched: unknown job status %q", name)
}

// JobInfo is a point-in-time snapshot of one submission, safe to read
// while the scheduler runs. Times are virtual nanoseconds; ArrivalNS is
// meaningful once the status leaves StatusSubmitted.
type JobInfo struct {
	ID        string    `json:"id"`
	Tenant    string    `json:"tenant"`
	App       string    `json:"app"`
	Status    JobStatus `json:"status"`
	WantNodes int       `json:"want_nodes"`
	Nodes     []int     `json:"nodes,omitempty"`
	Retries   int       `json:"retries,omitempty"`
	Error     string    `json:"error,omitempty"`
	ArrivalNS int64     `json:"arrival_ns"`
	StartNS   int64     `json:"start_ns"`
	EndNS     int64     `json:"end_ns"`
	// Pair-store provenance (omitted for storeless jobs).
	Store          string `json:"store,omitempty"`
	DatasetVersion int    `json:"dataset_version,omitempty"`
	BaseVersion    int    `json:"base_version,omitempty"`
}

// Event is one entry of the online scheduler's append-only event stream.
// Seq is the entry's index; ClockNS is the fleet's virtual clock when the
// event was recorded and Wall the host time (informational only — replay
// determinism rests solely on virtual time).
type Event struct {
	Seq     int       `json:"seq"`
	Type    string    `json:"type"`
	Job     string    `json:"job,omitempty"`
	ClockNS int64     `json:"clock_ns"`
	Wall    time.Time `json:"wall"`
	Detail  string    `json:"detail,omitempty"`
}

// Event types.
const (
	EventSubmitted = "submitted"
	EventQueued    = "queued"
	EventRejected  = "rejected"
	EventStarted   = "started"
	EventRetrying  = "retrying"
	EventCompleted = "completed"
	EventFailed    = "failed"
	EventDraining  = "draining"
	EventShutdown  = "shutdown"
)

// Counts summarizes the fleet for monitoring endpoints.
type Counts struct {
	Submitted int `json:"submitted"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Rejected  int `json:"rejected"`
	Retries   int `json:"retries"`
}

// onlineJob pairs a submission's scheduler state with the snapshot the
// query API serves. The snapshot is only written under Online.mu by the
// loop's observer callbacks, so readers never race with the inner
// simulations mutating jobState.
type onlineJob struct {
	js       *jobState
	assigned bool // virtual arrival assigned (job is part of the log)
	info     JobInfo
	inner    *core.Metrics
}

// Online is the scheduler's online mode: instead of a batch job slice,
// the arrival frontier is fed from Submit calls while the fleet runs.
//
// The wall-clock to virtual-time bridge works as follows: submissions
// enter an inbox; whenever the scheduler loop observes the inbox (between
// placement waves, or immediately when idle) each job is assigned a
// virtual arrival time max(fleet clock, TimeScale * wall seconds since
// Start, previous arrival). Assigned arrivals are therefore monotone in
// submission order and never precede the clock that observed them — which
// makes the realized arrival log exactly replayable by the batch
// scheduler: Run over Log() with the same Config takes identical
// decisions and produces identical Metrics.
//
// Inner runtime failures never abort the fleet (KeepGoing is forced);
// they surface as StatusFailed.
type Online struct {
	cfg       Config
	wallStart time.Time

	mu          sync.Mutex
	cond        *sync.Cond // signals the loop: inbox append or shutdown
	inbox       []*onlineJob
	future      []*onlineJob // arrival assigned but still ahead of the clock
	all         []*onlineJob // submission order
	byID        map[string]*onlineJob
	seen        map[string]int
	lastArrival sim.Time
	clock       sim.Time
	closing     bool
	// events is a sliding window over the append-only stream: entries
	// older than eventCap are discarded (they are observability, not
	// state — the arrival log is what replay needs), so a long-running
	// daemon's memory stays bounded. eventsBase is the sequence number
	// of events[0].
	events     []Event
	eventsBase int
	wake       chan struct{} // closed and replaced on every event
	// Wait accounting for the monitoring endpoints: waits holds every
	// realized queue wait in virtual nanoseconds (unsorted; WaitStats
	// sorts a copy for exact quantiles), tenantWaits log-buckets the same
	// values per tenant for the histogram exposition, and depth tracks
	// the number of currently queued jobs incrementally so a gauge read
	// never scans the submission list.
	waits       []int64
	tenantWaits map[string]*obs.Histogram
	depth       int

	done   chan struct{} // loop exited; result/runErr valid
	result *Metrics
	runErr error
}

// StartOnline starts an online scheduler over a shared simulated cluster.
// cfg.Jobs must be empty: jobs enter through Submit. The returned Online
// accepts submissions until Shutdown.
func StartOnline(cfg Config) (*Online, error) {
	if len(cfg.Jobs) != 0 {
		return nil, fmt.Errorf("sched: online mode takes submissions, not Config.Jobs")
	}
	cfg, err := cfg.normalizeCommon()
	if err != nil {
		return nil, err
	}
	// A failed job must not take the service down with it.
	cfg.KeepGoing = true
	o := &Online{
		cfg:         cfg,
		wallStart:   time.Now(),
		byID:        make(map[string]*onlineJob),
		seen:        make(map[string]int),
		tenantWaits: make(map[string]*obs.Histogram),
		wake:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	o.cond = sync.NewCond(&o.mu)
	go o.loop()
	return o, nil
}

func (o *Online) loop() {
	sched := newScheduler(o.cfg, o)
	err := sched.run(o)
	o.mu.Lock()
	o.closing = true
	o.runErr = err
	if err == nil {
		states := make([]*jobState, len(o.all))
		for i, oj := range o.all {
			states[i] = oj.js
		}
		o.result = aggregate(o.cfg, states, sched.pool)
	}
	o.eventLocked(EventShutdown, "", "")
	o.mu.Unlock()
	close(o.done)
}

// Submit hands one job to the scheduler and returns its ID. Validation
// errors are synchronous; admission (or MaxQueued rejection) happens when
// the scheduler loop observes the job, visible through Job and Events.
// After Shutdown begins, Submit fails with ErrShuttingDown.
func (o *Online) Submit(j Job) (string, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closing {
		return "", ErrShuttingDown
	}
	js, err := newState(o.cfg, j, len(o.all), o.seen)
	if err != nil {
		return "", err
	}
	oj := &onlineJob{
		js: js,
		info: JobInfo{
			ID:             js.id,
			Tenant:         js.tenant,
			App:            j.App.Name(),
			Status:         StatusSubmitted,
			WantNodes:      js.job.Nodes,
			Store:          j.StoreRef,
			DatasetVersion: j.DatasetVersion,
			BaseVersion:    j.BaseItems,
		},
	}
	o.all = append(o.all, oj)
	o.byID[js.id] = oj
	o.inbox = append(o.inbox, oj)
	o.eventLocked(EventSubmitted, js.id, "")
	o.cond.Broadcast()
	return js.id, nil
}

// Shutdown stops admission and drains: jobs already accepted (queued or
// running) complete, then the loop exits and the fleet metrics are
// returned. The context bounds only the wait — in-flight inner
// simulations cannot be interrupted; on deadline the drain continues in
// the background and a later Shutdown call can collect the result.
func (o *Online) Shutdown(ctx context.Context) (*Metrics, error) {
	o.mu.Lock()
	if !o.closing {
		o.closing = true
		o.eventLocked(EventDraining, "", "")
		o.cond.Broadcast()
	}
	o.mu.Unlock()
	select {
	case <-o.done:
		o.mu.Lock()
		defer o.mu.Unlock()
		return o.result, o.runErr
	case <-ctx.Done():
		return nil, fmt.Errorf("sched: drain deadline exceeded: %w", ctx.Err())
	}
}

// Draining reports whether Shutdown has begun.
func (o *Online) Draining() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.closing
}

// Done is closed when the scheduler loop has exited.
func (o *Online) Done() <-chan struct{} { return o.done }

// Clock returns the fleet's virtual clock as last observed.
func (o *Online) Clock() sim.Time {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.clock
}

// Job returns a snapshot of one submission.
func (o *Online) Job(id string) (JobInfo, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	oj, ok := o.byID[id]
	if !ok {
		return JobInfo{}, false
	}
	return oj.info, true
}

// Jobs returns snapshots of every submission, in submission order.
func (o *Online) Jobs() []JobInfo {
	o.mu.Lock()
	defer o.mu.Unlock()
	infos := make([]JobInfo, len(o.all))
	for i, oj := range o.all {
		infos[i] = oj.info
	}
	return infos
}

// JobMetrics returns one job's final metrics once its status is terminal.
func (o *Online) JobMetrics(id string) (JobMetrics, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	oj, ok := o.byID[id]
	if !ok || !oj.info.Status.Terminal() {
		return JobMetrics{}, false
	}
	in := oj.info
	jm := JobMetrics{
		ID:             in.ID,
		Tenant:         in.Tenant,
		App:            in.App,
		Arrival:        sim.Time(in.ArrivalNS),
		StoreRef:       in.Store,
		DatasetVersion: in.DatasetVersion,
		BaseItems:      in.BaseVersion,
	}
	if in.Status == StatusRejected {
		// Mirror the batch aggregate exactly: a rejected job carries only
		// its identity and arrival.
		jm.Rejected = true
		return jm, true
	}
	jm.Nodes = in.Nodes
	jm.Failed = in.Status == StatusFailed
	jm.Error = in.Error
	jm.Retries = in.Retries
	jm.Start = sim.Time(in.StartNS)
	jm.End = sim.Time(in.EndNS)
	jm.Wait = sim.Time(in.StartNS - in.ArrivalNS)
	jm.Runtime = sim.Time(in.EndNS - in.StartNS)
	jm.Inner = oj.inner
	return jm, true
}

// Counts summarizes all submissions by status.
func (o *Online) Counts() Counts {
	o.mu.Lock()
	defer o.mu.Unlock()
	var c Counts
	for _, oj := range o.all {
		c.Retries += oj.info.Retries
		switch oj.info.Status {
		case StatusSubmitted:
			c.Submitted++
		case StatusQueued:
			c.Queued++
		case StatusRunning:
			c.Running++
		case StatusDone:
			c.Done++
		case StatusFailed:
			c.Failed++
		case StatusRejected:
			c.Rejected++
		}
	}
	return c
}

// WaitStats is the monitoring view of realized queue waits: one sample
// per placement (a retried job contributes one sample per start, each
// measured from its original arrival), all in virtual nanoseconds.
type WaitStats struct {
	// Depth is the number of currently queued jobs.
	Depth int
	// Count is the number of realized waits.
	Count int
	// P50NS and P99NS are the exact median and 99th-percentile waits,
	// computed from the raw samples (not the log-bucketed histograms).
	P50NS int64
	P99NS int64
	// Tenants holds an independent per-tenant wait histogram clone,
	// keyed by tenant name.
	Tenants map[string]*obs.Histogram
}

// WaitStats returns a consistent snapshot of the wait accounting.
func (o *Online) WaitStats() WaitStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	ws := WaitStats{Depth: o.depth, Count: len(o.waits)}
	if len(o.waits) > 0 {
		sorted := append([]int64(nil), o.waits...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		ws.P50NS = sorted[len(sorted)/2]
		ws.P99NS = sorted[(len(sorted)*99)/100]
	}
	if len(o.tenantWaits) > 0 {
		ws.Tenants = make(map[string]*obs.Histogram, len(o.tenantWaits))
		for tenant, h := range o.tenantWaits {
			ws.Tenants[tenant] = h.Clone()
		}
	}
	return ws
}

// eventCap bounds the retained event window (a var so tests can shrink
// it). At the default, the window is a few MB at most.
var eventCap = 1 << 16

// EventsSince returns a copy of the event stream from sequence number i
// on, plus a channel that is closed when further events are appended.
// Events that have already slid out of the retention window are skipped
// (a subscriber that lags by more than eventCap events loses the gap).
func (o *Online) EventsSince(i int) ([]Event, <-chan struct{}) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i -= o.eventsBase
	if i < 0 {
		i = 0
	}
	if i > len(o.events) {
		i = len(o.events)
	}
	return append([]Event(nil), o.events[i:]...), o.wake
}

// Log returns the replayable arrival log: every submission whose virtual
// arrival has been assigned (always a prefix of the submission order;
// after Shutdown, all of them), with IDs, tenants, seeds, and arrival
// times made explicit so the log is self-contained.
func (o *Online) Log() []Job {
	o.mu.Lock()
	defer o.mu.Unlock()
	var jobs []Job
	for _, oj := range o.all {
		if !oj.assigned {
			break
		}
		j := oj.js.job // copy; Arrival was assigned in due
		j.ID = oj.js.id
		j.Tenant = oj.js.tenant
		j.Seed = oj.js.seed
		jobs = append(jobs, j)
	}
	return jobs
}

// ReplayConfig returns a batch Config that replays the arrival log:
// Run(o.ReplayConfig()) takes exactly the scheduling decisions this
// online run took and produces identical Metrics.
func (o *Online) ReplayConfig() Config {
	cfg := o.cfg
	cfg.Jobs = o.Log()
	cfg.Workers = 0 // host parallelism of the replay is the replayer's choice
	return cfg
}

// wallVirtual maps elapsed wall time onto the virtual axis (TimeScale
// virtual seconds per wall second); 0 when the bridge is disabled.
func (o *Online) wallVirtual() sim.Time {
	if o.cfg.TimeScale <= 0 {
		return 0
	}
	return sim.Time(o.cfg.TimeScale * float64(time.Since(o.wallStart)))
}

// eventLocked appends to the event stream and wakes subscribers; callers
// hold o.mu. When the window exceeds eventCap, the oldest quarter is
// dropped in one batch to amortize the copy.
func (o *Online) eventLocked(typ, job, detail string) {
	o.events = append(o.events, Event{
		Seq:     o.eventsBase + len(o.events),
		Type:    typ,
		Job:     job,
		ClockNS: int64(o.clock),
		Wall:    time.Now(),
		Detail:  detail,
	})
	if len(o.events) > eventCap {
		drop := eventCap / 4
		if drop < 1 {
			drop = 1
		}
		o.events = append(o.events[:0], o.events[drop:]...)
		o.eventsBase += drop
	}
	close(o.wake)
	o.wake = make(chan struct{})
}

// --- frontier (called from the scheduler loop) ---

// due flushes future-dated arrivals that have come due and drains the
// inbox, assigning each submission its virtual arrival time.
func (o *Online) due(clock sim.Time) []*jobState {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.clock = clock
	var out []*jobState
	for len(o.future) > 0 && o.future[0].js.job.Arrival <= clock {
		out = append(out, o.future[0].js)
		o.future = o.future[1:]
	}
	if len(o.inbox) == 0 {
		return out
	}
	wall := o.wallVirtual()
	for _, oj := range o.inbox {
		arr := clock
		if wall > arr {
			arr = wall
		}
		if o.lastArrival > arr {
			arr = o.lastArrival
		}
		oj.js.job.Arrival = arr
		o.lastArrival = arr
		oj.assigned = true
		oj.info.ArrivalNS = int64(arr)
		if arr <= clock {
			out = append(out, oj.js)
		} else {
			o.future = append(o.future, oj)
		}
	}
	o.inbox = o.inbox[:0]
	return out
}

func (o *Online) next() (sim.Time, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.future) > 0 {
		return o.future[0].js.job.Arrival, true
	}
	return 0, false
}

// wait blocks the idle scheduler loop until a submission or shutdown.
func (o *Online) wait() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for {
		if len(o.inbox) > 0 {
			return true
		}
		if o.closing {
			return false
		}
		o.cond.Wait()
	}
}

// --- observer (called from the scheduler loop) ---

func (o *Online) jobAdmitted(js *jobState) {
	o.updateJob(js, EventQueued, func(oj *onlineJob) {
		oj.info.Status = StatusQueued
		o.depth++
	})
}

func (o *Online) jobRejected(js *jobState) {
	o.updateJob(js, EventRejected, func(oj *onlineJob) {
		oj.info.Status = StatusRejected
	})
}

func (o *Online) jobStarted(js *jobState) {
	o.updateJob(js, EventStarted, func(oj *onlineJob) {
		oj.info.Status = StatusRunning
		oj.info.Nodes = append([]int(nil), js.lease...)
		oj.info.StartNS = int64(js.start)
		o.depth--
		wait := int64(js.start - js.job.Arrival)
		o.waits = append(o.waits, wait)
		h := o.tenantWaits[js.tenant]
		if h == nil {
			h = &obs.Histogram{}
			o.tenantWaits[js.tenant] = h
		}
		h.Observe(wait)
	})
}

func (o *Online) jobRetrying(js *jobState) {
	o.updateJob(js, EventRetrying, func(oj *onlineJob) {
		oj.info.Status = StatusQueued
		oj.info.Nodes = nil
		oj.info.Retries = js.attempt
		o.depth++
	})
}

func (o *Online) jobFinished(js *jobState) {
	typ := EventCompleted
	if js.failed {
		typ = EventFailed
	}
	o.updateJob(js, typ, func(oj *onlineJob) {
		oj.info.EndNS = int64(js.end)
		oj.info.Retries = js.attempt
		oj.inner = js.inner
		if js.failed {
			oj.info.Status = StatusFailed
			if js.err != nil {
				oj.info.Error = js.err.Error()
			}
		} else {
			oj.info.Status = StatusDone
		}
	})
}

func (o *Online) clockAdvanced(clock sim.Time) {
	o.mu.Lock()
	o.clock = clock
	o.mu.Unlock()
}

func (o *Online) updateJob(js *jobState, event string, f func(*onlineJob)) {
	o.mu.Lock()
	defer o.mu.Unlock()
	oj := o.byID[js.id]
	f(oj)
	o.eventLocked(event, js.id, "")
}
