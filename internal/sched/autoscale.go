package sched

import (
	"fmt"
	"sort"

	"rocket/internal/sim"
)

// Preemption is one scheduled spot reclaim: the provider takes node Node
// back at virtual time At, whatever the scheduler is doing with it. A free
// or warming node simply departs; a leased node crashes inside the
// running job's partition (the job drains through steal-based harvest and
// is requeued on partition loss, exactly like any other node failure).
type Preemption struct {
	Node int
	At   sim.Time
}

// Autoscale is the elastic-fleet policy: the scheduler starts with
// BootNodes active nodes out of a Config.Nodes-slot capacity and grows or
// shrinks the active set against queue depth and deadline pressure.
//
// Scale-up is demand-driven: after every placement round the scheduler
// provisions enough absent slots to cover the pending jobs' unmet node
// demand, capped by ScaleUpStep per round — unless a pending job is under
// deadline pressure (its deadline cannot be met even by provisioning
// immediately), in which case the cap is waived. New capacity becomes
// usable ProvisionDelay after the decision; a zero delay models a warm
// pool whose capacity is usable at the same instant.
//
// Scale-down is idleness-driven: a free node that stays unleased for
// IdleTimeout is released back to the provider (never dropping the active
// set below MinNodes). Released slots can be re-provisioned later.
//
// Everything is decided in virtual time from deterministic state, so an
// elastic fleet is exactly as replayable as a fixed one.
type Autoscale struct {
	// MinNodes is the scale-down floor; 0 defaults to 1.
	MinNodes int
	// MaxNodes caps the active set; 0 defaults to Config.Nodes. Jobs may
	// not request more than MaxNodes.
	MaxNodes int
	// BootNodes is the active set at t=0; 0 defaults to MinNodes.
	BootNodes int
	// ProvisionDelay is the cold-start latency of new capacity; 0 models
	// a warm pool (same-instant availability).
	ProvisionDelay sim.Time
	// IdleTimeout retires a node idle this long; 0 never scales down.
	IdleTimeout sim.Time
	// ScaleUpStep caps slots provisioned per scheduling round; 0 is
	// unlimited. Deadline pressure waives the cap.
	ScaleUpStep int
	// Preemptions are scheduled spot reclaims.
	Preemptions []Preemption
}

func (a Autoscale) normalize(nodes int) (Autoscale, error) {
	if a.MinNodes == 0 {
		a.MinNodes = 1
	}
	if a.MinNodes < 1 || a.MinNodes > nodes {
		return a, fmt.Errorf("sched: autoscale MinNodes %d outside [1, %d]", a.MinNodes, nodes)
	}
	if a.MaxNodes == 0 {
		a.MaxNodes = nodes
	}
	if a.MaxNodes < a.MinNodes || a.MaxNodes > nodes {
		return a, fmt.Errorf("sched: autoscale MaxNodes %d outside [%d, %d]", a.MaxNodes, a.MinNodes, nodes)
	}
	if a.BootNodes == 0 {
		a.BootNodes = a.MinNodes
	}
	if a.BootNodes < a.MinNodes || a.BootNodes > a.MaxNodes {
		return a, fmt.Errorf("sched: autoscale BootNodes %d outside [%d, %d]", a.BootNodes, a.MinNodes, a.MaxNodes)
	}
	if a.ProvisionDelay < 0 || a.IdleTimeout < 0 {
		return a, fmt.Errorf("sched: negative autoscale delay")
	}
	if a.ScaleUpStep < 0 {
		return a, fmt.Errorf("sched: negative ScaleUpStep")
	}
	seen := make(map[int]bool, len(a.Preemptions))
	for _, p := range a.Preemptions {
		if p.Node < 0 || p.Node >= nodes {
			return a, fmt.Errorf("sched: preemption targets node %d of %d", p.Node, nodes)
		}
		if p.At <= 0 {
			return a, fmt.Errorf("sched: preemption of node %d at non-positive time %v", p.Node, p.At)
		}
		if seen[p.Node] {
			return a, fmt.Errorf("sched: node %d preempted twice", p.Node)
		}
		seen[p.Node] = true
	}
	return a, nil
}

type slotState uint8

const (
	slotAbsent slotState = iota
	slotProvisioning
	slotFree
	slotLeased
	slotDeparted
)

// slot is one capacity slot of the elastic pool. IDs are the shared
// cluster's node IDs; a slot cycles absent → provisioning → free ⇄ leased
// and leaves via idle retirement (back to absent) or preemption
// (departed for good).
type slot struct {
	state       slotState
	readyAt     sim.Time // provisioning: when it becomes free
	idleSince   sim.Time // free: when it last became idle
	activeSince sim.Time // free/leased: start of the current billing span
	preemptAt   sim.Time // scheduled reclaim; 0 = none
}

// elasticPool tracks slot lifecycles and the exact node-seconds bill.
// Cost accrues per slot over [activeSince, retirement] — provisioning
// time is free, reclaim stops the meter even mid-lease.
type elasticPool struct {
	policy Autoscale
	slots  []slot

	nodeSeconds float64
	scaleUps    int
	scaleDowns  int
	preempted   int
	peak        int
	finished    bool
}

func newElasticPool(a Autoscale, nodes int) *elasticPool {
	p := &elasticPool{policy: a, slots: make([]slot, nodes)}
	for i := 0; i < a.BootNodes; i++ {
		p.slots[i].state = slotFree
	}
	for _, pre := range a.Preemptions {
		p.slots[pre.Node].preemptAt = pre.At
	}
	p.peak = a.BootNodes
	return p
}

// initialFree returns the boot-time free pool, ascending.
func (p *elasticPool) initialFree() []int {
	free := make([]int, 0, p.policy.BootNodes)
	for i, s := range p.slots {
		if s.state == slotFree {
			free = append(free, i)
		}
	}
	return free
}

// activeCount is the committed capacity: usable plus warming slots. The
// scale-up headroom and the scale-down floor are both measured against it.
func (p *elasticPool) activeCount() int {
	n := 0
	for _, s := range p.slots {
		switch s.state {
		case slotProvisioning, slotFree, slotLeased:
			n++
		}
	}
	return n
}

func (p *elasticPool) usableCount() int {
	n := 0
	for _, s := range p.slots {
		if s.state == slotFree || s.state == slotLeased {
			n++
		}
	}
	return n
}

func (p *elasticPool) notePeak() {
	if u := p.usableCount(); u > p.peak {
		p.peak = u
	}
}

// nextReady reports the earliest provisioning completion, so the
// scheduler's clock never jumps over the instant capacity comes online.
func (p *elasticPool) nextReady() (sim.Time, bool) {
	var t sim.Time
	ok := false
	for _, s := range p.slots {
		if s.state == slotProvisioning && (!ok || s.readyAt < t) {
			t, ok = s.readyAt, true
		}
	}
	return t, ok
}

// ready promotes provisioning slots whose delay elapsed by clock and
// returns their IDs (ascending) for the free pool. Promotion is
// retroactively exact: billing and idleness start at readyAt, not at the
// clock that happened to observe it.
func (p *elasticPool) ready(clock sim.Time) []int {
	var ids []int
	for i := range p.slots {
		s := &p.slots[i]
		if s.state == slotProvisioning && s.readyAt <= clock {
			s.state = slotFree
			s.idleSince = s.readyAt
			s.activeSince = s.readyAt
			ids = append(ids, i)
		}
	}
	if ids != nil {
		p.notePeak()
	}
	return ids
}

// retire processes scale-downs and free/warming-slot preemptions due by
// clock, retroactively at their exact expiry instants, and reports the
// retired slot IDs (the scheduler removes them from its free pool).
// Candidates retire in expiry order, ties broken by descending ID so the
// low IDs that leases prefer stay stable. Idle retirement respects the
// MinNodes floor; preemption does not — the provider is not asking.
func (p *elasticPool) retire(clock sim.Time) []int {
	type cand struct {
		id      int
		at      sim.Time
		preempt bool
	}
	var cands []cand
	for i := range p.slots {
		s := &p.slots[i]
		switch s.state {
		case slotProvisioning:
			if s.preemptAt > 0 && s.preemptAt <= clock {
				// Reclaimed before it ever came online: no billing span.
				s.state = slotDeparted
				p.preempted++
			}
		case slotFree:
			if s.preemptAt > 0 && s.preemptAt <= clock {
				cands = append(cands, cand{i, s.preemptAt, true})
				continue
			}
			if p.policy.IdleTimeout > 0 {
				if exp := s.idleSince + p.policy.IdleTimeout; exp <= clock {
					cands = append(cands, cand{i, exp, false})
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].at != cands[j].at {
			return cands[i].at < cands[j].at
		}
		return cands[i].id > cands[j].id
	})
	var retired []int
	for _, c := range cands {
		s := &p.slots[c.id]
		if !c.preempt && p.activeCount() <= p.policy.MinNodes {
			continue
		}
		p.nodeSeconds += (c.at - s.activeSince).Seconds()
		if c.preempt {
			s.state = slotDeparted
			p.preempted++
		} else {
			s.state = slotAbsent
			p.scaleDowns++
		}
		retired = append(retired, c.id)
	}
	return retired
}

// provision commits up to want absent slots (lowest IDs first) within the
// MaxNodes headroom. Warm capacity (zero delay) is returned as
// immediately-free IDs; cold capacity warms until clock+delay.
func (p *elasticPool) provision(want int, clock sim.Time) (freeNow []int) {
	if headroom := p.policy.MaxNodes - p.activeCount(); want > headroom {
		want = headroom
	}
	for i := range p.slots {
		if want <= 0 {
			break
		}
		s := &p.slots[i]
		if s.state != slotAbsent {
			continue
		}
		if s.preemptAt > 0 && s.preemptAt <= clock {
			continue // already reclaimed; not capacity anymore
		}
		want--
		p.scaleUps++
		if p.policy.ProvisionDelay == 0 {
			s.state = slotFree
			s.idleSince = clock
			s.activeSince = clock
			freeNow = append(freeNow, i)
		} else {
			s.state = slotProvisioning
			s.readyAt = clock + p.policy.ProvisionDelay
		}
	}
	if freeNow != nil {
		p.notePeak()
	}
	return freeNow
}

// lease marks slot id leased. The billing span keeps running.
func (p *elasticPool) lease(id int) { p.slots[id].state = slotLeased }

// release returns a lease's slots at job end time. A slot whose scheduled
// reclaim fired during the lease departs (its crash already happened
// inside the job); the rest go back to the free pool. Returns the IDs
// that are free again, ascending by construction of the caller's lease.
func (p *elasticPool) release(ids []int, end sim.Time) []int {
	var free []int
	for _, id := range ids {
		s := &p.slots[id]
		if s.preemptAt > 0 && s.preemptAt <= end {
			p.nodeSeconds += (s.preemptAt - s.activeSince).Seconds()
			s.state = slotDeparted
			p.preempted++
			continue
		}
		s.state = slotFree
		s.idleSince = end
		free = append(free, id)
	}
	return free
}

// finish closes the books at the makespan: every still-active slot is
// billed to the end of the run. Idempotent.
func (p *elasticPool) finish(makespan sim.Time) {
	if p.finished {
		return
	}
	p.finished = true
	for i := range p.slots {
		s := &p.slots[i]
		switch s.state {
		case slotFree, slotLeased:
			if makespan > s.activeSince {
				p.nodeSeconds += (makespan - s.activeSince).Seconds()
			}
		}
	}
}
