package sched

import (
	"bytes"
	"testing"

	"rocket/internal/pairstore"
	"rocket/internal/sim"
)

// deltaJobs builds the canonical incremental fleet: a base job over n0
// items followed by a delta job over n items (base n0), both in the
// "corpus" store namespace with an explicit dataset seed so their item
// digests coincide.
func deltaJobs(n0, n int) []Job {
	const seed = 42
	app := smallApp("forensics", n, sim.Millis(2))
	base := Job{
		ID:             "base",
		App:            smallApp("forensics", n0, sim.Millis(2)),
		Seed:           seed,
		StoreRef:       "corpus",
		DatasetVersion: n0,
	}
	delta := Job{
		ID:             "delta",
		App:            app,
		Seed:           seed,
		Arrival:        sim.Seconds(1e6), // well past the base job's completion
		StoreRef:       "corpus",
		BaseItems:      n0,
		DatasetVersion: n,
	}
	return []Job{base, delta}
}

func TestDeltaPlannerServesBasePairs(t *testing.T) {
	const n0, n = 10, 12
	m, err := Run(Config{Jobs: deltaJobs(n0, n), Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	basePairs := uint64(n0 * (n0 - 1) / 2)
	deltaPairs := uint64(pairstore.DeltaPairs(n, n0))
	base, delta := m.Jobs[0], m.Jobs[1]
	if base.Inner.Pairs != basePairs || base.Inner.StorePuts != basePairs {
		t.Fatalf("base computed %d emitted %d, want %d", base.Inner.Pairs, base.Inner.StorePuts, basePairs)
	}
	if delta.Inner.Pairs != deltaPairs {
		t.Fatalf("delta computed %d pairs, want %d", delta.Inner.Pairs, deltaPairs)
	}
	if delta.Inner.StoreHits != basePairs || delta.Inner.StoreMisses != 0 {
		t.Fatalf("delta hits %d misses %d, want %d/0", delta.Inner.StoreHits, delta.Inner.StoreMisses, basePairs)
	}
	if delta.BaseItems != n0 || delta.StoreRef != "corpus" || delta.DatasetVersion != n {
		t.Fatalf("provenance not recorded: %+v", delta)
	}
	if m.StoreHits != basePairs || m.StorePuts != basePairs+deltaPairs {
		t.Fatalf("fleet store totals hits %d puts %d", m.StoreHits, m.StorePuts)
	}
}

func TestDeltaFleetDeterministicJSON(t *testing.T) {
	run := func() []byte {
		m, err := Run(Config{Jobs: deltaJobs(12, 15), Nodes: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		buf, err := m.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("delta fleet runs serialize differently:\n%s\nvs\n%s", a, b)
	}
}

func TestWarmStartFromLoadedStore(t *testing.T) {
	// A fleet handed a pre-populated store serves base pairs without
	// ever running the base job — the cross-run (persistent) flow.
	const n0, n = 10, 12
	store := pairstore.New()
	prior, err := Run(Config{Jobs: deltaJobs(n0, n)[:1], Nodes: 1, Seed: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if prior.StorePuts == 0 || store.Len() == 0 {
		t.Fatalf("base fleet did not populate the store (%d entries)", store.Len())
	}
	m, err := Run(Config{Jobs: deltaJobs(n0, n)[1:], Nodes: 1, Seed: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs[0].Inner.StoreHits != uint64(n0*(n0-1)/2) {
		t.Fatalf("warm-started delta hit %d pairs", m.Jobs[0].Inner.StoreHits)
	}
}

func TestBaseItemsRequireStoreRef(t *testing.T) {
	_, err := Run(Config{
		Jobs:  []Job{{App: smallApp("a", 8, sim.Millis(1)), BaseItems: 4}},
		Nodes: 1,
	})
	if err == nil {
		t.Fatal("BaseItems without StoreRef accepted")
	}
}

func TestDerivedSeedsDoNotFalselyShareDigests(t *testing.T) {
	// Two jobs in the same namespace with derived (zero) seeds describe
	// different datasets; the default digest must not let the second job
	// hit the first job's results.
	app := smallApp("forensics", 8, sim.Millis(1))
	jobs := []Job{
		{ID: "a", App: app, StoreRef: "corpus"},
		{ID: "b", App: app, Arrival: sim.Seconds(1e6), StoreRef: "corpus", BaseItems: 8},
	}
	m, err := Run(Config{Jobs: jobs, Nodes: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Job b plans all its pairs resident but its digests miss job a's
	// entries, so every planned pair is recomputed as a store miss.
	if m.Jobs[1].Inner.StoreMisses != uint64(8*7/2) || m.Jobs[1].Inner.StoreHits != 0 {
		t.Fatalf("derived-seed job hit foreign digests: hits %d misses %d",
			m.Jobs[1].Inner.StoreHits, m.Jobs[1].Inner.StoreMisses)
	}
}
