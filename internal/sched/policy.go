package sched

import (
	"fmt"

	"rocket/internal/sim"
)

// Policy selects which pending job is placed next when nodes are free.
type Policy int

const (
	// PolicyFIFO places jobs strictly in arrival order: the head of the
	// queue either fits or blocks everything behind it (no bypass). This
	// is the simplest policy and the baseline the others are measured
	// against; a wide job at the head head-of-line-blocks the queue.
	PolicyFIFO Policy = iota
	// PolicySJF places the fitting job with the smallest estimated
	// service time first, which minimizes mean wait for skewed size
	// mixes at the cost of potentially starving large jobs.
	PolicySJF
	// PolicyFairShare places the fitting job whose tenant has consumed
	// the least node-seconds so far, so a tenant submitting many small
	// jobs is not starved by a tenant that queued large jobs first.
	PolicyFairShare
)

// String returns the policy's manifest name.
func (p Policy) String() string {
	switch p {
	case PolicyFIFO:
		return "fifo"
	case PolicySJF:
		return "sjf"
	case PolicyFairShare:
		return "fair"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps a manifest name to a policy.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "fifo":
		return PolicyFIFO, nil
	case "sjf":
		return PolicySJF, nil
	case "fair", "fairshare", "fair-share":
		return PolicyFairShare, nil
	default:
		return 0, fmt.Errorf("sched: unknown policy %q (known: fifo, sjf, fair)", name)
	}
}

// Policies lists every policy in presentation order.
func Policies() []Policy {
	return []Policy{PolicyFIFO, PolicySJF, PolicyFairShare}
}

// pick returns the index in pending of the next job to place given free
// nodes, or -1 when nothing may start. pending is in arrival order; all
// tie-breaks resolve to the earlier arrival, keeping every policy
// deterministic.
func pick(p Policy, pending, running []*jobState, free int, clock sim.Time, usage map[string]float64) int {
	switch p {
	case PolicyFIFO:
		if pending[0].job.Nodes <= free {
			return 0
		}
		return -1
	case PolicySJF:
		best := -1
		for i, js := range pending {
			if js.job.Nodes > free {
				continue
			}
			if best < 0 || js.est < pending[best].est {
				best = i
			}
		}
		return best
	case PolicyFairShare:
		best := -1
		var bestUse float64
		var bestHeld int
		for i, js := range pending {
			if js.job.Nodes > free {
				continue
			}
			use, held := tenantUsage(js.tenant, running, clock, usage)
			if best < 0 || use < bestUse || (use == bestUse && held < bestHeld) {
				best, bestUse, bestHeld = i, use, held
			}
		}
		return best
	default:
		return -1
	}
}

// tenantUsage is a tenant's node-seconds consumed so far (completed jobs
// in full, running jobs up to the current clock) plus the nodes it holds
// right now. It never depends on a running job's (possibly not yet
// known) completion time. The held-node count breaks node-second ties:
// within one placement instant elapsed running time is zero, so without
// it a single tenant's burst of arrivals would fill the whole cluster
// before any other tenant's jobs were considered.
func tenantUsage(tenant string, running []*jobState, clock sim.Time, usage map[string]float64) (nodeSeconds float64, heldNodes int) {
	nodeSeconds = usage[tenant]
	for _, js := range running {
		if js.tenant == tenant {
			nodeSeconds += float64(len(js.lease)) * (clock - js.start).Seconds()
			heldNodes += len(js.lease)
		}
	}
	return nodeSeconds, heldNodes
}
