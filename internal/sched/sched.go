// Package sched implements rocketd, the multi-tenant job scheduler layered
// on top of the Rocket runtime. Where core.Run executes one all-pairs job
// to completion on a dedicated platform, sched admits a queue of
// heterogeneous jobs (mixed applications, sizes, and tenants) and runs
// them concurrently over one shared simulated cluster: each admitted job
// leases a partition of the cluster's nodes, executes on it through the
// unmodified Rocket runtime, and returns its nodes to the free pool when
// it completes, at which point the configured policy (FIFO,
// shortest-job-first, or fair-share across tenants) picks the next job.
//
// The scheduler is a two-level discrete-event simulation: the inner level
// is the per-job Rocket runtime (core.Run on the leased partition), whose
// virtual run time becomes the job's service time; the outer level is the
// fleet clock, which interleaves arrivals, placements, and completions of
// many jobs over the shared node pool. Inner simulations are independent,
// so they execute on parallel OS workers; all scheduling decisions depend
// only on virtual time, which keeps fleet results deterministic for a
// given seed regardless of host parallelism.
package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sort"

	"rocket/internal/cluster"
	"rocket/internal/core"
	"rocket/internal/fault"
	"rocket/internal/gpu"
	"rocket/internal/obs"
	"rocket/internal/pairs"
	"rocket/internal/pairstore"
	"rocket/internal/sim"
)

// Job is one all-pairs workload submitted to the scheduler.
type Job struct {
	// ID identifies the job in reports. Empty IDs are assigned "job<i>".
	ID string
	// Tenant is the submitting principal, the unit of fair-share
	// accounting. Empty tenants are grouped under "default".
	Tenant string
	// App is the application to run (required).
	App core.Application
	// Nodes is the partition size the job requests from the shared
	// cluster; 0 requests a single node.
	Nodes int
	// Arrival is the virtual time at which the job enters the queue.
	Arrival sim.Time
	// Deadline, when positive, is the virtual time the job should finish
	// by. The autoscaler treats a pending job whose deadline cannot be
	// met even by provisioning immediately as deadline pressure and
	// waives the ScaleUpStep cap. Fixed fleets ignore it.
	Deadline sim.Time
	// Seed overrides the per-job seed derived from Config.Seed.
	Seed uint64
	// Faults injects a deterministic fault schedule into the job's first
	// attempt. A job aborted by partition loss (core.ErrPartitionLost) is
	// requeued up to Config.MaxRetries times; retries run fault-free,
	// modeling placement on fresh nodes.
	Faults *fault.Schedule
	// Mutate, when non-nil, adjusts the job's runtime configuration
	// (cache sizes, steal policy, ...) before execution.
	Mutate func(*core.Config)

	// StoreRef, when non-empty, makes the job participate in the fleet's
	// shared pair store under this dataset namespace: results it
	// computes are merged back at completion, and with BaseItems > 0 the
	// delta planner serves the base region from the store instead of
	// recomputing it. The store snapshot a job consults is captured at
	// its placement and batches are merged at its completion — both
	// inside the deterministic virtual-time loop, so a served fleet and
	// its offline replay observe identical store states.
	StoreRef string
	// BaseItems is the delta plan's resident prefix: pairs with both
	// items below it are served from the store (see core.Config.BaseItems).
	BaseItems int
	// DatasetVersion is provenance recorded in the job's metrics: the
	// dataset version (item count) this job computes. 0 = unversioned.
	DatasetVersion int
	// Digest derives item content digests for store keys. When nil it
	// defaults to pairstore.DigestFunc(StoreRef, App.Name(), seed) with
	// the job's effective seed — correct whenever Seed is set explicitly
	// (dataset identity); jobs with derived seeds get non-colliding
	// digests and therefore no cross-job reuse unless Digest is given.
	Digest func(item int) pairstore.Digest
}

// Config configures one scheduler run.
type Config struct {
	// Jobs is the workload to schedule (required).
	Jobs []Job
	// Nodes is the size of the shared cluster (required).
	Nodes int
	// NodeSpec is the hardware of every node. The zero value defaults to
	// a DAS-5 node with one TitanX Maxwell.
	NodeSpec cluster.NodeSpec
	// Fabric configures network and storage; the zero value defaults to
	// cluster.DefaultConfig().
	Fabric cluster.Config
	// Policy selects the placement order; default PolicyFIFO.
	Policy Policy
	// MaxQueued is the admission limit: a job arriving while this many
	// jobs are already waiting is rejected (backpressure). 0 = unlimited.
	MaxQueued int
	// MaxRunning caps concurrently executing jobs in addition to the
	// node-pool limit. 0 = bounded only by free nodes.
	MaxRunning int
	// MaxRetries is how many times a job whose partition died under it
	// (core.ErrPartitionLost) is requeued before the failure aborts the
	// whole run. 0 = partition loss is fatal.
	MaxRetries int
	// KeepGoing records an inner runtime failure in the job's metrics
	// (JobMetrics.Failed) and releases its lease instead of aborting the
	// whole run. Online schedulers always run with KeepGoing, so batch
	// replays of a served arrival log must set it to reproduce the same
	// fleet metrics.
	KeepGoing bool
	// Workers is the number of OS threads executing inner simulations in
	// parallel; 0 defaults to GOMAXPROCS. It does not affect results.
	Workers int
	// Seed drives per-job seed derivation.
	Seed uint64
	// TimeScale is the online-mode bridge from wall-clock to virtual
	// time: a job submitted w wall-seconds after Start is assigned a
	// virtual arrival no earlier than TimeScale*w virtual seconds
	// (see Online). 0 disables the bridge: arrivals latch onto the
	// current virtual clock. Batch runs ignore it.
	TimeScale float64
	// Store is the fleet's shared pair store. Nil is fine even when jobs
	// carry StoreRefs: a fresh store is created at the first placement
	// that needs one (which is exactly what an offline replay of a
	// served log wants — the server also started empty). Pass a loaded
	// store to warm-start the fleet.
	Store *pairstore.Store
	// Elastic switches the node pool from a fixed fleet of Nodes to an
	// autoscaled one: Nodes becomes the capacity (slot space) and the
	// policy decides how much of it is active at any virtual instant.
	// Nil keeps the classic fixed fleet.
	Elastic *Autoscale
	// Spans, when non-nil, records job wait/run intervals and pairstore
	// seal/compaction instants into the flight recorder. Recording
	// happens only at the scheduler loop's deterministic points
	// (placement, completion, merge) — never from inner-simulation
	// goroutines — so traces replay byte-identically. Nil (the default)
	// adds one nil check per completion.
	Spans *obs.Recorder
}

// jobState tracks one job through the scheduler.
type jobState struct {
	job     Job
	index   int
	id      string
	tenant  string
	seed    uint64
	est     sim.Time
	lease   []int
	start   sim.Time
	end     sim.Time
	inner   *core.Metrics
	err     error
	done    chan struct{}
	started bool
	reject  bool
	// failed marks a job whose inner runtime failed under KeepGoing; the
	// fleet run continues and the failure is reported in JobMetrics.
	failed bool
	// attempt counts executions so far; retry marks a partition-lost
	// attempt whose lease release doubles as a requeue.
	attempt int
	retry   bool
	// storeSnap/storeBatch are the pair-store views of the current
	// attempt, captured at placement and merged at completion (both in
	// the scheduler loop, never from inner-sim goroutines).
	storeSnap  *pairstore.Snapshot
	storeBatch *pairstore.Batch
	// preempts are spot reclaims scheduled inside this attempt's lease,
	// expressed as crash events in the inner run's node indices and
	// relative time. Computed at placement; reclaims beyond the job's
	// completion are harmless (the inner runtime pins its completion
	// time before draining armed events).
	preempts []fault.Event
}

// resetForRetry returns the state to the queue for another attempt.
func (js *jobState) resetForRetry() {
	js.attempt++
	js.retry = false
	js.lease = nil
	js.inner = nil
	js.err = nil
	js.started = false
	js.storeSnap = nil
	js.storeBatch = nil
	js.preempts = nil
	js.done = make(chan struct{})
}

func (cfg Config) normalize() (Config, error) {
	if len(cfg.Jobs) == 0 {
		return cfg, fmt.Errorf("sched: Config.Jobs is empty")
	}
	return cfg.normalizeCommon()
}

func (cfg Config) normalizeCommon() (Config, error) {
	if cfg.Nodes < 1 {
		return cfg, fmt.Errorf("sched: Config.Nodes must be >= 1, got %d", cfg.Nodes)
	}
	if cfg.NodeSpec.Cores == 0 && cfg.NodeSpec.HostCacheBytes == 0 && len(cfg.NodeSpec.GPUs) == 0 {
		cfg.NodeSpec = cluster.NodeSpec{
			Cores:          16,
			HostCacheBytes: 40 * gpu.GiB,
			GPUs:           []gpu.Model{gpu.TitanXMaxwell},
		}
	}
	if err := cfg.NodeSpec.Validate(); err != nil {
		return cfg, err
	}
	if cfg.Fabric == (cluster.Config{}) {
		cfg.Fabric = cluster.DefaultConfig()
	}
	if cfg.Policy < PolicyFIFO || cfg.Policy > PolicyFairShare {
		return cfg, fmt.Errorf("sched: unknown policy %d", cfg.Policy)
	}
	if cfg.MaxQueued < 0 || cfg.MaxRunning < 0 {
		return cfg, fmt.Errorf("sched: negative admission limits")
	}
	if cfg.MaxRetries < 0 {
		return cfg, fmt.Errorf("sched: negative MaxRetries")
	}
	if cfg.TimeScale < 0 {
		return cfg, fmt.Errorf("sched: negative TimeScale")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Elastic != nil {
		a, err := cfg.Elastic.normalize(cfg.Nodes)
		if err != nil {
			return cfg, err
		}
		cfg.Elastic = &a
	}
	return cfg, nil
}

// newState validates one job and builds its scheduler state. i is the
// submission index (which drives ID and seed derivation) and seen maps
// already-claimed IDs to their index.
func newState(cfg Config, j Job, i int, seen map[string]int) (*jobState, error) {
	if j.App == nil {
		return nil, fmt.Errorf("sched: job %d has no App", i)
	}
	if j.Nodes == 0 {
		j.Nodes = 1
	}
	if j.Nodes < 0 || j.Nodes > cfg.Nodes {
		return nil, fmt.Errorf("sched: job %d requests %d nodes; cluster has %d", i, j.Nodes, cfg.Nodes)
	}
	if cfg.Elastic != nil && j.Nodes > cfg.Elastic.MaxNodes {
		return nil, fmt.Errorf("sched: job %d requests %d nodes; autoscaler caps the fleet at %d", i, j.Nodes, cfg.Elastic.MaxNodes)
	}
	if j.Arrival < 0 {
		return nil, fmt.Errorf("sched: job %d has negative arrival %v", i, j.Arrival)
	}
	if j.Deadline < 0 {
		return nil, fmt.Errorf("sched: job %d has negative deadline %v", i, j.Deadline)
	}
	if j.BaseItems < 0 {
		return nil, fmt.Errorf("sched: job %d has negative BaseItems %d", i, j.BaseItems)
	}
	if j.BaseItems > 0 && j.StoreRef == "" {
		return nil, fmt.Errorf("sched: job %d has BaseItems without a StoreRef", i)
	}
	id := j.ID
	if id == "" {
		id = fmt.Sprintf("job%d", i)
	}
	if prev, dup := seen[id]; dup {
		return nil, fmt.Errorf("sched: jobs %d and %d share ID %q", prev, i, id)
	}
	seen[id] = i
	tenant := j.Tenant
	if tenant == "" {
		tenant = "default"
	}
	seed := j.Seed
	if seed == 0 {
		seed = cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(i+1))
	}
	return &jobState{
		job:    j,
		index:  i,
		id:     id,
		tenant: tenant,
		seed:   seed,
		est:    estimate(j.App, j.Nodes, len(cfg.NodeSpec.GPUs)),
		done:   make(chan struct{}),
	}, nil
}

// newStates validates the jobs and builds their scheduler state, in input
// order.
func newStates(cfg Config) ([]*jobState, error) {
	states := make([]*jobState, len(cfg.Jobs))
	seen := make(map[string]int, len(cfg.Jobs))
	for i, j := range cfg.Jobs {
		js, err := newState(cfg, j, i, seen)
		if err != nil {
			return nil, err
		}
		states[i] = js
	}
	return states, nil
}

// estimate predicts a job's service time for shortest-job-first ordering:
// total pairs times a sampled mean comparison cost, divided by the
// partition's GPU count. It only needs to order jobs correctly, not to
// predict absolute run times.
func estimate(app core.Application, nodes, gpusPerNode int) sim.Time {
	n := app.NumItems()
	total := pairs.TotalPairs(n)
	step := n/8 + 1
	var sum sim.Time
	samples := 0
	for i := 0; i < n; i += step {
		for j := i + 1; j < n; j += step {
			sum += app.CompareTime(i, j)
			samples++
		}
	}
	if samples == 0 {
		return sim.Time(total)
	}
	mean := float64(sum) / float64(samples)
	return sim.Time(float64(total) * mean / float64(nodes*gpusPerNode))
}

// frontier feeds the scheduler loop its arrival stream. The batch frontier
// walks a pre-sorted job slice; the online frontier drains a submission
// inbox, assigning virtual arrival times as jobs are observed. Arrival
// times returned by due/next must be monotone non-decreasing, and due may
// never hand out a job whose arrival exceeds the clock it was called with.
type frontier interface {
	// due removes and returns every job with arrival <= clock, in
	// admission order.
	due(clock sim.Time) []*jobState
	// next reports the earliest known future arrival.
	next() (sim.Time, bool)
	// wait blocks until the frontier may have another arrival, reporting
	// whether one may still come; it is only called when the cluster is
	// idle and next() was empty. Batch frontiers never block.
	wait() bool
}

// sliceFrontier is the batch frontier: a slice sorted by arrival time,
// ties broken by submission order.
type sliceFrontier struct {
	arrivals []*jobState
	i        int
}

func (f *sliceFrontier) due(clock sim.Time) []*jobState {
	start := f.i
	for f.i < len(f.arrivals) && f.arrivals[f.i].job.Arrival <= clock {
		f.i++
	}
	return f.arrivals[start:f.i]
}

func (f *sliceFrontier) next() (sim.Time, bool) {
	if f.i < len(f.arrivals) {
		return f.arrivals[f.i].job.Arrival, true
	}
	return 0, false
}

func (f *sliceFrontier) wait() bool { return false }

// observer receives scheduler lifecycle notifications, all from the loop
// goroutine. The online scheduler uses it to publish job status and the
// event stream; batch runs have no observer.
type observer interface {
	jobAdmitted(js *jobState)
	jobRejected(js *jobState)
	jobStarted(js *jobState)
	jobRetrying(js *jobState)
	jobFinished(js *jobState)
	clockAdvanced(clock sim.Time)
}

// scheduler is one fleet run's mutable state; run drives it from a
// frontier until the frontier is exhausted and the cluster drains.
type scheduler struct {
	cfg     Config
	free    []int // free node IDs, ascending
	pending []*jobState
	running []*jobState
	clock   sim.Time
	usage   map[string]float64 // tenant -> completed node-seconds
	sem     chan struct{}
	obs     observer
	// store is the fleet's shared pair store, touched only from the loop
	// goroutine (snapshots at placement, merges at completion).
	store *pairstore.Store
	// pool tracks elastic slot lifecycles; nil for fixed fleets.
	pool *elasticPool
	// spans is the flight recorder (nil = off), written only from the
	// loop goroutine.
	spans *obs.Recorder
}

func newScheduler(cfg Config, obs observer) *scheduler {
	// The free pool holds node IDs in ascending order; leases take the
	// lowest IDs so placements are deterministic and reported partitions
	// are stable. Under autoscaling only the boot set starts free.
	var free []int
	var pool *elasticPool
	if cfg.Elastic != nil {
		pool = newElasticPool(*cfg.Elastic, cfg.Nodes)
		free = pool.initialFree()
	} else {
		free = make([]int, cfg.Nodes)
		for i := range free {
			free[i] = i
		}
	}
	s := &scheduler{
		cfg:   cfg,
		free:  free,
		usage: make(map[string]float64),
		sem:   make(chan struct{}, cfg.Workers),
		obs:   obs,
		store: cfg.Store,
		pool:  pool,
		spans: cfg.Spans,
	}
	s.attachStoreHooks()
	return s
}

// attachStoreHooks wires the pair store's maintenance hooks to the
// flight recorder. The store is only sealed/compacted from the loop
// goroutine (Merge/MaybeSeal at completion points), so the hooks may
// read s.clock: they fire at the deterministic virtual instant of the
// merge that triggered them.
func (s *scheduler) attachStoreHooks() {
	if s.spans == nil || s.store == nil {
		return
	}
	s.store.SetMaintenanceHooks(
		func(rows int) {
			s.spans.RecordInstant(0, obs.KindSeal, "store", "seal", s.clock, int64(rows))
		},
		func(inputs int) {
			s.spans.RecordInstant(0, obs.KindCompact, "store", "compact", s.clock, int64(inputs))
		},
	)
}

// syncPool applies pool lifecycle events due by the scheduler clock:
// provisioning completions join the free pool, idle expiries and
// free-slot reclaims leave it. Both are retroactively exact, so lazy
// invocation at the loop top never distorts the node-seconds bill.
func (s *scheduler) syncPool() {
	if s.pool == nil {
		return
	}
	if ready := s.pool.ready(s.clock); len(ready) > 0 {
		s.free = append(s.free, ready...)
		sort.Ints(s.free)
	}
	if retired := s.pool.retire(s.clock); len(retired) > 0 {
		gone := make(map[int]bool, len(retired))
		for _, id := range retired {
			gone[id] = true
		}
		keep := s.free[:0]
		for _, id := range s.free {
			if !gone[id] {
				keep = append(keep, id)
			}
		}
		s.free = keep
	}
}

// scaleUp provisions capacity against the pending queue's unmet node
// demand. Returns true when warm (zero-delay) capacity joined the free
// pool, i.e. placement should be retried at this same instant.
func (s *scheduler) scaleUp() bool {
	if s.pool == nil || len(s.pending) == 0 {
		return false
	}
	demand := 0
	pressure := false
	for _, js := range s.pending {
		demand += js.job.Nodes
		// Deadline pressure: even capacity provisioned right now would
		// come online too late for this job to finish in time.
		if d := js.job.Deadline; d > 0 && s.clock+s.pool.policy.ProvisionDelay+js.est > d {
			pressure = true
		}
	}
	warming := 0
	for _, sl := range s.pool.slots {
		if sl.state == slotProvisioning {
			warming++
		}
	}
	want := demand - len(s.free) - warming
	if want <= 0 {
		return false
	}
	if step := s.pool.policy.ScaleUpStep; step > 0 && !pressure && want > step {
		want = step
	}
	freeNow := s.pool.provision(want, s.clock)
	if len(freeNow) == 0 {
		return false
	}
	s.free = append(s.free, freeNow...)
	sort.Ints(s.free)
	return true
}

// run schedules every job the frontier yields over the shared cluster.
// All scheduling decisions depend only on virtual time and the admission
// order the frontier establishes, so a batch replay of an online run's
// arrival log takes exactly the same decisions.
func (s *scheduler) run(f frontier) error {
	cfg := s.cfg
	for {
		// Admit arrivals due now, applying the admission limit.
		for _, js := range f.due(s.clock) {
			if cfg.MaxQueued > 0 && len(s.pending) >= cfg.MaxQueued {
				js.reject = true
				if s.obs != nil {
					s.obs.jobRejected(js)
				}
				continue
			}
			s.pending = append(s.pending, js)
			if s.obs != nil {
				s.obs.jobAdmitted(js)
			}
		}

		// Pool lifecycle first: provisioning completions due by now join
		// the free pool, idle expiries and free-slot reclaims leave it —
		// all retroactively exact, so placements below see the capacity
		// that actually exists at this instant.
		s.syncPool()

		// Placement: let the policy pick jobs while nodes and the
		// running-job budget allow. Jobs placed at the same instant
		// execute their inner simulations in parallel. Under autoscaling
		// each placement round is followed by a scale-up decision; warm
		// capacity is usable at the same instant, so placement retries
		// until neither makes progress.
		for {
			for len(s.pending) > 0 {
				if cfg.MaxRunning > 0 && len(s.running) >= cfg.MaxRunning {
					break
				}
				i := pick(cfg.Policy, s.pending, s.running, len(s.free), s.clock, s.usage)
				if i < 0 {
					break
				}
				js := s.pending[i]
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				js.lease = append([]int(nil), s.free[:js.job.Nodes]...)
				s.free = s.free[js.job.Nodes:]
				js.start = s.clock
				js.started = true
				if s.pool != nil {
					// Reclaims scheduled inside the lease become crash
					// events at the slot's partition-local index; the job
					// drains through steal-based harvest like any crash.
					for k, id := range js.lease {
						s.pool.lease(id)
						if at := s.pool.slots[id].preemptAt; at > s.clock {
							js.preempts = append(js.preempts,
								fault.Event{At: at - s.clock, Kind: fault.NodeCrash, Node: k})
						}
					}
				}
				if js.job.StoreRef != "" {
					// The store view is pinned here, at the deterministic
					// placement point: merges of jobs completing at or before
					// this clock already happened, later merges are invisible.
					if s.store == nil {
						s.store = pairstore.New()
						s.attachStoreHooks()
					}
					js.storeSnap = s.store.Snapshot()
					js.storeBatch = pairstore.NewBatch()
				}
				s.running = append(s.running, js)
				if s.obs != nil {
					s.obs.jobStarted(js)
				}
				go cfg.runInner(js, s.sem)
			}
			if !s.scaleUp() {
				break
			}
		}

		if len(s.running) == 0 {
			next, ok := f.next()
			if s.pool != nil {
				// Warming capacity is a future event too: pending jobs may
				// be waiting for exactly that provisioning to complete.
				if rt, rok := s.pool.nextReady(); rok && (!ok || rt < next) {
					next, ok = rt, true
				}
			}
			if ok {
				s.clock = next
				continue
			}
			if f.wait() {
				continue
			}
			if len(s.pending) > 0 {
				return fmt.Errorf("sched: %d jobs stuck with an idle cluster", len(s.pending))
			}
			return nil
		}

		// Every running job's completion time is fixed once its inner
		// simulation finishes; collect them before advancing the clock.
		// A job whose partition died under it is requeued (up to
		// MaxRetries) at its abort time instead of failing the run.
		for _, js := range s.running {
			<-js.done
			if js.err != nil {
				if errors.Is(js.err, core.ErrPartitionLost) && js.attempt < cfg.MaxRetries {
					js.retry = true
					js.end = js.start + js.inner.Runtime
					continue
				}
				if cfg.KeepGoing {
					js.failed = true
					js.end = js.start
					if js.inner != nil {
						js.end += js.inner.Runtime
					}
					continue
				}
				return s.fail(js)
			}
			js.end = js.start + js.inner.Runtime
		}

		next := s.running[0].end
		for _, js := range s.running[1:] {
			if js.end < next {
				next = js.end
			}
		}
		if t, ok := f.next(); ok && t < next {
			next = t
		}
		if s.pool != nil {
			// Don't jump over a provisioning completion: queued jobs must
			// be placed the instant their capacity comes online.
			if rt, ok := s.pool.nextReady(); ok && rt > s.clock && rt < next {
				next = rt
			}
		}
		s.clock = next
		if s.obs != nil {
			s.obs.clockAdvanced(s.clock)
		}

		// Completions release their leases back to the pool; aborted
		// attempts additionally rejoin the queue for another try.
		keep := s.running[:0]
		for _, js := range s.running {
			if js.end <= s.clock {
				s.usage[js.tenant] += float64(len(js.lease)) * (js.end - js.start).Seconds()
				if s.pool != nil {
					s.free = append(s.free, s.pool.release(js.lease, js.end)...)
				} else {
					s.free = append(s.free, js.lease...)
				}
				if js.storeBatch != nil && !js.retry && !js.failed {
					// Completion is the deterministic merge point: the
					// job's emitted results become visible to every job
					// placed from this clock on.
					s.store.Merge(js.storeBatch)
					if js.inner != nil {
						s.store.RecordServe(js.inner.StoreHits, js.inner.StoreMisses,
							js.inner.StoreReadBytes, js.inner.StoreWriteBytes)
					}
					// Background maintenance rides the merge point: once
					// the mutable log crosses the auto-seal threshold it
					// is promoted to a sorted columnar segment (and tier
					// merges cascade), keeping planner probes on the
					// pushdown fast path. Deterministic — it depends only
					// on merged-entry counts, not wall-clock.
					s.store.MaybeSeal()
				}
				if s.spans != nil {
					// Completion is a deterministic loop point: both spans
					// are pure functions of arrival/placement/completion
					// times, so the recording order (and the trace) is
					// independent of worker scheduling.
					if js.retry {
						s.spans.RecordInstant(0, obs.KindMark, "sched",
							js.id+"/retry", s.clock, int64(js.attempt+1))
					} else {
						var pairs int64
						if js.inner != nil {
							pairs = int64(js.inner.Pairs)
						}
						s.spans.Record(0, obs.Span{Kind: obs.KindJobWait, Track: "sched",
							Name: js.id, Tenant: js.tenant,
							Start: js.job.Arrival, End: js.start})
						s.spans.Record(0, obs.Span{Kind: obs.KindJobRun, Track: "sched",
							Name: js.id, Tenant: js.tenant,
							Start: js.start, End: js.end,
							Arg: int64(len(js.lease)), Arg2: pairs})
					}
				}
				if js.retry {
					js.resetForRetry()
					s.pending = append(s.pending, js)
					if s.obs != nil {
						s.obs.jobRetrying(js)
					}
				} else if s.obs != nil {
					s.obs.jobFinished(js)
				}
			} else {
				keep = append(keep, js)
			}
		}
		s.running = keep
		sort.Ints(s.free)
	}
}

// fail joins the in-flight inner simulations and surfaces the first error.
func (s *scheduler) fail(js *jobState) error {
	for _, r := range s.running {
		<-r.done
	}
	return fmt.Errorf("sched: job %s: %w", js.id, js.err)
}

// Run schedules every job of cfg over the shared cluster and returns the
// fleet metrics. Jobs that cannot be admitted (MaxQueued backpressure) are
// reported as rejected, not errors; an inner runtime failure aborts the
// whole run unless Config.KeepGoing records it per-job instead.
func Run(cfg Config) (*Metrics, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	states, err := newStates(cfg)
	if err != nil {
		return nil, err
	}

	// Arrival order: by arrival time, ties by submission order.
	arrivals := append([]*jobState(nil), states...)
	sort.SliceStable(arrivals, func(i, j int) bool {
		return arrivals[i].job.Arrival < arrivals[j].job.Arrival
	})

	s := newScheduler(cfg, nil)
	if err := s.run(&sliceFrontier{arrivals: arrivals}); err != nil {
		return nil, err
	}
	return aggregate(cfg, states, s.pool), nil
}

// runInner executes one job's Rocket runtime on a cluster the size of its
// lease. The semaphore bounds host parallelism; results depend only on
// the job's seed and partition, never on worker interleaving.
func (cfg Config) runInner(js *jobState, sem chan struct{}) {
	defer close(js.done)
	sem <- struct{}{}
	defer func() { <-sem }()

	specs := make([]cluster.NodeSpec, len(js.lease))
	for i := range specs {
		specs[i] = cfg.NodeSpec
	}
	cl, err := cluster.New(specs, cfg.Fabric)
	if err != nil {
		js.err = err
		return
	}
	ccfg := core.Config{
		App:       js.job.App,
		Cluster:   cl,
		Seed:      js.seed,
		DistCache: len(js.lease) > 1,
	}
	if js.job.StoreRef != "" {
		ccfg.BaseItems = js.job.BaseItems
		ccfg.Store = js.storeSnap
		ccfg.StoreBatch = js.storeBatch
		ccfg.ItemDigest = js.job.Digest
		if ccfg.ItemDigest == nil {
			ccfg.ItemDigest = pairstore.DigestFunc(js.job.StoreRef, js.job.App.Name(), js.seed)
		}
	}
	if js.attempt == 0 {
		// Retries model placement on fresh nodes and run fault-free.
		ccfg.Faults = js.job.Faults
	}
	if len(js.preempts) > 0 {
		// Spot reclaims follow the slots, not the attempt: every
		// placement onto a doomed slot crashes at the scheduled instant.
		merged := &fault.Schedule{}
		if !ccfg.Faults.Empty() {
			merged.Events = append(merged.Events, ccfg.Faults.Events...)
		}
		merged.Events = append(merged.Events, js.preempts...)
		ccfg.Faults = merged
	}
	if js.job.Mutate != nil {
		js.job.Mutate(&ccfg)
	}
	js.inner, js.err = core.Run(ccfg)
}
