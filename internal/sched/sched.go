// Package sched implements rocketd, the multi-tenant job scheduler layered
// on top of the Rocket runtime. Where core.Run executes one all-pairs job
// to completion on a dedicated platform, sched admits a queue of
// heterogeneous jobs (mixed applications, sizes, and tenants) and runs
// them concurrently over one shared simulated cluster: each admitted job
// leases a partition of the cluster's nodes, executes on it through the
// unmodified Rocket runtime, and returns its nodes to the free pool when
// it completes, at which point the configured policy (FIFO,
// shortest-job-first, or fair-share across tenants) picks the next job.
//
// The scheduler is a two-level discrete-event simulation: the inner level
// is the per-job Rocket runtime (core.Run on the leased partition), whose
// virtual run time becomes the job's service time; the outer level is the
// fleet clock, which interleaves arrivals, placements, and completions of
// many jobs over the shared node pool. Inner simulations are independent,
// so they execute on parallel OS workers; all scheduling decisions depend
// only on virtual time, which keeps fleet results deterministic for a
// given seed regardless of host parallelism.
package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sort"

	"rocket/internal/cluster"
	"rocket/internal/core"
	"rocket/internal/fault"
	"rocket/internal/gpu"
	"rocket/internal/pairs"
	"rocket/internal/sim"
)

// Job is one all-pairs workload submitted to the scheduler.
type Job struct {
	// ID identifies the job in reports. Empty IDs are assigned "job<i>".
	ID string
	// Tenant is the submitting principal, the unit of fair-share
	// accounting. Empty tenants are grouped under "default".
	Tenant string
	// App is the application to run (required).
	App core.Application
	// Nodes is the partition size the job requests from the shared
	// cluster; 0 requests a single node.
	Nodes int
	// Arrival is the virtual time at which the job enters the queue.
	Arrival sim.Time
	// Seed overrides the per-job seed derived from Config.Seed.
	Seed uint64
	// Faults injects a deterministic fault schedule into the job's first
	// attempt. A job aborted by partition loss (core.ErrPartitionLost) is
	// requeued up to Config.MaxRetries times; retries run fault-free,
	// modeling placement on fresh nodes.
	Faults *fault.Schedule
	// Mutate, when non-nil, adjusts the job's runtime configuration
	// (cache sizes, steal policy, ...) before execution.
	Mutate func(*core.Config)
}

// Config configures one scheduler run.
type Config struct {
	// Jobs is the workload to schedule (required).
	Jobs []Job
	// Nodes is the size of the shared cluster (required).
	Nodes int
	// NodeSpec is the hardware of every node. The zero value defaults to
	// a DAS-5 node with one TitanX Maxwell.
	NodeSpec cluster.NodeSpec
	// Fabric configures network and storage; the zero value defaults to
	// cluster.DefaultConfig().
	Fabric cluster.Config
	// Policy selects the placement order; default PolicyFIFO.
	Policy Policy
	// MaxQueued is the admission limit: a job arriving while this many
	// jobs are already waiting is rejected (backpressure). 0 = unlimited.
	MaxQueued int
	// MaxRunning caps concurrently executing jobs in addition to the
	// node-pool limit. 0 = bounded only by free nodes.
	MaxRunning int
	// MaxRetries is how many times a job whose partition died under it
	// (core.ErrPartitionLost) is requeued before the failure aborts the
	// whole run. 0 = partition loss is fatal.
	MaxRetries int
	// Workers is the number of OS threads executing inner simulations in
	// parallel; 0 defaults to GOMAXPROCS. It does not affect results.
	Workers int
	// Seed drives per-job seed derivation.
	Seed uint64
}

// jobState tracks one job through the scheduler.
type jobState struct {
	job     Job
	index   int
	id      string
	tenant  string
	seed    uint64
	est     sim.Time
	lease   []int
	start   sim.Time
	end     sim.Time
	inner   *core.Metrics
	err     error
	done    chan struct{}
	started bool
	reject  bool
	// attempt counts executions so far; retry marks a partition-lost
	// attempt whose lease release doubles as a requeue.
	attempt int
	retry   bool
}

// resetForRetry returns the state to the queue for another attempt.
func (js *jobState) resetForRetry() {
	js.attempt++
	js.retry = false
	js.lease = nil
	js.inner = nil
	js.err = nil
	js.started = false
	js.done = make(chan struct{})
}

func (cfg Config) normalize() (Config, error) {
	if len(cfg.Jobs) == 0 {
		return cfg, fmt.Errorf("sched: Config.Jobs is empty")
	}
	if cfg.Nodes < 1 {
		return cfg, fmt.Errorf("sched: Config.Nodes must be >= 1, got %d", cfg.Nodes)
	}
	if cfg.NodeSpec.Cores == 0 && cfg.NodeSpec.HostCacheBytes == 0 && len(cfg.NodeSpec.GPUs) == 0 {
		cfg.NodeSpec = cluster.NodeSpec{
			Cores:          16,
			HostCacheBytes: 40 * gpu.GiB,
			GPUs:           []gpu.Model{gpu.TitanXMaxwell},
		}
	}
	if err := cfg.NodeSpec.Validate(); err != nil {
		return cfg, err
	}
	if cfg.Fabric == (cluster.Config{}) {
		cfg.Fabric = cluster.DefaultConfig()
	}
	if cfg.Policy < PolicyFIFO || cfg.Policy > PolicyFairShare {
		return cfg, fmt.Errorf("sched: unknown policy %d", cfg.Policy)
	}
	if cfg.MaxQueued < 0 || cfg.MaxRunning < 0 {
		return cfg, fmt.Errorf("sched: negative admission limits")
	}
	if cfg.MaxRetries < 0 {
		return cfg, fmt.Errorf("sched: negative MaxRetries")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return cfg, nil
}

// newStates validates the jobs and builds their scheduler state, in input
// order.
func newStates(cfg Config) ([]*jobState, error) {
	states := make([]*jobState, len(cfg.Jobs))
	seen := make(map[string]int, len(cfg.Jobs))
	for i, j := range cfg.Jobs {
		if j.App == nil {
			return nil, fmt.Errorf("sched: job %d has no App", i)
		}
		if j.Nodes == 0 {
			j.Nodes = 1
		}
		if j.Nodes < 0 || j.Nodes > cfg.Nodes {
			return nil, fmt.Errorf("sched: job %d requests %d nodes; cluster has %d", i, j.Nodes, cfg.Nodes)
		}
		if j.Arrival < 0 {
			return nil, fmt.Errorf("sched: job %d has negative arrival %v", i, j.Arrival)
		}
		id := j.ID
		if id == "" {
			id = fmt.Sprintf("job%d", i)
		}
		if prev, dup := seen[id]; dup {
			return nil, fmt.Errorf("sched: jobs %d and %d share ID %q", prev, i, id)
		}
		seen[id] = i
		tenant := j.Tenant
		if tenant == "" {
			tenant = "default"
		}
		seed := j.Seed
		if seed == 0 {
			seed = cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(i+1))
		}
		states[i] = &jobState{
			job:    j,
			index:  i,
			id:     id,
			tenant: tenant,
			seed:   seed,
			est:    estimate(j.App, j.Nodes, len(cfg.NodeSpec.GPUs)),
			done:   make(chan struct{}),
		}
	}
	return states, nil
}

// estimate predicts a job's service time for shortest-job-first ordering:
// total pairs times a sampled mean comparison cost, divided by the
// partition's GPU count. It only needs to order jobs correctly, not to
// predict absolute run times.
func estimate(app core.Application, nodes, gpusPerNode int) sim.Time {
	n := app.NumItems()
	total := pairs.TotalPairs(n)
	step := n/8 + 1
	var sum sim.Time
	samples := 0
	for i := 0; i < n; i += step {
		for j := i + 1; j < n; j += step {
			sum += app.CompareTime(i, j)
			samples++
		}
	}
	if samples == 0 {
		return sim.Time(total)
	}
	mean := float64(sum) / float64(samples)
	return sim.Time(float64(total) * mean / float64(nodes*gpusPerNode))
}

// Run schedules every job of cfg over the shared cluster and returns the
// fleet metrics. Jobs that cannot be admitted (MaxQueued backpressure) are
// reported as rejected, not errors; an inner runtime failure aborts the
// whole run.
func Run(cfg Config) (*Metrics, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	states, err := newStates(cfg)
	if err != nil {
		return nil, err
	}

	// Arrival order: by arrival time, ties by submission order.
	arrivals := append([]*jobState(nil), states...)
	sort.SliceStable(arrivals, func(i, j int) bool {
		return arrivals[i].job.Arrival < arrivals[j].job.Arrival
	})

	// The free pool holds node IDs in ascending order; leases take the
	// lowest IDs so placements are deterministic and reported partitions
	// are stable.
	free := make([]int, cfg.Nodes)
	for i := range free {
		free[i] = i
	}

	sem := make(chan struct{}, cfg.Workers)
	usage := make(map[string]float64) // tenant -> completed node-seconds
	var pending, running []*jobState
	var clock sim.Time
	ai := 0

	fail := func(js *jobState) (*Metrics, error) {
		for _, r := range running {
			<-r.done
		}
		return nil, fmt.Errorf("sched: job %s: %w", js.id, js.err)
	}

	for {
		// Admit arrivals due now, applying the admission limit.
		for ai < len(arrivals) && arrivals[ai].job.Arrival <= clock {
			js := arrivals[ai]
			ai++
			if cfg.MaxQueued > 0 && len(pending) >= cfg.MaxQueued {
				js.reject = true
				continue
			}
			pending = append(pending, js)
		}

		// Placement: let the policy pick jobs while nodes and the
		// running-job budget allow. Jobs placed at the same instant
		// execute their inner simulations in parallel.
		for len(pending) > 0 {
			if cfg.MaxRunning > 0 && len(running) >= cfg.MaxRunning {
				break
			}
			i := pick(cfg.Policy, pending, running, len(free), clock, usage)
			if i < 0 {
				break
			}
			js := pending[i]
			pending = append(pending[:i], pending[i+1:]...)
			js.lease = append([]int(nil), free[:js.job.Nodes]...)
			free = free[js.job.Nodes:]
			js.start = clock
			js.started = true
			running = append(running, js)
			go cfg.runInner(js, sem)
		}

		if len(running) == 0 {
			if ai >= len(arrivals) {
				if len(pending) > 0 {
					return nil, fmt.Errorf("sched: %d jobs stuck with an idle cluster", len(pending))
				}
				break
			}
			clock = arrivals[ai].job.Arrival
			continue
		}

		// Every running job's completion time is fixed once its inner
		// simulation finishes; collect them before advancing the clock.
		// A job whose partition died under it is requeued (up to
		// MaxRetries) at its abort time instead of failing the run.
		for _, js := range running {
			<-js.done
			if js.err != nil {
				if errors.Is(js.err, core.ErrPartitionLost) && js.attempt < cfg.MaxRetries {
					js.retry = true
					js.end = js.start + js.inner.Runtime
					continue
				}
				return fail(js)
			}
			js.end = js.start + js.inner.Runtime
		}

		next := running[0].end
		for _, js := range running[1:] {
			if js.end < next {
				next = js.end
			}
		}
		if ai < len(arrivals) && arrivals[ai].job.Arrival < next {
			next = arrivals[ai].job.Arrival
		}
		clock = next

		// Completions release their leases back to the pool; aborted
		// attempts additionally rejoin the queue for another try.
		keep := running[:0]
		for _, js := range running {
			if js.end <= clock {
				usage[js.tenant] += float64(len(js.lease)) * (js.end - js.start).Seconds()
				free = append(free, js.lease...)
				if js.retry {
					js.resetForRetry()
					pending = append(pending, js)
				}
			} else {
				keep = append(keep, js)
			}
		}
		running = keep
		sort.Ints(free)
	}

	return aggregate(cfg, states), nil
}

// runInner executes one job's Rocket runtime on a cluster the size of its
// lease. The semaphore bounds host parallelism; results depend only on
// the job's seed and partition, never on worker interleaving.
func (cfg Config) runInner(js *jobState, sem chan struct{}) {
	defer close(js.done)
	sem <- struct{}{}
	defer func() { <-sem }()

	specs := make([]cluster.NodeSpec, len(js.lease))
	for i := range specs {
		specs[i] = cfg.NodeSpec
	}
	cl, err := cluster.New(specs, cfg.Fabric)
	if err != nil {
		js.err = err
		return
	}
	ccfg := core.Config{
		App:       js.job.App,
		Cluster:   cl,
		Seed:      js.seed,
		DistCache: len(js.lease) > 1,
	}
	if js.attempt == 0 {
		// Retries model placement on fresh nodes and run fault-free.
		ccfg.Faults = js.job.Faults
	}
	if js.job.Mutate != nil {
		js.job.Mutate(&ccfg)
	}
	js.inner, js.err = core.Run(ccfg)
}
